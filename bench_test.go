package cyclesteal

// Benchmark harness: one benchmark per reproduced artifact (Table 1, Table 2,
// and each figure-equivalent experiment E3–E10 of DESIGN.md §3), plus
// micro-benchmarks for the hot components (solvers, evaluators, simulator,
// fleet driver). Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks use bench-sized shapes (smaller than the
// presentation defaults in cmd/cstealtables) so a full -bench=. pass stays
// in the tens of seconds.

import (
	"context"
	"math/rand"
	"testing"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/experiments"
	"cyclesteal/internal/game"
	"cyclesteal/internal/model"
	"cyclesteal/internal/now"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/tab"
	"cyclesteal/internal/task"
)

var benchCfg = experiments.Config{C: 50, Seed: 1}

var sinkTable *tab.Table

func runExperiment(b *testing.B, run func(experiments.Config) (*tab.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

// BenchmarkTable1 regenerates the paper's Table 1 (E1).
func BenchmarkTable1(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.Table1(cfg, 1000*cfg.C, 2)
	})
}

// BenchmarkTable2 regenerates the paper's Table 2 (E2).
func BenchmarkTable2(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.Table2(cfg, []quant.Tick{100, 1000, 10000})
	})
}

// BenchmarkNonAdaptiveAnalysis regenerates the §3.1 analysis series (E3).
func BenchmarkNonAdaptiveAnalysis(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.NonAdaptiveAnalysis(cfg, []int{1, 2, 4, 8}, []quant.Tick{1000, 10000, 100000})
	})
}

// BenchmarkTheorem51 regenerates the Theorem 5.1 / equalization study (E4).
func BenchmarkTheorem51(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.EqualizationStudy(cfg, 4, []quant.Tick{2000})
	})
}

// BenchmarkOptimalityGap regenerates the §5.2 comparison (E5).
func BenchmarkOptimalityGap(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.OptimalityGap(cfg, []quant.Tick{1000, 10000})
	})
}

// BenchmarkProp41 regenerates the Prop. 4.1 property grid (E6).
func BenchmarkProp41(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.Prop41Grid(cfg, 4, 300*cfg.C)
	})
}

// BenchmarkStructure regenerates the Thm 4.2 / Obs (a) structure study (E7).
func BenchmarkStructure(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.OptimalStructure(cfg, 500*cfg.C)
	})
}

// BenchmarkGuaranteedVsExpected regenerates the two-submodel comparison (E8).
func BenchmarkGuaranteedVsExpected(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.GuaranteedVsExpected(cfg, 300*cfg.C, 2, 100)
	})
}

// BenchmarkAblationQuantum regenerates the grid-resolution ablation (E9a).
func BenchmarkAblationQuantum(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.AblationQuantum(cfg, []quant.Tick{10, 30, 100}, 500)
	})
}

// BenchmarkAblationGuideline regenerates the §3.2 design ablation (E9b).
func BenchmarkAblationGuideline(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.AblationGuideline(cfg, []int{1, 2, 3}, 1000*cfg.C)
	})
}

// BenchmarkAblationSolver regenerates the solver ablation (E9c).
func BenchmarkAblationSolver(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.AblationSolver(cfg, []quant.Tick{200, 400})
	})
}

// BenchmarkTaskGranularity regenerates the packing-loss study (E10).
func BenchmarkTaskGranularity(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.TaskGranularity(cfg, 500*cfg.C, []quant.Tick{1, 25, 50, 250})
	})
}

// BenchmarkFarmStudy regenerates the shared-job NOW study (E11).
func BenchmarkFarmStudy(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.FarmStudy(cfg, 8, 10, 5000, 3)
	})
}

// BenchmarkFarmFleetScale regenerates the fleet-scaling study (E12) at a
// bench-sized shape — the two-level deterministic engine end to end, with
// the 1000-station row exercising the sharded queues at depth.
func BenchmarkFarmFleetScale(b *testing.B) {
	runExperiment(b, func(cfg experiments.Config) (*tab.Table, error) {
		return experiments.FleetScale(cfg, []int{10, 100, 1000}, 4, 100, 2)
	})
}

// --- replication-engine benchmarks ----------------------------------------------
//
// BenchmarkMC* measure experiment E8 riding the internal/mc engine at 10k
// trials per (scheduler, owner) study. By the engine's seed-stream contract
// the two variants compute bit-identical tables; only wall-clock differs.
// Compare with:
//
//	go test -bench='BenchmarkMCGuaranteedVsExpected' -benchtime=3x
//
// On a single-core machine the variants tie; with ≥ 8 cores the parallel
// variant approaches an 8× speedup (trials are embarrassingly parallel and
// the merge is O(shards)).

func benchE8Workers(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	cfg := experiments.Config{C: 25, Seed: 1, Workers: workers}
	for i := 0; i < b.N; i++ {
		t, err := experiments.GuaranteedVsExpected(cfg, 100*cfg.C, 2, 10000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

// BenchmarkMCGuaranteedVsExpected10kSerial is E8 at 10k trials on one worker.
func BenchmarkMCGuaranteedVsExpected10kSerial(b *testing.B) { benchE8Workers(b, 1) }

// BenchmarkMCGuaranteedVsExpected10kParallel8 is the same study on 8 workers.
func BenchmarkMCGuaranteedVsExpected10kParallel8(b *testing.B) { benchE8Workers(b, 8) }

// --- micro-benchmarks -----------------------------------------------------------

var sinkTick quant.Tick

// BenchmarkSolveFast measures the O(pU log U) crossing-point solver.
func BenchmarkSolveFast(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := game.Solve(3, 50000, 50)
		if err != nil {
			b.Fatal(err)
		}
		sinkTick = s.Value(3, 50000)
	}
}

// BenchmarkSolveReference measures the brute-force reference solver on a
// necessarily smaller instance (E9c quantifies the asymptotic gap).
func BenchmarkSolveReference(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := game.SolveReference(3, 2000, 50)
		if err != nil {
			b.Fatal(err)
		}
		sinkTick = s.Value(3, 2000)
	}
}

// BenchmarkEvaluateEqualized measures minimax evaluation of the equalization
// scheduler.
func BenchmarkEvaluateEqualized(b *testing.B) {
	eq, err := sched.NewAdaptiveEqualized(50)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := game.Evaluate(eq, 3, 50000, 50)
		if err != nil {
			b.Fatal(err)
		}
		sinkTick = w
	}
}

// BenchmarkEvaluateNonAdaptiveDirect measures the O(m·p) kill-set DP.
func BenchmarkEvaluateNonAdaptiveDirect(b *testing.B) {
	na, err := sched.NewNonAdaptive(1000000, 4, 50)
	if err != nil {
		b.Fatal(err)
	}
	periods := na.Periods()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := game.EvaluateNonAdaptive(periods, 4, 50)
		if err != nil {
			b.Fatal(err)
		}
		sinkTick = w
	}
}

// BenchmarkEpisodeEqualized measures equalization episode construction.
func BenchmarkEpisodeEqualized(b *testing.B) {
	eq, err := sched.NewAdaptiveEqualized(50)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep := eq.Episode(3, 500000)
		sinkTick = ep.Total()
	}
}

// BenchmarkEpisodeGuideline measures printed-guideline episode construction.
func BenchmarkEpisodeGuideline(b *testing.B) {
	ag, err := sched.NewAdaptiveGuideline(50)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep := ag.Episode(3, 500000)
		sinkTick = ep.Total()
	}
}

// BenchmarkSimulateOpportunity measures one full simulated opportunity with a
// task bag against a stochastic owner.
func BenchmarkSimulateOpportunity(b *testing.B) {
	eq, err := sched.NewAdaptiveEqualized(50)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	tasks := task.Uniform(2000, 10, 200, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bag := task.NewBag(tasks)
		adv := &adversary.Poisson{Rng: rng, Mean: 30000}
		res, err := sim.Run(eq, adv, sim.Opportunity{U: 100000, P: 3, C: 50}, sim.Config{Bag: bag})
		if err != nil {
			b.Fatal(err)
		}
		sinkTick = res.Work
	}
}

// BenchmarkFleetRun measures the parallel NOW cluster driver.
func BenchmarkFleetRun(b *testing.B) {
	stations := make([]now.Workstation, 16)
	for i := range stations {
		stations[i] = now.Workstation{ID: i, Owner: now.Office{MeanIdle: 20000, MaxP: 2}, Setup: 50}
	}
	fleet := now.Fleet{Stations: stations, OpportunitiesPerStation: 10}
	factory := func(ws now.Workstation, c now.Contract) (model.EpisodeScheduler, error) {
		return sched.NewAdaptiveEqualized(ws.Setup)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fleet.Run(context.Background(), factory, int64(i), nil)
		if err != nil {
			b.Fatal(err)
		}
		sinkTick = res.Work
	}
}

// BenchmarkGuaranteedWorkFacade measures the end-to-end public API path.
func BenchmarkGuaranteedWorkFacade(b *testing.B) {
	e, err := New(Opportunity{Lifespan: 2000, Interrupts: 2, Setup: 2})
	if err != nil {
		b.Fatal(err)
	}
	s, err := e.AdaptiveEqualized()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := e.GuaranteedWork(s)
		if err != nil {
			b.Fatal(err)
		}
		if w <= 0 {
			b.Fatal("no work")
		}
	}
}
