package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// validWAL is a small well-formed log exercising every record kind.
const validWAL = `{"format":"cyclesteal-service-wal","version":1,"ticks_per_setup":100}
{"round":0,"kind":"submit","tenant":"acme","job_id":1,"tasks":[12,12.5,3]}
{"round":1,"kind":"checkpoint","checkpoint":4,"adaptive":true}
{"round":2,"kind":"join","sampled":true,"station":12}
{"round":2,"kind":"leave","sampled":true,"station":3}
{"round":5,"kind":"crash","sampled":true,"station":7}
{"round":9,"kind":"kill","sampled":true}
`

func TestReadWALValid(t *testing.T) {
	events, err := ReadWAL(strings.NewReader(validWAL))
	if err != nil {
		t.Fatal(err)
	}
	want := []ServiceEvent{
		{Round: 0, Kind: EventSubmit, Tenant: "acme", JobID: 1, Tasks: []float64{12, 12.5, 3}},
		{Round: 1, Kind: EventCheckpoint, Checkpoint: 4, Adaptive: true},
		{Round: 2, Kind: EventJoin, Sampled: true, Station: 12},
		{Round: 2, Kind: EventLeave, Sampled: true, Station: 3},
		{Round: 5, Kind: EventCrash, Sampled: true, Station: 7},
		{Round: 9, Kind: EventKill, Sampled: true},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("decoded %+v,\nwant %+v", events, want)
	}
}

// TestReadWALRejectsMalformed pins the strict-decode contract: every damaged
// log errors with a line-pointing message — no panic, no silent skip.
func TestReadWALRejectsMalformed(t *testing.T) {
	header := `{"format":"cyclesteal-service-wal","version":1,"ticks_per_setup":100}` + "\n"
	cases := []struct {
		name string
		log  string
		want string // substring of the error
	}{
		{"empty", "", "missing header"},
		{"header not JSON", "not json\n", "header"},
		{"header unknown field", `{"format":"cyclesteal-service-wal","version":1,"ticks_per_setup":100,"x":1}` + "\n", "header"},
		{"wrong format", `{"format":"other","version":1,"ticks_per_setup":100}` + "\n", "format"},
		{"wrong version", `{"format":"cyclesteal-service-wal","version":2,"ticks_per_setup":100}` + "\n", "version"},
		{"zero grid", `{"format":"cyclesteal-service-wal","version":1,"ticks_per_setup":0}` + "\n", "ticks_per_setup"},
		{"event not JSON", header + "garbage\n", "line 2"},
		{"unknown kind", header + `{"round":0,"kind":"explode"}` + "\n", "unknown kind"},
		{"unknown field", header + `{"round":0,"kind":"join","wat":true}` + "\n", "line 2"},
		{"negative round", header + `{"round":-1,"kind":"join"}` + "\n", "negative round"},
		{"rounds run backwards", header + `{"round":5,"kind":"join"}` + "\n" + `{"round":4,"kind":"leave"}` + "\n", "backwards"},
		{"events after kill", header + `{"round":1,"kind":"kill"}` + "\n" + `{"round":2,"kind":"join"}` + "\n", "after the kill"},
		{"negative duration", header + `{"round":0,"kind":"submit","tasks":[3,-1]}` + "\n", "duration"},
		{"negative checkpoint", header + `{"round":0,"kind":"checkpoint","checkpoint":-2}` + "\n", "checkpoint"},
		{"trailing data", header + `{"round":0,"kind":"join"} {"round":1,"kind":"leave"}` + "\n", "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadWAL(strings.NewReader(tc.log))
			if err == nil {
				t.Fatalf("decoded %q without error", tc.log)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestWALRoundTrip pins the codec: a decoded log re-encodes byte-identically
// (modulo the blank lines the reader skips).
func TestWALRoundTrip(t *testing.T) {
	events, err := ReadWAL(strings.NewReader(validWAL))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeWALHeader(&buf, 100); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := writeWALEvent(&buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	again, err := ReadWAL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-decoding our own encoding: %v", err)
	}
	if !reflect.DeepEqual(again, events) {
		t.Fatalf("round trip changed the events:\n%+v\n%+v", again, events)
	}
}

// FuzzReadWAL feeds arbitrary bytes to the decoder. The property under test:
// malformed input errors — never panics — and anything the decoder accepts
// re-encodes through the writer into a log the decoder accepts again with
// the same events (the codec is a retraction).
func FuzzReadWAL(f *testing.F) {
	f.Add(validWAL)
	f.Add("")
	f.Add(`{"format":"cyclesteal-service-wal","version":1,"ticks_per_setup":1}` + "\n")
	f.Add(`{"format":"cyclesteal-service-wal","version":1,"ticks_per_setup":100}` + "\n" + `{"round":0,"kind":"submit","tasks":[]}` + "\n")
	f.Add(`{"format":"cyclesteal-service-wal","version":1,"ticks_per_setup":100}` + "\n" + `{"round":3,"kind":"kill"}` + "\n")
	f.Add(`{"format":"cyclesteal-service-wal","version":1,"ticks_per_setup":100}` + "\n" + `{"round":0,"kind":"checkpoint","checkpoint":1e309}` + "\n")
	f.Add("{\"format\"\x00:1}")
	f.Fuzz(func(t *testing.T, log string) {
		events, err := ReadWAL(strings.NewReader(log))
		if err != nil {
			return // rejected is fine; panicking is the only failure
		}
		var buf bytes.Buffer
		if err := writeWALHeader(&buf, 100); err != nil {
			t.Fatalf("re-encoding header: %v", err)
		}
		for _, ev := range events {
			if err := writeWALEvent(&buf, ev); err != nil {
				t.Fatalf("accepted event %+v does not re-encode: %v", ev, err)
			}
		}
		again, err := ReadWAL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("accepted log does not re-decode: %v\nre-encoded:\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(again, events) {
			t.Fatalf("round trip changed events:\nfirst  %+v\nsecond %+v", events, again)
		}
	})
}
