package fleet

import (
	"fmt"
	"strings"

	"cyclesteal/internal/quant"
	"cyclesteal/internal/station"
)

// Owner is a workstation-owner temperament: it decides how long the machine
// is lent per stretch and how the owner's returns interrupt the borrowed
// time. The implementations in this package cover the paper's scenarios;
// OwnerByName selects one by label. (The set is closed — temperaments bind
// to the internal contract model.)
type Owner interface {
	// model quantizes the temperament onto the grid; defaultP is
	// Config.Interrupts, the fleet-wide default allowance.
	model(g grid, defaultP int) (station.OwnerModel, error)
}

// Office models a nine-to-five owner: moderately long idle stretches
// (meetings, lunch) with a few possible returns at their daily routine's
// whim. The zero value is the standard experiment office (mean idle 250
// setup costs, allowance from Config.Interrupts).
type Office struct {
	// MeanIdle is the mean lent stretch in caller time units; 0 means 250
	// setup costs.
	MeanIdle float64
	// Interrupts is the per-contract allowance; 0 defers to
	// Config.Interrupts and then to the standard 2.
	Interrupts int
}

func (o Office) model(g grid, defaultP int) (station.OwnerModel, error) {
	mean, err := meanTicks("office", o.MeanIdle, 250, g)
	if err != nil {
		return nil, err
	}
	if o.Interrupts < 0 {
		return nil, fmt.Errorf("fleet: office interrupt allowance must be ≥ 0, got %d", o.Interrupts)
	}
	p := o.Interrupts
	if p == 0 {
		p = defaultP
	}
	if p == 0 {
		p = 2
	}
	return station.Office{MeanIdle: mean, MaxP: p}, nil
}

// Laptop models the paper's motivating case: a machine that can be
// unplugged at any moment — short lent stretches, one fatal interrupt. The
// zero value is the standard experiment laptop (mean idle 100 setup costs).
type Laptop struct {
	// MeanIdle is the mean lent stretch in caller time units; 0 means 100
	// setup costs.
	MeanIdle float64
}

func (l Laptop) model(g grid, _ int) (station.OwnerModel, error) {
	mean, err := meanTicks("laptop", l.MeanIdle, 100, g)
	if err != nil {
		return nil, err
	}
	return station.Laptop{MeanIdle: mean}, nil
}

// Overnight models lab machines lent for a fixed nightly window with a
// small chance of an early-morning return. The zero value is the standard
// experiment window of 400 setup costs.
type Overnight struct {
	// Window is the lent window in caller time units; 0 means 400 setup
	// costs.
	Window float64
}

func (o Overnight) model(g grid, _ int) (station.OwnerModel, error) {
	w, err := meanTicks("overnight", o.Window, 400, g)
	if err != nil {
		return nil, err
	}
	return station.Overnight{Window: w}, nil
}

// Malicious wraps a temperament with worst-case interrupt behavior: lent
// stretches come from the base temperament, but every return is placed as
// damagingly as the equalization-damage heuristic can — the
// guaranteed-output regime the paper optimizes for.
type Malicious struct {
	Base Owner
}

func (m Malicious) model(g grid, defaultP int) (station.OwnerModel, error) {
	if m.Base == nil {
		return nil, fmt.Errorf("fleet: malicious owner needs a base temperament")
	}
	base, err := m.Base.model(g, defaultP)
	if err != nil {
		return nil, err
	}
	return station.Malicious{Base: base, Setup: g.ticksC}, nil
}

// meanTicks quantizes an owner duration parameter: explicit caller units,
// or the standard multiple of the setup cost when zero.
func meanTicks(owner string, units float64, setups quant.Tick, g grid) (quant.Tick, error) {
	if units < 0 {
		return 0, fmt.Errorf("fleet: %s duration must be ≥ 0, got %g", owner, units)
	}
	if units == 0 {
		return setups * g.ticksC, nil
	}
	return g.ticks(units), nil
}

// OwnerByName selects a temperament by label: "office", "laptop" or
// "overnight", each in its standard experiment shape, optionally wrapped as
// "malicious-office" etc. for the worst-case-interrupt variant.
func OwnerByName(name string) (Owner, error) {
	base, malicious := name, false
	if rest, ok := strings.CutPrefix(name, "malicious-"); ok {
		base, malicious = rest, true
	}
	var o Owner
	switch base {
	case "office":
		o = Office{}
	case "laptop":
		o = Laptop{}
	case "overnight":
		o = Overnight{}
	default:
		return nil, fmt.Errorf("fleet: unknown owner %q (want office, laptop, overnight, or a malicious- prefix)", name)
	}
	if malicious {
		o = Malicious{Base: o}
	}
	return o, nil
}
