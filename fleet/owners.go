package fleet

import (
	"fmt"
	"math/rand"
	"strings"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/station"
)

// Owner is a workstation-owner temperament: it decides how long the machine
// is lent per stretch and how the owner's returns interrupt the borrowed
// time. The named temperaments (Office, Laptop, Overnight), the worst-case
// wrappers (Malicious, Minimax, Benign, Scripted, Stochastic, Poisson,
// SampledWorst), Fixed contracts, trace Replay and fully caller-defined
// CustomOwner availability processes all implement it; OwnerByName selects
// the named ones by label.
//
// The interface itself is bound to the fleet's internal tick grid through an
// unexported method, so third-party temperaments plug in through CustomOwner
// — the open, caller-units half of the contract — rather than by
// implementing Owner directly.
type Owner interface {
	// model quantizes the temperament onto the grid described by the
	// binding: the fleet's tick grid and default allowance, the station the
	// model will serve, and the scheduling policy's factory (for owners,
	// like Minimax, that best-respond to the schedule).
	model(b binding) (station.OwnerModel, error)
}

// binding is everything an owner temperament may need to quantize itself
// onto one station of a fleet.
type binding struct {
	g        grid
	defaultP int                      // Config.Interrupts, the fleet-wide default allowance
	station  int                      // station index the model will serve
	factory  station.SchedulerFactory // the fleet's compiled policy
}

// workstation is the station the binding describes, as the scheduler factory
// expects it.
func (b binding) workstation() station.Workstation {
	return station.Workstation{ID: b.station, Setup: b.g.ticksC}
}

// Office models a nine-to-five owner: moderately long idle stretches
// (meetings, lunch) with a few possible returns at their daily routine's
// whim. The zero value is the standard experiment office (mean idle 250
// setup costs, allowance from Config.Interrupts).
type Office struct {
	// MeanIdle is the mean lent stretch in caller time units; 0 means 250
	// setup costs.
	MeanIdle float64
	// Interrupts is the per-contract allowance; 0 defers to
	// Config.Interrupts and then to the standard 2.
	Interrupts int
}

func (o Office) model(b binding) (station.OwnerModel, error) {
	mean, err := meanTicks("office", o.MeanIdle, 250, b.g)
	if err != nil {
		return nil, err
	}
	if o.Interrupts < 0 {
		return nil, fmt.Errorf("fleet: office interrupt allowance must be ≥ 0, got %d", o.Interrupts)
	}
	p := o.Interrupts
	if p == 0 {
		p = b.defaultP
	}
	if p == 0 {
		p = 2
	}
	return station.Office{MeanIdle: mean, MaxP: p}, nil
}

// Laptop models the paper's motivating case: a machine that can be
// unplugged at any moment — short lent stretches, one fatal interrupt. The
// zero value is the standard experiment laptop (mean idle 100 setup costs).
type Laptop struct {
	// MeanIdle is the mean lent stretch in caller time units; 0 means 100
	// setup costs.
	MeanIdle float64
}

func (l Laptop) model(b binding) (station.OwnerModel, error) {
	mean, err := meanTicks("laptop", l.MeanIdle, 100, b.g)
	if err != nil {
		return nil, err
	}
	return station.Laptop{MeanIdle: mean}, nil
}

// Overnight models lab machines lent for a fixed nightly window with a
// small chance of an early-morning return. The zero value is the standard
// experiment window of 400 setup costs.
type Overnight struct {
	// Window is the lent window in caller time units; 0 means 400 setup
	// costs.
	Window float64
}

func (o Overnight) model(b binding) (station.OwnerModel, error) {
	w, err := meanTicks("overnight", o.Window, 400, b.g)
	if err != nil {
		return nil, err
	}
	return station.Overnight{Window: w}, nil
}

// Fixed offers identical deterministic contracts every stretch and, on its
// own, never interrupts — the degenerate temperament adversarial wrappers
// and analytic comparisons build on: Malicious{Base: Fixed{...}} measures
// worst-case placement on a known contract, Minimax{Base: Fixed{...}} the
// exact guaranteed floor the paper's theorems price.
type Fixed struct {
	// Lifespan is the lent stretch in caller time units; 0 means 250 setup
	// costs.
	Lifespan float64
	// Interrupts is the per-contract allowance; 0 defers to
	// Config.Interrupts and then to the standard 2.
	Interrupts int
}

func (x Fixed) model(b binding) (station.OwnerModel, error) {
	u, err := meanTicks("fixed", x.Lifespan, 250, b.g)
	if err != nil {
		return nil, err
	}
	if x.Interrupts < 0 {
		return nil, fmt.Errorf("fleet: fixed interrupt allowance must be ≥ 0, got %d", x.Interrupts)
	}
	p := x.Interrupts
	if p == 0 {
		p = b.defaultP
	}
	if p == 0 {
		p = 2
	}
	return fixedModel{u: u, p: p}, nil
}

// fixedModel is the internal face of Fixed.
type fixedModel struct {
	u quant.Tick
	p int
}

func (m fixedModel) Sample(rng *rand.Rand) station.Contract {
	return station.Contract{U: m.u, P: m.p}
}

func (m fixedModel) Interrupter(rng *rand.Rand, c station.Contract) sim.Interrupter {
	return adversary.None{}
}

func (m fixedModel) Name() string { return "fixed" }

// Malicious wraps a temperament with worst-case interrupt behavior: lent
// stretches come from the base temperament, but every return is placed as
// damagingly as the equalization-damage heuristic can — the
// guaranteed-output regime the paper optimizes for. For the exact minimax
// adversary (optimal but far more expensive), see Minimax.
type Malicious struct {
	Base Owner
}

func (m Malicious) model(b binding) (station.OwnerModel, error) {
	base, err := baseModel("malicious", m.Base, b)
	if err != nil {
		return nil, err
	}
	return station.Malicious{Base: base, Setup: b.g.ticksC}, nil
}

// baseModel resolves a wrapper's base temperament.
func baseModel(wrapper string, base Owner, b binding) (station.OwnerModel, error) {
	if base == nil {
		return nil, fmt.Errorf("fleet: %s owner needs a base temperament", wrapper)
	}
	return base.model(b)
}

// meanTicks quantizes an owner duration parameter: explicit caller units,
// or the standard multiple of the setup cost when zero.
func meanTicks(owner string, units float64, setups quant.Tick, g grid) (quant.Tick, error) {
	if units < 0 {
		return 0, fmt.Errorf("fleet: %s duration must be ≥ 0, got %g", owner, units)
	}
	if units == 0 {
		return setups * g.ticksC, nil
	}
	return g.ticks(units), nil
}

// statefulOwner reports whether the temperament (or any base under its
// wrappers) carries per-run state — today, trace Replay cursors. Stateful
// owners make a Fleet rebuild its station models for every run, and they
// cannot drive Replicate (a recorded trace names one run, not a
// distribution).
func statefulOwner(o Owner) bool {
	switch v := o.(type) {
	case Replay:
		return true
	case Malicious:
		return statefulOwner(v.Base)
	case Benign:
		return statefulOwner(v.Base)
	case Scripted:
		return statefulOwner(v.Base)
	case Stochastic:
		return statefulOwner(v.Base)
	case Poisson:
		return statefulOwner(v.Base)
	case SampledWorst:
		return statefulOwner(v.Base)
	case Minimax:
		return statefulOwner(v.Base)
	default:
		return false
	}
}

// ownerBases are the base temperament labels OwnerByName accepts.
var ownerBases = []string{"office", "laptop", "overnight", "fixed"}

// ownerPrefixes are the wrapper prefixes OwnerByName accepts around a base.
var ownerPrefixes = []string{"malicious-", "benign-", "minimax-"}

// Owners enumerates every temperament label OwnerByName accepts: the base
// temperaments in their standard experiment shapes, then each wrapper-prefix
// form (worst-case heuristic, never-interrupting, and exact minimax
// placement over the same base contracts).
func Owners() []string {
	out := append([]string(nil), ownerBases...)
	for _, p := range ownerPrefixes {
		for _, b := range ownerBases {
			out = append(out, p+b)
		}
	}
	return out
}

// OwnerByName selects a temperament by label — any name Owners lists:
// "office", "laptop", "overnight" or "fixed", each in its standard
// experiment shape, optionally wrapped as "malicious-office",
// "benign-laptop", "minimax-fixed" and so on. Trace replay and custom
// availability processes have no names: build Replay or CustomOwner values
// directly.
func OwnerByName(name string) (Owner, error) {
	base, prefix := name, ""
	for _, p := range ownerPrefixes {
		if rest, ok := strings.CutPrefix(name, p); ok {
			base, prefix = rest, p
			break
		}
	}
	var o Owner
	switch base {
	case "office":
		o = Office{}
	case "laptop":
		o = Laptop{}
	case "overnight":
		o = Overnight{}
	case "fixed":
		o = Fixed{}
	default:
		return nil, fmt.Errorf("fleet: unknown owner %q (want one of %s)", name, strings.Join(Owners(), ", "))
	}
	switch prefix {
	case "malicious-":
		o = Malicious{Base: o}
	case "benign-":
		o = Benign{Base: o}
	case "minimax-":
		o = Minimax{Base: o}
	}
	return o, nil
}
