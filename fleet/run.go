package fleet

import (
	"context"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/task"
)

// StationReport describes one station's contribution, in caller time units.
type StationReport struct {
	Station        int
	Opportunities  int     // owner contracts actually played
	Lifespan       float64 // borrowed time offered across those contracts
	Work           float64 // fluid work banked: Σ (period − setup) over completed periods
	TaskWork       float64 // total duration of completed tasks
	TasksCompleted int
	Interrupts     int
	Idle           float64 // borrowed time never scheduled
	Killed         float64 // borrowed time destroyed by draconian kills
}

// Result aggregates one fleet run, in caller time units.
type Result struct {
	Stations       []StationReport
	TasksCompleted int
	TasksLeft      int     // job tasks never completed
	TaskWork       float64 // completed task duration fleet-wide
	JobWork        float64 // the job's total task duration (as quantized)
	Work           float64 // fluid work banked fleet-wide
	Lifespan       float64 // borrowed time offered fleet-wide
	Interrupts     int
	Steals         int // cross-queue task migrations (Sharded runs)
	// InFlight counts tasks still crossing between clusters when the run
	// ended (Clusters ≥ 2 with StealLatency > 0 only); they never completed
	// and are included in TasksLeft.
	InFlight int
	// TasksLost counts tasks destroyed by injected faults (Config.Faults) —
	// queued work on fully crashed steal groups and parcels lost in
	// transit. Disjoint from TasksCompleted and TasksLeft; the three always
	// sum to the job's task count.
	TasksLost int
}

// Utilization is banked fluid work over offered lifespan — the fleet-survey
// figure of merit.
func (r Result) Utilization() float64 {
	if r.Lifespan == 0 {
		return 0
	}
	return r.Work / r.Lifespan
}

// CompletionFraction is completed task work over the job's total (1 for an
// empty job) — the shared-job figure of merit.
func (r Result) CompletionFraction() float64 {
	if r.JobWork == 0 {
		return 1
	}
	return r.TaskWork / r.JobWork
}

// Imbalance is max/mean per-station completed task work (1 = perfect
// balance); stations that completed nothing count toward the mean.
func (r Result) Imbalance() float64 {
	if len(r.Stations) == 0 {
		return 1
	}
	var sum, max float64
	for _, s := range r.Stations {
		sum += s.TaskWork
		if s.TaskWork > max {
			max = s.TaskWork
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(r.Stations)))
}

// Run farms the job across the fleet at full speed — the live engine.
// Stations simulate concurrently, drawing from the configured pool; with a
// Shared or Sharded pool the aggregate accounting is reproducible but task
// assignment to stations depends on scheduling (use RunDeterministic for
// full reproducibility); with a Private pool the entire Result is
// bit-identical at any Workers. Cancelling ctx stops every station at its
// next opportunity boundary and returns ctx.Err().
func (f *Fleet) Run(ctx context.Context, job Job) (Result, error) {
	fj := f.job(job)
	stations, recorded, err := f.runStations()
	if err != nil {
		return Result{}, err
	}
	var res farm.Result
	if f.cfg.Pool == Private || len(fj.Tasks) == 0 {
		// An empty job is a pure fluid survey whatever the pool setting:
		// the shared pools are exhaustible (an empty one would end the job
		// before the first opportunity), so it runs on the inexhaustible
		// private layout, where stations play out every contract.
		res, err = f.farm(stations).RunPool(ctx, farm.NewPrivatePools(f.privateBags(fj)), f.factory, f.cfg.Seed)
	} else {
		res, err = f.farm(stations).Run(ctx, fj, f.factory, f.cfg.Seed)
	}
	if err != nil {
		return Result{}, err
	}
	recorded()
	return f.result(res, fj.TotalWork()), nil
}

// RunDeterministic farms the job with fully reproducible semantics: the
// result is a pure function of (Config, Job) — Workers changes wall-clock
// time only. Shared and Sharded pools run the round-synchronized engine
// (stations grouped into Shards queues, stealing only at round barriers);
// a Private pool's live Run already meets the contract and is used as is.
func (f *Fleet) RunDeterministic(ctx context.Context, job Job) (Result, error) {
	if f.cfg.Pool == Private || len(job.Tasks) == 0 {
		return f.Run(ctx, job) // both already bit-identical at any Workers
	}
	fj := f.job(job)
	stations, recorded, err := f.runStations()
	if err != nil {
		return Result{}, err
	}
	res, err := f.farm(stations).RunDeterministic(ctx, fj, f.factory, f.cfg.Seed, f.cfg.Workers)
	if err != nil {
		return Result{}, err
	}
	recorded()
	return f.result(res, fj.TotalWork()), nil
}

// privateBags deals the job round-robin into one private bag per station.
func (f *Fleet) privateBags(fj farm.Job) []*task.Bag {
	if len(fj.Tasks) == 0 {
		return nil
	}
	hands := task.Deal(fj.Tasks, len(f.stations))
	bags := make([]*task.Bag, len(hands))
	for i, hand := range hands {
		bags[i] = task.NewBag(hand)
	}
	return bags
}

// result converts the engine's tick-grid accounting to caller units.
// totalWork is the job's total quantized task time — for a batch run the
// Job's, for a resident service everything ever submitted.
func (f *Fleet) result(res farm.Result, totalWork quant.Tick) Result {
	out := Result{
		Stations:       make([]StationReport, len(res.Stations)),
		TasksCompleted: res.TasksCompleted,
		TasksLeft:      res.TasksLeft,
		TaskWork:       f.g.units(res.TaskWork),
		JobWork:        f.g.units(totalWork),
		Work:           f.g.units(res.FluidWork),
		Interrupts:     res.Interrupts,
		Steals:         res.Steals,
		InFlight:       res.InFlight,
		TasksLost:      res.TasksLost,
	}
	for i, rep := range res.Stations {
		out.Stations[i] = StationReport{
			Station:        rep.Station,
			Opportunities:  rep.Opportunities,
			Lifespan:       f.g.units(rep.LifespanTicks),
			Work:           f.g.units(rep.FluidWork),
			TaskWork:       f.g.units(rep.TaskWork),
			TasksCompleted: rep.TasksCompleted,
			Interrupts:     rep.Interrupts,
			Idle:           f.g.units(rep.IdleTicks),
			Killed:         f.g.units(rep.KilledTicks),
		}
		out.Lifespan += out.Stations[i].Lifespan
	}
	return out
}
