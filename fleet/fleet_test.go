package fleet

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/mc"
	"cyclesteal/internal/now"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/station"
	"cyclesteal/internal/task"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no stations", Config{Setup: 5}},
		{"no setup", Config{Stations: 4}},
		{"negative setup", Config{Stations: 4, Setup: -1}},
		{"negative interrupts", Config{Stations: 4, Setup: 5, Interrupts: -1}},
		{"negative shards", Config{Stations: 4, Setup: 5, Shards: -1}},
		{"bad pool", Config{Stations: 4, Setup: 5, Pool: Pool(9)}},
		{"bad policy", Config{Stations: 4, Setup: 5, Policy: Policy{Name: "nope"}}},
		{"chunkless fixedchunk", Config{Stations: 4, Setup: 5, Policy: Policy{Name: "fixedchunk"}}},
		{"bad owner duration", Config{Stations: 4, Setup: 5, Owners: []Owner{Office{MeanIdle: -3}}}},
		{"bad owner interrupts", Config{Stations: 4, Setup: 5, Owners: []Owner{Office{Interrupts: -1}}}},
		{"nil owner", Config{Stations: 4, Setup: 5, Owners: []Owner{Office{}, nil}}},
		{"baseless malicious", Config{Stations: 4, Setup: 5, Owners: []Owner{Malicious{}}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, tc.cfg)
		}
	}
	if _, err := New(Config{Stations: 1, Setup: 0.5}); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
}

// TestDefaultOwnersMatchMixedFleet pins the facade's default fleet to the
// experiments' standard heterogeneous NOW: promoting the engines must not
// quietly change what "a 64-station fleet" means.
func TestDefaultOwnersMatchMixedFleet(t *testing.T) {
	f, err := New(Config{Stations: 7, Setup: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := station.MixedFleet(7, 100)
	if !reflect.DeepEqual(f.stations, want) {
		t.Fatalf("default fleet diverged from station.MixedFleet:\n got %+v\nwant %+v", f.stations, want)
	}
}

func TestOwnerAndPolicySelectors(t *testing.T) {
	for _, name := range []string{"office", "laptop", "overnight", "malicious-laptop"} {
		if _, err := OwnerByName(name); err != nil {
			t.Errorf("OwnerByName(%q): %v", name, err)
		}
	}
	if _, err := OwnerByName("mainframe"); err == nil {
		t.Error("OwnerByName accepted an unknown temperament")
	}
	for _, name := range []string{"", "equalized", "guideline", "nonadaptive", "single", "fixedchunk"} {
		if _, err := PolicyByName(name); err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
		}
	}
	if _, err := PolicyByName("lru"); err == nil {
		t.Error("PolicyByName accepted an unknown policy")
	}
}

// facadeJob is the shared test workload, in caller units.
func facadeJob() Job { return Job{Tasks: ExponentialTasks(600, 12, 3)} }

// equivalentInternalJob quantizes facadeJob exactly as the facade does for
// Setup 5, TicksPerSetup 100.
func equivalentInternalJob(j Job) farm.Job {
	tasks := make([]task.Task, len(j.Tasks))
	for i, d := range j.Tasks {
		tk := quant.Tick(math.Round(d / 5 * 100))
		if tk < 1 {
			tk = 1
		}
		tasks[i] = task.Task{ID: i, Duration: tk}
	}
	return farm.Job{Tasks: tasks}
}

// TestRunDeterministicBitIdentical pins the facade's deterministic engine
// to (a) itself across worker counts and (b) the equivalent raw
// internal/farm call: the public wrapper adds units conversion, nothing
// else.
func TestRunDeterministicBitIdentical(t *testing.T) {
	cfg := Config{Stations: 24, Setup: 5, Opportunities: 6, Shards: 4, Seed: 11}
	job := facadeJob()

	var results []Result
	for _, workers := range []int{1, 8} {
		c := cfg
		c.Workers = workers
		f, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.RunDeterministic(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("RunDeterministic differs between Workers 1 and 8")
	}

	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := farm.Farm{
		Stations:                station.MixedFleet(24, 100),
		OpportunitiesPerStation: 6,
		Shards:                  4,
	}.RunDeterministic(context.Background(), equivalentInternalJob(job), f.factory, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := results[0].TasksCompleted, raw.TasksCompleted; got != want {
		t.Fatalf("facade TasksCompleted %d, internal %d", got, want)
	}
	if got, want := results[0].Steals, raw.Steals; got != want {
		t.Fatalf("facade Steals %d, internal %d", got, want)
	}
	if got, want := results[0].Work, float64(raw.FluidWork)/100*5; got != want {
		t.Fatalf("facade Work %g, internal %g", got, want)
	}
	for i, rep := range raw.Stations {
		if got, want := results[0].Stations[i].TaskWork, float64(rep.TaskWork)/100*5; got != want {
			t.Fatalf("station %d TaskWork: facade %g, internal %g", i, got, want)
		}
	}
}

// TestPrivateRunBitIdentical pins the Private pool's live engine to the
// equivalent internal/now fleet survey at Workers 1 vs 8.
func TestPrivateRunBitIdentical(t *testing.T) {
	cfg := Config{Stations: 12, Setup: 5, Opportunities: 5, Pool: Private, Seed: 7}
	job := facadeJob()

	var results []Result
	for _, workers := range []int{1, 8} {
		c := cfg
		c.Workers = workers
		f, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("Private Run differs between Workers 1 and 8")
	}

	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hands := task.Deal(equivalentInternalJob(job).Tasks, 12)
	nf := now.Fleet{Stations: station.MixedFleet(12, 100), OpportunitiesPerStation: 5}
	raw, err := nf.Run(context.Background(), f.factory, 7, func(ws now.Workstation) *task.Bag {
		return task.NewBag(hands[ws.ID])
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := results[0].TasksCompleted, raw.Tasks; got != want {
		t.Fatalf("facade TasksCompleted %d, internal %d", got, want)
	}
	if got, want := results[0].Work, float64(raw.Work)/100*5; got != want {
		t.Fatalf("facade Work %g, internal %g", got, want)
	}
	if got, want := results[0].Lifespan, sumLifespan(raw); got != want {
		t.Fatalf("facade Lifespan %g, internal %g", got, want)
	}
}

func sumLifespan(raw now.FleetResult) float64 {
	var u float64
	for _, s := range raw.Stations {
		u += float64(s.LifespanTicks) / 100 * 5
	}
	return u
}

// TestReplicateBitIdentical pins Replicate to itself across worker counts
// and to the raw internal/farm replication.
func TestReplicateBitIdentical(t *testing.T) {
	cfg := Config{Stations: 16, Setup: 5, Opportunities: 4, Shards: 4, Seed: 21}
	job := facadeJob()

	var reps []Replication
	for _, workers := range []int{1, 8} {
		c := cfg
		c.Workers = workers
		f, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := f.Replicate(context.Background(), job, 10)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	if !reflect.DeepEqual(reps[0], reps[1]) {
		t.Fatal("Replicate differs between Workers 1 and 8")
	}

	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := farm.Farm{
		Stations:                station.MixedFleet(16, 100),
		OpportunitiesPerStation: 4,
		Shards:                  4,
	}.Replicate(context.Background(), equivalentInternalJob(job), f.factory, mc.Config{Trials: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reps[0].TasksCompleted.Mean, sums[farm.MetricTasksCompleted].Mean; got != want {
		t.Fatalf("facade tasks mean %g, internal %g", got, want)
	}
	if got, want := reps[0].Work.P99, sums[farm.MetricFluidWork].P99/100*5; got != want {
		t.Fatalf("facade work P99 %g, internal %g", got, want)
	}
	if got, want := reps[0].Completion.Median, sums[farm.MetricCompletionFrac].Median; got != want {
		t.Fatalf("facade completion median %g, internal %g", got, want)
	}
	if reps[0].Trials != 10 || reps[0].Completion.N != 10 {
		t.Fatalf("trial counts: %d, %d", reps[0].Trials, reps[0].Completion.N)
	}
	// Private replication fills the survey metrics instead.
	pc := cfg
	pc.Pool = Private
	pf, err := New(pc)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := pf.Replicate(context.Background(), job, 5)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Utilization.N != 5 || prep.Lifespan.N != 5 {
		t.Fatalf("private replication missing survey metrics: %+v", prep.Utilization)
	}
	if prep.Completion.N != 0 || prep.Steals.N != 0 {
		t.Fatal("private replication filled shared-job metrics")
	}
	if prep.Utilization.Mean <= 0 || prep.Utilization.Mean > 1 {
		t.Fatalf("utilization mean %g out of range", prep.Utilization.Mean)
	}
}

// leakCheck snapshots the goroutine count and returns a func asserting the
// run's workers have drained (a bounded retry absorbs runtime bookkeeping
// goroutines winding down).
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// cancellation drives fn with a context cancelled mid-run and asserts the
// error is ctx.Err(), the return is prompt, and no goroutines leak.
func cancellation(t *testing.T, fn func(ctx context.Context) error) {
	t.Helper()
	check := leakCheck(t)
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(5*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	start := time.Now()
	err := fn(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (after %v)", err, elapsed)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation not prompt: run returned after %v", elapsed)
	}
	check()
}

// bigConfig is a 1000-station fleet whose job cannot finish in the few
// milliseconds before the test cancels it.
func bigConfig(pool Pool) Config {
	return Config{Stations: 1000, Setup: 5, Opportunities: 50, Pool: pool, Seed: 5}
}

func bigJob() Job { return Job{Tasks: FixedTasks(1000000, 10)} }

func TestRunCancellation(t *testing.T) {
	f, err := New(bigConfig(Sharded))
	if err != nil {
		t.Fatal(err)
	}
	cancellation(t, func(ctx context.Context) error {
		_, err := f.Run(ctx, bigJob())
		return err
	})
}

func TestRunDeterministicCancellation(t *testing.T) {
	f, err := New(bigConfig(Sharded))
	if err != nil {
		t.Fatal(err)
	}
	cancellation(t, func(ctx context.Context) error {
		_, err := f.RunDeterministic(ctx, bigJob())
		return err
	})
}

func TestPrivateRunCancellation(t *testing.T) {
	f, err := New(bigConfig(Private))
	if err != nil {
		t.Fatal(err)
	}
	cancellation(t, func(ctx context.Context) error {
		_, err := f.Run(ctx, bigJob())
		return err
	})
}

func TestReplicateCancellation(t *testing.T) {
	f, err := New(bigConfig(Sharded))
	if err != nil {
		t.Fatal(err)
	}
	cancellation(t, func(ctx context.Context) error {
		_, err := f.Replicate(ctx, bigJob(), 1000)
		return err
	})
}

// TestProgressDeterministic asserts the round-barrier observer: snapshots
// are monotone, conserve the task count, and end exactly at the final
// accounting.
func TestProgressDeterministic(t *testing.T) {
	var snaps []Progress
	cfg := Config{
		Stations: 16, Setup: 5, Opportunities: 8, Shards: 4, Seed: 2,
		Progress: func(p Progress) { snaps = append(snaps, p) },
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job := facadeJob()
	res, err := f.RunDeterministic(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	prev := -1
	for i, s := range snaps {
		if s.Completed+s.Remaining != len(job.Tasks) {
			t.Fatalf("snapshot %d does not conserve tasks: %+v", i, s)
		}
		if s.Completed < prev {
			t.Fatalf("snapshot %d regressed: %+v", i, s)
		}
		prev = s.Completed
	}
	last := snaps[len(snaps)-1]
	if last.Completed != res.TasksCompleted || last.Remaining != res.TasksLeft || last.Steals != res.Steals {
		t.Fatalf("final snapshot %+v does not match result (%d done, %d left, %d steals)",
			last, res.TasksCompleted, res.TasksLeft, res.Steals)
	}
}

// TestProgressLive asserts the wall-clock observer fires (at least the
// final snapshot) and agrees with the live result.
func TestProgressLive(t *testing.T) {
	var snaps []Progress
	cfg := Config{
		Stations: 8, Setup: 5, Opportunities: 4, Seed: 2,
		Progress:         func(p Progress) { snaps = append(snaps, p) },
		ProgressInterval: time.Millisecond,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job := facadeJob()
	res, err := f.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	last := snaps[len(snaps)-1]
	if last.Completed != res.TasksCompleted {
		t.Fatalf("final snapshot %+v vs result %d completed", last, res.TasksCompleted)
	}
}

// TestEmptyJobIsFluidSurvey pins the Job.Tasks doc: an empty job banks
// fluid work on every pool layout (the shared pools' exhaustible ledger
// must not end the run before the first opportunity), deterministically.
func TestEmptyJobIsFluidSurvey(t *testing.T) {
	for _, pool := range []Pool{Sharded, Shared, Private} {
		var results []Result
		for _, workers := range []int{1, 8} {
			f, err := New(Config{Stations: 8, Setup: 5, Opportunities: 4, Pool: pool, Seed: 6, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Run(context.Background(), Job{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Work <= 0 || res.Lifespan <= 0 {
				t.Fatalf("%v pool: empty job banked no fluid work: %+v", pool, res)
			}
			det, err := f.RunDeterministic(context.Background(), Job{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, det) {
				t.Fatalf("%v pool: empty-job Run and RunDeterministic diverge", pool)
			}
			results = append(results, res)
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Fatalf("%v pool: empty-job run differs between Workers 1 and 8", pool)
		}
		f, err := New(Config{Stations: 8, Setup: 5, Opportunities: 4, Pool: pool, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := f.Replicate(context.Background(), Job{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Work.N != 3 || rep.Work.Mean <= 0 {
			t.Fatalf("%v pool: empty-job replication banked nothing: %+v", pool, rep.Work)
		}
	}
}
