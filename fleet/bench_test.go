package fleet_test

import (
	"bytes"
	"context"
	"testing"

	"cyclesteal/fleet"
)

// BenchmarkFleetTopologyDeterministic prices the whole facade path for a
// clustered fleet: config validation, unit quantization, the deterministic
// round engine with latency-priced cross-cluster steals, and result
// conversion. Seeds vary per iteration so the engine cannot memoize a trial,
// but every seed is deterministic, keeping allocs/op stable for the exact
// alloc gate.
func BenchmarkFleetTopologyDeterministic(b *testing.B) {
	job := fleet.Job{Tasks: fleet.FixedTasks(2000, 1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fleet.New(fleet.Config{
			Stations: 64,
			Setup:    1,
			Owners: []fleet.Owner{
				fleet.Fixed{Lifespan: 8}, fleet.Fixed{Lifespan: 8},
				fleet.Fixed{Lifespan: 3}, fleet.Fixed{Lifespan: 3},
			},
			Policy:        fleet.Policy{Name: "single"},
			Opportunities: 10,
			Shards:        8,
			Clusters:      4,
			StealLatency:  8,
			Workers:       4,
			Seed:          int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := f.RunDeterministic(context.Background(), job)
		if err != nil {
			b.Fatal(err)
		}
		if res.Steals == 0 {
			b.Fatal("benchmark fleet never stole; not exercising the topology path")
		}
	}
}

// BenchmarkFleetServiceDrain prices the resident-service loop on the
// batch-equivalent path: one standing fleet, jobs from two tenants drained
// to completion, no churn. The delta against the deterministic batch
// benchmark is the cost of the service layer itself (admission, job
// attribution, the event log). Seeds vary per iteration so nothing
// memoizes, but every seed is deterministic, keeping allocs/op stable for
// the exact alloc gate.
func BenchmarkFleetServiceDrain(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := fleet.NewService(fleet.ServiceConfig{
			Fleet: fleet.Config{Stations: 64, Setup: 5, Shards: 8, Workers: 4, Seed: int64(i)},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Submit("ana", fleet.Job{Tasks: fleet.FixedTasks(1500, 10)}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Submit("bo", fleet.Job{Tasks: fleet.FixedTasks(1500, 12)}); err != nil {
			b.Fatal(err)
		}
		res, err := s.Drain(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Fleet.TasksCompleted != 3000 {
			b.Fatalf("service completed %d of 3000 tasks", res.Fleet.TasksCompleted)
		}
	}
}

// BenchmarkFleetServiceChurn prices the service with everything on: station
// churn rebalancing queues mid-flight, per-period checkpointing in the sim,
// and the event log recording every roster change.
func BenchmarkFleetServiceChurn(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := fleet.NewService(fleet.ServiceConfig{
			Fleet: fleet.Config{Stations: 64, Setup: 5, Shards: 8, Workers: 4, Checkpoint: 12, Seed: int64(i)},
			Churn: fleet.ChurnConfig{LeaveProb: 0.02, JoinProb: 0.05, MinStations: 16, Seed: int64(i) + 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Submit("ana", fleet.Job{Tasks: fleet.FixedTasks(3000, 10)}); err != nil {
			b.Fatal(err)
		}
		res, err := s.Drain(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Fleet.TasksCompleted != 3000 {
			b.Fatalf("service completed %d of 3000 tasks", res.Fleet.TasksCompleted)
		}
	}
}

// BenchmarkFleetServiceWAL prices durability: the Drain benchmark's
// workload with every event written through the JSONL write-ahead log and
// flushed at each round barrier (an in-memory sink, so the figure is the
// encoding cost, not the disk). The delta against BenchmarkFleetServiceDrain
// is what crash recoverability costs per run.
func BenchmarkFleetServiceWAL(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wal bytes.Buffer
		s, err := fleet.NewService(fleet.ServiceConfig{
			Fleet: fleet.Config{Stations: 64, Setup: 5, Shards: 8, Workers: 4, Seed: int64(i)},
			WAL:   &wal,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Submit("ana", fleet.Job{Tasks: fleet.FixedTasks(1500, 10)}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Submit("bo", fleet.Job{Tasks: fleet.FixedTasks(1500, 12)}); err != nil {
			b.Fatal(err)
		}
		res, err := s.Drain(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Fleet.TasksCompleted != 3000 {
			b.Fatalf("service completed %d of 3000 tasks", res.Fleet.TasksCompleted)
		}
		if wal.Len() == 0 {
			b.Fatal("write-ahead log stayed empty")
		}
	}
}
