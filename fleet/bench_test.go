package fleet_test

import (
	"context"
	"testing"

	"cyclesteal/fleet"
)

// BenchmarkFleetTopologyDeterministic prices the whole facade path for a
// clustered fleet: config validation, unit quantization, the deterministic
// round engine with latency-priced cross-cluster steals, and result
// conversion. Seeds vary per iteration so the engine cannot memoize a trial,
// but every seed is deterministic, keeping allocs/op stable for the exact
// alloc gate.
func BenchmarkFleetTopologyDeterministic(b *testing.B) {
	job := fleet.Job{Tasks: fleet.FixedTasks(2000, 1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fleet.New(fleet.Config{
			Stations: 64,
			Setup:    1,
			Owners: []fleet.Owner{
				fleet.Fixed{Lifespan: 8}, fleet.Fixed{Lifespan: 8},
				fleet.Fixed{Lifespan: 3}, fleet.Fixed{Lifespan: 3},
			},
			Policy:        fleet.Policy{Name: "single"},
			Opportunities: 10,
			Shards:        8,
			Clusters:      4,
			StealLatency:  8,
			Workers:       4,
			Seed:          int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := f.RunDeterministic(context.Background(), job)
		if err != nil {
			b.Fatal(err)
		}
		if res.Steals == 0 {
			b.Fatal("benchmark fleet never stole; not exercising the topology path")
		}
	}
}
