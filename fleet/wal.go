package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// The service write-ahead log is JSON Lines, the same shape as the trace
// package's availability format: a header object naming the format, then
// one object per ServiceEvent in log order. A session killed by its fault
// plan closes the log with a final {"kind":"kill"} record.
//
//	{"format":"cyclesteal-service-wal","version":1,"ticks_per_setup":100}
//	{"round":0,"kind":"submit","tenant":"acme","tasks":[12,12,12]}
//	{"round":3,"kind":"leave","sampled":true,"station":2}
//	{"round":7,"kind":"kill","sampled":true}
//
// Fields at their zero value are omitted. ticks_per_setup pins the grid the
// durations were quantized on; RecoverService refuses a log whose grid
// disagrees with the configuration it is given.
const (
	walFormat  = "cyclesteal-service-wal"
	walVersion = 1
)

// walHeader is the log's first line.
type walHeader struct {
	Format        string `json:"format"`
	Version       int    `json:"version"`
	TicksPerSetup int    `json:"ticks_per_setup"`
}

// walRecord is one event line. Kind travels as the event kind's name, so
// the log reads without this package's enum values at hand.
type walRecord struct {
	Round      int       `json:"round"`
	Kind       string    `json:"kind"`
	Sampled    bool      `json:"sampled,omitempty"`
	Tenant     string    `json:"tenant,omitempty"`
	JobID      int       `json:"job_id,omitempty"`
	Tasks      []float64 `json:"tasks,omitempty"`
	Station    int       `json:"station,omitempty"`
	Checkpoint float64   `json:"checkpoint,omitempty"`
	Adaptive   bool      `json:"adaptive,omitempty"`
}

// walKinds maps the wire names back to event kinds.
var walKinds = map[string]EventKind{
	"submit":     EventSubmit,
	"join":       EventJoin,
	"leave":      EventLeave,
	"checkpoint": EventCheckpoint,
	"crash":      EventCrash,
	"kill":       EventKill,
}

func writeWALHeader(w io.Writer, ticksPerSetup int) error {
	return writeWALLine(w, walHeader{Format: walFormat, Version: walVersion, TicksPerSetup: ticksPerSetup})
}

func writeWALEvent(w io.Writer, ev ServiceEvent) error {
	if _, ok := walKinds[ev.Kind.String()]; !ok {
		return fmt.Errorf("cannot encode event kind %v", ev.Kind)
	}
	return writeWALLine(w, walRecord{
		Round:      ev.Round,
		Kind:       ev.Kind.String(),
		Sampled:    ev.Sampled,
		Tenant:     ev.Tenant,
		JobID:      ev.JobID,
		Tasks:      ev.Tasks,
		Station:    ev.Station,
		Checkpoint: ev.Checkpoint,
		Adaptive:   ev.Adaptive,
	})
}

func writeWALLine(w io.Writer, v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = w.Write(line)
	return err
}

// decodeWAL parses a whole log strictly: a malformed header, an unknown
// kind, a non-finite number or a round running backwards is an error, never
// a panic and never a silent skip.
func decodeWAL(r io.Reader) (walHeader, []ServiceEvent, error) {
	br := bufio.NewReader(r)
	var hdr walHeader
	line, err := readWALLine(br)
	if err != nil {
		return hdr, nil, fmt.Errorf("fleet: wal: missing header: %w", err)
	}
	if err := strictUnmarshal(line, &hdr); err != nil {
		return hdr, nil, fmt.Errorf("fleet: wal: header: %w", err)
	}
	if hdr.Format != walFormat {
		return hdr, nil, fmt.Errorf("fleet: wal: format %q, want %q", hdr.Format, walFormat)
	}
	if hdr.Version != walVersion {
		return hdr, nil, fmt.Errorf("fleet: wal: version %d, want %d", hdr.Version, walVersion)
	}
	if hdr.TicksPerSetup < 1 {
		return hdr, nil, fmt.Errorf("fleet: wal: ticks_per_setup must be ≥ 1, got %d", hdr.TicksPerSetup)
	}
	var events []ServiceEvent
	for n := 2; ; n++ {
		line, err := readWALLine(br)
		if err == io.EOF {
			return hdr, events, nil
		}
		if err != nil {
			return hdr, nil, fmt.Errorf("fleet: wal: line %d: %w", n, err)
		}
		var rec walRecord
		if err := strictUnmarshal(line, &rec); err != nil {
			return hdr, nil, fmt.Errorf("fleet: wal: line %d: %w", n, err)
		}
		kind, ok := walKinds[rec.Kind]
		if !ok {
			return hdr, nil, fmt.Errorf("fleet: wal: line %d: unknown kind %q", n, rec.Kind)
		}
		if rec.Round < 0 {
			return hdr, nil, fmt.Errorf("fleet: wal: line %d: negative round %d", n, rec.Round)
		}
		if len(events) > 0 && rec.Round < events[len(events)-1].Round {
			return hdr, nil, fmt.Errorf("fleet: wal: line %d: round %d runs backwards (previous event at round %d)", n, rec.Round, events[len(events)-1].Round)
		}
		if len(events) > 0 && events[len(events)-1].Kind == EventKill {
			return hdr, nil, fmt.Errorf("fleet: wal: line %d: events after the kill record", n)
		}
		if math.IsNaN(rec.Checkpoint) || math.IsInf(rec.Checkpoint, 0) || rec.Checkpoint < 0 {
			return hdr, nil, fmt.Errorf("fleet: wal: line %d: checkpoint must be ≥ 0 and finite, got %g", n, rec.Checkpoint)
		}
		for i, d := range rec.Tasks {
			if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
				return hdr, nil, fmt.Errorf("fleet: wal: line %d: task %d duration must be ≥ 0 and finite, got %g", n, i, d)
			}
		}
		if len(rec.Tasks) == 0 {
			rec.Tasks = nil // "tasks":[] and an absent field read the same
		}
		events = append(events, ServiceEvent{
			Round:      rec.Round,
			Kind:       kind,
			Tenant:     rec.Tenant,
			JobID:      rec.JobID,
			Tasks:      rec.Tasks,
			Station:    rec.Station,
			Checkpoint: rec.Checkpoint,
			Adaptive:   rec.Adaptive,
			Sampled:    rec.Sampled,
		})
	}
}

// readWALLine returns the next non-blank line; io.EOF at a clean end.
func readWALLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return "", err
		}
		trimmed := strings.TrimSpace(line)
		if trimmed != "" {
			return trimmed, nil
		}
		if err == io.EOF {
			return "", io.EOF
		}
	}
}

// strictUnmarshal decodes one JSON object rejecting unknown fields and
// trailing data — an edited log fails loudly, not quietly.
func strictUnmarshal(line string, v any) error {
	dec := json.NewDecoder(strings.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after object")
	}
	return nil
}

// ReadWAL decodes a service write-ahead log into its event sequence,
// validating the header and every line strictly; the trace-format analogue
// for service sessions. Feed the events to ReplayService, or hand the raw
// log to RecoverService to resume the session instead.
func ReadWAL(r io.Reader) ([]ServiceEvent, error) {
	_, events, err := decodeWAL(r)
	return events, err
}

// RecoverService rebuilds a resident session from its durable log after a
// scheduler kill: give it the same ServiceConfig the dead session ran
// (same seeds, fleet, churn and fault plan — only Faults.KillRound raised
// or cleared, or the session dies at the same round again) and the log its
// WAL wrote. The returned Service is paused at round 0 in recovery mode;
// its first Drain or Start replays the logged rounds — external events
// applied from the log, sampled churn and crashes regenerated from the
// seeds and checked against it — and then continues live, bit-identically
// to a session that was never killed. Jobs and ops that never reached the
// dead session's log are gone: resubmit them. A fresh cfg.WAL may be set
// (use a new file — the recovery re-logs the whole history into it).
func RecoverService(cfg ServiceConfig, wal io.Reader) (*Service, error) {
	hdr, events, err := decodeWAL(wal)
	if err != nil {
		return nil, err
	}
	s, err := NewService(cfg)
	if err != nil {
		return nil, err
	}
	if hdr.TicksPerSetup != int(s.f.g.ticksC) {
		return nil, fmt.Errorf("fleet: recover: log quantized at %d ticks per setup, config resolves to %d", hdr.TicksPerSetup, int(s.f.g.ticksC))
	}
	recoverTo := 0
	if n := len(events); n > 0 {
		if last := events[n-1]; last.Kind == EventKill {
			recoverTo = last.Round
			events = events[:n-1]
		} else {
			// No kill record (the log outlived a session that was never
			// killed, or died without closing): recover everything logged.
			recoverTo = last.Round + 1
		}
	}
	if len(events) > 0 || recoverTo > 0 {
		s.recovering = true
		s.recoverLog = events
		s.recoverTo = recoverTo
	}
	return s, nil
}
