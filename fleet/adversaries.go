package fleet

import (
	"fmt"
	"math/rand"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/game"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/station"
)

// The wrappers in this file separate the two halves of an owner: the base
// temperament supplies the contract stream (lifespans and allowances), the
// wrapper replaces how returns are placed within each contract. They expose
// the internal/adversary strategies through the facade, so a public run can
// measure guaranteed — not just expected — output: Benign is the
// never-interrupting ceiling, Malicious the equalization-damage heuristic,
// Minimax the exact game-theoretic floor, and Scripted / Stochastic /
// Poisson / SampledWorst the strategies between.

// Benign wraps a temperament with an owner who never returns early: every
// contract runs its full lifespan. The ceiling the adversarial owners are
// measured against — the gap to Benign is what interruptions cost.
type Benign struct {
	Base Owner
}

func (o Benign) model(b binding) (station.OwnerModel, error) {
	base, err := baseModel("benign", o.Base, b)
	if err != nil {
		return nil, err
	}
	return overrideModel{base: base, label: "benign", mk: func(*rand.Rand, station.Contract) sim.Interrupter {
		return adversary.None{}
	}}, nil
}

// Scripted wraps a temperament with a fixed return script: each contract
// replays Offsets as its episode-relative interrupt times (caller units, one
// per episode, clamped into the residual lifespan), then stops interrupting.
// Deterministic by construction — the regression-test and what-if owner.
type Scripted struct {
	Base Owner
	// Offsets are episode-relative return times in caller time units,
	// consumed one per episode within each contract.
	Offsets []float64
}

func (o Scripted) model(b binding) (station.OwnerModel, error) {
	base, err := baseModel("scripted", o.Base, b)
	if err != nil {
		return nil, err
	}
	offs := make([]quant.Tick, len(o.Offsets))
	for i, u := range o.Offsets {
		if !(u > 0) {
			return nil, fmt.Errorf("fleet: scripted offset %d must be > 0, got %g", i, u)
		}
		offs[i] = b.g.ticks(u)
	}
	return overrideModel{base: base, label: "scripted", mk: func(*rand.Rand, station.Contract) sim.Interrupter {
		// A fresh cursor per contract over the shared, read-only offsets.
		return &adversary.Scripted{Offsets: offs}
	}}, nil
}

// Stochastic wraps a temperament with a memoryless owner: each episode is
// interrupted with probability Prob, at a uniformly chosen instant.
type Stochastic struct {
	Base Owner
	// Prob is the per-episode interrupt probability, in [0, 1].
	Prob float64
}

func (o Stochastic) model(b binding) (station.OwnerModel, error) {
	base, err := baseModel("stochastic", o.Base, b)
	if err != nil {
		return nil, err
	}
	if o.Prob < 0 || o.Prob > 1 {
		return nil, fmt.Errorf("fleet: stochastic probability must be in [0, 1], got %g", o.Prob)
	}
	return overrideModel{base: base, label: "stochastic", mk: func(rng *rand.Rand, _ station.Contract) sim.Interrupter {
		return &adversary.Random{Rng: rng, Prob: o.Prob}
	}}, nil
}

// Poisson wraps a temperament with an owner who returns after an
// exponentially distributed absence: the first arrival inside an episode
// interrupts it. The natural stochastic owner for NOW workstations.
type Poisson struct {
	Base Owner
	// Mean is the mean absence in caller time units; 0 means half the
	// contract's lifespan (the Office temperament's return process).
	Mean float64
}

func (o Poisson) model(b binding) (station.OwnerModel, error) {
	base, err := baseModel("poisson", o.Base, b)
	if err != nil {
		return nil, err
	}
	if o.Mean < 0 {
		return nil, fmt.Errorf("fleet: poisson mean must be ≥ 0, got %g", o.Mean)
	}
	meanTicks := 0.0
	if o.Mean > 0 {
		meanTicks = float64(b.g.ticks(o.Mean))
	}
	return overrideModel{base: base, label: "poisson", mk: func(rng *rand.Rand, c station.Contract) sim.Interrupter {
		mean := meanTicks
		if mean == 0 {
			mean = float64(c.U) / 2
		}
		return &adversary.Poisson{Rng: rng, Mean: mean}
	}}, nil
}

// SampledWorst wraps a temperament with the sampled worst-case adversary:
// each episode it scores a bounded sample of interrupt placements by
// equalization damage plus estimated future leverage and fires at the worst.
// A tractable stand-in for Minimax on contracts too large for the exact
// evaluator — its realized work upper-bounds the true guaranteed work.
type SampledWorst struct {
	Base Owner
	// Candidates bounds the placements scored per episode; 0 means 32.
	Candidates int
}

func (o SampledWorst) model(b binding) (station.OwnerModel, error) {
	base, err := baseModel("sampled-worst", o.Base, b)
	if err != nil {
		return nil, err
	}
	if o.Candidates < 0 {
		return nil, fmt.Errorf("fleet: sampled-worst candidates must be ≥ 0, got %d", o.Candidates)
	}
	setup := b.g.ticksC
	return overrideModel{base: base, label: "sampled-worst", mk: func(rng *rand.Rand, _ station.Contract) sim.Interrupter {
		return &adversary.SampledWorst{Rng: rng, C: setup, K: o.Candidates}
	}}, nil
}

// Minimax wraps a temperament with the exact worst-case owner: for each
// sampled contract it solves the full interrupt game against the fleet's
// configured policy (the §4 minimax evaluation) and plays the best
// response, so realized work per contract IS the schedule's guaranteed
// work. Exact but expensive — the evaluation is a dynamic program over
// (allowance × lifespan) states per contract, so keep lifespans (in ticks:
// Lifespan/Setup × TicksPerSetup) modest, or reach for Malicious /
// SampledWorst at scale.
type Minimax struct {
	Base Owner
}

func (o Minimax) model(b binding) (station.OwnerModel, error) {
	base, err := baseModel("minimax", o.Base, b)
	if err != nil {
		return nil, err
	}
	if b.factory == nil {
		return nil, fmt.Errorf("fleet: minimax owner needs the fleet's policy factory")
	}
	return minimaxModel{base: base, ws: b.workstation(), factory: b.factory}, nil
}

// minimaxModel best-responds to the schedule the fleet's policy would run
// on each sampled contract.
type minimaxModel struct {
	base    station.OwnerModel
	ws      station.Workstation
	factory station.SchedulerFactory
}

func (m minimaxModel) Sample(rng *rand.Rand) station.Contract { return m.base.Sample(rng) }

func (m minimaxModel) Interrupter(rng *rand.Rand, c station.Contract) sim.Interrupter {
	// Policies whose schedules the game evaluator cannot price (a factory
	// error, or an evaluation overflow) degrade to the equalization-damage
	// heuristic rather than failing the run: the wrapper's contract is
	// "worst case the library can compute", and the heuristic is its floor.
	sch, err := m.factory(m.ws, c)
	if err == nil {
		if _, br, err := game.EvaluateWithStrategy(sch, c.P, c.U, m.ws.Setup); err == nil && br != nil {
			return br
		}
	}
	return adversary.GreedyEqualization{C: m.ws.Setup}
}

func (m minimaxModel) Name() string { return "minimax(" + m.base.Name() + ")" }

// overrideModel keeps a base model's contract stream and replaces its
// interrupt placement.
type overrideModel struct {
	base  station.OwnerModel
	label string
	mk    func(rng *rand.Rand, c station.Contract) sim.Interrupter
}

func (m overrideModel) Sample(rng *rand.Rand) station.Contract { return m.base.Sample(rng) }

func (m overrideModel) Interrupter(rng *rand.Rand, c station.Contract) sim.Interrupter {
	return m.mk(rng, c)
}

func (m overrideModel) Name() string { return m.label + "(" + m.base.Name() + ")" }
