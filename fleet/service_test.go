package fleet

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// serviceFleet is the standing fleet the service tests run on: small enough
// to be fast, sharded enough to exercise the group engine.
func serviceFleet(workers int) Config {
	return Config{Stations: 12, Setup: 5, Opportunities: 40, Seed: 9, Workers: workers, Shards: 4}
}

func serviceJob() Job { return Job{Tasks: ExponentialTasks(400, 12, 3)} }

func TestServiceValidation(t *testing.T) {
	base := serviceFleet(1)
	cases := []struct {
		name string
		cfg  ServiceConfig
		want string
	}{
		{"private pool", ServiceConfig{Fleet: func() Config { c := base; c.Pool = Private; return c }()}, "Private pool"},
		{"clusters", ServiceConfig{Fleet: func() Config { c := base; c.Clusters = 2; return c }()}, "clusters"},
		{"leave prob", ServiceConfig{Fleet: base, Churn: ChurnConfig{LeaveProb: 1}}, "leave probability"},
		{"join prob", ServiceConfig{Fleet: base, Churn: ChurnConfig{JoinProb: -0.1}}, "join probability"},
		{"max active", ServiceConfig{Fleet: base, MaxActive: -1}, "max active"},
		{"max rounds", ServiceConfig{Fleet: base, MaxRounds: -1}, "max rounds"},
	}
	for _, tc := range cases {
		if _, err := NewService(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}

	s, err := NewService(ServiceConfig{Fleet: base})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("t", Job{}); err == nil {
		t.Error("empty job submission should be rejected")
	}
}

// TestServiceZeroChurnPinsBatch is the tentpole pin: a zero-churn,
// zero-checkpoint service run on one job is bit-identical to the batch
// deterministic engine on the same Config — at any Workers setting — and
// its aggregate accounting matches the live batch engine when the job
// completes.
func TestServiceZeroChurnPinsBatch(t *testing.T) {
	job := serviceJob()
	var first ServiceResult
	for i, workers := range []int{1, 8} {
		cfg := serviceFleet(workers)
		s, err := NewService(ServiceConfig{Fleet: cfg, MaxRounds: cfg.Opportunities})
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Submit("tenant", job)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Drain(context.Background())
		if err != nil {
			t.Fatal(err)
		}

		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := f.RunDeterministic(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Fleet, batch) {
			t.Fatalf("workers=%d: service fleet result diverges from batch RunDeterministic:\nservice: %+v\nbatch:   %+v", workers, res.Fleet, batch)
		}
		if batch.TasksLeft == 0 {
			// The job completed: the live engine's aggregate accounting must
			// agree too (task assignment differs, totals cannot).
			live, err := f.Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			if live.TasksCompleted != res.Fleet.TasksCompleted || live.TaskWork != res.Fleet.TaskWork {
				t.Fatalf("workers=%d: live batch Run disagrees on completed totals: live %d/%g, service %d/%g",
					workers, live.TasksCompleted, live.TaskWork, res.Fleet.TasksCompleted, res.Fleet.TaskWork)
			}
			jr, err := h.Result()
			if err != nil || !jr.Completed {
				t.Fatalf("workers=%d: job handle should be complete: %+v, err %v", workers, jr, err)
			}
			select {
			case <-h.Done():
			default:
				t.Fatalf("workers=%d: handle Done not closed for completed job", workers)
			}
		}
		if i == 0 {
			first = res
		} else if !reflect.DeepEqual(res, first) {
			t.Fatalf("service result differs between Workers settings:\nw=1: %+v\nw=%d: %+v", first, workers, res)
		}
	}
}

// churnedConfig is a service run with everything on: churn, an initial
// checkpoint interval, several tenants — the replay stress shape.
func churnedConfig(workers int) ServiceConfig {
	cfg := serviceFleet(workers)
	cfg.Checkpoint = 12
	return ServiceConfig{
		Fleet:     cfg,
		MaxActive: 2,
		MaxRounds: 60,
		Churn:     ChurnConfig{LeaveProb: 0.10, JoinProb: 0.25, MinStations: 4, Seed: 41},
	}
}

// runChurned drives the churned scenario: two tenants, a mid-run checkpoint
// policy change, explicit join/leave on top of sampled churn.
func runChurned(t *testing.T, cfg ServiceConfig) ServiceResult {
	t.Helper()
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("ana", Job{Tasks: ExponentialTasks(150, 12, 3)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("bo", Job{Tasks: ExponentialTasks(90, 20, 4)}); err != nil {
		t.Fatal(err)
	}
	s.JoinStation()
	if _, err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Second phase at a later round: a policy switch to adaptive
	// checkpointing, one departure, more work.
	s.SetCheckpoint(0, true)
	s.LeaveStation(0)
	if _, err := s.Submit("ana", Job{Tasks: ExponentialTasks(120, 15, 5)}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServiceReplayBitIdentical is the acceptance pin: a churned,
// checkpointed service run replays bit-identically from its event log at
// Workers 1 vs 8 — and the live run itself is already bit-identical across
// Workers settings.
func TestServiceReplayBitIdentical(t *testing.T) {
	res1 := runChurned(t, churnedConfig(1))
	res8 := runChurned(t, churnedConfig(8))
	if !reflect.DeepEqual(res1, res8) {
		t.Fatal("live service run differs between Workers 1 and 8")
	}
	if res1.Joined == 0 && res1.Departed == 0 {
		t.Fatal("scenario sampled no churn; the replay pin would be vacuous")
	}
	hasKind := func(k EventKind) bool {
		for _, ev := range res1.Events {
			if ev.Kind == k {
				return true
			}
		}
		return false
	}
	for _, k := range []EventKind{EventSubmit, EventJoin, EventLeave, EventCheckpoint} {
		if !hasKind(k) {
			t.Fatalf("event log never recorded a %v event; scenario too weak", k)
		}
	}

	for _, workers := range []int{1, 8} {
		cfg := churnedConfig(workers)
		rep, err := ReplayService(context.Background(), cfg, res1.Events)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, res1) {
			t.Fatalf("replay at workers=%d diverges from the recorded run:\nreplay: %+v\nlive:   %+v", workers, rep, res1)
		}
	}
}

// TestServiceChurnDrainsLeavingStations pins the churn contract: with heavy
// departures the job still completes — a leaving station's queued tasks
// migrate instead of stranding.
func TestServiceChurnDrainsLeavingStations(t *testing.T) {
	cfg := serviceFleet(0)
	s, err := NewService(ServiceConfig{
		Fleet: cfg,
		Churn: ChurnConfig{LeaveProb: 0.3, MinStations: 2, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("t", Job{Tasks: FixedTasks(200, 10)}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed == 0 {
		t.Fatal("no station departed; churn pin is vacuous")
	}
	if res.Fleet.TasksLeft != 0 || !res.Jobs[0].Completed {
		t.Fatalf("departures stranded work: %d tasks left, job %+v", res.Fleet.TasksLeft, res.Jobs[0])
	}
	st := s.Stats()
	if st.Stations != cfg.Stations-res.Departed {
		t.Fatalf("stats live count %d, want %d", st.Stations, cfg.Stations-res.Departed)
	}
}

// TestServiceDeadFleetParksWork pins the dead-fleet contract: with every
// station departed, Drain returns instead of spinning, and a later join
// picks the parked work back up.
func TestServiceDeadFleetParksWork(t *testing.T) {
	cfg := Config{Stations: 2, Setup: 5, Seed: 3}
	s, err := NewService(ServiceConfig{Fleet: cfg})
	if err != nil {
		t.Fatal(err)
	}
	s.LeaveStation(0)
	s.LeaveStation(1)
	if _, err := s.Submit("t", Job{Tasks: FixedTasks(50, 10)}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var res ServiceResult
	go func() {
		defer close(done)
		res, err = s.Drain(context.Background())
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain hung on a dead fleet")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Completed {
		t.Fatal("job completed with zero live stations")
	}
	s.JoinStation()
	res2, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Jobs[0].Completed || res2.Fleet.TasksLeft != 0 {
		t.Fatalf("rejoined fleet should finish the parked job: %+v (%d left)", res2.Jobs[0], res2.Fleet.TasksLeft)
	}
}

// TestServiceAdmissionAndFairness pins per-tenant admission (the queue
// bound rejects, not blocks) and round-robin activation across tenants.
func TestServiceAdmissionAndFairness(t *testing.T) {
	cfg := serviceFleet(0)
	s, err := NewService(ServiceConfig{Fleet: cfg, MaxActive: 1, MaxQueuedPerTenant: 2})
	if err != nil {
		t.Fatal(err)
	}
	small := Job{Tasks: FixedTasks(30, 10)}
	a1, err := s.Submit("ana", small)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Submit("ana", small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("ana", small); err == nil {
		t.Fatal("third queued job for one tenant should be rejected")
	}
	b1, err := s.Submit("bo", small)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]JobResult{}
	for _, j := range res.Jobs {
		if !j.Completed {
			t.Fatalf("job %d did not complete: %+v", j.ID, j)
		}
		byID[j.ID] = j
	}
	// With one active slot, fairness interleaves the tenants: ana's first
	// job, then bo's, then ana's second.
	if !(byID[a1.ID].FinishedRound <= byID[b1.ID].FinishedRound && byID[b1.ID].FinishedRound <= byID[a2.ID].FinishedRound) {
		t.Fatalf("activation was not round-robin across tenants: ana1 %d, bo1 %d, ana2 %d",
			byID[a1.ID].FinishedRound, byID[b1.ID].FinishedRound, byID[a2.ID].FinishedRound)
	}
}

// serviceCancellation runs a live service against a big fleet and job mix,
// cancels mid-flight, and asserts a prompt ctx.Err() from Wait, failed
// handles, and zero leaked goroutines.
func serviceCancellation(t *testing.T, cfg ServiceConfig, jobs []Job) {
	t.Helper()
	check := leakCheck(t)
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	handles := make([]*JobHandle, 0, len(jobs))
	for i, j := range jobs {
		h, err := s.Submit("tenant", j)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	time.AfterFunc(5*time.Millisecond, cancel)
	start := time.Now()
	_, err = s.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from Wait, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown not prompt: %v", elapsed)
	}
	for i, h := range handles {
		select {
		case <-h.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("handle %d not released on shutdown", i)
		}
		if _, err := h.Result(); !errors.Is(err, context.Canceled) {
			t.Fatalf("handle %d: want context.Canceled, got %v", i, err)
		}
	}
	if _, err := s.Submit("tenant", jobs[0]); err == nil {
		t.Fatal("submission after shutdown should be rejected")
	}
	check()
}

// bigServiceFleet cannot finish its jobs in the few milliseconds before the
// shutdown tests cancel it.
func bigServiceFleet() Config {
	return Config{Stations: 500, Setup: 5, Seed: 5, Shards: 64}
}

func TestServiceShutdownMidJob(t *testing.T) {
	serviceCancellation(t, ServiceConfig{Fleet: bigServiceFleet()},
		[]Job{{Tasks: FixedTasks(500000, 10)}, {Tasks: FixedTasks(500000, 12)}})
}

func TestServiceShutdownMidCheckpoint(t *testing.T) {
	cfg := bigServiceFleet()
	cfg.Checkpoint = 7 // every period saves repeatedly when it can
	serviceCancellation(t, ServiceConfig{Fleet: cfg},
		[]Job{{Tasks: FixedTasks(500000, 10)}})
}

func TestServiceShutdownWithStationsInFlight(t *testing.T) {
	// Heavy churn keeps stations joining and leaving every round, so the
	// cancellation lands with the fleet roster itself mid-change.
	serviceCancellation(t, ServiceConfig{
		Fleet: bigServiceFleet(),
		Churn: ChurnConfig{LeaveProb: 0.2, JoinProb: 0.5, MinStations: 100, Seed: 13},
	}, []Job{{Tasks: FixedTasks(500000, 10)}})
}

// TestServiceLiveMatchesDrain pins the two driving modes to each other: a
// live Start/Wait run over a fixed submission set ends in the same state as
// the paused Drain (live wall-clock interleaving shifts which round a
// submission lands on, so the pin runs the live pass first and replays its
// log through a paused service).
func TestServiceLiveMatchesDrain(t *testing.T) {
	cfg := ServiceConfig{Fleet: serviceFleet(0), MaxRounds: 80}
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	h, err := s.Submit("t", serviceJob())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("live service never finished the job")
	}
	cancel()
	live, _ := s.Wait() // error is the cancellation; the state is what we pin
	rep, err := ReplayService(context.Background(), cfg, live.Events)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Fleet, live.Fleet) || !reflect.DeepEqual(rep.Jobs, live.Jobs) {
		t.Fatalf("paused replay diverges from live run:\nreplay: %+v\nlive:   %+v", rep, live)
	}
}
