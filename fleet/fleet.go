// Package fleet is the public front door to the library's network-of-
// workstations engines: one data-parallel job farmed across a whole NOW
// (the setting of the paper's title), or a fleet survey where every station
// plays out its own opportunities. It wraps the internal farm/station
// machinery the way the root cyclesteal.Engine wraps the single-opportunity
// simulator: callers speak continuous time units and name owner
// temperaments and scheduling policies; internally everything quantizes
// onto an exact integer tick grid.
//
// # Quick start
//
//	f, err := fleet.New(fleet.Config{
//		Stations:      64,   // owners lend idle time under the draconian contract
//		Setup:         5,    // seconds per work hand-off
//		Opportunities: 20,   // owner contracts each station works through
//		Seed:          1,
//	})
//	if err != nil { ... }
//	res, err := f.Run(ctx, fleet.Job{Tasks: fleet.FixedTasks(10000, 12)})
//	if err != nil { ... }
//	fmt.Println(res.CompletionFraction(), res.Steals)
//
// # Pools
//
// Config.Pool picks how stations share the job. Sharded (the default) is
// the fleet-scale pool: tasks dealt round-robin across lock-striped queues,
// dry stations stealing in deterministic order — use it for one shared job
// on a big fleet. Shared is the single mutex-guarded bag baseline. Private
// gives every station its own slice of the job and nothing is shared — the
// fleet-survey semantics: stations play out every opportunity whether or
// not their tasks drain, and utilization is the figure of merit.
//
// # Determinism contract
//
// Run is the live engine: station contract streams derive deterministically
// from (Seed, station ID), but with a Shared/Sharded pool, task assignment
// depends on goroutine interleaving — aggregate accounting is reproducible,
// per-station task counts are not. With a Private pool nothing is shared,
// so the entire Result is a pure function of the Config and Job at any
// Workers setting. RunDeterministic is the replication engine: the same
// fleet semantics in synchronized rounds, bit-identical at any Workers.
// Replicate stacks RunDeterministic (or, for Private pools, Run) inside the
// Monte-Carlo engine's seed-stream contract: trial i always draws from
// stream Seed+i, so summaries are bit-identical at any Workers and raising
// the trial count extends a study without rebasing it.
//
// # Cancellation and observability
//
// Every run takes a context.Context; cancellation stops each station at
// its next opportunity boundary (Replicate: each worker at its next trial)
// and the run returns ctx.Err(). Config.Progress observes long runs:
// periodic snapshots of settled completions driven from the engine's
// in-flight ledger (Replicate: trials-completed snapshots).
//
// # Open owner model
//
// Owners are an interface, not an enum. The named temperaments (office,
// laptop, overnight, fixed — see Owners and OwnerByName) cover the paper's
// settings; beyond them, CustomOwner injects any availability process in
// caller units, and the adversarial wrappers (Benign, Scripted, Stochastic,
// Poisson, Malicious, SampledWorst, Minimax) replace any base owner's
// interrupt behavior — Minimax being the exact best-response adversary from
// the game value tables, the guaranteed-output floor. Set Config.Record to
// a trace.NewRecorder and any successful run publishes the cyclesteal/trace
// history that reproduces it; Replay plays such a trace back through any
// policy, bit-identically at any Workers setting. See ExampleReplay.
//
// # Resident service
//
// Service is the long-lived face of the same engines: NewService stands up
// a resident fleet that accepts a stream of jobs from multiple tenants
// (Submit), multiplexes them fairly, and keeps working while stations join
// and leave mid-flight (ChurnConfig, JoinStation, LeaveStation — a leaving
// station's queued tasks drain back to the pool). Config.Checkpoint
// softens the draconian contract with periodic intra-period saves, and
// CheckpointAdaptive picks the interval per contract by Young's rule.
// Every submission, join, leave and policy change lands in
// ServiceResult.Events, and ReplayService replays the log bit-identically
// at any Workers setting; a zero-churn, zero-checkpoint service run is
// pinned bit-identical to batch RunDeterministic. See ExampleService.
package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/fault"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/station"
	"cyclesteal/internal/task"
	"cyclesteal/trace"
)

// Pool selects the task-pool layout stations draw the job from.
type Pool int

const (
	// Sharded is the fleet-scale shared-job pool: lock-striped per-shard
	// queues with deterministic work stealing. The default.
	Sharded Pool = iota
	// Shared is the single mutex-guarded bag baseline — simple, and fine
	// for a dozen stations.
	Shared
	// Private gives each station its own bag (the job dealt round-robin
	// across stations) and shares nothing: the fleet-survey semantics, with
	// every opportunity played out and results bit-identical at any
	// Workers setting even under the live engine.
	Private
)

// String implements fmt.Stringer.
func (p Pool) String() string {
	switch p {
	case Sharded:
		return "sharded"
	case Shared:
		return "shared"
	case Private:
		return "private"
	default:
		return fmt.Sprintf("Pool(%d)", int(p))
	}
}

// Progress is one observation of a run in flight, delivered to
// Config.Progress.
type Progress struct {
	// Completed counts tasks whose completion has settled (the completing
	// station's opportunity ended, so no kill can undo it).
	Completed int
	// Remaining counts tasks not yet completed, in-flight work included.
	// Completed + Remaining + Lost is the job's task count.
	Remaining int
	// Steals counts cross-queue task migrations so far (0 for Shared and
	// Private pools).
	Steals int
	// Lost counts tasks destroyed by injected faults so far (0 without a
	// fault plan).
	Lost int
}

// Config describes a fleet in the caller's continuous time units.
type Config struct {
	// Stations is the fleet size. Required ≥ 1.
	Stations int
	// Setup is the per-period communication setup cost c — the price of
	// every work hand-off — in the caller's time units. Required > 0. It
	// also anchors the tick grid: one setup cost is TicksPerSetup ticks.
	Setup float64
	// Interrupts is the default per-contract interrupt allowance for owner
	// temperaments that take one (an Office owner may return this many
	// times per lent stretch). 0 means the standard allowance of 2. An
	// owner's own Interrupts field overrides it.
	Interrupts int
	// Owners assigns station temperaments: station i gets
	// Owners[i mod len(Owners)]. Empty means the standard heterogeneous
	// mix the experiments use — Office, Laptop, Overnight, round-robin.
	Owners []Owner
	// Policy is the period-sizing policy every station schedules with; the
	// zero value is the adaptive equalization schedule (Theorem 4.3), the
	// policy most callers want.
	Policy Policy
	// Opportunities is how many owner contracts each station works through
	// (the job may finish earlier; stations then stop borrowing). 0 means 1.
	Opportunities int
	// Pool picks the task-pool layout (see the Pool constants).
	Pool Pool
	// Shards is the Sharded pool's stripe count, and the station-group
	// partition of RunDeterministic: 0 means auto (64, clamped to the
	// fleet size). Ignored by Shared and Private pools.
	Shards int
	// Clusters groups the Sharded pool's shards into a two-tier topology —
	// a NOW of NOWs. Steals inside a cluster stay free; a station reaches
	// across clusters only when its own cluster is collectively dry, and
	// with StealLatency > 0 the crossing puts the stolen tasks in flight,
	// unavailable to both sides, until that much fleet time has passed.
	// 0 and 1 both mean today's flat fleet, bit-identical to a Config
	// without the field. Requires the Sharded pool, Clusters ≤ Stations,
	// and a cluster count that partitions the resolved shard count evenly
	// (New lists the valid counts otherwise — never a silent adjustment).
	Clusters int
	// StealLatency is the cross-cluster transfer time in the caller's time
	// units (quantized to ≥ 1 tick when positive). 0 means cross steals are
	// free like local ones; > 0 requires Clusters ≥ 2.
	StealLatency float64
	// Workers bounds run parallelism; 0 means GOMAXPROCS. Never affects
	// RunDeterministic, Replicate, or Private-pool results — only
	// wall-clock time.
	Workers int
	// Seed derives every station's deterministic contract stream (and, in
	// Replicate, the per-trial seed streams).
	Seed int64
	// TicksPerSetup is the grid resolution: integer ticks per setup cost.
	// 0 means 100, which keeps quantization error far below the paper's
	// low-order terms.
	TicksPerSetup int
	// DisableEpisodeMemo turns off the per-station episode cache. Results
	// are bit-identical either way; the switch exists for benchmarking.
	DisableEpisodeMemo bool
	// Checkpoint, when > 0, softens the draconian contract with intra-period
	// checkpointing: stations save their state every Checkpoint time units
	// inside a period (each save costs one setup), so an owner's kill loses
	// only the work since the last completed save instead of the whole
	// period. 0 — the zero value — is the paper's pure draconian contract,
	// bit-identical to a Config without the field.
	Checkpoint float64
	// CheckpointAdaptive, when set, ignores Checkpoint and picks the save
	// interval per opportunity by Young's rule from the P2P
	// volunteer-computing analysis (arXiv:0711.3949): √(2·s·U/(p+1)) ticks
	// with s the save cost (CheckpointSaveCost, defaulting to the setup
	// cost), the optimum balancing save overhead against expected loss per
	// kill. A pure function of each contract, so every determinism contract
	// holds.
	CheckpointAdaptive bool
	// CheckpointSaveCost is the time one checkpoint save costs, in caller
	// units. 0 — the zero value — keeps the pre-split behaviour: each save
	// costs one setup. Young/Daly sweeps set it independently of Setup.
	CheckpointSaveCost float64
	// CheckpointRestartCost is the extra time a station pays, on top of the
	// ordinary setup, the first time it restarts from a saved checkpoint
	// after a kill. 0 means restarting is free beyond the setup itself —
	// the pre-split behaviour.
	CheckpointRestartCost float64
	// Faults is the run's fault-injection plan: seeded station crashes,
	// cross-cluster parcel loss, and a scheduler kill round. The zero value
	// injects nothing and is bit-identical to a Config without the field.
	// Active plans need the deterministic engines — RunDeterministic on a
	// Shared or Sharded pool, or the resident Service; the live engine and
	// Replicate reject them. See FaultPlan for the knobs.
	Faults FaultPlan
	// StationSummaries, when set, makes Replicate also summarize each
	// station's offered lifespan across trials in
	// Replication.StationLifespan — the per-station availability
	// distribution operators capacity-plan against. Shared and Sharded pools
	// only (a Private-pool survey leaves it empty).
	StationSummaries bool
	// Progress, when non-nil, observes runs in flight: Run emits a snapshot
	// every ProgressInterval of wall clock, RunDeterministic at every round
	// barrier (a deterministic sequence — except with a Private pool or an
	// empty Job, where RunDeterministic delegates to the live engine and so
	// emits wall-clock snapshots), and both a final snapshot when the last
	// station finishes. Replicate emits wall-clock snapshots of trials
	// completed instead: Completed counts finished trials, Remaining the
	// trials still to run, Steals is 0. The callback must be fast and must
	// not assume a goroutine.
	Progress func(Progress)
	// ProgressInterval spaces Run's snapshots; 0 means 200ms.
	ProgressInterval time.Duration
	// Record, when non-nil, captures each run's availability trace: every
	// contract the owners offer and every return they place, published to
	// the recorder when the run completes (failed or cancelled runs publish
	// nothing). Replaying the trace (Replay owners, same Config otherwise)
	// reproduces the run bit-identically for the engines that are
	// themselves deterministic — RunDeterministic, or Run with a Private
	// pool or empty Job. A recorder holds one run's trace; give concurrent
	// runs their own recorders. Replicate rejects a recording fleet.
	Record *trace.Recorder
}

// StationCrash schedules one deterministic station crash: at the top of
// round Round (before the round plays), station Station fails hard.
type StationCrash struct {
	Round   int
	Station int
}

// FaultPlan describes the faults injected into a deterministic run or a
// resident service session. Everything is seeded and replayable: the same
// plan over the same Config produces bit-identical outcomes at any Workers
// setting.
//
// A crash is harsher than a Service leave: a leaving station drains its
// queued tasks back to the fleet, a crashed one loses them. Queued work
// survives a crash only while some station of the same steal group is
// still alive to inherit the queue; in-flight parcels addressed to a fully
// crashed group are destroyed on arrival. Lost tasks are counted, never
// resurrected — only checkpointed fluid progress (Config.Checkpoint)
// bounds what an individual kill destroys.
type FaultPlan struct {
	// Seed derives the fault sampling streams. 0 means derive from
	// Config.Seed, so distinct fleet seeds get distinct fault streams.
	Seed int64
	// CrashProb is the per-station, per-round probability of a crash.
	// Must be in [0, 1); 0 disables random crashes.
	CrashProb float64
	// Crashes are deterministic scheduled crashes, applied before random
	// ones each round. Entries naming dead or out-of-range stations are
	// ignored.
	Crashes []StationCrash
	// LossProb is the probability that a cross-cluster parcel is lost in
	// transit. Must be in [0, 1); requires Clusters ≥ 2 and
	// StealLatency > 0 (free crossings cannot be lost). The requesting
	// station detects the loss when the parcel's priced deadline passes,
	// retries under capped exponential backoff, and after StealRetries
	// consecutive losses degrades to intra-cluster stealing for good.
	LossProb float64
	// StealRetries caps consecutive cross-steal losses before a station
	// group degrades to intra-cluster scanning. 0 means the default (3);
	// negative means degrade on the first loss.
	StealRetries int
	// KillRound, when > 0, kills the scheduler at the top of that round:
	// a resident Service stops mid-session with ErrSchedulerKilled, its
	// durable event log (ServiceConfig.WAL) ending exactly there, ready
	// for RecoverService. Batch runs reject KillRound — killing a batch
	// scheduler is just cancelling the run.
	KillRound int
}

// Active reports whether the plan injects anything.
func (p FaultPlan) Active() bool { return p.internal().Active() }

// internal converts the public plan to the engine's representation.
func (p FaultPlan) internal() fault.Plan {
	in := fault.Plan{
		Seed:         p.Seed,
		CrashProb:    p.CrashProb,
		LossProb:     p.LossProb,
		StealRetries: p.StealRetries,
		KillRound:    p.KillRound,
	}
	for _, c := range p.Crashes {
		in.Crashes = append(in.Crashes, fault.Crash{Round: c.Round, Station: c.Station})
	}
	return in
}

// Job is one data-parallel computation to farm across the fleet.
type Job struct {
	// Tasks are the indivisible task durations in the caller's time units.
	// Empty is valid: stations then bank fluid work only.
	Tasks []float64
}

// FixedTasks builds n task durations of d time units each.
func FixedTasks(n int, d float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// ExponentialTasks builds n exponentially distributed task durations with
// the given mean — the standard heterogeneous workload of the experiments.
func ExponentialTasks(n int, mean float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.ExpFloat64() * mean
	}
	return out
}

// grid is the quantization the facade shares with the root Engine: one
// setup cost c is ticksC integer ticks, so a duration of u caller units is
// u/setup·ticksC ticks.
type grid struct {
	setup  float64
	ticksC quant.Tick
}

// ticks quantizes a caller-units duration onto the grid (≥ 1, matching the
// root Engine's rounding).
func (g grid) ticks(units float64) quant.Tick {
	t := quant.Tick(math.Round(units / g.setup * float64(g.ticksC)))
	if t < 1 {
		t = 1
	}
	return t
}

// units converts ticks back to caller units.
func (g grid) units(t quant.Tick) float64 {
	return float64(t) / float64(g.ticksC) * g.setup
}

// unitsPerTick is the linear scale factor between the grids.
func (g grid) unitsPerTick() float64 { return g.setup / float64(g.ticksC) }

// Fleet binds a Config to the tick grid and drives the internal engines.
// Build one with New; a Fleet is immutable and safe for concurrent runs
// (stateful owners — trace Replay — get fresh per-run models, and a
// recording fleet fresh per-run capture state, so even those share safely;
// only the one Recorder is last-run-wins across concurrent recorded runs).
type Fleet struct {
	cfg      Config
	g        grid
	owners   []Owner // resolved temperament cycle (never empty)
	stateful bool    // some owner carries per-run state; rebuild models per run
	stations []station.Workstation
	factory  station.SchedulerFactory
}

// New validates the configuration and builds a Fleet.
func New(cfg Config) (*Fleet, error) {
	if cfg.Stations < 1 {
		return nil, fmt.Errorf("fleet: need ≥ 1 station, got %d", cfg.Stations)
	}
	if !(cfg.Setup > 0) {
		return nil, fmt.Errorf("fleet: setup cost must be > 0, got %g", cfg.Setup)
	}
	if cfg.Interrupts < 0 {
		return nil, fmt.Errorf("fleet: interrupt allowance must be ≥ 0, got %d", cfg.Interrupts)
	}
	if cfg.Opportunities < 0 {
		return nil, fmt.Errorf("fleet: opportunities must be ≥ 0, got %d", cfg.Opportunities)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("fleet: shards must be ≥ 0, got %d", cfg.Shards)
	}
	if cfg.Clusters < 0 {
		return nil, fmt.Errorf("fleet: clusters must be ≥ 0, got %d", cfg.Clusters)
	}
	if math.IsNaN(cfg.StealLatency) || math.IsInf(cfg.StealLatency, 0) || cfg.StealLatency < 0 {
		return nil, fmt.Errorf("fleet: steal latency must be ≥ 0 and finite, got %g", cfg.StealLatency)
	}
	if cfg.StealLatency > 0 && cfg.Clusters < 2 {
		return nil, fmt.Errorf("fleet: steal latency %g needs ≥ 2 clusters to cross, got %d", cfg.StealLatency, cfg.Clusters)
	}
	if cfg.Clusters > 1 {
		if cfg.Pool != Sharded {
			return nil, fmt.Errorf("fleet: clusters require the sharded pool, got %s", cfg.Pool)
		}
		if cfg.Clusters > cfg.Stations {
			return nil, fmt.Errorf("fleet: %d clusters over %d stations leaves some empty; need Clusters ≤ Stations", cfg.Clusters, cfg.Stations)
		}
		shards := farm.ResolveShards(cfg.Shards, cfg.Stations)
		if shards%cfg.Clusters != 0 {
			return nil, fmt.Errorf("fleet: %d clusters cannot partition %d shards evenly; valid cluster counts: %s",
				cfg.Clusters, shards, divisorList(shards))
		}
	}
	if cfg.TicksPerSetup < 0 {
		return nil, fmt.Errorf("fleet: ticks per setup must be ≥ 0, got %d", cfg.TicksPerSetup)
	}
	if math.IsNaN(cfg.Checkpoint) || math.IsInf(cfg.Checkpoint, 0) || cfg.Checkpoint < 0 {
		return nil, fmt.Errorf("fleet: checkpoint interval must be ≥ 0 and finite, got %g", cfg.Checkpoint)
	}
	if math.IsNaN(cfg.CheckpointSaveCost) || math.IsInf(cfg.CheckpointSaveCost, 0) || cfg.CheckpointSaveCost < 0 {
		return nil, fmt.Errorf("fleet: checkpoint save cost must be ≥ 0 and finite, got %g", cfg.CheckpointSaveCost)
	}
	if math.IsNaN(cfg.CheckpointRestartCost) || math.IsInf(cfg.CheckpointRestartCost, 0) || cfg.CheckpointRestartCost < 0 {
		return nil, fmt.Errorf("fleet: checkpoint restart cost must be ≥ 0 and finite, got %g", cfg.CheckpointRestartCost)
	}
	if err := cfg.Faults.internal().Validate(); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if cfg.Faults.LossProb > 0 && (cfg.Clusters < 2 || !(cfg.StealLatency > 0)) {
		return nil, fmt.Errorf("fleet: parcel loss needs ≥ 2 clusters and StealLatency > 0 (free crossings cannot be lost), got %d clusters, latency %g",
			cfg.Clusters, cfg.StealLatency)
	}
	switch cfg.Pool {
	case Sharded, Shared, Private:
	default:
		return nil, fmt.Errorf("fleet: unknown pool %d", int(cfg.Pool))
	}
	ticksC := cfg.TicksPerSetup
	if ticksC == 0 {
		ticksC = 100
	}
	g := grid{setup: cfg.Setup, ticksC: quant.Tick(ticksC)}

	owners := cfg.Owners
	if len(owners) == 0 {
		// The standard heterogeneous NOW of the experiments: offices,
		// laptops and overnight lab machines, round-robin.
		owners = []Owner{Office{}, Laptop{}, Overnight{}}
	}
	stateful := false
	for i, owner := range owners {
		if owner == nil {
			return nil, fmt.Errorf("fleet: Owners[%d] is nil", i)
		}
		stateful = stateful || statefulOwner(owner)
	}

	factory, err := cfg.Policy.factory(g)
	if err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg, g: g, owners: owners, stateful: stateful, factory: factory}
	// Build (and thereby validate) the station models eagerly, so a bad
	// owner fails here rather than per run; stateless fleets reuse this set
	// for every run.
	if f.stations, err = f.buildStations(); err != nil {
		return nil, err
	}
	return f, nil
}

// buildStations quantizes the owner cycle onto the fleet's stations.
func (f *Fleet) buildStations() ([]station.Workstation, error) {
	stations := make([]station.Workstation, f.cfg.Stations)
	for i := range stations {
		ws, err := f.buildStation(i)
		if err != nil {
			return nil, err
		}
		stations[i] = ws
	}
	return stations, nil
}

// buildStation models station i under the owner cycle — the same rule for
// the initial fleet and for stations a resident Service joins later, so a
// station's temperament is a pure function of its ID.
func (f *Fleet) buildStation(i int) (station.Workstation, error) {
	owner := f.owners[i%len(f.owners)]
	om, err := owner.model(binding{g: f.g, defaultP: f.cfg.Interrupts, station: i, factory: f.factory})
	if err != nil {
		return station.Workstation{}, fmt.Errorf("fleet: station %d: %w", i, err)
	}
	return station.Workstation{ID: i, Owner: om, Setup: f.g.ticksC}, nil
}

// runStations prepares the engine-facing station set for one run — fresh
// models when some owner carries per-run state, recording wrappers when the
// run is being captured — and the hook the run must call on success (a
// no-op unless recording).
func (f *Fleet) runStations() ([]station.Workstation, func(), error) {
	noop := func() {}
	if !f.stateful && f.cfg.Record == nil {
		return f.stations, noop, nil
	}
	sts, err := f.buildStations()
	if err != nil {
		return nil, nil, err
	}
	if f.cfg.Record == nil {
		return sts, noop, nil
	}
	return sts, recordingStations(sts, f.g, f.cfg.Record), nil
}

// Config returns the configuration the fleet was built for.
func (f *Fleet) Config() Config { return f.cfg }

// Ticks reports the internal grid: ticks per setup cost.
func (f *Fleet) Ticks() int { return int(f.g.ticksC) }

// Units converts a tick count back to the caller's time units — useful for
// interpreting tick-grained diagnostics.
func (f *Fleet) Units(ticks int) float64 { return f.g.units(quant.Tick(ticks)) }

// farm binds one run's station set onto the shared internal engine.
func (f *Fleet) farm(stations []station.Workstation) farm.Farm {
	fm := farm.Farm{
		Stations:                stations,
		OpportunitiesPerStation: f.cfg.Opportunities,
		Workers:                 f.cfg.Workers,
		Shards:                  f.shards(),
		DisableEpisodeMemo:      f.cfg.DisableEpisodeMemo,
		CheckpointAdaptive:      f.cfg.CheckpointAdaptive,
		ProgressInterval:        f.cfg.ProgressInterval,
	}
	if f.cfg.Checkpoint > 0 {
		fm.Checkpoint = f.g.ticks(f.cfg.Checkpoint)
	}
	if f.cfg.CheckpointSaveCost > 0 {
		fm.CheckpointSaveCost = f.g.ticks(f.cfg.CheckpointSaveCost)
	}
	if f.cfg.CheckpointRestartCost > 0 {
		fm.CheckpointRestartCost = f.g.ticks(f.cfg.CheckpointRestartCost)
	}
	fm.Faults = f.cfg.Faults.internal()
	if f.cfg.Clusters > 1 {
		fm.Topology = farm.Topology{Clusters: f.cfg.Clusters, CrossLatency: f.stealLatencyTicks()}
	}
	if cb := f.cfg.Progress; cb != nil {
		fm.Progress = func(p farm.Progress) { cb(Progress(p)) }
	}
	return fm
}

// stealLatencyTicks quantizes the cross-cluster latency onto the grid; a
// zero latency stays exactly zero (a free crossing), any positive latency
// rounds to at least one tick.
func (f *Fleet) stealLatencyTicks() quant.Tick {
	if f.cfg.StealLatency <= 0 {
		return 0
	}
	return f.g.ticks(f.cfg.StealLatency)
}

// divisorList renders the divisors of n in ascending order — the cluster
// counts that partition n shards evenly.
func divisorList(n int) string {
	var b strings.Builder
	for d := 1; d <= n; d++ {
		if n%d != 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", d)
	}
	return b.String()
}

// shards resolves the pool choice into the engine's stripe count.
func (f *Fleet) shards() int {
	if f.cfg.Pool == Shared {
		return 1
	}
	return f.cfg.Shards
}

// job quantizes the caller's task durations onto the tick grid.
func (f *Fleet) job(job Job) farm.Job {
	if len(job.Tasks) == 0 {
		return farm.Job{}
	}
	tasks := make([]task.Task, len(job.Tasks))
	for i, d := range job.Tasks {
		tasks[i] = task.Task{ID: i, Duration: f.g.ticks(d)}
	}
	return farm.Job{Tasks: tasks}
}
