package fleet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/fault"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/task"
)

// ErrStopped fails the handles of jobs still unfinished when a resident
// Service stops — shutdown, cancellation, or the MaxRounds bound.
var ErrStopped = errors.New("fleet: service stopped before job completed")

// ErrSchedulerKilled is the error a Service stops with when its fault plan's
// KillRound arrives: the scheduler itself dies mid-session. Handles of
// unfinished jobs fail with it. A session with a durable log
// (ServiceConfig.WAL) can be rebuilt past the kill with RecoverService.
var ErrSchedulerKilled = errors.New("fleet: scheduler killed by fault plan")

// ErrTasksLost fails a job's handle when injected faults destroyed some of
// its tasks: every task is accounted for (completed or lost), but the job
// can never complete. The service itself keeps running.
var ErrTasksLost = errors.New("fleet: job lost tasks to injected faults")

// ServiceConfig describes a resident fleet service: one standing fleet
// serving a continuous stream of jobs.
type ServiceConfig struct {
	// Fleet is the standing fleet. The Service drives the deterministic
	// round engine underneath, so the whole Config applies with three
	// exceptions: Opportunities is ignored (a resident service plays rounds
	// for as long as there is work — bound it with MaxRounds), Progress is
	// ignored (poll Stats instead), and Pool Private, Clusters ≥ 2,
	// trace-recording and trace-replay owners are rejected (a service
	// multiplexes one shared pool, and churn cannot drain a queue whose
	// stolen tasks are mid-flight between clusters).
	Fleet Config
	// MaxActive bounds how many jobs multiplex over the fleet at once;
	// queued jobs activate round-robin across tenants as slots free up.
	// 0 means 4.
	MaxActive int
	// MaxQueuedPerTenant is the admission bound: a tenant with this many
	// jobs waiting (not yet active) has further submissions rejected.
	// 0 means 16.
	MaxQueuedPerTenant int
	// MaxRounds, when > 0, stops the service after that many rounds even if
	// work remains — the resident analogue of Config.Opportunities. 0 means
	// unbounded: Drain returns when the queue is empty, Start runs until its
	// context is cancelled.
	MaxRounds int
	// Churn makes stations come and go while jobs run.
	Churn ChurnConfig
	// WAL, when non-nil, makes the session durable: the service write-ahead
	// encodes its event log as JSONL — one header line naming the format
	// and tick grid, then one line per event — flushed (and fsync'd when
	// the writer has a Sync method, as *os.File does) at every round
	// barrier and at a scheduler kill, whose final kill record closes the
	// log. RecoverService rebuilds the session from such a log,
	// bit-identical to the uninterrupted run. A write error stops the
	// service: an event that cannot be made durable must not take effect
	// silently. See ReadWAL for the line format.
	WAL io.Writer
}

// ChurnConfig drives station arrivals and departures — the "network of
// workstations" as a population, not a fixed set. Each round, every live
// station leaves with probability LeaveProb (a departing station's queued
// tasks drain back to the pool — exactly a kill without the loss, since at a
// round barrier nothing is mid-period), and one new station joins with
// probability JoinProb, taking its temperament from the owner cycle at its
// fresh ID. All sampling comes from the service's own churn stream, and
// every sampled join and leave is logged as a concrete event, so a replay
// never re-samples.
type ChurnConfig struct {
	// LeaveProb is each live station's per-round departure probability,
	// in [0, 1).
	LeaveProb float64
	// JoinProb is the per-round probability one station joins, in [0, 1).
	JoinProb float64
	// MinStations floors departures: churn never shrinks the live fleet
	// below it. 0 means 1.
	MinStations int
	// MaxStations caps arrivals. 0 means twice the initial fleet.
	MaxStations int
	// Seed drives the churn stream, independent of the fleet seed.
	// 0 derives a stream from Fleet.Seed.
	Seed int64
}

// EventKind tags a ServiceEvent.
type EventKind int

const (
	// EventSubmit records a job entering the service.
	EventSubmit EventKind = iota
	// EventJoin records a station joining the fleet.
	EventJoin
	// EventLeave records a station leaving the fleet.
	EventLeave
	// EventCheckpoint records a checkpoint-policy change.
	EventCheckpoint
	// EventCrash records a station crashing under the fault plan — a
	// leave that loses queued work instead of draining it.
	EventCrash
	// EventKill records the scheduler kill that ended the session; always
	// the log's last entry when present.
	EventKill
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventSubmit:
		return "submit"
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	case EventCheckpoint:
		return "checkpoint"
	case EventCrash:
		return "crash"
	case EventKill:
		return "kill"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// ServiceEvent is one entry of a service run's deterministic event log:
// everything that happened to the fleet beyond playing rounds, stamped with
// the round at which it applied. The log is the run's replay key — Replay
// applies the same events at the same rounds and the seed-stream contract
// does the rest, bit-identically at any Workers setting.
type ServiceEvent struct {
	// Round is the round the event applied at (events apply at round tops,
	// before any station plays).
	Round int
	Kind  EventKind
	// Tenant, JobID and Tasks describe a Submit: the submitting tenant, the
	// job's service-wide ID, and its task durations in caller units — the
	// log is self-contained, a replay rebuilds the job from it.
	Tenant string
	JobID  int
	Tasks  []float64
	// Station is the slot a Join opened or a Leave vacated.
	Station int
	// Checkpoint and Adaptive carry a checkpoint-policy change (Checkpoint
	// in caller units; 0 with Adaptive false restores pure draconian).
	Checkpoint float64
	Adaptive   bool
	// Sampled marks events the service generated itself — churn and fault
	// sampling, scheduled crashes, the kill record. A recovery regenerates
	// these from the seeds instead of applying them from the log (and
	// checks the regenerated sequence against it); a replay applies them
	// like any other event.
	Sampled bool
}

// JobResult is one job's outcome, in caller time units.
type JobResult struct {
	ID             int
	Tenant         string
	Tasks          int
	TasksCompleted int
	JobWork        float64 // submitted task duration (as quantized)
	TaskWork       float64 // completed task duration
	// TasksLost counts the job's tasks destroyed by injected faults; a job
	// that lost any can never complete, and its handle fails with
	// ErrTasksLost once every task is accounted for.
	TasksLost      int
	Completed      bool
	SubmittedRound int // round the submission applied (-1: never applied)
	FinishedRound  int // round the last task completed (-1: unfinished)
}

// ServiceResult is a whole service run's outcome.
type ServiceResult struct {
	// Rounds is how many rounds the fleet played.
	Rounds int
	// Jobs lists every job in submission order, unfinished ones included.
	Jobs []JobResult
	// Fleet is the standing fleet's aggregate accounting over the whole run,
	// in the batch Result shape: JobWork totals everything ever submitted,
	// station reports cover departed stations too.
	Fleet Result
	// Joined and Departed count stations that joined and left after start.
	Joined, Departed int
	// Crashed counts stations destroyed by the fault plan (not included in
	// Departed — a departure drains its queue, a crash loses it).
	Crashed int
	// Events is the run's deterministic event log — feed it to Replay.
	Events []ServiceEvent
}

// ServiceStats is a point-in-time service snapshot, exact at round barriers.
type ServiceStats struct {
	Round        int
	Stations     int // live stations
	Joined       int // stations joined since start
	Departed     int // stations departed since start
	QueuedJobs   int // admitted, waiting for an active slot
	ActiveJobs   int // multiplexing over the fleet now
	FinishedJobs int
	TasksPending int // tasks admitted to the fleet, not yet completed
	Steals       int
	Crashed      int // stations crashed by the fault plan since start
	TasksLost    int // tasks destroyed by faults since start
	// Recovering is true while a RecoverService session is still replaying
	// its log; a snapshot taken then describes the partially rebuilt past,
	// not the live present (in particular, an idle-looking snapshot before
	// the logged submissions have replayed does not mean the session is
	// done).
	Recovering bool
}

// svcJob is one submitted job's live state.
type svcJob struct {
	id        int
	tenant    string
	specs     []float64 // caller-unit durations, for the event log
	tasks     []task.Task
	work      quant.Tick
	base      int // first task ID (contiguous range), set at apply
	submitted int // round the submission applied; -1 until then
	finished  int // round the last task completed; -1 until then
	doneTasks int
	doneWork  quant.Tick
	lostTasks int // tasks destroyed by injected faults
	err       error
	done      chan struct{}
}

func (j *svcJob) result(g grid) JobResult {
	return JobResult{
		ID:             j.id,
		Tenant:         j.tenant,
		Tasks:          len(j.tasks),
		TasksCompleted: j.doneTasks,
		JobWork:        g.units(j.work),
		TaskWork:       g.units(j.doneWork),
		TasksLost:      j.lostTasks,
		Completed:      j.finished >= 0,
		SubmittedRound: j.submitted,
		FinishedRound:  j.finished,
	}
}

// JobHandle tracks one submitted job. Done closes when the job completes or
// the service stops; Result then reports the outcome (with ErrStopped or
// the stopping error when the job never finished).
type JobHandle struct {
	ID     int
	Tenant string
	s      *Service
	j      *svcJob
}

// Done returns the job's completion signal.
func (h *JobHandle) Done() <-chan struct{} { return h.j.done }

// Result reports the job's outcome so far — final once Done has closed.
func (h *JobHandle) Result() (JobResult, error) {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.j.result(h.s.f.g), h.j.err
}

// op is one queued mutation awaiting the next round top.
type op struct {
	kind       EventKind
	job        *svcJob // submit
	slot       int     // leave
	checkpoint float64 // checkpoint
	adaptive   bool
}

// Service is a resident fleet: the deterministic round engine kept alive
// between jobs. Tenants submit jobs onto per-tenant queues; up to MaxActive
// jobs multiplex over one standing task pool, activated fairly round-robin
// across tenants; stations join and leave mid-flight; and the checkpoint
// policy can change while work runs. Every mutation lands at a round
// barrier and is stamped into the event log, so the entire run is a pure
// function of (ServiceConfig, event log): Replay reproduces it
// bit-identically at any Workers setting, and a zero-churn single-job run
// is bit-identical to the batch RunDeterministic on the same Config.
//
// Two driving modes. Paused (the default): Submit/JoinStation/LeaveStation/
// SetCheckpoint queue mutations, and Drain plays rounds synchronously until
// the service is idle (or MaxRounds). Live: Start launches the loop on its
// own goroutine — it plays while there is work, sleeps while there is none,
// and wakes on submissions; cancel the context to stop it and Wait collects
// the result. Either way the service itself owns no goroutines while idle,
// and shutdown leaves none behind.
type Service struct {
	f   *Fleet
	cfg ServiceConfig

	maxActive   int
	maxQueued   int
	minStations int
	maxStations int

	mu          sync.Mutex
	core        *farm.Core
	churn       *rand.Rand
	round       int
	nextJobID   int
	nextTaskID  int
	nextStation int
	alive       []bool // per-slot liveness, for churn sampling
	queues      map[string][]*svcJob
	tenants     []string // first-submission order, the fairness cycle
	rrNext      int      // next tenant offset in the activation round-robin
	queuedTotal int
	active      []*svcJob
	jobs        []*svcJob
	finished    int
	totalWork   quant.Tick
	events      []ServiceEvent
	joined      int
	departed    int
	pendingOps  []op
	replayLog   []ServiceEvent // non-nil: drive from a log, not live ops
	doneBuf     []task.Task
	lostBuf     []task.Task

	faults  *fault.Injector // nil: no fault plan
	crashed int

	walw    *bufio.Writer // nil: no durable log
	walSync interface{ Sync() error }
	walErr  error // sticky: first WAL write/flush failure or recovery divergence

	// Recovery mode: replay rounds [0, recoverTo) applying the log's
	// non-sampled events while churn/fault sampling regenerates the rest —
	// logEvent checks every regenerated event against the log cursor, so a
	// mismatched config or seed is detected, not silently diverged from.
	recovering bool
	recoverLog []ServiceEvent
	recoverCur int
	recoverTo  int

	started bool
	exited  bool
	exitErr error
	notify  chan struct{}
	stopped chan struct{}
}

// NewService validates the configuration and builds a paused Service.
func NewService(cfg ServiceConfig) (*Service, error) {
	f, err := New(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	if cfg.Fleet.Pool == Private {
		return nil, fmt.Errorf("fleet: a service multiplexes jobs over a shared pool; the Private pool shares nothing — use Run for fleet surveys")
	}
	if cfg.Fleet.Clusters > 1 {
		return nil, fmt.Errorf("fleet: a service cannot span clusters: churn would drain queues whose stolen tasks are mid-flight between them")
	}
	if cfg.Fleet.Record != nil {
		return nil, fmt.Errorf("fleet: a service records its own event log; trace recording covers single runs — record a Run or RunDeterministic instead")
	}
	if f.stateful {
		return nil, fmt.Errorf("fleet: a service cannot drive trace-replay owners: a recorded trace names one batch run, not a resident fleet")
	}
	if cfg.MaxActive < 0 {
		return nil, fmt.Errorf("fleet: max active jobs must be ≥ 0, got %d", cfg.MaxActive)
	}
	if cfg.MaxQueuedPerTenant < 0 {
		return nil, fmt.Errorf("fleet: max queued per tenant must be ≥ 0, got %d", cfg.MaxQueuedPerTenant)
	}
	if cfg.MaxRounds < 0 {
		return nil, fmt.Errorf("fleet: max rounds must be ≥ 0, got %d", cfg.MaxRounds)
	}
	cc := cfg.Churn
	if math.IsNaN(cc.LeaveProb) || cc.LeaveProb < 0 || cc.LeaveProb >= 1 {
		return nil, fmt.Errorf("fleet: churn leave probability must be in [0, 1), got %g", cc.LeaveProb)
	}
	if math.IsNaN(cc.JoinProb) || cc.JoinProb < 0 || cc.JoinProb >= 1 {
		return nil, fmt.Errorf("fleet: churn join probability must be in [0, 1), got %g", cc.JoinProb)
	}
	if cc.MinStations < 0 || cc.MaxStations < 0 {
		return nil, fmt.Errorf("fleet: churn station bounds must be ≥ 0, got min %d max %d", cc.MinStations, cc.MaxStations)
	}

	s := &Service{
		f:           f,
		cfg:         cfg,
		maxActive:   cfg.MaxActive,
		maxQueued:   cfg.MaxQueuedPerTenant,
		minStations: cc.MinStations,
		maxStations: cc.MaxStations,
		queues:      make(map[string][]*svcJob),
		notify:      make(chan struct{}, 1),
	}
	if s.maxActive == 0 {
		s.maxActive = 4
	}
	if s.maxQueued == 0 {
		s.maxQueued = 16
	}
	if s.minStations == 0 {
		s.minStations = 1
	}
	if s.maxStations == 0 {
		s.maxStations = 2 * cfg.Fleet.Stations
	}
	if cc.LeaveProb > 0 || cc.JoinProb > 0 {
		seed := cc.Seed
		if seed == 0 {
			seed = cfg.Fleet.Seed ^ 0x636875726e // "churn"
		}
		s.churn = rand.New(rand.NewSource(seed))
	}
	if plan := cfg.Fleet.Faults.internal(); plan.Active() {
		s.faults = plan.NewInjector(cfg.Fleet.Seed ^ farm.FaultSeedSalt)
	}
	if cfg.WAL != nil {
		s.walSync, _ = cfg.WAL.(interface{ Sync() error })
		s.walw = bufio.NewWriter(cfg.WAL)
		if err := writeWALHeader(s.walw, int(f.g.ticksC)); err != nil {
			return nil, fmt.Errorf("fleet: write-ahead log: %w", err)
		}
	}

	fm := f.farm(f.stations)
	groups := farm.ResolveShards(fm.Shards, len(fm.Stations))
	s.core = fm.NewCore(f.factory, cfg.Fleet.Seed, groups, len(f.stations), true)
	for _, ws := range f.stations {
		s.core.Join(ws)
		s.alive = append(s.alive, true)
	}
	s.nextStation = len(f.stations)
	return s, nil
}

// Submit admits a job for the tenant and returns its handle. Admission is
// immediate: a tenant already holding MaxQueuedPerTenant unactivated jobs is
// rejected here, as is an empty job or a stopped service. The job itself
// enters the fleet at the next round top.
func (s *Service) Submit(tenant string, j Job) (*JobHandle, error) {
	if len(j.Tasks) == 0 {
		return nil, fmt.Errorf("fleet: a service job needs ≥ 1 task")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.exited {
		return nil, fmt.Errorf("fleet: service has stopped")
	}
	if s.replayLog != nil {
		return nil, fmt.Errorf("fleet: a replaying service takes jobs from its event log")
	}
	if n := s.pendingFor(tenant) + len(s.queues[tenant]); n >= s.maxQueued {
		return nil, fmt.Errorf("fleet: tenant %q has %d jobs queued (max %d)", tenant, n, s.maxQueued)
	}
	specs := append([]float64(nil), j.Tasks...)
	tasks := make([]task.Task, len(specs))
	var work quant.Tick
	for i, d := range specs {
		tasks[i] = task.Task{Duration: s.f.g.ticks(d)} // IDs assigned at apply
		work += tasks[i].Duration
	}
	job := &svcJob{
		id:        s.nextJobID,
		tenant:    tenant,
		specs:     specs,
		tasks:     tasks,
		work:      work,
		submitted: -1,
		finished:  -1,
		done:      make(chan struct{}),
	}
	s.nextJobID++
	s.pendingOps = append(s.pendingOps, op{kind: EventSubmit, job: job})
	s.wake()
	return &JobHandle{ID: job.id, Tenant: tenant, s: s, j: job}, nil
}

// pendingFor counts a tenant's submissions still waiting to apply.
func (s *Service) pendingFor(tenant string) int {
	n := 0
	for _, o := range s.pendingOps {
		if o.kind == EventSubmit && o.job.tenant == tenant {
			n++
		}
	}
	return n
}

// JoinStation queues a station arrival: at the next round top a fresh slot
// opens, its temperament drawn from the owner cycle at the new ID.
func (s *Service) JoinStation() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pendingOps = append(s.pendingOps, op{kind: EventJoin})
	s.wake()
}

// LeaveStation queues a departure of the given station slot, applied at the
// next round top (a no-op if the slot is not live by then). The departing
// station's queued tasks drain back to the pool.
func (s *Service) LeaveStation(slot int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pendingOps = append(s.pendingOps, op{kind: EventLeave, slot: slot})
	s.wake()
}

// SetCheckpoint queues a checkpoint-policy change, applied at the next
// round top: interval > 0 checkpoints every interval time units, adaptive
// picks the interval per opportunity by Young's rule, and 0/false restores
// the pure draconian contract.
func (s *Service) SetCheckpoint(interval float64, adaptive bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pendingOps = append(s.pendingOps, op{kind: EventCheckpoint, checkpoint: interval, adaptive: adaptive})
	s.wake()
}

// wake nudges a sleeping live loop; never blocks.
func (s *Service) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Stats snapshots the service. Between rounds the counts are exact; during
// a live round they lag by at most that round.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServiceStats{
		Round:        s.round,
		Stations:     s.core.Live(),
		Joined:       s.joined,
		Departed:     s.departed,
		QueuedJobs:   s.queuedTotal + s.pendingSubmits(),
		ActiveJobs:   len(s.active),
		FinishedJobs: s.finished,
		TasksPending: s.core.Pending(),
		Steals:       s.core.Steals(),
		Crashed:      s.crashed,
		TasksLost:    s.core.TasksLost(),
		Recovering:   s.recovering,
	}
}

func (s *Service) pendingSubmits() int {
	n := 0
	for _, o := range s.pendingOps {
		if o.kind == EventSubmit {
			n++
		}
	}
	return n
}

// --- the round loop -----------------------------------------------------------

// logEvent stamps an event into the log and the write-ahead log. During
// recovery it also checks the event against the recorded log at the cursor:
// regenerated sampling must reproduce the original sequence exactly, so a
// recovery under different seeds or config fails loudly instead of
// diverging silently.
func (s *Service) logEvent(ev ServiceEvent) {
	if s.recovering {
		if s.recoverCur < len(s.recoverLog) && eventsMatch(s.recoverLog[s.recoverCur], ev) {
			s.recoverCur++
		} else if s.walErr == nil {
			s.walErr = fmt.Errorf("fleet: recovery diverged at round %d: regenerated %s event does not match the log (different seeds or config than the original run?)", s.round, ev.Kind)
		}
	}
	s.events = append(s.events, ev)
	if s.walw != nil && s.walErr == nil {
		if err := writeWALEvent(s.walw, ev); err != nil {
			s.walErr = fmt.Errorf("fleet: write-ahead log: %w", err)
		}
	}
}

// eventsMatch compares two events for recovery verification (Tasks by
// value).
func eventsMatch(a, b ServiceEvent) bool {
	if a.Round != b.Round || a.Kind != b.Kind || a.Tenant != b.Tenant ||
		a.JobID != b.JobID || a.Station != b.Station ||
		a.Checkpoint != b.Checkpoint || a.Adaptive != b.Adaptive ||
		a.Sampled != b.Sampled || len(a.Tasks) != len(b.Tasks) {
		return false
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			return false
		}
	}
	return true
}

// flushWAL pushes buffered log lines to the writer and syncs it — the round
// barrier's durability point. Reports the sticky WAL error, if any.
func (s *Service) flushWAL() error {
	if s.walw == nil {
		return s.walErr
	}
	if err := s.walw.Flush(); err != nil && s.walErr == nil {
		s.walErr = fmt.Errorf("fleet: write-ahead log: %w", err)
	}
	if s.walSync != nil && s.walErr == nil {
		if err := s.walSync.Sync(); err != nil {
			s.walErr = fmt.Errorf("fleet: write-ahead log: %w", err)
		}
	}
	return s.walErr
}

// applyOps applies every queued mutation at a round top, in arrival order,
// stamping each into the event log — or, when replaying or recovering,
// applies the log's events due at this round (recovery skips sampled ones;
// sampling regenerates those).
func (s *Service) applyOps() error {
	if s.replayLog != nil {
		for len(s.replayLog) > 0 && s.replayLog[0].Round <= s.round {
			if err := s.applyEvent(s.replayLog[0]); err != nil {
				return err
			}
			s.replayLog = s.replayLog[1:]
		}
		return nil
	}
	if s.recovering {
		// New live ops (pendingOps) wait until the session is rebuilt.
		for s.recoverCur < len(s.recoverLog) && s.walErr == nil {
			ev := s.recoverLog[s.recoverCur]
			if ev.Round > s.round || ev.Sampled {
				break
			}
			cur := s.recoverCur
			if err := s.applyEvent(ev); err != nil {
				return err
			}
			if s.recoverCur == cur {
				return fmt.Errorf("fleet: recovery: logged %s event at round %d did not apply (corrupt or mismatched log)", ev.Kind, ev.Round)
			}
		}
		return nil
	}
	ops := s.pendingOps
	s.pendingOps = nil
	for _, o := range ops {
		var err error
		switch o.kind {
		case EventSubmit:
			s.applySubmit(o.job)
		case EventJoin:
			err = s.applyJoin(false)
		case EventLeave:
			s.applyLeave(o.slot, false)
		case EventCheckpoint:
			s.applyCheckpoint(o.checkpoint, o.adaptive)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// applyEvent replays one logged event.
func (s *Service) applyEvent(ev ServiceEvent) error {
	switch ev.Kind {
	case EventSubmit:
		tasks := make([]task.Task, len(ev.Tasks))
		var work quant.Tick
		for i, d := range ev.Tasks {
			tasks[i] = task.Task{Duration: s.f.g.ticks(d)}
			work += tasks[i].Duration
		}
		j := &svcJob{
			id:        ev.JobID,
			tenant:    ev.Tenant,
			specs:     ev.Tasks,
			tasks:     tasks,
			work:      work,
			submitted: -1,
			finished:  -1,
			done:      make(chan struct{}),
		}
		if ev.JobID >= s.nextJobID {
			s.nextJobID = ev.JobID + 1
		}
		s.applySubmit(j)
		return nil
	case EventJoin:
		return s.applyJoin(ev.Sampled)
	case EventLeave:
		s.applyLeave(ev.Station, ev.Sampled)
		return nil
	case EventCheckpoint:
		s.applyCheckpoint(ev.Checkpoint, ev.Adaptive)
		return nil
	case EventCrash:
		s.applyCrash(ev.Station, ev.Sampled)
		return nil
	case EventKill:
		// Replaying a killed session re-kills it at the same round; the
		// replayed result matches the original, error included.
		s.logEvent(ev)
		if err := s.flushWAL(); err != nil {
			return err
		}
		return ErrSchedulerKilled
	default:
		return fmt.Errorf("fleet: replay: unknown event kind %d", int(ev.Kind))
	}
}

func (s *Service) applySubmit(j *svcJob) {
	j.base = s.nextTaskID
	for i := range j.tasks {
		j.tasks[i].ID = j.base + i
	}
	s.nextTaskID += len(j.tasks)
	j.submitted = s.round
	s.totalWork += j.work
	s.jobs = append(s.jobs, j)
	if _, seen := s.queues[j.tenant]; !seen {
		s.tenants = append(s.tenants, j.tenant)
	}
	s.queues[j.tenant] = append(s.queues[j.tenant], j)
	s.queuedTotal++
	s.logEvent(ServiceEvent{
		Round: s.round, Kind: EventSubmit, Tenant: j.tenant, JobID: j.id, Tasks: j.specs,
	})
}

func (s *Service) applyJoin(sampled bool) error {
	id := s.nextStation
	ws, err := s.f.buildStation(id)
	if err != nil {
		return err
	}
	s.nextStation++
	slot := s.core.Join(ws)
	s.alive = append(s.alive, true)
	s.joined++
	s.logEvent(ServiceEvent{Round: s.round, Kind: EventJoin, Station: slot, Sampled: sampled})
	return nil
}

func (s *Service) applyLeave(slot int, sampled bool) {
	if slot < 0 || slot >= len(s.alive) || !s.alive[slot] {
		return
	}
	s.core.Leave(slot)
	s.alive[slot] = false
	s.departed++
	s.logEvent(ServiceEvent{Round: s.round, Kind: EventLeave, Station: slot, Sampled: sampled})
}

// applyCrash fails a station hard: unlike a leave, an orphaned group's
// queued tasks are lost, not drained. A no-op on dead or out-of-range slots.
func (s *Service) applyCrash(slot int, sampled bool) {
	if slot < 0 || slot >= len(s.alive) || !s.alive[slot] {
		return
	}
	s.core.Crash(slot)
	s.alive[slot] = false
	s.crashed++
	s.logEvent(ServiceEvent{Round: s.round, Kind: EventCrash, Station: slot, Sampled: sampled})
}

func (s *Service) applyCheckpoint(interval float64, adaptive bool) {
	var ticks quant.Tick
	if interval > 0 {
		ticks = s.f.g.ticks(interval)
	}
	s.core.SetCheckpoint(ticks, adaptive)
	s.logEvent(ServiceEvent{
		Round: s.round, Kind: EventCheckpoint, Checkpoint: interval, Adaptive: adaptive,
	})
}

// sampleChurn runs one round's churn: each live slot leaves with LeaveProb
// (floored at MinStations), then one station joins with JoinProb (capped at
// MaxStations). Every sampled action becomes a concrete logged event, so a
// replay applies the outcomes without re-sampling. Never called while
// replaying — Replay zeroes the probabilities.
func (s *Service) sampleChurn() error {
	if s.churn == nil {
		return nil
	}
	cc := s.cfg.Churn
	if cc.LeaveProb > 0 {
		for slot := 0; slot < len(s.alive); slot++ {
			if !s.alive[slot] {
				continue
			}
			if s.core.Live() <= s.minStations {
				break
			}
			if s.churn.Float64() < cc.LeaveProb {
				s.applyLeave(slot, true)
			}
		}
	}
	if cc.JoinProb > 0 && s.core.Live() < s.maxStations && s.churn.Float64() < cc.JoinProb {
		return s.applyJoin(true)
	}
	return nil
}

// sampleFaults runs one round's fault plan after churn: scheduled crashes
// first, then each live slot crashes with CrashProb, in slot order. Like
// churn, every outcome is a concrete logged event — a replay applies them
// without re-sampling, a recovery regenerates them from the seed.
func (s *Service) sampleFaults() {
	if s.faults == nil {
		return
	}
	for _, slot := range s.faults.ScheduledCrashes(s.round) {
		s.applyCrash(slot, true)
	}
	if s.faults.Plan().CrashProb > 0 {
		for slot := 0; slot < len(s.alive); slot++ {
			if s.alive[slot] && s.faults.SampleCrash() {
				s.applyCrash(slot, true)
			}
		}
	}
}

// activate moves queued jobs into the active set, round-robin across
// tenants in first-submission order, until MaxActive jobs multiplex. An
// activated job's tasks are dealt into the fleet's group queues.
func (s *Service) activate() {
	for len(s.active) < s.maxActive && s.queuedTotal > 0 {
		for i := 0; i < len(s.tenants); i++ {
			t := s.tenants[(s.rrNext+i)%len(s.tenants)]
			q := s.queues[t]
			if len(q) == 0 {
				continue
			}
			j := q[0]
			s.queues[t] = q[1:]
			s.queuedTotal--
			s.rrNext = (s.rrNext + i + 1) % len(s.tenants)
			s.core.AddTasks(j.tasks)
			s.active = append(s.active, j)
			break
		}
	}
}

// collect attributes the round's completed and lost tasks back to their
// jobs, settles jobs with every task accounted for, flushes the write-ahead
// log (the round barrier is the durability point), and advances the round
// counter. Jobs own contiguous task-ID ranges, so attribution is a range
// lookup over the active set.
func (s *Service) collect() {
	s.doneBuf = s.core.TakeCompleted(s.doneBuf[:0])
	for _, t := range s.doneBuf {
		if j := s.activeFor(t.ID); j != nil {
			j.doneTasks++
			j.doneWork += t.Duration
		}
	}
	s.collectLost()
	s.flushWAL()
	s.round++
	if s.recovering && s.recoverCur < len(s.recoverLog) && s.recoverLog[s.recoverCur].Round < s.round && s.walErr == nil {
		// A sampled event the log recorded for a finished round never
		// regenerated: the recovery is not reproducing the original run.
		ev := s.recoverLog[s.recoverCur]
		s.walErr = fmt.Errorf("fleet: recovery diverged: logged %s event at round %d never regenerated (different seeds or config than the original run?)", ev.Kind, ev.Round)
	}
}

// activeFor finds the active job owning a task ID.
func (s *Service) activeFor(id int) *svcJob {
	for _, j := range s.active {
		if id >= j.base && id < j.base+len(j.tasks) {
			return j
		}
	}
	return nil
}

// collectLost attributes fault-destroyed tasks to their jobs and settles
// jobs whose every task is accounted for — completed, or lost for good.
func (s *Service) collectLost() {
	// Unconditional: a replayed crash destroys tasks even when the replaying
	// session itself carries no fault plan.
	s.lostBuf = s.core.TakeLost(s.lostBuf[:0])
	for _, t := range s.lostBuf {
		if j := s.activeFor(t.ID); j != nil {
			j.lostTasks++
		}
	}
	kept := s.active[:0]
	for _, j := range s.active {
		if j.doneTasks+j.lostTasks < len(j.tasks) {
			kept = append(kept, j)
			continue
		}
		if j.lostTasks == 0 {
			j.finished = s.round
			s.finished++
		} else {
			// Every task is completed or destroyed: the job can never
			// finish, and waiting callers should learn that now.
			j.err = ErrTasksLost
		}
		close(j.done)
	}
	s.active = kept
}

// step prepares and plays one round; it reports done=true when the service
// has nothing to do (idle, a dead fleet, or the MaxRounds bound) or must
// stop (a scheduler kill, a WAL failure).
func (s *Service) step(ctx context.Context) (done bool, err error) {
	if s.recovering && s.recoverCur >= len(s.recoverLog) && s.round >= s.recoverTo {
		// The session is rebuilt: back to live sampling and live ops.
		s.recovering = false
		s.recoverLog = nil
	}
	if s.walErr != nil {
		return true, s.walErr
	}
	if s.faults != nil && !s.recovering && s.faults.KillsAt(s.round) {
		// The scheduler dies at this round top: nothing of the round runs,
		// the durable log closes with a kill record, and RecoverService can
		// rebuild the session from it. (A recovery with the same plan must
		// raise or clear KillRound, or it re-kills here immediately.)
		s.logEvent(ServiceEvent{Round: s.round, Kind: EventKill, Sampled: true})
		if err := s.flushWAL(); err != nil {
			return true, err
		}
		return true, ErrSchedulerKilled
	}
	if err := s.applyOps(); err != nil {
		return true, err
	}
	if s.walErr != nil {
		return true, s.walErr
	}
	hasWork := len(s.active) > 0 || s.queuedTotal > 0 || s.core.Pending() > 0
	if !hasWork {
		if len(s.replayLog) > 0 {
			// Defensive round jump for a foreign log: a live service's
			// rounds only advance while work plays, so its own stamps never
			// land in a gap — but an edited log can still replay; idle
			// rounds fast-forward to the next event.
			s.round = s.replayLog[0].Round
			return false, nil
		}
		return true, nil
	}
	if s.core.Live() == 0 {
		// A dead fleet plays nothing; work waits for a join.
		return true, nil
	}
	if s.cfg.MaxRounds > 0 && s.round >= s.cfg.MaxRounds {
		return true, nil
	}
	if err := s.sampleChurn(); err != nil {
		return true, err
	}
	s.sampleFaults()
	if s.core.Live() == 0 {
		// The plan wiped out the fleet this round: whatever its queues held
		// is already lost; settle those jobs and idle awaiting joins.
		s.collectLost()
		s.flushWAL()
		return true, s.walErr
	}
	s.activate()
	if err := s.core.PlayRound(ctx, s.cfg.Fleet.Workers); err != nil {
		return true, err
	}
	s.collect()
	return false, s.walErr
}

// Drain plays rounds synchronously until the service is idle — every
// submitted job finished, nothing queued — or MaxRounds is reached, and
// returns the run so far. The paused-mode driver: no goroutines outlive the
// call. Drain composes: queue more work afterwards and Drain again, the
// round counter and event log continue. On cancellation or a station error
// every unfinished job's handle fails and the service stops for good.
func (s *Service) Drain(ctx context.Context) (ServiceResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return ServiceResult{}, fmt.Errorf("fleet: service is running live; use Wait")
	}
	if s.exited {
		return s.resultLocked(), s.exitErr
	}
	for {
		if err := ctx.Err(); err != nil {
			s.shutdownLocked(err)
			return s.resultLocked(), err
		}
		done, err := s.step(ctx)
		if err != nil {
			s.shutdownLocked(err)
			return s.resultLocked(), err
		}
		if done {
			return s.resultLocked(), nil
		}
	}
}

// Start launches the live loop on its own goroutine: it plays while there
// is work, sleeps while there is none, wakes on submissions, and stops when
// ctx is cancelled or MaxRounds is reached. Collect the outcome with Wait.
func (s *Service) Start(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("fleet: service already started")
	}
	if s.exited {
		return fmt.Errorf("fleet: service has stopped")
	}
	s.started = true
	s.stopped = make(chan struct{})
	go s.loop(ctx)
	return nil
}

// loop is the live round loop. It holds the service lock while playing a
// round (Stats and Submit interleave at round boundaries) and releases it
// while idle.
func (s *Service) loop(ctx context.Context) {
	defer close(s.stopped)
	for {
		s.mu.Lock()
		if err := ctx.Err(); err != nil {
			s.shutdownLocked(err)
			s.mu.Unlock()
			return
		}
		done, err := s.step(ctx)
		if err != nil {
			s.shutdownLocked(err)
			s.mu.Unlock()
			return
		}
		if !done {
			s.mu.Unlock()
			continue
		}
		if s.cfg.MaxRounds > 0 && s.round >= s.cfg.MaxRounds {
			// The round budget is spent: stop for good, failing whatever
			// never finished.
			s.shutdownLocked(nil)
			s.mu.Unlock()
			return
		}
		// Idle: wait for a submission (or any queued op) without holding the
		// lock, burning no cycles and owning no timers.
		s.mu.Unlock()
		select {
		case <-s.notify:
		case <-ctx.Done():
			s.mu.Lock()
			s.shutdownLocked(ctx.Err())
			s.mu.Unlock()
			return
		}
	}
}

// Wait blocks until the live loop has stopped (cancel its context to force
// that) and returns the run's outcome. The returned error is the loop's
// stopping error — ctx.Err() after a cancellation, nil after a clean
// MaxRounds stop.
func (s *Service) Wait() (ServiceResult, error) {
	s.mu.Lock()
	stopped := s.stopped
	started := s.started
	s.mu.Unlock()
	if !started {
		return ServiceResult{}, fmt.Errorf("fleet: service not started")
	}
	<-stopped
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resultLocked(), s.exitErr
}

// shutdownLocked stops the service for good: every unfinished job's handle
// fails with cause (ErrStopped when the stop itself was clean).
func (s *Service) shutdownLocked(cause error) {
	if s.exited {
		return
	}
	s.exited = true
	s.exitErr = cause
	s.flushWAL()
	fail := cause
	if fail == nil {
		fail = ErrStopped
	}
	for _, j := range s.jobs {
		if j.finished < 0 && j.err == nil {
			j.err = fail
			close(j.done)
		}
	}
	for _, o := range s.pendingOps {
		if o.kind == EventSubmit && o.job.err == nil {
			o.job.err = fail
			close(o.job.done)
		}
	}
	s.pendingOps = nil
}

// resultLocked snapshots the run so far.
func (s *Service) resultLocked() ServiceResult {
	jobs := make([]JobResult, len(s.jobs))
	for i, j := range s.jobs {
		jobs[i] = j.result(s.f.g)
	}
	return ServiceResult{
		Rounds:   s.round,
		Jobs:     jobs,
		Fleet:    s.f.result(s.core.Result(), s.totalWork),
		Joined:   s.joined,
		Departed: s.departed,
		Crashed:  s.crashed,
		Events:   append([]ServiceEvent(nil), s.events...),
	}
}

// ReplayService re-runs a recorded service run from its event log: the
// same configuration, churn and fault sampling disabled, and the log's
// submits, joins, leaves, checkpoint changes, crashes and kill applied at
// their recorded rounds. The result — job outcomes, fleet accounting, even
// the re-logged event sequence — is bit-identical to the original at any
// Workers setting, a replayed kill re-killing the replay with
// ErrSchedulerKilled. (The Replay type is the unrelated trace-driven owner
// for batch runs.)
func ReplayService(ctx context.Context, cfg ServiceConfig, events []ServiceEvent) (ServiceResult, error) {
	cfg.Churn.LeaveProb = 0
	cfg.Churn.JoinProb = 0
	cfg.Fleet.Faults = FaultPlan{}
	s, err := NewService(cfg)
	if err != nil {
		return ServiceResult{}, err
	}
	s.replayLog = append([]ServiceEvent(nil), events...)
	return s.Drain(ctx)
}
