package fleet

import (
	"context"

	"cyclesteal/internal/stats"
)

// Summary describes one metric's distribution across a replication study.
// Quantiles come from the engine's bounded-error KLL-style sketch, so
// Median/P90/P99 carry a guaranteed rank-error bound and are independent of
// how trials were merged. A zero Summary (N == 0) means the metric is not
// measured by the configured pool.
type Summary struct {
	N              int
	Mean           float64
	Std            float64 // sample standard deviation (n−1)
	SE             float64 // standard error of the mean
	Min, Max       float64
	Median         float64
	P90, P99       float64 // upper-tail quantiles (tail-risk views)
	CI95Lo, CI95Hi float64 // Student-t 95% interval for the mean (t(N−1)·SE)
}

// summary converts an engine summary, scaling every value field by k (the
// units-per-tick factor for tick-denominated metrics, 1 for counts and
// fractions).
func summary(s stats.Summary, k float64) Summary {
	return Summary{
		N:      s.N,
		Mean:   k * s.Mean,
		Std:    k * s.Std,
		SE:     k * s.SE,
		Min:    k * s.Min,
		Max:    k * s.Max,
		Median: k * s.Median,
		P90:    k * s.P90,
		P99:    k * s.P99,
		CI95Lo: k * s.CI95Lo,
		CI95Hi: k * s.CI95Hi,
	}
}

// Replication summarizes a replicated study, one Summary per metric, in
// caller time units where the metric is time-denominated. Shared and
// Sharded pools (one shared job) fill TasksCompleted, Completion, Work,
// Killed, Interrupts, Imbalance and Steals; a Private pool (fleet survey)
// fills TasksCompleted, TaskWork, Work, Lifespan, Utilization, Killed and
// Interrupts. Unmeasured metrics are zero (N == 0).
type Replication struct {
	Trials int
	// TasksCompleted counts tasks completed fleet-wide per trial.
	TasksCompleted Summary
	// Completion is completed task work over the job total, in [0, 1].
	Completion Summary
	// TaskWork is completed task duration fleet-wide, caller units.
	TaskWork Summary
	// Work is fluid work banked fleet-wide, caller units.
	Work Summary
	// Lifespan is borrowed time offered fleet-wide, caller units.
	Lifespan Summary
	// Utilization is Work/Lifespan, in [0, 1].
	Utilization Summary
	// Killed is borrowed time destroyed by draconian kills, caller units.
	Killed Summary
	// Interrupts counts owner interrupts fleet-wide per trial.
	Interrupts Summary
	// Imbalance is max/mean per-station completed task work.
	Imbalance Summary
	// Steals counts cross-queue task migrations per trial.
	Steals Summary
	// InFlight counts tasks still crossing between clusters at trial end
	// (Clusters ≥ 2 with StealLatency > 0 only).
	InFlight Summary
	// StationLifespan, filled when Config.StationSummaries is set on a
	// Shared or Sharded pool, summarizes each station's offered lifespan
	// across trials (caller units, indexed like the fleet's stations) — the
	// across-trials availability distribution per owner.
	StationLifespan []Summary
}

// Replicate replays the fleet trials times on the Monte-Carlo replication
// engine and summarizes each metric across trials. Trial i derives its
// fleet seed from the deterministic stream for Seed+i; the worker budget
// splits between trial-level and in-trial parallelism automatically, and
// the summaries are bit-identical at any Workers setting. Shared and
// Sharded pools replay the job on the deterministic round engine; a
// Private pool replays the fleet survey. Cancelling ctx stops every worker
// at its next trial boundary and returns ctx.Err().
func (f *Fleet) Replicate(ctx context.Context, job Job, trials int) (Replication, error) {
	st, err := f.Study(job, trials)
	if err != nil {
		return Replication{}, err
	}
	var progress func(done, total int)
	if cb := f.cfg.Progress; cb != nil {
		// Trials-completed progress: the study-level signal Run's task-level
		// snapshots cannot give (trial-local snapshots are not study
		// progress, so per-trial observers stay off).
		progress = func(done, total int) {
			cb(Progress{Completed: done, Remaining: total - done})
		}
	}
	// Replicate IS the sharded study run over all shards: the single-process
	// and distributed paths share every line — engine core, shard cut, state
	// round trip, merge, assembly — so they cannot drift apart.
	results, err := st.RunShards(ctx, st.AllShards(), progress)
	if err != nil {
		return Replication{}, err
	}
	return st.Merge(results)
}
