package fleet

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cyclesteal/internal/game"
	"cyclesteal/internal/sched"
	"cyclesteal/trace"
)

// surveyConfig is the small fleet the owner-surface tests run as a fluid
// survey (empty job → the deterministic private path).
func surveyConfig() Config {
	return Config{Stations: 7, Setup: 5, Opportunities: 4, Seed: 11}
}

func mustRun(t *testing.T, cfg Config, job Job) Result {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRecordReplaySurveyBitIdentical(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := surveyConfig()
	cfg.Record = rec
	orig := mustRun(t, cfg, Job{})
	tr := rec.Trace()
	if tr == nil {
		t.Fatal("recording run published no trace")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	if tr.Stations() == 0 || len(tr.Opportunities) == 0 {
		t.Fatalf("recorded trace empty: %d stations, %d opportunities", tr.Stations(), len(tr.Opportunities))
	}

	// Golden round trip: the trace must survive the documented encodings and
	// replay bit-identically at any worker count.
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		cfg := surveyConfig()
		cfg.Workers = workers
		cfg.Owners = []Owner{Replay{Trace: loaded}}
		got := mustRun(t, cfg, Job{})
		if !reflect.DeepEqual(got, orig) {
			t.Errorf("replay at Workers=%d diverged from the recorded run:\n got %+v\nwant %+v", workers, got, orig)
		}
	}
}

func TestRecordReplaySharedJobBitIdentical(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := surveyConfig()
	cfg.Record = rec
	job := Job{Tasks: FixedTasks(300, 12)}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := f.RunDeterministic(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	if tr == nil {
		t.Fatal("recording run published no trace")
	}

	for _, workers := range []int{1, 8} {
		cfg := surveyConfig()
		cfg.Workers = workers
		cfg.Owners = []Owner{Replay{Trace: tr}}
		rf, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rf.RunDeterministic(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, orig) {
			t.Errorf("shared-job replay at Workers=%d diverged from the recorded run", workers)
		}
	}
}

func TestReplaySecondRunIsIdentical(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := surveyConfig()
	cfg.Record = rec
	mustRun(t, cfg, Job{})

	cfg = surveyConfig()
	cfg.Owners = []Owner{Replay{Trace: rec.Trace()}}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := f.Run(context.Background(), Job{})
	if err != nil {
		t.Fatal(err)
	}
	// The replay cursors are per-run state: a second run on the same Fleet
	// must start from the top of the trace, not resume mid-way.
	second, err := f.Run(context.Background(), Job{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("second replay run on the same Fleet diverged — cursors leaked across runs")
	}
}

func TestReplayGridMismatch(t *testing.T) {
	tr := trace.New(50, []trace.Opportunity{{Station: 0, Lifespan: 100, Allowance: 1}})
	cfg := surveyConfig() // TicksPerSetup 0 → 100
	cfg.Owners = []Owner{Replay{Trace: tr}}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "ticks per setup") {
		t.Fatalf("grid mismatch not rejected: %v", err)
	}
}

func TestReplicateRejectsReplayAndRecord(t *testing.T) {
	cfg := surveyConfig()
	cfg.Record = trace.NewRecorder()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Replicate(context.Background(), Job{}, 3); err == nil {
		t.Error("recording fleet accepted by Replicate")
	}

	tr := trace.New(100, []trace.Opportunity{{Station: 0, Lifespan: 500, Allowance: 1}})
	cfg = surveyConfig()
	cfg.Owners = []Owner{Malicious{Base: Replay{Trace: tr}}}
	f, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Replicate(context.Background(), Job{}, 3); err == nil {
		t.Error("replay fleet accepted by Replicate (wrapped base not detected)")
	}
}

func TestCustomOwnerMatchesFixed(t *testing.T) {
	// A CustomOwner emitting one fixed caller-units contract must quantize
	// exactly like the built-in Fixed temperament with a Benign wrapper.
	custom := CustomOwner{
		Label:  "const",
		Sample: func(*rand.Rand) Contract { return Contract{Lifespan: 160, Interrupts: 2} },
	}
	cfgA := surveyConfig()
	cfgA.Owners = []Owner{custom}
	cfgB := surveyConfig()
	cfgB.Owners = []Owner{Benign{Base: Fixed{Lifespan: 160, Interrupts: 2}}}
	a, b := mustRun(t, cfgA, Job{}), mustRun(t, cfgB, Job{})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("custom const owner diverged from Benign(Fixed):\n got %+v\nwant %+v", a, b)
	}
}

// lastPeriodCustom interrupts at the very end of every episode — the public
// mirror of the classic last-instant adversary.
type lastPeriodCustom struct{}

func (lastPeriodCustom) NextInterrupt(allowance int, residual float64, episode []float64) (float64, bool) {
	total := 0.0
	for _, t := range episode {
		total += t
	}
	return total, true
}

func TestCustomInterrupterDrives(t *testing.T) {
	cfg := surveyConfig()
	cfg.Owners = []Owner{CustomOwner{
		Sample:      func(*rand.Rand) Contract { return Contract{Lifespan: 160, Interrupts: 2} },
		Interrupter: func(*rand.Rand, Contract) Interrupter { return lastPeriodCustom{} },
	}}
	res := mustRun(t, cfg, Job{})
	if res.Interrupts == 0 {
		t.Fatal("custom interrupter never fired")
	}
	// Determinism: the custom path must stay a pure function of the Config.
	if again := mustRun(t, cfg, Job{}); !reflect.DeepEqual(res, again) {
		t.Error("custom-owner run not reproducible")
	}
}

func TestCustomOwnerSkipsAndClamps(t *testing.T) {
	calls := 0
	cfg := surveyConfig()
	cfg.Stations = 1
	cfg.Owners = []Owner{CustomOwner{
		Sample: func(*rand.Rand) Contract {
			calls++
			if calls%2 == 1 {
				return Contract{Lifespan: 0, Interrupts: 1} // machine stayed busy
			}
			return Contract{Lifespan: 80, Interrupts: 1}
		},
		Interrupter: func(*rand.Rand, Contract) Interrupter {
			return overshootInterrupter{} // returns far beyond the lifespan
		},
	}}
	res := mustRun(t, cfg, Job{})
	if got := res.Stations[0].Opportunities; got != 2 {
		t.Errorf("skipped contracts miscounted: %d opportunities, want 2", got)
	}
	if res.Interrupts != 2 {
		t.Errorf("clamped interrupts lost: %d, want 2", res.Interrupts)
	}
}

type overshootInterrupter struct{}

func (overshootInterrupter) NextInterrupt(int, float64, []float64) (float64, bool) {
	return 1e12, true // clamped to the residual lifespan on the way in
}

func TestCustomOwnerNeedsSample(t *testing.T) {
	cfg := surveyConfig()
	cfg.Owners = []Owner{CustomOwner{Label: "hollow"}}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "hollow") {
		t.Fatalf("sample-less custom owner accepted: %v", err)
	}
}

func TestAdversaryOrdering(t *testing.T) {
	// One station, one fixed contract: work under the exact minimax owner
	// must floor the heuristic, and the benign owner must ceiling both.
	base := Fixed{Lifespan: 20, Interrupts: 2}
	work := func(o Owner) float64 {
		cfg := Config{Stations: 1, Setup: 5, Opportunities: 1, Seed: 3, TicksPerSetup: 10}
		cfg.Owners = []Owner{o}
		return mustRun(t, cfg, Job{}).Work
	}
	benign := work(Benign{Base: base})
	malicious := work(Malicious{Base: base})
	minimax := work(Minimax{Base: base})
	if !(minimax <= malicious && malicious < benign) {
		t.Errorf("adversary ordering violated: minimax %g, malicious %g, benign %g", minimax, malicious, benign)
	}

	// The minimax owner's realized work IS the schedule's guaranteed work.
	g := grid{setup: 5, ticksC: 10}
	sch, err := sched.NewAdaptiveEqualized(g.ticksC)
	if err != nil {
		t.Fatal(err)
	}
	floor, err := game.Evaluate(sch, 2, g.ticks(20), g.ticksC)
	if err != nil {
		t.Fatal(err)
	}
	if want := g.units(floor); minimax != want {
		t.Errorf("minimax owner banked %g, guaranteed work is %g", minimax, want)
	}
}

func TestScriptedAndStochasticOwners(t *testing.T) {
	cfg := surveyConfig()
	cfg.Owners = []Owner{Scripted{Base: Fixed{Lifespan: 160, Interrupts: 2}, Offsets: []float64{40, 40}}}
	scripted := mustRun(t, cfg, Job{})
	if scripted.Interrupts == 0 {
		t.Error("scripted owner never fired")
	}
	if again := mustRun(t, cfg, Job{}); !reflect.DeepEqual(scripted, again) {
		t.Error("scripted owner not deterministic")
	}

	cfg.Owners = []Owner{Stochastic{Base: Office{}, Prob: 1}}
	if res := mustRun(t, cfg, Job{}); res.Interrupts == 0 {
		t.Error("stochastic owner with Prob 1 never fired")
	}
	cfg.Owners = []Owner{Poisson{Base: Overnight{}, Mean: 1}}
	if res := mustRun(t, cfg, Job{}); res.Interrupts == 0 {
		t.Error("poisson owner with tiny mean never fired")
	}
	cfg.Owners = []Owner{SampledWorst{Base: Laptop{}}}
	if res := mustRun(t, cfg, Job{}); res.Interrupts == 0 {
		t.Error("sampled-worst owner never fired")
	}
}

func TestOwnerAndPolicyEnumerators(t *testing.T) {
	names := Owners()
	if len(names) != 16 {
		t.Fatalf("Owners() listed %d names, want 16: %v", len(names), names)
	}
	for _, name := range names {
		if _, err := OwnerByName(name); err != nil {
			t.Errorf("Owners() lists %q but OwnerByName rejects it: %v", name, err)
		}
	}
	if _, err := OwnerByName("toaster"); err == nil || !strings.Contains(err.Error(), "minimax-fixed") {
		t.Errorf("unknown-owner error does not list the valid names: %v", err)
	}

	for _, name := range Policies() {
		if _, err := PolicyByName(name); err != nil {
			t.Errorf("Policies() lists %q but PolicyByName rejects it: %v", name, err)
		}
	}
	if _, err := PolicyByName("fifo"); err == nil || !strings.Contains(err.Error(), "fixedchunk") {
		t.Errorf("unknown-policy error does not list the valid names: %v", err)
	}
}

func TestReplicateProgress(t *testing.T) {
	var mu sync.Mutex
	var snaps []Progress
	cfg := surveyConfig()
	cfg.Progress = func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		snaps = append(snaps, p)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 9
	if _, err := f.Replicate(context.Background(), Job{}, trials); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("Replicate emitted no progress")
	}
	last := snaps[len(snaps)-1]
	if last.Completed != trials || last.Remaining != 0 {
		t.Errorf("final snapshot %+v, want Completed=%d Remaining=0", last, trials)
	}
	for _, p := range snaps {
		if p.Completed+p.Remaining != trials {
			t.Errorf("snapshot %+v does not conserve the trial count", p)
		}
	}
}
