package fleet

import (
	"context"
	"fmt"
	"time"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/mc"
	"cyclesteal/internal/now"
	"cyclesteal/internal/station"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/task"
)

// StudyShards is the fixed shard count every replication study is cut into.
// Trial i belongs to shard i mod StudyShards, and shard accumulators merge
// in shard index order, so a study partitioned across any number of workers
// — in any grouping, finishing in any order — reproduces the single-process
// summaries bit for bit. The count is part of the replication contract (like
// the seed-stream rule) and of the distrib wire format, so it cannot change
// without a format version bump.
const StudyShards = mc.Shards

// SketchState is the serializable state of a metric's quantile sketch: the
// KLL-style compactor hierarchy behind Median/P90/P99. Level l values carry
// weight 2^l; sketch merge is a level-wise union, so rebuilt sketches merge
// bit-identically regardless of where each shard ran.
type SketchState struct {
	// K is the per-level buffer capacity.
	K int `json:"k"`
	// N is the number of observations the sketch represents.
	N int64 `json:"n"`
	// Bound is the accumulated rank-error bound.
	Bound int64 `json:"bound"`
	// Parity holds each level's alternating-selection offset.
	Parity []bool `json:"parity,omitempty"`
	// Levels holds each level's retained values.
	Levels [][]float64 `json:"levels,omitempty"`
}

// AccumState is the serializable state of one metric's accumulator within
// one shard: Welford moments, exact extremes, and the quantile sketch. All
// floats are finite and round-trip exactly through JSON (Go marshals the
// shortest representation that parses back to the same bits), which is what
// keeps distributed merges bit-identical to in-process ones.
type AccumState struct {
	// N is the number of trials folded in.
	N int `json:"n"`
	// Mean and M2 are the Welford running mean and sum of squared deviations.
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	// Min and Max are the exact extremes (meaningful only when N ≥ 1).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Sketch is the quantile sketch state; nil when quantile tracking is
	// disabled for the column.
	Sketch *SketchState `json:"sketch,omitempty"`
}

// Validate checks the structural invariants the replication engine
// maintains by construction — a decoder feeding wire data through here gets
// a loud error instead of state that lies.
func (a AccumState) Validate() error {
	_, err := stats.AccumulatorFromState(a.internal())
	return err
}

func (a AccumState) internal() stats.AccumState {
	st := stats.AccumState{N: a.N, Mean: a.Mean, M2: a.M2, Min: a.Min, Max: a.Max}
	if a.Sketch != nil {
		st.Sketch = &stats.SketchState{
			K:      a.Sketch.K,
			N:      a.Sketch.N,
			Bound:  a.Sketch.Bound,
			Parity: a.Sketch.Parity,
			Levels: a.Sketch.Levels,
		}
	}
	return st
}

func accumState(st stats.AccumState) AccumState {
	a := AccumState{N: st.N, Mean: st.Mean, M2: st.M2, Min: st.Min, Max: st.Max}
	if st.Sketch != nil {
		a.Sketch = &SketchState{
			K:      st.Sketch.K,
			N:      st.Sketch.N,
			Bound:  st.Sketch.Bound,
			Parity: st.Sketch.Parity,
			Levels: st.Sketch.Levels,
		}
	}
	return a
}

// ShardResult is one shard's partial study state: a full accumulator per
// metric column, covering exactly the trials the shard owns. It is the unit
// of work the distrib package ships between processes.
type ShardResult struct {
	// Shard identifies the shard, in [0, StudyShards).
	Shard int `json:"shard"`
	// Metrics holds one accumulator state per metric column, indexed like
	// Study.MetricColumns describes.
	Metrics []AccumState `json:"metrics"`
}

// Validate checks shard range and every metric state's structural
// invariants. Study.Merge additionally checks the per-study facts
// (column count, per-shard trial count, complete cover).
func (r ShardResult) Validate() error {
	if r.Shard < 0 || r.Shard >= StudyShards {
		return fmt.Errorf("fleet: shard %d out of range [0, %d)", r.Shard, StudyShards)
	}
	for m, a := range r.Metrics {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("fleet: shard %d metric %d: %w", r.Shard, m, err)
		}
	}
	return nil
}

// Study is a replication study cut into StudyShards independent shards. It
// is the distribution-ready face of Replicate: RunShards computes any
// subset of shards (bit-identical wherever it runs, because trial seeds and
// within-shard order are pure functions of the study spec), and Merge folds
// a complete cover of shard results — from any mix of processes, arriving
// in any order — into the exact Replication a single-process Replicate
// returns.
//
// Two fleets built from the same Config produce interchangeable studies:
// results computed by one merge under the other. That is the contract the
// distrib package's coordinator/worker split rests on.
type Study struct {
	trials   int
	k        float64
	cfg      mc.Config // Progress left nil; RunShards installs per-call
	interval time.Duration
	factory  station.SchedulerFactory

	survey   bool // private-pool fleet survey vs shared-job farm path
	fm       farm.Farm
	fj       farm.Job
	statCols bool

	nf       now.Fleet
	tasksPer func(ws now.Workstation) *task.Bag
}

// Study validates the job against the fleet and cuts a trials-sized
// replication into shards. It applies Replicate's rules: trials ≥ 1, no
// trace recording, no trace-replay owners, no active fault plans.
func (f *Fleet) Study(job Job, trials int) (*Study, error) {
	if trials < 1 {
		return nil, fmt.Errorf("fleet: trials must be ≥ 1, got %d", trials)
	}
	if f.cfg.Record != nil {
		return nil, fmt.Errorf("fleet: Replicate cannot record a trace: trials would overwrite one another — record a single Run or RunDeterministic instead")
	}
	if f.stateful {
		return nil, fmt.Errorf("fleet: Replicate cannot drive trace-replay owners: a recorded trace names one run, not a distribution — use Run or RunDeterministic")
	}
	if f.cfg.Faults.Active() {
		return nil, fmt.Errorf("fleet: Replicate rejects fault plans: a plan names one faulted run, not a distribution — sweep seeds over RunDeterministic instead")
	}
	s := &Study{
		trials:   trials,
		k:        f.g.unitsPerTick(),
		cfg:      mc.Config{Trials: trials, Seed: f.cfg.Seed, Workers: f.cfg.Workers},
		interval: f.cfg.ProgressInterval,
		factory:  f.factory,
	}
	fj := f.job(job)
	if f.cfg.Pool == Private || len(fj.Tasks) == 0 {
		// Empty jobs replicate as pure fluid surveys (see Run): the shared
		// pools would end each trial before its first opportunity.
		s.survey = true
		s.nf = now.Fleet{
			Stations:                f.stations,
			OpportunitiesPerStation: f.cfg.Opportunities,
			DisableEpisodeMemo:      f.cfg.DisableEpisodeMemo,
		}
		if len(fj.Tasks) > 0 {
			// Each trial drains fresh bags; the deal itself is a pure
			// function of (job, fleet), and ws.ID indexes it because New
			// numbers stations 0..n−1.
			hands := task.Deal(fj.Tasks, len(f.stations))
			s.tasksPer = func(ws now.Workstation) *task.Bag {
				return task.NewBag(hands[ws.ID])
			}
		}
		return s, nil
	}
	s.fm = f.farm(f.stations)
	s.fj = fj
	s.statCols = f.cfg.StationSummaries
	return s, nil
}

// Trials is the study's total trial count.
func (s *Study) Trials() int { return s.trials }

// ShardTrials is how many trials the given shard owns (0 for shards past
// the trial count or out of range). The per-shard counts over all
// StudyShards shards sum to Trials.
func (s *Study) ShardTrials(shard int) int { return mc.ShardTrials(s.trials, shard) }

// MetricColumns is the width of every shard's metric vector: the number of
// AccumState entries a ShardResult must carry. The column order is an
// internal engine detail — results only round-trip between Study values
// built from the same Config.
func (s *Study) MetricColumns() int {
	if s.survey {
		return now.NumFleetMetrics
	}
	return s.fm.ReplicateColumns(s.statCols)
}

// AllShards lists every shard ID, 0..StudyShards−1.
func (s *Study) AllShards() []int {
	ids := make([]int, StudyShards)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// RunShards computes the named shards' trials and returns their partial
// accumulator states, one ShardResult per requested shard in request order.
// Shard IDs must be distinct and in range. The results are bit-identical
// wherever they are computed: trial i runs on the deterministic stream for
// Seed+i and lands in shard i mod StudyShards, in increasing trial order.
//
// progress, when non-nil, observes trials completed within this call's
// subset (total is the subset's trial count, not the study's); it is always
// called with a final snapshot before RunShards returns, even on error or
// cancellation. Cancelling ctx stops every worker at its next trial
// boundary and returns ctx.Err().
func (s *Study) RunShards(ctx context.Context, shardIDs []int, progress func(done, total int)) ([]ShardResult, error) {
	cfg := s.cfg
	cfg.Progress = progress
	cfg.ProgressInterval = s.interval
	var shards []mc.ShardAccums
	var err error
	if s.survey {
		shards, err = s.nf.ReplicateShards(ctx, s.factory, cfg, s.tasksPer, shardIDs)
	} else {
		shards, err = s.fm.ReplicateShards(ctx, s.fj, s.factory, cfg, s.statCols, shardIDs)
	}
	if err != nil {
		return nil, err
	}
	out := make([]ShardResult, len(shards))
	for i, sh := range shards {
		res := ShardResult{Shard: sh.Shard, Metrics: make([]AccumState, len(sh.Accums))}
		for m, a := range sh.Accums {
			res.Metrics[m] = accumState(a.State())
		}
		out[i] = res
	}
	return out, nil
}

// Merge folds a complete cover of shard results — every shard exactly once,
// in any order, from any mix of processes — into the study's Replication.
// It re-validates everything a wire hop could corrupt: structural
// invariants per accumulator, the column count, and each shard's exact
// trial count. The merged summaries are bit-identical to a single-process
// Replicate of the same study.
func (s *Study) Merge(results []ShardResult) (Replication, error) {
	cols := s.MetricColumns()
	shards := make([]mc.ShardAccums, len(results))
	for i, r := range results {
		if r.Shard < 0 || r.Shard >= StudyShards {
			return Replication{}, fmt.Errorf("fleet: shard %d out of range [0, %d)", r.Shard, StudyShards)
		}
		if len(r.Metrics) != cols {
			return Replication{}, fmt.Errorf("fleet: shard %d carries %d metric columns, study has %d", r.Shard, len(r.Metrics), cols)
		}
		want := mc.ShardTrials(s.trials, r.Shard)
		accums := make([]*stats.Accumulator, cols)
		for m, st := range r.Metrics {
			a, err := stats.AccumulatorFromState(st.internal())
			if err != nil {
				return Replication{}, fmt.Errorf("fleet: shard %d metric %d: %w", r.Shard, m, err)
			}
			if a.N() != want {
				return Replication{}, fmt.Errorf("fleet: shard %d metric %d holds %d trials, shard owns %d", r.Shard, m, a.N(), want)
			}
			accums[m] = a
		}
		shards[i] = mc.ShardAccums{Shard: r.Shard, Accums: accums}
	}
	sums, err := mc.MergeShards(cols, shards)
	if err != nil {
		return Replication{}, err
	}
	return s.assemble(sums), nil
}

// assemble maps merged engine summaries onto the public Replication, in
// caller units — the same mapping for merged shard covers and whole
// single-process runs, which is what pins the two bit-identical.
func (s *Study) assemble(sums []stats.Summary) Replication {
	k := s.k
	if s.survey {
		return Replication{
			Trials:         s.trials,
			TasksCompleted: summary(sums[now.FleetMetricTasks], 1),
			TaskWork:       summary(sums[now.FleetMetricTaskWork], k),
			Work:           summary(sums[now.FleetMetricWork], k),
			Lifespan:       summary(sums[now.FleetMetricLifespan], k),
			Utilization:    summary(sums[now.FleetMetricUtilization], 1),
			Killed:         summary(sums[now.FleetMetricKilledTicks], k),
			Interrupts:     summary(sums[now.FleetMetricInterrupts], 1),
		}
	}
	rep := Replication{
		Trials:         s.trials,
		TasksCompleted: summary(sums[farm.MetricTasksCompleted], 1),
		Completion:     summary(sums[farm.MetricCompletionFrac], 1),
		Work:           summary(sums[farm.MetricFluidWork], k),
		Killed:         summary(sums[farm.MetricKilledTicks], k),
		Interrupts:     summary(sums[farm.MetricInterrupts], 1),
		Imbalance:      summary(sums[farm.MetricImbalance], 1),
		Steals:         summary(sums[farm.MetricSteals], 1),
		InFlight:       summary(sums[farm.MetricTasksInFlight], 1),
	}
	if s.statCols {
		stationSums := sums[farm.NumMetrics:]
		rep.StationLifespan = make([]Summary, len(stationSums))
		for i, sum := range stationSums {
			rep.StationLifespan[i] = summary(sum, k)
		}
	}
	return rep
}
