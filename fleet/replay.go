package fleet

import (
	"fmt"
	"math/rand"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/station"
	"cyclesteal/trace"
)

// Replay is the trace-driven owner: each station replays the opportunities
// a trace recorded for it — the same lifespans, the same allowances, the
// owner returning at the same absolute instants — deterministically and
// regardless of which policy the replaying fleet schedules with. A station
// beyond its recorded opportunities (or absent from the trace) offers
// nothing.
//
// Replaying through the same Config that recorded the trace reproduces the
// originating run's Result bit-for-bit; replaying through a different
// Policy answers "what would this schedule have banked against the exact
// interruptions that actually happened". The replaying fleet must be built
// on the trace's grid (Config.TicksPerSetup == Trace.TicksPerSetup).
//
// Replay cursors are per-run state, so a Fleet with Replay owners rebuilds
// its station models on every run (still safe for concurrent runs) and
// cannot drive Replicate: a recorded trace names one run, not a
// distribution.
type Replay struct {
	Trace *trace.Trace
}

func (r Replay) model(b binding) (station.OwnerModel, error) {
	if r.Trace == nil {
		return nil, fmt.Errorf("fleet: replay owner needs a trace")
	}
	if got := r.Trace.TicksPerSetup; got != int(b.g.ticksC) {
		return nil, fmt.Errorf("fleet: replay trace was recorded at %d ticks per setup, fleet runs at %d — set Config.TicksPerSetup to match", got, int(b.g.ticksC))
	}
	opps, err := r.Trace.Station(b.station)
	if err != nil {
		return nil, fmt.Errorf("fleet: replay: %w", err)
	}
	return &replayModel{opps: opps}, nil
}

// replayModel walks one station's recorded opportunities. The cursor makes
// it per-run state: the Fleet builds a fresh one for every run.
type replayModel struct {
	opps []trace.Opportunity
	next int
}

func (m *replayModel) Sample(rng *rand.Rand) station.Contract {
	if m.next >= len(m.opps) {
		return station.Contract{} // trace exhausted: offer nothing
	}
	o := m.opps[m.next]
	m.next++
	return station.Contract{U: quant.Tick(o.Lifespan), P: o.Allowance}
}

func (m *replayModel) Interrupter(rng *rand.Rand, c station.Contract) sim.Interrupter {
	// The engines call Interrupter for the contract Sample just returned.
	o := m.opps[m.next-1]
	return &replayInterrupter{u: c.U, offsets: o.Interrupts}
}

func (m *replayModel) Name() string { return "replay" }

// replayInterrupter replays one opportunity's recorded returns. Offsets are
// absolute elapsed times within the opportunity; each answer converts the
// next one to the episode-relative time the simulator speaks (the elapsed
// lifespan so far is U − L). Trace validation guarantees the result lands
// in (0, L]: offsets are strictly increasing and bounded by the lifespan,
// and an answered interrupt always consumes exactly its offset.
type replayInterrupter struct {
	u       quant.Tick
	offsets []int64
	next    int
}

func (ri *replayInterrupter) NextInterrupt(p int, L quant.Tick, _ model.TickSchedule) (quant.Tick, bool) {
	if p <= 0 || ri.next >= len(ri.offsets) {
		return 0, false
	}
	at := quant.Tick(ri.offsets[ri.next]) - (ri.u - L)
	ri.next++
	return at, true
}

// recordSink accumulates one station's recorded opportunities. During a run
// it is owned by whichever goroutine is playing the station (the engines
// order every station's opportunities with happens-before edges), so it
// needs no locking.
type recordSink struct {
	station int
	opps    []trace.Opportunity
}

// recordingModel wraps a station's owner model so the run can be replayed:
// every offered contract opens a trace opportunity, every placed return is
// written down as its absolute elapsed offset.
type recordingModel struct {
	base station.OwnerModel
	sink *recordSink
}

func (m recordingModel) Sample(rng *rand.Rand) station.Contract {
	c := m.base.Sample(rng)
	if c.U >= 1 {
		// U < 1 contracts are skipped by the engines — nothing to replay.
		m.sink.opps = append(m.sink.opps, trace.Opportunity{
			Station: m.sink.station, Lifespan: int64(c.U), Allowance: c.P,
		})
	}
	return c
}

func (m recordingModel) Interrupter(rng *rand.Rand, c station.Contract) sim.Interrupter {
	return &recordingInterrupter{base: m.base.Interrupter(rng, c), sink: m.sink, u: c.U}
}

func (m recordingModel) Name() string { return m.base.Name() }

// recordingInterrupter writes each answered interrupt into the sink's
// current (last-opened) opportunity as an absolute elapsed offset.
type recordingInterrupter struct {
	base sim.Interrupter
	sink *recordSink
	u    quant.Tick
}

func (ri *recordingInterrupter) NextInterrupt(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
	at, ok := ri.base.NextInterrupt(p, L, ep)
	if ok {
		cur := &ri.sink.opps[len(ri.sink.opps)-1]
		cur.Interrupts = append(cur.Interrupts, int64(ri.u-L+at))
	}
	return at, ok
}

// recordingStations wraps every station's model for one recording run and
// returns the publish hook the run calls on success: sinks are assembled in
// station order (within a station, play order) into the trace that
// reproduces the run.
func recordingStations(sts []station.Workstation, g grid, rec *trace.Recorder) func() {
	sinks := make([]*recordSink, len(sts))
	for i := range sts {
		sinks[i] = &recordSink{station: i}
		sts[i].Owner = recordingModel{base: sts[i].Owner, sink: sinks[i]}
	}
	return func() {
		var opps []trace.Opportunity
		for _, s := range sinks {
			opps = append(opps, s.opps...)
		}
		rec.Publish(trace.New(int(g.ticksC), opps))
	}
}
