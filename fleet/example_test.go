package fleet_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"reflect"

	"cyclesteal/fleet"
	"cyclesteal/trace"
)

// Farm one shared data-parallel job across a small NOW and read the
// job-level accounting. RunDeterministic makes the output a pure function
// of the configuration — bit-identical at any Workers setting.
func Example() {
	f, err := fleet.New(fleet.Config{
		Stations:      16, // owners lending idle time
		Setup:         5,  // seconds per work hand-off
		Opportunities: 10, // contracts each station works through
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	job := fleet.Job{Tasks: fleet.FixedTasks(20000, 12)} // 20k twelve-second tasks
	res, err := f.RunDeterministic(context.Background(), job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d of %d tasks (%.1f%%)\n",
		res.TasksCompleted, res.TasksCompleted+res.TasksLeft, 100*res.CompletionFraction())
	// Output:
	// completed 13834 of 20000 tasks (69.2%)
}

// Replicate a fleet study: the same job replayed over many deterministic
// trials, each metric summarized with bounded-error tail quantiles.
func ExampleFleet_Replicate() {
	f, err := fleet.New(fleet.Config{
		Stations:      32,
		Setup:         5,
		Opportunities: 8,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	job := fleet.Job{Tasks: fleet.ExponentialTasks(5000, 10, 42)}
	rep, err := f.Replicate(context.Background(), job, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d trials: median %.0f tasks completed, p99 imbalance %.2f\n",
		rep.Trials, rep.TasksCompleted.Median, rep.Imbalance.P99)
	// Output:
	// 20 trials: median 5000 tasks completed, p99 imbalance 1.96
}

// Survey a fleet of custom owner temperaments under worst-case interrupts:
// every station plays its own opportunities against a private slice of the
// job, so even the live engine is bit-identical at any Workers setting.
func ExampleConfig_owners() {
	f, err := fleet.New(fleet.Config{
		Stations: 9,
		Setup:    5,
		Owners: []fleet.Owner{
			fleet.Office{MeanIdle: 1800, Interrupts: 3},
			fleet.Malicious{Base: fleet.Laptop{MeanIdle: 600}},
		},
		Policy:        fleet.Policy{Name: "nonadaptive"},
		Opportunities: 12,
		Pool:          fleet.Private,
		Seed:          3,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := f.Run(context.Background(), fleet.Job{Tasks: fleet.FixedTasks(900, 25)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("utilization %.0f%%, %d interrupts\n", 100*res.Utilization(), res.Interrupts)
	// Output:
	// utilization 90%, 152 interrupts
}

// Split a fleet into two clusters — a NOW of NOWs — and price the crossing:
// stations steal freely inside their own cluster, but a steal across
// clusters keeps the tasks in flight for StealLatency time units,
// unavailable to both sides. With a strong cluster working next to a weak
// one, the strong half must reach across to stay busy, and the latency it
// pays shows up directly as lost completion — the Gast–Khatiri–Trystram
// effect the flat fleet cannot express.
func ExampleConfig_clusters() {
	run := func(latency float64) fleet.Result {
		f, err := fleet.New(fleet.Config{
			Stations: 16,
			Setup:    1,
			// The owner cycle aligns with the shard clusters: stations
			// i%4 ∈ {0,1} form the strong cluster, {2,3} the weak one.
			Owners: []fleet.Owner{
				fleet.Fixed{Lifespan: 8}, fleet.Fixed{Lifespan: 8},
				fleet.Fixed{Lifespan: 3}, fleet.Fixed{Lifespan: 3},
			},
			Policy:        fleet.Policy{Name: "single"},
			Opportunities: 8,
			Shards:        4,
			Clusters:      2,
			StealLatency:  latency,
			Seed:          21,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := f.RunDeterministic(context.Background(), fleet.Job{Tasks: fleet.FixedTasks(400, 1)})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	free, priced := run(0), run(32)
	fmt.Printf("free crossing:   %d of 400 tasks, %d steals\n", free.TasksCompleted, free.Steals)
	fmt.Printf("32-unit latency: %d of 400 tasks, %d steals, %d still in flight\n",
		priced.TasksCompleted, priced.Steals, priced.InFlight)
	// Output:
	// free crossing:   400 of 400 tasks, 8 steals
	// 32-unit latency: 321 of 400 tasks, 3 steals, 51 still in flight
}

// Record one run's interrupt history, then replay it under a different
// policy — "what would this schedule have banked against the interruptions
// that actually happened". The recorded trace.Trace round-trips through the
// documented CSV/JSONL encodings, so a live cluster's usage log can be fed
// back the same way.
func ExampleReplay() {
	rec := trace.NewRecorder()
	f, err := fleet.New(fleet.Config{
		Stations:      6,
		Setup:         5,
		Opportunities: 10,
		Seed:          7,
		Record:        rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	orig, err := f.Run(context.Background(), fleet.Job{})
	if err != nil {
		log.Fatal(err)
	}
	tr := rec.Trace()

	// Same interrupt history, single-period schedule instead of equalized.
	rf, err := fleet.New(fleet.Config{
		Stations:      tr.Stations(),
		Setup:         5,
		Opportunities: tr.MaxOpportunities(),
		Owners:        []fleet.Owner{fleet.Replay{Trace: tr}},
		Policy:        fleet.Policy{Name: "single"},
		TicksPerSetup: tr.TicksPerSetup,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := rf.Run(context.Background(), fleet.Job{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded: utilization %.1f%% over %d interrupts\n", 100*orig.Utilization(), orig.Interrupts)
	fmt.Printf("replayed under single: utilization %.1f%% over %d interrupts\n", 100*res.Utilization(), res.Interrupts)
	// Output:
	// recorded: utilization 91.8% over 38 interrupts
	// replayed under single: utilization 80.4% over 38 interrupts
}

// Run the fleet as a resident service instead of a batch: jobs from two
// tenants stream into one standing fleet, stations churn in and out
// mid-flight (a leaving station's queued tasks migrate back to the pool),
// and every period checkpoints partial work so a kill no longer erases the
// whole task. The whole run lands in an event log that ReplayService
// replays bit-identically at any Workers setting.
func ExampleService() {
	s, err := fleet.NewService(fleet.ServiceConfig{
		Fleet: fleet.Config{
			Stations:   12,
			Setup:      5,
			Checkpoint: 15, // save progress every 15 seconds of task work
			Seed:       11,
		},
		Churn: fleet.ChurnConfig{LeaveProb: 0.05, JoinProb: 0.30, MinStations: 6},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.Submit("ana", fleet.Job{Tasks: fleet.ExponentialTasks(300, 12, 3)}); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Submit("bo", fleet.Job{Tasks: fleet.FixedTasks(200, 20)}); err != nil {
		log.Fatal(err)
	}
	res, err := s.Drain(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, j := range res.Jobs {
		fmt.Printf("%s: %d/%d tasks in rounds %d..%d\n",
			j.Tenant, j.TasksCompleted, j.Tasks, j.SubmittedRound, j.FinishedRound)
	}
	fmt.Printf("%d rounds, %d joins, %d departures\n", res.Rounds, res.Joined, res.Departed)

	// The recorded events replay to the identical result.
	rep, err := fleet.ReplayService(context.Background(), fleet.ServiceConfig{
		Fleet: fleet.Config{Stations: 12, Setup: 5, Checkpoint: 15, Seed: 11},
	}, res.Events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay matches: %v\n", reflect.DeepEqual(rep, res))
	// Output:
	// ana: 300/300 tasks in rounds 0..5
	// bo: 200/200 tasks in rounds 0..1
	// 6 rounds, 1 joins, 3 departures
	// replay matches: true
}

// Survive a scheduler crash: the service writes every event to a JSONL
// write-ahead log, a fault plan kills the scheduler mid-run, and
// RecoverService rebuilds the session from the log — replaying the logged
// rounds and then finishing the job exactly as the dead session would have.
func ExampleRecoverService() {
	cfg := func(killRound int, wal *bytes.Buffer) fleet.ServiceConfig {
		sc := fleet.ServiceConfig{
			Fleet: fleet.Config{
				Stations: 12,
				Setup:    5,
				Shards:   4,
				Seed:     11,
				Faults: fleet.FaultPlan{
					// A rack outage at round 1 — stations 3, 7 and 11 form a
					// whole steal group, so its queued work is lost, not
					// drained — then the scheduler itself dies at killRound
					// (0 = never).
					Crashes: []fleet.StationCrash{
						{Round: 1, Station: 3}, {Round: 1, Station: 7}, {Round: 1, Station: 11},
					},
					KillRound: killRound,
				},
			},
		}
		if wal != nil {
			sc.WAL = wal
		}
		return sc
	}
	submit := func(s *fleet.Service) {
		if _, err := s.Submit("ana", fleet.Job{Tasks: fleet.FixedTasks(6000, 12)}); err != nil {
			log.Fatal(err)
		}
	}

	// The doomed session: logs to wal, dies at round 3.
	var wal bytes.Buffer
	doomed, err := fleet.NewService(cfg(3, &wal))
	if err != nil {
		log.Fatal(err)
	}
	submit(doomed)
	if _, err := doomed.Drain(context.Background()); errors.Is(err, fleet.ErrSchedulerKilled) {
		fmt.Printf("scheduler killed; %d bytes of log survive\n", wal.Len())
	}

	// Recovery: same configuration with the kill lifted, plus the log.
	s, err := fleet.RecoverService(cfg(0, nil), bytes.NewReader(wal.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Drain(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	j := res.Jobs[0]
	fmt.Printf("recovered: %s finished %d/%d tasks (%d lost to the crash) in %d rounds\n",
		j.Tenant, j.TasksCompleted, j.Tasks, j.TasksLost, res.Rounds)
	// Output:
	// scheduler killed; 18327 bytes of log survive
	// recovered: ana finished 4721/6000 tasks (1279 lost to the crash) in 7 rounds
}
