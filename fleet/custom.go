package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/station"
)

// Contract is one cycle-stealing opportunity as an owner offers it, in the
// caller's continuous time units: the usable lifespan U and the interrupt
// allowance p of the paper's §2.1 contract.
type Contract struct {
	// Lifespan is the lent stretch in caller time units. A sampled contract
	// with Lifespan ≤ 0 is skipped: the station offers nothing this
	// opportunity (how an availability process says "the machine stayed
	// busy").
	Lifespan float64
	// Interrupts is the allowance p — how many times the owner may return
	// during the stretch. Must be ≥ 0; each return kills the period in
	// progress under the draconian contract.
	Interrupts int
}

// Interrupter places a custom owner's returns. At the start of each episode
// it sees the remaining allowance, the residual lifespan and the episode
// about to run (period lengths, caller time units, valid only for the
// duration of the call) and answers either "let it run" (ok = false) or
// "return after at time units of this episode". An at beyond the episode's
// total falls into trailing idle time — it kills nothing but still consumes
// allowance and lifespan; at is clamped into (0, residual] on the way into
// the engine, so an implementation cannot corrupt a run by overshooting.
type Interrupter interface {
	NextInterrupt(allowance int, residual float64, episode []float64) (at float64, ok bool)
}

// CustomOwner is the open half of the owner contract: a caller-defined
// availability process in plain caller units. Sample draws each
// opportunity's contract from the station's private deterministic rng;
// Interrupter (optional — nil never interrupts) builds the within-contract
// return process. The named temperaments are closed-form instances of
// exactly this shape; CustomOwner is how processes the library does not
// ship — diurnal models, empirically fitted distributions, hybrid
// replay-plus-noise — drive a fleet.
//
// Both hooks must be safe for the Fleet's concurrency contract: a Fleet is
// shared by concurrent runs and Replicate calls them from many trial
// goroutines, so they must not mutate shared state (the rng argument is
// per-station, per-run, and free to use).
type CustomOwner struct {
	// Label names the process in reports; empty means "custom".
	Label string
	// Sample draws the next contract. Required.
	Sample func(rng *rand.Rand) Contract
	// Interrupter builds the owner's return process for one sampled
	// contract; nil means the owner never interrupts.
	Interrupter func(rng *rand.Rand, c Contract) Interrupter
}

func (co CustomOwner) model(b binding) (station.OwnerModel, error) {
	if co.Sample == nil {
		return nil, fmt.Errorf("fleet: custom owner %q needs a Sample func", co.name())
	}
	return customModel{co: co, g: b.g}, nil
}

func (co CustomOwner) name() string {
	if co.Label != "" {
		return co.Label
	}
	return "custom"
}

// customModel adapts a CustomOwner onto the internal tick grid.
type customModel struct {
	co CustomOwner
	g  grid
}

func (m customModel) Sample(rng *rand.Rand) station.Contract {
	c := m.co.Sample(rng)
	if !(c.Lifespan > 0) || c.Interrupts < 0 {
		return station.Contract{} // U = 0: the engines skip the opportunity
	}
	return station.Contract{U: m.g.ticks(c.Lifespan), P: c.Interrupts}
}

func (m customModel) Interrupter(rng *rand.Rand, c station.Contract) sim.Interrupter {
	if m.co.Interrupter == nil {
		return adversary.None{}
	}
	inner := m.co.Interrupter(rng, Contract{Lifespan: m.g.units(c.U), Interrupts: c.P})
	if inner == nil {
		return adversary.None{}
	}
	// The episode conversion buffer lives on the interrupter, which the
	// engines build fresh per contract — per-goroutine scratch, never shared.
	return &customInterrupter{inner: inner, g: m.g}
}

func (m customModel) Name() string { return m.co.name() }

// customInterrupter converts the engine's tick-grid episode view to caller
// units and the answer back, clamping it into the engine's contract.
type customInterrupter struct {
	inner Interrupter
	g     grid
	ep    []float64 // reusable conversion buffer
}

func (ci *customInterrupter) NextInterrupt(p int, L quant.Tick, episode model.TickSchedule) (quant.Tick, bool) {
	ci.ep = ci.ep[:0]
	for _, t := range episode {
		ci.ep = append(ci.ep, ci.g.units(t))
	}
	at, ok := ci.inner.NextInterrupt(p, ci.g.units(L), ci.ep)
	if !ok {
		return 0, false
	}
	t := quant.Tick(math.Round(at / ci.g.setup * float64(ci.g.ticksC)))
	if t < 1 {
		t = 1
	}
	if t > L {
		t = L
	}
	return t, true
}
