package fleet

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/quant"
)

func TestTopologyValidation(t *testing.T) {
	base := Config{Stations: 64, Setup: 5}
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the error
	}{
		{"negative clusters", func(c *Config) { c.Clusters = -1 }, "clusters must be ≥ 0"},
		{"negative latency", func(c *Config) { c.Clusters = 2; c.StealLatency = -3 }, "steal latency must be ≥ 0"},
		{"NaN latency", func(c *Config) { c.Clusters = 2; c.StealLatency = math.NaN() }, "steal latency must be ≥ 0"},
		{"Inf latency", func(c *Config) { c.Clusters = 2; c.StealLatency = math.Inf(1) }, "steal latency must be ≥ 0"},
		{"latency without clusters", func(c *Config) { c.StealLatency = 4 }, "needs ≥ 2 clusters"},
		{"latency on one cluster", func(c *Config) { c.Clusters = 1; c.StealLatency = 4 }, "needs ≥ 2 clusters"},
		{"clusters on shared pool", func(c *Config) { c.Clusters = 2; c.Pool = Shared }, "require the sharded pool"},
		{"clusters on private pool", func(c *Config) { c.Clusters = 2; c.Pool = Private }, "require the sharded pool"},
		{"more clusters than stations", func(c *Config) { c.Clusters = 65 }, "Clusters ≤ Stations"},
		{"uneven partition", func(c *Config) { c.Clusters = 5 }, "valid cluster counts: 1, 2, 4, 8, 16, 32, 64"},
		{"uneven partition of explicit shards", func(c *Config) { c.Shards = 6; c.Clusters = 4 }, "valid cluster counts: 1, 2, 3, 6"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		_, err := New(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
	for _, ok := range []Config{
		{Stations: 64, Setup: 5, Clusters: 4, StealLatency: 2},
		{Stations: 64, Setup: 5, Clusters: 1},
		{Stations: 10, Setup: 5, Clusters: 10}, // auto shards clamp to fleet
	} {
		if _, err := New(ok); err != nil {
			t.Errorf("valid topology config rejected: %+v: %v", ok, err)
		}
	}
}

// The zero-value topology is today's flat fleet, bit for bit: a Config with
// Clusters 0 or 1 and no latency produces exactly the pre-topology output.
func TestTopologyZeroValuePinnedToFlat(t *testing.T) {
	job := facadeJob()
	run := func(clusters int) Result {
		f, err := New(Config{Stations: 24, Setup: 5, Opportunities: 6, Shards: 4, Seed: 11, Clusters: clusters})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.RunDeterministic(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat := run(0)
	if got := run(1); !reflect.DeepEqual(got, flat) {
		t.Error("Clusters: 1 diverged from the flat fleet")
	}
}

// Topology runs on the deterministic engine are bit-identical at any worker
// count, and the facade adds units conversion over the raw internal call —
// nothing else.
func TestTopologyRunDeterministicBitIdentical(t *testing.T) {
	cfg := Config{Stations: 24, Setup: 5, Opportunities: 12, Shards: 4, Seed: 11,
		Clusters: 2, StealLatency: 2}
	job := facadeJob()

	var results []Result
	for _, workers := range []int{1, 8} {
		c := cfg
		c.Workers = workers
		f, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.RunDeterministic(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("topology RunDeterministic diverged between Workers 1 and 8")
	}

	// Pin against the raw internal engine: StealLatency 2 units at Setup 5,
	// TicksPerSetup 100 is 40 ticks.
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fm := farm.Farm{
		Stations:                f.stations,
		OpportunitiesPerStation: 12,
		Shards:                  4,
		Topology:                farm.Topology{Clusters: 2, CrossLatency: 40},
	}
	raw, err := fm.RunDeterministic(context.Background(), equivalentInternalJob(job), f.factory, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].TasksCompleted != raw.TasksCompleted ||
		results[0].TasksLeft != raw.TasksLeft ||
		results[0].Steals != raw.Steals ||
		results[0].InFlight != raw.InFlight {
		t.Errorf("facade %+v diverged from raw farm result %+v", results[0], raw)
	}
}

// Live topology Run where no station ever goes dry (stations == shards,
// oversupplied deterministic owners): no steals, so the whole Result is
// bit-identical at Workers 1 vs 8 even on the live engine.
func TestTopologyLiveRunBitIdenticalWithoutSteals(t *testing.T) {
	job := Job{Tasks: FixedTasks(40000, 1)}
	run := func(workers int) Result {
		f, err := New(Config{Stations: 8, Setup: 5, Opportunities: 4, Shards: 8, Seed: 3,
			Clusters: 4, StealLatency: 2, Workers: workers,
			Owners: []Owner{Fixed{Lifespan: 60}}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	if want.Steals != 0 {
		t.Fatalf("oversupplied fleet still stole %d times", want.Steals)
	}
	got := run(8)
	if !reflect.DeepEqual(got, want) {
		t.Error("no-steal topology Run diverged between Workers 1 and 8")
	}
}

// Live topology Run with real cross-cluster traffic: the accounting
// invariants hold at any worker count and nothing strands in flight when
// lifespan is ample.
func TestTopologyLiveRunConserves(t *testing.T) {
	job := Job{Tasks: ExponentialTasks(400, 8, 5)}
	for _, workers := range []int{1, 8} {
		f, err := New(Config{Stations: 16, Setup: 5, Opportunities: 30, Shards: 4, Seed: 9,
			Clusters: 2, StealLatency: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if res.TasksCompleted+res.TasksLeft != len(job.Tasks) {
			t.Errorf("workers=%d: %d + %d ≠ %d", workers, res.TasksCompleted, res.TasksLeft, len(job.Tasks))
		}
		if res.InFlight > res.TasksLeft {
			t.Errorf("workers=%d: InFlight %d > TasksLeft %d", workers, res.InFlight, res.TasksLeft)
		}
	}
}

// Replicate surfaces the in-flight metric and stays bit-identical at any
// worker budget for topology fleets.
func TestTopologyReplicateBitIdentical(t *testing.T) {
	job := facadeJob()
	run := func(workers int) Replication {
		f, err := New(Config{Stations: 24, Setup: 5, Opportunities: 8, Shards: 4, Seed: 17,
			Clusters: 2, StealLatency: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := f.Replicate(context.Background(), job, 4)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want := run(1)
	if got := run(8); !reflect.DeepEqual(got, want) {
		t.Error("topology Replicate diverged between Workers 1 and 8")
	}
	if want.Steals.N != 4 || want.InFlight.N != 4 {
		t.Errorf("steals/in-flight summaries not measured: N = %d/%d", want.Steals.N, want.InFlight.N)
	}
}

// The quantized latency keeps zero exactly zero and rounds any positive
// latency up to at least one tick.
func TestStealLatencyQuantization(t *testing.T) {
	mk := func(lat float64) *Fleet {
		f, err := New(Config{Stations: 8, Setup: 5, Clusters: 2, StealLatency: lat})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if got := mk(0).stealLatencyTicks(); got != 0 {
		t.Errorf("zero latency quantized to %d ticks", got)
	}
	if got := mk(0.0001).stealLatencyTicks(); got != 1 {
		t.Errorf("tiny latency quantized to %d ticks, want 1", got)
	}
	if got := mk(2).stealLatencyTicks(); got != quant.Tick(40) {
		t.Errorf("latency 2 units quantized to %d ticks, want 40", got)
	}
}
