package fleet

import (
	"fmt"
	"strings"

	"cyclesteal/internal/model"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/station"
)

// Policy names the period-sizing schedule every station runs its borrowed
// time with. The zero value is the adaptive equalization schedule.
type Policy struct {
	// Name selects the schedule:
	//
	//	"equalized"    Theorem 4.3's equalization program — optimal to
	//	               within low-order terms at every p (the default)
	//	"guideline"    the §3.2 printed adaptive guideline
	//	"nonadaptive"  the §3.1 guideline: ⌊√(pU/c)⌋ equal periods
	//	"single"       one long period per visit (the fragile baseline)
	//	"fixedchunk"   fixed periods of Chunk time units (Atallah-style)
	Name string
	// Chunk is the fixedchunk period length in caller time units; other
	// policies ignore it.
	Chunk float64
}

// Policies enumerates every schedule label PolicyByName accepts, in the
// order the Policy.Name doc lists them.
func Policies() []string {
	return []string{"equalized", "guideline", "nonadaptive", "single", "fixedchunk"}
}

// unknownPolicy is the shared wrong-name error, listing the valid labels.
func unknownPolicy(name string) error {
	return fmt.Errorf("fleet: unknown policy %q (want one of %s)", name, strings.Join(Policies(), ", "))
}

// PolicyByName selects a schedule by label — any name Policies lists; the
// selector CLIs feed flag values through it. fixedchunk callers set Chunk on
// the returned Policy.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "equalized", "guideline", "nonadaptive", "single", "fixedchunk":
		return Policy{Name: name}, nil
	default:
		return Policy{}, unknownPolicy(name)
	}
}

// factory compiles the policy into the per-(station, contract) scheduler
// constructor the engines drive. Validation happens here, at New time, so a
// bad policy fails fast instead of per opportunity.
func (p Policy) factory(g grid) (station.SchedulerFactory, error) {
	switch p.Name {
	case "", "equalized":
		return func(ws station.Workstation, c station.Contract) (model.EpisodeScheduler, error) {
			return sched.NewAdaptiveEqualized(ws.Setup)
		}, nil
	case "guideline":
		return func(ws station.Workstation, c station.Contract) (model.EpisodeScheduler, error) {
			return sched.NewAdaptiveGuideline(ws.Setup)
		}, nil
	case "nonadaptive":
		return func(ws station.Workstation, c station.Contract) (model.EpisodeScheduler, error) {
			return sched.NewNonAdaptive(c.U, c.P, ws.Setup)
		}, nil
	case "single":
		return func(ws station.Workstation, c station.Contract) (model.EpisodeScheduler, error) {
			return sched.SinglePeriod{}, nil
		}, nil
	case "fixedchunk":
		if !(p.Chunk > 0) {
			return nil, fmt.Errorf("fleet: fixedchunk policy needs Chunk > 0, got %g", p.Chunk)
		}
		t := g.ticks(p.Chunk)
		return func(ws station.Workstation, c station.Contract) (model.EpisodeScheduler, error) {
			return sched.FixedChunk{T: t}, nil
		}, nil
	default:
		return nil, unknownPolicy(p.Name)
	}
}
