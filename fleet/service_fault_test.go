package fleet

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// faultedConfig is the recovery stress shape: churn, checkpointing, split
// checkpoint costs and random station crashes all on, plus an optional
// scheduler kill and durable log.
func faultedConfig(workers, kill int, wal *bytes.Buffer) ServiceConfig {
	cfg := serviceFleet(workers)
	cfg.Checkpoint = 12
	cfg.CheckpointSaveCost = 3
	cfg.CheckpointRestartCost = 2
	cfg.Faults = FaultPlan{Seed: 7, CrashProb: 0.02, KillRound: kill}
	sc := ServiceConfig{
		Fleet:     cfg,
		MaxActive: 2,
		MaxRounds: 120,
		Churn:     ChurnConfig{LeaveProb: 0.05, JoinProb: 0.20, MinStations: 4, Seed: 41},
	}
	if wal != nil {
		sc.WAL = wal
	}
	return sc
}

// runFaulted drives the faulted scenario: two tenants' jobs submitted up
// front, drained until idle, killed, or out of rounds.
func runFaulted(t *testing.T, cfg ServiceConfig) (ServiceResult, *JobHandle, error) {
	t.Helper()
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Submit("ana", Job{Tasks: ExponentialTasks(12000, 12, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("bo", Job{Tasks: ExponentialTasks(8000, 20, 4)}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Drain(context.Background())
	return res, h, err
}

// TestServiceKillRecoverBitIdentical is the acceptance pin: a churned,
// checkpointed, crash-faulted session killed at an arbitrary round and
// rebuilt from its durable log completes bit-identically to the session
// that was never killed — at any Workers setting.
func TestServiceKillRecoverBitIdentical(t *testing.T) {
	want, _, err := runFaulted(t, faultedConfig(1, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if want.Crashed == 0 {
		t.Fatal("scenario sampled no crashes; the recovery pin would be vacuous")
	}
	if want.Rounds < 4 {
		t.Fatalf("scenario too short to kill mid-run: %d rounds", want.Rounds)
	}
	for _, workers := range []int{1, 8} {
		for _, kill := range []int{1, want.Rounds / 2, want.Rounds - 1} {
			var wal bytes.Buffer
			killed, h, err := runFaulted(t, faultedConfig(workers, kill, &wal))
			if !errors.Is(err, ErrSchedulerKilled) {
				t.Fatalf("workers=%d kill=%d: Drain error %v, want ErrSchedulerKilled", workers, kill, err)
			}
			if killed.Rounds != kill {
				t.Fatalf("workers=%d: killed at round %d, want %d", workers, killed.Rounds, kill)
			}
			// The handle fails with the kill — unless the job already
			// settled (completed, or lost tasks to a crash) beforehand.
			if jr, herr := h.Result(); !jr.Completed && !errors.Is(herr, ErrSchedulerKilled) && !errors.Is(herr, ErrTasksLost) {
				t.Fatalf("workers=%d kill=%d: unfinished handle error %v, want ErrSchedulerKilled or ErrTasksLost", workers, kill, herr)
			}
			evs, err := ReadWAL(bytes.NewReader(wal.Bytes()))
			if err != nil {
				t.Fatalf("workers=%d kill=%d: WAL does not decode: %v", workers, kill, err)
			}
			if len(evs) == 0 || evs[len(evs)-1].Kind != EventKill || evs[len(evs)-1].Round != kill {
				t.Fatalf("workers=%d kill=%d: WAL does not end with the kill record: %+v", workers, kill, evs[len(evs)-1:])
			}

			s, err := RecoverService(faultedConfig(workers, 0, nil), bytes.NewReader(wal.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Drain(context.Background())
			if err != nil {
				t.Fatalf("workers=%d kill=%d: recovered Drain: %v", workers, kill, err)
			}
			if !reflect.DeepEqual(res, want) {
				t.Fatalf("workers=%d kill=%d: recovered run diverges from the uninterrupted one:\nrecovered: %+v\nwant:      %+v", workers, kill, res, want)
			}
		}
	}
}

// TestServiceRecoverThenCrashAgain chains recoveries: kill, recover into a
// second kill, recover again from the second log, and still land exactly on
// the uninterrupted run.
func TestServiceRecoverThenCrashAgain(t *testing.T) {
	want, _, err := runFaulted(t, faultedConfig(1, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := want.Rounds/3, 2*want.Rounds/3
	if k1 < 1 || k2 <= k1 {
		t.Fatalf("scenario too short for two kills: %d rounds", want.Rounds)
	}
	var wal1 bytes.Buffer
	if _, _, err := runFaulted(t, faultedConfig(1, k1, &wal1)); !errors.Is(err, ErrSchedulerKilled) {
		t.Fatalf("first kill: %v", err)
	}
	// Recover with the kill round raised: the rebuilt session dies again
	// later, its own WAL carrying the full history.
	var wal2 bytes.Buffer
	cfg2 := faultedConfig(1, k2, &wal2)
	s, err := RecoverService(cfg2, bytes.NewReader(wal1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drain(context.Background()); !errors.Is(err, ErrSchedulerKilled) {
		t.Fatalf("second kill: %v", err)
	}
	s2, err := RecoverService(faultedConfig(1, 0, nil), bytes.NewReader(wal2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatal("twice-recovered run diverges from the uninterrupted one")
	}
}

// TestServiceInactiveFaultsAndWALPinned is the compatibility pin: an
// inactive fault plan and an attached WAL change nothing about the run —
// bit-identical to the plain churned service — and the WAL decodes back to
// exactly the run's event log.
func TestServiceInactiveFaultsAndWALPinned(t *testing.T) {
	want := runChurned(t, churnedConfig(1))
	cfg := churnedConfig(1)
	cfg.Fleet.Faults = FaultPlan{StealRetries: 5} // set but inactive
	var wal bytes.Buffer
	cfg.WAL = &wal
	got := runChurned(t, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("inactive fault plan or WAL perturbed the service run")
	}
	evs, err := ReadWAL(bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, want.Events) {
		t.Fatalf("WAL round-trip diverges from the event log:\nwal: %+v\nlog: %+v", evs, want.Events)
	}
}

// TestServiceCrashLosesQueuedWork pins the crash-vs-leave contract at the
// service level: crashing every station of one steal group destroys its
// queued tasks — the job settles with ErrTasksLost, every task accounted
// for — while the service itself keeps running.
func TestServiceCrashLosesQueuedWork(t *testing.T) {
	cfg := serviceFleet(0)
	// Groups = 4 over 12 stations: slots 0, 4 and 8 form group 0.
	cfg.Faults = FaultPlan{Crashes: []StationCrash{
		{Round: 2, Station: 0}, {Round: 2, Station: 4}, {Round: 2, Station: 8},
	}}
	s, err := NewService(ServiceConfig{Fleet: cfg})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Submit("t", Job{Tasks: FixedTasks(5000, 10)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Drain(context.Background())
	if err != nil {
		t.Fatalf("a crash-lossy run should drain cleanly, got %v", err)
	}
	if res.Crashed != 3 {
		t.Fatalf("Crashed = %d, want 3", res.Crashed)
	}
	jr, herr := h.Result()
	if !errors.Is(herr, ErrTasksLost) {
		t.Fatalf("job handle error %v, want ErrTasksLost", herr)
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("handle Done not closed for a settled lossy job")
	}
	if jr.Completed || jr.TasksLost == 0 {
		t.Fatalf("job result %+v: want incomplete with lost tasks", jr)
	}
	if jr.TasksCompleted+jr.TasksLost != jr.Tasks {
		t.Fatalf("job conservation broken: %d done + %d lost != %d", jr.TasksCompleted, jr.TasksLost, jr.Tasks)
	}
	if got := res.Fleet.TasksCompleted + res.Fleet.TasksLeft + res.Fleet.TasksLost; got != 5000 {
		t.Fatalf("fleet conservation broken: %d accounted of 5000", got)
	}
	if res.Fleet.TasksLost != jr.TasksLost {
		t.Fatalf("fleet lost %d, job lost %d", res.Fleet.TasksLost, jr.TasksLost)
	}
	st := s.Stats()
	if st.Crashed != 3 || st.TasksLost != jr.TasksLost {
		t.Fatalf("stats %+v disagree with result", st)
	}
	// Crash events carry the sampled mark and replay bit-identically.
	rep, err := ReplayService(context.Background(), ServiceConfig{Fleet: cfg}, res.Events)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, res) {
		t.Fatal("crash-lossy run does not replay bit-identically")
	}
}

// TestServiceFaultWipeoutSettlesJobs pins the wipeout branch: a plan that
// crashes the whole fleet in one round loses everything queued, settles the
// jobs immediately, and leaves the service idle rather than spinning.
func TestServiceFaultWipeoutSettlesJobs(t *testing.T) {
	cfg := serviceFleet(0)
	var crashes []StationCrash
	for s := 0; s < cfg.Stations; s++ {
		crashes = append(crashes, StationCrash{Round: 1, Station: s})
	}
	cfg.Faults = FaultPlan{Crashes: crashes}
	s, err := NewService(ServiceConfig{Fleet: cfg})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Submit("t", Job{Tasks: FixedTasks(5000, 10)})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("wipeout drain did not return promptly")
	}
	if res.Crashed != cfg.Stations {
		t.Fatalf("Crashed = %d, want %d", res.Crashed, cfg.Stations)
	}
	if _, herr := h.Result(); !errors.Is(herr, ErrTasksLost) {
		t.Fatalf("job handle error %v, want ErrTasksLost", herr)
	}
	if got := res.Fleet.TasksCompleted + res.Fleet.TasksLost; got != 5000 {
		t.Fatalf("wipeout accounting: %d done + lost of 5000 (left %d)", got, res.Fleet.TasksLeft)
	}
	if st := s.Stats(); st.Stations != 0 || st.TasksPending != 0 {
		t.Fatalf("dead fleet stats %+v", st)
	}
}

// TestServiceRecoverLive drives a recovery through the live Start/Wait
// loop instead of Drain, leak-checked: the rebuilt session replays, then
// serves, then shuts down without leaving goroutines behind.
func TestServiceRecoverLive(t *testing.T) {
	defer leakCheck(t)()
	want, _, err := runFaulted(t, faultedConfig(1, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	kill := want.Rounds / 2
	var wal bytes.Buffer
	if _, _, err := runFaulted(t, faultedConfig(1, kill, &wal)); !errors.Is(err, ErrSchedulerKilled) {
		t.Fatal(err)
	}
	s, err := RecoverService(faultedConfig(1, 0, nil), bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		// Jobs that lost tasks settle without ever counting as finished, so
		// idle here means "caught up to the uninterrupted run, nothing left".
		if st.Round >= want.Rounds && st.ActiveJobs == 0 && st.QueuedJobs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered live loop never went idle: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	res, err := s.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error %v, want context.Canceled", err)
	}
	if !reflect.DeepEqual(res.Jobs, want.Jobs) || !reflect.DeepEqual(res.Fleet, want.Fleet) {
		t.Fatal("live recovery diverges from the uninterrupted run")
	}
}

// TestServiceRecoverMismatchFailsLoudly pins the divergence check: a
// recovery under different churn seeds cannot silently produce a different
// session — the regenerated events fail the log comparison.
func TestServiceRecoverMismatchFailsLoudly(t *testing.T) {
	want, _, err := runFaulted(t, faultedConfig(1, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	var wal bytes.Buffer
	if _, _, err := runFaulted(t, faultedConfig(1, want.Rounds/2, &wal)); !errors.Is(err, ErrSchedulerKilled) {
		t.Fatal(err)
	}
	cfg := faultedConfig(1, 0, nil)
	cfg.Churn.Seed = 999 // not the seed the log was sampled under
	s, err := RecoverService(cfg, bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drain(context.Background()); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("mismatched recovery error %v, want divergence", err)
	}
}

// TestServiceWALWriteErrorStops pins the durability contract: an event that
// cannot be made durable stops the service instead of taking effect
// silently.
func TestServiceWALWriteErrorStops(t *testing.T) {
	cfg := churnedConfig(1)
	w := &failAfter{} // every write fails; the first round-barrier flush hits it
	cfg.WAL = w
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("t", Job{Tasks: FixedTasks(500, 10)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drain(context.Background()); err == nil || !strings.Contains(err.Error(), "write-ahead log") {
		t.Fatalf("Drain error %v, want a write-ahead log failure", err)
	}
}

// failAfter is an io.Writer that fails every write after the first n.
type failAfter struct{ n int }

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

// TestServiceFaultValidation covers the facade's fault checks.
func TestServiceFaultValidation(t *testing.T) {
	base := serviceFleet(1)
	bad := base
	bad.Faults = FaultPlan{CrashProb: 1.5}
	if _, err := NewService(ServiceConfig{Fleet: bad}); err == nil || !strings.Contains(err.Error(), "crash probability") {
		t.Errorf("crash prob: %v", err)
	}
	loss := base
	loss.Faults = FaultPlan{LossProb: 0.1}
	if _, err := New(loss); err == nil || !strings.Contains(err.Error(), "parcel loss") {
		t.Errorf("loss without clusters: %v", err)
	}
	// Batch live engine refuses active plans; the deterministic engine
	// takes them.
	crash := base
	crash.Faults = FaultPlan{Crashes: []StationCrash{{Round: 1, Station: 0}}}
	f, err := New(crash)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background(), Job{Tasks: FixedTasks(10, 5)}); err == nil || !strings.Contains(err.Error(), "live engine") {
		t.Errorf("live run with faults: %v", err)
	}
	if _, err := f.Replicate(context.Background(), Job{Tasks: FixedTasks(10, 5)}, 2); err == nil || !strings.Contains(err.Error(), "fault plans") {
		t.Errorf("replicate with faults: %v", err)
	}
	res, err := f.RunDeterministic(context.Background(), Job{Tasks: FixedTasks(200, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted+res.TasksLeft+res.TasksLost != 200 {
		t.Fatalf("batch conservation broken: %+v", res)
	}
	// KillRound is a service concept; the batch engine rejects it.
	kill := base
	kill.Faults = FaultPlan{KillRound: 5}
	fk, err := New(kill)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fk.RunDeterministic(context.Background(), Job{Tasks: FixedTasks(10, 5)}); err == nil || !strings.Contains(err.Error(), "kill") {
		t.Errorf("batch kill round: %v", err)
	}
}

// TestRecoverServiceGridMismatch pins the header check: a log quantized on
// a different tick grid is refused, not misread.
func TestRecoverServiceGridMismatch(t *testing.T) {
	var wal bytes.Buffer
	cfg := faultedConfig(1, 2, &wal)
	if _, _, err := runFaulted(t, cfg); !errors.Is(err, ErrSchedulerKilled) {
		t.Fatal(err)
	}
	other := faultedConfig(1, 0, nil)
	other.Fleet.TicksPerSetup = 50
	if _, err := RecoverService(other, bytes.NewReader(wal.Bytes())); err == nil || !strings.Contains(err.Error(), "ticks per setup") {
		t.Fatalf("grid mismatch error %v", err)
	}
}
