package fleet

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"cyclesteal/trace"
)

// studyPartition runs the study's shards in `parts` disjoint subsets — in
// reverse subset order, shuffled within the cover by seed — and merges,
// exercising exactly what a distributed run does: different groupings,
// different arrival order, a JSON hop for every shard.
func studyPartition(t *testing.T, st *Study, parts int, shuffleSeed int64) Replication {
	t.Helper()
	var cover []ShardResult
	for p := parts - 1; p >= 0; p-- {
		var ids []int
		for s := p; s < StudyShards; s += parts {
			ids = append(ids, s)
		}
		res, err := st.RunShards(context.Background(), ids, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip every shard through JSON, the wire representation.
		for _, r := range res {
			raw, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			var back ShardResult
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatal(err)
			}
			if err := back.Validate(); err != nil {
				t.Fatalf("shard %d failed validation after JSON hop: %v", r.Shard, err)
			}
			cover = append(cover, back)
		}
	}
	rng := rand.New(rand.NewSource(shuffleSeed))
	rng.Shuffle(len(cover), func(i, j int) { cover[i], cover[j] = cover[j], cover[i] })
	rep, err := st.Merge(cover)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestStudyMergeBitIdentical is the acceptance pin: a study partitioned
// across shard subsets (any count, any order, through the JSON wire form)
// merges bit-identical to single-process Replicate — on the shared-job farm
// path, with station summaries, and on the private survey path.
func TestStudyMergeBitIdentical(t *testing.T) {
	configs := map[string]Config{
		"farm":     {Stations: 10, Setup: 5, Opportunities: 4, Shards: 2, Seed: 21},
		"stations": {Stations: 10, Setup: 5, Opportunities: 4, Shards: 2, Seed: 21, StationSummaries: true},
		"private":  {Stations: 8, Setup: 5, Opportunities: 4, Pool: Private, Seed: 13},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			job := facadeJob()
			want, err := f.Replicate(context.Background(), job, 90)
			if err != nil {
				t.Fatal(err)
			}
			st, err := f.Study(job, 90)
			if err != nil {
				t.Fatal(err)
			}
			for _, parts := range []int{1, 4} {
				got := studyPartition(t, st, parts, int64(parts))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("parts=%d merged study differs from Replicate:\n got %+v\nwant %+v", parts, got, want)
				}
			}
			// Two fleets from the same Config are interchangeable: results
			// computed under one merge under the other.
			f2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st2, err := f2.Study(job, 90)
			if err != nil {
				t.Fatal(err)
			}
			res, err := st.RunShards(context.Background(), st.AllShards(), nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := st2.Merge(res)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Error("cross-fleet merge differs from Replicate")
			}
		})
	}
}

func TestStudyShardTrialsAndColumns(t *testing.T) {
	f, err := New(Config{Stations: 6, Setup: 5, Opportunities: 3, Seed: 1, StationSummaries: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Study(facadeJob(), 150)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 0; s < StudyShards; s++ {
		total += st.ShardTrials(s)
	}
	if total != st.Trials() || st.Trials() != 150 {
		t.Fatalf("shard trials sum %d, study trials %d", total, st.Trials())
	}
	if st.ShardTrials(-1) != 0 || st.ShardTrials(StudyShards) != 0 {
		t.Error("out-of-range shards own trials")
	}
	if got := st.MetricColumns(); got <= 6 {
		t.Fatalf("station-summaries study has %d columns", got)
	}
	if len(st.AllShards()) != StudyShards {
		t.Fatal("AllShards incomplete")
	}
}

// TestStudyMirrorsReplicateRejections pins that the study constructor
// enforces Replicate's preconditions, so a distributed study can never run
// a spec the in-process API refuses.
func TestStudyMirrorsReplicateRejections(t *testing.T) {
	base := Config{Stations: 4, Setup: 5, Opportunities: 3, Seed: 1}
	f, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Study(facadeJob(), 0); err == nil {
		t.Error("trials=0 accepted")
	}
	rec := base
	rec.Record = trace.NewRecorder()
	if f, err = New(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Study(facadeJob(), 5); err == nil {
		t.Error("recording fleet accepted")
	}
	flt := base
	flt.Faults = FaultPlan{Crashes: []StationCrash{{Round: 1, Station: 1}}}
	if f, err = New(flt); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Study(facadeJob(), 5); err == nil {
		t.Error("faulted fleet accepted")
	}
}

// TestStudyMergeValidation pins the loud-failure side: covers that are
// incomplete, duplicated, mis-shaped, trial-miscounted, or structurally
// corrupt are rejected, never silently absorbed.
func TestStudyMergeValidation(t *testing.T) {
	f, err := New(Config{Stations: 4, Setup: 5, Opportunities: 3, Shards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Study(facadeJob(), 80)
	if err != nil {
		t.Fatal(err)
	}
	full, err := st.RunShards(context.Background(), st.AllShards(), nil)
	if err != nil {
		t.Fatal(err)
	}
	clone := func() []ShardResult {
		out := make([]ShardResult, len(full))
		copy(out, full)
		return out
	}
	cases := []struct {
		name   string
		break_ func([]ShardResult) []ShardResult
	}{
		{"missing shard", func(rs []ShardResult) []ShardResult { return rs[:len(rs)-1] }},
		{"duplicate shard", func(rs []ShardResult) []ShardResult { rs[0] = rs[1]; return rs }},
		{"shard out of range", func(rs []ShardResult) []ShardResult { rs[0].Shard = StudyShards; return rs }},
		{"column count mismatch", func(rs []ShardResult) []ShardResult {
			rs[0].Metrics = rs[0].Metrics[:len(rs[0].Metrics)-1]
			return rs
		}},
		{"trial count mismatch", func(rs []ShardResult) []ShardResult {
			m := append([]AccumState(nil), rs[0].Metrics...)
			m[0].N++
			if m[0].Sketch != nil {
				sk := *m[0].Sketch
				m[0].Sketch = &sk
				m[0].Sketch.N++
			}
			rs[0].Metrics = m
			return rs
		}},
		{"corrupt sketch weight", func(rs []ShardResult) []ShardResult {
			m := append([]AccumState(nil), rs[0].Metrics...)
			if m[0].Sketch == nil {
				t.Fatal("expected a sketch on metric 0")
			}
			sk := *m[0].Sketch
			sk.N++
			m[0].Sketch = &sk
			rs[0].Metrics = m
			return rs
		}},
	}
	for _, tc := range cases {
		if _, err := st.Merge(tc.break_(clone())); err == nil {
			t.Errorf("%s: merge accepted a broken cover", tc.name)
		}
	}
	if _, err := st.Merge(clone()); err != nil {
		t.Fatalf("pristine cover rejected: %v", err)
	}
}

// TestStudyRunShardsSubsetProgress pins the observer contract RunShards
// documents: progress totals are the subset's trials and a final snapshot
// always arrives — including on cancellation, which the coordinator's live
// study display depends on.
func TestStudyRunShardsSubsetProgress(t *testing.T) {
	f, err := New(Config{Stations: 4, Setup: 5, Opportunities: 3, Seed: 5, ProgressInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Study(facadeJob(), 100)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{0, 1, 2, 3}
	want := 0
	for _, s := range ids {
		want += st.ShardTrials(s)
	}
	var lastDone, lastTotal int
	if _, err := st.RunShards(context.Background(), ids, func(done, total int) {
		lastDone, lastTotal = done, total
	}); err != nil {
		t.Fatal(err)
	}
	if lastDone != want || lastTotal != want {
		t.Fatalf("final snapshot (%d, %d), want (%d, %d)", lastDone, lastTotal, want, want)
	}

	// Cancelled mid-run: a final snapshot still arrives, with done < total.
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	lastDone, lastTotal = -1, -1
	if _, err := st.RunShards(ctx, st.AllShards(), func(done, total int) {
		calls++
		lastDone, lastTotal = done, total
		if calls == 1 {
			cancel()
		}
	}); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if lastTotal != 100 || lastDone < 0 || lastDone > 100 {
		t.Fatalf("cancelled final snapshot (%d, %d)", lastDone, lastTotal)
	}
}
