package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// csvMagic is the first field of a CSV trace's header record.
const csvMagic = "cyclesteal-trace"

// jsonFormat is the "format" value of a JSONL trace's header line.
const jsonFormat = "cyclesteal-trace"

// maxInterruptsPerRow bounds the ';'-separated interrupt list a single CSV
// field may carry, so a malformed row cannot make the parser build an
// absurd slice. The allowance check in Validate is the real bound; this one
// only has to be generous enough to never reject a legitimate trace.
const maxInterruptsPerRow = 1 << 20

// WriteCSV encodes the trace as CSV: the magic header record, a column-name
// row, then one row per opportunity with ';'-separated interrupt offsets.
func WriteCSV(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := [][]string{
		{csvMagic, strconv.Itoa(FormatVersion), strconv.Itoa(t.TicksPerSetup)},
		{"station", "lifespan", "allowance", "interrupts"},
	}
	for _, rec := range header {
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	for i := range t.Opportunities {
		o := &t.Opportunities[i]
		parts := make([]string, len(o.Interrupts))
		for j, at := range o.Interrupts {
			parts[j] = strconv.FormatInt(at, 10)
		}
		row := []string{
			strconv.Itoa(o.Station),
			strconv.FormatInt(o.Lifespan, 10),
			strconv.Itoa(o.Allowance),
			strings.Join(parts, ";"),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace written by WriteCSV. Malformed input returns an
// error; it never panics.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // the header records have their own widths
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("trace: csv too short: need the magic and column headers")
	}
	head := records[0]
	if len(head) != 3 || head[0] != csvMagic {
		return nil, fmt.Errorf("trace: not a %s csv file", csvMagic)
	}
	version, err := strconv.Atoi(head[1])
	if err != nil || version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %q (want %d)", head[1], FormatVersion)
	}
	ticks, err := strconv.Atoi(head[2])
	if err != nil {
		return nil, fmt.Errorf("trace: header ticks per setup: %w", err)
	}
	t := &Trace{TicksPerSetup: ticks}
	for i, rec := range records[2:] { // records[1] is the column-name row
		row := i + 3 // 1-based line number for error messages
		if len(rec) != 4 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 4", row, len(rec))
		}
		o := Opportunity{}
		if o.Station, err = strconv.Atoi(rec[0]); err != nil {
			return nil, fmt.Errorf("trace: row %d station: %w", row, err)
		}
		if o.Lifespan, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: row %d lifespan: %w", row, err)
		}
		if o.Allowance, err = strconv.Atoi(rec[2]); err != nil {
			return nil, fmt.Errorf("trace: row %d allowance: %w", row, err)
		}
		if rec[3] != "" {
			parts := strings.Split(rec[3], ";")
			if len(parts) > maxInterruptsPerRow {
				return nil, fmt.Errorf("trace: row %d has %d interrupts", row, len(parts))
			}
			o.Interrupts = make([]int64, len(parts))
			for j, part := range parts {
				if o.Interrupts[j], err = strconv.ParseInt(part, 10, 64); err != nil {
					return nil, fmt.Errorf("trace: row %d interrupt %d: %w", row, j+1, err)
				}
			}
		}
		t.Opportunities = append(t.Opportunities, o)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// jsonHeader is the first line of a JSONL trace.
type jsonHeader struct {
	Format        string `json:"format"`
	Version       int    `json:"version"`
	TicksPerSetup int    `json:"ticks_per_setup"`
}

// jsonOpportunity is one JSONL opportunity line.
type jsonOpportunity struct {
	Station    int     `json:"station"`
	Lifespan   int64   `json:"lifespan"`
	Allowance  int     `json:"allowance"`
	Interrupts []int64 `json:"interrupts,omitempty"`
}

// WriteJSONL encodes the trace as JSON Lines: a header object, then one
// object per opportunity.
func WriteJSONL(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w) // Encode appends the newline JSONL needs
	if err := enc.Encode(jsonHeader{Format: jsonFormat, Version: FormatVersion, TicksPerSetup: t.TicksPerSetup}); err != nil {
		return err
	}
	for i := range t.Opportunities {
		o := &t.Opportunities[i]
		if err := enc.Encode(jsonOpportunity{
			Station: o.Station, Lifespan: o.Lifespan, Allowance: o.Allowance, Interrupts: o.Interrupts,
		}); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL decodes a trace written by WriteJSONL. Malformed input returns
// an error; it never panics.
func ReadJSONL(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	var head jsonHeader
	if err := dec.Decode(&head); err != nil {
		return nil, fmt.Errorf("trace: reading jsonl header: %w", err)
	}
	if head.Format != jsonFormat {
		return nil, fmt.Errorf("trace: not a %s jsonl file", jsonFormat)
	}
	if head.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (want %d)", head.Version, FormatVersion)
	}
	t := &Trace{TicksPerSetup: head.TicksPerSetup}
	for line := 2; ; line++ {
		var o jsonOpportunity
		if err := dec.Decode(&o); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		t.Opportunities = append(t.Opportunities, Opportunity{
			Station: o.Station, Lifespan: o.Lifespan, Allowance: o.Allowance, Interrupts: o.Interrupts,
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Read decodes a trace in either encoding, sniffing the first non-space
// byte: '{' means JSONL, anything else CSV.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return nil, fmt.Errorf("trace: empty input")
		}
		if b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r' {
			br.ReadByte()
			continue
		}
		if b[0] == '{' {
			return ReadJSONL(br)
		}
		return ReadCSV(br)
	}
}
