package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sample() *Trace {
	return New(100, []Opportunity{
		{Station: 0, Lifespan: 2412, Allowance: 2, Interrupts: []int64{401, 1180}},
		{Station: 0, Lifespan: 90, Allowance: 1},
		{Station: 2, Lifespan: 40000, Allowance: 3, Interrupts: []int64{40000}},
		{Station: 1, Lifespan: 1, Allowance: 0},
	})
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := []*Trace{
		New(0, nil), // no grid
		New(100, []Opportunity{{Station: -1, Lifespan: 5}}),
		New(100, []Opportunity{{Station: MaxStations, Lifespan: 5}}),
		New(100, []Opportunity{{Station: 0, Lifespan: 0}}),
		New(100, []Opportunity{{Station: 0, Lifespan: 5, Allowance: -1}}),
		New(100, []Opportunity{{Station: 0, Lifespan: 5, Allowance: 0, Interrupts: []int64{3}}}),
		New(100, []Opportunity{{Station: 0, Lifespan: 5, Allowance: 2, Interrupts: []int64{3, 3}}}),
		New(100, []Opportunity{{Station: 0, Lifespan: 5, Allowance: 2, Interrupts: []int64{6}}}),
		New(100, []Opportunity{{Station: 0, Lifespan: 5, Allowance: 2, Interrupts: []int64{0}}}),
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestShapeHelpers(t *testing.T) {
	tr := sample()
	if got := tr.Stations(); got != 3 {
		t.Errorf("Stations() = %d, want 3", got)
	}
	if got := tr.MaxOpportunities(); got != 2 {
		t.Errorf("MaxOpportunities() = %d, want 2", got)
	}
	s0, err := tr.Station(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s0) != 2 || s0[0].Lifespan != 2412 || s0[1].Lifespan != 90 {
		t.Errorf("station 0 opportunities wrong: %+v", s0)
	}
	if s9, err := tr.Station(9); err != nil || s9 != nil {
		t.Errorf("out-of-range station: %v, %v", s9, err)
	}
	empty := New(100, nil)
	if empty.Stations() != 0 || empty.MaxOpportunities() != 0 {
		t.Error("empty trace has stations")
	}
	invalid := New(0, nil)
	if _, err := invalid.Station(0); err == nil {
		t.Error("Station on an invalid trace did not surface the validation error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.TicksPerSetup != tr.TicksPerSetup || !reflect.DeepEqual(back.Opportunities, tr.Opportunities) {
		t.Fatalf("csv round trip mutated the trace:\n got %+v\nwant %+v", back.Opportunities, tr.Opportunities)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.TicksPerSetup != tr.TicksPerSetup || !reflect.DeepEqual(back.Opportunities, tr.Opportunities) {
		t.Fatalf("jsonl round trip mutated the trace:\n got %+v\nwant %+v", back.Opportunities, tr.Opportunities)
	}
}

func TestReadAutoDetect(t *testing.T) {
	tr := sample()
	for name, write := range map[string]func(*bytes.Buffer) error{
		"csv":   func(b *bytes.Buffer) error { return WriteCSV(b, tr) },
		"jsonl": func(b *bytes.Buffer) error { return WriteJSONL(b, tr) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		buf2 := bytes.NewBufferString("\n \t" + buf.String()) // leading whitespace must not confuse sniffing
		back, err := Read(buf2)
		if err != nil {
			t.Fatalf("%s autodetect: %v", name, err)
		}
		if !reflect.DeepEqual(back.Opportunities, tr.Opportunities) {
			t.Fatalf("%s autodetect mutated the trace", name)
		}
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no magic":       "station,lifespan\n1,2\n",
		"bad version":    "cyclesteal-trace,9,100\nstation,lifespan,allowance,interrupts\n",
		"bad ticks":      "cyclesteal-trace,1,zebra\nstation,lifespan,allowance,interrupts\n",
		"short row":      "cyclesteal-trace,1,100\nstation,lifespan,allowance,interrupts\n0,5\n",
		"bad station":    "cyclesteal-trace,1,100\nstation,lifespan,allowance,interrupts\nx,5,1,\n",
		"bad lifespan":   "cyclesteal-trace,1,100\nstation,lifespan,allowance,interrupts\n0,x,1,\n",
		"bad allowance":  "cyclesteal-trace,1,100\nstation,lifespan,allowance,interrupts\n0,5,x,\n",
		"bad interrupt":  "cyclesteal-trace,1,100\nstation,lifespan,allowance,interrupts\n0,5,1,x\n",
		"over allowance": "cyclesteal-trace,1,100\nstation,lifespan,allowance,interrupts\n0,5,0,3\n",
		"unsorted":       "cyclesteal-trace,1,100\nstation,lifespan,allowance,interrupts\n0,5,2,3;2\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"not jsonl":   "cyclesteal-trace,1,100\n",
		"bad format":  `{"format":"other","version":1,"ticks_per_setup":100}` + "\n",
		"bad version": `{"format":"cyclesteal-trace","version":7,"ticks_per_setup":100}` + "\n",
		"bad row":     `{"format":"cyclesteal-trace","version":1,"ticks_per_setup":100}` + "\n{\"station\":\n",
		"invalid opp": `{"format":"cyclesteal-trace","version":1,"ticks_per_setup":100}` + "\n" + `{"station":0,"lifespan":0,"allowance":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	if r.Trace() != nil {
		t.Fatal("fresh recorder holds a trace")
	}
	tr := sample()
	r.Publish(tr)
	if r.Trace() != tr {
		t.Fatal("recorder lost the published trace")
	}
	tr2 := New(50, nil)
	r.Publish(tr2)
	if r.Trace() != tr2 {
		t.Fatal("publish did not replace the earlier trace")
	}
}
