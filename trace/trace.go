// Package trace defines the public availability-trace format: a recorded
// sequence of cycle-stealing opportunities — who offered borrowed time, for
// how long, under what interrupt allowance, and when the owner actually
// returned. A trace is the volunteer-computing reality the paper's owner
// temperaments caricature: replaying a recorded machine-availability log
// through cyclesteal/fleet (fleet.Replay) evaluates any scheduling policy
// against the exact interruption process a real deployment produced, and
// recording a run (fleet.Config.Record) emits the trace that reproduces it
// bit-identically.
//
// # Format
//
// A trace is a header plus a flat list of opportunities. Times are integer
// ticks on the grid the recording run used; TicksPerSetup anchors the grid
// (one per-period setup cost c is that many ticks), so a file is
// self-describing and a replaying fleet can verify its grid matches.
// Interrupt times are absolute elapsed offsets within their opportunity —
// the owner returned after that much of the lifespan had elapsed — strictly
// increasing, each in [1, Lifespan], at most Allowance of them. Opportunities
// are grouped by station in the order the station played them.
//
// Two encodings carry the same model (see encode.go): CSV, whose first
// record is the magic header
//
//	cyclesteal-trace,1,<ticks_per_setup>
//
// followed by a column-name row and one row per opportunity
// (station,lifespan,allowance,interrupts — interrupts ';'-separated); and
// JSONL, whose first line is
//
//	{"format":"cyclesteal-trace","version":1,"ticks_per_setup":N}
//
// followed by one object per opportunity
// ({"station":S,"lifespan":U,"allowance":P,"interrupts":[...]}). Read
// auto-detects the encoding.
package trace

import (
	"fmt"
	"sync"
)

// FormatVersion is the trace format version this package reads and writes.
const FormatVersion = 1

// MaxStations bounds the station index a valid trace may name. It exists so
// a corrupt or hostile file cannot make a loader allocate per-station state
// for 2⁶² stations; a million workstations is beyond any NOW the engines
// target.
const MaxStations = 1 << 20

// Opportunity is one recorded cycle-stealing opportunity.
type Opportunity struct {
	// Station is the workstation that offered the opportunity (its fleet
	// station index).
	Station int
	// Lifespan is the usable lifespan U in ticks, ≥ 1.
	Lifespan int64
	// Allowance is the interrupt allowance p the contract granted, ≥ 0.
	Allowance int
	// Interrupts are the owner's actual returns: absolute elapsed offsets
	// within the opportunity, strictly increasing, each in [1, Lifespan].
	// At most Allowance entries. A return beyond the last scheduled period
	// still consumes lifespan, so it is recorded like any other.
	Interrupts []int64
}

// Trace is one recorded availability log.
type Trace struct {
	// TicksPerSetup is the grid resolution of the recording run: ticks per
	// setup cost. A fleet replaying the trace must be built on the same
	// resolution (fleet.Config.TicksPerSetup).
	TicksPerSetup int
	// Opportunities lists the recorded opportunities, grouped per station in
	// play order.
	Opportunities []Opportunity

	// compile's lazily-built per-station index. A Trace must not be mutated
	// after its first use by a replaying fleet.
	compileOnce sync.Once
	perStation  [][]Opportunity
	compileErr  error
}

// New builds a trace from its parts (the constructor trace converters use;
// recorded traces come from fleet.Config.Record).
func New(ticksPerSetup int, opps []Opportunity) *Trace {
	return &Trace{TicksPerSetup: ticksPerSetup, Opportunities: opps}
}

// Validate checks the whole trace for well-formed entries.
func (t *Trace) Validate() error {
	if t == nil {
		return fmt.Errorf("trace: nil trace")
	}
	if t.TicksPerSetup < 1 {
		return fmt.Errorf("trace: ticks per setup must be ≥ 1, got %d", t.TicksPerSetup)
	}
	for i := range t.Opportunities {
		if err := t.Opportunities[i].validate(); err != nil {
			return fmt.Errorf("trace: opportunity %d: %w", i, err)
		}
	}
	return nil
}

// validate checks one opportunity.
func (o *Opportunity) validate() error {
	if o.Station < 0 || o.Station >= MaxStations {
		return fmt.Errorf("station %d outside [0, %d)", o.Station, MaxStations)
	}
	if o.Lifespan < 1 {
		return fmt.Errorf("lifespan %d < 1", o.Lifespan)
	}
	if o.Allowance < 0 {
		return fmt.Errorf("allowance %d < 0", o.Allowance)
	}
	if len(o.Interrupts) > o.Allowance {
		return fmt.Errorf("%d interrupts exceed allowance %d", len(o.Interrupts), o.Allowance)
	}
	prev := int64(0)
	for _, at := range o.Interrupts {
		if at <= prev || at > o.Lifespan {
			return fmt.Errorf("interrupt offset %d not strictly increasing within (0, %d]", at, o.Lifespan)
		}
		prev = at
	}
	return nil
}

// Stations returns the number of stations the trace names: one more than the
// highest station index (0 for an empty trace).
func (t *Trace) Stations() int {
	n := 0
	for i := range t.Opportunities {
		if s := t.Opportunities[i].Station + 1; s > n {
			n = s
		}
	}
	return n
}

// MaxOpportunities returns the largest per-station opportunity count — the
// fleet.Config.Opportunities a replaying run needs to play every recorded
// contract.
func (t *Trace) MaxOpportunities() int {
	counts := make(map[int]int)
	max := 0
	for i := range t.Opportunities {
		counts[t.Opportunities[i].Station]++
		if c := counts[t.Opportunities[i].Station]; c > max {
			max = c
		}
	}
	return max
}

// Station returns station i's opportunities in play order. The trace is
// validated and indexed on first use; the returned slice aliases the trace
// and must not be mutated.
func (t *Trace) Station(i int) ([]Opportunity, error) {
	t.compileOnce.Do(t.compile)
	if t.compileErr != nil {
		return nil, t.compileErr
	}
	if i < 0 || i >= len(t.perStation) {
		return nil, nil
	}
	return t.perStation[i], nil
}

// compile validates once and builds the per-station index replay reads.
func (t *Trace) compile() {
	if err := t.Validate(); err != nil {
		t.compileErr = err
		return
	}
	t.perStation = make([][]Opportunity, t.Stations())
	for _, o := range t.Opportunities {
		t.perStation[o.Station] = append(t.perStation[o.Station], o)
	}
}

// Recorder captures the trace of one fleet run. Set one as
// fleet.Config.Record, run, then read Trace. A Recorder holds the most
// recently completed run's trace; do not share one recorder across
// concurrent runs.
type Recorder struct {
	mu sync.Mutex
	tr *Trace
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Publish stores a completed run's trace, replacing any earlier one. It is
// the engine-facing half of the recorder; library users normally only read
// Trace.
func (r *Recorder) Publish(tr *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tr = tr
}

// Trace returns the most recently recorded run's trace, or nil if no run
// has completed yet.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tr
}
