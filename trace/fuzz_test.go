package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// seedCorpus returns the well-formed encodings fuzzing mutates from, plus a
// few near-misses.
func seedCorpus(f *testing.F, write func(io.Writer, *Trace) error) []string {
	f.Helper()
	seeds := []string{"", "x", "{", "{}\n"}
	for _, tr := range []*Trace{
		New(1, nil),
		sample(),
		New(7, []Opportunity{{Station: 3, Lifespan: 1 << 40, Allowance: 2, Interrupts: []int64{5, 1 << 40}}}),
	} {
		var buf bytes.Buffer
		if err := write(&buf, tr); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.String())
	}
	return seeds
}

// roundTrip asserts the parser's contract on arbitrary input: it either
// errors or returns a trace that validates and survives re-encoding.
func roundTrip(t *testing.T, tr *Trace,
	write func(io.Writer, *Trace) error, read func(string) (*Trace, error)) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("parser accepted an invalid trace: %v", err)
	}
	var buf bytes.Buffer
	if err := write(&buf, tr); err != nil {
		t.Fatalf("re-encoding an accepted trace failed: %v", err)
	}
	back, err := read(buf.String())
	if err != nil {
		t.Fatalf("re-parsing our own encoding failed: %v", err)
	}
	if back.TicksPerSetup != tr.TicksPerSetup || len(back.Opportunities) != len(tr.Opportunities) {
		t.Fatalf("re-encode changed shape: %d/%d opportunities", len(back.Opportunities), len(tr.Opportunities))
	}
}

func FuzzReadCSV(f *testing.F) {
	for _, s := range seedCorpus(f, WriteCSV) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return // malformed input must error, and it did — never panic
		}
		roundTrip(t, tr, WriteCSV, func(s string) (*Trace, error) { return ReadCSV(strings.NewReader(s)) })
	})
}

func FuzzReadJSONL(f *testing.F) {
	for _, s := range seedCorpus(f, WriteJSONL) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadJSONL(strings.NewReader(in))
		if err != nil {
			return
		}
		roundTrip(t, tr, WriteJSONL, func(s string) (*Trace, error) { return ReadJSONL(strings.NewReader(s)) })
	})
}

func FuzzRead(f *testing.F) {
	for _, s := range seedCorpus(f, WriteCSV) {
		f.Add(s)
	}
	for _, s := range seedCorpus(f, WriteJSONL) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("autodetect accepted an invalid trace: %v", err)
		}
	})
}
