package cyclesteal

import (
	"math"
	"math/rand"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/task"
)

// Result reports one simulated opportunity in the caller's time units.
type Result struct {
	Work           float64 // fluid work banked (period length ⊖ setup, completed periods)
	TaskWork       float64 // total duration of completed tasks (task runs only)
	TasksCompleted int
	TasksRemaining int
	Episodes       int
	Interrupts     int
	SetupTime      float64 // lifespan spent on communication setups
	KilledTime     float64 // lifespan destroyed by interrupts
	IdleTime       float64 // lifespan never used
}

// SimOptions configures Simulate.
type SimOptions struct {
	// TaskDurations, when non-empty, attaches a bag of indivisible
	// data-parallel tasks (durations in the caller's time units); completed
	// work is then also reported task-granular.
	TaskDurations []float64
}

// Simulate plays one opportunity of this engine's shape with the given
// schedule and adversary.
func (e *Engine) Simulate(s Scheduler, adv Adversary, opts SimOptions) (Result, error) {
	cfg := sim.Config{}
	var bag *task.Bag
	if len(opts.TaskDurations) > 0 {
		tasks := make([]task.Task, len(opts.TaskDurations))
		for i, d := range opts.TaskDurations {
			ticks := quant.Tick(math.Round(d / e.opp.Setup * float64(e.ticksC)))
			if ticks < 1 {
				ticks = 1
			}
			tasks[i] = task.Task{ID: i, Duration: ticks}
		}
		bag = task.NewBag(tasks)
		cfg.Bag = bag
	}
	res, err := sim.Run(s, adv, sim.Opportunity{U: e.u, P: e.p, C: e.ticksC}, cfg)
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Work:           e.Units(res.Work),
		TaskWork:       e.Units(res.TaskWork),
		TasksCompleted: res.TasksCompleted,
		Episodes:       res.Episodes,
		Interrupts:     res.Interrupts,
		SetupTime:      e.Units(res.SetupTicks),
		KilledTime:     e.Units(res.KilledTicks),
		IdleTime:       e.Units(res.IdleTicks),
	}
	if bag != nil {
		out.TasksRemaining = bag.Remaining()
	}
	return out, nil
}

// --- adversary constructors -----------------------------------------------------

// NoAdversary returns the benign owner who never interrupts.
func (e *Engine) NoAdversary() Adversary { return adversary.None{} }

// LastPeriodAdversary returns the owner who unplugs at the last instant of
// whatever is running — the worst case for a single long period.
func (e *Engine) LastPeriodAdversary() Adversary { return adversary.LastPeriod{} }

// GreedyAdversary returns the equalization-damage heuristic owner (exactly
// optimal at p = 1 against single-long-period continuations).
func (e *Engine) GreedyAdversary() Adversary {
	return adversary.GreedyEqualization{C: e.ticksC}
}

// PoissonAdversary returns an owner who comes back after an exponentially
// distributed absence with the given mean (caller's time units).
func (e *Engine) PoissonAdversary(meanReturn float64, seed int64) Adversary {
	return &adversary.Poisson{
		Rng:  rand.New(rand.NewSource(seed)),
		Mean: meanReturn / e.opp.Setup * float64(e.ticksC),
	}
}

// RandomAdversary returns an owner who interrupts each episode with the
// given probability at a uniform moment.
func (e *Engine) RandomAdversary(prob float64, seed int64) Adversary {
	return &adversary.Random{Rng: rand.New(rand.NewSource(seed)), Prob: prob}
}

// PeriodicAdversary returns an owner on a fixed routine, reclaiming the
// machine every `every` time units.
func (e *Engine) PeriodicAdversary(every float64) Adversary {
	t := quant.Tick(math.Round(every / e.opp.Setup * float64(e.ticksC)))
	if t < 1 {
		t = 1
	}
	return adversary.Periodic{U: e.u, Every: t}
}
