package distrib

import (
	"context"
	"fmt"
	"io"

	"cyclesteal/fleet"
)

// Serve runs the worker side of the wire conversation over r/w — stdin and
// stdout for a subprocess worker (cstealsweep hides this behind a flag), or
// in-process pipes via InProcess. It greets, receives the study spec,
// builds its own fleet from it, and then answers assign frames until the
// coordinator closes the connection (a clean shutdown, returning nil) or
// ctx is cancelled.
//
// A failure to run an assignment is reported to the coordinator as an
// error frame and also returned; the coordinator decides whether to re-deal
// the shards elsewhere. Serve never panics on malformed input — every frame
// passes the strict decoder first.
func Serve(ctx context.Context, r io.Reader, w io.Writer) error {
	s := newStream(r, w)
	if err := s.send(Frame{Kind: FrameHello, Format: wireFormat, Version: wireVersion}); err != nil {
		return fmt.Errorf("distrib: worker hello: %w", err)
	}
	first, err := s.recv()
	if err != nil {
		return fmt.Errorf("distrib: worker awaiting study: %w", err)
	}
	if first.Kind != FrameStudy {
		return fmt.Errorf("distrib: worker expected a study frame, got %q", first.Kind)
	}
	study, err := first.Spec.Study()
	if err != nil {
		// The spec passed wire validation but not fleet validation; tell
		// the coordinator why instead of dying silently.
		s.send(Frame{Kind: FrameError, Error: err.Error()})
		return err
	}
	for {
		f, err := s.recv()
		if err == io.EOF {
			return nil // coordinator closed the conversation: done
		}
		if err != nil {
			return fmt.Errorf("distrib: worker reading assignment: %w", err)
		}
		if f.Kind != FrameAssign {
			return fmt.Errorf("distrib: worker expected an assign frame, got %q", f.Kind)
		}
		if err := serveAssignment(ctx, s, study, f.Shards); err != nil {
			s.send(Frame{Kind: FrameError, Error: err.Error()})
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
	}
}

// serveAssignment runs one shard assignment and streams the results:
// progress frames while trials run (the mc observer cadence), then one
// shard frame per completed shard, then the done acknowledgment.
func serveAssignment(ctx context.Context, s *stream, study *fleet.Study, shards []int) error {
	results, err := study.RunShards(ctx, shards, func(done, total int) {
		s.send(Frame{Kind: FrameProgress, Done: done, Total: total})
	})
	if err != nil {
		return err
	}
	for i := range results {
		if err := s.send(Frame{Kind: FrameShard, Shard: &results[i]}); err != nil {
			return err
		}
	}
	return s.send(Frame{Kind: FrameDone, Shards: shards})
}
