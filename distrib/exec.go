package distrib

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// InProcess is the zero-dependency Starter: each connection is a Serve
// goroutine in this process, wired up with pipes. It exercises the entire
// wire conversation — every byte is encoded and strictly decoded — without
// spawning a process, which is what the tests and single-machine fan-out
// use.
func InProcess() Starter {
	return func(ctx context.Context) (io.ReadWriteCloser, error) {
		inR, inW := io.Pipe()   // coordinator → worker
		outR, outW := io.Pipe() // worker → coordinator
		go func() {
			Serve(ctx, inR, outW)
			// Closing both ends unblocks the coordinator whether Serve
			// ended cleanly (EOF) or died mid-conversation.
			outW.Close()
			inR.Close()
		}()
		return &pipeConn{r: outR, w: inW}, nil
	}
}

type pipeConn struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func (p *pipeConn) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p *pipeConn) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p *pipeConn) Close() error {
	p.w.Close() // the worker's stdin EOF: exit cleanly
	p.r.Close()
	return nil
}

// ExecStarter launches one worker process per connection: build returns
// the command (typically the host binary re-invoked in its hidden worker
// mode, speaking the wire conversation on stdin/stdout; stderr passes
// through unless the command says otherwise). Closing the connection
// closes the worker's stdin — the clean-exit signal — and reaps the
// process, killing it if it lingers past a short grace period (a worker
// mid-computation only notices EOF at its next frame).
func ExecStarter(build func() *exec.Cmd) Starter {
	return func(ctx context.Context) (io.ReadWriteCloser, error) {
		cmd := build()
		if cmd.Stderr == nil {
			cmd.Stderr = os.Stderr
		}
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, fmt.Errorf("distrib: worker stdin: %w", err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, fmt.Errorf("distrib: worker stdout: %w", err)
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("distrib: starting worker process: %w", err)
		}
		return &procConn{cmd: cmd, in: stdin, out: stdout}, nil
	}
}

type procConn struct {
	cmd  *exec.Cmd
	in   io.WriteCloser
	out  io.ReadCloser
	once sync.Once
}

func (p *procConn) Read(b []byte) (int, error)  { return p.out.Read(b) }
func (p *procConn) Write(b []byte) (int, error) { return p.in.Write(b) }

func (p *procConn) Close() error {
	p.once.Do(func() {
		p.in.Close()
		exited := make(chan struct{})
		go func() {
			p.cmd.Wait()
			close(exited)
		}()
		select {
		case <-exited:
		case <-time.After(2 * time.Second):
			p.cmd.Process.Kill()
			<-exited
		}
	})
	return nil
}
