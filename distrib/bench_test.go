package distrib

import (
	"context"
	"io"
	"testing"

	"cyclesteal/fleet"
)

// benchStudy builds one study and its full shard cover once per benchmark.
func benchStudy(b *testing.B) (*fleet.Study, []fleet.ShardResult) {
	b.Helper()
	spec := Spec{Stations: 4, Setup: 5, Opportunities: 2, Seed: 3, Trials: 128,
		Tasks: fleet.FixedTasks(60, 12)}
	study, err := spec.Study()
	if err != nil {
		b.Fatal(err)
	}
	results, err := study.RunShards(context.Background(), study.AllShards(), nil)
	if err != nil {
		b.Fatal(err)
	}
	return study, results
}

// BenchmarkDistribMerge measures the coordinator's merge layer: rebuilding
// every shard's accumulators from wire state and folding the cover into a
// Replication.
func BenchmarkDistribMerge(b *testing.B) {
	study, results := benchStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Merge(results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardEncode measures one shard result's trip onto the wire —
// the per-shard marginal cost of distributing a study.
func BenchmarkShardEncode(b *testing.B) {
	_, results := benchStudy(b)
	f := Frame{Kind: FrameShard, Shard: &results[0]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodeFrame(io.Discard, f); err != nil {
			b.Fatal(err)
		}
	}
}
