// Package distrib shards a replication study across worker processes and
// merges the streamed results bit-identical to a single-process
// fleet.Replicate.
//
// The unit of distribution is the fleet.Study shard: trial i runs on the
// deterministic stream for Seed+i and belongs to shard i mod
// fleet.StudyShards, so a shard's accumulators are a pure function of the
// study spec — the same bits wherever they are computed. A Coordinator
// deals shard ranges to workers, re-deals the ranges of workers that die
// (capped retries, then a loud error), and folds the returned shard states
// through fleet.Study.Merge, which re-validates every structural invariant
// a wire hop could corrupt. Workers are ordinary processes running Serve
// over stdin/stdout (cstealsweep hides one behind a flag), or in-process
// goroutines via InProcess for tests and single-machine fan-out.
//
// Everything on the wire is versioned JSONL — see the wire format notes on
// Frame — decoded strictly in the style of the trace and WAL formats:
// unknown fields, trailing data, out-of-range values and covers that do
// not partition the study are errors, never guesses.
package distrib

import (
	"fmt"

	"cyclesteal/fleet"
)

// OwnerSpec is the wire form of one owner temperament: a named base shape
// plus an optional named wrapper. It covers the fleet owners whose behavior
// is a pure function of scalar parameters — the ones a study spec can
// reproduce in another process. Stateful owners (trace replay) and
// code-carrying owners (Custom, Scripted, SampledWorst) are not
// wire-expressible; fleet.Replicate rejects the stateful ones anyway.
type OwnerSpec struct {
	// Kind names the base temperament: "office", "laptop", "overnight" or
	// "fixed".
	Kind string `json:"kind"`
	// Param is the base temperament's scalar, in caller time units: mean
	// idle for office and laptop, window for overnight, lifespan for fixed.
	// 0 means the temperament's documented default.
	Param float64 `json:"param,omitempty"`
	// Interrupts is the per-contract allowance for kinds that take one
	// (office, fixed); 0 defers to the spec default and then the standard 2.
	Interrupts int `json:"interrupts,omitempty"`
	// Wrap optionally names an interrupt-behavior wrapper: "malicious",
	// "benign", "minimax", "poisson" or "stochastic". Empty means the bare
	// base temperament.
	Wrap string `json:"wrap,omitempty"`
	// WrapParam is the wrapper's scalar: the poisson mean absence (caller
	// units; 0 means half the contract lifespan) or the stochastic
	// per-episode interrupt probability. Other wrappers ignore it.
	WrapParam float64 `json:"wrap_param,omitempty"`
}

// Owner rebuilds the fleet owner the spec names.
func (o OwnerSpec) Owner() (fleet.Owner, error) {
	var base fleet.Owner
	switch o.Kind {
	case "office":
		base = fleet.Office{MeanIdle: o.Param, Interrupts: o.Interrupts}
	case "laptop":
		base = fleet.Laptop{MeanIdle: o.Param}
	case "overnight":
		base = fleet.Overnight{Window: o.Param}
	case "fixed":
		base = fleet.Fixed{Lifespan: o.Param, Interrupts: o.Interrupts}
	default:
		return nil, fmt.Errorf("distrib: unknown owner kind %q (want office, laptop, overnight or fixed)", o.Kind)
	}
	switch o.Wrap {
	case "":
		return base, nil
	case "malicious":
		return fleet.Malicious{Base: base}, nil
	case "benign":
		return fleet.Benign{Base: base}, nil
	case "minimax":
		return fleet.Minimax{Base: base}, nil
	case "poisson":
		return fleet.Poisson{Base: base, Mean: o.WrapParam}, nil
	case "stochastic":
		return fleet.Stochastic{Base: base, Prob: o.WrapParam}, nil
	default:
		return nil, fmt.Errorf("distrib: unknown owner wrap %q (want malicious, benign, minimax, poisson or stochastic)", o.Wrap)
	}
}

// OwnerSpecFor converts a fleet owner into its wire form, or reports that
// the owner is not wire-expressible: the spec grammar covers the four
// named base temperaments and one layer of named wrapper, nothing deeper.
func OwnerSpecFor(o fleet.Owner) (OwnerSpec, error) {
	wrap := func(name string, base fleet.Owner, param float64) (OwnerSpec, error) {
		s, err := OwnerSpecFor(base)
		if err != nil {
			return OwnerSpec{}, err
		}
		if s.Wrap != "" {
			return OwnerSpec{}, fmt.Errorf("distrib: owner %T cannot nest wrappers on the wire", o)
		}
		s.Wrap, s.WrapParam = name, param
		return s, nil
	}
	switch v := o.(type) {
	case fleet.Office:
		return OwnerSpec{Kind: "office", Param: v.MeanIdle, Interrupts: v.Interrupts}, nil
	case fleet.Laptop:
		return OwnerSpec{Kind: "laptop", Param: v.MeanIdle}, nil
	case fleet.Overnight:
		return OwnerSpec{Kind: "overnight", Param: v.Window}, nil
	case fleet.Fixed:
		return OwnerSpec{Kind: "fixed", Param: v.Lifespan, Interrupts: v.Interrupts}, nil
	case fleet.Malicious:
		return wrap("malicious", v.Base, 0)
	case fleet.Benign:
		return wrap("benign", v.Base, 0)
	case fleet.Minimax:
		return wrap("minimax", v.Base, 0)
	case fleet.Poisson:
		return wrap("poisson", v.Base, v.Mean)
	case fleet.Stochastic:
		return wrap("stochastic", v.Base, v.Prob)
	default:
		return OwnerSpec{}, fmt.Errorf("distrib: owner %T is not wire-expressible (only the named temperaments and single wrappers travel)", o)
	}
}

// Spec is the complete wire description of a replication study: the fleet
// configuration in the caller's continuous units, the job, and the trial
// count. Two processes building fleets from the same Spec produce
// interchangeable studies — that is the bit-identity contract distribution
// rests on. Per-process knobs that never affect results (worker pools,
// progress observers) deliberately do not travel.
type Spec struct {
	// Stations, Setup, Interrupts, Opportunities, Seed and TicksPerSetup
	// mirror the fleet.Config fields of the same names.
	Stations      int     `json:"stations"`
	Setup         float64 `json:"setup"`
	Interrupts    int     `json:"interrupts,omitempty"`
	Opportunities int     `json:"opportunities,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	TicksPerSetup int     `json:"ticks_per_setup,omitempty"`
	// Owners assigns station temperaments round-robin; empty means the
	// standard heterogeneous mix.
	Owners []OwnerSpec `json:"owners,omitempty"`
	// Policy and PolicyChunk name the period-sizing schedule; empty Policy
	// means the adaptive equalization default.
	Policy      string  `json:"policy,omitempty"`
	PolicyChunk float64 `json:"policy_chunk,omitempty"`
	// Pool names the task-pool layout: "sharded" (default), "shared" or
	// "private".
	Pool string `json:"pool,omitempty"`
	// Shards, Clusters and StealLatency mirror the fleet.Config topology
	// fields.
	Shards       int     `json:"pool_shards,omitempty"`
	Clusters     int     `json:"clusters,omitempty"`
	StealLatency float64 `json:"steal_latency,omitempty"`
	// Checkpoint* mirror the fleet.Config checkpointing fields.
	Checkpoint            float64 `json:"checkpoint,omitempty"`
	CheckpointAdaptive    bool    `json:"checkpoint_adaptive,omitempty"`
	CheckpointSaveCost    float64 `json:"checkpoint_save_cost,omitempty"`
	CheckpointRestartCost float64 `json:"checkpoint_restart_cost,omitempty"`
	// StationSummaries asks for per-station lifespan summaries (widening
	// every shard's metric vector, so it must agree fleet-wide).
	StationSummaries bool `json:"station_summaries,omitempty"`
	// Tasks are the job's task durations in caller units; empty replicates
	// a pure fluid survey.
	Tasks []float64 `json:"tasks,omitempty"`
	// Trials is the study size. Required ≥ 1.
	Trials int `json:"trials"`
}

// NewSpec captures a fleet configuration, job and trial count as a wire
// spec, or reports why the configuration cannot travel (code-carrying
// owners, fault plans, recorders — anything that is not pure named data).
func NewSpec(cfg fleet.Config, job fleet.Job, trials int) (Spec, error) {
	s := Spec{
		Stations:              cfg.Stations,
		Setup:                 cfg.Setup,
		Interrupts:            cfg.Interrupts,
		Opportunities:         cfg.Opportunities,
		Seed:                  cfg.Seed,
		TicksPerSetup:         cfg.TicksPerSetup,
		Policy:                cfg.Policy.Name,
		PolicyChunk:           cfg.Policy.Chunk,
		Pool:                  cfg.Pool.String(),
		Shards:                cfg.Shards,
		Clusters:              cfg.Clusters,
		StealLatency:          cfg.StealLatency,
		Checkpoint:            cfg.Checkpoint,
		CheckpointAdaptive:    cfg.CheckpointAdaptive,
		CheckpointSaveCost:    cfg.CheckpointSaveCost,
		CheckpointRestartCost: cfg.CheckpointRestartCost,
		StationSummaries:      cfg.StationSummaries,
		Tasks:                 job.Tasks,
		Trials:                trials,
	}
	if cfg.Record != nil {
		return Spec{}, fmt.Errorf("distrib: a recording fleet cannot travel (and Replicate rejects it)")
	}
	if cfg.Faults.Active() {
		return Spec{}, fmt.Errorf("distrib: a fault plan cannot travel (and Replicate rejects it)")
	}
	for _, o := range cfg.Owners {
		os, err := OwnerSpecFor(o)
		if err != nil {
			return Spec{}, err
		}
		s.Owners = append(s.Owners, os)
	}
	return s, nil
}

// config rebuilds the fleet configuration the spec describes.
func (s Spec) config() (fleet.Config, error) {
	cfg := fleet.Config{
		Stations:              s.Stations,
		Setup:                 s.Setup,
		Interrupts:            s.Interrupts,
		Opportunities:         s.Opportunities,
		Seed:                  s.Seed,
		TicksPerSetup:         s.TicksPerSetup,
		Policy:                fleet.Policy{Name: s.Policy, Chunk: s.PolicyChunk},
		Shards:                s.Shards,
		Clusters:              s.Clusters,
		StealLatency:          s.StealLatency,
		Checkpoint:            s.Checkpoint,
		CheckpointAdaptive:    s.CheckpointAdaptive,
		CheckpointSaveCost:    s.CheckpointSaveCost,
		CheckpointRestartCost: s.CheckpointRestartCost,
		StationSummaries:      s.StationSummaries,
	}
	switch s.Pool {
	case "", "sharded":
		cfg.Pool = fleet.Sharded
	case "shared":
		cfg.Pool = fleet.Shared
	case "private":
		cfg.Pool = fleet.Private
	default:
		return fleet.Config{}, fmt.Errorf("distrib: unknown pool %q (want sharded, shared or private)", s.Pool)
	}
	for _, os := range s.Owners {
		o, err := os.Owner()
		if err != nil {
			return fleet.Config{}, err
		}
		cfg.Owners = append(cfg.Owners, o)
	}
	return cfg, nil
}

// Study builds the spec's fleet and cuts its study — the call both the
// coordinator (to merge) and every worker (to run shards) make, so the two
// sides cannot disagree about what the study is. All fleet.New and
// fleet.Fleet.Study validation applies.
func (s Spec) Study() (*fleet.Study, error) {
	cfg, err := s.config()
	if err != nil {
		return nil, err
	}
	f, err := fleet.New(cfg)
	if err != nil {
		return nil, err
	}
	return f.Study(fleet.Job{Tasks: s.Tasks}, s.Trials)
}

// maxStations bounds the fleet size a wire spec may name. The cap exists
// for the decoders: Study allocates per station, and a strict decoder must
// reject absurd sizes loudly instead of attempting the allocation.
const maxStations = 1 << 20

// Validate cheaply checks the wire-level invariants: field ranges, known
// owner and pool names. It never allocates proportionally to the spec's
// sizes — that is what lets decoders validate untrusted input safely. The
// full semantic validation (grid quantization, topology coherence) happens
// in Study, which every consumer calls before running anything.
func (s Spec) Validate() error {
	if s.Stations < 1 || s.Stations > maxStations {
		return fmt.Errorf("distrib: stations must be in [1, %d], got %d", maxStations, s.Stations)
	}
	if !(s.Setup > 0) {
		return fmt.Errorf("distrib: setup cost must be > 0, got %g", s.Setup)
	}
	if s.Trials < 1 {
		return fmt.Errorf("distrib: trials must be ≥ 1, got %d", s.Trials)
	}
	if s.TicksPerSetup < 0 || s.Interrupts < 0 || s.Opportunities < 0 {
		return fmt.Errorf("distrib: negative grid, interrupt or opportunity count")
	}
	switch s.Pool {
	case "", "sharded", "shared", "private":
	default:
		return fmt.Errorf("distrib: unknown pool %q (want sharded, shared or private)", s.Pool)
	}
	for i, os := range s.Owners {
		if _, err := os.Owner(); err != nil {
			return fmt.Errorf("distrib: owner %d: %w", i, err)
		}
	}
	return nil
}
