package distrib

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"cyclesteal/fleet"
)

// The wire format, versioned like the trace and WAL formats: JSONL frames,
// one JSON object per line, every object carrying its kind in "frame".
// The conversation on one connection is
//
//	worker → coordinator   {"frame":"hello","format":"cyclesteal-distrib","version":1}
//	coordinator → worker   {"frame":"study","format":...,"version":1,"spec":{...}}
//	coordinator → worker   {"frame":"assign","shards":[0,7,...]}
//	worker → coordinator   {"frame":"progress","done":12,"total":40}   (repeated)
//	worker → coordinator   {"frame":"shard","shard":{"shard":0,"metrics":[...]}} (one per shard)
//	worker → coordinator   {"frame":"done","shards":[0,7,...]}
//	worker → coordinator   {"frame":"error","error":"..."}             (instead of shard/done)
//
// assign/answer rounds repeat until the coordinator closes the connection.
// Decoding is strict: unknown fields, trailing data, unknown kinds,
// out-of-range shard IDs and structurally invalid accumulator states are
// errors, never guesses. A version bump is required for any change to the
// frame shapes, the study shard count, or the trial→shard assignment rule.
const (
	wireFormat  = "cyclesteal-distrib"
	wireVersion = 1
)

// maxFrame caps one frame line. Shard frames carry full accumulator states
// — with station summaries a shard can run to megabytes — so the cap is
// generous; it exists to keep a corrupt stream from buffering without end.
const maxFrame = 1 << 28

// Frame kinds.
const (
	FrameHello    = "hello"
	FrameStudy    = "study"
	FrameAssign   = "assign"
	FrameProgress = "progress"
	FrameShard    = "shard"
	FrameDone     = "done"
	FrameError    = "error"
)

// Frame is the single wire envelope: Kind says which of the optional
// fields travel. See the package's wire-format notes for the conversation.
type Frame struct {
	// Kind is the frame kind, one of the Frame* constants.
	Kind string `json:"frame"`
	// Format and Version identify the protocol on hello and study frames.
	Format  string `json:"format,omitempty"`
	Version int    `json:"version,omitempty"`
	// Spec is the study description (study frames).
	Spec *Spec `json:"spec,omitempty"`
	// Shards lists shard IDs: the assignment (assign) or the completed
	// assignment being acknowledged (done).
	Shards []int `json:"shards,omitempty"`
	// Done and Total are trials completed and owed within the current
	// assignment (progress frames).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Shard is one completed shard's accumulator states (shard frames).
	Shard *fleet.ShardResult `json:"shard,omitempty"`
	// Error is the worker's failure report (error frames).
	Error string `json:"error,omitempty"`
}

// validate checks the kind-specific shape invariants.
func (f Frame) validate() error {
	switch f.Kind {
	case FrameHello, FrameStudy:
		if f.Format != wireFormat {
			return fmt.Errorf("distrib: format %q, want %q", f.Format, wireFormat)
		}
		if f.Version != wireVersion {
			return fmt.Errorf("distrib: version %d, want %d", f.Version, wireVersion)
		}
		if f.Kind == FrameStudy {
			if f.Spec == nil {
				return fmt.Errorf("distrib: study frame carries no spec")
			}
			return f.Spec.Validate()
		}
	case FrameAssign, FrameDone:
		if len(f.Shards) == 0 {
			return fmt.Errorf("distrib: %s frame names no shards", f.Kind)
		}
		seen := make(map[int]bool, len(f.Shards))
		for _, s := range f.Shards {
			if s < 0 || s >= fleet.StudyShards {
				return fmt.Errorf("distrib: shard %d out of range [0, %d)", s, fleet.StudyShards)
			}
			if seen[s] {
				return fmt.Errorf("distrib: shard %d repeats in %s frame", s, f.Kind)
			}
			seen[s] = true
		}
	case FrameProgress:
		if f.Done < 0 || f.Total < 0 || f.Done > f.Total {
			return fmt.Errorf("distrib: progress %d/%d out of order", f.Done, f.Total)
		}
	case FrameShard:
		if f.Shard == nil {
			return fmt.Errorf("distrib: shard frame carries no result")
		}
		return f.Shard.Validate()
	case FrameError:
		if f.Error == "" {
			return fmt.Errorf("distrib: error frame carries no message")
		}
	default:
		return fmt.Errorf("distrib: unknown frame kind %q", f.Kind)
	}
	return nil
}

// strictUnmarshal decodes one JSON object rejecting unknown fields and
// trailing data — a corrupt or foreign stream fails loudly, not quietly.
func strictUnmarshal(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after frame")
	}
	return nil
}

// ParseFrame decodes and validates one frame line. Any input is safe: bad
// bytes produce an error, never a panic, and validation never allocates
// proportionally to values named inside the frame.
func ParseFrame(line []byte) (Frame, error) {
	var f Frame
	if err := strictUnmarshal(line, &f); err != nil {
		return Frame{}, fmt.Errorf("distrib: %w", err)
	}
	if err := f.validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// ParseShardResult decodes and validates one shard-result object — the
// payload of a shard frame, exposed for tools that store shard states
// outside the conversation (and for the fuzzers).
func ParseShardResult(line []byte) (fleet.ShardResult, error) {
	var r fleet.ShardResult
	if err := strictUnmarshal(line, &r); err != nil {
		return fleet.ShardResult{}, fmt.Errorf("distrib: %w", err)
	}
	if err := r.Validate(); err != nil {
		return fleet.ShardResult{}, err
	}
	return r, nil
}

// EncodeFrame appends one frame line to w.
func EncodeFrame(w io.Writer, f Frame) error {
	if err := f.validate(); err != nil {
		return err
	}
	raw, err := json.Marshal(f)
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}

// stream frames one connection: sequential reads, mutex-serialized writes
// (a worker's progress callback and its shard sender may race).
type stream struct {
	r  *bufio.Scanner
	w  io.Writer
	mu sync.Mutex
}

func newStream(r io.Reader, w io.Writer) *stream {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxFrame)
	return &stream{r: sc, w: w}
}

// recv reads the next frame. io.EOF reports a cleanly closed peer.
func (s *stream) recv() (Frame, error) {
	if !s.r.Scan() {
		if err := s.r.Err(); err != nil {
			return Frame{}, err
		}
		return Frame{}, io.EOF
	}
	return ParseFrame(s.r.Bytes())
}

func (s *stream) send(f Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return EncodeFrame(s.w, f)
}
