package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"cyclesteal/fleet"
)

// fuzzSeedFrames produces one of every frame kind, with realistic
// payloads, as decoder corpus seeds.
func fuzzSeedFrames(t interface{ Fatal(...any) }) [][]byte {
	spec := Spec{Stations: 3, Setup: 5, Trials: 70, Owners: []OwnerSpec{{Kind: "office", Param: 300, Wrap: "poisson", WrapParam: 90}}}
	study, err := spec.Study()
	if err != nil {
		t.Fatal(err)
	}
	results, err := study.RunShards(context.Background(), []int{0, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := []Frame{
		{Kind: FrameHello, Format: wireFormat, Version: wireVersion},
		{Kind: FrameStudy, Format: wireFormat, Version: wireVersion, Spec: &spec},
		{Kind: FrameAssign, Shards: []int{0, 5, 63}},
		{Kind: FrameProgress, Done: 3, Total: 9},
		{Kind: FrameShard, Shard: &results[0]},
		{Kind: FrameDone, Shards: []int{0, 5}},
		{Kind: FrameError, Error: "boom"},
	}
	var out [][]byte
	for _, f := range frames {
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		out = append(out, bytes.TrimRight(buf.Bytes(), "\n"))
	}
	return out
}

// FuzzReadFrame pins the wire decoder's safety contract: arbitrary bytes
// never panic — they decode or error — and every accepted frame re-encodes
// and re-decodes to exactly itself (the canonical-form round trip a
// coordinator and worker rely on).
func FuzzReadFrame(f *testing.F) {
	for _, seed := range fuzzSeedFrames(f) {
		f.Add(seed)
	}
	f.Add([]byte(`{"frame":"assign","shards":[64]}`))
	f.Add([]byte(`{"frame":"hello","format":"wrong","version":1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"frame":"shard","shard":{"shard":0,"metrics":[{"n":-1}]}}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		fr, err := ParseFrame(line)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, fr); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		back, err := ParseFrame(bytes.TrimRight(buf.Bytes(), "\n"))
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !reflect.DeepEqual(fr, back) {
			t.Fatalf("frame round trip diverged:\n got %+v\nwant %+v", back, fr)
		}
	})
}

// FuzzReadShardResult pins the shard-state decoder the same way: no panic
// on any input, exact round trip for anything accepted — including the
// float64 payloads, which must cross the wire bit-for-bit.
func FuzzReadShardResult(f *testing.F) {
	spec := Spec{Stations: 2, Setup: 5, Trials: 80}
	study, err := spec.Study()
	if err != nil {
		f.Fatal(err)
	}
	results, err := study.RunShards(context.Background(), []int{0, 9}, nil)
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range results {
		raw, err := json.Marshal(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{"shard":0,"metrics":[]}`))
	f.Add([]byte(`{"shard":-1,"metrics":[]}`))
	f.Add([]byte(`{"shard":0,"metrics":[{"n":2,"mean":1,"m2":0.5,"min":0,"max":2,"sketch":{"k":9,"n":2}}]}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		r, err := ParseShardResult(line)
		if err != nil {
			return
		}
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("accepted shard result failed to re-encode: %v", err)
		}
		back, err := ParseShardResult(raw)
		if err != nil {
			t.Fatalf("re-encoded shard result rejected: %v", err)
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatalf("shard result round trip diverged:\n got %+v\nwant %+v", back, r)
		}
	})
}

// TestFuzzSeedsAccepted keeps the healthy corpus healthy: every seed the
// fuzzers start from that should parse does parse.
func TestFuzzSeedsAccepted(t *testing.T) {
	for i, seed := range fuzzSeedFrames(t) {
		if _, err := ParseFrame(seed); err != nil {
			t.Errorf("seed frame %d rejected: %v", i, err)
		}
	}
	if _, err := ParseShardResult([]byte(`{"shard":3,"metrics":[{"n":0,"mean":0,"m2":0,"min":0,"max":0}]}`)); err != nil {
		t.Errorf("minimal shard result rejected: %v", err)
	}
	if err := (fleet.ShardResult{Shard: 1}).Validate(); err != nil {
		t.Errorf("empty-metrics shard result invalid: %v", err)
	}
}
