package distrib

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"cyclesteal/fleet"
)

// Starter opens one worker connection: anything that speaks the wire
// conversation over a byte stream. Closing the connection tells the worker
// to exit. InProcess and ExecStarter cover the two standard transports;
// anything else (ssh, containers, a cluster scheduler) is a Starter away.
type Starter func(ctx context.Context) (io.ReadWriteCloser, error)

// Options tunes a Coordinator. None of the knobs affect the merged
// numbers — a study is bit-identical at any worker count, chunking, retry
// history or arrival order; these only shape wall-clock time and fault
// tolerance.
type Options struct {
	// Workers is the number of concurrent worker connections. 0 means 1.
	Workers int
	// Start opens worker connections. nil means InProcess(): worker
	// goroutines in this process, the zero-dependency default.
	Start Starter
	// ChunkShards is how many shards ride in one assignment. Smaller
	// chunks re-deal less work when a worker dies; larger ones amortize
	// handshakes. 0 means an even split that deals every worker about four
	// assignments.
	ChunkShards int
	// MaxRetries is how many times one chunk may be re-dealt after
	// failures before the study fails loudly. 0 means 2.
	MaxRetries int
	// WorkerTimeout is the maximum silence on a connection — no progress,
	// shard, or done frame — before the coordinator declares the worker
	// dead and re-deals its chunk. 0 disables the timeout (worker death
	// is still detected by connection close). The mc engine emits progress
	// about every 200ms while trials run, so timeouts well above that are
	// safe even for long shards.
	WorkerTimeout time.Duration
	// Progress, when non-nil, observes study-level progress: trials
	// finished across all workers (committed chunks plus live assignment
	// progress) out of the study total. A final snapshot always arrives
	// before Run returns — on success, failure and cancellation alike.
	Progress func(done, total int)
}

// Coordinator deals a study's shards to workers and merges their results.
// Build one with NewCoordinator; Run may be called once.
type Coordinator struct {
	spec  Spec
	opts  Options
	study *fleet.Study
}

// NewCoordinator validates the spec — including everything fleet.New and
// fleet.Fleet.Study enforce, so a bad study fails here, before any worker
// spawns — and prepares a coordinator.
func NewCoordinator(spec Spec, opts Options) (*Coordinator, error) {
	study, err := spec.Study()
	if err != nil {
		return nil, err
	}
	if opts.Workers < 0 || opts.ChunkShards < 0 || opts.MaxRetries < 0 || opts.WorkerTimeout < 0 {
		return nil, fmt.Errorf("distrib: negative option")
	}
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	if opts.Start == nil {
		opts.Start = InProcess()
	}
	if opts.ChunkShards == 0 {
		opts.ChunkShards = max(1, fleet.StudyShards/(4*opts.Workers))
	}
	if opts.ChunkShards > fleet.StudyShards {
		opts.ChunkShards = fleet.StudyShards
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 2
	}
	return &Coordinator{spec: spec, opts: opts, study: study}, nil
}

// Trials is the study's total trial count (the Progress total).
func (c *Coordinator) Trials() int { return c.study.Trials() }

// chunk is one assignment: a fixed slice of the shard space. Chunks are
// cut once and keep their identity across re-deals, so retry counts stick
// to the work, not the worker.
type chunk struct {
	idx int
	ids []int
}

// runState is the shared ledger of one Run: committed shard results, live
// per-slot progress, per-chunk retry counts, and the first fatal error.
type runState struct {
	mu         sync.Mutex
	total      int
	trialsOf   func(shard int) int
	committed  []fleet.ShardResult
	doneTrials int
	live       map[int]int
	retries    []int
	maxRetries int
	remaining  int
	allDone    chan struct{}
	err        error
	progressFn func(done, total int)
}

func (st *runState) emitLocked() {
	if st.progressFn == nil {
		return
	}
	done := st.doneTrials
	for _, d := range st.live {
		done += d
	}
	if done > st.total {
		done = st.total
	}
	st.progressFn(done, st.total)
}

// setLive updates one slot's in-assignment trial count.
func (st *runState) setLive(slot, done int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.live[slot] = done
	st.emitLocked()
}

// clearLive drops a slot's live contribution (its assignment ended, one
// way or the other).
func (st *runState) clearLive(slot int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.live, slot)
	st.emitLocked()
}

// commit folds one completed chunk into the ledger.
func (st *runState) commit(slot int, ck chunk, results map[int]fleet.ShardResult) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, id := range ck.ids {
		st.committed = append(st.committed, results[id])
		st.doneTrials += st.trialsOf(id)
	}
	delete(st.live, slot)
	st.remaining--
	if st.remaining == 0 {
		close(st.allDone)
	}
	st.emitLocked()
}

// fail counts one failed deal of ck. It reports whether the chunk may be
// re-dealt; when the retry budget is spent it records the fatal error
// instead.
func (st *runState) fail(ck chunk, cause error) (retry bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.retries[ck.idx]++
	if st.retries[ck.idx] <= st.maxRetries {
		return true
	}
	if st.err == nil {
		st.err = fmt.Errorf("distrib: shards %v failed %d times, giving up: %w", ck.ids, st.retries[ck.idx], cause)
	}
	return false
}

// Run executes the study: deals shard chunks to Workers concurrent worker
// connections, re-deals the chunks of workers that die or time out (up to
// MaxRetries per chunk, then a loud error naming the shards), and merges
// the complete cover through fleet.Study.Merge — bit-identical to a
// single-process fleet.Replicate of the same spec, at any worker count and
// any arrival order. Cancelling ctx stops the study: workers are told to
// exit (their connections close), a final progress snapshot is emitted,
// and ctx.Err() returns.
func (c *Coordinator) Run(ctx context.Context) (fleet.Replication, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	chunks := cutChunks(c.study.AllShards(), c.opts.ChunkShards)
	st := &runState{
		total:      c.study.Trials(),
		trialsOf:   c.study.ShardTrials,
		live:       make(map[int]int),
		retries:    make([]int, len(chunks)),
		maxRetries: c.opts.MaxRetries,
		remaining:  len(chunks),
		allDone:    make(chan struct{}),
		progressFn: c.opts.Progress,
	}
	queue := make(chan chunk, len(chunks))
	for _, ck := range chunks {
		queue <- ck
	}

	var wg sync.WaitGroup
	for slot := 0; slot < c.opts.Workers; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			c.runSlot(runCtx, cancel, slot, queue, st)
		}(slot)
	}
	wg.Wait()

	st.mu.Lock()
	st.live = map[int]int{}
	st.emitLocked() // the final snapshot, on every outcome
	err := st.err
	results := st.committed
	st.mu.Unlock()

	if err != nil {
		return fleet.Replication{}, err
	}
	if ctx.Err() != nil {
		return fleet.Replication{}, ctx.Err()
	}
	return c.study.Merge(results)
}

// runSlot is one worker slot's loop: keep a connection alive, deal chunks
// from the queue, re-deal on failure, stop when the study is done, failed
// or cancelled.
func (c *Coordinator) runSlot(ctx context.Context, cancel context.CancelFunc, slot int, queue chan chunk, st *runState) {
	var cn *conn
	defer func() {
		if cn != nil {
			cn.close()
		}
	}()
	for {
		select {
		case <-ctx.Done():
			return
		case <-st.allDone:
			return
		case ck := <-queue:
			err := c.runChunk(ctx, slot, &cn, ck, st)
			st.clearLive(slot)
			if err == nil {
				continue
			}
			if ctx.Err() != nil {
				return // cancellation, not a worker failure
			}
			if !st.fail(ck, err) {
				cancel()
				return
			}
			queue <- ck
		}
	}
}

// runChunk deals one chunk over the slot's connection (dialing and
// handshaking first if needed) and waits for the worker's answer. On any
// failure the connection is dropped — the next chunk dials fresh.
func (c *Coordinator) runChunk(ctx context.Context, slot int, cnp **conn, ck chunk, st *runState) error {
	if *cnp == nil {
		cn, err := c.dial(ctx)
		if err != nil {
			return err
		}
		*cnp = cn
	}
	cn := *cnp
	drop := func() {
		cn.close()
		*cnp = nil
	}
	if err := cn.s.send(Frame{Kind: FrameAssign, Shards: ck.ids}); err != nil {
		drop()
		return fmt.Errorf("distrib: assigning shards: %w", err)
	}
	want := make(map[int]bool, len(ck.ids))
	for _, id := range ck.ids {
		want[id] = true
	}
	got := make(map[int]fleet.ShardResult, len(ck.ids))
	var timeC <-chan time.Time
	var timer *time.Timer
	if c.opts.WorkerTimeout > 0 {
		timer = time.NewTimer(c.opts.WorkerTimeout)
		defer timer.Stop()
		timeC = timer.C
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timeC:
			drop()
			return fmt.Errorf("distrib: worker silent for %v, presumed dead", c.opts.WorkerTimeout)
		case fe, ok := <-cn.frames:
			if !ok || fe.err != nil {
				drop()
				if !ok || fe.err == io.EOF {
					return fmt.Errorf("distrib: worker connection closed mid-assignment")
				}
				return fe.err
			}
			if timer != nil {
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(c.opts.WorkerTimeout)
			}
			switch fe.f.Kind {
			case FrameProgress:
				st.setLive(slot, fe.f.Done)
			case FrameShard:
				id := fe.f.Shard.Shard
				if !want[id] {
					drop()
					return fmt.Errorf("distrib: worker returned unassigned shard %d", id)
				}
				if _, dup := got[id]; dup {
					drop()
					return fmt.Errorf("distrib: worker returned shard %d twice", id)
				}
				got[id] = *fe.f.Shard
			case FrameDone:
				if len(got) != len(ck.ids) {
					drop()
					return fmt.Errorf("distrib: worker acknowledged %d shards but sent %d", len(ck.ids), len(got))
				}
				st.commit(slot, ck, got)
				return nil
			case FrameError:
				drop()
				return fmt.Errorf("distrib: worker failed: %s", fe.f.Error)
			default:
				drop()
				return fmt.Errorf("distrib: unexpected %q frame mid-assignment", fe.f.Kind)
			}
		}
	}
}

// dial opens a connection, collects the worker's hello and sends the study
// spec.
func (c *Coordinator) dial(ctx context.Context) (*conn, error) {
	rwc, err := c.opts.Start(ctx)
	if err != nil {
		return nil, fmt.Errorf("distrib: starting worker: %w", err)
	}
	cn := newConn(rwc)
	var timeC <-chan time.Time
	if c.opts.WorkerTimeout > 0 {
		t := time.NewTimer(c.opts.WorkerTimeout)
		defer t.Stop()
		timeC = t.C
	}
	select {
	case <-ctx.Done():
		cn.close()
		return nil, ctx.Err()
	case <-timeC:
		cn.close()
		return nil, fmt.Errorf("distrib: worker never said hello")
	case fe, ok := <-cn.frames:
		if !ok || fe.err != nil {
			cn.close()
			if !ok || fe.err == io.EOF {
				return nil, fmt.Errorf("distrib: worker exited before hello")
			}
			return nil, fe.err
		}
		if fe.f.Kind != FrameHello {
			cn.close()
			return nil, fmt.Errorf("distrib: expected hello, got %q", fe.f.Kind)
		}
	}
	spec := c.spec
	if err := cn.s.send(Frame{Kind: FrameStudy, Format: wireFormat, Version: wireVersion, Spec: &spec}); err != nil {
		cn.close()
		return nil, fmt.Errorf("distrib: sending study: %w", err)
	}
	return cn, nil
}

// frameErr is one reader event: a frame or the error that ended the
// connection.
type frameErr struct {
	f   Frame
	err error
}

// conn wraps one worker connection with a reader goroutine, so assignment
// waits can select over frames, timeouts and cancellation without leaking
// the reader: close() stops it whether it is blocked on the transport or
// on delivery.
type conn struct {
	rwc    io.ReadWriteCloser
	s      *stream
	frames chan frameErr
	stop   chan struct{}
	once   sync.Once
}

func newConn(rwc io.ReadWriteCloser) *conn {
	cn := &conn{
		rwc:    rwc,
		s:      newStream(rwc, rwc),
		frames: make(chan frameErr),
		stop:   make(chan struct{}),
	}
	go func() {
		defer close(cn.frames)
		for {
			f, err := cn.s.recv()
			select {
			case cn.frames <- frameErr{f, err}:
			case <-cn.stop:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return cn
}

func (cn *conn) close() {
	cn.once.Do(func() {
		close(cn.stop)
		cn.rwc.Close()
	})
}

// cutChunks slices the shard space into assignment-sized chunks.
func cutChunks(ids []int, size int) []chunk {
	var out []chunk
	for len(ids) > 0 {
		n := min(size, len(ids))
		out = append(out, chunk{idx: len(out), ids: ids[:n]})
		ids = ids[n:]
	}
	return out
}
