package distrib

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cyclesteal/fleet"
)

// TestMain doubles as the worker executable: re-invoked with the worker
// env var set, the test binary becomes a real distrib worker process on
// stdio — the multi-process tests dial it through ExecStarter. With the
// crash-ticket env var naming an existing file, the worker consumes the
// ticket and dies after its first shard frame, simulating one mid-stream
// worker death per ticket.
func TestMain(m *testing.M) {
	if os.Getenv("CSTEAL_DISTRIB_WORKER") == "1" {
		var out io.Writer = os.Stdout
		if ticket := os.Getenv("CSTEAL_DISTRIB_CRASH_TICKET"); ticket != "" {
			if os.Remove(ticket) == nil {
				out = &crashAfterShard{w: os.Stdout}
			}
		}
		if err := Serve(context.Background(), os.Stdin, out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// crashAfterShard kills the process right after the first shard frame hits
// the pipe: the coordinator receives one complete shard of the assignment
// and then silence — the harshest mid-assignment death.
type crashAfterShard struct {
	w      io.Writer
	shards int
}

func (c *crashAfterShard) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	if strings.Contains(string(b), `"frame":"shard"`) {
		c.shards++
		if c.shards == 1 {
			os.Exit(3)
		}
	}
	return n, err
}

func testSpec(t *testing.T, trials int) (Spec, fleet.Replication) {
	t.Helper()
	cfg := fleet.Config{
		Stations:      6,
		Setup:         5,
		Opportunities: 3,
		Seed:          11,
		Owners:        []fleet.Owner{fleet.Office{MeanIdle: 400}, fleet.Laptop{MeanIdle: 250}},
	}
	job := fleet.Job{Tasks: fleet.FixedTasks(150, 12)}
	spec, err := NewSpec(cfg, job, trials)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Replicate(context.Background(), job, trials)
	if err != nil {
		t.Fatal(err)
	}
	return spec, want
}

// leakCheck snapshots the goroutine count and verifies, with a bounded
// retry loop, that it returns to the baseline — coordinator shutdown must
// not strand readers, slots or in-process workers.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestCoordinatorBitIdentical is the tentpole acceptance pin: a
// distributed run merges bit-identical to single-process fleet.Replicate
// at worker counts 1 and 4.
func TestCoordinatorBitIdentical(t *testing.T) {
	defer leakCheck(t)()
	spec, want := testSpec(t, 90)
	for _, workers := range []int{1, 4} {
		c, err := NewCoordinator(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d distributed run differs from Replicate:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// dyingWorker speaks the worker protocol faithfully — hello, study,
// assign, progress — but closes the connection right after its first shard
// frame, a deterministic in-process stand-in for a worker killed
// mid-shard-stream.
func dyingWorkerStarter(t *testing.T, deaths *atomic.Int32) Starter {
	healthy := InProcess()
	return func(ctx context.Context) (io.ReadWriteCloser, error) {
		if deaths.Add(-1) < 0 {
			return healthy(ctx)
		}
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		go func() {
			defer inR.Close()
			defer outW.Close()
			s := newStream(inR, outW)
			if err := s.send(Frame{Kind: FrameHello, Format: wireFormat, Version: wireVersion}); err != nil {
				return
			}
			study, err := s.recv()
			if err != nil || study.Kind != FrameStudy {
				return
			}
			st, err := study.Spec.Study()
			if err != nil {
				return
			}
			assign, err := s.recv()
			if err != nil || assign.Kind != FrameAssign {
				return
			}
			results, err := st.RunShards(ctx, assign.Shards, nil)
			if err != nil || len(results) == 0 {
				return
			}
			s.send(Frame{Kind: FrameShard, Shard: &results[0]})
			// ...and dies: deferred closes sever the connection with the
			// assignment unacknowledged.
		}()
		return &pipeConn{r: outR, w: inW}, nil
	}
}

// TestCoordinatorReassignsDeadWorker pins the fault-tolerance contract:
// workers dying mid-shard-stream get their ranges re-dealt and the final
// summary is still bit-identical.
func TestCoordinatorReassignsDeadWorker(t *testing.T) {
	defer leakCheck(t)()
	spec, want := testSpec(t, 90)
	var deaths atomic.Int32
	deaths.Store(2)
	c, err := NewCoordinator(spec, Options{Workers: 3, Start: dyingWorkerStarter(t, &deaths)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("run with dying workers differs from Replicate:\n got %+v\nwant %+v", got, want)
	}
}

// TestCoordinatorRetriesExhausted pins the loud-failure side: a chunk that
// keeps dying eventually fails the study with an error naming the shards.
func TestCoordinatorRetriesExhausted(t *testing.T) {
	defer leakCheck(t)()
	spec, _ := testSpec(t, 40)
	var deaths atomic.Int32
	deaths.Store(1 << 20) // every connection dies
	c, err := NewCoordinator(spec, Options{Workers: 2, MaxRetries: 2, Start: dyingWorkerStarter(t, &deaths)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background())
	if err == nil {
		t.Fatal("study with permanently dying workers succeeded")
	}
	if !strings.Contains(err.Error(), "failed 3 times") || !strings.Contains(err.Error(), "shards") {
		t.Errorf("retry-exhausted error lacks the story: %v", err)
	}
}

// TestCoordinatorProgressRelay pins the study-level progress contract: the
// trials-completed observer reaches study scale through the coordinator,
// ends exactly on (total, total), and never leaves the [0, total] range.
func TestCoordinatorProgressRelay(t *testing.T) {
	defer leakCheck(t)()
	spec, _ := testSpec(t, 90)
	var snaps [][2]int
	c, err := NewCoordinator(spec, Options{Workers: 2, Progress: func(done, total int) {
		snaps = append(snaps, [2]int{done, total})
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress observed")
	}
	last := snaps[len(snaps)-1]
	if last != [2]int{90, 90} {
		t.Fatalf("final snapshot %v, want [90 90]", last)
	}
	for _, s := range snaps {
		if s[1] != 90 || s[0] < 0 || s[0] > 90 {
			t.Fatalf("snapshot %v out of range", s)
		}
	}
}

// TestCoordinatorCancelFinalSnapshot is the regression pin for
// cancellation: Run returns ctx's error and the observer still receives a
// final snapshot (the partial count, not a hang and not silence).
func TestCoordinatorCancelFinalSnapshot(t *testing.T) {
	defer leakCheck(t)()
	spec, _ := testSpec(t, 90)
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	var final atomic.Int64
	c, err := NewCoordinator(spec, Options{Workers: 2, Progress: func(done, total int) {
		calls.Add(1)
		final.Store(int64(done)<<32 | int64(total))
		cancel() // cancel as soon as the study starts moving
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
	if calls.Load() == 0 {
		t.Fatal("no final snapshot after cancellation")
	}
	if total := final.Load() & 0xffffffff; total != 90 {
		t.Fatalf("final snapshot total %d, want 90", total)
	}
}

// TestCoordinatorWorkerTimeout pins the per-worker timeout: a worker that
// goes silent mid-assignment is declared dead and its chunk re-dealt.
func TestCoordinatorWorkerTimeout(t *testing.T) {
	defer leakCheck(t)()
	spec, want := testSpec(t, 40)
	healthy := InProcess()
	var stalls atomic.Int32
	stalls.Store(1)
	stalled := make(chan struct{})
	starter := func(ctx context.Context) (io.ReadWriteCloser, error) {
		if stalls.Add(-1) < 0 {
			return healthy(ctx)
		}
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		go func() {
			defer inR.Close()
			defer outW.Close()
			s := newStream(inR, outW)
			s.send(Frame{Kind: FrameHello, Format: wireFormat, Version: wireVersion})
			for { // swallow study and assign, answer nothing, hold the line
				if _, err := s.recv(); err != nil {
					close(stalled)
					return
				}
			}
		}()
		return &pipeConn{r: outR, w: inW}, nil
	}
	c, err := NewCoordinator(spec, Options{Workers: 1, Start: starter, WorkerTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("run with a stalled worker differs from Replicate")
	}
	select {
	case <-stalled:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled worker never released")
	}
}

// TestSpecRoundTrip pins the spec wire form: NewSpec captures a config,
// JSON round-trips it exactly, and the rebuilt study replicates
// bit-identical to the original fleet.
func TestSpecRoundTrip(t *testing.T) {
	cfg := fleet.Config{
		Stations:      5,
		Setup:         4,
		Interrupts:    3,
		Opportunities: 2,
		Seed:          7,
		Policy:        fleet.Policy{Name: "fixedchunk", Chunk: 40},
		Owners: []fleet.Owner{
			fleet.Office{MeanIdle: 300, Interrupts: 1},
			fleet.Malicious{Base: fleet.Laptop{MeanIdle: 200}},
			fleet.Poisson{Base: fleet.Fixed{Lifespan: 500}, Mean: 90},
			fleet.Stochastic{Base: fleet.Overnight{Window: 350}, Prob: 0.25},
			fleet.Benign{Base: fleet.Office{MeanIdle: 260}},
		},
		StationSummaries: true,
	}
	job := fleet.Job{Tasks: fleet.ExponentialTasks(80, 15, 5)}
	spec, err := NewSpec(cfg, job, 40)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("spec JSON round trip diverged:\n got %+v\nwant %+v", back, spec)
	}
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Replicate(context.Background(), job, 40)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(back, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("round-tripped spec's distributed run differs from the original fleet's Replicate")
	}
}

// TestSpecRejectsUnexpressibleOwners pins the wire boundary: owners whose
// behavior is code, not named data, cannot travel.
func TestSpecRejectsUnexpressibleOwners(t *testing.T) {
	cases := []fleet.Owner{
		fleet.Scripted{Base: fleet.Office{}, Offsets: []float64{10}},
		fleet.SampledWorst{Base: fleet.Office{}, Candidates: 3},
		fleet.Malicious{Base: fleet.Benign{Base: fleet.Office{}}}, // nested wrappers
	}
	for _, o := range cases {
		cfg := fleet.Config{Stations: 2, Setup: 5, Owners: []fleet.Owner{o}}
		if _, err := NewSpec(cfg, fleet.Job{}, 5); err == nil {
			t.Errorf("owner %T crossed the wire", o)
		}
	}
}

// --- multi-process: the test binary re-invoked as a real worker ----------

func execStarter(t *testing.T, extraEnv ...string) Starter {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return ExecStarter(func() *exec.Cmd {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), append([]string{"CSTEAL_DISTRIB_WORKER=1"}, extraEnv...)...)
		return cmd
	})
}

// TestMultiProcessBitIdentical runs the study across real worker
// processes — the coordinator and ≥ 2 workers are separate OS processes —
// and pins the merged summary bit-identical to in-process Replicate.
func TestMultiProcessBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	defer leakCheck(t)()
	spec, want := testSpec(t, 90)
	c, err := NewCoordinator(spec, Options{Workers: 2, Start: execStarter(t)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("multi-process run differs from Replicate:\n got %+v\nwant %+v", got, want)
	}
}

// TestMultiProcessWorkerCrash kills one real worker process after its
// first shard frame (os.Exit mid-assignment) and pins that the re-dealt
// study still merges bit-identical.
func TestMultiProcessWorkerCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	defer leakCheck(t)()
	spec, want := testSpec(t, 90)
	ticket, err := os.CreateTemp(t.TempDir(), "crash-ticket")
	if err != nil {
		t.Fatal(err)
	}
	ticket.Close()
	c, err := NewCoordinator(spec, Options{
		Workers: 2,
		Start:   execStarter(t, "CSTEAL_DISTRIB_CRASH_TICKET="+ticket.Name()),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("crash-recovered run differs from Replicate:\n got %+v\nwant %+v", got, want)
	}
	if _, err := os.Stat(ticket.Name()); !os.IsNotExist(err) {
		t.Error("crash ticket never consumed: no worker actually died")
	}
}
