package distrib_test

import (
	"context"
	"fmt"
	"reflect"

	"cyclesteal/distrib"
	"cyclesteal/fleet"
)

// ExampleCoordinator distributes a replication study across four workers
// and shows the headline contract: the merged summary is bit-identical to
// running fleet.Replicate in one process.
func ExampleCoordinator() {
	cfg := fleet.Config{Stations: 8, Setup: 5, Opportunities: 3, Seed: 42}
	job := fleet.Job{Tasks: fleet.FixedTasks(200, 12)}

	spec, err := distrib.NewSpec(cfg, job, 200)
	if err != nil {
		panic(err)
	}
	// Workers here are in-process goroutines speaking the full wire
	// protocol; swap in distrib.ExecStarter to fan out across OS processes
	// (cstealsweep -distribute does exactly that).
	coord, err := distrib.NewCoordinator(spec, distrib.Options{Workers: 4})
	if err != nil {
		panic(err)
	}
	rep, err := coord.Run(context.Background())
	if err != nil {
		panic(err)
	}

	f, err := fleet.New(cfg)
	if err != nil {
		panic(err)
	}
	solo, err := f.Replicate(context.Background(), job, 200)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trials: %d\n", rep.Trials)
	fmt.Printf("bit-identical to single-process Replicate: %v\n", reflect.DeepEqual(rep, solo))
	// Output:
	// trials: 200
	// bit-identical to single-process Replicate: true
}
