package cyclesteal_test

import (
	"fmt"
	"log"

	"cyclesteal"
)

// The basic flow: describe the opportunity, pick a schedule, learn the work
// you are guaranteed no matter when the owner interrupts.
func Example() {
	eng, err := cyclesteal.New(cyclesteal.Opportunity{
		Lifespan:   10000, // time units of borrowed workstation
		Interrupts: 1,     // the owner may reclaim it once
		Setup:      1,     // cost of each work hand-off
	})
	if err != nil {
		log.Fatal(err)
	}
	naive, err := eng.GuaranteedWork(eng.SinglePeriod())
	if err != nil {
		log.Fatal(err)
	}
	s, err := eng.AdaptiveEqualized()
	if err != nil {
		log.Fatal(err)
	}
	smart, err := eng.GuaranteedWork(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one long job guarantees %.0f; the paper's schedule guarantees %.0f\n", naive, smart)
	// Output:
	// one long job guarantees 0; the paper's schedule guarantees 9858
}

// Predictions come straight from the paper's closed forms, before any
// solving: Table 2's W ≈ U − √(2cU) − c/2 at p = 1.
func ExampleEngine_Predict() {
	eng, err := cyclesteal.New(cyclesteal.Opportunity{Lifespan: 10000, Interrupts: 1, Setup: 1})
	if err != nil {
		log.Fatal(err)
	}
	p := eng.Predict()
	fmt.Printf("optimal ≈ %.1f; non-adaptive guideline: %d periods of %.0f\n",
		p.OptimalP1Work, p.NonAdaptivePeriods, p.NonAdaptivePeriodLength)
	// Output:
	// optimal ≈ 9858.1; non-adaptive guideline: 100 periods of 100
}

// The exact worst case is replayable: extract the minimax adversary and run
// it through the simulator; the realized work equals the guaranteed floor.
func ExampleEngine_WorstCase() {
	eng, err := cyclesteal.New(cyclesteal.Opportunity{Lifespan: 600, Interrupts: 2, Setup: 2})
	if err != nil {
		log.Fatal(err)
	}
	s, err := eng.AdaptiveEqualized()
	if err != nil {
		log.Fatal(err)
	}
	floor, adversary, err := eng.WorstCase(s)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Simulate(s, adversary, cyclesteal.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("floor %.2f, replayed %.2f, interrupts used %d\n", floor, res.Work, res.Interrupts)
	// Output:
	// floor 520.00, replayed 520.00, interrupts used 2
}
