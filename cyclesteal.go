// Package cyclesteal is a reproduction, as a usable Go library, of
//
//	Arnold L. Rosenberg, "Guidelines for Data-Parallel Cycle-Stealing in
//	Networks of Workstations, II: On Maximizing Guaranteed Output",
//	IPPS 1999.
//
// The model: workstation A borrows workstation B for a usable lifespan of U
// time units under a draconian contract — B's owner may interrupt up to p
// times, and an interrupt kills all work since the last checkpoint. A
// partitions the opportunity into periods; each period costs a communication
// setup c and banks its length minus c when it completes. The library
// provides:
//
//   - every schedule the paper derives (the §3.1 non-adaptive guideline, the
//     §3.2 adaptive guideline, the §5.2 optimal 1-interrupt schedule) plus
//     the equalization schedule that carries out Theorem 4.3's program for
//     every p, and baselines;
//   - an exact game solver for the optimal guaranteed output W(p)[U] and the
//     worst-case (minimax) evaluation of any schedule;
//   - a discrete-event simulator with malicious and stochastic owners and
//     data-parallel task bags;
//   - the closed-form theory for paper-vs-measured comparisons.
//
// # Quick start
//
//	eng, err := cyclesteal.New(cyclesteal.Opportunity{
//		Lifespan:   3600, // seconds of borrowed time
//		Interrupts: 2,    // owner may reclaim twice
//		Setup:      5,    // seconds per work hand-off
//	})
//	if err != nil { ... }
//	s, _ := eng.AdaptiveEqualized()
//	floor, _ := eng.GuaranteedWork(s) // seconds of work no adversary can deny
//
// All public Engine methods speak the caller's continuous time units;
// internally everything runs on an exact integer tick grid (see
// internal/quant). See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the reproduction results.
package cyclesteal

import (
	"fmt"
	"math"

	"cyclesteal/internal/game"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/theory"
)

// Opportunity describes one cycle-stealing opportunity in the caller's time
// units: the guaranteed lifespan U, the interrupt allowance p, and the
// per-period communication setup cost c (§2.1 of the paper).
type Opportunity struct {
	Lifespan   float64
	Interrupts int
	Setup      float64
}

// Scheduler is the adaptive scheduling contract (§2.2): given the interrupts
// still outstanding and the residual lifespan in ticks, produce the episode
// to run until the next interrupt. All schedules in this library implement
// it; custom implementations can be evaluated and simulated the same way.
type Scheduler = model.EpisodeScheduler

// Adversary decides when the owner reclaims the workstation during a
// simulation. Implementations live in internal/adversary; the Engine exposes
// constructors for the common ones, and WorstCase returns the exact minimax
// adversary for a schedule.
type Adversary = sim.Interrupter

// Engine binds an Opportunity to a tick grid and provides schedule
// construction, exact worst-case evaluation, and simulation.
type Engine struct {
	opp    Opportunity
	ticksC quant.Tick // grid resolution: ticks per setup cost
	u      quant.Tick
	p      int
	solver *game.Solver // lazily built
}

// Option configures an Engine.
type Option func(*Engine) error

// WithTicksPerSetup sets the grid resolution: how many integer ticks
// represent one setup cost c. Higher is finer (and costlier to solve
// exactly). The default of 100 keeps quantization error far below the
// paper's low-order terms.
func WithTicksPerSetup(n int) Option {
	return func(e *Engine) error {
		if n < 1 {
			return fmt.Errorf("cyclesteal: ticks per setup must be ≥ 1, got %d", n)
		}
		e.ticksC = quant.Tick(n)
		return nil
	}
}

// New validates the opportunity and builds an Engine.
func New(o Opportunity, opts ...Option) (*Engine, error) {
	mo := model.Opportunity{Lifespan: o.Lifespan, Interrupts: o.Interrupts, Setup: o.Setup}
	if err := mo.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{opp: o, ticksC: 100, p: o.Interrupts}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	e.u = quant.Tick(math.Round(o.Lifespan / o.Setup * float64(e.ticksC)))
	if e.u < 1 {
		e.u = 1
	}
	return e, nil
}

// Opportunity returns the opportunity the engine was built for.
func (e *Engine) Opportunity() Opportunity { return e.opp }

// Ticks reports the internal grid: lifespan and setup cost in ticks.
func (e *Engine) Ticks() (U, c quant.Tick) { return e.u, e.ticksC }

// Units converts ticks back to the caller's time units.
func (e *Engine) Units(t quant.Tick) float64 {
	return float64(t) / float64(e.ticksC) * e.opp.Setup
}

// --- schedule constructors ----------------------------------------------------

// NonAdaptive returns the §3.1 guideline: m = ⌊√(pU/c)⌋ equal periods, tail
// semantics on interrupts, one long period after the last interrupt.
func (e *Engine) NonAdaptive() (Scheduler, error) {
	return sched.NewNonAdaptive(e.u, e.p, e.ticksC)
}

// AdaptiveGuideline returns the §3.2 printed guideline Σ_a (see DESIGN.md §4
// for the reconstruction of its scan-damaged constants).
func (e *Engine) AdaptiveGuideline() (Scheduler, error) {
	return sched.NewAdaptiveGuideline(e.ticksC)
}

// AdaptiveEqualized returns the schedule obtained by carrying out Theorem
// 4.3's equalization program exactly — optimal to within low-order additive
// terms at every p, and the scheduler most callers want.
func (e *Engine) AdaptiveEqualized() (Scheduler, error) {
	return sched.NewAdaptiveEqualized(e.ticksC)
}

// OptimalP1 returns the closed-form optimal schedule for p = 1 (§5.2).
func (e *Engine) OptimalP1() (Scheduler, error) {
	return sched.NewOptimalP1(e.ticksC)
}

// Optimal returns the exactly optimal adaptive scheduler, backed by the game
// solver's value tables (computed on first use and cached).
func (e *Engine) Optimal() (Scheduler, error) {
	if err := e.ensureSolver(); err != nil {
		return nil, err
	}
	return e.solver.Scheduler(), nil
}

// SinglePeriod returns the one-long-period baseline.
func (e *Engine) SinglePeriod() Scheduler { return sched.SinglePeriod{} }

// EqualSplit returns the fixed-m equal-split baseline.
func (e *Engine) EqualSplit(m int) Scheduler { return sched.EqualSplit{M: m} }

// FixedChunk returns the Atallah-style fixed-chunk baseline; the chunk length
// is given in the caller's time units.
func (e *Engine) FixedChunk(units float64) Scheduler {
	t := quant.Tick(math.Round(units / e.opp.Setup * float64(e.ticksC)))
	if t < 1 {
		t = 1
	}
	return sched.FixedChunk{T: t}
}

// --- evaluation -----------------------------------------------------------------

// GuaranteedWork returns the exact guaranteed output of a schedule: the work
// it banks against the worst adversary allowed by the contract, in the
// caller's time units.
func (e *Engine) GuaranteedWork(s Scheduler) (float64, error) {
	w, err := game.Evaluate(s, e.p, e.u, e.ticksC)
	if err != nil {
		return 0, err
	}
	return e.Units(w), nil
}

// OptimalWork returns W(p)[U], the best guaranteed output any schedule can
// achieve, in the caller's time units.
func (e *Engine) OptimalWork() (float64, error) {
	if err := e.ensureSolver(); err != nil {
		return 0, err
	}
	return e.Units(e.solver.Value(e.p, e.u)), nil
}

// OptimalSchedule returns the optimal first-episode period lengths in the
// caller's time units.
func (e *Engine) OptimalSchedule() ([]float64, error) {
	if err := e.ensureSolver(); err != nil {
		return nil, err
	}
	ep := e.solver.OptimalEpisode(e.p, e.u)
	out := make([]float64, len(ep))
	for i, t := range ep {
		out[i] = e.Units(t)
	}
	return out, nil
}

// Episode returns the episode a scheduler would run from a fresh opportunity,
// in the caller's time units — useful for inspecting schedule shapes.
func (e *Engine) Episode(s Scheduler) []float64 {
	ep := s.Episode(e.p, e.u)
	out := make([]float64, len(ep))
	for i, t := range ep {
		out[i] = e.Units(t)
	}
	return out
}

// WorstCase returns the guaranteed work of a schedule together with the
// minimax adversary achieving it, for replay in Simulate.
func (e *Engine) WorstCase(s Scheduler) (float64, Adversary, error) {
	w, br, err := game.EvaluateWithStrategy(s, e.p, e.u, e.ticksC)
	if err != nil {
		return 0, nil, err
	}
	return e.Units(w), br, nil
}

func (e *Engine) ensureSolver() error {
	if e.solver != nil {
		return nil
	}
	s, err := game.Solve(e.p, e.u, e.ticksC)
	if err != nil {
		return fmt.Errorf("cyclesteal: solving the game (consider a coarser WithTicksPerSetup): %w", err)
	}
	e.solver = s
	return nil
}

// --- predictions ---------------------------------------------------------------

// Predictions bundles the paper's closed forms for this opportunity, in the
// caller's time units.
type Predictions struct {
	// ZeroWork reports whether U ≤ (p+1)c — no schedule can guarantee
	// anything (Prop. 4.1(c)).
	ZeroWork bool
	// NonAdaptiveWork is the §3.1 guideline's guaranteed output,
	// (m−p)(U/m − c).
	NonAdaptiveWork float64
	// AdaptiveWork is the equalization prediction U − K_p·√(2cU) of the
	// optimal guaranteed output (K_1 = 1 reproduces Table 2's
	// U − √(2cU) − c/2 up to c/2).
	AdaptiveWork float64
	// OptimalP1Work is Table 2's U − √(2cU) − c/2 (meaningful at p = 1).
	OptimalP1Work float64
	// DeficitRatio is the asymptotic non-adaptive/adaptive deficit ratio at
	// this p: √2 at p = 1, decaying toward 1 as p grows.
	DeficitRatio float64
	// NonAdaptivePeriods and NonAdaptivePeriodLength are the §3.1 guideline
	// parameters m and √(cU/p).
	NonAdaptivePeriods      int
	NonAdaptivePeriodLength float64
}

// Predict evaluates the paper's closed forms for this opportunity.
func (e *Engine) Predict() Predictions {
	U, c, p := e.opp.Lifespan, e.opp.Setup, e.p
	return Predictions{
		ZeroWork:                U <= theory.ZeroWorkThreshold(p, c),
		NonAdaptiveWork:         theory.NonAdaptiveWorkExact(U, p, c),
		AdaptiveWork:            theory.OptimalWorkPrediction(U, p, c),
		OptimalP1Work:           theory.OptimalP1Work(U, c),
		DeficitRatio:            theory.DeficitRatioMeasured(p),
		NonAdaptivePeriods:      theory.NonAdaptiveM(U, p, c),
		NonAdaptivePeriodLength: theory.NonAdaptivePeriod(U, p, c),
	}
}
