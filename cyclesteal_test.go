package cyclesteal

import (
	"math"
	"testing"
)

func engine(t *testing.T, o Opportunity, opts ...Option) *Engine {
	t.Helper()
	e, err := New(o, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Opportunity{Lifespan: 0, Interrupts: 1, Setup: 1}); err == nil {
		t.Error("U=0 accepted")
	}
	if _, err := New(Opportunity{Lifespan: 10, Interrupts: -1, Setup: 1}); err == nil {
		t.Error("p<0 accepted")
	}
	if _, err := New(Opportunity{Lifespan: 10, Interrupts: 1, Setup: 0}); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := New(Opportunity{Lifespan: 10, Interrupts: 1, Setup: 1}, WithTicksPerSetup(0)); err == nil {
		t.Error("bad resolution accepted")
	}
}

func TestTickGridMapping(t *testing.T) {
	e := engine(t, Opportunity{Lifespan: 3600, Interrupts: 1, Setup: 5}, WithTicksPerSetup(50))
	U, c := e.Ticks()
	if c != 50 {
		t.Errorf("c = %d ticks, want 50", c)
	}
	if U != 36000 { // 3600/5 × 50
		t.Errorf("U = %d ticks, want 36000", U)
	}
	if got := e.Units(c); math.Abs(got-5) > 1e-9 {
		t.Errorf("Units(c) = %g, want 5", got)
	}
	if got := e.Opportunity().Lifespan; got != 3600 {
		t.Errorf("Opportunity lost: %g", got)
	}
}

func TestGuaranteedWorkOrdering(t *testing.T) {
	e := engine(t, Opportunity{Lifespan: 2000, Interrupts: 2, Setup: 2}, WithTicksPerSetup(50))
	eq, err := e.AdaptiveEqualized()
	if err != nil {
		t.Fatal(err)
	}
	na, err := e.NonAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	wEq, err := e.GuaranteedWork(eq)
	if err != nil {
		t.Fatal(err)
	}
	wNa, err := e.GuaranteedWork(na)
	if err != nil {
		t.Fatal(err)
	}
	wSp, err := e.GuaranteedWork(e.SinglePeriod())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := e.OptimalWork()
	if err != nil {
		t.Fatal(err)
	}
	if !(wSp == 0 && wNa > 0 && wEq > wNa && opt >= wEq) {
		t.Errorf("ordering violated: single=%g < nonadaptive=%g < equalized=%g ≤ optimal=%g", wSp, wNa, wEq, opt)
	}
	// The optimum must be close to the K_p prediction.
	pred := e.Predict()
	if math.Abs(opt-pred.AdaptiveWork) > 0.05*pred.AdaptiveWork {
		t.Errorf("optimal %g strays from prediction %g", opt, pred.AdaptiveWork)
	}
}

func TestOptimalScheduleShape(t *testing.T) {
	e := engine(t, Opportunity{Lifespan: 1000, Interrupts: 1, Setup: 1})
	periods, err := e.OptimalSchedule()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range periods {
		sum += p
	}
	if math.Abs(sum-1000) > 0.1 {
		t.Errorf("optimal schedule sums to %g, want 1000", sum)
	}
	// ≈ √(2·1000) ≈ 45 periods.
	if len(periods) < 35 || len(periods) > 55 {
		t.Errorf("m = %d, want ≈ 45", len(periods))
	}
}

func TestEpisodeInspection(t *testing.T) {
	e := engine(t, Opportunity{Lifespan: 500, Interrupts: 1, Setup: 1})
	op1, err := e.OptimalP1()
	if err != nil {
		t.Fatal(err)
	}
	ep := e.Episode(op1)
	if len(ep) == 0 {
		t.Fatal("empty episode")
	}
	var sum float64
	for _, p := range ep {
		sum += p
	}
	if math.Abs(sum-500) > 0.1 {
		t.Errorf("episode sums to %g", sum)
	}
}

func TestWorstCaseReplay(t *testing.T) {
	e := engine(t, Opportunity{Lifespan: 600, Interrupts: 2, Setup: 1})
	g, err := e.AdaptiveGuideline()
	if err != nil {
		t.Fatal(err)
	}
	floor, adv, err := e.WorstCase(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Simulate(g, adv, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Work-floor) > 1e-9 {
		t.Errorf("replay %g ≠ floor %g", res.Work, floor)
	}
	if res.Interrupts == 0 {
		t.Error("worst case used no interrupts against an interruptible schedule")
	}
}

func TestSimulateAgainstStochasticOwners(t *testing.T) {
	e := engine(t, Opportunity{Lifespan: 1000, Interrupts: 2, Setup: 2})
	eq, err := e.AdaptiveEqualized()
	if err != nil {
		t.Fatal(err)
	}
	floor, err := e.GuaranteedWork(eq)
	if err != nil {
		t.Fatal(err)
	}
	for name, adv := range map[string]Adversary{
		"none":     e.NoAdversary(),
		"last":     e.LastPeriodAdversary(),
		"greedy":   e.GreedyAdversary(),
		"poisson":  e.PoissonAdversary(300, 7),
		"random":   e.RandomAdversary(0.8, 8),
		"periodic": e.PeriodicAdversary(333),
	} {
		res, err := e.Simulate(eq, adv, SimOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Work < floor-1e-9 {
			t.Errorf("%s: realized %g below guaranteed floor %g", name, res.Work, floor)
		}
		total := res.Work + res.SetupTime + res.KilledTime + res.IdleTime
		if math.Abs(total-1000) > 0.5 {
			t.Errorf("%s: lifespan conservation broken: %g", name, total)
		}
	}
}

func TestSimulateWithTasks(t *testing.T) {
	e := engine(t, Opportunity{Lifespan: 800, Interrupts: 1, Setup: 4})
	eq, err := e.AdaptiveEqualized()
	if err != nil {
		t.Fatal(err)
	}
	durations := make([]float64, 100)
	for i := range durations {
		durations[i] = 6
	}
	res, err := e.Simulate(eq, e.GreedyAdversary(), SimOptions{TaskDurations: durations})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted == 0 {
		t.Fatal("no tasks completed")
	}
	if res.TasksCompleted+res.TasksRemaining != 100 {
		t.Errorf("tasks leaked: %d + %d ≠ 100", res.TasksCompleted, res.TasksRemaining)
	}
	if res.TaskWork > res.Work+1e-9 {
		t.Errorf("task work %g exceeds fluid work %g", res.TaskWork, res.Work)
	}
}

func TestPredictions(t *testing.T) {
	e := engine(t, Opportunity{Lifespan: 10000, Interrupts: 1, Setup: 1})
	p := e.Predict()
	if p.ZeroWork {
		t.Error("large opportunity flagged zero-work")
	}
	// Table 2: W ≈ U − √(2U) − ½.
	want := 10000 - math.Sqrt(20000) - 0.5
	if math.Abs(p.OptimalP1Work-want) > 1e-9 {
		t.Errorf("OptimalP1Work = %g, want %g", p.OptimalP1Work, want)
	}
	if math.Abs(p.AdaptiveWork-(10000-math.Sqrt(20000))) > 1 {
		t.Errorf("AdaptiveWork = %g (K_1 = 1)", p.AdaptiveWork)
	}
	if p.DeficitRatio < 1.3 || p.DeficitRatio > 1.5 {
		t.Errorf("DeficitRatio = %g, want ≈ √2", p.DeficitRatio)
	}
	if p.NonAdaptivePeriods != 100 || math.Abs(p.NonAdaptivePeriodLength-100) > 1e-9 {
		t.Errorf("non-adaptive parameters: m=%d t=%g, want 100/100", p.NonAdaptivePeriods, p.NonAdaptivePeriodLength)
	}
	tiny := engine(t, Opportunity{Lifespan: 1.5, Interrupts: 2, Setup: 1})
	if !tiny.Predict().ZeroWork {
		t.Error("U ≤ (p+1)c not flagged zero-work")
	}
}

func TestFixedChunkAndEqualSplit(t *testing.T) {
	e := engine(t, Opportunity{Lifespan: 100, Interrupts: 1, Setup: 1})
	fc := e.FixedChunk(10)
	ep := e.Episode(fc)
	if len(ep) != 10 {
		t.Errorf("fixed 10-unit chunks over 100 units: %d periods", len(ep))
	}
	es := e.EqualSplit(4)
	if got := e.Episode(es); len(got) != 4 {
		t.Errorf("equal split: %d periods", len(got))
	}
	if e.FixedChunk(0) == nil {
		t.Error("degenerate chunk should clamp, not nil")
	}
}
