package cyclesteal

// Integration tests: end-to-end paths across the whole stack, driven through
// the public facade — the flows a downstream user actually runs.

import (
	"math"
	"testing"
)

// The full loop at several grid resolutions: predictions → schedules →
// exact evaluation → worst-case extraction → simulator replay → task
// accounting. Everything must agree with everything.
func TestEndToEndAcrossResolutions(t *testing.T) {
	for _, ticks := range []int{20, 50, 100} {
		e, err := New(Opportunity{Lifespan: 1800, Interrupts: 2, Setup: 3}, WithTicksPerSetup(ticks))
		if err != nil {
			t.Fatal(err)
		}
		eq, err := e.AdaptiveEqualized()
		if err != nil {
			t.Fatal(err)
		}
		floor, worst, err := e.WorstCase(eq)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := e.OptimalWork()
		if err != nil {
			t.Fatal(err)
		}
		if floor > opt {
			t.Fatalf("ticks=%d: floor %g exceeds optimum %g", ticks, floor, opt)
		}
		if opt-floor > 0.02*opt {
			t.Errorf("ticks=%d: equalized floor %g strays >2%% from optimum %g", ticks, floor, opt)
		}
		pred := e.Predict()
		if math.Abs(opt-pred.AdaptiveWork) > 0.03*pred.AdaptiveWork {
			t.Errorf("ticks=%d: optimum %g vs prediction %g", ticks, opt, pred.AdaptiveWork)
		}

		// Replay with tasks attached: accounting closes.
		durations := make([]float64, 400)
		for i := range durations {
			durations[i] = 4.5
		}
		res, err := e.Simulate(eq, worst, SimOptions{TaskDurations: durations})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Work-floor) > 1e-9 {
			t.Errorf("ticks=%d: replay %g ≠ floor %g", ticks, res.Work, floor)
		}
		if res.TasksCompleted+res.TasksRemaining != 400 {
			t.Errorf("ticks=%d: tasks leaked", ticks)
		}
		conservation := res.Work + res.SetupTime + res.KilledTime + res.IdleTime
		if math.Abs(conservation-1800) > 1 {
			t.Errorf("ticks=%d: lifespan conservation %g ≠ 1800", ticks, conservation)
		}
	}
}

// Every built-in scheduler respects the contract end to end, and the
// guaranteed-work ordering is stable: optimal ≥ equalized ≥ {guideline,
// closed-form p1} ≥ non-adaptive > single-period.
func TestSchedulerLadder(t *testing.T) {
	e, err := New(Opportunity{Lifespan: 5000, Interrupts: 1, Setup: 5}, WithTicksPerSetup(50))
	if err != nil {
		t.Fatal(err)
	}
	get := func(build func() (Scheduler, error)) float64 {
		t.Helper()
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		w, err := e.GuaranteedWork(s)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	opt, err := e.OptimalWork()
	if err != nil {
		t.Fatal(err)
	}
	eq := get(e.AdaptiveEqualized)
	op1 := get(e.OptimalP1)
	ag := get(e.AdaptiveGuideline)
	na := get(e.NonAdaptive)
	sp := get(func() (Scheduler, error) { return e.SinglePeriod(), nil })

	if !(opt >= eq && opt >= op1 && opt >= ag) {
		t.Errorf("optimum %g below an adaptive schedule (%g, %g, %g)", opt, eq, op1, ag)
	}
	if !(op1 > na && eq > na && ag > na) {
		t.Errorf("adaptive schedules (%g, %g, %g) should beat non-adaptive %g at p=1", eq, op1, ag, na)
	}
	if sp != 0 {
		t.Errorf("single period guarantees %g, want 0", sp)
	}
	// At p=1 all three adaptive schedules are within low-order terms of the
	// optimum — within 2c here.
	for name, w := range map[string]float64{"equalized": eq, "closed-form": op1, "guideline": ag} {
		if opt-w > 2*5 {
			t.Errorf("%s gap %g exceeds 2c", name, opt-w)
		}
	}
}

// Fleet-facing sanity through internal packages is covered in internal/farm;
// here: the facade's stochastic owners obey their seeds (reproducibility).
func TestAdversarySeedsReproducible(t *testing.T) {
	e, err := New(Opportunity{Lifespan: 900, Interrupts: 2, Setup: 3})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := e.AdaptiveEqualized()
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) float64 {
		res, err := e.Simulate(eq, e.PoissonAdversary(300, seed), SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Work
	}
	if run(7) != run(7) {
		t.Error("same seed, different outcome")
	}
	same := true
	for seed := int64(1); seed <= 5; seed++ {
		if run(seed) != run(seed+100) {
			same = false
		}
	}
	if same {
		t.Error("five different seed pairs all coincided; rng is likely ignored")
	}
}

// The zero-work regime through the facade: predictions flag it and the
// solver confirms it.
func TestZeroWorkRegimeEndToEnd(t *testing.T) {
	e, err := New(Opportunity{Lifespan: 5, Interrupts: 4, Setup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Predict().ZeroWork {
		t.Error("U = (p+1)c not flagged")
	}
	opt, err := e.OptimalWork()
	if err != nil {
		t.Fatal(err)
	}
	if opt != 0 {
		t.Errorf("optimal work %g in the zero-work regime", opt)
	}
}
