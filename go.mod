module cyclesteal

go 1.22
