package mc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cyclesteal/internal/stats"
)

// summariesEqual demands bit-identical floating-point fields.
func summariesEqual(a, b stats.Summary) bool {
	return a.N == b.N && a.Mean == b.Mean && a.Std == b.Std &&
		a.Min == b.Min && a.Max == b.Max && a.Median == b.Median &&
		a.SE == b.SE && a.CI95Lo == b.CI95Lo && a.CI95Hi == b.CI95Hi
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(rng *rand.Rand) (float64, error) {
		// A workload whose value depends on the whole stream, so any seed
		// or ordering slip shows up immediately.
		v := 0.0
		for i := 0; i < 10; i++ {
			v += rng.NormFloat64()
		}
		return v, nil
	}
	base, err := Run(context.Background(), Config{Trials: 1000, Seed: 42, Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64, 0} {
		got, err := Run(context.Background(), Config{Trials: 1000, Seed: 42, Workers: workers}, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !summariesEqual(base, got) {
			t.Errorf("workers=%d: summary diverged\n  w1: %+v\n  got: %+v", workers, base, got)
		}
	}
}

func TestRunSeedStreamContract(t *testing.T) {
	// Trial i must see exactly rand.New(rand.NewSource(seed+i)).
	const seed, trials = 99, 257
	want := make([]float64, trials)
	for i := range want {
		want[i] = rand.New(rand.NewSource(seed + int64(i))).Float64()
	}
	sum, err := Run(context.Background(), Config{Trials: trials, Seed: seed, Workers: 8}, func(rng *rand.Rand) (float64, error) {
		return rng.Float64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := stats.Summarize(want)
	if sum.N != trials {
		t.Fatalf("n=%d want %d", sum.N, trials)
	}
	if math.Abs(sum.Mean-ref.Mean) > 1e-12 || sum.Min != ref.Min || sum.Max != ref.Max {
		t.Errorf("summary does not match the promised per-trial streams:\n  got %+v\n  want %+v", sum, ref)
	}
}

func TestRunPrefixStability(t *testing.T) {
	// Widening a study keeps the old trials: min over 100 trials can only
	// go down (never change) when trials grows to 300 with the same seed.
	fn := func(rng *rand.Rand) (float64, error) { return rng.ExpFloat64(), nil }
	small, err := Run(context.Background(), Config{Trials: 100, Seed: 5, Workers: 4}, fn)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(context.Background(), Config{Trials: 300, Seed: 5, Workers: 4}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if big.Min > small.Min {
		t.Errorf("prefix not stable: min rose from %v to %v when widening", small.Min, big.Min)
	}
	if big.Max < small.Max {
		t.Errorf("prefix not stable: max fell from %v to %v when widening", small.Max, big.Max)
	}
}

func TestRunVecMultiMetric(t *testing.T) {
	sums, err := RunVec(context.Background(), Config{Trials: 500, Seed: 3, Workers: 8}, 2, func(rng *rand.Rand) ([]float64, error) {
		x := rng.Float64()
		return []float64{x, 2 * x}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("want 2 summaries, got %d", len(sums))
	}
	if math.Abs(sums[1].Mean-2*sums[0].Mean) > 1e-12 {
		t.Errorf("metric coupling lost: %v vs 2×%v", sums[1].Mean, sums[0].Mean)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{Trials: 0, Seed: 1}, func(*rand.Rand) (float64, error) { return 0, nil }); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := RunVec(context.Background(), Config{Trials: 1, Seed: 1}, 0, func(*rand.Rand) ([]float64, error) { return nil, nil }); err == nil {
		t.Error("metrics=0 accepted")
	}
	boom := errors.New("boom")
	_, err := Run(context.Background(), Config{Trials: 100, Seed: 1, Workers: 8}, func(rng *rand.Rand) (float64, error) {
		if rng.Float64() < 0.5 {
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("trial error not propagated: %v", err)
	}
	// Deterministic first-error selection: the reported trial index must be
	// the same at every worker count.
	failAt := func(workers int) string {
		_, err := Run(context.Background(), Config{Trials: 200, Seed: 17, Workers: workers}, func(rng *rand.Rand) (float64, error) {
			if rng.Float64() < 0.10 {
				return 0, boom
			}
			return 1, nil
		})
		if err == nil {
			t.Fatal("expected failure")
		}
		return err.Error()
	}
	if a, b := failAt(1), failAt(8); a != b {
		t.Errorf("error not deterministic: %q vs %q", a, b)
	}
}

func TestRunVecLengthMismatch(t *testing.T) {
	_, err := RunVec(context.Background(), Config{Trials: 10, Seed: 1, Workers: 2}, 3, func(rng *rand.Rand) ([]float64, error) {
		return []float64{1}, nil
	})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRunFewTrialsManyWorkers(t *testing.T) {
	sum, err := Run(context.Background(), Config{Trials: 3, Seed: 1, Workers: 64}, func(rng *rand.Rand) (float64, error) {
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 3 || sum.Mean != 1 {
		t.Errorf("got %+v", sum)
	}
}

func ExampleRun() {
	// Estimate E[max(Z,0)] for a standard normal Z with 10k deterministic
	// trials; the answer is 1/√(2π) ≈ 0.3989.
	sum, err := Run(context.Background(), Config{Trials: 10000, Seed: 1}, func(rng *rand.Rand) (float64, error) {
		return math.Max(rng.NormFloat64(), 0), nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean ≈ %.2f\n", sum.Mean)
	// Output: mean ≈ 0.40
}

func TestSplitWorkers(t *testing.T) {
	cases := []struct {
		budget, outerCap, outer, inner int
	}{
		{8, 64, 8, 1},  // trials dwarf the budget: all parallelism goes outer
		{8, 3, 3, 2},   // few trials: leftover budget multiplies inward
		{1, 64, 1, 1},  // serial stays serial at both levels
		{16, 1, 1, 16}, // one trial: everything goes inner
		{0, 4, -1, -1}, // budget 0 = GOMAXPROCS; just check bounds
	}
	for _, c := range cases {
		outer, inner := SplitWorkers(c.budget, c.outerCap)
		if outer < 1 || inner < 1 {
			t.Errorf("SplitWorkers(%d,%d) = (%d,%d): levels must be ≥ 1", c.budget, c.outerCap, outer, inner)
		}
		if c.outer > 0 && (outer != c.outer || inner != c.inner) {
			t.Errorf("SplitWorkers(%d,%d) = (%d,%d), want (%d,%d)", c.budget, c.outerCap, outer, inner, c.outer, c.inner)
		}
	}
	if outer, inner := SplitWorkers(5, 0); outer != 1 || inner != 5 {
		t.Errorf("outerCap 0: got (%d,%d), want (1,5)", outer, inner)
	}
}

func TestSplitConfig(t *testing.T) {
	// Few trials: the outer pool is bounded by the trial count, the rest of
	// the budget multiplies inward. Seed and Trials pass through untouched.
	cfg, inner := SplitConfig(Config{Trials: 3, Seed: 7, Workers: 8})
	if cfg.Workers != 3 || inner != 2 {
		t.Errorf("few trials: outer=%d inner=%d, want 3/2", cfg.Workers, inner)
	}
	if cfg.Trials != 3 || cfg.Seed != 7 {
		t.Errorf("trials/seed mangled: %+v", cfg)
	}
	// Many trials: the outer pool caps at the Shards partition — trial
	// parallelism beyond it cannot exist.
	cfg, inner = SplitConfig(Config{Trials: 10 * Shards, Workers: 2 * Shards})
	if cfg.Workers != Shards || inner != 2 {
		t.Errorf("many trials: outer=%d inner=%d, want %d/2", cfg.Workers, inner, Shards)
	}
}

// Summaries now expose sketch-backed tail quantiles; they must obey the
// seed-stream contract like every other field.
func TestRunTailQuantilesDeterministic(t *testing.T) {
	run := func(workers int) stats.Summary {
		sum, err := Run(context.Background(), Config{Trials: 3000, Seed: 11, Workers: workers}, func(rng *rand.Rand) (float64, error) {
			return rng.ExpFloat64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(1), run(8)
	if a.Median != b.Median || a.P90 != b.P90 || a.P99 != b.P99 {
		t.Errorf("tail quantiles depend on workers: %+v vs %+v", a, b)
	}
	if !(a.Median < a.P90 && a.P90 < a.P99 && a.P99 <= a.Max) {
		t.Errorf("tail ordering violated: med=%v p90=%v p99=%v max=%v", a.Median, a.P90, a.P99, a.Max)
	}
}

func TestProgressObserver(t *testing.T) {
	var mu sync.Mutex
	var snaps [][2]int
	cfg := Config{
		Trials: 25, Seed: 3, Workers: 4,
		ProgressInterval: time.Millisecond,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			snaps = append(snaps, [2]int{done, total})
		},
	}
	sum, err := Run(context.Background(), cfg, func(rng *rand.Rand) (float64, error) {
		time.Sleep(time.Millisecond)
		return rng.Float64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 25 {
		t.Fatalf("summary N = %d, want 25", sum.N)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("observer emitted nothing")
	}
	last := snaps[len(snaps)-1]
	if last != [2]int{25, 25} {
		t.Errorf("final snapshot %v, want [25 25]", last)
	}
	prev := -1
	for _, s := range snaps {
		if s[1] != 25 {
			t.Errorf("snapshot total %d, want 25", s[1])
		}
		if s[0] < prev {
			t.Errorf("done count went backwards: %v", snaps)
			break
		}
		prev = s[0]
	}
}

func TestProgressObserverFinalSnapshotOnError(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	cfg := Config{
		Trials: 10, Seed: 1, Workers: 2,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
		},
	}
	_, err := Run(context.Background(), cfg, func(rng *rand.Rand) (float64, error) {
		return 0, errors.New("boom")
	})
	if err == nil {
		t.Fatal("trial error swallowed")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Error("failed run emitted no final snapshot")
	}
}

// TestProgressObserverFinalSnapshotOnCancel pins the shutdown contract a
// resident service relies on: a cancelled study still emits one final
// snapshot — carrying however many trials completed — and never calls the
// observer again after Run returns.
func TestProgressObserverFinalSnapshotOnCancel(t *testing.T) {
	var mu sync.Mutex
	var snaps [][2]int
	returned := false
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Trials: 10000, Seed: 7, Workers: 4,
		ProgressInterval: time.Hour, // only the final snapshot can fire
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if returned {
				t.Error("observer called after Run returned")
			}
			snaps = append(snaps, [2]int{done, total})
		},
	}
	var once sync.Once
	_, err := Run(ctx, cfg, func(rng *rand.Rand) (float64, error) {
		once.Do(cancel) // cancel from inside the study: some trials are done
		return rng.Float64(), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	returned = true
	if len(snaps) == 0 {
		t.Fatal("cancelled run emitted no final snapshot")
	}
	last := snaps[len(snaps)-1]
	if last[1] != 10000 {
		t.Errorf("final snapshot total %d, want 10000", last[1])
	}
	if last[0] < 1 || last[0] > 10000 {
		t.Errorf("final snapshot done %d outside [1, 10000]", last[0])
	}
}

// vecFn is the multi-metric workload the shard-subset tests replicate: the
// value depends on the whole rng stream so any seed or ordering slip shows.
func vecFn(rng *rand.Rand) ([]float64, error) {
	v := 0.0
	for i := 0; i < 8; i++ {
		v += rng.NormFloat64()
	}
	return []float64{v, v * v, float64(rng.Intn(100))}, nil
}

func TestShardTrials(t *testing.T) {
	for _, trials := range []int{1, 63, 64, 65, 1000, 1001} {
		total := 0
		for s := 0; s < Shards; s++ {
			n := ShardTrials(trials, s)
			want := 0
			for i := s; i < trials; i += Shards {
				want++
			}
			if n != want {
				t.Fatalf("ShardTrials(%d, %d) = %d, want %d", trials, s, n, want)
			}
			total += n
		}
		if total != trials {
			t.Fatalf("trials=%d: shard trial counts sum to %d", trials, total)
		}
	}
	if ShardTrials(100, -1) != 0 || ShardTrials(100, Shards) != 0 || ShardTrials(0, 0) != 0 {
		t.Fatal("out-of-range arguments must yield 0")
	}
}

// TestRunVecShardsPartitionedMerge is the distributed-replication contract:
// any partition of the shard space into subsets — run separately, merged in
// any arrival order — reproduces the single-process summaries bit for bit.
func TestRunVecShardsPartitionedMerge(t *testing.T) {
	cfg := Config{Trials: 777, Seed: 11, Workers: 4}
	want, err := RunVec(context.Background(), cfg, 3, vecFn)
	if err != nil {
		t.Fatal(err)
	}

	for _, parts := range []int{1, 3, 4, 64} {
		var collected []ShardAccums
		// Deal shards round-robin across parts subsets, then run the subsets
		// in reverse order so arrival order ≠ shard order.
		subsets := make([][]int, parts)
		for s := 0; s < Shards; s++ {
			subsets[s%parts] = append(subsets[s%parts], s)
		}
		for p := parts - 1; p >= 0; p-- {
			accs, err := RunVecShards(context.Background(), cfg, 3, nil,
				func(rng *rand.Rand, _ any) ([]float64, error) { return vecFn(rng) }, subsets[p])
			if err != nil {
				t.Fatal(err)
			}
			collected = append(collected, accs...)
		}
		got, err := MergeShards(3, collected)
		if err != nil {
			t.Fatal(err)
		}
		for m := range want {
			if !summariesEqual(want[m], got[m]) || want[m].P90 != got[m].P90 || want[m].P99 != got[m].P99 {
				t.Errorf("parts=%d metric %d: merged summary diverged\n want %+v\n  got %+v", parts, m, want[m], got[m])
			}
		}
	}
}

func TestRunVecShardsValidation(t *testing.T) {
	fn := func(rng *rand.Rand, _ any) ([]float64, error) { return []float64{1}, nil }
	cfg := Config{Trials: 10, Seed: 1}
	if _, err := RunVecShards(context.Background(), cfg, 1, nil, fn, nil); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := RunVecShards(context.Background(), cfg, 1, nil, fn, []int{Shards}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := RunVecShards(context.Background(), cfg, 1, nil, fn, []int{3, 3}); err == nil {
		t.Error("duplicate shard accepted")
	}
}

func TestMergeShardsValidation(t *testing.T) {
	cfg := Config{Trials: 100, Seed: 5, Workers: 2}
	all := make([]int, Shards)
	for s := range all {
		all[s] = s
	}
	accs, err := RunVecShards(context.Background(), cfg, 1, nil,
		func(rng *rand.Rand, _ any) ([]float64, error) { return []float64{rng.Float64()}, nil }, all)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(1, accs[:Shards-1]); err == nil {
		t.Error("incomplete cover accepted")
	}
	dup := append(append([]ShardAccums(nil), accs[:Shards-1]...), accs[0])
	if _, err := MergeShards(1, dup); err == nil {
		t.Error("duplicated shard accepted")
	}
	if _, err := MergeShards(2, accs); err == nil {
		t.Error("metric-count mismatch accepted")
	}
	broken := append([]ShardAccums(nil), accs...)
	broken[7] = ShardAccums{Shard: 7, Accums: []*stats.Accumulator{nil}}
	if _, err := MergeShards(1, broken); err == nil {
		t.Error("nil accumulator accepted")
	}
	if _, err := MergeShards(1, accs); err != nil {
		t.Errorf("pristine cover rejected: %v", err)
	}
}

// TestRunVecShardsSubsetProgress pins the observer contract on subsets: the
// final snapshot reports exactly the subset's trial share.
func TestRunVecShardsSubsetProgress(t *testing.T) {
	var mu sync.Mutex
	var lastDone, lastTotal int
	cfg := Config{
		Trials: 500, Seed: 3, Workers: 2,
		Progress:         func(done, total int) { mu.Lock(); lastDone, lastTotal = done, total; mu.Unlock() },
		ProgressInterval: time.Hour, // only the final snapshot fires
	}
	subset := []int{0, 5, 63}
	want := 0
	for _, s := range subset {
		want += ShardTrials(cfg.Trials, s)
	}
	if _, err := RunVecShards(context.Background(), cfg, 1, nil,
		func(rng *rand.Rand, _ any) ([]float64, error) { return []float64{1}, nil }, subset); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if lastDone != want || lastTotal != want {
		t.Fatalf("final subset snapshot = (%d, %d), want (%d, %d)", lastDone, lastTotal, want, want)
	}
}

// TestRunVecShardsErrorSelection pins deterministic error reporting within a
// subset: the lowest-numbered failing trial of the subset wins.
func TestRunVecShardsErrorSelection(t *testing.T) {
	cfg := Config{Trials: 200, Seed: 1, Workers: 8}
	fail := func(rng *rand.Rand, _ any) ([]float64, error) {
		return nil, errors.New("boom")
	}
	_, err := RunVecShards(context.Background(), cfg, 1, nil, fail, []int{9, 2, 40})
	if err == nil || err.Error() != "mc: trial 2: boom" {
		t.Fatalf("got error %v, want mc: trial 2: boom", err)
	}
}
