// Package mc is the parallel Monte-Carlo replication engine behind every
// stochastic experiment: it executes a run closure once per trial across a
// bounded worker pool and streams the results into mergeable summary
// statistics (internal/stats.Accumulator), so memory stays proportional to a
// small fixed shard count rather than the trial count.
//
// # Seed-stream contract
//
// Trial i always draws its randomness from rand.New(rand.NewSource(seed+i)),
// where seed is Config.Seed — one independent deterministic stream per
// trial, never a shared source. Two consequences the rest of the repo relies
// on:
//
//   - Reproducibility: a (seed, trials) pair names the exact same set of
//     trial executions forever, independent of scheduling. Changing Workers
//     changes only wall-clock time, never a single bit of the summaries.
//   - Extensibility: raising Trials re-runs the same prefix of trials and
//     appends new ones, so studies can be widened without invalidating
//     earlier numbers.
//
// Bit-identical summaries at any worker count are achieved by partitioning
// trials into a fixed number of shards (trial i belongs to shard i mod
// Shards, processed in increasing i within a shard) and merging the shard
// accumulators in shard order. Both the partition and the merge order are
// independent of Workers, and floating-point association is therefore fixed.
//
// The quantile fields of each summary (Median, P90, P99) come from per-shard
// bounded-error sketches (stats.Sketch) pooled by level-wise union, so they
// carry a guaranteed rank-error bound and — unlike the mean — do not even
// depend on the shard merge order.
//
// Trial closures that are themselves parallel (e.g. farm.RunDeterministic)
// compose with the engine through SplitWorkers: the budget splits into an
// outer trial pool and an inner per-trial pool, and because neither level's
// worker count can influence results, the combined two-level pool keeps the
// contract.
//
// Closures run concurrently: a closure may freely use its private *rand.Rand
// and anything it creates, but shared inputs (schedulers, solvers) must be
// treated as read-only. Closures that want reusable per-goroutine scratch
// (simulator buffers, episode memos) use the per-worker state hook
// (RunState/RunVecState): the engine builds one state value per worker
// goroutine and hands it to every trial that worker runs, so trials can ride
// the allocation-free opportunity path without any synchronization.
//
// # Cancellation
//
// Every entry point takes a context. Cancellation is checked between trials;
// a cancelled run drains its worker pool and returns ctx.Err(). Because the
// shard partition is fixed, whatever summaries a cancelled run had
// accumulated are discarded rather than returned — a partial summary would
// silently depend on scheduling.
package mc

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cyclesteal/internal/stats"
)

// Shards is the fixed partition width of the trial space. It bounds both
// usable parallelism and resident accumulator memory; 64 comfortably covers
// every machine the experiments target while keeping the per-metric memory
// footprint (64 accumulators × sketch) trivial.
const Shards = 64

// sketchCap is the per-level buffer capacity of each shard's quantile
// sketch (stats.Sketch). Shard sketches merge by level-wise union, so the
// pooled quantiles (Median/P90/P99 in the summaries) carry a guaranteed
// rank-error bound — the sum of the shards' bounds — and are independent of
// the merge order; memory stays O(Shards × sketch size).
const sketchCap = 64

// Config shapes one replication study.
type Config struct {
	Trials  int   // number of trials; must be ≥ 1
	Seed    int64 // base seed; trial i uses Seed+i
	Workers int   // worker pool bound; ≤ 0 means GOMAXPROCS (capped at Shards)
	// Progress, when non-nil, observes the study in flight: every
	// ProgressInterval of wall clock it receives the trials completed so far
	// and the total, plus one final snapshot when the run stops (whatever
	// the outcome). Snapshots are wall-clock driven, so their timing — not
	// their correctness — depends on scheduling; observing never affects
	// summaries. The callback must be fast and must not assume a goroutine.
	Progress func(done, total int)
	// ProgressInterval spaces Progress snapshots; ≤ 0 means
	// DefaultProgressInterval.
	ProgressInterval time.Duration
}

// DefaultProgressInterval spaces progress snapshots when the caller sets a
// Progress observer without an interval.
const DefaultProgressInterval = 200 * time.Millisecond

// observe starts the trials-completed observer, if configured, and returns
// the function that stops it and emits the final snapshot. total is the
// trial count of the run at hand (the whole study, or a shard subset's
// share). The observer reads only the shared completion counter, so it can
// never perturb trials.
func observe(cfg Config, total int, done *atomic.Int64) (stop func()) {
	if cfg.Progress == nil {
		return func() {}
	}
	interval := cfg.ProgressInterval
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	quit := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-quit:
				return
			case <-ticker.C:
				cfg.Progress(int(done.Load()), total)
			}
		}
	}()
	return func() {
		close(quit)
		<-finished // the observer has quit; no callback races the final one
		cfg.Progress(int(done.Load()), total)
	}
}

// RunFunc is a single-metric trial: it receives the trial's private rng and
// returns the observed value.
type RunFunc func(rng *rand.Rand) (float64, error)

// VecFunc is a multi-metric trial: it returns one value per metric, in a
// fixed order of the caller's choosing. The returned slice must have exactly
// the length the caller declared to RunVec.
type VecFunc func(rng *rand.Rand) ([]float64, error)

// StateFunc is a single-metric trial with per-worker state: state is the
// value NewState built for the worker goroutine running the trial, owned by
// that goroutine for the duration of the call. Trials from several shards
// may share one state (a worker drains shard after shard), so state must be
// pure scratch, never shard-keyed.
type StateFunc func(rng *rand.Rand, state any) (float64, error)

// VecStateFunc is a multi-metric trial with per-worker state (see
// StateFunc for the sharing contract).
type VecStateFunc func(rng *rand.Rand, state any) ([]float64, error)

// NewState builds one worker goroutine's reusable trial state. It is
// invoked lazily, at most once per worker, before the worker's first trial;
// the value is then passed to every trial that worker runs (its shards are
// processed in increasing trial order within each shard). Because the state
// never leaves its goroutine it needs no synchronization — this is the hook
// that lets replication studies thread a warm sim.Buffers/sched.Memo pair
// through their trials and ride the allocation-free opportunity path. State
// must never influence results (scratch only): the seed-stream contract pins
// the summaries regardless of how trials are grouped onto workers.
type NewState func() any

// Run replicates a single-metric trial and returns its summary.
func Run(ctx context.Context, cfg Config, fn RunFunc) (stats.Summary, error) {
	return RunState(ctx, cfg, nil, func(rng *rand.Rand, _ any) (float64, error) {
		return fn(rng)
	})
}

// RunState is Run with the per-worker state hook; newState may be nil.
func RunState(ctx context.Context, cfg Config, newState NewState, fn StateFunc) (stats.Summary, error) {
	sums, err := RunVecState(ctx, cfg, 1, newState, func(rng *rand.Rand, state any) ([]float64, error) {
		v, err := fn(rng, state)
		return []float64{v}, err
	})
	if err != nil {
		return stats.Summary{}, err
	}
	return sums[0], nil
}

// RunVec replicates a multi-metric trial and returns one summary per metric,
// in the closure's metric order. On failure the reported error is the one
// from the lowest-numbered failing trial — like the summaries, a pure
// function of (Seed, Trials), independent of Workers. Each shard stops at
// its own first error; the others run to completion (errors signal contract
// violations and are fatal, so the extra work on the failure path is not
// worth giving up deterministic reporting for). A cancelled context is the
// exception: every shard stops at its next trial boundary and the run
// returns ctx.Err().
func RunVec(ctx context.Context, cfg Config, metrics int, fn VecFunc) ([]stats.Summary, error) {
	return RunVecState(ctx, cfg, metrics, nil, func(rng *rand.Rand, _ any) ([]float64, error) {
		return fn(rng)
	})
}

// RunVecState is RunVec with the per-worker state hook; newState may be nil.
func RunVecState(ctx context.Context, cfg Config, metrics int, newState NewState, fn VecStateFunc) ([]stats.Summary, error) {
	all := make([]int, Shards)
	for s := range all {
		all[s] = s
	}
	shards, err := runShardSubset(ctx, cfg, metrics, newState, fn, all)
	if err != nil {
		return nil, err
	}
	return MergeShards(metrics, shards)
}

// ShardAccums is one shard's partial study: the per-metric accumulators
// built from exactly the trials i ≡ Shard (mod Shards), in increasing i.
// Because that set and order are pure functions of (Seed, Trials, Shard), a
// shard's accumulators are bit-identical wherever they are computed — the
// property the distributed replication layer ships across processes.
type ShardAccums struct {
	Shard  int
	Accums []*stats.Accumulator // one per metric, in the study's metric order
}

// ShardTrials returns how many of a study's trials land in one shard of the
// fixed partition (0 for out-of-range arguments).
func ShardTrials(trials, shard int) int {
	if shard < 0 || shard >= Shards || shard >= trials {
		return 0
	}
	return (trials-shard-1)/Shards + 1
}

// RunVecShards runs just the named shards of the study — the same trials,
// seeds, and accumulation order those shards get inside RunVecState — and
// returns their partial accumulators instead of merged summaries. A
// complete cover of [0, Shards) fed to MergeShards reproduces RunVecState
// bit for bit, no matter how the shards were grouped into subsets or where
// each subset ran. Shard IDs must be in range and free of duplicates (a
// duplicated shard would double-count its trials in any merge).
//
// Progress, when configured, observes the subset: done counts the subset's
// completed trials and total is the subset's trial share, so a coordinator
// can sum worker reports into study-level progress.
func RunVecShards(ctx context.Context, cfg Config, metrics int, newState NewState, fn VecStateFunc, shardIDs []int) ([]ShardAccums, error) {
	if len(shardIDs) == 0 {
		return nil, fmt.Errorf("mc: no shards requested")
	}
	var seen [Shards]bool
	for _, s := range shardIDs {
		if s < 0 || s >= Shards {
			return nil, fmt.Errorf("mc: shard %d out of range [0, %d)", s, Shards)
		}
		if seen[s] {
			return nil, fmt.Errorf("mc: shard %d requested twice; a duplicate would double-count its trials", s)
		}
		seen[s] = true
	}
	return runShardSubset(ctx, cfg, metrics, newState, fn, shardIDs)
}

// runShardSubset is the engine core: it executes the trials of the given
// shards (validated by the caller) on the worker pool and returns one
// partial accumulator set per shard, in the order requested.
func runShardSubset(ctx context.Context, cfg Config, metrics int, newState NewState, fn VecStateFunc, shardIDs []int) ([]ShardAccums, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("mc: trials must be ≥ 1, got %d", cfg.Trials)
	}
	if metrics < 1 {
		return nil, fmt.Errorf("mc: metrics must be ≥ 1, got %d", metrics)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shardIDs) {
		workers = len(shardIDs)
	}

	total := 0
	for _, s := range shardIDs {
		total += ShardTrials(cfg.Trials, s)
	}

	type shardState struct {
		accs  []*stats.Accumulator
		err   error
		trial int // trial index of err, for deterministic first-error selection
	}
	shards := make([]shardState, len(shardIDs))

	var done atomic.Int64
	stopObserver := observe(cfg, total, &done)

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var state any
			stateBuilt := false
			for j := range jobs {
				s := shardIDs[j]
				st := &shards[j]
				st.accs = make([]*stats.Accumulator, metrics)
				for m := range st.accs {
					st.accs[m] = stats.NewAccumulator(sketchCap)
				}
				for i := s; i < cfg.Trials; i += Shards {
					if err := ctx.Err(); err != nil {
						st.err = err
						st.trial = i
						break
					}
					if newState != nil && !stateBuilt {
						// One state per worker goroutine, built lazily before
						// its first trial and reused across every shard the
						// goroutine drains — scratch ownership follows the
						// goroutine, which is what makes it race-free.
						state = newState()
						stateBuilt = true
					}
					rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
					vals, err := fn(rng, state)
					if err == nil && len(vals) != metrics {
						err = fmt.Errorf("mc: trial %d returned %d metrics, want %d", i, len(vals), metrics)
					}
					if err != nil {
						st.err = fmt.Errorf("mc: trial %d: %w", i, err)
						st.trial = i
						break
					}
					for m, v := range vals {
						st.accs[m].Add(v)
					}
					done.Add(1)
				}
			}
		}()
	}
	for j := range shardIDs {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	stopObserver()

	// Cancellation trumps trial errors: which trials got far enough to fail
	// depends on scheduling once the context fires, so the only
	// deterministic report is the cancellation itself.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var first error
	firstTrial := -1
	for j := range shards {
		if shards[j].err != nil && (firstTrial < 0 || shards[j].trial < firstTrial) {
			first, firstTrial = shards[j].err, shards[j].trial
		}
	}
	if first != nil {
		return nil, first
	}

	out := make([]ShardAccums, len(shardIDs))
	for j, s := range shardIDs {
		out[j] = ShardAccums{Shard: s, Accums: shards[j].accs}
	}
	return out, nil
}

// MergeShards folds a complete cover of shard accumulators — every shard in
// [0, Shards) exactly once, in any order, from any mix of sources — into
// per-metric summaries. The merge always walks shard index order, so the
// result is independent of the order shards arrive in and bit-identical to
// the single-process RunVecState for the same study.
func MergeShards(metrics int, shards []ShardAccums) ([]stats.Summary, error) {
	if metrics < 1 {
		return nil, fmt.Errorf("mc: metrics must be ≥ 1, got %d", metrics)
	}
	if len(shards) != Shards {
		return nil, fmt.Errorf("mc: merge needs all %d shards, got %d", Shards, len(shards))
	}
	byShard := make([]*ShardAccums, Shards)
	for i := range shards {
		sh := &shards[i]
		if sh.Shard < 0 || sh.Shard >= Shards {
			return nil, fmt.Errorf("mc: shard %d out of range [0, %d)", sh.Shard, Shards)
		}
		if byShard[sh.Shard] != nil {
			return nil, fmt.Errorf("mc: shard %d present twice in the merge set", sh.Shard)
		}
		if len(sh.Accums) != metrics {
			return nil, fmt.Errorf("mc: shard %d carries %d metrics, want %d", sh.Shard, len(sh.Accums), metrics)
		}
		for m, acc := range sh.Accums {
			if acc == nil {
				return nil, fmt.Errorf("mc: shard %d metric %d is nil", sh.Shard, m)
			}
		}
		byShard[sh.Shard] = sh
	}

	merged := make([]*stats.Accumulator, metrics)
	for m := range merged {
		merged[m] = stats.NewAccumulator(sketchCap)
	}
	for s := 0; s < Shards; s++ {
		for m, acc := range byShard[s].Accums {
			merged[m].Merge(acc)
		}
	}
	out := make([]stats.Summary, metrics)
	for m := range out {
		out[m] = merged[m].Summary()
	}
	return out, nil
}

// RunSerial is the reference implementation: the same seed-stream contract
// executed on one goroutine with the same shard partition. It exists for
// differential tests and as the baseline the BenchmarkMC* speedup numbers
// are measured against.
func RunSerial(ctx context.Context, cfg Config, fn RunFunc) (stats.Summary, error) {
	cfg.Workers = 1
	return Run(ctx, cfg, fn)
}

// SplitWorkers divides a worker budget between two levels of parallelism:
// an outer pool of at most outerCap concurrent tasks (e.g. trials) and an
// inner pool each task may spawn (e.g. stations within a trial). The outer
// level is saturated first — trial-level parallelism has no coordination
// cost — and whatever budget remains multiplies into the inner level, so
// outer × inner never exceeds max(budget, outerCap). budget ≤ 0 means
// GOMAXPROCS. Both returned values are ≥ 1.
//
// The split affects wall-clock time only: callers pair it with engines
// (RunVec outside, farm.RunDeterministic inside) whose results are
// independent of their worker counts, so the two-level pool inherits the
// seed-stream contract end to end.
func SplitWorkers(budget, outerCap int) (outer, inner int) {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if outerCap < 1 {
		outerCap = 1
	}
	outer = budget
	if outer > outerCap {
		outer = outerCap
	}
	inner = budget / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// SplitConfig prepares a replication config for a two-level engine: the
// returned config's Workers is the outer trial-pool budget (trial
// parallelism is bounded by both the trial count and the engine's Shards
// partition) and inner is the worker budget each trial's closure may spawn.
// This is the shared prologue of farm.Replicate and now.Fleet.Replicate —
// keeping the Shards-cap invariant in one place.
func SplitConfig(cfg Config) (outerCfg Config, inner int) {
	outerCap := cfg.Trials
	if outerCap > Shards {
		outerCap = Shards
	}
	outer, inner := SplitWorkers(cfg.Workers, outerCap)
	cfg.Workers = outer
	return cfg, inner
}
