package mc

// BenchmarkMC* benchmarks quantify the replication engine itself on a
// synthetic trial of known cost; the end-to-end experiment speedups
// (E8 on the engine vs the old serial loop) live in the repo-root
// bench_test.go as BenchmarkMCGuaranteedVsExpected*. CI runs every
// BenchmarkMC* once per PR as a compile-and-execute smoke test.

import (
	"context"
	"math/rand"
	"testing"
)

// benchTrial is a synthetic trial of a few microseconds — comparable to one
// simulated opportunity — whose value depends on the whole rng stream.
func benchTrial(rng *rand.Rand) (float64, error) {
	v := 0.0
	for i := 0; i < 2000; i++ {
		v += rng.NormFloat64()
	}
	return v, nil
}

var sinkMean float64

func benchRun(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum, err := Run(context.Background(), Config{Trials: 10000, Seed: 1, Workers: workers}, benchTrial)
		if err != nil {
			b.Fatal(err)
		}
		sinkMean = sum.Mean
	}
}

// BenchmarkMCEngineSerial is the single-worker baseline.
func BenchmarkMCEngineSerial(b *testing.B) { benchRun(b, 1) }

// BenchmarkMCEngineParallel2 measures 2 workers.
func BenchmarkMCEngineParallel2(b *testing.B) { benchRun(b, 2) }

// BenchmarkMCEngineParallel4 measures 4 workers.
func BenchmarkMCEngineParallel4(b *testing.B) { benchRun(b, 4) }

// BenchmarkMCEngineParallel8 measures 8 workers — the shape the acceptance
// speedup (≥ 4× over serial) is quoted at.
func BenchmarkMCEngineParallel8(b *testing.B) { benchRun(b, 8) }

// BenchmarkMCEngineParallelMax measures GOMAXPROCS workers.
func BenchmarkMCEngineParallelMax(b *testing.B) { benchRun(b, 0) }

// BenchmarkMCVec measures the multi-metric path (4 metrics per trial).
func BenchmarkMCVec(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sums, err := RunVec(context.Background(), Config{Trials: 10000, Seed: 1, Workers: 0}, 4, func(rng *rand.Rand) ([]float64, error) {
			v, _ := benchTrial(rng)
			return []float64{v, v * v, -v, 1}, nil
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkMean = sums[0].Mean
	}
}
