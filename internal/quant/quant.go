// Package quant provides the time substrate shared by every layer of the
// cycle-stealing reproduction: conversion between the continuous time domain
// of the paper's closed forms (float64 "time units") and the integer tick
// grid on which the game solver computes exact minimax values, plus the
// paper's positive-subtraction operator.
//
// The paper's schedules have irrational period lengths (e.g. √(cU/p), (3/2)c)
// while exact worst-case evaluation needs a discrete state space. A Quantum
// fixes the exchange rate: one tick equals 1/Quantum.PerUnit time units.
package quant

import (
	"fmt"
	"math"
)

// Tick is a point or duration on the discrete time grid used by the exact
// game solver and the simulator. All tick arithmetic is exact.
type Tick = int64

// PosSub is the paper's positive subtraction x ⊖ y = max(0, x−y) on ticks.
// A completed period of length t banks PosSub(t, c) units of work.
// Operands must not make x−y overflow; every tick quantity in this system is
// bounded by the lifespan, far below the int64 range.
func PosSub(x, y Tick) Tick {
	if x <= y {
		return 0
	}
	return x - y
}

// PosSubF is positive subtraction on the continuous domain.
func PosSubF(x, y float64) float64 {
	if x <= y {
		return 0
	}
	return x - y
}

// Quantum defines the resolution of the tick grid: PerUnit ticks represent
// one time unit of the continuous model. The zero value is unusable; use
// NewQuantum or DefaultQuantum.
type Quantum struct {
	perUnit float64
}

// DefaultPerUnit is the default grid resolution. With c typically set to one
// time unit, the default places 100 ticks inside one setup cost, which keeps
// quantization error well below the low-order terms the paper reasons about.
const DefaultPerUnit = 100

// NewQuantum returns a Quantum with the given ticks-per-unit resolution.
func NewQuantum(perUnit float64) (Quantum, error) {
	if perUnit <= 0 || math.IsInf(perUnit, 0) || math.IsNaN(perUnit) {
		return Quantum{}, fmt.Errorf("quant: ticks per unit must be positive and finite, got %v", perUnit)
	}
	return Quantum{perUnit: perUnit}, nil
}

// MustQuantum is NewQuantum for static resolutions; it panics on bad input.
func MustQuantum(perUnit float64) Quantum {
	q, err := NewQuantum(perUnit)
	if err != nil {
		panic(err)
	}
	return q
}

// DefaultQuantum returns the default grid resolution.
func DefaultQuantum() Quantum { return Quantum{perUnit: DefaultPerUnit} }

// PerUnit reports the number of ticks per continuous time unit.
func (q Quantum) PerUnit() float64 { return q.perUnit }

// IsZero reports whether q is the unusable zero value.
func (q Quantum) IsZero() bool { return q.perUnit == 0 }

// ToTicks converts a continuous duration to ticks, rounding to nearest.
func (q Quantum) ToTicks(units float64) Tick {
	return Tick(math.Round(units * q.perUnit))
}

// ToTicksFloor converts a continuous duration to ticks, rounding down. Used
// when a quantity must never exceed its continuous counterpart (e.g. when
// packing periods into a lifespan).
func (q Quantum) ToTicksFloor(units float64) Tick {
	return Tick(math.Floor(units * q.perUnit))
}

// ToUnits converts ticks back to continuous time units.
func (q Quantum) ToUnits(t Tick) float64 {
	return float64(t) / q.perUnit
}

// Resolution returns the duration of a single tick in time units.
func (q Quantum) Resolution() float64 { return 1 / q.perUnit }

// String implements fmt.Stringer.
func (q Quantum) String() string {
	return fmt.Sprintf("quantum(%g ticks/unit)", q.perUnit)
}

// ApproxEqual reports whether a and b differ by at most tol. It tolerates the
// accumulation of rounding error when cross-checking closed forms against the
// tick grid.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// RelClose reports whether a and b agree to within relative tolerance rel,
// with an absolute floor abs for values near zero.
func RelClose(a, b, rel, abs float64) bool {
	diff := math.Abs(a - b)
	if diff <= abs {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*scale
}
