package quant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPosSub(t *testing.T) {
	cases := []struct {
		x, y, want Tick
	}{
		{0, 0, 0},
		{5, 3, 2},
		{3, 5, 0},
		{5, 5, 0},
		{100, 1, 99},
		{1, 100, 0},
		{-3, -5, 2},
		{-5, -3, 0},
	}
	for _, c := range cases {
		if got := PosSub(c.x, c.y); got != c.want {
			t.Errorf("PosSub(%d, %d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestPosSubF(t *testing.T) {
	cases := []struct {
		x, y, want float64
	}{
		{0, 0, 0},
		{5.5, 3.25, 2.25},
		{3, 5, 0},
		{5, 5, 0},
	}
	for _, c := range cases {
		if got := PosSubF(c.x, c.y); got != c.want {
			t.Errorf("PosSubF(%g, %g) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}

// clampTick maps arbitrary quick-generated ticks into the documented domain
// (quantities bounded by a lifespan, far below int64 overflow).
func clampTick(x Tick) Tick { return x % (1 << 40) }

func TestPosSubNeverNegative(t *testing.T) {
	f := func(x, y Tick) bool { return PosSub(clampTick(x), clampTick(y)) >= 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(x, y float64) bool { return PosSubF(x, y) >= 0 }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestPosSubIdentity(t *testing.T) {
	// x ⊖ y = (x − y) whenever x ≥ y.
	f := func(x, y Tick) bool {
		lo, hi := clampTick(x), clampTick(y)
		if lo > hi {
			lo, hi = hi, lo
		}
		return PosSub(hi, lo) == hi-lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewQuantum(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewQuantum(bad); err == nil {
			t.Errorf("NewQuantum(%v): want error", bad)
		}
	}
	q, err := NewQuantum(250)
	if err != nil {
		t.Fatalf("NewQuantum(250): %v", err)
	}
	if q.PerUnit() != 250 {
		t.Errorf("PerUnit = %g, want 250", q.PerUnit())
	}
	if q.IsZero() {
		t.Error("valid quantum reported IsZero")
	}
	var zero Quantum
	if !zero.IsZero() {
		t.Error("zero quantum not reported IsZero")
	}
}

func TestMustQuantumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustQuantum(-1) did not panic")
		}
	}()
	MustQuantum(-1)
}

func TestDefaultQuantum(t *testing.T) {
	q := DefaultQuantum()
	if q.PerUnit() != DefaultPerUnit {
		t.Errorf("default PerUnit = %g, want %d", q.PerUnit(), DefaultPerUnit)
	}
}

func TestTickConversionRoundTrip(t *testing.T) {
	q := MustQuantum(100)
	for _, units := range []float64{0, 1, 2.5, 0.01, 1234.56} {
		ticks := q.ToTicks(units)
		back := q.ToUnits(ticks)
		if math.Abs(back-units) > q.Resolution()/2+1e-12 {
			t.Errorf("round trip %g → %d → %g exceeds half a tick", units, ticks, back)
		}
	}
}

func TestToTicksRounding(t *testing.T) {
	q := MustQuantum(10)
	cases := []struct {
		units float64
		want  Tick
	}{
		{0.04, 0},
		{0.05, 1}, // round half away from zero
		{0.14, 1},
		{1.0, 10},
		{2.55, 26},
	}
	for _, c := range cases {
		if got := q.ToTicks(c.units); got != c.want {
			t.Errorf("ToTicks(%g) = %d, want %d", c.units, got, c.want)
		}
	}
	if got := q.ToTicksFloor(0.99); got != 9 {
		t.Errorf("ToTicksFloor(0.99) = %d, want 9", got)
	}
	if got := q.ToTicksFloor(1.0); got != 10 {
		t.Errorf("ToTicksFloor(1.0) = %d, want 10", got)
	}
}

func TestResolution(t *testing.T) {
	q := MustQuantum(200)
	if got := q.Resolution(); got != 0.005 {
		t.Errorf("Resolution = %g, want 0.005", got)
	}
}

func TestQuantumString(t *testing.T) {
	if s := MustQuantum(100).String(); s == "" {
		t.Error("empty String()")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.05, 0.1) {
		t.Error("1.0 ≈ 1.05 within 0.1 should hold")
	}
	if ApproxEqual(1.0, 1.2, 0.1) {
		t.Error("1.0 ≈ 1.2 within 0.1 should fail")
	}
}

func TestRelClose(t *testing.T) {
	if !RelClose(100, 101, 0.02, 0) {
		t.Error("100 vs 101 at 2%: want close")
	}
	if RelClose(100, 110, 0.02, 0) {
		t.Error("100 vs 110 at 2%: want far")
	}
	if !RelClose(1e-9, 0, 0.01, 1e-6) {
		t.Error("abs floor should absorb tiny values")
	}
}

func TestToTicksFloorNeverExceeds(t *testing.T) {
	q := MustQuantum(100)
	f := func(raw uint32) bool {
		units := float64(raw) / 1000
		return q.ToUnits(q.ToTicksFloor(units)) <= units+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
