// Package station holds the model of one machine in the network of
// workstations the paper's schedules live in: the cycle-stealing contract a
// workstation owner offers (usable lifespan U, interrupt bound p), the owner
// temperaments that sample contracts and play the interrupts, and the
// deterministic per-station rng derivation every engine shares.
//
// It is the dependency floor of the fleet layer: internal/farm drives
// stations against a shared job, internal/now composes them into fleets,
// and both import only this package for the model — which is what lets
// now.Fleet ride the farm engine without an import cycle.
package station

import (
	"math/rand"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
)

// Contract is one cycle-stealing opportunity offered by a workstation owner:
// the guaranteed lifespan and the interrupt allowance of §2.1.
type Contract struct {
	U quant.Tick
	P int
}

// OwnerModel samples the contracts a workstation owner offers and the
// interrupter that plays the owner during the opportunity.
type OwnerModel interface {
	// Sample draws the next contract. rng is owned by the caller's station.
	Sample(rng *rand.Rand) Contract
	// Interrupter builds the owner's in-opportunity behavior for a contract.
	Interrupter(rng *rand.Rand, c Contract) sim.Interrupter
	// Name labels the model in reports.
	Name() string
}

// Office models a nine-to-five owner: moderately long idle stretches
// (meetings, lunch) with a couple of possible returns, interrupting at
// exponentially distributed times.
type Office struct {
	MeanIdle quant.Tick // mean usable lifespan
	MaxP     int        // interrupt allowance per contract
}

// Sample implements OwnerModel.
func (o Office) Sample(rng *rand.Rand) Contract {
	u := quant.Tick(rng.ExpFloat64()*float64(o.MeanIdle)) + 1
	return Contract{U: u, P: o.MaxP}
}

// Interrupter implements OwnerModel: returns come as a Poisson stream with
// mean spacing half the lifespan — interruptions are likely but not certain.
func (o Office) Interrupter(rng *rand.Rand, c Contract) sim.Interrupter {
	return &adversary.Poisson{Rng: rng, Mean: float64(c.U) / 2}
}

// Name implements OwnerModel.
func (o Office) Name() string { return "office" }

// Laptop models the paper's motivating case: a machine that can be unplugged
// at any moment. Short lifespans, a single fatal interrupt, uniformly placed.
type Laptop struct {
	MeanIdle quant.Tick
}

// Sample implements OwnerModel.
func (l Laptop) Sample(rng *rand.Rand) Contract {
	u := quant.Tick(rng.ExpFloat64()*float64(l.MeanIdle)) + 1
	return Contract{U: u, P: 1}
}

// Interrupter implements OwnerModel.
func (l Laptop) Interrupter(rng *rand.Rand, c Contract) sim.Interrupter {
	return &adversary.Random{Rng: rng, Prob: 0.8}
}

// Name implements OwnerModel.
func (l Laptop) Name() string { return "laptop" }

// Overnight models lab machines lent for a fixed nightly window with a small
// chance of an early-morning return.
type Overnight struct {
	Window quant.Tick
}

// Sample implements OwnerModel.
func (o Overnight) Sample(rng *rand.Rand) Contract {
	return Contract{U: o.Window, P: 1}
}

// Interrupter implements OwnerModel.
func (o Overnight) Interrupter(rng *rand.Rand, c Contract) sim.Interrupter {
	return &adversary.Random{Rng: rng, Prob: 0.15}
}

// Name implements OwnerModel.
func (o Overnight) Name() string { return "overnight" }

// Malicious wraps any owner model with worst-case in-opportunity behavior:
// contracts are sampled from the base model, but the owner plays the
// equalization-damage heuristic. Used to measure guaranteed-style floors on
// fleet throughput.
type Malicious struct {
	Base  OwnerModel
	Setup quant.Tick
}

// Sample implements OwnerModel.
func (m Malicious) Sample(rng *rand.Rand) Contract { return m.Base.Sample(rng) }

// Interrupter implements OwnerModel.
func (m Malicious) Interrupter(rng *rand.Rand, c Contract) sim.Interrupter {
	return adversary.GreedyEqualization{C: m.Setup}
}

// Name implements OwnerModel.
func (m Malicious) Name() string { return "malicious(" + m.Base.Name() + ")" }

// Workstation is one machine in the fleet.
type Workstation struct {
	ID    int
	Owner OwnerModel
	Setup quant.Tick // per-period communication setup cost c to this machine
}

// SchedulerFactory builds a scheduler for a specific contract on a specific
// workstation (schedules depend on U, p and c).
type SchedulerFactory func(ws Workstation, c Contract) (model.EpisodeScheduler, error)

// MixedFleet builds the standard heterogeneous NOW used by the farm
// experiments (E11, E12) and the fleet-mode CLIs: offices, laptops and
// overnight lab machines round-robin, all with setup cost c. Keeping the
// owner mix in one place keeps CLI output comparable with the experiment
// tables.
func MixedFleet(stations int, c quant.Tick) []Workstation {
	fleet := make([]Workstation, stations)
	for i := range fleet {
		switch i % 3 {
		case 0:
			fleet[i] = Workstation{ID: i, Owner: Office{MeanIdle: 250 * c, MaxP: 2}, Setup: c}
		case 1:
			fleet[i] = Workstation{ID: i, Owner: Laptop{MeanIdle: 100 * c}, Setup: c}
		default:
			fleet[i] = Workstation{ID: i, Owner: Overnight{Window: 400 * c}, Setup: c}
		}
	}
	return fleet
}

// RNG derives station id's private contract stream from a run seed — the
// per-station half of the determinism contract shared by farm.Run,
// farm.RunDeterministic and now.Fleet.
//
// The (seed, id) pair is folded through a splitmix64 finalizer and drives a
// full-period 64-bit splitmix source, rather than the earlier
// seed ^ (id+1)·odd scheme fed to rand.NewSource. That scheme collided two
// ways: XOR mixing let any two stations replay each other's streams under
// related seeds (seed' = seed ^ (id+1)·K ^ (id'+1)·K), and rand.NewSource
// folds its seed mod 2³¹−1, so even perfectly mixed 64-bit seeds collide
// with birthday probability ≈ n²/2³² per run — ≈0.6% on a 5000-station
// fleet. Here the finalizer is a bijection of the mixed word and the full
// 64 bits become the source state, so for a fixed seed every station's
// stream is distinct (first draws included), and the pre-orbit scramble
// keeps neighbouring stations from being one-step-shifted copies of a
// shared counter orbit.
func RNG(seed int64, id int) *rand.Rand {
	x := uint64(seed) + (uint64(id)+1)*0x9E3779B97F4A7C15 // golden-gamma step
	return rand.New(&splitmix64{state: mix64(x)})
}

// mix64 is the splitmix64 finalizer — a bijective avalanche of the word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// splitmix64 is a full-period 64-bit rand.Source64 (Vigna's SplitMix64):
// the state walks a golden-gamma counter orbit and each output is the
// finalized state. Stations start at finalizer-scrambled orbit positions,
// so distinct states yield distinct streams and window overlaps between
// stations have probability ~ n²·len/2⁶⁴ — negligible at any fleet scale —
// where math/rand's own source would fold everything into 2³¹ states.
type splitmix64 struct{ state uint64 }

// Uint64 implements rand.Source64.
func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix64(s.state)
}

// Int63 implements rand.Source.
func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *splitmix64) Seed(seed int64) { s.state = mix64(uint64(seed)) }
