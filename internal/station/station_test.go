package station

import (
	"math/rand"
	"testing"
)

func TestOwnerModelsSampleSanely(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	models := []OwnerModel{
		Office{MeanIdle: 5000, MaxP: 3},
		Laptop{MeanIdle: 2000},
		Overnight{Window: 30000},
		Malicious{Base: Laptop{MeanIdle: 2000}, Setup: 10},
	}
	for _, m := range models {
		if m.Name() == "" {
			t.Errorf("%T: empty name", m)
		}
		for i := 0; i < 100; i++ {
			c := m.Sample(rng)
			if c.U < 1 {
				t.Fatalf("%s sampled lifespan %d", m.Name(), c.U)
			}
			if c.P < 0 {
				t.Fatalf("%s sampled interrupt bound %d", m.Name(), c.P)
			}
			if m.Interrupter(rng, c) == nil {
				t.Fatalf("%s returned nil interrupter", m.Name())
			}
		}
	}
}

func TestMixedFleetShape(t *testing.T) {
	fleet := MixedFleet(7, 50)
	if len(fleet) != 7 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	for i, ws := range fleet {
		if ws.ID != i {
			t.Errorf("station %d has ID %d", i, ws.ID)
		}
		if ws.Setup != 50 {
			t.Errorf("station %d setup %d", i, ws.Setup)
		}
		if ws.Owner == nil {
			t.Fatalf("station %d has no owner", i)
		}
	}
	if fleet[0].Owner.Name() != "office" || fleet[1].Owner.Name() != "laptop" || fleet[2].Owner.Name() != "overnight" {
		t.Errorf("owner mix broken: %s/%s/%s", fleet[0].Owner.Name(), fleet[1].Owner.Name(), fleet[2].Owner.Name())
	}
}

// The XOR scheme RNG replaced had a structural collision: for any station
// pair (id, id') the seed seed ^ (id+1)·K ^ (id'+1)·K replayed id's stream
// on id'. The splitmix64 mix must not reproduce it.
func TestRNGNoXORStyleCollision(t *testing.T) {
	const k = 0x5851F42D4C957F2D
	seed := int64(42)
	for _, pair := range [][2]int{{0, 1}, {3, 17}, {100, 1000}} {
		id, id2 := pair[0], pair[1]
		seed2 := seed ^ (int64(id)+1)*k ^ (int64(id2)+1)*k
		a := RNG(seed, id)
		b := RNG(seed2, id2)
		same := true
		for i := 0; i < 8; i++ {
			if a.Int63() != b.Int63() {
				same = false
				break
			}
		}
		if same {
			t.Errorf("streams (seed=%d,id=%d) and (seed=%d,id=%d) collide", seed, id, seed2, id2)
		}
	}
}

func TestRNGDistinctStationsDistinctStreams(t *testing.T) {
	seen := make(map[int64]int)
	for id := 0; id < 1000; id++ {
		v := RNG(7, id).Int63()
		if prev, dup := seen[v]; dup {
			t.Fatalf("stations %d and %d share a first draw", prev, id)
		}
		seen[v] = id
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := RNG(9, 4), RNG(9, 4)
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, id) diverged")
		}
	}
}

// A counter-orbit source seeded at consecutive golden steps would make
// station id+1's stream a one-step shift of station id's — the pre-orbit
// finalizer scramble must prevent that.
func TestRNGNeighbourStreamsNotShifted(t *testing.T) {
	a := RNG(1, 0)
	av := make([]int64, 9)
	for i := range av {
		av[i] = a.Int63()
	}
	for shift := 1; shift <= 2; shift++ {
		b := RNG(1, 1)
		same := true
		for i := 0; i+shift < len(av); i++ {
			if av[i+shift] != b.Int63() {
				same = false
				break
			}
		}
		if same {
			t.Errorf("station 1's stream is station 0's shifted by %d", shift)
		}
	}
}

// invMix64 inverts the splitmix64 finalizer (used to construct adversarial
// seeds below).
func invMix64(x uint64) uint64 {
	x ^= x>>31 ^ x>>62
	x *= 0x319642B2D24D8EC3
	x ^= x>>27 ^ x>>54
	x *= 0x96DE1B173F119089
	x ^= x>>30 ^ x>>60
	return x
}

// Feeding the mixed word to rand.NewSource — the replaced scheme — folded
// it mod 2³¹−1, so (seed, id) pairs whose *mixed* states are congruent mod
// 2³¹−1 collided on whole streams. Construct exactly such a pair via the
// finalizer inverse and require the streams to differ.
func TestRNGKeepsFull64BitState(t *testing.T) {
	for _, probe := range []uint64{1, 0xDEADBEEF, 1 << 40} {
		if invMix64(mix64(probe)) != probe {
			t.Fatalf("finalizer inverse broken at %#x", probe)
		}
	}
	const golden = 0x9E3779B97F4A7C15
	const m31 = uint64(1)<<31 - 1
	state := mix64(12345)
	// Two run seeds for station 0 whose mixed source states differ by
	// exactly 2³¹−1 — indistinguishable to math/rand's folded seeding.
	seedA := int64(invMix64(state) - golden)
	seedB := int64(invMix64(state+m31) - golden)
	a, b := RNG(seedA, 0), RNG(seedB, 0)
	same := true
	for i := 0; i < 8; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("mixed states congruent mod 2^31-1 collided on whole streams (seed folded to 31 bits?)")
	}
}
