// Package fault is the deterministic fault-injection layer of the stack: a
// seeded, replayable Plan of the failures the paper's model leaves out.
// The paper's guaranteed-output analysis treats owner interrupts as the only
// adversity; a production NOW fleet also loses whole stations abruptly
// (crashes, not graceful departures), drops cross-cluster steal messages in
// the network, and loses the scheduler process itself. The volunteer-
// computing checkpointing literature (arXiv:0711.3949) and the latency-priced
// stealing analysis (arXiv:1805.00857) both model loss and recovery
// explicitly; this package supplies the loss, and the farm/fleet layers
// supply the recovery (checkpoint prefixes, steal retries, WAL replay).
//
// A Plan is generative, not a trace: it names probabilities and scheduled
// events, and an Injector realizes them from the plan's seed. Because every
// draw happens at a deterministic point of the round-synchronized engines
// (crash sampling at round tops, parcel-loss sampling at barrier departures,
// both single-threaded), the realized fault sequence is a pure function of
// (Plan, engine evolution) — bit-identical at any worker count, and
// re-realizable: recovering a killed scheduler re-samples the same faults
// the original run saw, which is what pins a recovered run bit-identical to
// an uncrashed one.
//
// Faults are therefore only injectable into the deterministic engines
// (farm RunDeterministic and the resident fleet service); the live
// free-running engine has no deterministic points to stamp them onto, and
// the fleet facade rejects the combination.
package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultStealRetries is the cross-cluster retry budget when the plan does
// not set one: a dry cluster re-requests a lost steal this many times
// (with capped exponential backoff) before degrading to intra-cluster
// scanning for good.
const DefaultStealRetries = 3

// MaxBackoffShift caps the exponential steal backoff: the wait between
// retries doubles per consecutive loss up to latency·2^MaxBackoffShift.
const MaxBackoffShift = 3

// Crash schedules one explicit station crash: station slot Station crashes
// at the top of round Round, before the round plays.
type Crash struct {
	Round   int
	Station int
}

// Plan describes the faults to inject into one deterministic run. The zero
// value injects nothing and is bit-identical to a run without the plan.
type Plan struct {
	// Seed drives every probabilistic draw (crash and parcel-loss sampling).
	// 0 means the engine derives a stream from its own seed.
	Seed int64
	// CrashProb is each live station's per-round crash probability, in
	// [0, 1). A crash differs from a graceful leave: queued and in-flight
	// work on the crashed host is lost, and only checkpointed prefixes
	// (work already shipped back) survive.
	CrashProb float64
	// Crashes schedules explicit crashes on top of the sampled ones —
	// "station s dies at round r" for targeted experiments and tests.
	Crashes []Crash
	// LossProb is the probability each cross-cluster steal parcel is lost
	// in flight, in [0, 1). The requesting cluster detects the loss by a
	// round-priced timeout and retries with capped exponential backoff.
	LossProb float64
	// StealRetries bounds the retries after lost cross-cluster steals:
	// 0 means DefaultStealRetries, negative means none (the first loss
	// degrades the cluster to intra-cluster scanning for good).
	StealRetries int
	// KillRound, when > 0, kills the scheduler itself at the top of that
	// round: the resident service stops with ErrSchedulerKilled, losing
	// everything not yet in its write-ahead log. Recover the session with
	// fleet.RecoverService. Batch runs reject a kill (there is no log to
	// recover a batch run from).
	KillRound int
}

// Validate reports whether the plan is well-formed.
func (p Plan) Validate() error {
	if math.IsNaN(p.CrashProb) || p.CrashProb < 0 || p.CrashProb >= 1 {
		return fmt.Errorf("fault: crash probability must be in [0, 1), got %g", p.CrashProb)
	}
	if math.IsNaN(p.LossProb) || p.LossProb < 0 || p.LossProb >= 1 {
		return fmt.Errorf("fault: parcel loss probability must be in [0, 1), got %g", p.LossProb)
	}
	if p.KillRound < 0 {
		return fmt.Errorf("fault: kill round must be ≥ 0, got %d", p.KillRound)
	}
	for i, c := range p.Crashes {
		if c.Round < 0 || c.Station < 0 {
			return fmt.Errorf("fault: crash %d must name a round ≥ 0 and station ≥ 0, got round %d station %d", i, c.Round, c.Station)
		}
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool {
	return p.CrashProb > 0 || p.LossProb > 0 || p.KillRound > 0 || len(p.Crashes) > 0
}

// Retries resolves the steal-retry budget: the plan's own, the default, or
// zero for "degrade on first loss".
func (p Plan) Retries() int {
	switch {
	case p.StealRetries > 0:
		return p.StealRetries
	case p.StealRetries < 0:
		return 0
	default:
		return DefaultStealRetries
	}
}

// Injector realizes one run's faults from the plan. One injector serves one
// run: its rng stream advances with every probabilistic draw, so the
// realized sequence is a pure function of (Plan, draw order), and the
// deterministic engines draw in a fixed order (crash sampling per live slot
// at round tops, loss sampling per departure at barriers). An Injector is
// not safe for concurrent use; the engines only touch it between rounds.
type Injector struct {
	plan    Plan
	rng     *rand.Rand
	crashes map[int][]int // round → stations, from the explicit schedule
}

// NewInjector compiles the plan. defaultSeed seeds the draw stream when the
// plan itself does not (engines pass a stream derived from their own seed,
// so a zero-seed plan is still replayable from the run's key).
func (p Plan) NewInjector(defaultSeed int64) *Injector {
	seed := p.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	in := &Injector{plan: p, rng: rand.New(rand.NewSource(seed))}
	if len(p.Crashes) > 0 {
		in.crashes = make(map[int][]int, len(p.Crashes))
		for _, c := range p.Crashes {
			in.crashes[c.Round] = append(in.crashes[c.Round], c.Station)
		}
	}
	return in
}

// Plan returns the plan the injector realizes.
func (in *Injector) Plan() Plan { return in.plan }

// ScheduledCrashes returns the stations explicitly scheduled to crash at
// the given round, in schedule order.
func (in *Injector) ScheduledCrashes(round int) []int { return in.crashes[round] }

// SampleCrash draws one station's per-round crash. Engines must call it for
// every live slot in slot order so the stream stays a pure function of the
// fleet evolution. It never draws when the plan's crash probability is zero,
// so plans without sampled crashes leave the stream untouched.
func (in *Injector) SampleCrash() bool {
	if in.plan.CrashProb <= 0 {
		return false
	}
	return in.rng.Float64() < in.plan.CrashProb
}

// SampleLoss draws one cross-cluster parcel's loss, called once per
// departure at a round barrier. Like SampleCrash it never draws when the
// loss probability is zero.
func (in *Injector) SampleLoss() bool {
	if in.plan.LossProb <= 0 {
		return false
	}
	return in.rng.Float64() < in.plan.LossProb
}

// Retries reports the resolved steal-retry budget.
func (in *Injector) Retries() int { return in.plan.Retries() }

// KillsAt reports whether the plan kills the scheduler at this round.
func (in *Injector) KillsAt(round int) bool {
	return in.plan.KillRound > 0 && round == in.plan.KillRound
}

// Backoff prices the wait before cross-steal retry number fails (1-based
// consecutive losses) in steal-clock units: latency·2^(fails−1), capped at
// latency·2^MaxBackoffShift.
func Backoff(latency int64, fails int) int64 {
	shift := fails - 1
	if shift < 0 {
		shift = 0
	}
	if shift > MaxBackoffShift {
		shift = MaxBackoffShift
	}
	return latency << shift
}
