package fault

import (
	"math"
	"testing"
)

func TestPlanValidate(t *testing.T) {
	good := []Plan{
		{},
		{CrashProb: 0.5, LossProb: 0.99, KillRound: 3, StealRetries: -1},
		{Crashes: []Crash{{Round: 0, Station: 0}, {Round: 9, Station: 4}}},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %d should validate: %v", i, err)
		}
	}
	bad := []Plan{
		{CrashProb: 1},
		{CrashProb: -0.1},
		{CrashProb: math.NaN()},
		{LossProb: 1.5},
		{KillRound: -1},
		{Crashes: []Crash{{Round: -1, Station: 0}}},
		{Crashes: []Crash{{Round: 0, Station: -2}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d should fail validation: %+v", i, p)
		}
	}
}

func TestPlanActive(t *testing.T) {
	if (Plan{}).Active() {
		t.Error("zero plan must be inactive")
	}
	for _, p := range []Plan{
		{CrashProb: 0.01}, {LossProb: 0.01}, {KillRound: 1},
		{Crashes: []Crash{{Round: 0, Station: 0}}},
	} {
		if !p.Active() {
			t.Errorf("plan %+v should be active", p)
		}
	}
	// StealRetries alone configures recovery, not a fault.
	if (Plan{StealRetries: 5}).Active() {
		t.Error("a bare retry budget injects nothing")
	}
}

func TestRetriesResolution(t *testing.T) {
	if got := (Plan{}).Retries(); got != DefaultStealRetries {
		t.Errorf("default retries = %d, want %d", got, DefaultStealRetries)
	}
	if got := (Plan{StealRetries: 7}).Retries(); got != 7 {
		t.Errorf("explicit retries = %d, want 7", got)
	}
	if got := (Plan{StealRetries: -1}).Retries(); got != 0 {
		t.Errorf("negative retries = %d, want 0", got)
	}
}

// TestInjectorReplaysFromSeed is the package's determinism pin: two
// injectors compiled from the same plan realize the identical fault
// sequence, and a different seed realizes a different one.
func TestInjectorReplaysFromSeed(t *testing.T) {
	plan := Plan{Seed: 42, CrashProb: 0.3, LossProb: 0.4}
	realize := func(in *Injector) []bool {
		var out []bool
		for i := 0; i < 200; i++ {
			// Interleave the two draw kinds the way a run would.
			out = append(out, in.SampleCrash(), in.SampleLoss())
		}
		return out
	}
	a := realize(plan.NewInjector(0))
	b := realize(plan.NewInjector(0))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed injectors diverge at draw %d", i)
		}
	}
	other := Plan{Seed: 43, CrashProb: 0.3, LossProb: 0.4}
	c := realize(other.NewInjector(0))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds realized the identical 400-draw sequence")
	}
}

// TestInjectorZeroProbDrawsNothing pins the stream-stability contract:
// sampling a zero-probability fault consumes no rng state, so adding an
// inert axis to a plan never perturbs the realized sequence of the others.
func TestInjectorZeroProbDrawsNothing(t *testing.T) {
	with := Plan{Seed: 9, LossProb: 0.5}
	without := Plan{Seed: 9, LossProb: 0.5, CrashProb: 0}
	a, b := with.NewInjector(0), without.NewInjector(0)
	for i := 0; i < 100; i++ {
		if a.SampleLoss() != func() bool { b.SampleCrash(); return b.SampleLoss() }() {
			t.Fatalf("inert crash sampling perturbed the loss stream at draw %d", i)
		}
	}
}

func TestInjectorDefaultSeed(t *testing.T) {
	plan := Plan{CrashProb: 0.5}
	a, b := plan.NewInjector(7), plan.NewInjector(7)
	for i := 0; i < 50; i++ {
		if a.SampleCrash() != b.SampleCrash() {
			t.Fatalf("default-seeded injectors diverge at draw %d", i)
		}
	}
}

func TestScheduledCrashes(t *testing.T) {
	plan := Plan{Crashes: []Crash{{Round: 2, Station: 1}, {Round: 2, Station: 5}, {Round: 4, Station: 0}}}
	in := plan.NewInjector(1)
	if got := in.ScheduledCrashes(2); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Errorf("round 2 crashes = %v, want [1 5]", got)
	}
	if got := in.ScheduledCrashes(3); got != nil {
		t.Errorf("round 3 crashes = %v, want none", got)
	}
}

func TestKillsAt(t *testing.T) {
	in := Plan{KillRound: 5}.NewInjector(1)
	if in.KillsAt(4) || !in.KillsAt(5) || in.KillsAt(6) {
		t.Error("KillsAt must fire exactly at the kill round")
	}
	if (Plan{}).NewInjector(1).KillsAt(0) {
		t.Error("a zero kill round never kills (round 0 included)")
	}
}

func TestBackoff(t *testing.T) {
	cases := []struct {
		fails int
		want  int64
	}{{1, 100}, {2, 200}, {3, 400}, {4, 800}, {5, 800}, {9, 800}, {0, 100}}
	for _, tc := range cases {
		if got := Backoff(100, tc.fails); got != tc.want {
			t.Errorf("Backoff(100, %d) = %d, want %d", tc.fails, got, tc.want)
		}
	}
}
