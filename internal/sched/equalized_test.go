package sched

import (
	"math"
	"math/rand"
	"testing"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/theory"
)

func TestEqualizedPeriodsSumToL(t *testing.T) {
	c := 1.0
	for p := 1; p <= 8; p++ {
		for _, L := range []float64{10, 100, 5000, 100000} {
			periods := EqualizedPeriodsUnits(p, L, c)
			var sum float64
			for _, tk := range periods {
				sum += tk
				if tk <= 0 {
					t.Fatalf("p=%d L=%g: nonpositive period", p, L)
				}
			}
			if !quant.ApproxEqual(sum, L, 1e-6) {
				t.Errorf("p=%d L=%g: periods sum to %g", p, L, sum)
			}
		}
	}
}

func TestEqualizedFirstPeriodMatchesAlpha(t *testing.T) {
	c := 1.0
	L := 100000.0
	for p := 1; p <= 6; p++ {
		periods := EqualizedPeriodsUnits(p, L, c)
		want := theory.EqualizedAlpha(p) * math.Sqrt(2*c*L)
		if math.Abs(periods[0]-want) > 0.01*want {
			t.Errorf("p=%d: t_1 = %g, want α_p√(2cL) = %g", p, periods[0], want)
		}
	}
}

func TestEqualizedLengthMatchesKp(t *testing.T) {
	// m ≈ K_p·√(2L/c): the schedule-length/deficit duality.
	c := 1.0
	L := 50000.0
	for p := 1; p <= 5; p++ {
		m := len(EqualizedPeriodsUnits(p, L, c))
		want := theory.EqualizedM(L, p, c)
		if math.Abs(float64(m-want)) > 0.1*float64(want)+10 {
			t.Errorf("p=%d: m = %d, want ≈ %d", p, m, want)
		}
	}
}

func TestEqualizedP1MatchesOptimalLadder(t *testing.T) {
	// At p = 1 the equalization schedule is §5.2's ladder: steps of ≈ c.
	c := 1.0
	periods := EqualizedPeriodsUnits(1, 20000, c)
	for i := 0; i+1 < len(periods)-3; i++ { // skip the handover tail
		step := periods[i] - periods[i+1]
		if step < 0.5*c || step > 1.5*c {
			t.Errorf("step t_%d−t_%d = %g, want ≈ c", i+1, i+2, step)
		}
	}
}

func TestEqualizedZeroWorkRegime(t *testing.T) {
	if p := EqualizedPeriodsUnits(3, 3.5, 1); len(p) != 1 {
		t.Errorf("zero-work regime should be a single period, got %v", p)
	}
	if p := EqualizedPeriodsUnits(0, 100, 1); len(p) != 1 {
		t.Errorf("p=0 should be a single period, got %v", p)
	}
}

func TestAdaptiveEqualizedEpisodeContract(t *testing.T) {
	eq, err := NewAdaptiveEqualized(100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		p := rng.Intn(6)
		L := quant.Tick(1 + rng.Intn(200000))
		ep := eq.Episode(p, L)
		if ep.Total() != L {
			t.Fatalf("p=%d L=%d: episode totals %d", p, L, ep.Total())
		}
		for _, tk := range ep {
			if tk < 1 {
				t.Fatalf("p=%d L=%d: bad period %d", p, L, tk)
			}
		}
	}
	if eq.Episode(1, 0) != nil {
		t.Error("L=0 should be nil")
	}
	if _, err := NewAdaptiveEqualized(0); err == nil {
		t.Error("c=0 accepted")
	}
	if eq.Name() == "" {
		t.Error("empty name")
	}
}

func TestGuidelineVariantMatchesDefault(t *testing.T) {
	c := quant.Tick(50)
	def, err := NewAdaptiveGuideline(c)
	if err != nil {
		t.Fatal(err)
	}
	variant := GuidelineVariant{C: c, Variant: "default"}
	for _, p := range []int{1, 2, 3} {
		for _, L := range []quant.Tick{500, 5000, 50000} {
			a := def.Episode(p, L)
			b := variant.Episode(p, L)
			if len(a) != len(b) {
				t.Fatalf("p=%d L=%d: lengths differ %d vs %d", p, L, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("p=%d L=%d: period %d differs %d vs %d", p, L, i, a[i], b[i])
				}
			}
		}
	}
	if variant.Name() == "" {
		t.Error("empty variant name")
	}
}

func TestGuidelineVariantKnobs(t *testing.T) {
	c := quant.Tick(50)
	L := quant.Tick(50000)
	noTail := GuidelineVariant{C: c, Cfg: GuidelineConfig{TailCount: func(p int) int { return 0 }}}
	ep := noTail.Episode(2, L)
	// Without the (3/2)c tail the final period is the adjustment period.
	if got := ep[len(ep)-1]; got == 75 {
		t.Errorf("no-tail variant still ends with a 1.5c period (%d)", got)
	}
	negTail := GuidelineVariant{C: c, Cfg: GuidelineConfig{TailCount: func(p int) int { return -3 }}}
	if negTail.Episode(2, L).Total() != L {
		t.Error("negative tail count should clamp and still partition L")
	}
	badSlope := GuidelineVariant{C: c, Cfg: GuidelineConfig{RampStep: func(p int, cf float64) float64 { return -1 }}}
	if badSlope.Episode(2, L).Total() != L {
		t.Error("nonpositive slope should clamp and still partition L")
	}
	if (GuidelineVariant{C: c}).Episode(0, 100) == nil {
		t.Error("p=0 should yield the single period")
	}
	if (GuidelineVariant{C: c}).Episode(1, 0) != nil {
		t.Error("L=0 should be nil")
	}
}

func TestNonAdaptiveFromPeriodsValidation(t *testing.T) {
	if _, err := NonAdaptiveFromPeriods(nil, 1, 10); err == nil {
		t.Error("empty periods accepted")
	}
	if _, err := NonAdaptiveFromPeriods(model.TickSchedule{5}, -1, 10); err == nil {
		t.Error("p<0 accepted")
	}
	if _, err := NonAdaptiveFromPeriods(model.TickSchedule{5, 0}, 1, 10); err == nil {
		t.Error("zero period accepted")
	}
}
