package sched

// The episode memo: schedulers in this package are pure functions of
// (p, L) once their setup cost is fixed, so the episodes a station replays
// across thousands of opportunities can be served from a bounded cache
// instead of being rebuilt (√-ramp float math, quantization) every time.
// The farm engine keeps one Memo per station and re-Binds it to whatever
// scheduler the factory returns per contract; as long as the scheduler's
// EpisodeMemoKey is unchanged, the cache stays warm across contracts.

import (
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
)

// DefaultMemoEntries is the episode-cache bound the farm engine uses per
// station: big enough that the handful of distinct (p, L) pairs a station
// replays in a fleet study all fit, small enough that a thousand-station
// fleet's caches stay in the megabytes.
const DefaultMemoEntries = 512

type memoKey struct {
	p int
	L quant.Tick
}

// Memo is a bounded, deterministic episode cache wrapped around an
// EpisodeScheduler. It serves AppendEpisode from a (p, L)-keyed map when the
// inner scheduler declares (via model.EpisodeMemoKeyer) that its episodes
// are a pure function of (p, L); because the cached episodes are exactly
// what the inner scheduler would emit, results are bit-identical with the
// cache on or off. Eviction is FIFO over insertion order, so cache contents
// are a pure function of the miss sequence — no clocks, no randomness —
// keeping the deterministic engines deterministic.
//
// A Memo belongs to one goroutine (the farm engine keeps one per station);
// it is not safe for concurrent use.
// coldRebinds is how many consecutive useless bindings (cache replaced
// without ever serving a hit) a Memo tolerates before concluding the
// caller's keys churn per contract and dropping to passthrough. Churning
// keys would otherwise rebuild the cache map every opportunity — paying for
// the cache on exactly the workloads it cannot help.
const coldRebinds = 4

type Memo struct {
	inner model.EpisodeScheduler
	key   model.MemoKey
	max   int
	cache map[memoKey]model.TickSchedule
	order []memoKey // insertion ring; order[next] is the next eviction victim
	next  int
	hits  int64
	miss  int64
	bound bool // a scheduler has been bound since the last reset
	// cold counts consecutive key changes that discarded a never-hit cache;
	// at coldRebinds the memo disables itself (Bind returns schedulers
	// unwrapped). Driven only by the station's own deterministic bind/episode
	// sequence, so the deterministic engines stay deterministic.
	cold     int
	disabled bool
	prevHits int64
}

// NewMemo returns an empty episode cache holding at most maxEntries episodes
// (≤ 0 means DefaultMemoEntries).
func NewMemo(maxEntries int) *Memo {
	if maxEntries <= 0 {
		maxEntries = DefaultMemoEntries
	}
	return &Memo{max: maxEntries}
}

// Bind attaches the memo to a scheduler and returns the scheduler the caller
// should drive. Schedulers that don't declare a memo key are returned
// unwrapped — their episodes may depend on state a (p, L) cache can't see.
// When the key matches the previous binding, both the warm cache and the
// previously bound inner scheduler are kept: equal keys mean identical
// episode functions, and the retained instance has warm scratch buffers
// where the factory's fresh one would recompute cold. A key change resets
// everything to the new scheduler — and if the discarded cache never served
// a hit coldRebinds times in a row, the keys evidently churn per contract
// and the memo turns itself off rather than thrash.
func (m *Memo) Bind(s model.EpisodeScheduler) model.EpisodeScheduler {
	if m.disabled {
		return s
	}
	k, ok := keyOf(s)
	if !ok {
		// Unkeyed schedulers pass through; if the memo has never served a
		// hit, they also count toward disabling, so an all-unkeyed factory
		// (e.g. per-contract NonAdaptive) pays one boolean check per
		// opportunity instead of a failed interface assertion forever.
		if m.hits == 0 {
			m.cold++
			if m.cold >= coldRebinds {
				m.drop()
			}
		}
		return s
	}
	if m.bound && k == m.key {
		return m
	}
	if m.bound {
		if m.hits == m.prevHits {
			m.cold++
			if m.cold >= coldRebinds {
				m.drop()
				return s
			}
		} else {
			m.cold = 0
		}
	}
	m.bound = true
	m.prevHits = m.hits
	m.key = k
	m.cache = nil // allocated lazily on the first miss
	m.order = m.order[:0]
	m.next = 0
	m.inner = s
	return m
}

func keyOf(s model.EpisodeScheduler) (model.MemoKey, bool) {
	if mk, ok := s.(model.EpisodeMemoKeyer); ok {
		return mk.EpisodeMemoKey()
	}
	return model.MemoKey{}, false
}

// drop permanently disables the memo and releases its memory.
func (m *Memo) drop() {
	m.disabled = true
	m.cache = nil
	m.order = nil
	m.inner = nil
}

// Hits and Misses report the cache's lifetime counters (testing and
// diagnostics).
func (m *Memo) Hits() int64   { return m.hits }
func (m *Memo) Misses() int64 { return m.miss }

// Len reports the number of cached episodes.
func (m *Memo) Len() int { return len(m.cache) }

// Episode implements model.EpisodeScheduler. It always returns a fresh
// slice, so callers may mutate the result without poisoning the cache.
func (m *Memo) Episode(p int, L quant.Tick) model.TickSchedule {
	ep := m.AppendEpisode(nil, p, L)
	if len(ep) == 0 {
		return nil
	}
	return ep
}

// AppendEpisode implements model.EpisodeAppender: cache hits copy the stored
// episode into dst (zero allocations once dst has capacity); misses compute
// through the inner scheduler's append path and store a private copy.
func (m *Memo) AppendEpisode(dst model.TickSchedule, p int, L quant.Tick) model.TickSchedule {
	k := memoKey{p: p, L: L}
	if ep, ok := m.cache[k]; ok {
		m.hits++
		return append(dst, ep...)
	}
	m.miss++
	base := len(dst)
	dst = model.AppendEpisode(m.inner, dst, p, L)
	m.put(k, dst[base:])
	return dst
}

// put stores a private copy of the episode, evicting the oldest entry once
// the bound is reached.
func (m *Memo) put(k memoKey, ep model.TickSchedule) {
	if m.cache == nil {
		m.cache = make(map[memoKey]model.TickSchedule)
	}
	if len(m.cache) >= m.max {
		delete(m.cache, m.order[m.next])
		m.order[m.next] = k
		m.next++
		if m.next == m.max {
			m.next = 0
		}
	} else {
		m.order = append(m.order, k)
	}
	stored := make(model.TickSchedule, len(ep))
	copy(stored, ep)
	m.cache[k] = stored
}

// Name implements model.Namer, delegating to the bound scheduler so
// simulator error messages keep naming the real policy.
func (m *Memo) Name() string { return model.NameOf(m.inner) }
