package sched

import (
	"math"
	"math/rand"
	"testing"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/theory"
)

func TestEqualSplitHelper(t *testing.T) {
	s := equalSplit(10, 3)
	if s.Total() != 10 || len(s) != 3 {
		t.Fatalf("equalSplit(10,3) = %v", s)
	}
	for _, tk := range s {
		if tk < 3 || tk > 4 {
			t.Errorf("uneven split: %v", s)
		}
	}
	if s := equalSplit(5, 0); len(s) != 1 || s[0] != 5 {
		t.Errorf("k=0 should clamp to 1: %v", s)
	}
	if s := equalSplit(3, 10); len(s) != 3 {
		t.Errorf("k>L should clamp to L periods of 1: %v", s)
	}
}

func TestNewNonAdaptiveParameters(t *testing.T) {
	if _, err := NewNonAdaptive(0, 1, 1); err == nil {
		t.Error("U=0 accepted")
	}
	if _, err := NewNonAdaptive(10, -1, 1); err == nil {
		t.Error("p<0 accepted")
	}
	if _, err := NewNonAdaptive(10, 1, 0); err == nil {
		t.Error("c=0 accepted")
	}
}

func TestNonAdaptiveMMatchesGuideline(t *testing.T) {
	// §3.1: m = ⌊√(pU/c)⌋.
	cases := []struct {
		U, c quant.Tick
		p    int
	}{
		{10000, 100, 1},
		{10000, 100, 4},
		{50000, 100, 2},
		{400, 100, 1},
	}
	for _, cs := range cases {
		s, err := NewNonAdaptive(cs.U, cs.p, cs.c)
		if err != nil {
			t.Fatal(err)
		}
		want := theory.NonAdaptiveM(float64(cs.U), cs.p, float64(cs.c))
		if s.M() != want {
			t.Errorf("U=%d p=%d: m = %d, want %d", cs.U, cs.p, s.M(), want)
		}
	}
}

func TestNonAdaptiveP0IsSinglePeriod(t *testing.T) {
	s, err := NewNonAdaptive(5000, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 1 {
		t.Errorf("p=0 m = %d, want 1", s.M())
	}
}

func TestNonAdaptivePeriodsPartitionU(t *testing.T) {
	s, err := NewNonAdaptive(10007, 3, 97)
	if err != nil {
		t.Fatal(err)
	}
	periods := s.Periods()
	if err := periods.Validate(10007); err != nil {
		t.Errorf("periods are not an exact partition: %v", err)
	}
	// Equal up to one tick.
	var lo, hi quant.Tick = math.MaxInt64, 0
	for _, tk := range periods {
		if tk < lo {
			lo = tk
		}
		if tk > hi {
			hi = tk
		}
	}
	if hi-lo > 1 {
		t.Errorf("periods not equal within one tick: min %d max %d", lo, hi)
	}
}

func TestNonAdaptiveEpisodeFullAtStart(t *testing.T) {
	s, err := NewNonAdaptive(10000, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	ep := s.Episode(2, 10000)
	if ep.Total() != 10000 || len(ep) != s.M() {
		t.Errorf("initial episode should be the whole schedule, got %d periods totalling %d", len(ep), ep.Total())
	}
}

func TestNonAdaptiveTailSemantics(t *testing.T) {
	s, err := NewNonAdaptive(1000, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	periods := s.Periods()
	prefix := periods.PrefixSums()
	// Interrupt at the end of period 3: residual = U − T_3, tail = periods 4….
	L := 1000 - prefix[3]
	tail := s.Episode(1, L)
	if len(tail) != len(periods)-3 {
		t.Fatalf("tail has %d periods, want %d", len(tail), len(periods)-3)
	}
	for i, tk := range tail {
		if tk != periods[3+i] {
			t.Errorf("tail[%d] = %d, want %d", i, tk, periods[3+i])
		}
	}
	// Mid-period interrupt: elapsed inside period 3 ⇒ tail starts at period 4
	// and undershoots the residual (the skipped remainder is idle).
	Lmid := 1000 - (prefix[2] + 1)
	tailMid := s.Episode(1, Lmid)
	if len(tailMid) != len(periods)-3 {
		t.Fatalf("mid-period tail has %d periods, want %d", len(tailMid), len(periods)-3)
	}
	if tailMid.Total() >= Lmid {
		t.Errorf("mid-period tail should undershoot the residual: %d ≥ %d", tailMid.Total(), Lmid)
	}
}

func TestNonAdaptiveAfterLastInterruptLongPeriod(t *testing.T) {
	s, err := NewNonAdaptive(1000, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	ep := s.Episode(0, 345)
	if len(ep) != 1 || ep[0] != 345 {
		t.Errorf("after p-th interrupt want one long period of 345, got %v", ep)
	}
}

func TestNonAdaptiveEpisodeEdges(t *testing.T) {
	s, err := NewNonAdaptive(100, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ep := s.Episode(1, 0); ep != nil {
		t.Errorf("L=0 should yield nil episode, got %v", ep)
	}
	// Interrupt during the final period: nothing remains.
	if ep := s.Episode(1, 1); len(ep) != 0 {
		t.Errorf("interrupt inside final period leaves no tail, got %v", ep)
	}
	// L > U: excess treated as preceding idle; full schedule returned.
	if ep := s.Episode(1, 200); ep.Total() != 100 {
		t.Errorf("oversized residual should return the full schedule, got %v", ep)
	}
}

func TestGuidelinePeriodsStructure(t *testing.T) {
	c := 1.0
	for p := 1; p <= 6; p++ {
		U := 20000.0
		periods := GuidelinePeriodsUnits(p, U, c)
		var sum float64
		for _, tk := range periods {
			sum += tk
			if tk <= 0 {
				t.Fatalf("p=%d: nonpositive period %g", p, tk)
			}
		}
		if !quant.ApproxEqual(sum, U, 1e-6) {
			t.Errorf("p=%d: periods sum to %g, want %g", p, sum, U)
		}
		// Tail: ℓ_p periods of exactly (3/2)c.
		ellp := theory.GuidelineTailCount(p)
		m := len(periods)
		if m < ellp+1 {
			t.Fatalf("p=%d: only %d periods for tail %d", p, m, ellp)
		}
		for i := m - ellp; i < m; i++ {
			if !quant.ApproxEqual(periods[i], 1.5*c, 1e-9) {
				t.Errorf("p=%d: tail period %d = %g, want %g", p, i, periods[i], 1.5*c)
			}
		}
		// Ramp descends monotonically toward the adjustment period.
		for i := 0; i+1 < m-ellp; i++ {
			if periods[i] < periods[i+1]-1e-9 {
				t.Errorf("p=%d: ramp not descending at %d: %g < %g", p, i, periods[i], periods[i+1])
			}
		}
	}
}

func TestGuidelineRampStepMatchesDelta(t *testing.T) {
	// Interior ramp steps equal δ = 4^{1−p}c (first period absorbs residue,
	// so start checking from the second).
	c := 1.0
	for p := 1; p <= 4; p++ {
		periods := GuidelinePeriodsUnits(p, 50000, c)
		ellp := theory.GuidelineTailCount(p)
		m := len(periods)
		delta := theory.GuidelineRampStep(p, c)
		for i := 1; i+1 < m-ellp-1; i++ {
			got := periods[i] - periods[i+1]
			if !quant.ApproxEqual(got, delta, 1e-9) {
				t.Fatalf("p=%d: step at %d = %g, want %g", p, i, got, delta)
			}
		}
	}
}

func TestGuidelineP1MatchesTable2Shape(t *testing.T) {
	// Table 2: m ≈ ⌊√(2U/c)⌋ + 2; terminal two periods = (3/2)c. Both the
	// paper's column and our reconstruction are approximations whose period
	// counts drift by O(1) from each other (the paper's own period formulas
	// do not sum exactly to U either); allow a constant-width band.
	c := 1.0
	for _, U := range []float64{1000, 5000, 20000} {
		periods := GuidelinePeriodsUnits(1, U, c)
		m := len(periods)
		want := theory.GuidelineM(U, 1, c)
		if m < want-5 || m > want+5 {
			t.Errorf("U=%g: m = %d, want ≈ %d", U, m, want)
		}
		if !quant.ApproxEqual(periods[m-1], 1.5*c, 1e-9) || !quant.ApproxEqual(periods[m-2], 1.5*c, 1e-9) {
			t.Errorf("U=%g: terminal periods %g, %g, want 3c/2", U, periods[m-2], periods[m-1])
		}
	}
}

func TestGuidelineZeroWorkRegimeFallsBack(t *testing.T) {
	periods := GuidelinePeriodsUnits(3, 3.5, 1) // U ≤ (p+1)c
	if len(periods) != 1 {
		t.Errorf("zero-work regime should yield a single period, got %v", periods)
	}
}

func TestGuidelineSmallUFallback(t *testing.T) {
	// Above the zero-work threshold but below the canonical shape.
	p, c := 2, 1.0
	U := 4.0 // (p+1)c = 3 < U < base ≈ 5.5
	periods := GuidelinePeriodsUnits(p, U, c)
	var sum float64
	for _, tk := range periods {
		sum += tk
		if tk <= 0 {
			t.Fatalf("nonpositive fallback period in %v", periods)
		}
	}
	if !quant.ApproxEqual(sum, U, 1e-9) {
		t.Errorf("fallback periods sum to %g, want %g", sum, U)
	}
}

func TestAdaptiveGuidelineEpisodeContract(t *testing.T) {
	g, err := NewAdaptiveGuideline(100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := rng.Intn(5)
		L := quant.Tick(1 + rng.Intn(100000))
		ep := g.Episode(p, L)
		if len(ep) == 0 {
			t.Fatalf("p=%d L=%d: empty episode", p, L)
		}
		if got := ep.Total(); got != L {
			t.Fatalf("p=%d L=%d: episode totals %d", p, L, got)
		}
		for i, tk := range ep {
			if tk < 1 {
				t.Fatalf("p=%d L=%d: period %d = %d", p, L, i, tk)
			}
		}
	}
	if ep := g.Episode(2, 0); ep != nil {
		t.Errorf("L=0 should yield nil, got %v", ep)
	}
	if _, err := NewAdaptiveGuideline(0); err == nil {
		t.Error("c=0 accepted")
	}
}

func TestOptimalP1PeriodsUnitsStructure(t *testing.T) {
	c := 1.0
	for _, U := range []float64{10, 100, 1000, 33333} {
		periods := OptimalP1PeriodsUnits(U, c)
		var sum float64
		for _, tk := range periods {
			sum += tk
		}
		if !quant.ApproxEqual(sum, U, 1e-6) {
			t.Errorf("U=%g: sum %g", U, sum)
		}
		m := len(periods)
		if U > 2*c {
			wantM := theory.OptimalP1MAdjusted(U, c)
			if m != wantM {
				t.Errorf("U=%g: m = %d, want %d", U, m, wantM)
			}
			if !quant.ApproxEqual(periods[m-1], periods[m-2], 1e-9) {
				t.Errorf("U=%g: last two periods differ", U)
			}
		}
	}
	if periods := OptimalP1PeriodsUnits(1.5, 1); len(periods) != 1 {
		t.Errorf("zero-work regime should be one period, got %v", periods)
	}
}

func TestOptimalP1EpisodeContract(t *testing.T) {
	s, err := NewOptimalP1(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, L := range []quant.Tick{1, 150, 999, 12345, 100000} {
		ep := s.Episode(1, L)
		if ep.Total() != L {
			t.Errorf("L=%d: total %d", L, ep.Total())
		}
	}
	if ep := s.Episode(0, 777); len(ep) != 1 || ep[0] != 777 {
		t.Errorf("p=0 should be one long period, got %v", ep)
	}
	if _, err := NewOptimalP1(0); err == nil {
		t.Error("c=0 accepted")
	}
}

func TestBaselineSchedulers(t *testing.T) {
	var (
		sp SinglePeriod
		es = EqualSplit{M: 4}
		fc = FixedChunk{T: 30}
	)
	if ep := sp.Episode(3, 100); len(ep) != 1 || ep[0] != 100 {
		t.Errorf("single-period: %v", ep)
	}
	if ep := es.Episode(1, 103); len(ep) != 4 || ep.Total() != 103 {
		t.Errorf("equal-split: %v", ep)
	}
	ep := fc.Episode(1, 100)
	if len(ep) != 4 || ep.Total() != 100 {
		t.Errorf("fixed-chunk: %v", ep)
	}
	if ep[0] != 30 || ep[3] != 10 {
		t.Errorf("fixed-chunk shape: %v", ep)
	}
	if ep := fc.Episode(1, 20); len(ep) != 1 || ep[0] != 20 {
		t.Errorf("fixed-chunk smaller than T: %v", ep)
	}
	if ep := (FixedChunk{T: 0}).Episode(0, 3); ep.Total() != 3 {
		t.Errorf("fixed-chunk T=0 clamps to 1: %v", ep)
	}
	if sp.Episode(0, 0) != nil || es.Episode(0, 0) != nil || fc.Episode(0, 0) != nil {
		t.Error("L=0 should yield nil across baselines")
	}
}

func TestSchedulerNames(t *testing.T) {
	na, _ := NewNonAdaptive(100, 1, 10)
	g, _ := NewAdaptiveGuideline(10)
	o, _ := NewOptimalP1(10)
	for _, s := range []model.EpisodeScheduler{na, g, o, SinglePeriod{}, EqualSplit{M: 2}, FixedChunk{T: 5}} {
		if model.NameOf(s) == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}

func TestQuantizeExactFallback(t *testing.T) {
	// Degenerate float schedules must still return a legal partition.
	ts := quantizeExact([]float64{0.0001, 0.0001}, 1)
	if ts.Total() != 1 {
		t.Errorf("fallback total = %d, want 1", ts.Total())
	}
}
