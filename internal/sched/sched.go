// Package sched implements the paper's schedule constructors — the
// non-adaptive guideline of §3.1, the adaptive guideline of §3.2, and the
// optimal 1-interrupt schedule of §5.2 — together with the baselines the
// experiments compare against (single period, equal split, fixed chunks à la
// Atallah et al. [1]).
//
// Every scheduler works on the integer tick grid and implements
// model.EpisodeScheduler, so the exact game evaluator and the simulator can
// drive any of them interchangeably. Episode schedules may undershoot the
// residual lifespan (the shortfall is idle time, which banks nothing); the
// paper-faithful constructors undershoot only where the paper itself does
// (non-adaptive tails after a mid-period interrupt).
package sched

import (
	"fmt"
	"math"
	"sync/atomic"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/theory"
)

// floatScratch is the reusable continuous-time period buffer the adaptive
// schedulers build episodes in. Schedulers are routinely shared across
// goroutines (E8 hands one instance to every mc trial worker), so the buffer
// is handed out by atomic swap: the steady single-goroutine state reuses one
// warm buffer with zero allocations, while concurrent callers that find the
// pad empty just work on a private buffer — never on shared memory.
type floatScratch struct {
	pad atomic.Pointer[[]float64]
}

// take checks out the warm buffer (or a fresh one), truncated to length 0.
func (f *floatScratch) take() *[]float64 {
	bp := f.pad.Swap(nil)
	if bp == nil {
		bp = new([]float64)
	}
	*bp = (*bp)[:0]
	return bp
}

// put checks the buffer back in for the next episode.
func (f *floatScratch) put(bp *[]float64) { f.pad.Store(bp) }

// equalSplit partitions L ticks into k periods whose lengths differ by at
// most one tick (first L mod k periods get the extra tick). k is clamped to
// [1, L].
func equalSplit(L quant.Tick, k int) model.TickSchedule {
	return appendEqualSplit(nil, L, k)
}

// appendEqualSplit is equalSplit into the caller's buffer.
func appendEqualSplit(dst model.TickSchedule, L quant.Tick, k int) model.TickSchedule {
	if k < 1 {
		k = 1
	}
	if quant.Tick(k) > L {
		k = int(L)
	}
	base := L / quant.Tick(k)
	extra := L % quant.Tick(k)
	for i := 0; i < k; i++ {
		t := base
		if quant.Tick(i) < extra {
			t++
		}
		dst = append(dst, t)
	}
	return dst
}

// quantizeExact converts a continuous schedule (expressed in tick units) to
// an exact partition of L ticks. Rounding residue lands on the first
// (longest) period; degenerate inputs fall back to a single period.
func quantizeExact(periods []float64, L quant.Tick) model.TickSchedule {
	return appendQuantizeExact(nil, periods, L)
}

// appendQuantizeExact is quantizeExact into the caller's buffer — the
// zero-alloc tail of every AppendEpisode below.
func appendQuantizeExact(dst model.TickSchedule, periods []float64, L quant.Tick) model.TickSchedule {
	unit := quant.MustQuantum(1)
	out, err := model.AppendQuantize(dst, model.Schedule(periods), unit, L)
	if err != nil {
		return append(dst, L)
	}
	return out
}

// --- §3.1: non-adaptive guideline -------------------------------------------

// NonAdaptive is the §3.1 non-adaptive schedule S_na^(p)[U]: m = ⌊√(pU/c)⌋
// equal periods. After an interrupt in period i the tail t_{i+1}, … is used
// verbatim; after the p-th interrupt the remainder of the opportunity is one
// long period. Because interrupts consume no time, the tail is a pure
// function of the residual lifespan, which lets NonAdaptive satisfy the
// adaptive EpisodeScheduler interface exactly (see DESIGN.md §4).
type NonAdaptive struct {
	U, C    quant.Tick
	P       int
	periods model.TickSchedule
	prefix  []quant.Tick
}

// NewNonAdaptive builds the §3.1 guideline schedule for an opportunity of U
// ticks, p potential interrupts and setup cost c ticks.
func NewNonAdaptive(U quant.Tick, p int, c quant.Tick) (*NonAdaptive, error) {
	if U < 1 || c < 1 || p < 0 {
		return nil, fmt.Errorf("sched: bad non-adaptive parameters U=%d p=%d c=%d", U, p, c)
	}
	m := 1
	if p > 0 {
		m = int(math.Floor(math.Sqrt(float64(p) * float64(U) / float64(c))))
		if m < 1 {
			m = 1
		}
		if quant.Tick(m) > U {
			m = int(U)
		}
	}
	return NonAdaptiveFromPeriods(equalSplit(U, m), p, c)
}

// NonAdaptiveFromPeriods wraps an arbitrary fixed period list in the paper's
// non-adaptive semantics (§2.2): useful both for evaluating hand-crafted
// schedules and for cross-checking the evaluators against one another.
func NonAdaptiveFromPeriods(periods model.TickSchedule, p int, c quant.Tick) (*NonAdaptive, error) {
	if len(periods) == 0 {
		return nil, model.ErrEmptySchedule
	}
	if c < 1 || p < 0 {
		return nil, fmt.Errorf("sched: bad non-adaptive parameters p=%d c=%d", p, c)
	}
	for i, t := range periods {
		if t < 1 {
			return nil, fmt.Errorf("sched: period %d has illegal length %d", i+1, t)
		}
	}
	s := &NonAdaptive{U: periods.Total(), C: c, P: p, periods: periods.Clone()}
	s.prefix = s.periods.PrefixSums()
	return s, nil
}

// Periods returns the full fixed period list t_1, …, t_m.
func (s *NonAdaptive) Periods() model.TickSchedule { return s.periods.Clone() }

// M returns the schedule length m(p)[U].
func (s *NonAdaptive) M() int { return len(s.periods) }

// Episode implements model.EpisodeScheduler with the paper's tail semantics:
// with p interrupts left and residual lifespan L, the elapsed lifespan U−L
// identifies the point of interruption; the schedule resumes with the periods
// wholly after that point. Once the last interrupt has occurred the remainder
// is one long period (the §2.2 exception); note the exception requires an
// interrupt to have happened — an opportunity that starts with p = 0 runs the
// crafted period list as-is.
func (s *NonAdaptive) Episode(p int, L quant.Tick) model.TickSchedule {
	ep := s.AppendEpisode(nil, p, L)
	if len(ep) == 0 {
		return nil
	}
	return ep
}

// AppendEpisode implements model.EpisodeAppender: the surviving tail is
// copied straight into the caller's buffer, no clone.
func (s *NonAdaptive) AppendEpisode(dst model.TickSchedule, p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return dst
	}
	elapsed := s.U - L
	if elapsed < 0 {
		// Called with a longer lifespan than the schedule was built for:
		// treat the excess as preceding idle time.
		elapsed = 0
	}
	if p <= 0 && elapsed > 0 {
		return append(dst, L)
	}
	// First boundary at or after the elapsed point: periods from there on
	// are still intact.
	lo, hi := 0, len(s.prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.prefix[mid] >= elapsed {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return append(dst, s.periods[lo:]...)
}

// NonAdaptive deliberately implements no EpisodeMemoKey: its key would have
// to embed U, which fleet factories sample fresh per contract — every
// opportunity would rebind the memo cold. There is also nothing to win:
// AppendEpisode is already a zero-alloc tail copy, exactly the work a cache
// hit would do.

// Name implements model.Namer.
func (s *NonAdaptive) Name() string { return fmt.Sprintf("nonadaptive(m=%d)", len(s.periods)) }

// --- §3.2: adaptive guideline -------------------------------------------------

// AdaptiveGuideline is the adaptive opportunity-schedule Σ_a^(p)[U] of §3.2:
// after every interrupt a fresh episode-schedule S_a^(p′)[L] is computed from
// the residual lifespan L and the remaining interrupt budget p′.
//
// The episode shape follows the paper: a descending ramp with arithmetic step
// δ = 4^{1−p}c, then one adjustment period of (p+½)c, then ℓ_p = ⌈2p/3⌉
// terminal periods of (3/2)c. See DESIGN.md §4 item 3 for the reconstruction
// of the adjustment constant from the OCR-damaged original.
type AdaptiveGuideline struct {
	C quant.Tick
	// scratch holds the continuous-time periods between AppendEpisode calls
	// so the steady state allocates nothing; safe to share across goroutines
	// (see floatScratch).
	scratch floatScratch
}

// NewAdaptiveGuideline returns the Σ_a scheduler for setup cost c ticks.
func NewAdaptiveGuideline(c quant.Tick) (*AdaptiveGuideline, error) {
	if c < 1 {
		return nil, fmt.Errorf("sched: setup cost must be ≥ 1 tick, got %d", c)
	}
	return &AdaptiveGuideline{C: c}, nil
}

// GuidelineConfig parametrizes the §3.2 schedule family so the E9 ablations
// can vary the design choices independently. The zero value reproduces the
// printed guideline (with the residue-spread correction).
type GuidelineConfig struct {
	// RampStep returns δ, the arithmetic step between consecutive ramp
	// periods. Nil uses the printed 4^{1−p}·c.
	RampStep func(p int, c float64) float64
	// TailCount returns ℓ_p, the number of terminal (3/2)c periods. Nil uses
	// the printed ⌈2p/3⌉.
	TailCount func(p int) int
	// DumpResidue reverts to dumping the sub-period residue onto the first
	// period instead of spreading it across the ramp (the E9 residue
	// ablation; dumping hands the adversary an oversized first kill).
	DumpResidue bool
}

// GuidelinePeriodsUnits builds S_a^(p)[L] in continuous time (tick units);
// exported for display in Table-2-style experiment rows.
func GuidelinePeriodsUnits(p int, L, c float64) []float64 {
	return GuidelinePeriodsUnitsCfg(p, L, c, GuidelineConfig{})
}

// GuidelinePeriodsUnitsCfg is GuidelinePeriodsUnits under an explicit
// configuration.
func GuidelinePeriodsUnitsCfg(p int, L, c float64, cfg GuidelineConfig) []float64 {
	return appendGuidelineUnits(nil, p, L, c, cfg)
}

// appendGuidelineUnits builds S_a^(p)[L] into the caller's buffer: the ramp
// is appended ascending, residue-adjusted, then reversed in place (longest
// first), so the whole episode costs zero allocations once the buffer has
// warmed up.
func appendGuidelineUnits(buf []float64, p int, L, c float64, cfg GuidelineConfig) []float64 {
	if p <= 0 || L <= float64(p+1)*c {
		return append(buf, L)
	}
	ellp := (2*p + 2) / 3 // ⌈2p/3⌉
	if cfg.TailCount != nil {
		ellp = cfg.TailCount(p)
		if ellp < 0 {
			ellp = 0
		}
	}
	tailLen := 1.5 * c
	adj := (float64(p) + 0.5) * c
	base := float64(ellp)*tailLen + adj
	if L <= base+c {
		// Residual too short for the canonical shape: fall back to roughly
		// (3/2)c-sized equal periods, the shape Theorem 4.2 says terminal
		// regions should take.
		k := int(L / tailLen)
		if k < 1 {
			k = 1
		}
		for i := 0; i < k; i++ {
			buf = append(buf, L/float64(k))
		}
		return buf
	}
	delta := math.Pow(4, float64(1-p)) * c
	if cfg.RampStep != nil {
		delta = cfg.RampStep(p, c)
		if delta <= 0 {
			delta = c
		}
	}
	rem := L - base
	rampAt := len(buf)
	t := adj + delta
	for rem >= t {
		buf = append(buf, t)
		rem -= t
		t += delta
	}
	ramp := buf[rampAt:]
	switch {
	case len(ramp) == 0:
		adj += rem
	case cfg.DumpResidue:
		ramp[len(ramp)-1] += rem
	default:
		// Spread the sub-period residue uniformly over the ramp. A uniform
		// shift preserves the ramp's δ steps and, crucially, the damage
		// equalization: dumping the residue on one period would hand the
		// adversary a period worth up to twice the intended maximum.
		shift := rem / float64(len(ramp))
		for i := range ramp {
			ramp[i] += shift
		}
	}
	for i, j := 0, len(ramp)-1; i < j; i, j = i+1, j-1 { // longest first
		ramp[i], ramp[j] = ramp[j], ramp[i]
	}
	buf = append(buf, adj)
	for i := 0; i < ellp; i++ {
		buf = append(buf, tailLen)
	}
	return buf
}

// GuidelineVariant is an AdaptiveGuideline under a non-default configuration,
// used by the E9 ablations.
type GuidelineVariant struct {
	C       quant.Tick
	Cfg     GuidelineConfig
	Variant string // label suffix for reports
}

// Episode implements model.EpisodeScheduler.
func (s GuidelineVariant) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	if p <= 0 {
		return model.TickSchedule{L}
	}
	return quantizeExact(GuidelinePeriodsUnitsCfg(p, float64(L), float64(s.C), s.Cfg), L)
}

// Name implements model.Namer.
func (s GuidelineVariant) Name() string { return "adaptive-guideline[" + s.Variant + "]" }

// Episode implements model.EpisodeScheduler.
func (s *AdaptiveGuideline) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	return s.AppendEpisode(nil, p, L)
}

// AppendEpisode implements model.EpisodeAppender.
func (s *AdaptiveGuideline) AppendEpisode(dst model.TickSchedule, p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return dst
	}
	if p <= 0 {
		return append(dst, L)
	}
	bp := s.scratch.take()
	*bp = appendGuidelineUnits(*bp, p, float64(L), float64(s.C), GuidelineConfig{})
	dst = appendQuantizeExact(dst, *bp, L)
	s.scratch.put(bp)
	return dst
}

// EpisodeMemoKey implements model.EpisodeMemoKeyer: episodes are a pure
// function of (p, L) once c is fixed.
func (s *AdaptiveGuideline) EpisodeMemoKey() (model.MemoKey, bool) {
	return model.MemoKey{Kind: "adaptive-guideline", C: s.C}, true
}

// Name implements model.Namer.
func (s *AdaptiveGuideline) Name() string { return "adaptive-guideline" }

// --- Theorem 4.3 realized: the equalization schedule ---------------------------

// AdaptiveEqualized is the adaptive schedule obtained by carrying out the
// paper's equalization program (Theorem 4.3) exactly rather than through the
// printed closed forms: each period is t = α_p·√(2cR) of the episode residual
// R, which makes the adversary indifferent between abstaining and
// interrupting any period (see internal/theory for the α_p/K_p recursion).
// At p = 1 it coincides with §5.2's optimal ladder t_k ≈ √(2cU) − kc; for
// every p the exact game solver confirms it is optimal to within low-order
// additive terms — the property Theorem 5.1 claims for Σ_a.
type AdaptiveEqualized struct {
	C quant.Tick
	// scratch holds the continuous-time periods between AppendEpisode calls;
	// safe to share across goroutines (see floatScratch).
	scratch floatScratch
}

// NewAdaptiveEqualized returns the equalization scheduler for setup cost c.
func NewAdaptiveEqualized(c quant.Tick) (*AdaptiveEqualized, error) {
	if c < 1 {
		return nil, fmt.Errorf("sched: setup cost must be ≥ 1 tick, got %d", c)
	}
	return &AdaptiveEqualized{C: c}, nil
}

// EqualizedPeriodsUnits builds the equalization episode in continuous time
// (tick units); exported for experiment tables.
func EqualizedPeriodsUnits(p int, L, c float64) []float64 {
	return appendEqualizedUnits(nil, p, L, c)
}

// appendEqualizedUnits builds the equalization episode into the caller's
// buffer.
func appendEqualizedUnits(buf []float64, p int, L, c float64) []float64 {
	if p <= 0 || L <= float64(p+1)*c {
		return append(buf, L)
	}
	alpha := theory.EqualizedAlpha(p)
	R := L
	// Ride the self-similar ramp while periods stay comfortably productive;
	// Theorem 4.2 says the terminal region should be short periods in
	// (c, 2c], so hand over to a (3/2)c tail once the ramp dips below 2c.
	for {
		t := alpha * math.Sqrt(2*c*R)
		if t < 2*c || R-t < c {
			break
		}
		buf = append(buf, t)
		R -= t
	}
	if R > 0 {
		k := int(math.Round(R / (1.5 * c)))
		if k < 1 {
			k = 1
		}
		for i := 0; i < k; i++ {
			buf = append(buf, R/float64(k))
		}
	}
	return buf
}

// Episode implements model.EpisodeScheduler.
func (s *AdaptiveEqualized) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	return s.AppendEpisode(nil, p, L)
}

// AppendEpisode implements model.EpisodeAppender.
func (s *AdaptiveEqualized) AppendEpisode(dst model.TickSchedule, p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return dst
	}
	if p <= 0 {
		return append(dst, L)
	}
	bp := s.scratch.take()
	*bp = appendEqualizedUnits(*bp, p, float64(L), float64(s.C))
	dst = appendQuantizeExact(dst, *bp, L)
	s.scratch.put(bp)
	return dst
}

// EpisodeMemoKey implements model.EpisodeMemoKeyer: episodes are a pure
// function of (p, L) once c is fixed.
func (s *AdaptiveEqualized) EpisodeMemoKey() (model.MemoKey, bool) {
	return model.MemoKey{Kind: "adaptive-equalized", C: s.C}, true
}

// Name implements model.Namer.
func (s *AdaptiveEqualized) Name() string { return "adaptive-equalized" }

// --- §5.2: optimal schedule for p = 1 ----------------------------------------

// OptimalP1 is the closed-form optimal adaptive schedule for at most one
// interrupt (§5.2, eq. 5.1 and Table 2): m = ⌈√(2U/c − 7/4) − ½⌉ periods with
// t_m = t_{m−1} = (1+ε)c and t_k = t_{k+1} + c, where ε ∈ (0,1] makes the
// lengths sum to U. After the interrupt (p = 0) the remainder is one long
// period.
type OptimalP1 struct {
	C quant.Tick
	// scratch holds the continuous-time ladder between AppendEpisode calls;
	// safe to share across goroutines (see floatScratch).
	scratch floatScratch
}

// NewOptimalP1 returns the S_opt^(1) scheduler for setup cost c ticks.
func NewOptimalP1(c quant.Tick) (*OptimalP1, error) {
	if c < 1 {
		return nil, fmt.Errorf("sched: setup cost must be ≥ 1 tick, got %d", c)
	}
	return &OptimalP1{C: c}, nil
}

// OptimalP1PeriodsUnits builds S_opt^(1)[U] in continuous time; exported for
// Table 2 experiment rows. It returns a single period when U ≤ 2c (the
// zero-work regime for p = 1).
func OptimalP1PeriodsUnits(U, c float64) []float64 {
	return appendOptimalP1Units(nil, U, c)
}

// appendOptimalP1Units builds the §5.2 ladder into the caller's buffer.
func appendOptimalP1Units(buf []float64, U, c float64) []float64 {
	if U <= 2*c {
		return append(buf, U)
	}
	m := optimalP1MAdjusted(U, c)
	eps := optimalP1Epsilon(U, c, m)
	for k := 1; k <= m-2; k++ {
		buf = append(buf, (float64(m-k)+eps)*c)
	}
	return append(buf, (1+eps)*c, (1+eps)*c)
}

func optimalP1Epsilon(U, c float64, m int) float64 {
	return (U-c)/(float64(m)*c) - float64(m-1)/2
}

func optimalP1MAdjusted(U, c float64) int {
	arg := 2*U/c - 7.0/4.0
	m := 2
	if arg > 0 {
		if v := int(math.Ceil(math.Sqrt(arg) - 0.5)); v > 2 {
			m = v
		}
	}
	for m > 2 && optimalP1Epsilon(U, c, m) <= 0 {
		m--
	}
	for optimalP1Epsilon(U, c, m) > 1 {
		m++
	}
	return m
}

// Episode implements model.EpisodeScheduler. For p ≥ 2 it still emits the
// p = 1 episode shape (the schedule is only designed — and only claimed
// optimal — for one outstanding interrupt).
func (s *OptimalP1) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	return s.AppendEpisode(nil, p, L)
}

// AppendEpisode implements model.EpisodeAppender.
func (s *OptimalP1) AppendEpisode(dst model.TickSchedule, p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return dst
	}
	if p <= 0 {
		return append(dst, L)
	}
	bp := s.scratch.take()
	*bp = appendOptimalP1Units(*bp, float64(L), float64(s.C))
	dst = appendQuantizeExact(dst, *bp, L)
	s.scratch.put(bp)
	return dst
}

// EpisodeMemoKey implements model.EpisodeMemoKeyer: episodes are a pure
// function of (p, L) once c is fixed.
func (s *OptimalP1) EpisodeMemoKey() (model.MemoKey, bool) {
	return model.MemoKey{Kind: "optimal-p1", C: s.C}, true
}

// Name implements model.Namer.
func (s *OptimalP1) Name() string { return "optimal-p1" }

// --- baselines ----------------------------------------------------------------

// SinglePeriod schedules every episode as one long period — the p = 0 optimum
// applied blindly; the natural "no cycle-stealing awareness" baseline.
type SinglePeriod struct{}

// Episode implements model.EpisodeScheduler.
func (SinglePeriod) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	return model.TickSchedule{L}
}

// AppendEpisode implements model.EpisodeAppender.
func (SinglePeriod) AppendEpisode(dst model.TickSchedule, p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return dst
	}
	return append(dst, L)
}

// EpisodeMemoKey implements model.EpisodeMemoKeyer.
func (SinglePeriod) EpisodeMemoKey() (model.MemoKey, bool) {
	return model.MemoKey{Kind: "single-period"}, true
}

// Name implements model.Namer.
func (SinglePeriod) Name() string { return "single-period" }

// EqualSplit splits every episode into M equal periods regardless of p —
// checkpoint-every-1/M-th, a common folk strategy.
type EqualSplit struct {
	M int
}

// Episode implements model.EpisodeScheduler.
func (s EqualSplit) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	return equalSplit(L, s.M)
}

// AppendEpisode implements model.EpisodeAppender.
func (s EqualSplit) AppendEpisode(dst model.TickSchedule, p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return dst
	}
	return appendEqualSplit(dst, L, s.M)
}

// EpisodeMemoKey implements model.EpisodeMemoKeyer.
func (s EqualSplit) EpisodeMemoKey() (model.MemoKey, bool) {
	return model.MemoKey{Kind: "equal-split", M: s.M}, true
}

// Name implements model.Namer.
func (s EqualSplit) Name() string { return fmt.Sprintf("equal-split(%d)", s.M) }

// FixedChunk supplies work in fixed-size chunks of T ticks until the residual
// is smaller than T — the shape of the coscheduling auction of Atallah et
// al. [1], where large identical chunks of a compute-intensive task are
// auctioned off one at a time.
type FixedChunk struct {
	T quant.Tick
}

// Episode implements model.EpisodeScheduler.
func (s FixedChunk) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	return s.AppendEpisode(make(model.TickSchedule, 0, L/max(s.T, 1)+1), p, L)
}

// AppendEpisode implements model.EpisodeAppender.
func (s FixedChunk) AppendEpisode(dst model.TickSchedule, p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return dst
	}
	t := max(s.T, 1)
	n := L / t
	for i := quant.Tick(0); i < n; i++ {
		dst = append(dst, t)
	}
	if rem := L - n*t; rem > 0 {
		dst = append(dst, rem)
	}
	return dst
}

// EpisodeMemoKey implements model.EpisodeMemoKeyer.
func (s FixedChunk) EpisodeMemoKey() (model.MemoKey, bool) {
	return model.MemoKey{Kind: "fixed-chunk", M: int(s.T)}, true
}

// Name implements model.Namer.
func (s FixedChunk) Name() string { return fmt.Sprintf("fixed-chunk(%d)", s.T) }
