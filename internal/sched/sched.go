// Package sched implements the paper's schedule constructors — the
// non-adaptive guideline of §3.1, the adaptive guideline of §3.2, and the
// optimal 1-interrupt schedule of §5.2 — together with the baselines the
// experiments compare against (single period, equal split, fixed chunks à la
// Atallah et al. [1]).
//
// Every scheduler works on the integer tick grid and implements
// model.EpisodeScheduler, so the exact game evaluator and the simulator can
// drive any of them interchangeably. Episode schedules may undershoot the
// residual lifespan (the shortfall is idle time, which banks nothing); the
// paper-faithful constructors undershoot only where the paper itself does
// (non-adaptive tails after a mid-period interrupt).
package sched

import (
	"fmt"
	"math"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/theory"
)

// equalSplit partitions L ticks into k periods whose lengths differ by at
// most one tick (first L mod k periods get the extra tick). k is clamped to
// [1, L].
func equalSplit(L quant.Tick, k int) model.TickSchedule {
	if k < 1 {
		k = 1
	}
	if quant.Tick(k) > L {
		k = int(L)
	}
	base := L / quant.Tick(k)
	extra := L % quant.Tick(k)
	out := make(model.TickSchedule, k)
	for i := range out {
		out[i] = base
		if quant.Tick(i) < extra {
			out[i]++
		}
	}
	return out
}

// quantizeExact converts a continuous schedule (expressed in tick units) to
// an exact partition of L ticks. Rounding residue lands on the first
// (longest) period; degenerate inputs fall back to a single period.
func quantizeExact(periods []float64, L quant.Tick) model.TickSchedule {
	unit := quant.MustQuantum(1)
	ts, err := model.Quantize(model.Schedule(periods), unit, L)
	if err != nil {
		return model.TickSchedule{L}
	}
	return ts
}

// --- §3.1: non-adaptive guideline -------------------------------------------

// NonAdaptive is the §3.1 non-adaptive schedule S_na^(p)[U]: m = ⌊√(pU/c)⌋
// equal periods. After an interrupt in period i the tail t_{i+1}, … is used
// verbatim; after the p-th interrupt the remainder of the opportunity is one
// long period. Because interrupts consume no time, the tail is a pure
// function of the residual lifespan, which lets NonAdaptive satisfy the
// adaptive EpisodeScheduler interface exactly (see DESIGN.md §4).
type NonAdaptive struct {
	U, C    quant.Tick
	P       int
	periods model.TickSchedule
	prefix  []quant.Tick
}

// NewNonAdaptive builds the §3.1 guideline schedule for an opportunity of U
// ticks, p potential interrupts and setup cost c ticks.
func NewNonAdaptive(U quant.Tick, p int, c quant.Tick) (*NonAdaptive, error) {
	if U < 1 || c < 1 || p < 0 {
		return nil, fmt.Errorf("sched: bad non-adaptive parameters U=%d p=%d c=%d", U, p, c)
	}
	m := 1
	if p > 0 {
		m = int(math.Floor(math.Sqrt(float64(p) * float64(U) / float64(c))))
		if m < 1 {
			m = 1
		}
		if quant.Tick(m) > U {
			m = int(U)
		}
	}
	return NonAdaptiveFromPeriods(equalSplit(U, m), p, c)
}

// NonAdaptiveFromPeriods wraps an arbitrary fixed period list in the paper's
// non-adaptive semantics (§2.2): useful both for evaluating hand-crafted
// schedules and for cross-checking the evaluators against one another.
func NonAdaptiveFromPeriods(periods model.TickSchedule, p int, c quant.Tick) (*NonAdaptive, error) {
	if len(periods) == 0 {
		return nil, model.ErrEmptySchedule
	}
	if c < 1 || p < 0 {
		return nil, fmt.Errorf("sched: bad non-adaptive parameters p=%d c=%d", p, c)
	}
	for i, t := range periods {
		if t < 1 {
			return nil, fmt.Errorf("sched: period %d has illegal length %d", i+1, t)
		}
	}
	s := &NonAdaptive{U: periods.Total(), C: c, P: p, periods: periods.Clone()}
	s.prefix = s.periods.PrefixSums()
	return s, nil
}

// Periods returns the full fixed period list t_1, …, t_m.
func (s *NonAdaptive) Periods() model.TickSchedule { return s.periods.Clone() }

// M returns the schedule length m(p)[U].
func (s *NonAdaptive) M() int { return len(s.periods) }

// Episode implements model.EpisodeScheduler with the paper's tail semantics:
// with p interrupts left and residual lifespan L, the elapsed lifespan U−L
// identifies the point of interruption; the schedule resumes with the periods
// wholly after that point. Once the last interrupt has occurred the remainder
// is one long period (the §2.2 exception); note the exception requires an
// interrupt to have happened — an opportunity that starts with p = 0 runs the
// crafted period list as-is.
func (s *NonAdaptive) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	elapsed := s.U - L
	if elapsed < 0 {
		// Called with a longer lifespan than the schedule was built for:
		// treat the excess as preceding idle time.
		elapsed = 0
	}
	if p <= 0 && elapsed > 0 {
		return model.TickSchedule{L}
	}
	// First boundary at or after the elapsed point: periods from there on
	// are still intact.
	lo, hi := 0, len(s.prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.prefix[mid] >= elapsed {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	tail := s.periods[lo:]
	if len(tail) == 0 {
		return nil
	}
	return tail.Clone()
}

// Name implements model.Namer.
func (s *NonAdaptive) Name() string { return fmt.Sprintf("nonadaptive(m=%d)", len(s.periods)) }

// --- §3.2: adaptive guideline -------------------------------------------------

// AdaptiveGuideline is the adaptive opportunity-schedule Σ_a^(p)[U] of §3.2:
// after every interrupt a fresh episode-schedule S_a^(p′)[L] is computed from
// the residual lifespan L and the remaining interrupt budget p′.
//
// The episode shape follows the paper: a descending ramp with arithmetic step
// δ = 4^{1−p}c, then one adjustment period of (p+½)c, then ℓ_p = ⌈2p/3⌉
// terminal periods of (3/2)c. See DESIGN.md §4 item 3 for the reconstruction
// of the adjustment constant from the OCR-damaged original.
type AdaptiveGuideline struct {
	C quant.Tick
}

// NewAdaptiveGuideline returns the Σ_a scheduler for setup cost c ticks.
func NewAdaptiveGuideline(c quant.Tick) (*AdaptiveGuideline, error) {
	if c < 1 {
		return nil, fmt.Errorf("sched: setup cost must be ≥ 1 tick, got %d", c)
	}
	return &AdaptiveGuideline{C: c}, nil
}

// GuidelineConfig parametrizes the §3.2 schedule family so the E9 ablations
// can vary the design choices independently. The zero value reproduces the
// printed guideline (with the residue-spread correction).
type GuidelineConfig struct {
	// RampStep returns δ, the arithmetic step between consecutive ramp
	// periods. Nil uses the printed 4^{1−p}·c.
	RampStep func(p int, c float64) float64
	// TailCount returns ℓ_p, the number of terminal (3/2)c periods. Nil uses
	// the printed ⌈2p/3⌉.
	TailCount func(p int) int
	// DumpResidue reverts to dumping the sub-period residue onto the first
	// period instead of spreading it across the ramp (the E9 residue
	// ablation; dumping hands the adversary an oversized first kill).
	DumpResidue bool
}

// GuidelinePeriodsUnits builds S_a^(p)[L] in continuous time (tick units);
// exported for display in Table-2-style experiment rows.
func GuidelinePeriodsUnits(p int, L, c float64) []float64 {
	return GuidelinePeriodsUnitsCfg(p, L, c, GuidelineConfig{})
}

// GuidelinePeriodsUnitsCfg is GuidelinePeriodsUnits under an explicit
// configuration.
func GuidelinePeriodsUnitsCfg(p int, L, c float64, cfg GuidelineConfig) []float64 {
	if p <= 0 || L <= float64(p+1)*c {
		return []float64{L}
	}
	ellp := (2*p + 2) / 3 // ⌈2p/3⌉
	if cfg.TailCount != nil {
		ellp = cfg.TailCount(p)
		if ellp < 0 {
			ellp = 0
		}
	}
	tailLen := 1.5 * c
	adj := (float64(p) + 0.5) * c
	base := float64(ellp)*tailLen + adj
	if L <= base+c {
		// Residual too short for the canonical shape: fall back to roughly
		// (3/2)c-sized equal periods, the shape Theorem 4.2 says terminal
		// regions should take.
		k := int(L / tailLen)
		if k < 1 {
			k = 1
		}
		out := make([]float64, k)
		for i := range out {
			out[i] = L / float64(k)
		}
		return out
	}
	delta := math.Pow(4, float64(1-p)) * c
	if cfg.RampStep != nil {
		delta = cfg.RampStep(p, c)
		if delta <= 0 {
			delta = c
		}
	}
	rem := L - base
	var ramp []float64
	t := adj + delta
	for rem >= t {
		ramp = append(ramp, t)
		rem -= t
		t += delta
	}
	switch {
	case len(ramp) == 0:
		adj += rem
	case cfg.DumpResidue:
		ramp[len(ramp)-1] += rem
	default:
		// Spread the sub-period residue uniformly over the ramp. A uniform
		// shift preserves the ramp's δ steps and, crucially, the damage
		// equalization: dumping the residue on one period would hand the
		// adversary a period worth up to twice the intended maximum.
		shift := rem / float64(len(ramp))
		for i := range ramp {
			ramp[i] += shift
		}
	}
	out := make([]float64, 0, len(ramp)+1+ellp)
	for i := len(ramp) - 1; i >= 0; i-- { // longest first
		out = append(out, ramp[i])
	}
	out = append(out, adj)
	for i := 0; i < ellp; i++ {
		out = append(out, tailLen)
	}
	return out
}

// GuidelineVariant is an AdaptiveGuideline under a non-default configuration,
// used by the E9 ablations.
type GuidelineVariant struct {
	C       quant.Tick
	Cfg     GuidelineConfig
	Variant string // label suffix for reports
}

// Episode implements model.EpisodeScheduler.
func (s GuidelineVariant) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	if p <= 0 {
		return model.TickSchedule{L}
	}
	return quantizeExact(GuidelinePeriodsUnitsCfg(p, float64(L), float64(s.C), s.Cfg), L)
}

// Name implements model.Namer.
func (s GuidelineVariant) Name() string { return "adaptive-guideline[" + s.Variant + "]" }

// Episode implements model.EpisodeScheduler.
func (s *AdaptiveGuideline) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	if p <= 0 {
		return model.TickSchedule{L}
	}
	periods := GuidelinePeriodsUnits(p, float64(L), float64(s.C))
	return quantizeExact(periods, L)
}

// Name implements model.Namer.
func (s *AdaptiveGuideline) Name() string { return "adaptive-guideline" }

// --- Theorem 4.3 realized: the equalization schedule ---------------------------

// AdaptiveEqualized is the adaptive schedule obtained by carrying out the
// paper's equalization program (Theorem 4.3) exactly rather than through the
// printed closed forms: each period is t = α_p·√(2cR) of the episode residual
// R, which makes the adversary indifferent between abstaining and
// interrupting any period (see internal/theory for the α_p/K_p recursion).
// At p = 1 it coincides with §5.2's optimal ladder t_k ≈ √(2cU) − kc; for
// every p the exact game solver confirms it is optimal to within low-order
// additive terms — the property Theorem 5.1 claims for Σ_a.
type AdaptiveEqualized struct {
	C quant.Tick
}

// NewAdaptiveEqualized returns the equalization scheduler for setup cost c.
func NewAdaptiveEqualized(c quant.Tick) (*AdaptiveEqualized, error) {
	if c < 1 {
		return nil, fmt.Errorf("sched: setup cost must be ≥ 1 tick, got %d", c)
	}
	return &AdaptiveEqualized{C: c}, nil
}

// EqualizedPeriodsUnits builds the equalization episode in continuous time
// (tick units); exported for experiment tables.
func EqualizedPeriodsUnits(p int, L, c float64) []float64 {
	if p <= 0 || L <= float64(p+1)*c {
		return []float64{L}
	}
	alpha := theory.EqualizedAlpha(p)
	var out []float64
	R := L
	// Ride the self-similar ramp while periods stay comfortably productive;
	// Theorem 4.2 says the terminal region should be short periods in
	// (c, 2c], so hand over to a (3/2)c tail once the ramp dips below 2c.
	for {
		t := alpha * math.Sqrt(2*c*R)
		if t < 2*c || R-t < c {
			break
		}
		out = append(out, t)
		R -= t
	}
	if R > 0 {
		k := int(math.Round(R / (1.5 * c)))
		if k < 1 {
			k = 1
		}
		for i := 0; i < k; i++ {
			out = append(out, R/float64(k))
		}
	}
	return out
}

// Episode implements model.EpisodeScheduler.
func (s *AdaptiveEqualized) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	if p <= 0 {
		return model.TickSchedule{L}
	}
	return quantizeExact(EqualizedPeriodsUnits(p, float64(L), float64(s.C)), L)
}

// Name implements model.Namer.
func (s *AdaptiveEqualized) Name() string { return "adaptive-equalized" }

// --- §5.2: optimal schedule for p = 1 ----------------------------------------

// OptimalP1 is the closed-form optimal adaptive schedule for at most one
// interrupt (§5.2, eq. 5.1 and Table 2): m = ⌈√(2U/c − 7/4) − ½⌉ periods with
// t_m = t_{m−1} = (1+ε)c and t_k = t_{k+1} + c, where ε ∈ (0,1] makes the
// lengths sum to U. After the interrupt (p = 0) the remainder is one long
// period.
type OptimalP1 struct {
	C quant.Tick
}

// NewOptimalP1 returns the S_opt^(1) scheduler for setup cost c ticks.
func NewOptimalP1(c quant.Tick) (*OptimalP1, error) {
	if c < 1 {
		return nil, fmt.Errorf("sched: setup cost must be ≥ 1 tick, got %d", c)
	}
	return &OptimalP1{C: c}, nil
}

// OptimalP1PeriodsUnits builds S_opt^(1)[U] in continuous time; exported for
// Table 2 experiment rows. It returns a single period when U ≤ 2c (the
// zero-work regime for p = 1).
func OptimalP1PeriodsUnits(U, c float64) []float64 {
	if U <= 2*c {
		return []float64{U}
	}
	m := optimalP1MAdjusted(U, c)
	eps := optimalP1Epsilon(U, c, m)
	out := make([]float64, m)
	for k := 1; k <= m-2; k++ {
		out[k-1] = (float64(m-k) + eps) * c
	}
	out[m-2] = (1 + eps) * c
	out[m-1] = (1 + eps) * c
	return out
}

func optimalP1Epsilon(U, c float64, m int) float64 {
	return (U-c)/(float64(m)*c) - float64(m-1)/2
}

func optimalP1MAdjusted(U, c float64) int {
	arg := 2*U/c - 7.0/4.0
	m := 2
	if arg > 0 {
		if v := int(math.Ceil(math.Sqrt(arg) - 0.5)); v > 2 {
			m = v
		}
	}
	for m > 2 && optimalP1Epsilon(U, c, m) <= 0 {
		m--
	}
	for optimalP1Epsilon(U, c, m) > 1 {
		m++
	}
	return m
}

// Episode implements model.EpisodeScheduler. For p ≥ 2 it still emits the
// p = 1 episode shape (the schedule is only designed — and only claimed
// optimal — for one outstanding interrupt).
func (s *OptimalP1) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	if p <= 0 {
		return model.TickSchedule{L}
	}
	return quantizeExact(OptimalP1PeriodsUnits(float64(L), float64(s.C)), L)
}

// Name implements model.Namer.
func (s *OptimalP1) Name() string { return "optimal-p1" }

// --- baselines ----------------------------------------------------------------

// SinglePeriod schedules every episode as one long period — the p = 0 optimum
// applied blindly; the natural "no cycle-stealing awareness" baseline.
type SinglePeriod struct{}

// Episode implements model.EpisodeScheduler.
func (SinglePeriod) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	return model.TickSchedule{L}
}

// Name implements model.Namer.
func (SinglePeriod) Name() string { return "single-period" }

// EqualSplit splits every episode into M equal periods regardless of p —
// checkpoint-every-1/M-th, a common folk strategy.
type EqualSplit struct {
	M int
}

// Episode implements model.EpisodeScheduler.
func (s EqualSplit) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	return equalSplit(L, s.M)
}

// Name implements model.Namer.
func (s EqualSplit) Name() string { return fmt.Sprintf("equal-split(%d)", s.M) }

// FixedChunk supplies work in fixed-size chunks of T ticks until the residual
// is smaller than T — the shape of the coscheduling auction of Atallah et
// al. [1], where large identical chunks of a compute-intensive task are
// auctioned off one at a time.
type FixedChunk struct {
	T quant.Tick
}

// Episode implements model.EpisodeScheduler.
func (s FixedChunk) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	t := s.T
	if t < 1 {
		t = 1
	}
	n := L / t
	out := make(model.TickSchedule, 0, n+1)
	for i := quant.Tick(0); i < n; i++ {
		out = append(out, t)
	}
	if rem := L - n*t; rem > 0 {
		out = append(out, rem)
	}
	return out
}

// Name implements model.Namer.
func (s FixedChunk) Name() string { return fmt.Sprintf("fixed-chunk(%d)", s.T) }
