package sched

import (
	"math/rand"
	"sync"
	"testing"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
)

// Every scheduler's AppendEpisode must emit exactly its Episode — the append
// paths are the hot-loop implementations, and any drift would silently change
// simulation results fleet-wide.
func TestAppendEpisodeMatchesEpisode(t *testing.T) {
	c := quant.Tick(10)
	ag, _ := NewAdaptiveGuideline(c)
	eq, _ := NewAdaptiveEqualized(c)
	op, _ := NewOptimalP1(c)
	na, _ := NewNonAdaptive(5000, 2, c)
	nf, _ := NonAdaptiveFromPeriods(model.TickSchedule{700, 800, 3500}, 2, c)
	schedulers := []model.EpisodeScheduler{
		ag, eq, op, na, nf,
		SinglePeriod{},
		EqualSplit{M: 7},
		FixedChunk{T: 250},
		GuidelineVariant{C: c, Cfg: GuidelineConfig{DumpResidue: true}, Variant: "dump"},
	}
	rng := rand.New(rand.NewSource(3))
	for _, s := range schedulers {
		for trial := 0; trial < 200; trial++ {
			p := rng.Intn(4)
			L := quant.Tick(1 + rng.Int63n(5000))
			want := s.Episode(p, L)
			prefix := model.TickSchedule{1, 2}
			got := model.AppendEpisode(s, append(model.TickSchedule{}, prefix...), p, L)
			if len(got) < 2 || got[0] != 1 || got[1] != 2 {
				t.Fatalf("%s: prefix clobbered: %v", model.NameOf(s), got)
			}
			tail := got[2:]
			if len(tail) != len(want) {
				t.Fatalf("%s (p=%d L=%d): append emitted %d periods, Episode %d",
					model.NameOf(s), p, L, len(tail), len(want))
			}
			for i := range want {
				if tail[i] != want[i] {
					t.Fatalf("%s (p=%d L=%d): period %d = %d, want %d",
						model.NameOf(s), p, L, i, tail[i], want[i])
				}
			}
		}
	}
}

// The append paths must reuse the destination's capacity — the whole point
// of the API. One warm buffer, zero allocations per episode.
func TestAppendEpisodeZeroAllocWhenWarm(t *testing.T) {
	c := quant.Tick(10)
	eq, _ := NewAdaptiveEqualized(c)
	buf := make(model.TickSchedule, 0, 4096)
	// Warm the scratch.
	buf = eq.AppendEpisode(buf[:0], 3, 4321)
	allocs := testing.AllocsPerRun(50, func() {
		buf = eq.AppendEpisode(buf[:0], 3, 4321)
	})
	if allocs != 0 {
		t.Errorf("warm AppendEpisode allocates %.1f times per episode", allocs)
	}
}

func TestMemoHitReturnsIdenticalEpisode(t *testing.T) {
	c := quant.Tick(10)
	eq, _ := NewAdaptiveEqualized(c)
	m := NewMemo(16)
	s := m.Bind(eq)
	if s != model.EpisodeScheduler(m) {
		t.Fatal("keyed scheduler not wrapped by the memo")
	}
	first := s.Episode(2, 3000)
	second := s.Episode(2, 3000)
	if m.Hits() != 1 || m.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", m.Hits(), m.Misses())
	}
	if len(first) != len(second) {
		t.Fatalf("cached episode has %d periods, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cached episode diverges at %d: %d vs %d", i, second[i], first[i])
		}
	}
	// Mutating a returned episode must not poison the cache.
	second[0] = 999999
	third := s.Episode(2, 3000)
	if third[0] != first[0] {
		t.Error("cache poisoned through a returned episode")
	}
}

func TestMemoBindKeepsCacheAcrossEqualKeys(t *testing.T) {
	c := quant.Tick(10)
	m := NewMemo(16)
	a, _ := NewAdaptiveEqualized(c)
	b, _ := NewAdaptiveEqualized(c) // fresh instance, same key — the factory pattern
	s := m.Bind(a)
	s.Episode(1, 500)
	if m.Len() != 1 {
		t.Fatalf("cache len = %d", m.Len())
	}
	s = m.Bind(b)
	s.Episode(1, 500)
	if m.Hits() != 1 {
		t.Errorf("cache went cold across equal-key rebind: hits=%d", m.Hits())
	}
	// A different key must reset it.
	g, _ := NewAdaptiveGuideline(c)
	s = m.Bind(g)
	if m.Len() != 0 {
		t.Errorf("cache survived a key change: len=%d", m.Len())
	}
	s.Episode(1, 500)
	if got := s.Episode(1, 500); len(got) == 0 {
		t.Error("rebound memo returned empty episode")
	}
}

func TestMemoUnkeyedSchedulerPassesThrough(t *testing.T) {
	m := NewMemo(16)
	nf, _ := NonAdaptiveFromPeriods(model.TickSchedule{100, 200}, 1, 10)
	if s := m.Bind(nf); s != model.EpisodeScheduler(nf) {
		t.Error("unkeyed scheduler was wrapped; its episodes are not a pure function of (p, L)")
	}
	v := GuidelineVariant{C: 10, Variant: "x"}
	if _, wrapped := m.Bind(v).(*Memo); wrapped {
		t.Error("guideline variant wrapped despite config funcs a key cannot capture")
	}
	// NewNonAdaptive is deliberately unkeyed too: fleet factories bake the
	// freshly sampled contract U into it, so its key would churn every
	// opportunity, and its episodes are already zero-alloc tail copies.
	na, _ := NewNonAdaptive(5000, 2, 10)
	if _, wrapped := m.Bind(na).(*Memo); wrapped {
		t.Error("NonAdaptive wrapped; its per-contract U would churn the cache cold")
	}
}

// A keyed scheduler whose key nonetheless churns per bind (e.g. a factory
// alternating configurations) must not rebuild the cache forever: after
// coldRebinds useless bindings the memo turns itself off and passes
// schedulers through untouched.
func TestMemoDisablesAfterColdRebinds(t *testing.T) {
	m := NewMemo(16)
	for i := 0; i < coldRebinds+2; i++ {
		var s model.EpisodeScheduler
		if i%2 == 0 {
			s = EqualSplit{M: 3 + i} // key differs every bind
		} else {
			s = FixedChunk{T: quant.Tick(100 + i)}
		}
		bound := m.Bind(s)
		bound.Episode(1, 1000) // miss, never a hit
		if i > coldRebinds {
			if _, wrapped := bound.(*Memo); wrapped {
				t.Fatalf("bind %d still wrapped after %d cold rebinds", i, coldRebinds)
			}
		}
	}
	if !m.disabled {
		t.Error("memo never disabled itself under key churn")
	}
	// A healthy memo (stable key, real hits) must never disable.
	h := NewMemo(16)
	eqA, _ := NewAdaptiveEqualized(10)
	for i := 0; i < 50; i++ {
		eqB, _ := NewAdaptiveEqualized(10)
		h.Bind(eqB).Episode(1, 777)
		_ = eqA
	}
	if h.disabled || h.Hits() < 49 {
		t.Errorf("stable-key memo degraded: disabled=%v hits=%d", h.disabled, h.Hits())
	}
}

func TestMemoBoundedEviction(t *testing.T) {
	m := NewMemo(4)
	s := m.Bind(SinglePeriod{})
	for L := quant.Tick(1); L <= 10; L++ {
		s.Episode(0, L)
	}
	if m.Len() != 4 {
		t.Errorf("cache len = %d, want the bound 4", m.Len())
	}
	// FIFO: the newest 4 keys (L=7..10) survive; L=7 hits, L=1 misses again.
	before := m.Hits()
	s.Episode(0, 7)
	if m.Hits() != before+1 {
		t.Error("recent entry evicted")
	}
	missBefore := m.Misses()
	s.Episode(0, 1)
	if m.Misses() != missBefore+1 {
		t.Error("oldest entry not evicted")
	}
	if m.Len() != 4 {
		t.Errorf("cache len = %d after churn, want 4", m.Len())
	}
}

// The memo must be invisible in results: a simulator driving the memoized
// scheduler and the bare one must see bit-identical episode streams even
// under cache-eviction churn.
func TestMemoBitIdenticalUnderChurn(t *testing.T) {
	c := quant.Tick(7)
	bare, _ := NewAdaptiveEqualized(c)
	inner, _ := NewAdaptiveEqualized(c)
	m := NewMemo(8) // tiny: forces constant eviction
	memoized := m.Bind(inner)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2000; trial++ {
		p := rng.Intn(3)
		L := quant.Tick(1 + rng.Int63n(300)) // small range: plenty of repeats
		want := bare.Episode(p, L)
		got := memoized.Episode(p, L)
		if len(got) != len(want) {
			t.Fatalf("trial %d (p=%d L=%d): %d periods vs %d", trial, p, L, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (p=%d L=%d): period %d = %d, want %d", trial, p, L, i, got[i], want[i])
			}
		}
	}
	if m.Hits() == 0 {
		t.Error("churn test never hit the cache; nothing was exercised")
	}
}

// Schedulers are routinely shared across goroutines (E8 hands one instance
// to every mc trial worker), so the episode scratch must be race-free: the
// atomic pad hands the warm buffer to one caller and lets the rest work on
// private buffers. Run under -race in CI.
func TestSharedSchedulerConcurrentEpisodes(t *testing.T) {
	c := quant.Tick(10)
	eq, _ := NewAdaptiveEqualized(c)
	ag, _ := NewAdaptiveGuideline(c)
	op, _ := NewOptimalP1(c)
	want := map[string]model.TickSchedule{}
	schedulers := map[string]model.EpisodeScheduler{"equalized": eq, "guideline": ag, "optimalp1": op}
	for name, s := range schedulers {
		want[name] = s.Episode(2, 4321)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make(model.TickSchedule, 0, 256)
			for i := 0; i < 200; i++ {
				for name, s := range schedulers {
					buf = model.AppendEpisode(s, buf[:0], 2, 4321)
					if len(buf) != len(want[name]) {
						errs <- name
						return
					}
					for j := range buf {
						if buf[j] != want[name][j] {
							errs <- name
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for name := range errs {
		t.Errorf("%s: concurrent episode diverged from serial", name)
	}
}
