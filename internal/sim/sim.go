// Package sim executes cycle-stealing opportunities: it binds an adaptive
// scheduler (model.EpisodeScheduler), an interrupt strategy (Interrupter) and
// optionally a bag of data-parallel tasks, and plays out the draconian
// contract of §1–2 tick by tick:
//
//   - each period starts by paying the setup cost c (shipping work to B) and
//     ends with B returning results — the checkpoint;
//   - an interrupt kills the period in progress, losing all its work (and
//     returning its in-flight tasks to the bag);
//   - interrupts consume no lifespan themselves; the residual lifespan after
//     an interrupt at elapsed time τ is L − τ;
//   - after each interrupt the scheduler is asked for a fresh episode.
//
// The simulator is the ground truth the analytical evaluators are tested
// against: replaying game.BestResponse through Run reproduces the minimax
// guaranteed work exactly, and stochastic Interrupters give the Monte-Carlo
// expected-output view (experiment E8).
package sim

import (
	"fmt"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/task"
)

// Interrupter decides when the owner of the borrowed workstation reclaims
// it. At the start of each episode it sees the remaining interrupt budget p,
// the residual lifespan L, and the episode about to run; it returns the
// episode-relative elapsed time at which it will interrupt (1 ≤ at ≤ L), or
// ok = false to let the episode run out. Returning at > episode total means
// the interrupt falls into trailing idle time: it kills nothing but still
// consumes budget and lifespan.
//
// The episode slice is only valid for the duration of the call: the
// simulator reuses one episode buffer across a run's episodes, so an
// implementation that needs the schedule later must copy it.
type Interrupter interface {
	NextInterrupt(p int, L quant.Tick, episode model.TickSchedule) (at quant.Tick, ok bool)
}

// Opportunity is a cycle-stealing opportunity on the tick grid.
type Opportunity struct {
	U quant.Tick // usable lifespan
	P int        // interrupt budget
	C quant.Tick // per-period setup cost
}

// Validate reports whether the opportunity is well-formed.
func (o Opportunity) Validate() error {
	if o.U < 1 || o.P < 0 || o.C < 1 {
		return fmt.Errorf("sim: bad opportunity U=%d P=%d C=%d", o.U, o.P, o.C)
	}
	return nil
}

// PeriodOutcome classifies what happened to one scheduled period.
type PeriodOutcome int

// Period outcomes.
const (
	Completed PeriodOutcome = iota // ran to the end; work banked
	Killed                         // interrupted; work destroyed
	Unreached                      // episode ended (by interrupt) before it started
)

// String implements fmt.Stringer.
func (o PeriodOutcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Killed:
		return "killed"
	case Unreached:
		return "unreached"
	default:
		return fmt.Sprintf("PeriodOutcome(%d)", int(o))
	}
}

// PeriodRecord is one row of the audit log.
type PeriodRecord struct {
	Episode int        // episode index, 0-based
	Index   int        // period index within the episode, 0-based
	Start   quant.Tick // absolute elapsed lifespan at period start
	Length  quant.Tick // scheduled length
	Outcome PeriodOutcome
	Work    quant.Tick // fluid work banked (capacity if completed, saved checkpoints if killed)
	Tasks   int        // tasks completed in this period (bag runs only)
}

// Result aggregates one opportunity run.
type Result struct {
	Work           quant.Tick // fluid work banked: Σ (t ⊖ c) over completed periods
	TaskWork       quant.Tick // total duration of completed tasks (bag runs)
	TasksCompleted int
	Episodes       int        // episodes started
	Interrupts     int        // interrupts that actually occurred
	SetupTicks     quant.Tick // lifespan spent on productive setups and checkpoint saves
	KilledTicks    quant.Tick // lifespan destroyed by kills (progress past the last save)
	IdleTicks      quant.Tick // lifespan never scheduled (tail slack, post-schedule gaps)
	Periods        []PeriodRecord
}

// TaskSource supplies indivisible tasks to pack into periods. *task.Bag
// implements it for single-station runs; the farm package implements it for
// fleets — farm.SharedBag as one mutex-guarded job bag, and the per-station
// views of farm.ShardedBag as lock-striped local queues that steal from
// victims in deterministic order when dry. The simulator itself is
// indifferent: a take that returns nothing simply packs no tasks into the
// period, and killed periods hand their in-flight tasks back through Return.
type TaskSource interface {
	// Take removes and returns tasks fitting within capacity (first-fit);
	// nil when nothing fits.
	Take(capacity quant.Tick) []task.Task
	// TakeInto is Take appending into the caller's buffer: taken tasks are
	// appended to dst and the extended slice returned (dst unchanged when
	// nothing fits). This is the call the simulator's hot loop makes — one
	// warm buffer per station instead of a fresh slice per period.
	TakeInto(dst []task.Task, capacity quant.Tick) []task.Task
	// Return puts killed tasks back for rescheduling. Implementations must
	// copy what they need: the slice is the caller's reusable shipping
	// buffer and will be overwritten by the next period's take.
	Return(tasks []task.Task)
}

// Buffers is the reusable scratch one station threads through its
// opportunity runs: the episode buffer the scheduler appends into and the
// task buffer periods ship from. A zero Buffers is ready to use; after a few
// episodes the buffers are warm and Run stops allocating on the hot path.
// One goroutine owns a Buffers at a time.
type Buffers struct {
	episode model.TickSchedule
	tasks   []task.Task
}

// Config controls optional simulator features.
type Config struct {
	// RecordPeriods turns on the per-period audit log.
	RecordPeriods bool
	// Bag, when non-nil, runs the opportunity against a real task source:
	// each period's capacity t−c is packed with tasks; killed periods return
	// their tasks.
	Bag TaskSource
	// Checkpoint, when ≥ 1, softens the draconian contract with intra-period
	// checkpointing (the arXiv:0711.3949 scheme): after every Checkpoint
	// ticks of useful work inside a period, the station pays the setup cost
	// again to save partial results. A completed period then banks t ⊖ c
	// minus the save overhead; a killed period banks everything up to its
	// last completed save — fluid work, and the prefix of its shipped tasks
	// that ran to completion by then — returning only the unsaved suffix to
	// the bag. 0 (the zero value) is the paper's pure draconian contract,
	// bit-identical to a Config without the field.
	Checkpoint quant.Tick
	// CheckpointSave, when ≥ 1, prices each intra-period checkpoint save
	// separately from the setup cost — the Young/Daly save overhead δ. 0 (the
	// zero value) prices saves at the setup cost c, bit-identical to the
	// behavior before the costs were split.
	CheckpointSave quant.Tick
	// CheckpointRestart, when ≥ 1, prices resuming from a saved checkpoint:
	// after a kill that banked intra-period saves, the next period reached
	// pays this on top of its setup cost before doing useful work (reloading
	// the saved state onto the borrowed workstation). 0 (the zero value)
	// makes restarts free, bit-identical to the behavior before the costs
	// were split.
	CheckpointRestart quant.Tick
	// Buffers, when non-nil, supplies the reusable episode/task scratch —
	// the farm engine passes one per station so replaying thousands of
	// opportunities allocates nothing per episode. Nil means Run uses
	// throwaway buffers.
	Buffers *Buffers
}

// Run plays one opportunity to completion and returns the accounting. It
// errors if the scheduler or interrupter violates its contract.
//
// Task flow is single-shot (see DESIGN.md): a reached period takes its tasks
// from the bag exactly once, at period start, into the run's reusable
// shipping buffer. A completed period banks that set; a killed period
// returns the very slice it holds. The in-flight set is therefore fixed at
// ship time — a concurrent station can never drain a period's tasks out from
// under it, and a kill can never return tasks the period did not hold.
func Run(s model.EpisodeScheduler, adv Interrupter, opp Opportunity, cfg Config) (Result, error) {
	if err := opp.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	L := opp.U
	p := opp.P
	bufs := cfg.Buffers
	if bufs == nil {
		bufs = &Buffers{}
	}
	ep := bufs.episode
	saveCost := cfg.CheckpointSave
	if saveCost < 1 {
		saveCost = opp.C
	}
	restartCost := cfg.CheckpointRestart
	if restartCost < 1 {
		restartCost = 0
	}
	restartDue := false // a kill banked saves; the next reached period pays the restart

	for L > 0 {
		ep = model.AppendEpisode(s, ep[:0], p, L)
		if len(ep) == 0 {
			// Scheduler has nothing to run (e.g. a non-adaptive tail after a
			// final-period interrupt): the rest of the lifespan idles away.
			res.IdleTicks += L
			break
		}
		total, err := validateEpisode(s, ep, p, L)
		if err != nil {
			return Result{}, err
		}
		res.Episodes++

		at, interrupted := adv.NextInterrupt(p, L, ep)
		if interrupted {
			if p <= 0 {
				return Result{}, fmt.Errorf("sim: interrupter %T fired with no budget left", adv)
			}
			if at < 1 || at > L {
				return Result{}, fmt.Errorf("sim: interrupter %T returned offset %d outside (0, %d]", adv, at, L)
			}
		}

		// Play the episode's periods against the (possible) interrupt.
		var elapsed quant.Tick // episode-relative
		killedInEpisode := false
		for i, t := range ep {
			start := elapsed
			end := elapsed + t
			rec := PeriodRecord{Episode: res.Episodes - 1, Index: i, Start: opp.U - L + start, Length: t}
			reached := !interrupted || at > start
			// A period resuming checkpointed work pays the restart surcharge
			// as part of its setup segment (setup stays opp.C when restarts
			// are free or no saves are pending resumption).
			setup := opp.C
			if reached && restartDue {
				setup += restartCost
				restartDue = false
			}
			// Interior checkpoints eat into the period's useful capacity:
			// with Checkpoint off (saves = 0) capacity is exactly t ⊖ setup.
			saves, capacity := checkpointPlan(t, setup, cfg.Checkpoint, saveCost)
			// Single-shot shipping: a period that begins takes its tasks
			// once, here; the outcome below decides bank vs return.
			shipped := 0
			if cfg.Bag != nil && reached && capacity > 0 {
				bufs.tasks = cfg.Bag.TakeInto(bufs.tasks[:0], capacity)
				shipped = len(bufs.tasks)
			}
			switch {
			case !reached:
				// Interrupt fell before this period began.
				rec.Outcome = Unreached
			case interrupted && at <= end:
				// Interrupt lands inside (or at the last instant of) this
				// period: its work and in-flight tasks die — except what an
				// intra-period checkpoint already saved. The unsaved tasks it
				// shipped at start go back in the bag for rescheduling
				// (draconian kill, not task loss) — exactly the held slice,
				// no second bag scan.
				rec.Outcome = Killed
				killedInEpisode = true
				e := at - start
				var q quant.Tick
				if saves > 0 {
					q = checkpointSaved(e, setup, cfg.Checkpoint, saveCost)
				}
				if q > 0 {
					// The kill loses only work since the last completed save:
					// q·k fluid ticks are banked, with the tasks that ran to
					// completion inside them; the setup and q saves were
					// productive overhead, and only the tail burns. Resuming
					// the banked saves will cost the next period a restart.
					saved := q * cfg.Checkpoint
					rec.Work = saved
					res.Work += saved
					res.SetupTicks += setup + q*saveCost
					res.KilledTicks += e - setup - q*(cfg.Checkpoint+saveCost)
					restartDue = true
					if shipped > 0 {
						nDone := task.CompletedPrefix(bufs.tasks, saved)
						if nDone > 0 {
							rec.Tasks = nDone
							res.TasksCompleted += nDone
							res.TaskWork += task.Durations(bufs.tasks[:nDone])
						}
						if nDone < shipped {
							cfg.Bag.Return(bufs.tasks[nDone:])
						}
					}
				} else {
					res.KilledTicks += e
					if shipped > 0 {
						cfg.Bag.Return(bufs.tasks)
					}
				}
			default:
				rec.Outcome = Completed
				work := capacity
				rec.Work = work
				res.Work += work
				if work > 0 {
					res.SetupTicks += setup + saves*saveCost
				} else {
					res.SetupTicks += t // a period ≤ c is pure overhead
				}
				if shipped > 0 {
					rec.Tasks = shipped
					res.TasksCompleted += shipped
					res.TaskWork += task.Durations(bufs.tasks)
				}
			}
			if cfg.RecordPeriods {
				res.Periods = append(res.Periods, rec)
			}
			elapsed = end
		}

		if !interrupted {
			// Episode ran out; any shortfall between the schedule and the
			// residual lifespan is idle tail time, and the opportunity ends
			// (an adaptive scheduler always consumes L exactly; only
			// non-adaptive tails undershoot, and they do so terminally).
			res.IdleTicks += L - total
			L = 0
			break
		}

		res.Interrupts++
		if at > total {
			// Interrupt fell into trailing idle time after the episode
			// completed: nothing killed, but lifespan up to `at` is gone.
			res.IdleTicks += at - total
		} else if !killedInEpisode {
			return Result{}, fmt.Errorf("sim: internal accounting: interrupt at %d killed nothing in episode of %d", at, total)
		}
		L -= at
		p--
	}
	bufs.episode = ep // hand the grown buffer back for the next opportunity
	return res, nil
}

// checkpointPlan places the interior checkpoints of a period of length t:
// with interval k ≥ 1, after every k ticks of useful work the station pays
// the save cost s to save partial results. It returns the number of interior
// saves and the useful capacity left (t ⊖ c minus the save overhead), where
// c is the period's setup segment (including any restart surcharge). A save
// that would land exactly at the period end is dropped — the period end
// banks everything anyway — which is why the save count divides w−1, not w.
// With k < 1 checkpointing is off: no saves, capacity exactly t ⊖ c.
func checkpointPlan(t, c, k, s quant.Tick) (saves, capacity quant.Tick) {
	w := quant.PosSub(t, c)
	if k < 1 || w < 1 {
		return 0, w
	}
	saves = (w - 1) / (k + s)
	return saves, w - saves*s
}

// checkpointSaved counts the interior saves a kill at period-relative
// elapsed e has banked: save j occupies the work-span ticks
// (j·(k+s) − s, j·(k+s)] after the setup, so it is safe only when the kill
// lands strictly beyond c + j·(k+s). Since e never exceeds the period
// length, the result never exceeds checkpointPlan's save count.
func checkpointSaved(e, c, k, s quant.Tick) quant.Tick {
	if e <= c {
		return 0
	}
	return (e - c - 1) / (k + s)
}

func validateEpisode(s model.EpisodeScheduler, ep model.TickSchedule, p int, L quant.Tick) (quant.Tick, error) {
	var total quant.Tick
	for i, t := range ep {
		if t < 1 {
			return 0, fmt.Errorf("sim: scheduler %s emitted period %d of length %d at (p=%d, L=%d)",
				model.NameOf(s), i+1, t, p, L)
		}
		total += t
	}
	if total > L {
		return 0, fmt.Errorf("sim: scheduler %s overcommitted %d ticks into residual %d",
			model.NameOf(s), total, L)
	}
	return total, nil
}

// GuaranteedReplay runs the schedule against a recorded best-response
// adversary and returns the fluid work — a convenience for verifying that a
// minimax evaluation is achieved by an actual execution.
func GuaranteedReplay(s model.EpisodeScheduler, adv Interrupter, opp Opportunity) (quant.Tick, error) {
	res, err := Run(s, adv, opp, Config{})
	if err != nil {
		return 0, err
	}
	return res.Work, nil
}
