package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/game"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/task"
)

func TestOpportunityValidate(t *testing.T) {
	if err := (Opportunity{U: 0, P: 0, C: 1}).Validate(); err == nil {
		t.Error("U=0 accepted")
	}
	if err := (Opportunity{U: 10, P: -1, C: 1}).Validate(); err == nil {
		t.Error("P<0 accepted")
	}
	if err := (Opportunity{U: 10, P: 0, C: 0}).Validate(); err == nil {
		t.Error("C=0 accepted")
	}
	if err := (Opportunity{U: 10, P: 1, C: 1}).Validate(); err != nil {
		t.Errorf("valid opportunity rejected: %v", err)
	}
}

func TestRunNoInterrupts(t *testing.T) {
	res, err := Run(sched.SinglePeriod{}, adversary.None{}, Opportunity{U: 1000, P: 2, C: 10}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Work != 990 {
		t.Errorf("Work = %d, want 990", res.Work)
	}
	if res.Episodes != 1 || res.Interrupts != 0 {
		t.Errorf("Episodes=%d Interrupts=%d, want 1/0", res.Episodes, res.Interrupts)
	}
	if res.SetupTicks != 10 || res.IdleTicks != 0 || res.KilledTicks != 0 {
		t.Errorf("accounting: setup=%d idle=%d killed=%d", res.SetupTicks, res.IdleTicks, res.KilledTicks)
	}
}

func TestRunSinglePeriodKilledAtLastInstant(t *testing.T) {
	res, err := Run(sched.SinglePeriod{}, adversary.LastPeriod{}, Opportunity{U: 1000, P: 1, C: 10}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// First episode [1000] killed at its last instant: residual 0.
	if res.Work != 0 {
		t.Errorf("Work = %d, want 0", res.Work)
	}
	if res.Interrupts != 1 || res.KilledTicks != 1000 {
		t.Errorf("Interrupts=%d KilledTicks=%d, want 1/1000", res.Interrupts, res.KilledTicks)
	}
}

func TestRunScriptedMidPeriodInterrupt(t *testing.T) {
	// Two periods of 500; interrupt at offset 700 (inside period 2).
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{500, 500}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	adv := &adversary.Scripted{Offsets: []quant.Tick{700}}
	res, err := Run(na, adv, Opportunity{U: 1000, P: 1, C: 10}, Config{RecordPeriods: true})
	if err != nil {
		t.Fatal(err)
	}
	// Period 1 completes (490); period 2 dies with 200 ticks of progress.
	// Residual after interrupt: 300, rescheduled as one long period (p=0):
	// banks 290.
	if res.Work != 780 {
		t.Errorf("Work = %d, want 780", res.Work)
	}
	if res.KilledTicks != 200 {
		t.Errorf("KilledTicks = %d, want 200", res.KilledTicks)
	}
	if res.Episodes != 2 || res.Interrupts != 1 {
		t.Errorf("Episodes=%d Interrupts=%d, want 2/1", res.Episodes, res.Interrupts)
	}
	if len(res.Periods) != 3 {
		t.Fatalf("period log has %d rows, want 3", len(res.Periods))
	}
	if res.Periods[0].Outcome != Completed || res.Periods[1].Outcome != Killed || res.Periods[2].Outcome != Completed {
		t.Errorf("outcomes: %v %v %v", res.Periods[0].Outcome, res.Periods[1].Outcome, res.Periods[2].Outcome)
	}
	if res.Periods[1].Start != 500 || res.Periods[2].Start != 700 {
		t.Errorf("absolute starts: %d, %d; want 500, 700", res.Periods[1].Start, res.Periods[2].Start)
	}
}

func TestRunUnreachedPeriods(t *testing.T) {
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{100, 100, 100}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	adv := &adversary.Scripted{Offsets: []quant.Tick{50}}
	res, err := Run(na, adv, Opportunity{U: 300, P: 1, C: 10}, Config{RecordPeriods: true})
	if err != nil {
		t.Fatal(err)
	}
	// Interrupt at 50 kills period 1; periods 2,3 of episode 1 are unreached;
	// residual 250 rescheduled as one long period (240 work).
	if res.Work != 240 {
		t.Errorf("Work = %d, want 240", res.Work)
	}
	var unreached int
	for _, r := range res.Periods {
		if r.Outcome == Unreached {
			unreached++
		}
	}
	if unreached != 2 {
		t.Errorf("unreached rows = %d, want 2", unreached)
	}
}

// Conservation: every tick of lifespan is banked as work, spent on setup,
// destroyed by a kill, or idled away.
func TestLifespanConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := quant.Tick(10)
	ag, err := sched.NewAdaptiveGuideline(c)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		U := quant.Tick(100 + rng.Int63n(20000))
		P := rng.Intn(4)
		na, err := sched.NewNonAdaptive(U, P, c)
		if err != nil {
			t.Fatal(err)
		}
		schedulers := []model.EpisodeScheduler{ag, eq, na, sched.SinglePeriod{}, sched.EqualSplit{M: 7}}
		s := schedulers[rng.Intn(len(schedulers))]
		adv := &adversary.Random{Rng: rng, Prob: 0.7}
		res, err := Run(s, adv, Opportunity{U: U, P: P, C: c}, Config{})
		if err != nil {
			t.Fatalf("trial %d (%s U=%d P=%d): %v", trial, model.NameOf(s), U, P, err)
		}
		total := res.Work + res.SetupTicks + res.KilledTicks + res.IdleTicks
		if total != U {
			t.Fatalf("trial %d (%s U=%d P=%d): conservation broken: %d+%d+%d+%d = %d ≠ %d",
				trial, model.NameOf(s), U, P, res.Work, res.SetupTicks, res.KilledTicks, res.IdleTicks, total, U)
		}
		if res.Interrupts > P {
			t.Fatalf("trial %d: %d interrupts exceed budget %d", trial, res.Interrupts, P)
		}
	}
}

// Replaying the minimax best response through the simulator reproduces the
// evaluator's guaranteed work exactly — the evaluators and the simulator
// agree on the model.
func TestBestResponseReplayMatchesEvaluator(t *testing.T) {
	c := quant.Tick(10)
	U := quant.Tick(5000)
	for _, P := range []int{0, 1, 2, 3} {
		ag, err := sched.NewAdaptiveGuideline(c)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := sched.NewAdaptiveEqualized(c)
		if err != nil {
			t.Fatal(err)
		}
		na, err := sched.NewNonAdaptive(U, P, c)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []model.EpisodeScheduler{ag, eq, na} {
			want, br, err := game.EvaluateWithStrategy(s, P, U, c)
			if err != nil {
				t.Fatal(err)
			}
			got, err := GuaranteedReplay(s, br, Opportunity{U: U, P: P, C: c})
			if err != nil {
				t.Fatalf("%s: %v", model.NameOf(s), err)
			}
			if got != want {
				t.Errorf("P=%d %s: replay %d ≠ evaluator %d", P, model.NameOf(s), got, want)
			}
		}
	}
}

// Against any adversary, realized work is at least the guaranteed work.
func TestRealizedAtLeastGuaranteed(t *testing.T) {
	c := quant.Tick(10)
	U := quant.Tick(3000)
	P := 2
	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		t.Fatal(err)
	}
	guaranteed, err := game.Evaluate(eq, P, U, c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	advs := []Interrupter{
		adversary.None{},
		adversary.LastPeriod{},
		adversary.GreedyEqualization{C: c},
		&adversary.Random{Rng: rng, Prob: 0.9},
		&adversary.Poisson{Rng: rng, Mean: 500},
		adversary.Periodic{U: U, Every: 700},
	}
	for _, adv := range advs {
		for trial := 0; trial < 20; trial++ {
			res, err := Run(eq, adv, Opportunity{U: U, P: P, C: c}, Config{})
			if err != nil {
				t.Fatalf("%T: %v", adv, err)
			}
			if res.Work < guaranteed {
				t.Errorf("%T: realized %d < guaranteed %d", adv, res.Work, guaranteed)
			}
		}
	}
}

func TestRunWithTaskBag(t *testing.T) {
	c := quant.Tick(10)
	bag := task.NewBag(task.Fixed(100, 25))
	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(eq, adversary.None{}, Opportunity{U: 2000, P: 1, C: c}, Config{Bag: bag})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted == 0 {
		t.Fatal("no tasks completed")
	}
	if res.TaskWork != quant.Tick(res.TasksCompleted)*25 {
		t.Errorf("TaskWork = %d for %d tasks of 25", res.TaskWork, res.TasksCompleted)
	}
	// Task work can never exceed fluid work (packing loses, never gains).
	if res.TaskWork > res.Work {
		t.Errorf("TaskWork %d > fluid Work %d", res.TaskWork, res.Work)
	}
	if bag.Remaining()+res.TasksCompleted != 100 {
		t.Errorf("tasks leaked: %d remaining + %d done ≠ 100", bag.Remaining(), res.TasksCompleted)
	}
}

func TestKilledPeriodReturnsTasks(t *testing.T) {
	c := quant.Tick(10)
	bag := task.NewBag(task.Fixed(50, 20))
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{500, 500}, 1, c)
	if err != nil {
		t.Fatal(err)
	}
	adv := &adversary.Scripted{Offsets: []quant.Tick{500}} // kill period 1 at last instant
	res, err := Run(na, adv, Opportunity{U: 1000, P: 1, C: c}, Config{Bag: bag})
	if err != nil {
		t.Fatal(err)
	}
	// Period 1's tasks died with it; period 2 and the long tail bank tasks.
	if bag.Remaining()+res.TasksCompleted != 50 {
		t.Errorf("tasks leaked after a kill: %d + %d ≠ 50", bag.Remaining(), res.TasksCompleted)
	}
	if res.TasksCompleted == 0 {
		t.Error("no tasks completed in surviving periods")
	}
}

func TestRunContractViolations(t *testing.T) {
	over := model.EpisodeFunc(func(p int, L quant.Tick) model.TickSchedule {
		return model.TickSchedule{L + 1}
	})
	if _, err := Run(over, adversary.None{}, Opportunity{U: 100, P: 0, C: 10}, Config{}); err == nil {
		t.Error("overcommitting scheduler accepted")
	}
	zero := model.EpisodeFunc(func(p int, L quant.Tick) model.TickSchedule {
		return model.TickSchedule{0}
	})
	if _, err := Run(zero, adversary.None{}, Opportunity{U: 100, P: 0, C: 10}, Config{}); err == nil {
		t.Error("zero-length period accepted")
	}
	// Interrupter fires with no budget.
	eager := interrupterFunc(func(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
		return 1, true
	})
	if _, err := Run(sched.SinglePeriod{}, eager, Opportunity{U: 100, P: 0, C: 10}, Config{}); err == nil {
		t.Error("budgetless interrupt accepted")
	}
	// Interrupter fires beyond the residual lifespan.
	far := interrupterFunc(func(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
		return L + 1, true
	})
	if _, err := Run(sched.SinglePeriod{}, far, Opportunity{U: 100, P: 1, C: 10}, Config{}); err == nil {
		t.Error("beyond-lifespan interrupt accepted")
	}
	if _, err := Run(sched.SinglePeriod{}, adversary.None{}, Opportunity{U: 0, P: 0, C: 1}, Config{}); err == nil {
		t.Error("invalid opportunity accepted")
	}
}

type interrupterFunc func(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool)

func (f interrupterFunc) NextInterrupt(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
	return f(p, L, ep)
}

func TestInterruptInTrailingIdle(t *testing.T) {
	// Non-adaptive tail undershoots after a mid-period interrupt; a second
	// interrupt into the idle gap must kill nothing.
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{400, 400, 200}, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// First interrupt mid-period-1 at 100: tail = periods 2,3 (600 ticks),
	// residual 900 → 300 ticks of trailing idle. Second interrupt at 700
	// falls into... 600 < 700 ≤ 900: trailing idle.
	adv := &adversary.Scripted{Offsets: []quant.Tick{100, 700}}
	res, err := Run(na, adv, Opportunity{U: 1000, P: 2, C: 10}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Periods 2 (390) and 3 (190) complete; after the idle interrupt,
	// residual 200 is rescheduled as one long period (p exhausted): 190.
	if res.Work != 770 {
		t.Errorf("Work = %d, want 770", res.Work)
	}
	if res.KilledTicks != 100 {
		t.Errorf("KilledTicks = %d, want 100", res.KilledTicks)
	}
	if res.IdleTicks != 100 {
		t.Errorf("IdleTicks = %d, want 100 (idle before the second interrupt)", res.IdleTicks)
	}
}

func TestPeriodOutcomeString(t *testing.T) {
	for _, o := range []PeriodOutcome{Completed, Killed, Unreached, PeriodOutcome(42)} {
		if o.String() == "" {
			t.Errorf("empty String for %d", int(o))
		}
	}
}

func TestRunEmptyEpisodeIdlesOut(t *testing.T) {
	empty := model.EpisodeFunc(func(p int, L quant.Tick) model.TickSchedule { return nil })
	res, err := Run(empty, adversary.None{}, Opportunity{U: 500, P: 1, C: 10}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IdleTicks != 500 || res.Work != 0 {
		t.Errorf("idle=%d work=%d, want 500/0", res.IdleTicks, res.Work)
	}
}

// auditSource records every ship (TakeInto) and Return so tests can pin the
// single-shot shipping contract: each killed period returns exactly the
// slice it shipped at period start, never a rescan's worth.
type auditSource struct {
	bag     *task.Bag
	ships   [][]task.Task
	returns [][]task.Task
}

func (a *auditSource) Take(capacity quant.Tick) []task.Task {
	return a.TakeInto(nil, capacity)
}

func (a *auditSource) TakeInto(dst []task.Task, capacity quant.Tick) []task.Task {
	base := len(dst)
	dst = a.bag.TakeInto(dst, capacity)
	a.ships = append(a.ships, append([]task.Task(nil), dst[base:]...))
	return dst
}

func (a *auditSource) Return(tasks []task.Task) {
	a.returns = append(a.returns, append([]task.Task(nil), tasks...))
	a.bag.Return(tasks)
}

// Single-shot shipping: every period ships exactly once (at period start),
// and a killed period's Return carries exactly the tasks that ship handed
// it — the draconian-kill semantics are structural now, not a property of
// scan timing.
func TestSingleShotShippingReturnsExactlyShippedTasks(t *testing.T) {
	c := quant.Tick(10)
	src := &auditSource{bag: task.NewBag(task.Fixed(50, 20))}
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{300, 300, 400}, 1, c)
	if err != nil {
		t.Fatal(err)
	}
	// Kill period 2 mid-flight; period 1 completes, period 3 is unreached,
	// then the residual reschedules as one long period.
	adv := &adversary.Scripted{Offsets: []quant.Tick{450}}
	res, err := Run(na, adv, Opportunity{U: 1000, P: 1, C: c}, Config{Bag: src})
	if err != nil {
		t.Fatal(err)
	}
	// Ships: period 1, period 2 (killed), long tail. Unreached period 3 must
	// not ship.
	if len(src.ships) != 3 {
		t.Fatalf("ships = %d, want 3 (unreached periods must not ship)", len(src.ships))
	}
	if len(src.returns) != 1 {
		t.Fatalf("returns = %d, want 1 (only the killed period)", len(src.returns))
	}
	killedShip := src.ships[1]
	returned := src.returns[0]
	if len(killedShip) != len(returned) {
		t.Fatalf("killed period shipped %d tasks but returned %d", len(killedShip), len(returned))
	}
	for i := range killedShip {
		if killedShip[i].ID != returned[i].ID {
			t.Fatalf("returned task %d has ID %d, shipped ID %d", i, returned[i].ID, killedShip[i].ID)
		}
	}
	if src.bag.Remaining()+res.TasksCompleted != 50 {
		t.Errorf("tasks leaked: %d remaining + %d done ≠ 50", src.bag.Remaining(), res.TasksCompleted)
	}
}

// Reusing one Buffers across opportunities must not change any result — the
// per-station scratch the farm engine threads through is invisible.
func TestRunBuffersReuseBitIdentical(t *testing.T) {
	c := quant.Tick(10)
	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		t.Fatal(err)
	}
	shared := &Buffers{}
	rngA := rand.New(rand.NewSource(42))
	rngB := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		U := quant.Tick(100 + rngA.Int63n(5000))
		_ = rngB.Int63n(5000) // keep streams aligned
		advA := &adversary.Random{Rng: rngA, Prob: 0.7}
		advB := &adversary.Random{Rng: rngB, Prob: 0.7}
		bagA := task.NewBag(task.Uniform(60, 5, 40, int64(trial)))
		bagB := task.NewBag(task.Uniform(60, 5, 40, int64(trial)))
		resA, errA := Run(eq, advA, Opportunity{U: U, P: 2, C: c}, Config{Bag: bagA, Buffers: shared})
		resB, errB := Run(eq, advB, Opportunity{U: U, P: 2, C: c}, Config{Bag: bagB})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errA, errB)
		}
		if fmt.Sprintf("%+v", resA) != fmt.Sprintf("%+v", resB) {
			t.Fatalf("trial %d: shared-buffers result diverged:\n%+v\nvs\n%+v", trial, resA, resB)
		}
		if bagA.Remaining() != bagB.Remaining() {
			t.Fatalf("trial %d: bag state diverged: %d vs %d", trial, bagA.Remaining(), bagB.Remaining())
		}
	}
}

// The hot path must be allocation-free once warm: warm Buffers, a scheduler
// with an append path, no audit log.
func TestRunZeroAllocWhenWarm(t *testing.T) {
	c := quant.Tick(10)
	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		t.Fatal(err)
	}
	bufs := &Buffers{}
	opp := Opportunity{U: 4000, P: 2, C: c}
	if _, err := Run(eq, adversary.None{}, opp, Config{Buffers: bufs}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Run(eq, adversary.None{}, opp, Config{Buffers: bufs}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Run allocates %.1f per opportunity", allocs)
	}
}

func TestCheckpointPlanMath(t *testing.T) {
	cases := []struct {
		t, c, k         quant.Tick
		saves, capacity quant.Tick
	}{
		{100, 10, 0, 0, 90},  // checkpointing off: capacity is exactly t ⊖ c
		{100, 10, 20, 2, 70}, // saves at work-offsets 30, 60; 89/30 = 2
		{40, 10, 20, 0, 30},  // w=30 = k+c exactly: the save would land at the period end; dropped
		{41, 10, 20, 1, 21},  // w=31: one interior save
		{10, 10, 5, 0, 0},    // period ≤ c: no work, no saves
		{12, 10, 1, 0, 2},    // w=2, k+c=11: save would overrun the period
	}
	for _, tc := range cases {
		// Save cost = setup cost: the pre-split pricing.
		saves, capacity := checkpointPlan(tc.t, tc.c, tc.k, tc.c)
		if saves != tc.saves || capacity != tc.capacity {
			t.Errorf("checkpointPlan(%d,%d,%d) = (%d,%d), want (%d,%d)",
				tc.t, tc.c, tc.k, saves, capacity, tc.saves, tc.capacity)
		}
	}
	// A save is banked only strictly after its last tick.
	if q := checkpointSaved(40, 10, 20, 10); q != 0 {
		t.Errorf("kill at e=40 (save ends at 40) saved %d, want 0", q)
	}
	if q := checkpointSaved(41, 10, 20, 10); q != 1 {
		t.Errorf("kill at e=41 saved %d, want 1", q)
	}
	if q := checkpointSaved(75, 10, 20, 10); q != 2 {
		t.Errorf("kill at e=75 saved %d, want 2", q)
	}
	if q := checkpointSaved(10, 10, 20, 10); q != 0 {
		t.Errorf("kill inside the setup saved %d, want 0", q)
	}
}

func TestCheckpointSplitCostsMath(t *testing.T) {
	// A cheap save cost packs more saves into the same period: t=100, c=10,
	// k=20, s=2 → w=90, saves = 89/22 = 4, capacity = 90 − 8 = 82.
	if saves, capacity := checkpointPlan(100, 10, 20, 2); saves != 4 || capacity != 82 {
		t.Errorf("cheap-save plan = (%d,%d), want (4,82)", saves, capacity)
	}
	// checkpointSaved strides by k+s, not k+c: kill at e=33 is strictly past
	// c + (k+s) = 32, banking one save.
	if q := checkpointSaved(33, 10, 20, 2); q != 1 {
		t.Errorf("kill at e=33 with s=2 saved %d, want 1", q)
	}
	if q := checkpointSaved(32, 10, 20, 2); q != 0 {
		t.Errorf("kill at e=32 with s=2 saved %d, want 0", q)
	}
}

// TestCheckpointZeroCostsPinPreSplit pins the split-cost zero values to the
// pre-split behavior: CheckpointSave=0 prices saves at c, CheckpointRestart=0
// makes restarts free, so a Config that never names them runs bit-identically.
func TestCheckpointZeroCostsPinPreSplit(t *testing.T) {
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{100, 100}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	opp := Opportunity{U: 200, P: 1, C: 10}
	adv := adversary.Scripted{Offsets: []quant.Tick{75}}
	base, err := Run(na, &adv, opp, Config{Checkpoint: 20, RecordPeriods: true})
	if err != nil {
		t.Fatal(err)
	}
	adv2 := adversary.Scripted{Offsets: []quant.Tick{75}}
	explicit, err := Run(na, &adv2, opp, Config{Checkpoint: 20, CheckpointSave: 10, RecordPeriods: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, explicit) {
		t.Errorf("explicit save cost = setup cost diverged from the zero value:\n%+v\n%+v", base, explicit)
	}
}

// TestCheckpointRestartCharged verifies the restart surcharge: after a kill
// banks saves, the next reached period's setup segment grows by the restart
// cost, shrinking its capacity and growing SetupTicks by exactly that cost.
func TestCheckpointRestartCharged(t *testing.T) {
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{100, 100}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	opp := Opportunity{U: 200, P: 1, C: 10}
	run := func(restart quant.Tick) Result {
		adv := adversary.Scripted{Offsets: []quant.Tick{75}}
		res, err := Run(na, &adv, opp, Config{Checkpoint: 20, CheckpointRestart: restart, RecordPeriods: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free, priced := run(0), run(6)
	// Kill at e=75 in period 1 banks 2 saves (40 fluid ticks) either way.
	if free.Periods[0].Work != 40 || priced.Periods[0].Work != 40 {
		t.Fatalf("killed period banked %d/%d, want 40/40", free.Periods[0].Work, priced.Periods[0].Work)
	}
	// The episode-2 period (after the unreached row) resumes the saves: its
	// setup is 10+6, so capacity drops by 6.
	if got, want := priced.Periods[2].Work, free.Periods[2].Work-6; got != want {
		t.Errorf("restarted period banked %d, want %d", got, want)
	}
	if got, want := priced.SetupTicks, free.SetupTicks+6; got != want {
		t.Errorf("SetupTicks = %d, want %d", got, want)
	}
	if got, want := priced.Work, free.Work-6; got != want {
		t.Errorf("Work = %d, want %d", got, want)
	}
}

func TestCheckpointCompletedPeriodPaysSaves(t *testing.T) {
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{100}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(na, adversary.None{}, Opportunity{U: 100, P: 0, C: 10}, Config{Checkpoint: 20})
	if err != nil {
		t.Fatal(err)
	}
	// w = 90, two interior saves at work-offsets 30 and 60: capacity 70.
	if res.Work != 70 {
		t.Errorf("Work = %d, want 70", res.Work)
	}
	if res.SetupTicks != 30 {
		t.Errorf("SetupTicks = %d, want 30 (setup + 2 saves)", res.SetupTicks)
	}
	if res.KilledTicks != 0 || res.IdleTicks != 0 {
		t.Errorf("killed=%d idle=%d, want 0/0", res.KilledTicks, res.IdleTicks)
	}
}

func TestCheckpointKillSavesPrefix(t *testing.T) {
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{100}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	adv := &adversary.Scripted{Offsets: []quant.Tick{75}}
	res, err := Run(na, adv, Opportunity{U: 100, P: 1, C: 10}, Config{Checkpoint: 20, RecordPeriods: true})
	if err != nil {
		t.Fatal(err)
	}
	// Kill at e=75: both saves (work-offsets 30, 60 → elapsed 40, 70) banked.
	// The killed period banks 2·20 = 40 with setup 10 + 2 saves = 30
	// productive and only 5 ticks dead; the residual 25 reschedules as one
	// period (w=15, too short for a save): +15 work, +10 setup.
	if res.Work != 55 {
		t.Errorf("Work = %d, want 55", res.Work)
	}
	if res.SetupTicks != 40 {
		t.Errorf("SetupTicks = %d, want 40", res.SetupTicks)
	}
	if res.KilledTicks != 5 {
		t.Errorf("KilledTicks = %d, want 5", res.KilledTicks)
	}
	if res.IdleTicks != 0 {
		t.Errorf("IdleTicks = %d, want 0", res.IdleTicks)
	}
	// Lifespan conservation: every tick is setup, banked, killed or idle.
	if got := res.Work + res.SetupTicks + res.KilledTicks + res.IdleTicks; got != 100 {
		t.Errorf("accounted lifespan = %d, want 100", got)
	}
	if res.Periods[0].Outcome != Killed || res.Periods[0].Work != 40 {
		t.Errorf("period record = %+v, want Killed with Work 40", res.Periods[0])
	}
}

func TestCheckpointKillBanksTaskPrefix(t *testing.T) {
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{100}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	bag := task.NewBag([]task.Task{
		{ID: 0, Duration: 15}, {ID: 1, Duration: 20}, {ID: 2, Duration: 30}, {ID: 3, Duration: 40},
	})
	adv := &adversary.Scripted{Offsets: []quant.Tick{41}}
	res, err := Run(na, adv, Opportunity{U: 100, P: 1, C: 10}, Config{Checkpoint: 20, Bag: bag})
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 70 ships tasks 0,1,2 (first-fit: 15+20+30). Kill at e=41 banks
	// one save (20 work ticks): only task 0 completed inside it; tasks 1,2
	// return to the bag's front ahead of task 3 (+20 work, +20 setup, 1 tick
	// dead). The residual 59 reschedules as one period with its own interior
	// save (capacity 39), which ships and completes task 1 (first-fit: 30
	// and 40 no longer fit behind it).
	if res.Work != 20+39 || res.TasksCompleted != 2 || res.TaskWork != 35 {
		t.Errorf("Work=%d TasksCompleted=%d TaskWork=%d, want 59/2/35", res.Work, res.TasksCompleted, res.TaskWork)
	}
	if res.KilledTicks != 1 {
		t.Errorf("KilledTicks = %d, want 1", res.KilledTicks)
	}
	if res.SetupTicks != 40 {
		t.Errorf("SetupTicks = %d, want 40", res.SetupTicks)
	}
	if bag.Remaining() != 2 || bag.RemainingWork() != 70 {
		t.Errorf("bag after run: %d tasks, %d work; want 2/70", bag.Remaining(), bag.RemainingWork())
	}
}

func TestCheckpointHugeIntervalIsDraconian(t *testing.T) {
	// An interval no period can reach places no saves: results must be
	// bit-identical to the pure draconian contract.
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{500, 500}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	run := func(ck quant.Tick) Result {
		bag := task.NewBag(task.Fixed(50, 25))
		adv := &adversary.Scripted{Offsets: []quant.Tick{700}}
		res, err := Run(na, adv, Opportunity{U: 1000, P: 1, C: 10}, Config{Checkpoint: ck, Bag: bag, RecordPeriods: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base, huge := run(0), run(1<<40)
	if !reflect.DeepEqual(base, huge) {
		t.Errorf("huge checkpoint interval diverged from draconian baseline:\n%+v\n%+v", base, huge)
	}
}
