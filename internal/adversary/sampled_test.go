package adversary

import (
	"math/rand"
	"testing"

	"cyclesteal/internal/game"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/sim"
)

func TestSampledWorstContract(t *testing.T) {
	s := &SampledWorst{Rng: rand.New(rand.NewSource(1)), C: 10}
	ep := model.TickSchedule{300, 200, 100}
	at, ok := s.NextInterrupt(2, 1000, ep)
	if !ok {
		t.Fatal("did not interrupt")
	}
	// Must fire at a period boundary within the episode.
	valid := map[quant.Tick]bool{300: true, 500: true, 600: true}
	if !valid[at] {
		t.Errorf("offset %d is not a period boundary", at)
	}
	if _, ok := s.NextInterrupt(0, 1000, ep); ok {
		t.Error("interrupted with no budget")
	}
	if _, ok := s.NextInterrupt(1, 1000, nil); ok {
		t.Error("interrupted an empty episode")
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestSampledWorstSamplesLongEpisodes(t *testing.T) {
	s := &SampledWorst{Rng: rand.New(rand.NewSource(2)), C: 10, K: 8}
	ep := make(model.TickSchedule, 200)
	for i := range ep {
		ep[i] = 50
	}
	prefix := ep.PrefixSums()
	at, ok := s.NextInterrupt(1, ep.Total(), ep)
	if !ok {
		t.Fatal("did not interrupt")
	}
	found := false
	for _, b := range prefix[1:] {
		if at == b {
			found = true
		}
	}
	if !found {
		t.Errorf("offset %d not on a boundary", at)
	}
}

// Sandwich: realized work under SampledWorst lies between the exact
// guaranteed floor and the uninterrupted ceiling, and for the non-adaptive
// guideline at p = 1 it should land close to the floor (the heuristic's
// damage currency is exact there).
func TestSampledWorstSandwich(t *testing.T) {
	c := quant.Tick(10)
	U := quant.Tick(10000)
	na, err := sched.NewNonAdaptive(U, 1, c)
	if err != nil {
		t.Fatal(err)
	}
	floor, err := game.Evaluate(na, 1, U, c)
	if err != nil {
		t.Fatal(err)
	}
	ceiling, err := game.Evaluate(na, 0, U, c)
	if err != nil {
		t.Fatal(err)
	}
	adv := &SampledWorst{Rng: rand.New(rand.NewSource(3)), C: c}
	res, err := sim.Run(na, adv, sim.Opportunity{U: U, P: 1, C: c}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Work < floor || res.Work > ceiling {
		t.Fatalf("realized %d outside [floor %d, ceiling %d]", res.Work, floor, ceiling)
	}
	// Equal periods ⇒ the exact best kill is among the heuristic's
	// candidates: expect the floor within a period's worth.
	if res.Work > floor+U/quant.Tick(na.M()) {
		t.Errorf("heuristic left too much on the table: %d vs floor %d", res.Work, floor)
	}
}

// Against the equalized schedule, more candidates can only help (weakly):
// K = all boundaries should do at least as much damage as K = 2 on average.
func TestSampledWorstMoreCandidatesMoreDamage(t *testing.T) {
	c := quant.Tick(10)
	U := quant.Tick(20000)
	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(k int, seed int64) float64 {
		var sum float64
		const trials = 40
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < trials; i++ {
			adv := &SampledWorst{Rng: rng, C: c, K: k}
			res, err := sim.Run(eq, adv, sim.Opportunity{U: U, P: 2, C: c}, sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.Work)
		}
		return sum / trials
	}
	few := mean(2, 5)
	many := mean(1000, 5) // covers every boundary
	if many > few+1 {
		t.Errorf("full-coverage adversary (%g) did less damage than 2-sample (%g)", many, few)
	}
}
