package adversary

import (
	"math"
	"math/rand"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
)

// SampledWorst approximates the malicious adversary on instances too large
// for the exact minimax evaluator: at each episode it considers K candidate
// interrupt placements — every period boundary if the episode is short,
// otherwise a random sample of boundaries — scores each by the p = 1
// equalization damage t_k + k·c plus a √(2c·residual) estimate of future
// leverage, and fires at the worst. Its damage lower-bounds the exact
// adversary's, so realized work under SampledWorst upper-bounds the true
// guaranteed work; tests sandwich it between the exact floor and the benign
// ceiling.
type SampledWorst struct {
	Rng *rand.Rand
	C   quant.Tick
	K   int // candidate placements per episode (default 32)
}

// NextInterrupt implements the simulator's Interrupter contract.
func (s *SampledWorst) NextInterrupt(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
	if p <= 0 || len(ep) == 0 {
		return 0, false
	}
	k := s.K
	if k <= 0 {
		k = 32
	}
	prefix := ep.PrefixSums()
	m := len(ep)

	damage := func(idx int) float64 {
		// Killing period idx (0-based) costs its length plus the setup of
		// every completed period before it, and leaves the scheduler facing
		// the √-law deficit on the residual.
		residual := L - prefix[idx+1]
		d := float64(ep[idx]) + float64(idx+1)*float64(s.C)
		if p > 1 && residual > 0 {
			d += math.Sqrt(2 * float64(s.C) * float64(residual))
		}
		return d
	}

	bestIdx := -1
	bestDamage := 0.0
	consider := func(idx int) {
		if d := damage(idx); bestIdx < 0 || d > bestDamage {
			bestIdx, bestDamage = idx, d
		}
	}
	if m <= k {
		for idx := 0; idx < m; idx++ {
			consider(idx)
		}
	} else {
		consider(0)     // the longest period in the paper's schedules
		consider(m - 1) // the last-instant classic
		for i := 0; i < k-2; i++ {
			consider(s.Rng.Intn(m))
		}
	}
	return prefix[bestIdx+1], true
}

// Name labels the strategy in experiment tables.
func (s *SampledWorst) Name() string { return "sampled-worst" }
