package adversary

import (
	"math/rand"
	"testing"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
)

var episode = model.TickSchedule{300, 200, 100}

func TestNone(t *testing.T) {
	if _, ok := (None{}).NextInterrupt(3, 1000, episode); ok {
		t.Error("None interrupted")
	}
	if (None{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestLastPeriod(t *testing.T) {
	at, ok := (LastPeriod{}).NextInterrupt(1, 1000, episode)
	if !ok || at != 600 {
		t.Errorf("want interrupt at 600, got (%d, %v)", at, ok)
	}
	if _, ok := (LastPeriod{}).NextInterrupt(0, 1000, episode); ok {
		t.Error("interrupted with no budget")
	}
	if _, ok := (LastPeriod{}).NextInterrupt(1, 1000, nil); ok {
		t.Error("interrupted an empty episode")
	}
}

func TestGreedyEqualization(t *testing.T) {
	g := GreedyEqualization{C: 10}
	// Damages: 300+10, 200+20, 100+30 → kill period 1 at T_1 = 300.
	at, ok := g.NextInterrupt(1, 1000, episode)
	if !ok || at != 300 {
		t.Errorf("want 300, got (%d, %v)", at, ok)
	}
	// Larger c shifts the balance toward later periods.
	g2 := GreedyEqualization{C: 120}
	// Damages: 300+120, 200+240, 100+360 → kill period 3 at T_3 = 600.
	at, ok = g2.NextInterrupt(1, 1000, episode)
	if !ok || at != 600 {
		t.Errorf("want 600, got (%d, %v)", at, ok)
	}
	if _, ok := g.NextInterrupt(0, 1000, episode); ok {
		t.Error("interrupted with no budget")
	}
}

func TestScripted(t *testing.T) {
	s := &Scripted{Offsets: []quant.Tick{50, 9999, 0}}
	at, ok := s.NextInterrupt(3, 1000, episode)
	if !ok || at != 50 {
		t.Errorf("first: want 50, got (%d, %v)", at, ok)
	}
	// Beyond-lifespan offsets clamp to the residual lifespan (an offset in
	// (episode total, L] interrupts trailing idle time and is legal).
	at, ok = s.NextInterrupt(2, 1000, episode)
	if !ok || at != 1000 {
		t.Errorf("second: want clamp to 1000, got (%d, %v)", at, ok)
	}
	// Zero offsets clamp up to 1.
	at, ok = s.NextInterrupt(1, 1000, episode)
	if !ok || at != 1 {
		t.Errorf("third: want clamp to 1, got (%d, %v)", at, ok)
	}
	if _, ok := s.NextInterrupt(1, 1000, episode); ok {
		t.Error("script exhausted but still interrupting")
	}
	s.Reset()
	if at, ok := s.NextInterrupt(1, 1000, episode); !ok || at != 50 {
		t.Errorf("after Reset: want 50, got (%d, %v)", at, ok)
	}
	if _, ok := (&Scripted{Offsets: []quant.Tick{5}}).NextInterrupt(0, 10, episode); ok {
		t.Error("interrupted with no budget")
	}
}

func TestRandomBounds(t *testing.T) {
	r := &Random{Rng: rand.New(rand.NewSource(1)), Prob: 1.0}
	for i := 0; i < 200; i++ {
		at, ok := r.NextInterrupt(1, 1000, episode)
		if !ok {
			t.Fatal("Prob=1 did not interrupt")
		}
		if at < 1 || at > episode.Total() {
			t.Fatalf("offset %d outside [1, %d]", at, episode.Total())
		}
	}
	never := &Random{Rng: rand.New(rand.NewSource(1)), Prob: 0}
	if _, ok := never.NextInterrupt(1, 1000, episode); ok {
		t.Error("Prob=0 interrupted")
	}
}

func TestPoisson(t *testing.T) {
	po := &Poisson{Rng: rand.New(rand.NewSource(7)), Mean: 100}
	fired := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		at, ok := po.NextInterrupt(1, 1000, episode)
		if ok {
			fired++
			if at < 1 || at > episode.Total() {
				t.Fatalf("offset %d outside episode", at)
			}
		}
	}
	// P(arrival ≤ 600 | mean 100) = 1 − e^{−6} ≈ 0.9975.
	if fired < trials*95/100 {
		t.Errorf("poisson(mean=100) fired only %d/%d times inside a 600-tick episode", fired, trials)
	}
	long := &Poisson{Rng: rand.New(rand.NewSource(7)), Mean: 1e7}
	fired = 0
	for i := 0; i < 200; i++ {
		if _, ok := long.NextInterrupt(1, 1000, episode); ok {
			fired++
		}
	}
	if fired > 10 {
		t.Errorf("poisson(mean=1e7) fired %d/200 times; expected almost never", fired)
	}
	if _, ok := po.NextInterrupt(0, 1000, episode); ok {
		t.Error("interrupted with no budget")
	}
	if _, ok := (&Poisson{Rng: rand.New(rand.NewSource(1)), Mean: 0}).NextInterrupt(1, 10, episode); ok {
		t.Error("mean=0 should disable interrupts")
	}
}

func TestPeriodic(t *testing.T) {
	pe := Periodic{U: 1000, Every: 250}
	// Fresh opportunity: elapsed 0, next tick at 250 → offset 250.
	at, ok := pe.NextInterrupt(2, 1000, episode)
	if !ok || at != 250 {
		t.Errorf("want 250, got (%d, %v)", at, ok)
	}
	// Elapsed 400 (L=600): next at 500 → offset 100.
	at, ok = pe.NextInterrupt(1, 600, episode)
	if !ok || at != 100 {
		t.Errorf("want 100, got (%d, %v)", at, ok)
	}
	// Elapsed 500 exactly: next at 750 → offset 250.
	at, ok = pe.NextInterrupt(1, 500, episode)
	if !ok || at != 250 {
		t.Errorf("want 250, got (%d, %v)", at, ok)
	}
	// Episode too short to reach the next tick.
	short := model.TickSchedule{100}
	if _, ok := pe.NextInterrupt(1, 1000, short); ok {
		t.Error("interrupted beyond the episode")
	}
	if _, ok := (Periodic{U: 100, Every: 0}).NextInterrupt(1, 100, episode); ok {
		t.Error("Every=0 should disable interrupts")
	}
}

func TestNames(t *testing.T) {
	named := []interface{ Name() string }{
		None{}, LastPeriod{}, GreedyEqualization{}, &Scripted{}, &Random{}, &Poisson{}, Periodic{},
	}
	for _, n := range named {
		if n.Name() == "" {
			t.Errorf("%T has empty name", n)
		}
	}
}
