// Package adversary implements interrupt-placement strategies for the owner
// of the borrowed workstation — the "malicious adversary" of §4 and several
// benign stochastic owners used to contrast guaranteed with expected output
// (the companion submodel of paper I).
//
// Every strategy satisfies the simulator's Interrupter contract: at the start
// of each episode it is shown the remaining interrupt budget p, the residual
// lifespan L and the episode-schedule about to run, and answers either "let
// it run" or "interrupt after `at` ticks of this episode". The exactly
// optimal adversary is game.BestResponse (extracted from the minimax
// evaluator); the strategies here are scripted, heuristic or stochastic.
package adversary

import (
	"math/rand"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
)

// None never interrupts: the benign owner. Against None every schedule banks
// its uninterrupted work, which is how the c-overhead of short periods shows
// up in experiments.
type None struct{}

// NextInterrupt implements the Interrupter contract.
func (None) NextInterrupt(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
	return 0, false
}

// Name labels the strategy in experiment tables.
func (None) Name() string { return "none" }

// LastPeriod interrupts at the last instant of the episode's final period —
// the classic "unplug just before the results ship" owner. Against a single
// long period this is the worst possible adversary.
type LastPeriod struct{}

// NextInterrupt implements the Interrupter contract.
func (LastPeriod) NextInterrupt(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
	if p <= 0 || len(ep) == 0 {
		return 0, false
	}
	return ep.Total(), true
}

// Name labels the strategy in experiment tables.
func (LastPeriod) Name() string { return "last-period" }

// GreedyEqualization interrupts at the last instant of the period k that
// maximizes the p = 1 damage t_k + k·c — the equalization currency of
// Theorem 4.3. It is exactly optimal for p = 1 against schedules whose
// continuation is a single long period, and a strong heuristic otherwise.
type GreedyEqualization struct {
	C quant.Tick
}

// NextInterrupt implements the Interrupter contract.
func (g GreedyEqualization) NextInterrupt(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
	if p <= 0 || len(ep) == 0 {
		return 0, false
	}
	var bestAt, bestDamage quant.Tick
	var elapsed quant.Tick
	for k, t := range ep {
		elapsed += t
		damage := t + quant.Tick(k+1)*g.C
		if damage > bestDamage {
			bestDamage = damage
			bestAt = elapsed
		}
	}
	return bestAt, true
}

// Name labels the strategy in experiment tables.
func (g GreedyEqualization) Name() string { return "greedy-equalization" }

// Scripted replays a fixed list of episode-relative interrupt offsets, one
// per episode, then stops interrupting. Offsets are clamped into (0, L] — an
// offset beyond the episode's schedule but within the lifespan interrupts
// trailing idle time. Useful for deterministic regression tests and for
// replaying recorded owner traces.
type Scripted struct {
	Offsets []quant.Tick
	next    int
}

// NextInterrupt implements the Interrupter contract.
func (s *Scripted) NextInterrupt(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
	if p <= 0 || s.next >= len(s.Offsets) || len(ep) == 0 {
		return 0, false
	}
	at := s.Offsets[s.next]
	s.next++
	if at > L {
		at = L
	}
	if at < 1 {
		at = 1
	}
	return at, true
}

// Name labels the strategy in experiment tables.
func (s *Scripted) Name() string { return "scripted" }

// Reset rewinds the script for reuse across runs.
func (s *Scripted) Reset() { s.next = 0 }

// Random interrupts each episode with probability Prob, at an offset chosen
// uniformly from the episode. A memoryless, non-malicious owner.
type Random struct {
	Rng  *rand.Rand
	Prob float64
}

// NextInterrupt implements the Interrupter contract.
func (r *Random) NextInterrupt(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
	if p <= 0 || len(ep) == 0 || r.Rng.Float64() >= r.Prob {
		return 0, false
	}
	total := ep.Total()
	return 1 + quant.Tick(r.Rng.Int63n(int64(total))), true
}

// Name labels the strategy in experiment tables.
func (r *Random) Name() string { return "random" }

// Poisson models an owner who returns after an exponentially distributed
// absence with the given mean (in ticks): the first arrival inside the
// episode interrupts it. This is the natural stochastic owner for NOW
// workstations and the bridge to the expected-output submodel.
type Poisson struct {
	Rng  *rand.Rand
	Mean float64
}

// NextInterrupt implements the Interrupter contract.
func (po *Poisson) NextInterrupt(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
	if p <= 0 || len(ep) == 0 || po.Mean <= 0 {
		return 0, false
	}
	arrival := quant.Tick(po.Rng.ExpFloat64()*po.Mean) + 1
	if total := ep.Total(); arrival <= total {
		return arrival, true
	}
	return 0, false
}

// Name labels the strategy in experiment tables.
func (po *Poisson) Name() string { return "poisson" }

// Periodic models an owner on a fixed routine: starting from the beginning of
// the opportunity, they reclaim the machine every Every ticks of lifespan.
// The strategy derives the absolute elapsed time from U − L, so it must be
// told the opportunity lifespan it runs in.
type Periodic struct {
	U     quant.Tick
	Every quant.Tick
}

// NextInterrupt implements the Interrupter contract.
func (pe Periodic) NextInterrupt(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
	if p <= 0 || len(ep) == 0 || pe.Every < 1 {
		return 0, false
	}
	elapsed := pe.U - L
	if elapsed < 0 {
		elapsed = 0
	}
	// Next multiple of Every strictly after the elapsed point.
	next := (elapsed/pe.Every + 1) * pe.Every
	offset := next - elapsed
	if total := ep.Total(); offset > total {
		return 0, false
	}
	return offset, true
}

// Name labels the strategy in experiment tables.
func (pe Periodic) Name() string { return "periodic" }
