package game

import (
	"math/rand"
	"testing"

	"cyclesteal/internal/quant"
)

func TestSolveValueRowMatchesFullSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		P := rng.Intn(5)
		U := quant.Tick(100 + rng.Intn(900))
		c := quant.Tick(1 + rng.Intn(25))
		row, err := SolveValueRow(P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Solve(P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		for L := quant.Tick(0); L <= U; L++ {
			if row[L] != full.Value(P, L) {
				t.Fatalf("trial %d (P=%d U=%d c=%d): row[%d] = %d ≠ %d",
					trial, P, U, c, L, row[L], full.Value(P, L))
			}
		}
	}
}

func TestSolveValueRowValidation(t *testing.T) {
	if _, err := SolveValueRow(-1, 100, 10); err == nil {
		t.Error("P<0 accepted")
	}
	if _, err := SolveValueRow(1, 100, 0); err == nil {
		t.Error("c=0 accepted")
	}
}

func TestSolveValueRowP0(t *testing.T) {
	row, err := SolveValueRow(0, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	for L := quant.Tick(0); L <= 50; L++ {
		if row[L] != quant.PosSub(L, 7) {
			t.Fatalf("row[%d] = %d", L, row[L])
		}
	}
}

func TestSolveValueRowLargeLifespan(t *testing.T) {
	if testing.Short() {
		t.Skip("long: million-tick value row")
	}
	// A lifespan whose full table would be 5 rows; the rolling solver needs 2.
	row, err := SolveValueRow(4, 1_000_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	v := row[1_000_000]
	if v <= 0 || v >= 1_000_000 {
		t.Fatalf("implausible value %d", v)
	}
	// Spot-check monotonicity at the top end.
	for L := quant.Tick(999_000); L < 1_000_000; L++ {
		if row[L+1] < row[L] {
			t.Fatalf("row not monotone at %d", L)
		}
	}
}
