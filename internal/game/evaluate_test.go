package game

import (
	"math/rand"
	"testing"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/theory"
)

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(sched.SinglePeriod{}, -1, 100, 10); err == nil {
		t.Error("P<0 accepted")
	}
	if _, err := Evaluate(sched.SinglePeriod{}, 1, 100, 0); err == nil {
		t.Error("c=0 accepted")
	}
}

// A single long period is worth U−c with no interrupts and exactly 0 against
// one malicious interrupt (killed at the last instant).
func TestEvaluateSinglePeriod(t *testing.T) {
	w, err := Evaluate(sched.SinglePeriod{}, 0, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w != 990 {
		t.Errorf("p=0 single period = %d, want 990", w)
	}
	w, err = Evaluate(sched.SinglePeriod{}, 1, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Errorf("p=1 single period = %d, want 0", w)
	}
}

// Hand-computable case: two equal periods, p=1, the adversary kills the
// larger... they're equal, so killing either costs U/2; then the survivor is
// rescheduled as one long period of U/2, worth U/2 − c.
func TestEvaluateEqualSplitHandCase(t *testing.T) {
	// U=1000, c=10, periods [500, 500]. Interrupt at end of period 1:
	// banked 0, residual 500, rescheduled single period → 490.
	// Interrupt at end of period 2: banked 490, residual 0 → 490.
	// No interrupt: 980. Worst case 490.
	na, err := sched.NonAdaptiveFromPeriods(model.TickSchedule{500, 500}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Evaluate(na, 1, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w != 490 {
		t.Errorf("worst case = %d, want 490", w)
	}
}

func TestEvaluateOvercommittingSchedulerErrors(t *testing.T) {
	bad := model.EpisodeFunc(func(p int, L quant.Tick) model.TickSchedule {
		return model.TickSchedule{L + 1}
	})
	if _, err := Evaluate(bad, 1, 100, 10); err == nil {
		t.Error("overcommitting scheduler accepted")
	}
	zero := model.EpisodeFunc(func(p int, L quant.Tick) model.TickSchedule {
		return model.TickSchedule{0, L}
	})
	if _, err := Evaluate(zero, 1, 100, 10); err == nil {
		t.Error("zero-length period accepted")
	}
}

// No scheduler can beat the game value (optimality of the DP).
func TestNoSchedulerBeatsGameValue(t *testing.T) {
	c := quant.Tick(10)
	U := quant.Tick(2000)
	for _, P := range []int{1, 2, 3} {
		s, err := Solve(P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		na, err := sched.NewNonAdaptive(U, P, c)
		if err != nil {
			t.Fatal(err)
		}
		ag, err := sched.NewAdaptiveGuideline(c)
		if err != nil {
			t.Fatal(err)
		}
		op1, err := sched.NewOptimalP1(c)
		if err != nil {
			t.Fatal(err)
		}
		schedulers := []model.EpisodeScheduler{
			na, ag, op1,
			sched.SinglePeriod{},
			sched.EqualSplit{M: 10},
			sched.FixedChunk{T: 150},
		}
		for _, sc := range schedulers {
			w, err := Evaluate(sc, P, U, c)
			if err != nil {
				t.Fatalf("%s: %v", model.NameOf(sc), err)
			}
			if v := s.Value(P, U); w > v {
				t.Errorf("P=%d: %s guarantees %d > game value %d", P, model.NameOf(sc), w, v)
			}
		}
	}
}

// The generic minimax evaluator on the tail-semantics wrapper must agree
// exactly with the direct non-adaptive kill-set DP.
func TestNonAdaptiveEvaluatorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		c := quant.Tick(1 + rng.Intn(15))
		m := 1 + rng.Intn(10)
		periods := make(model.TickSchedule, m)
		for i := range periods {
			periods[i] = quant.Tick(1 + rng.Intn(60))
		}
		P := rng.Intn(4)
		na, err := sched.NonAdaptiveFromPeriods(periods, P, c)
		if err != nil {
			t.Fatal(err)
		}
		generic, err := Evaluate(na, P, periods.Total(), c)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := EvaluateNonAdaptive(periods, P, c)
		if err != nil {
			t.Fatal(err)
		}
		if generic != direct {
			t.Fatalf("trial %d (c=%d P=%d periods=%v): generic %d ≠ direct %d",
				trial, c, P, periods, generic, direct)
		}
	}
}

// Brute force over every interrupt subset, for small schedules, as a third
// independent implementation of the non-adaptive worst case.
func bruteForceNonAdaptive(periods model.TickSchedule, P int, c quant.Tick) quant.Tick {
	m := len(periods)
	U := periods.Total()
	prefix := periods.PrefixSums()
	gains := make([]quant.Tick, m)
	var full quant.Tick
	for i, tk := range periods {
		gains[i] = quant.PosSub(tk, c)
		full += gains[i]
	}
	best := full
	// Enumerate subsets by bitmask (m ≤ ~14).
	for mask := 1; mask < 1<<m; mask++ {
		a := 0
		last := -1
		var killed quant.Tick
		for i := 0; i < m; i++ {
			if mask>>i&1 == 1 {
				a++
				last = i
				killed += gains[i]
			}
		}
		if a > P {
			continue
		}
		var w quant.Tick
		if a < P {
			w = full - killed
		} else {
			// Work before the last interrupt, minus earlier kills, plus the
			// long replacement period.
			var before quant.Tick
			for i := 0; i < last; i++ {
				if mask>>i&1 == 0 {
					before += gains[i]
				}
			}
			w = before + quant.PosSub(U-prefix[last+1], c)
		}
		if w < best {
			best = w
		}
	}
	return best
}

func TestEvaluateNonAdaptiveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 400; trial++ {
		c := quant.Tick(1 + rng.Intn(10))
		m := 1 + rng.Intn(9)
		periods := make(model.TickSchedule, m)
		for i := range periods {
			periods[i] = quant.Tick(1 + rng.Intn(40))
		}
		P := rng.Intn(4)
		got, err := EvaluateNonAdaptive(periods, P, c)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceNonAdaptive(periods, P, c)
		if got != want {
			t.Fatalf("trial %d (c=%d P=%d periods=%v): got %d, brute force %d",
				trial, c, P, periods, got, want)
		}
	}
}

func TestEvaluateNonAdaptiveValidation(t *testing.T) {
	if _, err := EvaluateNonAdaptive(nil, 1, 10); err == nil {
		t.Error("empty periods accepted")
	}
	if _, err := EvaluateNonAdaptive(model.TickSchedule{5}, -1, 10); err == nil {
		t.Error("P<0 accepted")
	}
	if _, err := EvaluateNonAdaptive(model.TickSchedule{0}, 1, 10); err == nil {
		t.Error("zero period accepted")
	}
}

// §3.1 analysis: the guideline's guaranteed output equals (m−p)(t−c) up to
// the tick-remainder spread, and the worst case really is killing the last p
// periods.
func TestNonAdaptiveGuidelineWorstCase(t *testing.T) {
	c := quant.Tick(100)
	for _, tc := range []struct {
		U quant.Tick
		p int
	}{
		{100000, 1}, {100000, 2}, {100000, 4}, {250000, 3},
	} {
		na, err := sched.NewNonAdaptive(tc.U, tc.p, c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateNonAdaptive(na.Periods(), tc.p, c)
		if err != nil {
			t.Fatal(err)
		}
		want := theory.NonAdaptiveWorkExact(float64(tc.U), tc.p, float64(c))
		slack := float64(na.M()) // remainder spread: ≤ 1 tick per period
		if d := float64(got) - want; d > slack || d < -slack {
			t.Errorf("U=%d p=%d: worst case %d vs closed form %g (slack %g)", tc.U, tc.p, got, want, slack)
		}
	}
}

// Observation (a): allowing the adversary to interrupt at every tick (not
// just last instants) changes nothing against the paper's schedulers.
func TestExhaustiveMatchesBoundaryAdversary(t *testing.T) {
	c := quant.Tick(5)
	U := quant.Tick(300)
	for _, P := range []int{1, 2} {
		na, err := sched.NewNonAdaptive(U, P, c)
		if err != nil {
			t.Fatal(err)
		}
		ag, err := sched.NewAdaptiveGuideline(c)
		if err != nil {
			t.Fatal(err)
		}
		op1, err := sched.NewOptimalP1(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range []model.EpisodeScheduler{na, ag, op1} {
			boundary, err := Evaluate(sc, P, U, c)
			if err != nil {
				t.Fatalf("%s: %v", model.NameOf(sc), err)
			}
			exhaustive, err := EvaluateExhaustive(sc, P, U, c)
			if err != nil {
				t.Fatalf("%s: %v", model.NameOf(sc), err)
			}
			if boundary != exhaustive {
				t.Errorf("P=%d %s: boundary adversary %d ≠ exhaustive adversary %d",
					P, model.NameOf(sc), boundary, exhaustive)
			}
		}
	}
}

// The exhaustive adversary can never do worse (from its own perspective) than
// the boundary adversary: its option set is a superset.
func TestExhaustiveNeverAboveBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		c := quant.Tick(1 + rng.Intn(6))
		U := quant.Tick(40 + rng.Intn(160))
		P := 1 + rng.Intn(2)
		m := 1 + rng.Intn(5)
		sc := sched.EqualSplit{M: m}
		boundary, err := Evaluate(sc, P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		exhaustive, err := EvaluateExhaustive(sc, P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		if exhaustive > boundary {
			t.Fatalf("trial %d: exhaustive %d > boundary %d (c=%d U=%d P=%d m=%d)",
				trial, exhaustive, boundary, c, U, P, m)
		}
	}
}

func TestEvaluateWithStrategyRecordsChoices(t *testing.T) {
	c := quant.Tick(10)
	U := quant.Tick(1000)
	na, err := sched.NewNonAdaptive(U, 2, c)
	if err != nil {
		t.Fatal(err)
	}
	w, br, err := EvaluateWithStrategy(na, 2, U, c)
	if err != nil {
		t.Fatal(err)
	}
	if br == nil || br.States() == 0 {
		t.Fatal("no strategy recorded")
	}
	// The root state must be recorded, and against the §3.1 guideline the
	// adversary certainly interrupts (Observation (b)).
	at, ok := br.NextInterrupt(2, U, nil)
	if !ok {
		t.Fatal("adversary abstains at the root against the non-adaptive guideline")
	}
	if at < 1 || at > U {
		t.Errorf("interrupt offset %d outside episode", at)
	}
	_ = w
}

// Replaying the recorded best response through the work accounting reproduces
// the evaluated guaranteed work exactly.
func TestBestResponseReplayReproducesValue(t *testing.T) {
	c := quant.Tick(10)
	U := quant.Tick(2000)
	for _, P := range []int{1, 2, 3} {
		ag, err := sched.NewAdaptiveGuideline(c)
		if err != nil {
			t.Fatal(err)
		}
		want, br, err := EvaluateWithStrategy(ag, P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		// Manual replay of the game.
		var work quant.Tick
		L := U
		p := P
		for L > 0 {
			ep := ag.Episode(p, L)
			if len(ep) == 0 {
				break
			}
			at, interrupt := br.NextInterrupt(p, L, ep)
			if !interrupt || p == 0 {
				work += ep.UninterruptedWork(c)
				break
			}
			// Bank completed periods strictly before the interrupt offset.
			var elapsed quant.Tick
			for _, tk := range ep {
				if elapsed+tk > at-1 {
					break
				}
				elapsed += tk
				work += quant.PosSub(tk, c)
			}
			L -= at
			p--
		}
		if work != want {
			t.Errorf("P=%d: replay banked %d, evaluator said %d", P, work, want)
		}
	}
}
