// Package game computes exact guaranteed-output values for the cycle-stealing
// game of §4: the scheduler maximizes, the malicious owner of the borrowed
// workstation minimizes by placing up to p interrupts.
//
// All computation happens on the integer tick grid (see internal/quant), so
// results are exact for the discretized game. Three facilities are provided:
//
//   - Solver: the optimal game value W(p)[L] for every residual lifespan
//     L ≤ U, via the bootstrapping recursion of §4 ("always assume access to
//     an optimal (p−1)-interrupt schedule"), plus extraction of the optimal
//     episode-schedule (Theorem 4.3's equalization emerges numerically).
//   - Evaluate/EvaluateWithStrategy: the exact worst case of an arbitrary
//     EpisodeScheduler against the last-instant adversary of Observation (a),
//     with the minimizing strategy available for replay in the simulator.
//   - EvaluateExhaustive: the worst case over interrupts at every tick, used
//     to validate Observation (a) (last-instant placements dominate).
//
// The recursion: with V(0, L) = L ⊖ c and V(p, 0) = 0,
//
//	V(p, L) = max_{t ∈ [1..L]} min( (t ⊖ c) + V(p, L−t),  V(p−1, L−t) )
//
// The first branch is the adversary letting period t complete; the second is
// an interrupt at the period's last instant (which nullifies the full t, per
// Observation (a); earlier placements leave a larger residual and are
// dominated because V is nondecreasing in L).
package game

import (
	"fmt"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
)

// maxTableEntries caps solver memory (entries are 8 bytes each).
const maxTableEntries = 1 << 28

// Solver holds the exact value tables V(q, L) for q = 0..P, L = 0..U.
type Solver struct {
	c quant.Tick
	p int
	u quant.Tick
	v [][]quant.Tick // v[q][L]
}

// Solve computes the value tables with the O(P·U·log U) crossing-point
// method. P is the interrupt bound, U the lifespan and c the setup cost, all
// in ticks.
func Solve(P int, U, c quant.Tick) (*Solver, error) {
	if err := validate(P, U, c); err != nil {
		return nil, err
	}
	s := &Solver{c: c, p: P, u: U, v: newTables(P, U)}
	for L := quant.Tick(0); L <= U; L++ {
		s.v[0][L] = quant.PosSub(L, c)
	}
	for q := 1; q <= P; q++ {
		for L := quant.Tick(1); L <= U; L++ {
			s.v[q][L] = s.solveCell(q, L)
		}
	}
	return s, nil
}

// SolveReference computes the same tables by brute force over every first
// period length — O(P·U²). It exists to cross-check the fast solver and for
// the E9 ablation; use only for small U.
func SolveReference(P int, U, c quant.Tick) (*Solver, error) {
	if err := validate(P, U, c); err != nil {
		return nil, err
	}
	s := &Solver{c: c, p: P, u: U, v: newTables(P, U)}
	for L := quant.Tick(0); L <= U; L++ {
		s.v[0][L] = quant.PosSub(L, c)
	}
	for q := 1; q <= P; q++ {
		for L := quant.Tick(1); L <= U; L++ {
			var best quant.Tick
			for t := quant.Tick(1); t <= L; t++ {
				complete := quant.PosSub(t, s.c) + s.v[q][L-t]
				interrupt := s.v[q-1][L-t]
				cand := min(complete, interrupt)
				if cand > best {
					best = cand
				}
			}
			s.v[q][L] = best
		}
	}
	return s, nil
}

func validate(P int, U, c quant.Tick) error {
	switch {
	case P < 0:
		return fmt.Errorf("game: interrupt bound must be ≥ 0, got %d", P)
	case U < 0:
		return fmt.Errorf("game: lifespan must be ≥ 0, got %d", U)
	case c < 1:
		return fmt.Errorf("game: setup cost must be ≥ 1 tick, got %d", c)
	}
	if entries := (int64(P) + 1) * (int64(U) + 1); entries > maxTableEntries {
		return fmt.Errorf("game: value table would need %d entries (max %d); coarsen the quantum", entries, maxTableEntries)
	}
	return nil
}

func newTables(P int, U quant.Tick) [][]quant.Tick {
	v := make([][]quant.Tick, P+1)
	for i := range v {
		v[i] = make([]quant.Tick, U+1)
	}
	return v
}

// solveCell computes V(q, L) for q ≥ 1 using the crossing-point search.
//
// Restricting to t ≥ c+1 is lossless: a period of length ≤ c banks nothing
// and merely shrinks the residual, which cannot raise either branch (V is
// nondecreasing in L; this is Theorem 4.1's productive normal form). On
// t ∈ [c+1, L], complete(t) = (t−c) + V(q, L−t) is nondecreasing (V is
// 1-Lipschitz) and interrupt(t) = V(q−1, L−t) is nonincreasing, so
// min(complete, interrupt) rises then falls; the maximum sits where the
// curves cross.
func (s *Solver) solveCell(q int, L quant.Tick) quant.Tick {
	tmin := s.c + 1
	if tmin > L {
		// Only the single exhausting period is available; it banks nothing.
		return 0
	}
	complete := func(t quant.Tick) quant.Tick { return (t - s.c) + s.v[q][L-t] }
	interrupt := func(t quant.Tick) quant.Tick { return s.v[q-1][L-t] }

	// Smallest t in [tmin, L] with complete(t) ≥ interrupt(t). It exists:
	// complete(L) = L−c ≥ 0 = interrupt(L).
	lo, hi := tmin, L
	for lo < hi {
		mid := lo + (hi-lo)/2
		if complete(mid) >= interrupt(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	best := min(complete(lo), interrupt(lo))
	if lo > tmin {
		if cand := min(complete(lo-1), interrupt(lo-1)); cand > best {
			best = cand
		}
	}
	return best
}

// C returns the setup cost in ticks.
func (s *Solver) C() quant.Tick { return s.c }

// P returns the interrupt bound the tables cover.
func (s *Solver) P() int { return s.p }

// U returns the lifespan the tables cover.
func (s *Solver) U() quant.Tick { return s.u }

// Value returns V(p, L), the optimal guaranteed output with residual
// lifespan L and at most p interrupts outstanding. It panics if (p, L) lies
// outside the solved tables; use Solve with large enough bounds.
func (s *Solver) Value(p int, L quant.Tick) quant.Tick {
	if p < 0 || p > s.p || L < 0 || L > s.u {
		panic(fmt.Sprintf("game: Value(%d, %d) outside solved range p≤%d L≤%d", p, L, s.p, s.u))
	}
	return s.v[p][L]
}

// bestFirstPeriod recomputes the maximizing first period at (q, L); the
// smaller of the two crossing candidates is preferred, which matches the
// paper's schedules (terminal periods shrink toward (c, 2c], Theorem 4.2).
func (s *Solver) bestFirstPeriod(q int, L quant.Tick) quant.Tick {
	tmin := s.c + 1
	if tmin > L {
		return L
	}
	complete := func(t quant.Tick) quant.Tick { return (t - s.c) + s.v[q][L-t] }
	interrupt := func(t quant.Tick) quant.Tick { return s.v[q-1][L-t] }
	lo, hi := tmin, L
	for lo < hi {
		mid := lo + (hi-lo)/2
		if complete(mid) >= interrupt(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	bestT := lo
	best := min(complete(lo), interrupt(lo))
	if lo > tmin {
		if cand := min(complete(lo-1), interrupt(lo-1)); cand > best {
			best, bestT = cand, lo-1
		}
	}
	return bestT
}

// OptimalEpisode extracts an optimal episode-schedule S_opt^(p)[L]: the
// period lengths an optimal player commits to until the next interrupt.
// Once the residual value hits zero the remainder — at most (p+1)c + p ticks,
// the discrete zero-work threshold — is emitted as a single final period:
// lumping it maximizes the abstention branch (splitting would pay extra
// setups), and the worst case over that region is zero either way. The
// Theorem 4.2 normal form ((c, 2c] terminal periods) therefore applies to the
// periods *before* this terminal lump.
func (s *Solver) OptimalEpisode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	if p <= 0 {
		return model.TickSchedule{L}
	}
	if p > s.p {
		p = s.p
	}
	var out model.TickSchedule
	for L > 0 {
		if s.v[p][L] == 0 {
			out = append(out, L)
			break
		}
		t := s.bestFirstPeriod(p, L)
		out = append(out, t)
		L -= t
	}
	return out
}

// Scheduler wraps the solver as a model.EpisodeScheduler: the exactly optimal
// adaptive player. Residuals beyond the solved lifespan are clamped.
func (s *Solver) Scheduler() model.EpisodeScheduler {
	return optimalScheduler{s}
}

type optimalScheduler struct{ s *Solver }

func (o optimalScheduler) Episode(p int, L quant.Tick) model.TickSchedule {
	if L > o.s.u {
		L = o.s.u
	}
	return o.s.OptimalEpisode(p, L)
}

func (o optimalScheduler) Name() string { return "dp-optimal" }

func min(a, b quant.Tick) quant.Tick {
	if a < b {
		return a
	}
	return b
}
