package game

import (
	"fmt"
	"runtime"
	"sync"

	"cyclesteal/internal/quant"
)

// SweepPoint names one cell of a parameter study: an opportunity shape on
// the tick grid.
type SweepPoint struct {
	U quant.Tick
	P int
	C quant.Tick
}

// SweepResult carries one solved cell.
type SweepResult struct {
	SweepPoint
	Value quant.Tick // W(p)[U]
	Err   error
}

// Sweep solves many independent game instances concurrently on a bounded
// worker pool — the standard shape of the paper's parameter studies (E3–E5
// sweep U/c and p). Cells are independent, which is exactly the parallelism
// the problem has; each worker uses the low-memory rolling solver so a wide
// sweep does not multiply full value tables across cores.
//
// workers ≤ 0 means GOMAXPROCS. Results arrive in input order.
func Sweep(points []SweepPoint, workers int) []SweepResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	results := make([]SweepResult, len(points))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				pt := points[idx]
				res := SweepResult{SweepPoint: pt}
				row, err := SolveValueRow(pt.P, pt.U, pt.C)
				if err != nil {
					res.Err = fmt.Errorf("game: sweep cell (U=%d p=%d c=%d): %w", pt.U, pt.P, pt.C, err)
				} else {
					res.Value = row[pt.U]
				}
				results[idx] = res
			}
		}()
	}
	for idx := range points {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	return results
}

// Grid builds the cross product of lifespans and interrupt bounds at a fixed
// setup cost — the usual sweep shape.
func Grid(Us []quant.Tick, Ps []int, c quant.Tick) []SweepPoint {
	out := make([]SweepPoint, 0, len(Us)*len(Ps))
	for _, p := range Ps {
		for _, u := range Us {
			out = append(out, SweepPoint{U: u, P: p, C: c})
		}
	}
	return out
}
