package game

import "cyclesteal/internal/quant"

// SolveValueRow computes the top value row V(P, ·) using rolling storage —
// two rows of U+1 ticks instead of P+1 — for large-lifespan value queries
// where schedule extraction is not needed. The recursion only ever consults
// the previous interrupt level in full and the current level at smaller
// lifespans, so two rows suffice.
//
// The returned slice r satisfies r[L] == Solve(P, U, c).Value(P, L).
func SolveValueRow(P int, U, c quant.Tick) ([]quant.Tick, error) {
	if err := validate(P, U, c); err != nil {
		return nil, err
	}
	prev := make([]quant.Tick, U+1)
	for L := quant.Tick(0); L <= U; L++ {
		prev[L] = quant.PosSub(L, c)
	}
	if P == 0 {
		return prev, nil
	}
	cur := make([]quant.Tick, U+1)
	for q := 1; q <= P; q++ {
		cur[0] = 0
		for L := quant.Tick(1); L <= U; L++ {
			cur[L] = solveCellRows(cur, prev, L, c)
		}
		prev, cur = cur, prev
	}
	return prev, nil
}

// solveCellRows is solveCell against explicit rows (cur = level q filled up
// to L−1, prev = level q−1 complete). See Solver.solveCell for the
// crossing-point argument.
func solveCellRows(cur, prev []quant.Tick, L, c quant.Tick) quant.Tick {
	tmin := c + 1
	if tmin > L {
		return 0
	}
	complete := func(t quant.Tick) quant.Tick { return (t - c) + cur[L-t] }
	interrupt := func(t quant.Tick) quant.Tick { return prev[L-t] }
	lo, hi := tmin, L
	for lo < hi {
		mid := lo + (hi-lo)/2
		if complete(mid) >= interrupt(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	best := min(complete(lo), interrupt(lo))
	if lo > tmin {
		if cand := min(complete(lo-1), interrupt(lo-1)); cand > best {
			best = cand
		}
	}
	return best
}
