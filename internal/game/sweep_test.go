package game

import (
	"testing"

	"cyclesteal/internal/quant"
)

func TestGridShape(t *testing.T) {
	pts := Grid([]quant.Tick{100, 200}, []int{0, 1, 2}, 10)
	if len(pts) != 6 {
		t.Fatalf("grid size %d, want 6", len(pts))
	}
	for _, pt := range pts {
		if pt.C != 10 {
			t.Errorf("cell %v lost its setup cost", pt)
		}
	}
}

func TestSweepMatchesDirectSolve(t *testing.T) {
	pts := Grid([]quant.Tick{150, 400, 900}, []int{0, 1, 3}, 7)
	for _, workers := range []int{1, 4, 16} {
		results := Sweep(pts, workers)
		if len(results) != len(pts) {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("workers=%d cell %d: %v", workers, i, res.Err)
			}
			if res.SweepPoint != pts[i] {
				t.Fatalf("workers=%d: result %d out of order", workers, i)
			}
			s, err := Solve(res.P, res.U, res.C)
			if err != nil {
				t.Fatal(err)
			}
			if want := s.Value(res.P, res.U); res.Value != want {
				t.Errorf("cell %v: sweep %d ≠ solve %d", res.SweepPoint, res.Value, want)
			}
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	results := Sweep([]SweepPoint{{U: 100, P: 1, C: 0}}, 2)
	if results[0].Err == nil {
		t.Error("invalid cell did not error")
	}
}

func TestSweepEmpty(t *testing.T) {
	if got := Sweep(nil, 4); len(got) != 0 {
		t.Errorf("empty sweep returned %v", got)
	}
}
