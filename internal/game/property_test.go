package game

import (
	"math/rand"
	"testing"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
)

// randomScheduler emits arbitrary-but-legal episodes: random period counts
// and lengths partitioning the residual. Deterministic per (p, L) so the
// memoized evaluator sees a consistent strategy.
type randomScheduler struct {
	seed int64
}

func (r randomScheduler) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(r.seed ^ int64(p)<<40 ^ int64(L)))
	var out model.TickSchedule
	rem := L
	for rem > 0 {
		t := 1 + quant.Tick(rng.Int63n(int64(rem)))
		// Bias toward a handful of periods.
		if rng.Intn(3) == 0 {
			t = rem
		}
		out = append(out, t)
		rem -= t
		if len(out) > 30 {
			out = append(out, rem)
			break
		}
	}
	if out[len(out)-1] == 0 {
		out = out[:len(out)-1]
	}
	return out
}

func (r randomScheduler) Name() string { return "random-scheduler" }

// No strategy — however weird — beats the game value; and every strategy's
// guaranteed work is nonnegative and at most the p=0 ideal U−c.
func TestRandomSchedulersBoundedByGameValue(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		P := rng.Intn(4)
		U := quant.Tick(20 + rng.Intn(500))
		c := quant.Tick(1 + rng.Intn(12))
		solver, err := Solve(P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		s := randomScheduler{seed: int64(trial)}
		w, err := Evaluate(s, P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		if w < 0 {
			t.Fatalf("trial %d: negative guaranteed work %d", trial, w)
		}
		if v := solver.Value(P, U); w > v {
			t.Fatalf("trial %d (P=%d U=%d c=%d): random scheduler guarantees %d > V = %d",
				trial, P, U, c, w, v)
		}
		if w > quant.PosSub(U, c) {
			t.Fatalf("trial %d: guaranteed work %d exceeds the interrupt-free ideal", trial, w)
		}
	}
}

// The exhaustive adversary never reports more than the boundary adversary
// even against adversarially weird schedulers (superset of options).
func TestExhaustiveDominanceRandomSchedulers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		P := 1 + rng.Intn(2)
		U := quant.Tick(20 + rng.Intn(120))
		c := quant.Tick(1 + rng.Intn(6))
		s := randomScheduler{seed: int64(1000 + trial)}
		boundary, err := Evaluate(s, P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		exhaustive, err := EvaluateExhaustive(s, P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		if exhaustive > boundary {
			t.Fatalf("trial %d: exhaustive %d > boundary %d", trial, exhaustive, boundary)
		}
	}
}

// Evaluating the best-response strategy against a *different* lifespan must
// simply not fire (unknown states), never panic.
func TestBestResponseUnknownStates(t *testing.T) {
	s := randomScheduler{seed: 9}
	_, br, err := EvaluateWithStrategy(s, 2, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := br.NextInterrupt(2, 299, nil); ok {
		t.Error("strategy fired in a state it never evaluated")
	}
}

// Value tables scale linearly with the grid: solving (U, c) and (kU, kc)
// gives k-scaled values — the model has no intrinsic time unit. (Exactness
// up to the ±1-tick integrality of period choices.)
func TestValueGridScaling(t *testing.T) {
	const k = 4
	small, err := Solve(2, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Solve(2, 500*k, 5*k)
	if err != nil {
		t.Fatal(err)
	}
	for _, L := range []quant.Tick{100, 250, 500} {
		lo := small.Value(2, L)
		hi := big.Value(2, L*k)
		// hi/k can exceed lo slightly: the finer grid offers more period
		// choices. It can never be worse by more than a few ticks.
		if hi < lo*k-2*k || hi > lo*k+2*k {
			t.Errorf("L=%d: scaled value %d vs %d×%d", L, hi, lo, k)
		}
	}
}

// A scheduler returning an episode that undershoots the residual is legal;
// the shortfall is idle and the evaluator accounts it as zero work.
func TestEvaluateUndershootingScheduler(t *testing.T) {
	half := model.EpisodeFunc(func(p int, L quant.Tick) model.TickSchedule {
		if L < 2 {
			return model.TickSchedule{L}
		}
		return model.TickSchedule{L / 2}
	})
	w, err := Evaluate(half, 0, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w != 490 {
		t.Errorf("undershooting scheduler banks %d, want 490", w)
	}
}
