package game

import (
	"fmt"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
)

// stateKey packs (p, L) for memoization. Lifespans are far below 2^48.
type stateKey struct {
	p int
	l quant.Tick
}

// episodeChoice records the adversary's minimizing move in one state: whether
// to interrupt and, if so, at the end of which elapsed offset within the
// episode.
type episodeChoice struct {
	interrupt bool
	at        quant.Tick // episode-relative elapsed time T_k of the interrupt
}

// BestResponse is the adversary strategy extracted by EvaluateWithStrategy:
// for each reachable game state it knows the minimizing move against the
// scheduler it was computed for. It implements the simulator's Interrupter
// contract (see internal/sim); replaying it in the simulator reproduces the
// guaranteed-work value exactly.
type BestResponse struct {
	choices map[stateKey]episodeChoice
}

// NextInterrupt returns the episode-relative time at which the owner
// interrupts in state (p, L), or ok = false to let the episode run out.
func (b *BestResponse) NextInterrupt(p int, L quant.Tick, _ model.TickSchedule) (quant.Tick, bool) {
	ch, ok := b.choices[stateKey{p, L}]
	if !ok || !ch.interrupt {
		return 0, false
	}
	return ch.at, true
}

// States returns the number of game states the strategy covers.
func (b *BestResponse) States() int { return len(b.choices) }

// schedulerError is the panic payload used to surface contract violations
// from deep inside the memoized recursion.
type schedulerError struct{ err error }

// Evaluate returns the exact guaranteed output of scheduler sch in an
// opportunity of U ticks with at most P interrupts and setup cost c: the
// minimum, over all adversary strategies that interrupt only at last instants
// of periods (Observation (a)), of the work the schedule banks.
//
// It returns an error if the scheduler violates its contract (a period < 1
// tick, or an episode exceeding the residual lifespan).
func Evaluate(sch model.EpisodeScheduler, P int, U, c quant.Tick) (quant.Tick, error) {
	w, _, err := evaluate(sch, P, U, c, false)
	return w, err
}

// EvaluateWithStrategy is Evaluate, additionally returning the adversary's
// minimizing strategy for replay.
func EvaluateWithStrategy(sch model.EpisodeScheduler, P int, U, c quant.Tick) (quant.Tick, *BestResponse, error) {
	return evaluate(sch, P, U, c, true)
}

func evaluate(sch model.EpisodeScheduler, P int, U, c quant.Tick, record bool) (work quant.Tick, br *BestResponse, err error) {
	if c < 1 || U < 0 || P < 0 {
		return 0, nil, fmt.Errorf("game: bad evaluation parameters P=%d U=%d c=%d", P, U, c)
	}
	defer func() {
		if r := recover(); r != nil {
			se, ok := r.(schedulerError)
			if !ok {
				panic(r)
			}
			work, br, err = 0, nil, se.err
		}
	}()
	memo := make(map[stateKey]quant.Tick)
	var choices map[stateKey]episodeChoice
	if record {
		choices = make(map[stateKey]episodeChoice)
	}

	var eval func(p int, L quant.Tick) quant.Tick
	eval = func(p int, L quant.Tick) quant.Tick {
		if L <= c {
			return 0 // no period fitting in L can bank anything
		}
		key := stateKey{p, L}
		if v, ok := memo[key]; ok {
			return v
		}
		ep := fetchEpisode(sch, p, L)
		best := ep.UninterruptedWork(c)
		choice := episodeChoice{}
		if p > 0 {
			var banked, elapsed quant.Tick
			for _, t := range ep {
				elapsed += t
				// Interrupt at the last instant of this period: the work in
				// progress dies, periods 1..k-1 stay banked, residual L−T_k.
				cand := banked + eval(p-1, L-elapsed)
				if cand < best {
					best = cand
					choice = episodeChoice{interrupt: true, at: elapsed}
				}
				banked += quant.PosSub(t, c)
			}
		}
		memo[key] = best
		if record {
			choices[key] = choice
		}
		return best
	}

	total := eval(P, U)
	if record {
		br = &BestResponse{choices: choices}
	}
	return total, br, nil
}

// EvaluateExhaustive returns the guaranteed output of sch against an
// adversary allowed to interrupt at *every* tick of the lifespan, not only at
// last instants of periods. Observation (a) asserts the two coincide; tests
// verify that on the paper's schedulers. Runtime is O(states × U); use small
// lifespans.
func EvaluateExhaustive(sch model.EpisodeScheduler, P int, U, c quant.Tick) (work quant.Tick, err error) {
	if c < 1 || U < 0 || P < 0 {
		return 0, fmt.Errorf("game: bad evaluation parameters P=%d U=%d c=%d", P, U, c)
	}
	defer func() {
		if r := recover(); r != nil {
			se, ok := r.(schedulerError)
			if !ok {
				panic(r)
			}
			work, err = 0, se.err
		}
	}()
	memo := make(map[stateKey]quant.Tick)

	var eval func(p int, L quant.Tick) quant.Tick
	eval = func(p int, L quant.Tick) quant.Tick {
		if L <= c {
			return 0
		}
		key := stateKey{p, L}
		if v, ok := memo[key]; ok {
			return v
		}
		// Mark the state before recursing: an adversary interrupting at
		// elapsed time 0 revisits lifespan L with p−1, which is finite
		// because p strictly decreases.
		ep := fetchEpisode(sch, p, L)
		best := ep.UninterruptedWork(c)
		if p > 0 {
			var banked, start quant.Tick
			for _, t := range ep {
				// Interrupt anywhere in [start, start+t): period dies,
				// residual L−τ. The worst τ within the period is its last
				// tick offset, but we scan all placements on the grid.
				for tau := start; tau < start+t; tau++ {
					cand := banked + eval(p-1, L-tau)
					if cand < best {
						best = cand
					}
				}
				// The continuum's last-instant limit τ → T_k is represented
				// on the grid by residual exactly L−T_k.
				cand := banked + eval(p-1, L-start-t)
				if cand < best {
					best = cand
				}
				start += t
				banked += quant.PosSub(t, c)
			}
			// Interrupts during trailing idle time are dominated: the full
			// episode work is already banked, so the value can only rise.
		}
		memo[key] = best
		return best
	}
	return eval(P, U), nil
}

// fetchEpisode obtains and validates an episode from the scheduler: periods
// ≥ 1 tick, total at most the residual lifespan (shortfall is idle time).
func fetchEpisode(sch model.EpisodeScheduler, p int, L quant.Tick) model.TickSchedule {
	ep := sch.Episode(p, L)
	var total quant.Tick
	for i, t := range ep {
		if t < 1 {
			panic(schedulerError{fmt.Errorf("game: scheduler %s emitted period %d of %d ticks at (p=%d, L=%d)", model.NameOf(sch), i+1, t, p, L)})
		}
		total += t
	}
	if total > L {
		panic(schedulerError{fmt.Errorf("game: scheduler %s overcommitted %d ticks into residual %d at p=%d", model.NameOf(sch), total, L, p)})
	}
	return ep
}
