package game

import (
	"math"
	"math/rand"
	"testing"

	"cyclesteal/internal/quant"
	"cyclesteal/internal/theory"
)

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(-1, 100, 10); err == nil {
		t.Error("P<0 accepted")
	}
	if _, err := Solve(1, -1, 10); err == nil {
		t.Error("U<0 accepted")
	}
	if _, err := Solve(1, 100, 0); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := Solve(1<<20, 1<<20, 10); err == nil {
		t.Error("oversized table accepted")
	}
}

func TestSolverAccessors(t *testing.T) {
	s, err := Solve(2, 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.P() != 2 || s.U() != 500 || s.C() != 10 {
		t.Errorf("accessors: P=%d U=%d C=%d", s.P(), s.U(), s.C())
	}
}

func TestValuePanicsOutsideRange(t *testing.T) {
	s, err := Solve(1, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Value outside range did not panic")
		}
	}()
	s.Value(2, 50)
}

// Prop. 4.1(d): V(0, L) = L ⊖ c.
func TestValueP0(t *testing.T) {
	s, err := Solve(0, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for L := quant.Tick(0); L <= 1000; L += 13 {
		if got, want := s.Value(0, L), quant.PosSub(L, 7); got != want {
			t.Fatalf("V(0,%d) = %d, want %d", L, got, want)
		}
	}
}

// Prop. 4.1(a): V(p, ·) nondecreasing; and 1-Lipschitz (each extra tick of
// lifespan adds at most one tick of guaranteed work).
func TestValueMonotoneLipschitzInL(t *testing.T) {
	s, err := Solve(3, 2000, 25)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p <= 3; p++ {
		for L := quant.Tick(1); L <= 2000; L++ {
			d := s.Value(p, L) - s.Value(p, L-1)
			if d < 0 {
				t.Fatalf("V(%d,·) decreased at L=%d", p, L)
			}
			if d > 1 {
				t.Fatalf("V(%d,·) jumped by %d at L=%d (not 1-Lipschitz)", p, d, L)
			}
		}
	}
}

// Prop. 4.1(b): V(·, L) nonincreasing in p.
func TestValueMonotoneInP(t *testing.T) {
	s, err := Solve(4, 1500, 20)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 4; p++ {
		for L := quant.Tick(0); L <= 1500; L += 7 {
			if s.Value(p, L) > s.Value(p-1, L) {
				t.Fatalf("V(%d,%d) = %d > V(%d,%d) = %d", p, L, s.Value(p, L), p-1, L, s.Value(p-1, L))
			}
		}
	}
}

// Prop. 4.1(c): V(p, L) = 0 when L ≤ (p+1)c. On the integer grid the exact
// boundary shifts by p ticks — the smallest productive period is c+1, so zero
// work is guaranteed iff L ≤ (p+1)c + p = (p+1)(c+1) − 1 — which collapses to
// the paper's continuum statement as the quantum refines.
func TestZeroWorkRegimeExact(t *testing.T) {
	c := quant.Tick(11)
	s, err := Solve(3, 400, c)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p <= 3; p++ {
		paper := quant.Tick(p+1) * c
		discrete := paper + quant.Tick(p)
		for L := quant.Tick(0); L <= 400; L++ {
			v := s.Value(p, L)
			if L <= paper && v != 0 {
				t.Fatalf("V(%d,%d) = %d, want 0 (Prop 4.1(c): L ≤ (p+1)c = %d)", p, L, v, paper)
			}
			if L <= discrete && v != 0 {
				t.Fatalf("V(%d,%d) = %d, want 0 (discrete threshold %d)", p, L, v, discrete)
			}
			if L > discrete && v == 0 {
				t.Fatalf("V(%d,%d) = 0, want > 0 (L > discrete threshold %d)", p, L, discrete)
			}
		}
	}
}

func TestFastSolverMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		P := rng.Intn(4)
		U := quant.Tick(50 + rng.Intn(350))
		c := quant.Tick(1 + rng.Intn(20))
		fast, err := Solve(P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := SolveReference(P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p <= P; p++ {
			for L := quant.Tick(0); L <= U; L++ {
				if fast.Value(p, L) != ref.Value(p, L) {
					t.Fatalf("trial %d (P=%d U=%d c=%d): V(%d,%d) fast %d ≠ ref %d",
						trial, P, U, c, p, L, fast.Value(p, L), ref.Value(p, L))
				}
			}
		}
	}
}

// §5.2 / Table 2: the exact optimum for p = 1 tracks U − √(2cU) − c/2.
func TestValueP1MatchesClosedForm(t *testing.T) {
	c := quant.Tick(10)
	s, err := Solve(1, 40000, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, U := range []quant.Tick{1000, 5000, 10000, 25000, 40000} {
		got := float64(s.Value(1, U))
		want := theory.OptimalP1Work(float64(U), float64(c))
		if math.Abs(got-want) > 2*float64(c) {
			t.Errorf("V(1,%d) = %g, closed form %g (Δ=%g > 2c)", U, got, want, math.Abs(got-want))
		}
	}
}

// Theorem 5.1 as printed holds at p = 1 (the case §5.2 proves):
// V(1, U) ≥ U − √(2cU) − slack.
func TestValueMeetsTheorem51BoundP1(t *testing.T) {
	c := quant.Tick(10)
	s, err := Solve(1, 100000, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, U := range []quant.Tick{5000, 10000, 30000, 100000} {
		got := float64(s.Value(1, U))
		bound := theory.AdaptiveWorkLowerBound(float64(U), 1, float64(c)) -
			theory.AdaptiveSlack(float64(U), 1, float64(c), 1)
		if got < bound {
			t.Errorf("V(1,%d) = %g below Thm 5.1 bound %g", U, got, bound)
		}
	}
}

// The exact optimum tracks the equalization prediction U − K_p·√(2cU) for
// every p: the low-order gap stays within the theorem's O(U^{1/4} + pc) shape
// with a modest constant, and the leading coefficient converges to K_p.
func TestValueTracksEqualizationPrediction(t *testing.T) {
	c := quant.Tick(10)
	s, err := Solve(6, 100000, c)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 6; p++ {
		for _, U := range []quant.Tick{10000, 30000, 100000} {
			got := float64(s.Value(p, U))
			pred := theory.OptimalWorkPrediction(float64(U), p, float64(c))
			slack := theory.AdaptiveSlack(float64(U), p, float64(c), 4)
			if got < pred-slack {
				t.Errorf("V(%d,%d) = %g far below K_p prediction %g (slack %g)", p, U, got, pred, slack)
			}
			if got > pred+slack {
				t.Errorf("V(%d,%d) = %g far above K_p prediction %g (slack %g) — coefficient drift", p, U, got, pred, slack)
			}
		}
	}
}

func TestOptimalEpisodeSumsWithinL(t *testing.T) {
	s, err := Solve(3, 5000, 10)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p <= 3; p++ {
		for _, L := range []quant.Tick{1, 9, 10, 11, 100, 999, 5000} {
			ep := s.OptimalEpisode(p, L)
			if ep.Total() != L {
				t.Errorf("p=%d L=%d: episode totals %d", p, L, ep.Total())
			}
			for i, tk := range ep {
				if tk < 1 {
					t.Errorf("p=%d L=%d: period %d = %d", p, L, i, tk)
				}
			}
		}
	}
	if ep := s.OptimalEpisode(1, 0); ep != nil {
		t.Errorf("L=0 should yield nil, got %v", ep)
	}
}

// The extracted optimal schedule must actually achieve the game value when
// played against the worst-case adversary.
func TestOptimalSchedulerAchievesValue(t *testing.T) {
	c := quant.Tick(10)
	for _, P := range []int{0, 1, 2, 3} {
		U := quant.Tick(3000)
		s, err := Solve(P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Evaluate(s.Scheduler(), P, U, c)
		if err != nil {
			t.Fatal(err)
		}
		if want := s.Value(P, U); got != want {
			t.Errorf("P=%d: evaluate(optimal) = %d, want V = %d", P, got, want)
		}
	}
}

// Theorem 4.2 structure: the terminal *structural* periods of extracted
// optimal episodes sit in (c, 2c]; the very last period is the zero-value
// remainder lump, bounded by the discrete zero-work threshold (p+1)c + p.
func TestOptimalEpisodeTerminalPeriods(t *testing.T) {
	c := quant.Tick(100)
	for _, p := range []int{1, 2, 3} {
		s, err := Solve(p, 20000, c)
		if err != nil {
			t.Fatal(err)
		}
		ep := s.OptimalEpisode(p, 20000)
		if len(ep) < 3 {
			t.Fatalf("p=%d: unexpectedly short optimal episode: %v", p, ep)
		}
		lump := ep[len(ep)-1]
		if lump > quant.Tick(p+1)*c+quant.Tick(p) {
			t.Errorf("p=%d: terminal lump %d exceeds the zero-work threshold %d", p, lump, quant.Tick(p+1)*c+quant.Tick(p))
		}
		structural := ep[len(ep)-2]
		if structural <= c || structural > 2*c {
			t.Errorf("p=%d: last structural period %d outside (c, 2c] = (%d, %d]", p, structural, c, 2*c)
		}
	}
	// Table 2: the optimal p=1 episode steps by ≈ c between consecutive
	// interior periods.
	s, err := Solve(1, 20000, c)
	if err != nil {
		t.Fatal(err)
	}
	ep := s.OptimalEpisode(1, 20000)
	for i := 0; i+2 < len(ep); i++ {
		step := ep[i] - ep[i+1]
		if step < c-2 || step > c+2 {
			t.Errorf("interior step t_%d−t_%d = %d, want ≈ c = %d", i+1, i+2, step, c)
		}
	}
}

// The optimal p=1 episode length matches eq. (5.1) up to rounding.
func TestOptimalEpisodeLengthMatchesEq51(t *testing.T) {
	c := quant.Tick(100)
	s, err := Solve(1, 50000, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, U := range []quant.Tick{5000, 20000, 50000} {
		ep := s.OptimalEpisode(1, U)
		want := theory.OptimalP1MAdjusted(float64(U), float64(c))
		if len(ep) < want-1 || len(ep) > want+1 {
			t.Errorf("U=%d: extracted m = %d, eq(5.1) m = %d", U, len(ep), want)
		}
	}
}
