package game

import (
	"fmt"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
)

// EvaluateNonAdaptive computes the exact guaranteed output of a *fixed*
// period list t_1..t_m under the paper's non-adaptive semantics (§2.2):
//
//   - if the adversary interrupts during period i, the tail t_{i+1}, …, t_m
//     runs verbatim for the remainder of the opportunity;
//   - after the p-th interrupt the remainder of the opportunity is
//     rescheduled as one long period;
//   - an interrupt in period k forfeits exactly that period's work, so the
//     worst placement within a period is its last instant, and interrupt sets
//     are identified with period index sets I = {i_1 < … < i_p}.
//
// For a < p interrupts the output is Σ_{k∉I}(t_k ⊖ c); for a = p it is
// Σ_{k∉I, k<i_p}(t_k ⊖ c) + (U−T_{i_p}) ⊖ c. The adversary minimizes over
// both regimes. This closed computation is O(m·p) and serves as an
// independent cross-check of the generic minimax evaluator applied to the
// tail-semantics wrapper (sched.NonAdaptive).
func EvaluateNonAdaptive(periods model.TickSchedule, P int, c quant.Tick) (quant.Tick, error) {
	if len(periods) == 0 {
		return 0, model.ErrEmptySchedule
	}
	if c < 1 || P < 0 {
		return 0, fmt.Errorf("game: bad parameters P=%d c=%d", P, c)
	}
	m := len(periods)
	U := periods.Total()
	gains := make([]quant.Tick, m) // t_k ⊖ c
	var full quant.Tick
	for i, t := range periods {
		if t < 1 {
			return 0, fmt.Errorf("game: period %d has illegal length %d", i+1, t)
		}
		gains[i] = quant.PosSub(t, c)
		full += gains[i]
	}

	best := full // adversary abstains entirely

	// Regime 1: a < p interrupts, no long-period replacement. Killing the a
	// largest gains is optimal; a ranges 1..min(p−1, m).
	if P > 0 {
		sorted := make([]quant.Tick, m)
		copy(sorted, gains)
		sortTicksDesc(sorted)
		var killed quant.Tick
		for a := 1; a <= P-1 && a <= m; a++ {
			killed += sorted[a-1]
			if cand := full - killed; cand < best {
				best = cand
			}
		}
	}

	// Regime 2: exactly p interrupts, the last at the end of period j; the
	// other p−1 kill the largest gains among periods 1..j−1; periods after j
	// are replaced by the single long period (U − T_j) ⊖ c.
	if P > 0 && P <= m {
		top := newTopK(P - 1)
		var prefixGain, prefixTime quant.Tick
		for j := 1; j <= m; j++ {
			// Work of periods before j, minus the p−1 biggest kills there.
			prefixTime += periods[j-1]
			cand := prefixGain - top.Sum() + quant.PosSub(U-prefixTime, c)
			if cand < best {
				best = cand
			}
			prefixGain += gains[j-1]
			top.Offer(gains[j-1])
		}
	}
	if best < 0 {
		best = 0
	}
	return best, nil
}

// topK maintains the k largest ticks offered, with their running sum, via a
// small binary min-heap.
type topK struct {
	k    int
	heap []quant.Tick
	sum  quant.Tick
}

func newTopK(k int) *topK { return &topK{k: k} }

// Sum returns the sum of the (at most k) largest values offered so far.
func (t *topK) Sum() quant.Tick { return t.sum }

// Offer considers v for membership in the top-k multiset.
func (t *topK) Offer(v quant.Tick) {
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, v)
		t.sum += v
		t.siftUp(len(t.heap) - 1)
		return
	}
	if v <= t.heap[0] {
		return
	}
	t.sum += v - t.heap[0]
	t.heap[0] = v
	t.siftDown(0)
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent] <= t.heap[i] {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *topK) siftDown(i int) {
	n := len(t.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && t.heap[left] < t.heap[smallest] {
			smallest = left
		}
		if right < n && t.heap[right] < t.heap[smallest] {
			smallest = right
		}
		if smallest == i {
			return
		}
		t.heap[i], t.heap[smallest] = t.heap[smallest], t.heap[i]
		i = smallest
	}
}

// sortTicksDesc sorts in place, descending. Insertion sort is fine for the
// schedule lengths (m ≈ √(pU/c)) this is applied to; no need to pull in
// sort's interface machinery for a hot path that isn't hot.
func sortTicksDesc(a []quant.Tick) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] < v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
