package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cyclesteal/internal/quant"
)

func TestOpportunityValidate(t *testing.T) {
	good := Opportunity{Lifespan: 100, Interrupts: 2, Setup: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid opportunity rejected: %v", err)
	}
	bad := []Opportunity{
		{Lifespan: 0, Interrupts: 0, Setup: 1},
		{Lifespan: -5, Interrupts: 0, Setup: 1},
		{Lifespan: math.NaN(), Interrupts: 0, Setup: 1},
		{Lifespan: math.Inf(1), Interrupts: 0, Setup: 1},
		{Lifespan: 10, Interrupts: -1, Setup: 1},
		{Lifespan: 10, Interrupts: 0, Setup: 0},
		{Lifespan: 10, Interrupts: 0, Setup: -2},
		{Lifespan: 10, Interrupts: 0, Setup: math.NaN()},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid opportunity %v accepted", i, o)
		}
	}
}

func TestOpportunityRatio(t *testing.T) {
	o := Opportunity{Lifespan: 1000, Interrupts: 1, Setup: 4}
	if got := o.Ratio(); got != 250 {
		t.Errorf("Ratio = %g, want 250", got)
	}
}

func TestZeroWorkRegime(t *testing.T) {
	// Prop 4.1(c): zero-work iff U ≤ (p+1)c.
	cases := []struct {
		o    Opportunity
		want bool
	}{
		{Opportunity{Lifespan: 3, Interrupts: 2, Setup: 1}, true},
		{Opportunity{Lifespan: 3.01, Interrupts: 2, Setup: 1}, false},
		{Opportunity{Lifespan: 1, Interrupts: 0, Setup: 1}, true},
		{Opportunity{Lifespan: 100, Interrupts: 0, Setup: 1}, false},
	}
	for _, c := range cases {
		if got := c.o.ZeroWorkRegime(); got != c.want {
			t.Errorf("%v ZeroWorkRegime = %v, want %v", c.o, got, c.want)
		}
	}
}

func TestScheduleTotalAndPrefix(t *testing.T) {
	s := Schedule{3, 4, 5}
	if got := s.Total(); got != 12 {
		t.Errorf("Total = %g, want 12", got)
	}
	want := []float64{0, 3, 7, 12}
	got := s.PrefixSums()
	if len(got) != len(want) {
		t.Fatalf("PrefixSums length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PrefixSums[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{}).Validate(0, 0.1); err == nil {
		t.Error("empty schedule accepted")
	}
	if err := (Schedule{1, 2, 3}).Validate(6, 1e-9); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := (Schedule{1, -2, 3}).Validate(2, 1e-9); err == nil {
		t.Error("negative period accepted")
	}
	if err := (Schedule{1, 2, 3}).Validate(7, 1e-9); err == nil {
		t.Error("wrong total accepted")
	}
	if err := (Schedule{1, math.NaN()}).Validate(1, 1e-9); err == nil {
		t.Error("NaN period accepted")
	}
}

func TestUninterruptedWork(t *testing.T) {
	s := Schedule{3, 0.5, 2}
	// c = 1: (3−1) + 0 + (2−1) = 3
	if got := s.UninterruptedWork(1); got != 3 {
		t.Errorf("UninterruptedWork = %g, want 3", got)
	}
}

func TestWorkBeforePeriod(t *testing.T) {
	s := Schedule{3, 2, 5}
	c := 1.0
	cases := []struct {
		k    int
		want float64
	}{
		{0, 0}, {1, 0}, {2, 2}, {3, 3}, {4, 7}, {9, 7},
	}
	for _, cse := range cases {
		if got := s.WorkBeforePeriod(cse.k, c); got != cse.want {
			t.Errorf("WorkBeforePeriod(%d) = %g, want %g", cse.k, got, cse.want)
		}
	}
}

func TestIsProductive(t *testing.T) {
	c := 1.0
	if !(Schedule{2, 3, 0.5}).IsProductive(c) {
		t.Error("terminal short period should not break productivity")
	}
	if (Schedule{0.5, 3}).IsProductive(c) {
		t.Error("nonterminal short period should break productivity")
	}
	if !(Schedule{2, 3}).IsFullyProductive(c) {
		t.Error("all-long schedule should be fully productive")
	}
	if (Schedule{2, 1}).IsFullyProductive(c) {
		t.Error("terminal period == c should break full productivity")
	}
}

func TestMakeProductive(t *testing.T) {
	c := 1.0
	s := Schedule{0.5, 0.3, 4, 0.2, 0.9, 3, 0.4}
	p := s.MakeProductive(c)
	if !p.IsProductive(c) {
		t.Fatalf("MakeProductive result %v not productive", p)
	}
	if !quant.ApproxEqual(p.Total(), s.Total(), 1e-9) {
		t.Errorf("MakeProductive changed total: %g → %g", s.Total(), p.Total())
	}
}

func TestMakeProductiveAllShort(t *testing.T) {
	c := 10.0
	s := Schedule{1, 1, 1}
	p := s.MakeProductive(c)
	if len(p) != 1 || !quant.ApproxEqual(p[0], 3, 1e-9) {
		t.Errorf("all-short schedule should collapse to one period, got %v", p)
	}
}

// Theorem 4.1 (work-dominance half, uninterrupted case): merging
// nonproductive periods never decreases the uninterrupted work.
func TestMakeProductiveNeverLosesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		c := 0.5 + rng.Float64()*2
		n := 1 + rng.Intn(12)
		s := make(Schedule, n)
		for i := range s {
			s[i] = 0.1 + rng.Float64()*3*c
		}
		p := s.MakeProductive(c)
		if p.UninterruptedWork(c) < s.UninterruptedWork(c)-1e-9 {
			t.Fatalf("trial %d: productive transform lost work: %v (%.4f) → %v (%.4f)",
				trial, s, s.UninterruptedWork(c), p, p.UninterruptedWork(c))
		}
		if !quant.ApproxEqual(p.Total(), s.Total(), 1e-6) {
			t.Fatalf("trial %d: total changed %g → %g", trial, s.Total(), p.Total())
		}
	}
}

func TestScheduleClone(t *testing.T) {
	s := Schedule{1, 2}
	cl := s.Clone()
	cl[0] = 99
	if s[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestTickScheduleBasics(t *testing.T) {
	s := TickSchedule{300, 400, 500}
	if got := s.Total(); got != 1200 {
		t.Errorf("Total = %d, want 1200", got)
	}
	pre := s.PrefixSums()
	want := []quant.Tick{0, 300, 700, 1200}
	for i := range want {
		if pre[i] != want[i] {
			t.Errorf("PrefixSums[%d] = %d, want %d", i, pre[i], want[i])
		}
	}
	if got := s.UninterruptedWork(100); got != 900 {
		t.Errorf("UninterruptedWork = %d, want 900", got)
	}
	if got := s.WorkBeforePeriod(3, 100); got != 500 {
		t.Errorf("WorkBeforePeriod(3) = %d, want 500", got)
	}
	if err := s.Validate(1200); err != nil {
		t.Errorf("valid tick schedule rejected: %v", err)
	}
	if err := s.Validate(1000); err == nil {
		t.Error("wrong tick total accepted")
	}
	if err := (TickSchedule{0, 5}).Validate(5); err == nil {
		t.Error("zero-length tick period accepted")
	}
	if err := (TickSchedule{}).Validate(0); err == nil {
		t.Error("empty tick schedule accepted")
	}
}

func TestTickScheduleUnits(t *testing.T) {
	q := quant.MustQuantum(100)
	s := TickSchedule{150, 250}
	u := s.Units(q)
	if u[0] != 1.5 || u[1] != 2.5 {
		t.Errorf("Units = %v, want [1.5 2.5]", u)
	}
}

func TestQuantizeExactSum(t *testing.T) {
	q := quant.MustQuantum(100)
	s := Schedule{1.514, 2.718, 3.141}
	total := quant.Tick(800) // deliberately off from the rounded sum
	ts, err := Quantize(s, q, total)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	if got := ts.Total(); got != total {
		t.Errorf("quantized total %d, want %d", got, total)
	}
	if len(ts) != len(s) {
		t.Errorf("period count changed: %d → %d", len(s), len(ts))
	}
	for i, tk := range ts {
		if tk < 1 {
			t.Errorf("period %d = %d < 1", i, tk)
		}
	}
}

func TestQuantizeErrors(t *testing.T) {
	q := quant.MustQuantum(100)
	if _, err := Quantize(Schedule{}, q, 100); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := Quantize(Schedule{1, 1, 1}, q, 2); err == nil {
		t.Error("total smaller than period count accepted")
	}
}

func TestQuantizeProperty(t *testing.T) {
	q := quant.MustQuantum(50)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		s := make(Schedule, n)
		var sum float64
		for i := range s {
			s[i] = 0.05 + rng.Float64()*5
			sum += s[i]
		}
		total := q.ToTicks(sum)
		if total < quant.Tick(n) {
			return true // rejected by construction guard; not this test's target
		}
		ts, err := Quantize(s, q, total)
		if err != nil {
			return false
		}
		if ts.Total() != total {
			return false
		}
		for _, tk := range ts {
			if tk < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEpisodeFuncAndNameOf(t *testing.T) {
	f := EpisodeFunc(func(p int, L quant.Tick) TickSchedule { return TickSchedule{L} })
	if got := f.Episode(1, 42); len(got) != 1 || got[0] != 42 {
		t.Errorf("EpisodeFunc passthrough failed: %v", got)
	}
	if name := NameOf(f); name == "" {
		t.Error("NameOf returned empty for non-Namer")
	}
	named := namedScheduler{}
	if got := NameOf(named); got != "named" {
		t.Errorf("NameOf = %q, want named", got)
	}
}

type namedScheduler struct{}

func (namedScheduler) Episode(p int, L quant.Tick) TickSchedule { return TickSchedule{L} }
func (namedScheduler) Name() string                             { return "named" }

func TestOpportunityString(t *testing.T) {
	if s := (Opportunity{Lifespan: 1, Interrupts: 2, Setup: 3}).String(); s == "" {
		t.Error("empty String()")
	}
}

// AppendQuantize must agree with Quantize bit for bit and leave the prefix of
// the destination buffer untouched — the contract the simulator's reusable
// episode buffer rides on.
func TestAppendQuantizeMatchesQuantize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	unit := quant.MustQuantum(1)
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(12)
		s := make(Schedule, m)
		var total quant.Tick
		for i := range s {
			s[i] = rng.Float64()*40 + 0.3
		}
		total = quant.Tick(s.Total()) + quant.Tick(rng.Intn(5)) + quant.Tick(m)
		want, wantErr := Quantize(s, unit, total)
		prefix := TickSchedule{11, 22, 33}
		dst := append(TickSchedule{}, prefix...)
		got, gotErr := AppendQuantize(dst, s, unit, total)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, wantErr, gotErr)
		}
		if len(got) < len(prefix) || got[0] != 11 || got[1] != 22 || got[2] != 33 {
			t.Fatalf("trial %d: prefix clobbered: %v", trial, got)
		}
		if wantErr != nil {
			if len(got) != len(prefix) {
				t.Fatalf("trial %d: error path appended periods: %v", trial, got)
			}
			continue
		}
		tail := got[len(prefix):]
		if len(tail) != len(want) {
			t.Fatalf("trial %d: appended %d periods, want %d", trial, len(tail), len(want))
		}
		for i := range want {
			if tail[i] != want[i] {
				t.Fatalf("trial %d: period %d = %d, want %d", trial, i, tail[i], want[i])
			}
		}
	}
}

func TestAppendQuantizeErrors(t *testing.T) {
	unit := quant.MustQuantum(1)
	if _, err := AppendQuantize(nil, nil, unit, 10); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := AppendQuantize(nil, Schedule{1, 1, 1}, unit, 2); err == nil {
		t.Error("underfull total accepted")
	}
}

// appenderScheduler counts AppendEpisode calls so the helper's dispatch is
// observable.
type appenderScheduler struct{ appends int }

func (a *appenderScheduler) Episode(p int, L quant.Tick) TickSchedule { return TickSchedule{L} }
func (a *appenderScheduler) AppendEpisode(dst TickSchedule, p int, L quant.Tick) TickSchedule {
	a.appends++
	return append(dst, L)
}

func TestAppendEpisodeDispatch(t *testing.T) {
	a := &appenderScheduler{}
	got := AppendEpisode(a, TickSchedule{5}, 1, 100)
	if a.appends != 1 {
		t.Errorf("AppendEpisode not dispatched to the appender (calls=%d)", a.appends)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 100 {
		t.Errorf("appended schedule = %v", got)
	}
	// Fallback: a plain scheduler's Episode result is copied in.
	plain := EpisodeFunc(func(p int, L quant.Tick) TickSchedule { return TickSchedule{L, L} })
	got = AppendEpisode(plain, TickSchedule{1}, 0, 7)
	if len(got) != 3 || got[1] != 7 || got[2] != 7 {
		t.Errorf("fallback append = %v", got)
	}
}
