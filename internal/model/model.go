// Package model defines the formal objects of Rosenberg's guaranteed-output
// cycle-stealing model (IPPS 1999, §2): opportunities, episode-schedules in
// both the continuous and the tick domain, work accounting under positive
// subtraction, and the scheduler interfaces the rest of the system builds on.
//
// Vocabulary (paper §2):
//
//   - An *opportunity* is a usable lifespan U punctuated by at most p
//     owner interrupts; each interrupt kills the work of the period it lands
//     in (draconian contract).
//   - An *episode* is a maximal interrupt-free prefix of the remaining
//     lifespan; the scheduler partitions it into *periods* t_1, …, t_m with
//     Σ t_i equal to the residual lifespan.
//   - A completed period of length t banks t ⊖ c work units, where c is the
//     setup cost of the paired send-work/return-results communications.
package model

import (
	"errors"
	"fmt"
	"math"

	"cyclesteal/internal/quant"
)

// Opportunity describes one cycle-stealing opportunity in continuous time
// units: workstation B is usable for Lifespan units, its owner may interrupt
// at most Interrupts times, and every period pays the communication setup
// cost Setup (the paper's c).
type Opportunity struct {
	Lifespan   float64 // U > 0, in time units
	Interrupts int     // p ≥ 0, upper bound on owner interrupts
	Setup      float64 // c > 0, per-period communication setup cost
}

// Validate reports whether the opportunity parameters are in the model's
// domain (U > 0, p ≥ 0, c > 0, all finite).
func (o Opportunity) Validate() error {
	switch {
	case math.IsNaN(o.Lifespan) || math.IsInf(o.Lifespan, 0) || o.Lifespan <= 0:
		return fmt.Errorf("model: lifespan U must be positive and finite, got %v", o.Lifespan)
	case o.Interrupts < 0:
		return fmt.Errorf("model: interrupt bound p must be nonnegative, got %d", o.Interrupts)
	case math.IsNaN(o.Setup) || math.IsInf(o.Setup, 0) || o.Setup <= 0:
		return fmt.Errorf("model: setup cost c must be positive and finite, got %v", o.Setup)
	}
	return nil
}

// Ratio returns U/c, the natural size parameter of the model: every bound in
// the paper is a function of U/c and p once times are measured in units of c.
func (o Opportunity) Ratio() float64 { return o.Lifespan / o.Setup }

// ZeroWorkRegime reports whether the opportunity is so short that the
// adversary can kill every productive period: Prop. 4.1(c) shows the
// guaranteed output is 0 whenever U ≤ (p+1)c.
func (o Opportunity) ZeroWorkRegime() bool {
	return o.Lifespan <= float64(o.Interrupts+1)*o.Setup
}

// String implements fmt.Stringer.
func (o Opportunity) String() string {
	return fmt.Sprintf("opportunity(U=%g, p=%d, c=%g)", o.Lifespan, o.Interrupts, o.Setup)
}

// ErrEmptySchedule is returned when an episode-schedule has no periods.
var ErrEmptySchedule = errors.New("model: episode-schedule has no periods")

// Schedule is an episode-schedule in continuous time: the ordered period
// lengths t_1, …, t_m chosen for one episode. Period k occupies
// [T_{k-1}, T_k) with T_k = t_1 + … + t_k.
type Schedule []float64

// Total returns T_m = Σ t_i, the lifespan the schedule consumes.
func (s Schedule) Total() float64 {
	var sum float64
	for _, t := range s {
		sum += t
	}
	return sum
}

// PrefixSums returns the period boundaries T_0 = 0, T_1, …, T_m
// (length m+1).
func (s Schedule) PrefixSums() []float64 {
	sums := make([]float64, len(s)+1)
	for i, t := range s {
		sums[i+1] = sums[i] + t
	}
	return sums
}

// Validate checks that the schedule is a legal partition of a lifespan of
// length total: every period strictly positive and finite, and Σ t_i within
// tol of total.
func (s Schedule) Validate(total, tol float64) error {
	if len(s) == 0 {
		return ErrEmptySchedule
	}
	for i, t := range s {
		if math.IsNaN(t) || math.IsInf(t, 0) || t <= 0 {
			return fmt.Errorf("model: period %d has illegal length %v", i+1, t)
		}
	}
	if got := s.Total(); !quant.ApproxEqual(got, total, tol) {
		return fmt.Errorf("model: schedule totals %v, want %v (tol %v)", got, total, tol)
	}
	return nil
}

// UninterruptedWork returns the work banked if no interrupt occurs: the
// episode runs to completion and every period k contributes t_k ⊖ c.
func (s Schedule) UninterruptedWork(c float64) float64 {
	var w float64
	for _, t := range s {
		w += quant.PosSubF(t, c)
	}
	return w
}

// WorkBeforePeriod returns the work banked by periods 1..k-1, i.e. the
// episode's output if the adversary interrupts during period k (paper §2.2).
// k is 1-based; k = 1 yields 0.
func (s Schedule) WorkBeforePeriod(k int, c float64) float64 {
	if k < 1 {
		return 0
	}
	var w float64
	for i := 0; i < k-1 && i < len(s); i++ {
		w += quant.PosSubF(s[i], c)
	}
	return w
}

// IsProductive reports whether every nonterminal period strictly exceeds c
// (paper Thm 4.1's "productive" normal form). The final period is exempt.
func (s Schedule) IsProductive(c float64) bool {
	for i := 0; i < len(s)-1; i++ {
		if s[i] <= c {
			return false
		}
	}
	return true
}

// IsFullyProductive reports whether every period, including the last,
// strictly exceeds c (paper §4.1's stronger normal form).
func (s Schedule) IsFullyProductive(c float64) bool {
	for _, t := range s {
		if t <= c {
			return false
		}
	}
	return true
}

// MakeProductive applies the transformation of Theorem 4.1: any nonterminal
// period of length ≤ c is merged with its successor, repeatedly, until the
// schedule is productive. The result consumes the same lifespan and (Theorem
// 4.1) guarantees at least as much work against every adversary.
func (s Schedule) MakeProductive(c float64) Schedule {
	out := make(Schedule, 0, len(s))
	carry := 0.0
	for i, t := range s {
		t += carry
		carry = 0
		if t <= c && i < len(s)-1 {
			// Nonproductive nonterminal period: fold into the successor.
			carry = t
			continue
		}
		out = append(out, t)
	}
	if carry > 0 {
		// Everything folded into a trailing remnant; merge it with the last
		// emitted period, or emit it alone if nothing was emitted.
		if len(out) > 0 {
			out[len(out)-1] += carry
		} else {
			out = append(out, carry)
		}
	}
	return out
}

// Clone returns a deep copy of the schedule.
func (s Schedule) Clone() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	return out
}

// TickSchedule is an episode-schedule on the integer tick grid. The exact
// game solver and the simulator operate in this domain so that worst-case
// values are computed without floating-point ambiguity.
type TickSchedule []quant.Tick

// Total returns Σ t_i in ticks.
func (s TickSchedule) Total() quant.Tick {
	var sum quant.Tick
	for _, t := range s {
		sum += t
	}
	return sum
}

// PrefixSums returns T_0 = 0, T_1, …, T_m in ticks (length m+1).
func (s TickSchedule) PrefixSums() []quant.Tick {
	sums := make([]quant.Tick, len(s)+1)
	for i, t := range s {
		sums[i+1] = sums[i] + t
	}
	return sums
}

// UninterruptedWork returns Σ (t_k ⊖ c) in ticks.
func (s TickSchedule) UninterruptedWork(c quant.Tick) quant.Tick {
	var w quant.Tick
	for _, t := range s {
		w += quant.PosSub(t, c)
	}
	return w
}

// WorkBeforePeriod returns the ticks of work banked by periods 1..k-1
// (the episode output when period k is interrupted). k is 1-based.
func (s TickSchedule) WorkBeforePeriod(k int, c quant.Tick) quant.Tick {
	if k < 1 {
		return 0
	}
	var w quant.Tick
	for i := 0; i < k-1 && i < len(s); i++ {
		w += quant.PosSub(s[i], c)
	}
	return w
}

// Validate checks the tick schedule partitions exactly total ticks with
// every period ≥ 1.
func (s TickSchedule) Validate(total quant.Tick) error {
	if len(s) == 0 {
		return ErrEmptySchedule
	}
	for i, t := range s {
		if t < 1 {
			return fmt.Errorf("model: tick period %d has illegal length %d", i+1, t)
		}
	}
	if got := s.Total(); got != total {
		return fmt.Errorf("model: tick schedule totals %d, want %d", got, total)
	}
	return nil
}

// Units converts the tick schedule back to continuous time.
func (s TickSchedule) Units(q quant.Quantum) Schedule {
	out := make(Schedule, len(s))
	for i, t := range s {
		out[i] = q.ToUnits(t)
	}
	return out
}

// Clone returns a deep copy.
func (s TickSchedule) Clone() TickSchedule {
	out := make(TickSchedule, len(s))
	copy(out, s)
	return out
}

// Quantize converts a continuous schedule to the tick grid so that the tick
// periods are each ≥ 1 and sum exactly to total. Rounding residue is absorbed
// by the longest period, which perturbs any single period by at most m ticks
// — an O(resolution) perturbation of the work functional.
func Quantize(s Schedule, q quant.Quantum, total quant.Tick) (TickSchedule, error) {
	out, err := AppendQuantize(nil, s, q, total)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AppendQuantize is Quantize writing into the caller's buffer: the quantized
// periods are appended to dst and the extended slice returned, so a hot loop
// (the simulator quantizes one episode per interrupt) reuses one allocation
// instead of paying a fresh TickSchedule per episode. On error dst is
// returned truncated to its original length.
func AppendQuantize(dst TickSchedule, s Schedule, q quant.Quantum, total quant.Tick) (TickSchedule, error) {
	if len(s) == 0 {
		return dst, ErrEmptySchedule
	}
	if total < quant.Tick(len(s)) {
		return dst, fmt.Errorf("model: cannot fit %d periods into %d ticks", len(s), total)
	}
	base := len(dst)
	var sum quant.Tick
	longest := base
	for _, t := range s {
		ticks := q.ToTicks(t)
		if ticks < 1 {
			ticks = 1
		}
		dst = append(dst, ticks)
		sum += ticks
		if dst[len(dst)-1] > dst[longest] {
			longest = len(dst) - 1
		}
	}
	diff := total - sum
	if dst[longest]+diff < 1 {
		// Residue would annihilate the longest period; spread it instead.
		return dst[:base], fmt.Errorf("model: quantization residue %d exceeds schedule capacity", diff)
	}
	dst[longest] += diff
	return dst, nil
}

// EpisodeScheduler is the adaptive-scheduling interface of §2.2: given the
// number of interrupts the adversary still holds and the residual lifespan in
// ticks, produce the episode-schedule to run until the next interrupt (or the
// end of the opportunity). Implementations must return a schedule whose
// periods are ≥ 1 tick and sum exactly to the residual lifespan.
//
// Non-adaptive schedules are expressed in this interface too: because
// interrupts consume no time, the elapsed lifespan U−L identifies the point
// of interruption, so "continue with the tail" is a pure function of (p, L)
// (see sched.NonAdaptive).
type EpisodeScheduler interface {
	// Episode returns the period lengths for an episode beginning with
	// p potential interrupts outstanding and L ticks of residual lifespan.
	// L ≥ 1.
	Episode(p int, L quant.Tick) TickSchedule
}

// EpisodeFunc adapts a plain function to the EpisodeScheduler interface.
type EpisodeFunc func(p int, L quant.Tick) TickSchedule

// Episode implements EpisodeScheduler.
func (f EpisodeFunc) Episode(p int, L quant.Tick) TickSchedule { return f(p, L) }

// EpisodeAppender is the allocation-free variant of EpisodeScheduler: the
// episode's periods are appended to dst and the extended slice returned, so a
// driver replaying millions of opportunities can reuse one episode buffer per
// station instead of allocating a fresh TickSchedule per episode. The
// appended periods must be exactly Episode(p, L); callers own dst and may
// overwrite it after use.
type EpisodeAppender interface {
	AppendEpisode(dst TickSchedule, p int, L quant.Tick) TickSchedule
}

// AppendEpisode appends s's episode for (p, L) to dst, using the scheduler's
// allocation-free AppendEpisode when it has one and falling back to copying
// the Episode result otherwise. This is the call the simulator's hot loop
// makes, so implementing EpisodeAppender is the opt-in to the zero-alloc
// episode path.
func AppendEpisode(s EpisodeScheduler, dst TickSchedule, p int, L quant.Tick) TickSchedule {
	if a, ok := s.(EpisodeAppender); ok {
		return a.AppendEpisode(dst, p, L)
	}
	return append(dst, s.Episode(p, L)...)
}

// MemoKey identifies a scheduler's episode function for cross-instance
// caching. It is a plain comparable struct — built and compared without
// allocating, since the farm engine derives one per opportunity. Kind names
// the scheduler family (a string constant); the numeric fields carry
// whatever parameters the family's episodes depend on, zero when unused.
type MemoKey struct {
	Kind string     // scheduler family
	C    quant.Tick // setup cost
	M    int        // period-count / chunk-size parameter
}

// EpisodeMemoKeyer is implemented by schedulers whose Episode is a pure
// function of (p, L) and the reported key: two scheduler instances returning
// equal keys (with ok true) emit bit-identical episodes for every (p, L), so
// a (p, L)-keyed episode cache may outlive any single instance — the property
// sched.Memo relies on to keep one warm cache per station while factories
// hand it a fresh scheduler per contract. Schedulers whose episodes depend on
// state the key cannot capture must return ok false.
type EpisodeMemoKeyer interface {
	EpisodeMemoKey() (key MemoKey, ok bool)
}

// Namer is implemented by schedulers that can report a human-readable name
// for experiment tables.
type Namer interface {
	Name() string
}

// NameOf returns s's name if it implements Namer, else a generic label.
func NameOf(s EpisodeScheduler) string {
	if n, ok := s.(Namer); ok {
		return n.Name()
	}
	return fmt.Sprintf("%T", s)
}
