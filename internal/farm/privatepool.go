package farm

import (
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/task"
)

// PrivatePools is the degenerate TaskPool behind now.Fleet: station i draws
// from its own private bag (possibly none), and no task ever crosses
// stations. It is inexhaustible — fluid work keeps banking after the bags
// drain, so stations play out every opportunity, which is the fleet-survey
// semantics now.Fleet reports. Because each bag is touched only by its own
// station's goroutine, no locking is needed; the aggregate accessors are
// meant for before/after a run, not mid-run polling.
type PrivatePools struct {
	bags []*task.Bag
}

// NewPrivatePools builds the pool from per-station bags; nil entries (or a
// nil slice — the fluid-only fleet) mean the station packs no tasks.
func NewPrivatePools(bags []*task.Bag) *PrivatePools {
	return &PrivatePools{bags: bags}
}

// Station implements TaskPool: station i's own bag, or an empty source.
func (p *PrivatePools) Station(i int) sim.TaskSource {
	if i < len(p.bags) && p.bags[i] != nil {
		return p.bags[i]
	}
	return noTasks{}
}

// Remaining implements TaskPool.
func (p *PrivatePools) Remaining() int {
	sum := 0
	for _, b := range p.bags {
		if b != nil {
			sum += b.Remaining()
		}
	}
	return sum
}

// RemainingWork implements TaskPool.
func (p *PrivatePools) RemainingWork() quant.Tick {
	var sum quant.Tick
	for _, b := range p.bags {
		if b != nil {
			sum += b.RemainingWork()
		}
	}
	return sum
}

// Steals implements TaskPool: private bags never steal.
func (p *PrivatePools) Steals() int { return 0 }

// Exhaustible implements TaskPool: a fleet survey runs every opportunity.
func (p *PrivatePools) Exhaustible() bool { return false }

// noTasks is the task source of a station with no private bag.
type noTasks struct{}

// Take implements sim.TaskSource.
func (noTasks) Take(quant.Tick) []task.Task { return nil }

// TakeInto implements sim.TaskSource.
func (noTasks) TakeInto(dst []task.Task, _ quant.Tick) []task.Task { return dst }

// Return implements sim.TaskSource.
func (noTasks) Return([]task.Task) {}
