package farm

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"cyclesteal/internal/fault"
	"cyclesteal/internal/station"
	"cyclesteal/internal/task"
)

// TestTeardownLeaveDrainsCrashDestroys is the satellite contract: Leave and
// Crash share one teardown, differing only in what happens to an orphaned
// group's queue — a leave drains it back to the fleet, a crash destroys it.
func TestTeardownLeaveDrainsCrashDestroys(t *testing.T) {
	build := func() *Core {
		f := testFarm(4, station.Office{MeanIdle: 2500, MaxP: 2})
		f.Shards = 4
		core := f.NewCore(equalizedFactory, 7, 4, 4, false)
		for _, ws := range f.Stations {
			core.Join(ws)
		}
		core.AddTasks(task.Fixed(40, 5)) // 10 per group
		return core
	}

	left := build()
	if !left.Leave(1) {
		t.Fatal("Leave(1) reported a dead slot")
	}
	if left.Pending() != 40 || left.TasksLost() != 0 {
		t.Errorf("leave lost work: pending %d, lost %d", left.Pending(), left.TasksLost())
	}
	if left.queues[1].Remaining() != 0 {
		t.Errorf("orphaned queue kept %d tasks instead of draining", left.queues[1].Remaining())
	}

	crashed := build()
	if !crashed.Crash(1) {
		t.Fatal("Crash(1) reported a dead slot")
	}
	if crashed.TasksLost() != 10 {
		t.Errorf("crash lost %d tasks, want the orphaned group's 10", crashed.TasksLost())
	}
	if crashed.Pending() != 30 {
		t.Errorf("pending %d after crash, want 30", crashed.Pending())
	}
	if crashed.Crash(1) || crashed.Leave(1) {
		t.Error("second teardown of the same slot reported live")
	}
	snap := crashed.Snapshot()
	if snap.Lost != 10 || snap.Completed != 0 || snap.Remaining != 30 {
		t.Errorf("snapshot %+v inconsistent with the crash", snap)
	}
}

// A crash that leaves live colleagues in the group destroys nothing queued:
// the group queue is pooled NOW-side work, not the crashed host's.
func TestCrashWithLiveColleagueKeepsQueue(t *testing.T) {
	f := testFarm(4, station.Office{MeanIdle: 2500, MaxP: 2})
	f.Shards = 2
	core := f.NewCore(equalizedFactory, 7, 2, 4, false)
	for _, ws := range f.Stations {
		core.Join(ws)
	}
	core.AddTasks(task.Fixed(40, 5))
	if !core.Crash(0) { // slot 2 still lives in group 0
		t.Fatal("Crash(0) reported a dead slot")
	}
	if core.TasksLost() != 0 || core.Pending() != 40 {
		t.Errorf("crash with a live colleague lost %d / pending %d", core.TasksLost(), core.Pending())
	}
}

// crossLossCore builds a 2-cluster core with the whole job stacked on
// cluster 1, so cluster 0 starts dry and must steal across, and arms the
// given fault plan.
func crossLossCore(plan fault.Plan) *Core {
	f := testFarm(4, station.Overnight{Window: 50})
	f.Shards = 4
	f.Topology = Topology{Clusters: 2, CrossLatency: 5}
	core := f.NewCore(equalizedFactory, 3, 4, 4, false)
	for _, ws := range f.Stations {
		core.Join(ws)
	}
	core.SetFaults(plan.NewInjector(99))
	tasks := task.Fixed(400, 5)
	core.queues[2].Append(tasks[:200])
	core.queues[3].Append(tasks[200:])
	core.total += 400
	return core
}

// TestCrossStealLossTimeoutRetryDegrade drives the loss-aware steal path to
// its end state: with (practically) certain parcel loss, a requesting group
// times out on the round clock, retries through its budget with backoff, and
// then degrades to intra-cluster scanning for good.
func TestCrossStealLossTimeoutRetryDegrade(t *testing.T) {
	core := crossLossCore(fault.Plan{Seed: 5, LossProb: 0.999999, StealRetries: 2})
	ctx := context.Background()
	degraded := false
	for round := 0; round < 60 && !degraded; round++ {
		if err := core.PlayRound(ctx, 2); err != nil {
			t.Fatal(err)
		}
		degraded = core.crossDead[0] || core.crossDead[1]
	}
	if !degraded {
		t.Fatal("no group degraded after 60 rounds of certain loss")
	}
	if core.TasksLost() == 0 {
		t.Error("lost parcels not counted")
	}
	if core.flight.Lost() == 0 {
		t.Error("flight ledger did not record transit losses")
	}
	completed := 0
	for _, rep := range core.Reports() {
		completed += rep.TasksCompleted
	}
	if completed+core.Pending()+core.TasksLost() != core.Total() {
		t.Errorf("conservation broken: %d + %d + %d ≠ %d",
			completed, core.Pending(), core.TasksLost(), core.Total())
	}
}

// TestCrossStealArrivalClearsOutstandingRequest pins the no-false-timeout
// property: a crossing that succeeds lands before the timeout check at the
// same barrier (Arrive runs first), so a lossless run never counts a
// failure, never backs off, and never degrades — even with the loss-aware
// machinery armed.
func TestCrossStealArrivalClearsOutstandingRequest(t *testing.T) {
	core := crossLossCore(fault.Plan{Seed: 5, LossProb: 1e-12, StealRetries: 1})
	ctx := context.Background()
	for round := 0; round < 40; round++ {
		if err := core.PlayRound(ctx, 1); err != nil {
			t.Fatal(err)
		}
		if core.crossFails[0]+core.crossFails[1] != 0 {
			t.Fatalf("round %d: false timeout counted on a lossless run", round)
		}
	}
	if core.crossDead[0] || core.crossDead[1] {
		t.Error("a lossless run degraded a group")
	}
	if core.TasksLost() != 0 {
		t.Errorf("lost %d tasks with no losses injected", core.TasksLost())
	}
	if core.Steals() == 0 {
		t.Error("the dry cluster never stole across")
	}
}

// A parcel maturing into a group whose requester crashed while it was in
// flight is lost on arrival — there is nobody left to receive it.
func TestParcelArrivingAtCrashedGroupIsLost(t *testing.T) {
	core := crossLossCore(fault.Plan{Seed: 5, LossProb: 1e-12, StealRetries: 1})
	ctx := context.Background()
	// Play until a parcel is in flight, then crash both cluster-0 stations.
	for round := 0; round < 40 && core.InFlight() == 0; round++ {
		if err := core.PlayRound(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	if core.InFlight() == 0 {
		t.Fatal("no parcel ever departed")
	}
	core.Crash(0)
	core.Crash(1)
	lostBefore := core.TasksLost()
	for round := 0; round < 40 && core.InFlight() > 0; round++ {
		if err := core.PlayRound(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	if core.InFlight() != 0 {
		t.Fatal("parcel never matured")
	}
	if core.TasksLost() <= lostBefore {
		t.Error("parcel arriving at the crashed group was not lost")
	}
}

// TestRunDeterministicFaultPlanReplays is the acceptance pin: an active
// fault plan realizes bit-identically from its seed at any worker count, and
// the loss accounting conserves the job.
func TestRunDeterministicFaultPlanReplays(t *testing.T) {
	job := Job{Tasks: task.Uniform(600, 5, 40, 3)}
	f := testFarm(8, station.Office{MeanIdle: 2500, MaxP: 2})
	f.Shards = 8
	f.OpportunitiesPerStation = 20
	f.Topology = Topology{Clusters: 2, CrossLatency: 4}
	f.Faults = fault.Plan{Seed: 11, CrashProb: 0.02, LossProb: 0.3}
	a, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("faulted run diverged between workers 1 and 8")
	}
	if a.TasksCompleted+a.TasksLeft+a.TasksLost != len(job.Tasks) {
		t.Errorf("conservation broken: %d + %d + %d ≠ %d",
			a.TasksCompleted, a.TasksLeft, a.TasksLost, len(job.Tasks))
	}
}

// A scheduled crash at a known round destroys the orphaned group's queue —
// work is genuinely lost relative to the fault-free run.
func TestRunDeterministicScheduledCrashLosesWork(t *testing.T) {
	job := Job{Tasks: task.Uniform(600, 5, 40, 3)}
	f := testFarm(8, station.Office{MeanIdle: 2500, MaxP: 2})
	f.Shards = 8
	f.OpportunitiesPerStation = 20
	base, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.Faults = fault.Plan{Crashes: []fault.Crash{{Round: 1, Station: 2}, {Round: 1, Station: 5}}}
	crashed, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.TasksLost == 0 {
		t.Error("scheduled crashes destroyed nothing")
	}
	if crashed.TasksCompleted+crashed.TasksLeft+crashed.TasksLost != len(job.Tasks) {
		t.Errorf("conservation broken: %d + %d + %d ≠ %d",
			crashed.TasksCompleted, crashed.TasksLeft, crashed.TasksLost, len(job.Tasks))
	}
	if crashed.TasksCompleted > base.TasksCompleted {
		t.Errorf("crashes increased completion: %d > %d", crashed.TasksCompleted, base.TasksCompleted)
	}
}

// An inactive plan (a bare retry budget) arms nothing: the run is
// bit-identical to one without a Faults field at all.
func TestRunDeterministicInactiveFaultPlanPinned(t *testing.T) {
	job := Job{Tasks: task.Uniform(400, 5, 40, 3)}
	f := testFarm(8, station.Office{MeanIdle: 2500, MaxP: 2})
	f.Shards = 4
	base, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.Faults = fault.Plan{StealRetries: 4}
	got, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, base) {
		t.Error("inactive fault plan perturbed the run")
	}
}

func TestFaultPlanRejections(t *testing.T) {
	job := Job{Tasks: task.Fixed(40, 5)}
	f := testFarm(4, station.Office{MeanIdle: 2500, MaxP: 2})
	f.Faults = fault.Plan{KillRound: 3}
	if _, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 1, 1); err == nil || !strings.Contains(err.Error(), "KillRound") {
		t.Errorf("batch run accepted a scheduler kill: %v", err)
	}
	f.Faults = fault.Plan{CrashProb: 0.1}
	if _, err := f.Run(context.Background(), job, equalizedFactory, 1); err == nil || !strings.Contains(err.Error(), "live engine") {
		t.Errorf("live run accepted an active fault plan: %v", err)
	}
	f.Faults = fault.Plan{CrashProb: 2}
	if _, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 1, 1); err == nil {
		t.Error("malformed plan accepted")
	}
}

// The whole fleet crashing ends the run early with everything queued lost.
func TestRunDeterministicFleetWipeout(t *testing.T) {
	job := Job{Tasks: task.Fixed(80, 5)}
	f := testFarm(4, station.Office{MeanIdle: 2500, MaxP: 2})
	f.Shards = 4
	f.OpportunitiesPerStation = 20
	f.Faults = fault.Plan{Crashes: []fault.Crash{
		{Round: 1, Station: 0}, {Round: 1, Station: 1}, {Round: 1, Station: 2}, {Round: 1, Station: 3},
	}}
	res, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksLeft != 0 {
		t.Errorf("wipeout left %d tasks queued; they died with their hosts", res.TasksLeft)
	}
	if res.TasksCompleted+res.TasksLost != len(job.Tasks) {
		t.Errorf("conservation broken: %d + %d ≠ %d", res.TasksCompleted, res.TasksLost, len(job.Tasks))
	}
}
