// Package farm implements the setting of the paper's title: *data-parallel*
// cycle-stealing in a *network* of workstations. One job — a bag of
// indivisible tasks — is farmed out across every opportunity the fleet's
// owners offer, concurrently: stations draw work from the job's task pool as
// their periods open, and killed periods return their in-flight tasks for
// rescheduling elsewhere.
//
// This is the layer a downstream user runs, and the only station-driving loop
// in the repo: internal/station models who offers time and when they
// interrupt; internal/sched decides period sizing on each opportunity; this
// package binds them to a workload and reports job-level outcomes
// (completion fraction, work distribution across stations, lost-to-kills
// accounting). internal/now's Fleet is a thin adapter over RunPool with
// private per-station bags.
//
// # Task pools and the sharded bag
//
// Three pool implementations back a farmed run. SharedBag is the original
// single mutex-guarded bag: simple, and fine for a dozen stations. ShardedBag
// is the fleet-scale pool: tasks are dealt round-robin across lock-striped
// per-shard queues, each station drains its home shard, and a dry station
// steals — first from its hinted targets (last victim, richest shard), then
// from the other shards in deterministic cyclic order — the work-stealing
// idiom of Gast–Khatiri–Trystram, with killed-period tasks returned to the
// thief's own queue. PrivatePools is the degenerate pool now.Fleet runs on:
// one private bag per station, nothing shared. Farm.Shards selects between
// the first two (0 = auto-sharded); BenchmarkFarmBag* quantifies the gap on
// the contended path and BenchmarkFarmSteal* the hinted vs linear steal scan.
//
// # Early exit without starvation
//
// A station stops borrowing when the job is done — but "done" must account
// for in-flight tasks: a station that quit the moment Remaining() read zero
// could strand tasks another station's killed period Returns a tick later.
// Run therefore tracks an unfinished counter (total tasks minus tasks whose
// completion is settled at the end of the completing station's opportunity)
// and stations only stop early when it reaches zero — i.e. when every task
// has actually completed, never merely been taken.
//
// # Determinism contract
//
// Run is the live engine: stations free-run on a bounded pool, so aggregate
// accounting invariants are deterministic but task *assignment* depends on
// scheduling interleaving. RunDeterministic is the replication engine: the
// same fleet semantics executed in synchronized rounds — within a round each
// queue is touched by exactly one sequential station group, and queues
// rebalance by stealing only at round barriers, in station-group order. Every
// station draws contracts from its own rng stream derived from (seed,
// station ID) via station.RNG, so the entire result is a pure function of
// (fleet, job, factory, seed, Shards): any inner worker count produces
// bit-identical results. Replicate stacks that inside internal/mc's
// seed-stream contract — trial-level parallelism outside, station-group
// parallelism inside, split by mc.SplitWorkers — so fleet summaries stay
// bit-identical at any -workers setting while fleets scale to thousands of
// stations.
package farm

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cyclesteal/internal/fault"
	"cyclesteal/internal/mc"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/station"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/task"
)

// TaskPool is the job-wide task state one farmed run drains: per-station
// task-source views over a shared underlying bag, plus the global accounting
// the farm driver polls.
type TaskPool interface {
	// Station returns station i's view; its Take/Return feed the simulator.
	Station(i int) sim.TaskSource
	// Remaining reports the tasks still unscheduled.
	Remaining() int
	// RemainingWork reports the total duration still unscheduled.
	RemainingWork() quant.Tick
	// Steals reports cross-queue task movements (0 for an unsharded pool).
	Steals() int
	// Exhaustible reports whether draining the pool ends the job: when true,
	// stations stop borrowing once every task has completed; when false
	// (fluid-mode pools like PrivatePools) stations play out every
	// opportunity regardless.
	Exhaustible() bool
}

// SharedBag is a mutex-guarded task source that many concurrently simulated
// stations can drain — the single-stripe baseline pool. It satisfies both
// sim.TaskSource and TaskPool.
type SharedBag struct {
	mu  sync.Mutex
	bag *task.Bag
}

// NewSharedBag wraps a task set in a shared source.
func NewSharedBag(tasks []task.Task) *SharedBag {
	return &SharedBag{bag: task.NewBag(tasks)}
}

// Take implements sim.TaskSource.
func (s *SharedBag) Take(capacity quant.Tick) []task.Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bag.Take(capacity)
}

// TakeInto implements sim.TaskSource.
func (s *SharedBag) TakeInto(dst []task.Task, capacity quant.Tick) []task.Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bag.TakeInto(dst, capacity)
}

// Return implements sim.TaskSource.
func (s *SharedBag) Return(tasks []task.Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bag.Return(tasks)
}

// Station implements TaskPool: every station shares the one bag.
func (s *SharedBag) Station(int) sim.TaskSource { return s }

// Steals implements TaskPool: an unsharded pool never steals.
func (s *SharedBag) Steals() int { return 0 }

// Exhaustible implements TaskPool: the bag is the job.
func (s *SharedBag) Exhaustible() bool { return true }

// Remaining reports the tasks still unscheduled.
func (s *SharedBag) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bag.Remaining()
}

// RemainingWork reports the total duration still unscheduled.
func (s *SharedBag) RemainingWork() quant.Tick {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bag.RemainingWork()
}

// Job is one data-parallel computation to farm across the fleet.
type Job struct {
	Tasks []task.Task
}

// TotalWork returns the job's total task time.
func (j Job) TotalWork() quant.Tick { return task.Durations(j.Tasks) }

// StationReport describes one station's contribution to the job.
type StationReport struct {
	Station        int
	Opportunities  int
	LifespanTicks  quant.Tick // Σ U over contracts actually played
	FluidWork      quant.Tick // Σ (t ⊖ c) over completed periods
	TasksCompleted int
	TaskWork       quant.Tick
	Interrupts     int
	IdleTicks      quant.Tick
	KilledTicks    quant.Tick
}

// Result aggregates a farmed job.
type Result struct {
	Stations       []StationReport
	TasksCompleted int
	TaskWork       quant.Tick
	TasksLeft      int
	FluidWork      quant.Tick
	Interrupts     int
	// Steals counts cross-queue task movements: non-home Takes under Run on
	// a sharded pool, round-barrier migrations under RunDeterministic.
	// Cross-cluster departures count when they depart.
	Steals int
	// InFlight counts tasks still crossing between clusters when the run
	// ended (a Topology with CrossLatency > 0 only). They never completed,
	// so they are included in TasksLeft.
	InFlight int
	// TasksLost counts tasks destroyed by injected faults (0 without a
	// Faults plan): queues that died with a crashed host and steal parcels
	// lost in transit. Lost tasks are neither completed nor left —
	// TasksCompleted + TasksLeft + TasksLost is the job's task count.
	TasksLost int
}

// CompletionFraction is completed task work over the job's total.
func (r Result) CompletionFraction(j Job) float64 {
	total := j.TotalWork()
	if total == 0 {
		return 1
	}
	return float64(r.TaskWork) / float64(total)
}

// Imbalance returns max/mean of per-station completed task work (1 = perfect
// balance); stations that completed nothing are included in the mean.
func (r Result) Imbalance() float64 {
	if len(r.Stations) == 0 {
		return 1
	}
	var sum, max quant.Tick
	for _, s := range r.Stations {
		sum += s.TaskWork
		if s.TaskWork > max {
			max = s.TaskWork
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(r.Stations))
	return float64(max) / mean
}

// Farm binds a fleet to a shared job.
type Farm struct {
	Stations []station.Workstation
	// OpportunitiesPerStation is how many owner contracts each station works
	// through (the job may finish earlier; stations then idle).
	OpportunitiesPerStation int
	// Workers bounds Run's worker pool; 0 means GOMAXPROCS.
	Workers int
	// Shards picks the task-pool layout: 0 = auto (min(DefaultShards,
	// len(Stations)) lock-striped queues), 1 = the single mutex-guarded
	// SharedBag baseline, n = exactly n stripes (clamped to the fleet size).
	// Under RunDeterministic the same number also fixes the station-group
	// partition, so it is part of that engine's determinism key.
	Shards int
	// Topology groups the shards into clusters and prices cross-cluster
	// steals (see Topology). The zero value is the flat fleet, bit-identical
	// to a Farm without the field. Must satisfy
	// Topology.Validate(ResolveShards(Shards, len(Stations))); under
	// RunDeterministic it joins Shards in the determinism key.
	Topology Topology
	// DisableEpisodeMemo turns off the per-station episode cache (sched.Memo)
	// both engines layer over the scheduler factory. Episodes are pure
	// functions of (p, L) for the keyed schedulers, so results are
	// bit-identical either way — the switch exists for benchmarking and for
	// the tests that pin that equivalence.
	DisableEpisodeMemo bool
	// Checkpoint, when ≥ 1, softens the draconian contract with intra-period
	// checkpointing at the given tick interval: a kill loses only the work
	// since the last completed save instead of the whole period (see
	// sim.Config.Checkpoint for the exact accounting). 0 — the zero value —
	// is the paper's pure draconian contract, bit-identical to a Farm without
	// the field.
	Checkpoint quant.Tick
	// CheckpointSaveCost, when ≥ 1, prices each intra-period checkpoint save
	// separately from the setup cost — the Young/Daly save overhead δ. 0
	// prices saves at the station's setup cost, bit-identical to the
	// behavior before the costs were split (see sim.Config.CheckpointSave).
	CheckpointSaveCost quant.Tick
	// CheckpointRestartCost, when ≥ 1, prices resuming from a saved
	// checkpoint: after a kill that banked saves, the next period reached
	// pays this on top of its setup (see sim.Config.CheckpointRestart). 0
	// makes restarts free, the pre-split behavior.
	CheckpointRestartCost quant.Tick
	// CheckpointAdaptive, when set, overrides Checkpoint per opportunity with
	// Young's rule from the P2P volunteer-computing analysis
	// (arXiv:0711.3949): interval k = round(√(2·s·U/(p+1))), the optimum that
	// balances save overhead s (CheckpointSaveCost, defaulting to the setup
	// cost c) against expected loss per kill. A pure function of the
	// contract, so the determinism contracts are untouched.
	CheckpointAdaptive bool
	// Faults, when active, injects the deterministic fault plan into
	// RunDeterministic: scheduled and sampled station crashes at round tops
	// (Crash semantics: an orphaned group's queue dies with its host, where
	// a graceful Leave drains it back), and cross-cluster parcel loss with
	// round-priced timeout, capped exponential retry backoff, and
	// degradation to intra-cluster scanning when the retry budget is spent.
	// Only the deterministic engine takes faults — Run (the live engine) has
	// no deterministic points to stamp them onto and rejects active plans —
	// and a batch run rejects a KillRound (there is no log to recover a
	// batch run from; that axis belongs to the resident service). The zero
	// value injects nothing, bit-identical to a Farm without the field.
	Faults fault.Plan
	// Progress, when non-nil, observes a run as it happens: Run emits a
	// snapshot every ProgressInterval of wall-clock time (driven from the
	// unfinished ledger, so Completed counts settled completions only) and
	// RunDeterministic emits one at every round barrier (where the counts
	// are exact and the callback sequence is itself deterministic). Both
	// engines emit a final snapshot after the last station finishes —
	// including when the run is cancelled or fails, so a shutdown still
	// observes how far the job got. The callback must not block for long —
	// Run invokes it from the observer goroutine, RunDeterministic from the
	// round loop — and observing never affects results.
	Progress func(Progress)
	// ProgressInterval is the wall-clock spacing of Run's progress
	// snapshots; ≤ 0 means DefaultProgressInterval. RunDeterministic
	// ignores it (round barriers set the cadence there).
	ProgressInterval time.Duration
}

// DefaultProgressInterval spaces Run's progress snapshots when the caller
// sets a Progress observer without an interval.
const DefaultProgressInterval = 200 * time.Millisecond

// Progress is one observation of a farmed job in flight.
type Progress struct {
	// Completed counts tasks whose completion has settled (the completing
	// station's opportunity ended — the same notion the early-exit ledger
	// uses, so Completed never counts a take a kill could still undo).
	Completed int
	// Remaining counts tasks not yet completed: unscheduled tasks plus
	// in-flight takes. Completed + Remaining + Lost is the job's task count.
	Remaining int
	// Steals counts cross-queue task migrations so far (0 for unsharded
	// pools).
	Steals int
	// Lost counts tasks destroyed by injected faults so far (0 without a
	// fault plan): crashed hosts' queues and parcels lost in transit.
	Lost int
}

// shardCount resolves the Shards field against the fleet size.
func (f Farm) shardCount() int {
	return ResolveShards(f.Shards, len(f.Stations))
}

// scaledLatency converts the topology's fleet-tick CrossLatency into
// steal-clock units (station-ticks): n stations play concurrently, so one
// fleet-tick of wall time is ≈ n station-ticks of played lifespan.
func (f Farm) scaledLatency() int64 {
	return int64(f.Topology.CrossLatency) * int64(len(f.Stations))
}

// newPool builds the task pool Run drains.
func (f Farm) newPool(job Job) TaskPool {
	n := f.shardCount()
	if n <= 1 {
		return NewSharedBag(job.Tasks)
	}
	if f.Topology.active() {
		return NewShardedBagTopology(job.Tasks, n, f.Topology.clusterCount(), f.scaledLatency())
	}
	return NewShardedBag(job.Tasks, n)
}

// flightPool is the optional TaskPool extension a latency-priced topology
// pool implements: the farm driver advances the steal clock as stations
// settle opportunities, and reports the tasks still in flight at the end.
type flightPool interface {
	Advance(d quant.Tick)
	InFlight() int
}

// Run farms the job across the fleet at full speed. Stations simulate their
// opportunities concurrently, drawing from the job's task pool (sharded per
// f.Shards); scheduling policy is supplied per (station, contract).
// Determinism: each station derives its rng from seed and its ID, so
// contract sequences are reproducible; task *assignment* to stations depends
// on scheduling interleaving and is intentionally not deterministic across
// runs (the aggregate accounting invariants are, and tests check those;
// RunDeterministic trades peak throughput for full reproducibility). When
// several stations fail, the returned error joins every station's failure,
// in station order. Cancelling ctx stops every station at its next
// opportunity boundary and returns ctx.Err().
func (f Farm) Run(ctx context.Context, job Job, factory station.SchedulerFactory, seed int64) (Result, error) {
	if len(f.Stations) == 0 {
		return Result{}, fmt.Errorf("farm: empty fleet")
	}
	if err := f.Topology.Validate(f.shardCount()); err != nil {
		return Result{}, err
	}
	return f.RunPool(ctx, f.newPool(job), factory, seed)
}

// RunPool is Run against a caller-supplied task pool — the entry point
// now.Fleet rides with PrivatePools, and the seam for custom pool layouts.
// The pool must be fresh: its remaining tasks are the job.
func (f Farm) RunPool(ctx context.Context, pool TaskPool, factory station.SchedulerFactory, seed int64) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(f.Stations) == 0 {
		return Result{}, fmt.Errorf("farm: empty fleet")
	}
	if f.Faults.Active() {
		return Result{}, fmt.Errorf("farm: the live engine cannot inject faults (no deterministic points to stamp them onto); use RunDeterministic")
	}
	n := f.OpportunitiesPerStation
	if n < 1 {
		n = 1
	}
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(f.Stations) {
		workers = len(f.Stations)
	}

	// The early-exit ledger: total tasks minus settled completions. Taking a
	// task does not move it (the take may yet be killed and Returned); only a
	// completed opportunity settles its stations' takes, so the counter hits
	// zero exactly when every task has completed — stations can then stop
	// borrowing with nothing left in flight to strand.
	total := pool.Remaining()
	var unfinished atomic.Int64
	unfinished.Store(int64(total))
	var exit *atomic.Int64
	if pool.Exhaustible() {
		exit = &unfinished
	}

	stopObserver := f.observe(total, &unfinished, pool)

	// A latency-priced topology pool needs the steal clock driven: each
	// settled opportunity advances it by the contract lifespan just played,
	// landing matured cross-cluster parcels.
	var advance func(quant.Tick)
	fp, hasFlight := pool.(flightPool)
	if hasFlight {
		advance = fp.Advance
	}

	reports := make([]StationReport, len(f.Stations))
	errs := make([]error, len(f.Stations))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				src := &settleSource{src: pool.Station(idx), unfinished: &unfinished}
				rep, err := f.runStation(ctx, f.Stations[idx], n, factory, seed, src, exit, advance)
				if err != nil {
					errs[idx] = err
					continue
				}
				reports[idx] = rep
			}
		}()
	}
	for idx := range f.Stations {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	stopObserver()
	// Cancellation trumps station errors: once the context fires, which
	// stations report it (and whether any got far enough to fail some other
	// way) depends on scheduling, so the only deterministic error is the
	// cancellation itself.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := errors.Join(errs...); err != nil {
		return Result{}, err
	}
	inflight := 0
	if hasFlight {
		inflight = fp.InFlight()
	}
	return f.assemble(reports, pool.Remaining(), pool.Steals(), inflight, 0), nil
}

// observe starts Run's wall-clock progress observer, if configured, and
// returns the function that stops it and emits the final snapshot. The
// observer reads only the unfinished ledger and the pool's own counters, so
// it can never perturb results.
func (f Farm) observe(total int, unfinished *atomic.Int64, pool TaskPool) (stop func()) {
	if f.Progress == nil {
		return func() {}
	}
	snapshot := func() Progress {
		left := int(unfinished.Load())
		return Progress{Completed: total - left, Remaining: left, Steals: pool.Steals()}
	}
	interval := f.ProgressInterval
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				f.Progress(snapshot())
			}
		}
	}()
	return func() {
		close(done)
		<-finished // the observer has quit; no callback races the final one
		f.Progress(snapshot())
	}
}

// assemble folds station reports into the job-level result.
func (f Farm) assemble(reports []StationReport, left, steals, inflight, lost int) Result {
	res := Result{Stations: reports, TasksLeft: left, Steals: steals, InFlight: inflight, TasksLost: lost}
	for _, r := range reports {
		res.TasksCompleted += r.TasksCompleted
		res.TaskWork += r.TaskWork
		res.FluidWork += r.FluidWork
		res.Interrupts += r.Interrupts
	}
	return res
}

// settleSource wraps a station's task source with the in-flight accounting
// the early-exit ledger needs. Tasks taken but not Returned are outstanding;
// settle, called when an opportunity ends, marks them completed (anything a
// kill was going to Return has been Returned by then — sim.Run returns a
// killed period's tasks before the opportunity finishes). One goroutine owns
// each settleSource, so outstanding needs no synchronization.
type settleSource struct {
	src         sim.TaskSource
	unfinished  *atomic.Int64
	outstanding int64
}

// Take implements sim.TaskSource.
func (s *settleSource) Take(capacity quant.Tick) []task.Task {
	got := s.src.Take(capacity)
	s.outstanding += int64(len(got))
	return got
}

// TakeInto implements sim.TaskSource.
func (s *settleSource) TakeInto(dst []task.Task, capacity quant.Tick) []task.Task {
	base := len(dst)
	dst = s.src.TakeInto(dst, capacity)
	s.outstanding += int64(len(dst) - base)
	return dst
}

// Return implements sim.TaskSource.
func (s *settleSource) Return(tasks []task.Task) {
	s.src.Return(tasks)
	s.outstanding -= int64(len(tasks))
}

// settle counts the opportunity's surviving takes as completed.
func (s *settleSource) settle() {
	if s.outstanding != 0 {
		s.unfinished.Add(-s.outstanding)
		s.outstanding = 0
	}
}

// stationScratch is the per-station reusable state both engines thread
// through playOpportunity: the simulator's episode/task buffers and the
// episode memo the scheduler factory's output is bound to. One station
// goroutine owns a scratch at a time (in RunDeterministic, round barriers
// order the handoffs between workers).
type stationScratch struct {
	bufs sim.Buffers
	memo *sched.Memo // nil when DisableEpisodeMemo
}

func (f Farm) runStation(ctx context.Context, ws station.Workstation, n int, factory station.SchedulerFactory, seed int64, src *settleSource, unfinished *atomic.Int64, advance func(quant.Tick)) (StationReport, error) {
	r := f.newRunner(ws, seed)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return r.rep, err // cancelled between opportunities
		}
		if unfinished != nil && unfinished.Load() == 0 {
			break // every task completed; no point borrowing more time
		}
		before := r.rep.LifespanTicks
		err := f.playOpportunity(&r.rep, ws, r.rng, factory, src, &r.scr)
		src.settle()
		if advance != nil {
			// The opportunity is settled: its lifespan is played fleet time,
			// so the steal clock moves and matured parcels may land.
			advance(r.rep.LifespanTicks - before)
		}
		if err != nil {
			return r.rep, err
		}
	}
	return r.rep, nil
}

// playOpportunity samples one owner contract and simulates it against the
// station's task source — the shared inner step of Run and RunDeterministic.
func (f Farm) playOpportunity(rep *StationReport, ws station.Workstation, rng *rand.Rand, factory station.SchedulerFactory, src sim.TaskSource, scr *stationScratch) error {
	contract := ws.Owner.Sample(rng)
	if contract.U < 1 {
		return nil
	}
	s, err := factory(ws, contract)
	if err != nil {
		return fmt.Errorf("farm: station %d: %w", ws.ID, err)
	}
	if scr.memo != nil {
		// Bind the factory's scheduler to the station's episode cache: for
		// keyed schedulers (pure functions of (p, L) at fixed c) the cache
		// stays warm across contracts, so repeated residual lifespans skip
		// the episode construction entirely.
		s = scr.memo.Bind(s)
	}
	adv := ws.Owner.Interrupter(rng, contract)
	ck := f.Checkpoint
	if f.CheckpointAdaptive {
		save := f.CheckpointSaveCost
		if save < 1 {
			save = ws.Setup
		}
		ck = adaptiveCheckpoint(save, contract)
	}
	r, err := sim.Run(s, adv, sim.Opportunity{U: contract.U, P: contract.P, C: ws.Setup}, sim.Config{
		Bag:               src,
		Buffers:           &scr.bufs,
		Checkpoint:        ck,
		CheckpointSave:    f.CheckpointSaveCost,
		CheckpointRestart: f.CheckpointRestartCost,
	})
	if err != nil {
		return fmt.Errorf("farm: station %d: %w", ws.ID, err)
	}
	rep.Opportunities++
	rep.LifespanTicks += contract.U
	rep.FluidWork += r.Work
	rep.TasksCompleted += r.TasksCompleted
	rep.TaskWork += r.TaskWork
	rep.Interrupts += r.Interrupts
	rep.IdleTicks += r.IdleTicks
	rep.KilledTicks += r.KilledTicks
	return nil
}

// adaptiveCheckpoint is Young's rule specialized to the contract: with save
// cost s (CheckpointSaveCost when split, otherwise the setup cost — a
// checkpoint then writes the same state a setup restores), lifespan U and
// kill risk rising in p, the loss-minimizing interval is
// √(2·s·(mean time between failures)) ≈ √(2·s·U/(p+1)). Cheaper saves pull
// the interval down (checkpoint more often); the restart cost does not
// enter — Young's first-order optimum prices the save overhead against the
// expected loss, and restart is paid per kill regardless of the interval.
// Clamped to ≥ 1 so an adaptive run always checkpoints — the caller asked
// for bounded loss.
func adaptiveCheckpoint(s quant.Tick, contract station.Contract) quant.Tick {
	k := quant.Tick(math.Round(math.Sqrt(2 * float64(s) * float64(contract.U) / float64(contract.P+1))))
	if k < 1 {
		k = 1
	}
	return k
}

// RunDeterministic farms the job with fully reproducible semantics at any
// worker count — the engine Replicate runs inside the mc trial pool.
//
// Stations are partitioned into shardCount() groups (station i in group
// i mod groups), each group owning one local task queue dealt round-robin
// from the job. Execution proceeds in synchronized rounds, one opportunity
// per station per round: within a round, groups run concurrently but each
// group plays its stations *sequentially* against its own queue, so no queue
// is ever touched by two goroutines; at the round barrier, empty queues
// steal half the tasks of the first non-empty victim in deterministic cyclic
// group order — under a Topology, first within their own cluster, then (only
// when the cluster arrived collectively dry) across clusters, where a
// CrossLatency > 0 steal departs into a flight ledger and lands at the first
// barrier whose steal clock (Σ lifespans played) has reached its maturity.
// Stations stop borrowing when a barrier finds the whole job done (in-flight
// tasks count as not done). Killed-period tasks return to the front of the
// running group's own queue, as in the live sharded bag. (Round barriers are
// also why this engine needs no early-exit ledger: nothing is
// mid-opportunity when the done-check runs.)
//
// Every mutation is therefore ordered by (round, group, station index) — a
// pure function of (fleet, job, factory, seed, Shards). workers ≤ 0 means
// GOMAXPROCS; like mc.Config.Workers it changes wall-clock time only, never
// a bit of the result. Cancelling ctx stops every group at its next station
// boundary and returns ctx.Err(); a Progress observer fires at each round
// barrier, where the counts are exact and the callback sequence is itself a
// pure function of the same key.
func (f Farm) RunDeterministic(ctx context.Context, job Job, factory station.SchedulerFactory, seed int64, workers int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(f.Stations)
	if n == 0 {
		return Result{}, fmt.Errorf("farm: empty fleet")
	}
	rounds := f.OpportunitiesPerStation
	if rounds < 1 {
		rounds = 1
	}
	groups := f.shardCount()
	if err := f.Topology.Validate(groups); err != nil {
		return Result{}, err
	}
	if f.Faults.Active() {
		if err := f.Faults.Validate(); err != nil {
			return Result{}, err
		}
		if f.Faults.KillRound > 0 {
			return Result{}, fmt.Errorf("farm: a batch run cannot recover a scheduler kill (no write-ahead log); KillRound belongs to the resident service")
		}
	}

	// The batch drivers are thin shells over the event-driven Core: join the
	// whole fleet up front, deal the job in, play bounded rounds. No churn,
	// no completion tracking — the Core's fast paths reduce exactly to the
	// original round engine.
	core := f.NewCore(factory, seed, groups, n, false)
	for _, ws := range f.Stations {
		core.Join(ws)
	}
	core.AddTasks(job.Tasks)
	if f.Faults.Active() {
		// The plan's own seed wins; a zero-seed plan derives its draw stream
		// from the run seed, so replication stays replayable per trial.
		core.SetFaults(f.Faults.NewInjector(seed ^ FaultSeedSalt))
	}

	emitted := false // a round barrier has reported progress
	for round := 0; round < rounds; round++ {
		if core.Pending() == 0 {
			break // every task completed; no point borrowing more time
		}
		core.ApplyFaults(round)
		if core.Live() == 0 {
			break // the whole fleet crashed; nobody left to play
		}
		if err := core.PlayRound(ctx, workers); err != nil {
			if f.Progress != nil {
				// The final-snapshot promise holds on failure too: stations
				// stop at opportunity boundaries (killed takes already
				// returned), so the counts are exact and a shutting-down
				// caller still observes how far the job got.
				f.Progress(core.Snapshot())
			}
			return Result{}, err
		}
		// Round-barrier progress: nothing is mid-opportunity here, so the
		// unscheduled count (queued + in flight) is exactly the
		// not-yet-completed count and the snapshot sequence is a pure
		// function of the determinism key.
		if f.Progress != nil {
			f.Progress(core.Snapshot())
			emitted = true
		}
	}

	if f.Progress != nil && !emitted {
		// Runs that never reach a round barrier (an already-done or empty
		// job) still promise one final snapshot; every other run's last
		// barrier already reported this exact state.
		f.Progress(core.Snapshot())
	}
	return f.assemble(core.Reports(), core.Pending(), core.Steals(), core.InFlight(), core.TasksLost()), nil
}

// FaultSeedSalt derives a run's default fault-draw stream from its seed when
// the plan does not carry its own: distinct from the station streams (keyed
// by (seed, ID)) and the service's churn stream, so arming an inert plan
// never perturbs a single existing draw.
const FaultSeedSalt = 0x6661756c74 // "fault"

// Replication metric indexes: the order of the summaries Replicate returns.
const (
	MetricTasksCompleted = iota // tasks completed fleet-wide
	MetricCompletionFrac        // completed task work / job total, in [0, 1]
	MetricFluidWork             // Σ (t ⊖ c) over completed periods, ticks
	MetricKilledTicks           // lifespan destroyed by draconian kills, ticks
	MetricInterrupts            // interrupts fleet-wide
	MetricImbalance             // max/mean per-station completed task work
	MetricSteals                // cross-queue task migrations per trial
	MetricTasksInFlight         // tasks still crossing clusters at trial end
	MetricTasksLost             // tasks destroyed by injected faults per trial
	NumMetrics
)

// Replicate replays the farmed job cfg.Trials times on the internal/mc
// replication engine and returns one summary per metric, indexed by the
// Metric* constants. The worker budget (cfg.Workers; 0 = GOMAXPROCS) is
// split by mc.SplitWorkers into a two-level pool: trial-level parallelism
// outside (saturated first — it needs no coordination) and station-group
// parallelism inside each trial via RunDeterministic, so a thousand-station
// fleet exploits the machine even at low trial counts. Trial i derives its
// farm seed from the engine's deterministic stream for cfg.Seed+i, both
// levels are free of result-affecting scheduling, and the summaries are
// therefore bit-identical at any worker budget.
func (f Farm) Replicate(ctx context.Context, job Job, factory station.SchedulerFactory, cfg mc.Config) ([]stats.Summary, error) {
	cfg, inner := mc.SplitConfig(cfg)
	return mc.RunVec(ctx, cfg, NumMetrics, f.trialVec(ctx, job, factory, inner, false))
}

// trialVec builds the one replication trial closure every farm study —
// whole-run, per-station, or shard-subset — executes, so the distributed
// and single-process paths cannot drift apart. stationCols widens the
// metric vector with one played-lifespan column per station.
func (f Farm) trialVec(ctx context.Context, job Job, factory station.SchedulerFactory, inner int, stationCols bool) mc.VecFunc {
	trial := f
	trial.Progress = nil // per-trial round barriers are not job progress
	cols := f.ReplicateColumns(stationCols)
	return func(rng *rand.Rand) ([]float64, error) {
		res, err := trial.RunDeterministic(ctx, job, factory, rng.Int63(), inner)
		if err != nil {
			return nil, err
		}
		out := make([]float64, cols)
		fillMetrics(out, res, job)
		if stationCols {
			for i, s := range res.Stations {
				out[NumMetrics+i] = float64(s.LifespanTicks)
			}
		}
		return out, nil
	}
}

// ReplicateColumns is the metric-vector width of a replication trial: the
// Metric* columns, plus one per-station lifespan column each when
// stationCols is set.
func (f Farm) ReplicateColumns(stationCols bool) int {
	if stationCols {
		return NumMetrics + len(f.Stations)
	}
	return NumMetrics
}

// ReplicateShards runs just the named mc shards of the replication study and
// returns their partial accumulators — the farm-level face of the
// distributed replication contract: the same trial closure Replicate (or,
// with stationCols, ReplicateStations) drives, over exactly the trials those
// shards own, so a complete cover merged by mc.MergeShards reproduces the
// single-process summaries bit for bit wherever each subset ran.
func (f Farm) ReplicateShards(ctx context.Context, job Job, factory station.SchedulerFactory, cfg mc.Config, stationCols bool, shardIDs []int) ([]mc.ShardAccums, error) {
	cfg, inner := mc.SplitConfig(cfg)
	fn := f.trialVec(ctx, job, factory, inner, stationCols)
	return mc.RunVecShards(ctx, cfg, f.ReplicateColumns(stationCols), nil,
		func(rng *rand.Rand, _ any) ([]float64, error) { return fn(rng) }, shardIDs)
}

// fillMetrics writes one trial's metric vector into out[:NumMetrics],
// indexed by the Metric* constants.
func fillMetrics(out []float64, res Result, job Job) {
	var killed quant.Tick
	for _, s := range res.Stations {
		killed += s.KilledTicks
	}
	out[MetricTasksCompleted] = float64(res.TasksCompleted)
	out[MetricCompletionFrac] = res.CompletionFraction(job)
	out[MetricFluidWork] = float64(res.FluidWork)
	out[MetricKilledTicks] = float64(killed)
	out[MetricInterrupts] = float64(res.Interrupts)
	out[MetricImbalance] = res.Imbalance()
	out[MetricSteals] = float64(res.Steals)
	out[MetricTasksInFlight] = float64(res.InFlight)
	out[MetricTasksLost] = float64(res.TasksLost)
}

// ReplicateStations is Replicate widened with per-station columns: alongside
// the job-level metric summaries it returns one summary per station of that
// station's played lifespan per trial (ticks, indexed like f.Stations) — the
// across-trials distribution of how much time each owner actually donated.
// Same replication engine, same seed-stream contract, one extra column per
// station; bit-identical at any worker budget.
func (f Farm) ReplicateStations(ctx context.Context, job Job, factory station.SchedulerFactory, cfg mc.Config) (metrics, lifespans []stats.Summary, err error) {
	cfg, inner := mc.SplitConfig(cfg)
	sums, err := mc.RunVec(ctx, cfg, f.ReplicateColumns(true), f.trialVec(ctx, job, factory, inner, true))
	if err != nil {
		return nil, nil, err
	}
	return sums[:NumMetrics], sums[NumMetrics:], nil
}

// TopContributors returns the station IDs sorted by completed task work,
// descending — the fleet-utilization view operators ask for.
func (r Result) TopContributors() []int {
	ids := make([]int, len(r.Stations))
	for i := range r.Stations {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		return r.Stations[ids[a]].TaskWork > r.Stations[ids[b]].TaskWork
	})
	out := make([]int, len(ids))
	for i, idx := range ids {
		out[i] = r.Stations[idx].Station
	}
	return out
}
