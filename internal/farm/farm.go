// Package farm implements the setting of the paper's title: *data-parallel*
// cycle-stealing in a *network* of workstations. One job — a bag of
// indivisible tasks — is farmed out across every opportunity the fleet's
// owners offer, concurrently: stations draw work from a shared bag as their
// periods open, and killed periods return their in-flight tasks to the bag
// for rescheduling elsewhere.
//
// This is the layer a downstream user runs: internal/now models who offers
// time and when they interrupt; internal/sched decides period sizing on each
// opportunity; this package binds them to a single shared workload and
// reports job-level outcomes (completion fraction, work distribution across
// stations, lost-to-kills accounting).
package farm

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"cyclesteal/internal/mc"
	"cyclesteal/internal/now"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/task"
)

// SharedBag is a mutex-guarded task source that many concurrently simulated
// stations can drain. It satisfies sim.TaskSource.
type SharedBag struct {
	mu  sync.Mutex
	bag *task.Bag
}

// NewSharedBag wraps a task set in a shared source.
func NewSharedBag(tasks []task.Task) *SharedBag {
	return &SharedBag{bag: task.NewBag(tasks)}
}

// Take implements sim.TaskSource.
func (s *SharedBag) Take(capacity quant.Tick) []task.Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bag.Take(capacity)
}

// Return implements sim.TaskSource.
func (s *SharedBag) Return(tasks []task.Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bag.Return(tasks)
}

// Remaining reports the tasks still unscheduled.
func (s *SharedBag) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bag.Remaining()
}

// RemainingWork reports the total duration still unscheduled.
func (s *SharedBag) RemainingWork() quant.Tick {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bag.RemainingWork()
}

// Job is one data-parallel computation to farm across the fleet.
type Job struct {
	Tasks []task.Task
}

// TotalWork returns the job's total task time.
func (j Job) TotalWork() quant.Tick { return task.Durations(j.Tasks) }

// StationReport describes one station's contribution to the job.
type StationReport struct {
	Station        int
	Opportunities  int
	FluidWork      quant.Tick // Σ (t ⊖ c) over completed periods
	TasksCompleted int
	TaskWork       quant.Tick
	Interrupts     int
	KilledTicks    quant.Tick
}

// Result aggregates a farmed job.
type Result struct {
	Stations       []StationReport
	TasksCompleted int
	TaskWork       quant.Tick
	TasksLeft      int
	FluidWork      quant.Tick
	Interrupts     int
}

// CompletionFraction is completed task work over the job's total.
func (r Result) CompletionFraction(j Job) float64 {
	total := j.TotalWork()
	if total == 0 {
		return 1
	}
	return float64(r.TaskWork) / float64(total)
}

// Imbalance returns max/mean of per-station completed task work (1 = perfect
// balance); stations that completed nothing are included in the mean.
func (r Result) Imbalance() float64 {
	if len(r.Stations) == 0 {
		return 1
	}
	var sum, max quant.Tick
	for _, s := range r.Stations {
		sum += s.TaskWork
		if s.TaskWork > max {
			max = s.TaskWork
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(r.Stations))
	return float64(max) / mean
}

// Farm binds a fleet to a shared job.
type Farm struct {
	Stations []now.Workstation
	// OpportunitiesPerStation is how many owner contracts each station works
	// through (the job may finish earlier; stations then idle).
	OpportunitiesPerStation int
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
}

// Run farms the job across the fleet. Stations simulate their opportunities
// concurrently, drawing from one shared bag; scheduling policy is supplied
// per (station, contract) as in now.Fleet. Determinism: each station derives
// its rng from seed and its ID, so contract sequences are reproducible; task
// *assignment* to stations depends on scheduling interleaving and is
// intentionally not deterministic across runs (the aggregate accounting
// invariants are, and tests check those).
func (f Farm) Run(job Job, factory now.SchedulerFactory, seed int64) (Result, error) {
	if len(f.Stations) == 0 {
		return Result{}, fmt.Errorf("farm: empty fleet")
	}
	n := f.OpportunitiesPerStation
	if n < 1 {
		n = 1
	}
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(f.Stations) {
		workers = len(f.Stations)
	}

	shared := NewSharedBag(job.Tasks)
	reports := make([]StationReport, len(f.Stations))
	jobs := make(chan int)
	errs := make(chan error, len(f.Stations))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				rep, err := f.runStation(f.Stations[idx], n, factory, seed, shared)
				if err != nil {
					errs <- err
					continue
				}
				reports[idx] = rep
			}
		}()
	}
	for idx := range f.Stations {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return Result{}, err
	}

	res := Result{Stations: reports, TasksLeft: shared.Remaining()}
	for _, r := range reports {
		res.TasksCompleted += r.TasksCompleted
		res.TaskWork += r.TaskWork
		res.FluidWork += r.FluidWork
		res.Interrupts += r.Interrupts
	}
	return res, nil
}

func (f Farm) runStation(ws now.Workstation, n int, factory now.SchedulerFactory, seed int64, shared *SharedBag) (StationReport, error) {
	rep := StationReport{Station: ws.ID}
	rng := rand.New(rand.NewSource(seed ^ (int64(ws.ID)+1)*0x5851F42D4C957F2D))
	for i := 0; i < n; i++ {
		if shared.Remaining() == 0 {
			break // job done; no point borrowing more time
		}
		contract := ws.Owner.Sample(rng)
		if contract.U < 1 {
			continue
		}
		s, err := factory(ws, contract)
		if err != nil {
			return rep, fmt.Errorf("farm: station %d: %w", ws.ID, err)
		}
		adv := ws.Owner.Interrupter(rng, contract)
		r, err := sim.Run(s, adv, sim.Opportunity{U: contract.U, P: contract.P, C: ws.Setup}, sim.Config{Bag: shared})
		if err != nil {
			return rep, fmt.Errorf("farm: station %d: %w", ws.ID, err)
		}
		rep.Opportunities++
		rep.FluidWork += r.Work
		rep.TasksCompleted += r.TasksCompleted
		rep.TaskWork += r.TaskWork
		rep.Interrupts += r.Interrupts
		rep.KilledTicks += r.KilledTicks
	}
	return rep, nil
}

// Replication metric indexes: the order of the summaries Replicate returns.
const (
	MetricTasksCompleted = iota // tasks completed fleet-wide
	MetricCompletionFrac        // completed task work / job total, in [0, 1]
	MetricFluidWork             // Σ (t ⊖ c) over completed periods, ticks
	MetricKilledTicks           // lifespan destroyed by draconian kills, ticks
	MetricInterrupts            // interrupts fleet-wide
	MetricImbalance             // max/mean per-station completed task work
	NumMetrics
)

// Replicate replays the farmed job cfg.Trials times on the internal/mc
// replication engine and returns one summary per metric, indexed by the
// Metric* constants. Trial i derives its farm seed from the engine's
// deterministic stream for cfg.Seed+i, and each trial's farm runs its
// stations sequentially (Workers = 1): trial-level parallelism replaces
// station-level, which both avoids oversubscribing the pool and makes every
// trial — and therefore the whole study — reproducible at any worker count,
// unlike a single parallel Run whose task assignment depends on scheduling
// interleaving.
func (f Farm) Replicate(job Job, factory now.SchedulerFactory, cfg mc.Config) ([]stats.Summary, error) {
	sequential := f
	sequential.Workers = 1
	return mc.RunVec(cfg, NumMetrics, func(rng *rand.Rand) ([]float64, error) {
		res, err := sequential.Run(job, factory, rng.Int63())
		if err != nil {
			return nil, err
		}
		var killed quant.Tick
		for _, s := range res.Stations {
			killed += s.KilledTicks
		}
		out := make([]float64, NumMetrics)
		out[MetricTasksCompleted] = float64(res.TasksCompleted)
		out[MetricCompletionFrac] = res.CompletionFraction(job)
		out[MetricFluidWork] = float64(res.FluidWork)
		out[MetricKilledTicks] = float64(killed)
		out[MetricInterrupts] = float64(res.Interrupts)
		out[MetricImbalance] = res.Imbalance()
		return out, nil
	})
}

// TopContributors returns the station IDs sorted by completed task work,
// descending — the fleet-utilization view operators ask for.
func (r Result) TopContributors() []int {
	ids := make([]int, len(r.Stations))
	for i := range r.Stations {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		return r.Stations[ids[a]].TaskWork > r.Stations[ids[b]].TaskWork
	})
	out := make([]int, len(ids))
	for i, idx := range ids {
		out[i] = r.Stations[idx].Station
	}
	return out
}
