package farm

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"

	"cyclesteal/internal/fault"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/station"
	"cyclesteal/internal/task"
)

// runner is the persistent per-station state the round engines drive: the
// workstation model, its deterministic contract stream, the reusable
// simulator scratch, and the accumulating report. A runner outlives any one
// call — the resident service plays the same runners round after round as
// jobs come and go — and exactly one goroutine touches a runner at a time
// (round barriers order the handoffs between workers).
type runner struct {
	ws   station.Workstation
	rng  *rand.Rand
	scr  stationScratch
	rep  StationReport
	err  error // sticky: an erred runner never plays again
	left bool  // departed mid-run (service churn); its report remains
}

// newRunner builds one station's persistent state according to the farm's
// memo setting.
func (f Farm) newRunner(ws station.Workstation, seed int64) runner {
	r := runner{ws: ws, rng: station.RNG(seed, ws.ID), rep: StationReport{Station: ws.ID}}
	if !f.DisableEpisodeMemo {
		r.scr.memo = sched.NewMemo(0)
	}
	return r
}

// Core is the event-driven heart of the round-synchronized engines: a
// standing set of station runners partitioned into group queues, advanced
// one round at a time, with joins, leaves and task arrivals applied only at
// round barriers. RunDeterministic is a thin batch driver over it (join the
// fleet, add the job, play bounded rounds); the fleet package's resident
// service is the long-lived driver (jobs stream in, stations churn, rounds
// play for as long as there is work).
//
// Every mutation is ordered by (round, group, station slot): within a round
// each group queue is touched by exactly one sequential station chain, and
// queues rebalance by stealing only at the barrier, in deterministic cyclic
// order — so the whole evolution is a pure function of the construction
// parameters and the barrier-stamped event sequence, bit-identical at any
// worker count.
//
// Stations occupy slots in join order, forever: slot s belongs to group
// s mod groups, a leave marks the slot dormant without renumbering anyone,
// and a later join opens a fresh slot (fresh station ID, fresh rng stream) —
// reusing a slot would replay a departed station's contract stream from the
// start. With the initial fleet joined as slots 0..n−1 this reproduces the
// batch engine's "station i in group i mod groups" partition exactly.
type Core struct {
	opts    Farm // engine knobs: checkpoint policy, memo switch, topology
	factory station.SchedulerFactory
	seed    int64

	groups, clusters, perCluster int
	scaledLatency                int64

	runners []runner
	liveIn  []int // live runners per group
	live    int

	queues  []*task.Bag
	sources []sim.TaskSource // what runners play against: queues, or trackers
	track   []*trackSource   // non-nil when completion tracking is on

	flight      task.Flight
	playedTicks quant.Tick
	pending     []int64 // per-group outstanding cross-cluster request maturity
	steals      int
	total       int // tasks ever added

	// Fault state (SetFaults): the injector realizing the run's fault plan,
	// and — in loss-aware mode only — the per-group cross-steal robustness
	// machinery. With no injector (or no loss axis) none of it is allocated
	// and the barrier reduces exactly to the fault-free engine.
	faults      *fault.Injector
	retries     int
	tasksLost   int
	lostbuf     []task.Task // lost tasks for job attribution; tracking mode only
	awaiting    []bool      // per-group: a cross-cluster request is outstanding
	crossFails  []int       // per-group consecutive lost cross steals
	crossDead   []bool      // per-group: degraded to intra-cluster scanning for good
	nextCrossAt []int64     // per-group backoff: earliest clock for the next request

	arrived []int   // reusable rebalance snapshot
	errbuf  []error // reusable error-join scratch
}

// NewCore builds the event-driven engine state for this farm's knobs.
// groups is the resolved queue/group count (the caller validates the
// Topology against it) and capacity a fleet-size hint; track turns on
// per-task completion tracking (TakeCompleted), which the resident service
// needs to attribute finished tasks to jobs and the batch drivers skip.
func (f Farm) NewCore(factory station.SchedulerFactory, seed int64, groups, capacity int, track bool) *Core {
	c := &Core{
		opts:    f,
		factory: factory,
		seed:    seed,
		groups:  groups,
		runners: make([]runner, 0, capacity),
		liveIn:  make([]int, groups),
		queues:  make([]*task.Bag, groups),
		sources: make([]sim.TaskSource, groups),
		arrived: make([]int, groups),
	}
	c.clusters = f.Topology.clusterCount()
	c.perCluster = groups / c.clusters
	if f.Topology.active() {
		c.scaledLatency = f.scaledLatency()
	}
	if c.scaledLatency > 0 {
		c.pending = make([]int64, groups)
	}
	if track {
		c.track = make([]*trackSource, groups)
	}
	for g := range c.queues {
		c.queues[g] = task.NewBag(nil)
		if track {
			c.track[g] = &trackSource{bag: c.queues[g]}
			c.sources[g] = c.track[g]
		} else {
			c.sources[g] = c.queues[g]
		}
	}
	return c
}

// Join adds a station to the fleet at a round barrier and returns its slot.
// The station plays from the next round on, drawing contracts from the rng
// stream derived from (seed, station ID).
func (c *Core) Join(ws station.Workstation) int {
	slot := len(c.runners)
	c.runners = append(c.runners, c.opts.newRunner(ws, c.seed))
	c.liveIn[slot%c.groups]++
	c.live++
	return slot
}

// SetFaults arms the core with a fault injector — applied at a round
// barrier, before any round the faults may touch. The core draws parcel-loss
// samples from it at barrier departures; the driver (batch loop or resident
// service) owns the crash and kill draws at round tops. With a loss axis in
// the plan the barrier's cross-steal guard switches to the loss-aware
// timeout/retry/degrade machinery; without one the guard stays byte-for-byte
// the fault-free engine. nil disarms.
func (c *Core) SetFaults(in *fault.Injector) {
	c.faults = in
	if in == nil {
		return
	}
	c.retries = in.Retries()
	if in.Plan().LossProb > 0 && c.scaledLatency > 0 && c.awaiting == nil {
		c.awaiting = make([]bool, c.groups)
		c.crossFails = make([]int, c.groups)
		c.crossDead = make([]bool, c.groups)
		c.nextCrossAt = make([]int64, c.groups)
	}
}

// Faults returns the armed injector, nil when none.
func (c *Core) Faults() *fault.Injector { return c.faults }

// Leave removes the station in the given slot at a round barrier. Its
// report (and any error) remains in the run's accounting. When the slot was
// its group's last live station, the group's queued tasks drain back to the
// groups that still have stations — the churn contract: a departure behaves
// exactly like a kill, minus the loss (nothing was mid-period at a barrier,
// so there is nothing to destroy). Leave reports whether the slot was live.
func (c *Core) Leave(slot int) bool { return c.teardown(slot, true) }

// Crash removes the station in the given slot abruptly at a round barrier —
// the fault-plan semantics, sharing Leave's teardown with the opposite work
// policy: where a leave drains an orphaned group's queue back to the fleet,
// a crash destroys it (those tasks lived on the crashed host; only
// checkpointed prefixes — work already banked at earlier barriers — survive).
// Parcels already in flight toward the crashed group are lost on arrival if
// nobody is left there to receive them. Crash reports whether the slot was
// live.
func (c *Core) Crash(slot int) bool { return c.teardown(slot, false) }

// teardown is the shared exit path of Leave and Crash: mark the slot
// dormant, and when it was its group's last live station either drain the
// orphaned queue back to the fleet (keepWork — the graceful contract) or
// destroy it (a crash).
func (c *Core) teardown(slot int, keepWork bool) bool {
	if slot < 0 || slot >= len(c.runners) || c.runners[slot].left {
		return false
	}
	c.runners[slot].left = true
	g := slot % c.groups
	c.liveIn[g]--
	c.live--
	if c.liveIn[g] == 0 {
		if keepWork {
			c.drainGroup(g)
		} else {
			c.destroyGroup(g)
		}
	}
	return true
}

// destroyGroup is drainGroup's crash twin: the orphaned group's queued tasks
// died with their host instead of draining back.
func (c *Core) destroyGroup(g int) {
	n := c.queues[g].Remaining()
	if n == 0 {
		return
	}
	c.loseTasks(c.queues[g].Steal(n))
}

// loseTasks records destroyed tasks: counted for the run's accounting, and
// buffered for TakeLost when completion tracking is on (the resident service
// attributes losses to jobs the same way it attributes completions).
func (c *Core) loseTasks(tasks []task.Task) {
	if len(tasks) == 0 {
		return
	}
	c.tasksLost += len(tasks)
	if c.track != nil {
		c.lostbuf = append(c.lostbuf, tasks...)
	}
}

// TasksLost reports the tasks destroyed so far — crashed queues and parcels
// lost in transit.
func (c *Core) TasksLost() int { return c.tasksLost }

// drainGroup redistributes an orphaned group's queue across the groups that
// still have live stations, round-robin in group order (an empty fleet keeps
// the tasks queued for the next join instead).
func (c *Core) drainGroup(g int) {
	n := c.queues[g].Remaining()
	if n == 0 || c.live == 0 {
		return
	}
	tasks := c.queues[g].Steal(n) // the whole queue, in bag order
	targets := make([]int, 0, c.groups)
	for t := 0; t < c.groups; t++ {
		if c.liveIn[t] > 0 {
			targets = append(targets, t)
		}
	}
	for i, hand := range task.Deal(tasks, len(targets)) {
		if len(hand) == 0 {
			continue
		}
		c.queues[targets[i]].Append(hand)
		c.steals++
	}
}

// AddTasks deals newly arrived tasks round-robin across the group queues —
// the same deterministic partition the batch engines start from. Groups
// whose stations have all departed are skipped (their queues only drain);
// with the whole fleet departed the deal covers every group, parking the
// work for the next join.
func (c *Core) AddTasks(tasks []task.Task) {
	if len(tasks) == 0 {
		return
	}
	c.total += len(tasks)
	if c.live == 0 || c.live == len(c.runners) {
		// Fast path (and the batch engines' only path): no group is dead.
		for g, hand := range task.Deal(tasks, c.groups) {
			c.queues[g].Append(hand)
		}
		return
	}
	targets := make([]int, 0, c.groups)
	for g := 0; g < c.groups; g++ {
		if c.liveIn[g] > 0 {
			targets = append(targets, g)
		}
	}
	if len(targets) == 0 {
		targets = targets[:0]
		for g := 0; g < c.groups; g++ {
			targets = append(targets, g)
		}
	}
	for i, hand := range task.Deal(tasks, len(targets)) {
		c.queues[targets[i]].Append(hand)
	}
}

// SetCheckpoint changes the checkpoint policy for every subsequent
// opportunity — applied at a round barrier, so the change lands at a
// deterministic point in the run.
func (c *Core) SetCheckpoint(interval quant.Tick, adaptive bool) {
	c.opts.Checkpoint = interval
	c.opts.CheckpointAdaptive = adaptive
}

// Pending reports the tasks not yet completed: queued everywhere plus in
// flight between clusters. At a barrier (nothing mid-opportunity) this is
// exactly the not-yet-completed count.
func (c *Core) Pending() int {
	left := c.flight.InFlight()
	for _, q := range c.queues {
		left += q.Remaining()
	}
	return left
}

// Live reports the stations currently in the fleet.
func (c *Core) Live() int { return c.live }

// Total reports the tasks ever added.
func (c *Core) Total() int { return c.total }

// Steals reports cross-queue task movements so far.
func (c *Core) Steals() int { return c.steals }

// InFlight reports the tasks currently crossing between clusters.
func (c *Core) InFlight() int { return c.flight.InFlight() }

// ApplyFaults applies the armed plan's round-top station crashes for the
// given round: the explicitly scheduled ones first (in schedule order, slots
// beyond the fleet ignored), then one Bernoulli draw per still-live slot in
// slot order — the fixed draw order that keeps the fault stream a pure
// function of the fleet evolution. The batch driver calls it at each round
// top; the resident service samples crashes itself (it must log them as
// events), so it never calls this.
func (c *Core) ApplyFaults(round int) {
	if c.faults == nil {
		return
	}
	for _, slot := range c.faults.ScheduledCrashes(round) {
		c.Crash(slot)
	}
	if c.faults.Plan().CrashProb <= 0 {
		return
	}
	for slot := range c.runners {
		r := &c.runners[slot]
		if r.left || r.err != nil {
			continue
		}
		if c.faults.SampleCrash() {
			c.Crash(slot)
		}
	}
}

// Snapshot reports the Core's progress counters — exact at a barrier.
func (c *Core) Snapshot() Progress {
	left := c.Pending()
	return Progress{Completed: c.total - left - c.tasksLost, Remaining: left, Steals: c.steals, Lost: c.tasksLost}
}

// Reports returns every station's accumulated report in slot (join) order,
// departed stations included — they did real work before leaving.
func (c *Core) Reports() []StationReport {
	out := make([]StationReport, len(c.runners))
	for i, r := range c.runners {
		out[i] = r.rep
	}
	return out
}

// Result assembles the run so far into the batch Result shape — call at a
// barrier, where the pending count is exact.
func (c *Core) Result() Result {
	return c.opts.assemble(c.Reports(), c.Pending(), c.steals, c.flight.InFlight(), c.tasksLost)
}

// PlayRound plays one opportunity per live station and runs the round
// barrier. Groups run concurrently on the worker pool, but each group plays
// its stations sequentially in slot order against its own queue, so no queue
// is ever touched by two goroutines; at the barrier the steal clock
// advances, matured cross-cluster parcels land, and groups that arrived dry
// rebalance in deterministic cyclic order. workers ≤ 0 means GOMAXPROCS —
// like everywhere else in the determinism contract it changes wall-clock
// time only. On cancellation or a station error the barrier does not run
// (queues keep their played state) and the error is returned; runner errors
// join in slot order.
func (c *Core) PlayRound(ctx context.Context, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.groups {
		workers = c.groups
	}
	n := len(c.runners)
	gjobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range gjobs {
				for slot := g; slot < n; slot += c.groups {
					if ctx.Err() != nil {
						break // cancelled; the post-round check reports it
					}
					r := &c.runners[slot]
					if r.left || r.err != nil {
						continue
					}
					r.err = c.opts.playOpportunity(&r.rep, r.ws, r.rng, c.factory, c.sources[g], &r.scr)
				}
			}
		}()
	}
	for g := 0; g < c.groups; g++ {
		gjobs <- g
	}
	close(gjobs)
	wg.Wait()
	// Cancellation trumps station errors: which stations got far enough to
	// fail some other way depends on scheduling; the cancellation does not.
	if err := ctx.Err(); err != nil {
		return err
	}
	c.errbuf = c.errbuf[:0]
	for _, r := range c.runners {
		c.errbuf = append(c.errbuf, r.err)
	}
	if err := errors.Join(c.errbuf...); err != nil {
		return err
	}
	c.barrier()
	return nil
}

// barrier runs the deterministic end-of-round phase: advance the steal
// clock by the lifespan the fleet just played and land matured parcels (so
// arrivals are stealable this barrier), then rebalance — groups that
// arrived empty steal half the first non-empty victim's queue (rounded up,
// so a last lone task can still migrate off an idle group) in deterministic
// cyclic order, first within their own cluster, and only when the cluster
// arrived collectively dry across clusters, where a priced steal departs
// into the flight ledger instead of landing. Both the thief set and the
// victim set are fixed by a pre-pass snapshot: without it, an empty group
// later in the pass would re-steal the tasks an earlier thief just received
// — ping-ponging a dying job's last tasks between idle groups instead of
// landing them on a station that works.
func (c *Core) barrier() {
	if c.scaledLatency > 0 {
		var total quant.Tick
		for _, r := range c.runners {
			total += r.rep.LifespanTicks
		}
		c.flight.Advance(int64(total - c.playedTicks))
		c.playedTicks = total
		c.flight.Arrive(func(dest int, tasks []task.Task) {
			if c.liveIn[dest] == 0 {
				// The requesting group crashed while the parcel was in
				// flight: nobody is left to receive it (only a crash
				// reaches this — a graceful leave cannot co-occur with
				// in-flight parcels, see Crash).
				c.flight.Lose(tasks)
				c.loseTasks(tasks)
				return
			}
			c.queues[dest].Append(tasks)
			if c.awaiting != nil {
				// The crossing succeeded: the request is no longer
				// outstanding and the backoff ladder resets.
				c.awaiting[dest] = false
				c.crossFails[dest] = 0
			}
		})
	}

	arrived := c.arrived
	for g, q := range c.queues {
		arrived[g] = q.Remaining()
	}
	for g := 0; g < c.groups; g++ {
		// Only a group that arrived dry AND still has a live station steals:
		// a stationless group taking tasks would strand them unplayed.
		if arrived[g] > 0 || c.liveIn[g] == 0 {
			continue
		}
		stole := false
		base := g / c.perCluster * c.perCluster
		for d := 1; d < c.perCluster; d++ {
			v := base + (g-base+d)%c.perCluster
			if arrived[v] == 0 {
				continue
			}
			if half := (c.queues[v].Remaining() + 1) / 2; half > 0 {
				c.queues[g].Append(c.queues[v].Steal(half))
				c.steals++
				stole = true
				break
			}
		}
		if stole || c.clusters == 1 {
			continue
		}
		if c.scaledLatency > 0 {
			if c.awaiting == nil {
				if c.pending[g] > c.flight.Clock() {
					continue // one outstanding cross-cluster request per group
				}
			} else if !c.crossReady(g) {
				continue
			}
		}
		cg := g / c.perCluster
		for dc := 1; dc < c.clusters && !stole; dc++ {
			cl := cg + dc
			if cl >= c.clusters {
				cl -= c.clusters
			}
			for v := cl * c.perCluster; v < (cl+1)*c.perCluster; v++ {
				if arrived[v] == 0 {
					continue
				}
				half := (c.queues[v].Remaining() + 1) / 2
				if half == 0 {
					continue
				}
				stolen := c.queues[v].Steal(half)
				c.steals++
				if c.scaledLatency > 0 {
					if c.faults != nil && c.faults.SampleLoss() {
						// The parcel is lost in the network. The thief
						// cannot tell: its request stays outstanding until
						// the round-priced timeout fires (crossReady).
						c.flight.Lose(stolen)
						c.loseTasks(stolen)
					} else {
						c.flight.Depart(stolen, g, c.scaledLatency)
					}
					c.pending[g] = c.flight.Clock() + c.scaledLatency
					if c.awaiting != nil {
						c.awaiting[g] = true
					}
				} else {
					c.queues[g].Append(stolen)
				}
				stole = true
				break
			}
		}
	}
}

// crossReady is the loss-aware cross-steal guard for group g, evaluated at a
// barrier when the group arrived dry and found nothing intra-cluster. A
// group whose retry budget is spent has degraded for good. A group with an
// outstanding request waits until the request's round-priced deadline
// (departure clock + scaled latency); any parcel that was going to arrive
// has matured and landed by then — Arrive runs first in the barrier — so an
// outstanding request at its deadline means the parcel was lost: the group
// counts the failure, and either degrades (budget spent) or backs off
// exponentially (fault.Backoff) before the next request. A group inside its
// backoff window also waits.
func (c *Core) crossReady(g int) bool {
	if c.crossDead[g] {
		return false
	}
	clock := c.flight.Clock()
	if c.awaiting[g] {
		if clock < c.pending[g] {
			return false // still within the round-trip price
		}
		// Timeout: the parcel is lost.
		c.awaiting[g] = false
		c.crossFails[g]++
		if c.crossFails[g] > c.retries {
			c.crossDead[g] = true
		} else {
			c.nextCrossAt[g] = clock + fault.Backoff(c.scaledLatency, c.crossFails[g])
		}
		return false
	}
	return clock >= c.nextCrossAt[g]
}

// TakeLost appends every task destroyed since the last call to dst, in
// deterministic loss order, and resets the buffer — TakeCompleted's fault
// twin, recorded only by a tracking Core. Call at a barrier.
func (c *Core) TakeLost(dst []task.Task) []task.Task {
	dst = append(dst, c.lostbuf...)
	c.lostbuf = c.lostbuf[:0]
	return dst
}

// TakeCompleted appends every task completed since the last call to dst, in
// deterministic (group, completion) order, and resets the tracking buffers.
// Only a tracking Core (NewCore with track=true) records completions; call
// at a barrier, where the buffers are quiescent and exact.
func (c *Core) TakeCompleted(dst []task.Task) []task.Task {
	for _, t := range c.track {
		dst = append(dst, t.done...)
		t.done = t.done[:0]
	}
	return dst
}

// trackSource wraps a group queue to record which tasks completed. Takes
// are tentatively appended to the done buffer; a Return — always the most
// recently taken suffix, by the simulator's single-shot shipping discipline
// (a kill returns the slice its period holds; a checkpointed kill returns
// the unsaved suffix of it) — truncates exactly that many entries back off.
// Whatever survives an opportunity has, by then, actually completed.
type trackSource struct {
	bag  *task.Bag
	done []task.Task
}

// Take implements sim.TaskSource.
func (t *trackSource) Take(capacity quant.Tick) []task.Task {
	got := t.bag.Take(capacity)
	t.done = append(t.done, got...)
	return got
}

// TakeInto implements sim.TaskSource.
func (t *trackSource) TakeInto(dst []task.Task, capacity quant.Tick) []task.Task {
	base := len(dst)
	dst = t.bag.TakeInto(dst, capacity)
	t.done = append(t.done, dst[base:]...)
	return dst
}

// Return implements sim.TaskSource.
func (t *trackSource) Return(tasks []task.Task) {
	t.bag.Return(tasks)
	t.done = t.done[:len(t.done)-len(tasks)]
}
