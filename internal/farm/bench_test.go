package farm

// BenchmarkFarm* quantify the fleet-scaling path: the contended task-bag hot
// path (single mutex vs lock-striped shards), the end-to-end live Run on
// both pools, and the two-level Replicate engine. CI runs each once per PR
// as a compile-and-execute smoke and records ns/op per commit in the
// BENCH_<sha>.json artifact.
//
// The sharded bag wins on two axes: fewer collisions on 64 stripes than on
// one mutex (visible on multi-core runners), and Take scanning a shard-sized
// pending list instead of the whole job (visible even single-threaded, since
// Bag.Take is O(pending)).

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"cyclesteal/internal/mc"
	"cyclesteal/internal/station"
	"cyclesteal/internal/task"
)

// benchDrain hammers a pool from many station goroutines until it is empty,
// returning one batch in eight — the kill/reschedule pattern of the
// simulator's contended path.
func benchDrain(b *testing.B, mk func([]task.Task) TaskPool) {
	tasks := task.Uniform(10000, 5, 50, 1)
	const stations = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := mk(tasks)
		var wg sync.WaitGroup
		for s := 0; s < stations; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				src := pool.Station(s)
				rng := rand.New(rand.NewSource(int64(s)))
				for {
					got := src.Take(200)
					if len(got) == 0 {
						return
					}
					if rng.Intn(8) == 0 {
						src.Return(got)
					}
				}
			}(s)
		}
		wg.Wait()
	}
}

// BenchmarkFarmBagSharedContended is the single-mutex baseline.
func BenchmarkFarmBagSharedContended(b *testing.B) {
	benchDrain(b, func(ts []task.Task) TaskPool { return NewSharedBag(ts) })
}

// BenchmarkFarmBagShardedContended is the lock-striped bag on the same load.
func BenchmarkFarmBagShardedContended(b *testing.B) {
	benchDrain(b, func(ts []task.Task) TaskPool { return NewShardedBag(ts, DefaultShards) })
}

func benchFleet(n int) Farm {
	stations := make([]station.Workstation, n)
	for i := range stations {
		stations[i] = station.Workstation{ID: i, Owner: station.Office{MeanIdle: 2000, MaxP: 2}, Setup: 10}
	}
	return Farm{Stations: stations, OpportunitiesPerStation: 8}
}

func benchRunPool(b *testing.B, shards int) {
	f := benchFleet(64)
	f.Shards = shards
	job := Job{Tasks: task.Uniform(20000, 5, 50, 1)}
	factory := equalizedFactory
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.Run(context.Background(), job, factory, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.TasksCompleted == 0 {
			b.Fatal("no work done")
		}
	}
}

// BenchmarkFarmRunSharedBag is the live engine funnelled through one mutex.
func BenchmarkFarmRunSharedBag(b *testing.B) { benchRunPool(b, 1) }

// BenchmarkFarmRunShardedBag is the live engine on the auto-sharded pool.
func BenchmarkFarmRunShardedBag(b *testing.B) { benchRunPool(b, 0) }

// benchSteal measures the idle-phase steal path at fleet scale: one rich
// shard at the far end of the cyclic order, every other shard dry, so each
// Take must locate the lone victim — the shape of a draining fleet-sized
// job. The linear scan pays O(shards) mirror loads per Take; the hinted bag
// (last-victim cache + richest-shard index) lands on the victim in O(1).
func benchSteal(b *testing.B, shards int, linear bool) {
	bag := NewShardedBag(nil, shards)
	bag.linearScan = linear
	rich := bag.Station(shards - 1)
	rich.Return(task.Fixed(64, 1))
	thief := bag.Station(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := thief.Take(1)
		if got == nil {
			b.Fatal("steal came up empty")
		}
		rich.Return(got)
	}
}

// BenchmarkFarmStealLinear* is the pre-hint cyclic scan baseline.
func BenchmarkFarmStealLinear1k(b *testing.B) { benchSteal(b, 1024, true) }

// BenchmarkFarmStealHinted* is the production path with steal-target hints.
func BenchmarkFarmStealHinted1k(b *testing.B) { benchSteal(b, 1024, false) }

func BenchmarkFarmStealLinear10k(b *testing.B) { benchSteal(b, 10240, true) }

func BenchmarkFarmStealHinted10k(b *testing.B) { benchSteal(b, 10240, false) }

// BenchmarkFarmTopologyDeterministic runs the round engine on a two-tier
// fleet with a cluster-aligned supply skew and a priced crossing — the E14
// configuration — covering the cluster rebalance and the flight ledger under
// the allocs/op gate. Seeds derive from the iteration index, so steal and
// parcel counts (and therefore allocations) are identical run to run.
func BenchmarkFarmTopologyDeterministic(b *testing.B) {
	stations := make([]station.Workstation, 64)
	for i := range stations {
		owner := station.OwnerModel(station.Overnight{Window: 8})
		if i%8 >= 4 {
			owner = station.Overnight{Window: 3}
		}
		stations[i] = station.Workstation{ID: i, Owner: owner, Setup: 1}
	}
	f := Farm{
		Stations:                stations,
		OpportunitiesPerStation: 20,
		Shards:                  8,
		Topology:                Topology{Clusters: 4, CrossLatency: 8},
	}
	job := Job{Tasks: task.Fixed(2000, 2)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.RunDeterministic(context.Background(), job, equalizedFactory, int64(i), 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Steals == 0 {
			b.Fatal("topology fleet never stole")
		}
	}
}

// BenchmarkFarmTopologyCrossSteal is the priced cross-cluster steal cycle on
// the live bag: depart a parcel, advance the steal clock to maturity, drain
// the delivery, and put the tasks back on the remote cluster — the per-steal
// cost of the two-tier pool.
func BenchmarkFarmTopologyCrossSteal(b *testing.B) {
	bag := NewShardedBagTopology(nil, 8, 2, 10)
	remote := bag.Station(4) // home shard 4: the far cluster
	remote.Return(task.Fixed(4, 1))
	thief := bag.Station(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := thief.Take(4); got != nil {
			b.Fatal("priced steal delivered without flying")
		}
		bag.Advance(10) // the parcel matures and lands at the thief's home
		got := thief.Take(4)
		if len(got) == 0 {
			b.Fatal("delivered tasks not taken")
		}
		remote.Return(got)
	}
}

// BenchmarkFarmReplicateTwoLevel measures the deterministic two-level
// replication engine on a 256-station fleet — the Replicate configuration
// E12 runs at fleet scale.
func BenchmarkFarmReplicateTwoLevel(b *testing.B) {
	f := benchFleet(256)
	f.OpportunitiesPerStation = 4
	job := Job{Tasks: task.Exponential(4000, 20, 3)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sums, err := f.Replicate(context.Background(), job, equalizedFactory, mc.Config{Trials: 4, Seed: 1, Workers: 0})
		if err != nil {
			b.Fatal(err)
		}
		if sums[MetricTasksCompleted].Mean <= 0 {
			b.Fatal("no work done")
		}
	}
}
