package farm

import (
	"fmt"
	"strings"

	"cyclesteal/internal/quant"
)

// Topology groups a farm's task-pool shards into clusters — the two-tier
// NOW-of-NOWs the 1999 paper could not model. Shards are partitioned into
// Clusters equal contiguous blocks (shard s in cluster s / (shards/Clusters));
// a station's home shard places it in a cluster. Intra-cluster steals stay
// free, exactly as in the flat fleet; a cross-cluster steal prices the
// network: the stolen tasks go "in flight" for CrossLatency ticks of fleet
// time, unavailable to both thief and victim — the Gast–Khatiri–Trystram
// (arXiv:1805.00857) cost model in which steal latency, not steal count,
// governs makespan at scale.
//
// Victim selection is latency-aware: the steal hints (last victim, richest
// shard) and the scans all live inside the thief's own cluster, and a station
// only reaches across — paying the latency — when its cluster is collectively
// dry. With Clusters ≤ 1 the topology is inactive and both engines are the
// flat fleet, bit for bit. Note that Clusters > 1 changes victim *preference*
// even at CrossLatency = 0: a thief now favors an in-cluster victim over a
// nearer-by-index foreign one, so only the zero value is pinned to the flat
// engine.
//
// CrossLatency is measured in ticks of fleet time — the same wall-clock the
// makespan is measured on. Internally both engines keep a virtual steal clock
// in station-ticks (Σ contract lifespans played fleet-wide); since n stations
// play concurrently, one fleet-tick ≈ n station-ticks, and a parcel departs
// with maturity CrossLatency × n clock units ahead. The live engine advances
// the clock as each station settles an opportunity; RunDeterministic advances
// it at every round barrier, keeping its bit-identical-at-any-worker-count
// contract intact.
//
// The latency is uniform across cluster pairs; a per-pair latency matrix
// (metro vs transatlantic links) is a recorded follow-up, as is sizing steal
// chunks by the latency about to be paid.
type Topology struct {
	// Clusters is the number of equal shard groups; 0 and 1 both mean the
	// flat single-cluster fleet. Must divide the resolved shard count.
	Clusters int
	// CrossLatency is how long a cross-cluster steal keeps its tasks in
	// flight, in fleet-ticks; 0 makes cross steals as free as local ones
	// (locality preference still applies). Requires Clusters ≥ 2.
	CrossLatency quant.Tick
}

// active reports whether the topology changes anything over the flat fleet.
func (t Topology) active() bool { return t.Clusters > 1 }

// clusterCount normalizes the zero value to one cluster.
func (t Topology) clusterCount() int {
	if t.Clusters < 1 {
		return 1
	}
	return t.Clusters
}

// Validate checks the topology against the resolved shard count (see
// ResolveShards). Cluster shapes that don't partition the shards are
// rejected with the valid counts listed — never silently adjusted: a caller
// who asked for 5 clusters over 64 shards would otherwise get a lopsided
// fleet they didn't specify.
func (t Topology) Validate(shards int) error {
	if t.Clusters < 0 {
		return fmt.Errorf("farm: Clusters must be ≥ 0, got %d", t.Clusters)
	}
	if t.CrossLatency < 0 {
		return fmt.Errorf("farm: CrossLatency must be ≥ 0 ticks, got %d", t.CrossLatency)
	}
	c := t.clusterCount()
	if c > shards {
		return fmt.Errorf("farm: %d clusters over %d shards leaves some empty; need Clusters ≤ shards", t.Clusters, shards)
	}
	if shards%c != 0 {
		return fmt.Errorf("farm: %d clusters cannot partition %d shards evenly; valid cluster counts: %s",
			t.Clusters, shards, divisorList(shards))
	}
	if t.CrossLatency > 0 && c < 2 {
		return fmt.Errorf("farm: CrossLatency %d needs ≥ 2 clusters to cross, got %d", t.CrossLatency, t.Clusters)
	}
	return nil
}

// divisorList renders the divisors of n in ascending order — the shapes a
// cluster count may take.
func divisorList(n int) string {
	var b strings.Builder
	for d := 1; d <= n; d++ {
		if n%d != 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", d)
	}
	return b.String()
}

// ResolveShards resolves a Farm.Shards setting against a fleet size — the
// same clamping Farm applies internally (0 = DefaultShards, capped at the
// station count, floored at 1) — so callers can validate a Topology against
// the shard count a run will actually use.
func ResolveShards(shards, stations int) int {
	if shards == 0 {
		shards = DefaultShards
	}
	if shards > stations {
		shards = stations
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}
