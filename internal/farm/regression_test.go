package farm

// Regression tests for the fleet-layer bugfix PR: early-exit starvation in
// the live engine, stale-mirror phantom-empty takes in the sharded bag, and
// the steal-target hint's victim localization.

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/station"
	"cyclesteal/internal/task"
)

// killAt interrupts at a fixed episode offset while budget remains.
type killAt struct{ at quant.Tick }

func (k killAt) NextInterrupt(p int, L quant.Tick, ep model.TickSchedule) (quant.Tick, bool) {
	if p < 1 || k.at > L {
		return 0, false
	}
	return k.at, true
}

// lateKillOwner offers one generous contract whose single period is killed
// at its second-to-last tick — in-flight tasks die late and come back — and
// only unusable 1-tick contracts after that, so this station can never
// finish the job itself.
type lateKillOwner struct{ calls int }

func (o *lateKillOwner) Sample(rng *rand.Rand) station.Contract {
	o.calls++
	if o.calls == 1 {
		return station.Contract{U: 1000, P: 1}
	}
	return station.Contract{U: 1, P: 0}
}

func (o *lateKillOwner) Interrupter(rng *rand.Rand, c station.Contract) sim.Interrupter {
	return killAt{at: 999}
}

func (o *lateKillOwner) Name() string { return "latekill" }

// patientOwner blocks its first contract until gate closes (so the other
// station takes the job's task first), then offers large benign contracts.
type patientOwner struct {
	gate   <-chan struct{}
	waited bool
}

func (o *patientOwner) Sample(rng *rand.Rand) station.Contract {
	if !o.waited {
		<-o.gate
		o.waited = true
	}
	return station.Contract{U: 5000, P: 0}
}

func (o *patientOwner) Interrupter(rng *rand.Rand, c station.Contract) sim.Interrupter {
	return adversary.None{}
}

func (o *patientOwner) Name() string { return "patient" }

// inflightProbePool wraps a pool to orchestrate the starvation interleaving:
// station 0's first successful Take closes took; its Return then stalls
// until station 1 has probed the (momentarily empty) pool, which is exactly
// the window where the old engine's Remaining()==0 check made station 1
// quit for good.
type inflightProbePool struct {
	inner        TaskPool
	took         chan struct{}
	release      chan struct{}
	returned     chan struct{}
	tookOnce     sync.Once
	releaseOnce  sync.Once
	returnedOnce sync.Once
}

func (p *inflightProbePool) Station(i int) sim.TaskSource {
	src := p.inner.Station(i)
	if i == 0 {
		return &holderSource{p: p, src: src}
	}
	return &proberSource{p: p, src: src}
}

func (p *inflightProbePool) Remaining() int            { return p.inner.Remaining() }
func (p *inflightProbePool) RemainingWork() quant.Tick { return p.inner.RemainingWork() }
func (p *inflightProbePool) Steals() int               { return p.inner.Steals() }
func (p *inflightProbePool) Exhaustible() bool         { return true }

type holderSource struct {
	p   *inflightProbePool
	src sim.TaskSource
}

func (h *holderSource) Take(capacity quant.Tick) []task.Task {
	got := h.src.Take(capacity)
	if len(got) > 0 {
		h.p.tookOnce.Do(func() { close(h.p.took) })
	}
	return got
}

func (h *holderSource) TakeInto(dst []task.Task, capacity quant.Tick) []task.Task {
	base := len(dst)
	dst = h.src.TakeInto(dst, capacity)
	if len(dst) > base {
		h.p.tookOnce.Do(func() { close(h.p.took) })
	}
	return dst
}

func (h *holderSource) Return(tasks []task.Task) {
	if len(tasks) > 0 {
		select {
		case <-h.p.release:
		case <-time.After(2 * time.Second):
		}
	}
	h.src.Return(tasks)
	if len(tasks) > 0 {
		h.p.returnedOnce.Do(func() { close(h.p.returned) })
	}
}

type proberSource struct {
	p   *inflightProbePool
	src sim.TaskSource
}

func (s *proberSource) Take(capacity quant.Tick) []task.Task {
	got := s.src.Take(capacity)
	if got == nil {
		select {
		case <-s.p.took:
			// The probe landed in the in-flight window: the pool reads
			// empty while the holder's killed tasks are pending Return.
			// (The old engine's Remaining()==0 break quit here for good.)
			// Let the holder return them, wait for the tasks to land, and
			// retry — so the interleaving is deterministic, not a race.
			s.p.releaseOnce.Do(func() { close(s.p.release) })
			select {
			case <-s.p.returned:
				got = s.src.Take(capacity)
			case <-time.After(2 * time.Second):
			}
		default:
		}
	}
	return got
}

func (s *proberSource) TakeInto(dst []task.Task, capacity quant.Tick) []task.Task {
	return append(dst, s.Take(capacity)...)
}

func (s *proberSource) Return(tasks []task.Task) { s.src.Return(tasks) }

// Bugfix regression: a station observing an empty pool while another
// station's in-flight tasks are about to be killed and Returned must keep
// borrowing — the old Remaining()==0 break left TasksLeft > 0 with willing
// stations idle. With the unfinished ledger, station 1 stays in the game,
// picks up the late-returned task, and the job completes.
func TestFarmRunNoEarlyExitStarvationOnLateKill(t *testing.T) {
	gate := make(chan struct{})
	stations := []station.Workstation{
		{ID: 0, Owner: &lateKillOwner{}, Setup: 10},
		{ID: 1, Owner: &patientOwner{gate: gate}, Setup: 10},
	}
	f := Farm{Stations: stations, OpportunitiesPerStation: 300, Workers: 2}
	pool := &inflightProbePool{
		inner:    NewSharedBag(task.Fixed(1, 50)),
		took:     gate,
		release:  make(chan struct{}),
		returned: make(chan struct{}),
	}
	singlePeriod := func(ws station.Workstation, c station.Contract) (model.EpisodeScheduler, error) {
		return sched.SinglePeriod{}, nil
	}
	res, err := f.RunPool(context.Background(), pool, singlePeriod, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksLeft != 0 {
		t.Fatalf("late-killed task stranded: %d left", res.TasksLeft)
	}
	if res.Stations[1].TasksCompleted != 1 {
		t.Errorf("station 1 should have rescued the task, completed %d", res.Stations[1].TasksCompleted)
	}
	if res.Stations[0].TasksCompleted != 0 {
		t.Errorf("the late-kill station cannot complete tasks, reported %d", res.Stations[0].TasksCompleted)
	}
	if res.Stations[0].KilledTicks == 0 {
		t.Error("station 0's period was never killed; the test exercised nothing")
	}
	if opps := res.Stations[1].Opportunities; opps >= 300 {
		t.Errorf("station 1 never stopped borrowing after completion: %d opportunities", opps)
	}
}

// Bugfix regression: when the size mirrors read 0 mid-scan but tasks remain
// because a racing Return landed behind the scan, Take must re-check the
// global counter and retry the cycle under the locks instead of yielding
// nil. The interleaving is replayed deterministically via the epoch-taking
// entry point: the epoch is read, the Return lands (with its mirror update
// "unseen" by the scan, emulated by zeroing it), and the take proceeds.
func TestShardedBagStaleMirrorRetry(t *testing.T) {
	b := NewShardedBag(task.Fixed(4, 5), 2) // shard 0: tasks 0,2; shard 1: tasks 1,3
	s0 := b.Station(0).(*stationView)
	s1 := b.Station(1)
	if got := s0.Take(100); len(got) != 2 {
		t.Fatalf("draining home: %v", got)
	}
	inflight := s1.Take(100)
	if len(inflight) != 2 {
		t.Fatalf("draining shard 1: %v", inflight)
	}
	epoch := b.returns.Load() // station 0's Take begins here
	s1.Return(inflight)       // the kill's Return lands mid-scan
	b.shards[1].size.Store(0) // ...but the scan read the mirror before the store
	got := s0.take(100, epoch)
	if len(got) != 2 {
		t.Fatalf("stale mirror starved the take despite remaining=%d: %v", b.Remaining(), got)
	}
	if b.Remaining() != 0 {
		t.Errorf("remaining = %d after full drain", b.Remaining())
	}
}

// The forced pass must re-probe the scanner's own home shard: a co-homed
// station's killed tasks Return to the queue the scanner's fast path
// already passed.
func TestShardedBagForcedRetryReprobesHome(t *testing.T) {
	b := NewShardedBag(task.Fixed(2, 5), 2) // shard 0: task 0; shard 1: task 1
	s0 := b.Station(0).(*stationView)
	s2 := b.Station(2) // 2 mod 2 = 0: shares station 0's home shard
	if got := s0.Take(100); len(got) != 1 {
		t.Fatalf("draining home: %v", got)
	}
	if got := b.Station(1).Take(100); len(got) != 1 {
		t.Fatalf("draining shard 1: %v", got)
	}
	// Station 0's fast path (home probe + scan) has come up empty when the
	// co-homed kill lands its task back in shard 0; the forced pass behind
	// the epoch gate must find it there.
	s2.Return([]task.Task{{ID: 9, Duration: 5}})
	got := s0.retryUnderLocks(nil, 100)
	if len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("home-shard return missed by the forced pass: %v (remaining %d)", got, b.Remaining())
	}
	if b.Steals() != 0 {
		t.Errorf("home re-probe counted as a steal: %d", b.Steals())
	}
}

// Without a Return during the scan the miss is a capacity miss, and the
// retry gate must not pay a locked rescan for it.
func TestShardedBagCapacityMissSkipsForcedRescan(t *testing.T) {
	b := NewShardedBag([]task.Task{{ID: 0, Duration: 50}}, 2) // lone big task in shard 0
	v := b.Station(1)                                         // home shard 1 is empty
	if got := v.Take(10); got != nil {
		t.Fatalf("undersized capacity took %v", got)
	}
	if b.Remaining() != 1 {
		t.Errorf("remaining = %d, want the unfitting task intact", b.Remaining())
	}
	if got := v.Take(50); len(got) != 1 {
		t.Errorf("fitting capacity should take the task: %v", got)
	}
}

// The steal-target hint: after the first successful steal the victim is
// cached, and the richest-shard index (maintained from the size mirrors on
// Return) points a cold station straight at the one rich shard.
func TestShardedBagStealHintLocalizesVictim(t *testing.T) {
	b := NewShardedBag(nil, 8)
	rich := b.Station(5)
	rich.Return(task.Fixed(10, 1)) // all tasks land in shard 5
	if got := int(b.richest[0].Load()); got != 5 {
		t.Fatalf("richest hint = %d after Return, want 5", got)
	}
	v := b.Station(0)
	for i := 0; i < 6; i++ {
		if got := v.Take(1); len(got) != 1 {
			t.Fatalf("take %d came up empty", i)
		}
	}
	if lv := v.(*stationView).lastVictim; lv != 5 {
		t.Errorf("last-victim cache = %d, want 5", lv)
	}
	if b.Steals() != 6 {
		t.Errorf("steals = %d, want 6", b.Steals())
	}
	if b.Remaining() != 4 {
		t.Errorf("remaining = %d, want 4", b.Remaining())
	}
}

// The linearScan escape hatch must preserve behavior (it only changes the
// scan order), and the hinted path must fall back to the cyclic scan when
// the hints go stale.
func TestShardedBagHintFallsBackToScan(t *testing.T) {
	b := NewShardedBag(task.Fixed(9, 5), 3)
	s0 := b.Station(0)
	if got := s0.Take(100); len(got) != 3 {
		t.Fatalf("draining home: %v", got)
	}
	// richest still points at a drained shard after this steal empties it.
	for i := 0; i < 2; i++ {
		if got := s0.Take(100); len(got) != 3 {
			t.Fatalf("steal round %d: %v", i, got)
		}
	}
	if b.Remaining() != 0 {
		t.Errorf("remaining = %d", b.Remaining())
	}
	if got := s0.Take(100); got != nil {
		t.Errorf("empty bag yielded %v", got)
	}
}

func TestPrivatePoolsIsolation(t *testing.T) {
	bags := []*task.Bag{task.NewBag(task.Fixed(3, 5)), nil}
	p := NewPrivatePools(bags)
	if p.Exhaustible() {
		t.Error("private pools must not be exhaustible")
	}
	if p.Remaining() != 3 || p.RemainingWork() != 15 || p.Steals() != 0 {
		t.Errorf("counters: %d/%d/%d", p.Remaining(), p.RemainingWork(), p.Steals())
	}
	if got := p.Station(1).Take(100); got != nil {
		t.Errorf("bagless station took %v", got)
	}
	p.Station(1).Return(task.Fixed(1, 5)) // must not panic
	if got := p.Station(7).Take(100); got != nil {
		t.Errorf("out-of-range station took %v", got)
	}
	if got := p.Station(0).Take(100); len(got) != 3 {
		t.Errorf("own bag take: %v", got)
	}
	if p.Remaining() != 0 {
		t.Errorf("remaining = %d after drain", p.Remaining())
	}
}

// The unified engine's lifespan accounting: the farm layer now carries the
// per-station lifespan/idle columns now.Fleet reports.
func TestFarmRunAccountsLifespan(t *testing.T) {
	f := testFarm(4, station.Office{MeanIdle: 3000, MaxP: 2})
	job := Job{Tasks: task.Uniform(500, 5, 50, 1)}
	res, err := f.Run(context.Background(), job, equalizedFactory, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stations {
		if s.Opportunities > 0 && s.LifespanTicks < 1 {
			t.Errorf("station %d played %d opportunities over %d lifespan", s.Station, s.Opportunities, s.LifespanTicks)
		}
		if s.FluidWork > s.LifespanTicks {
			t.Errorf("station %d banked %d work over %d lifespan", s.Station, s.FluidWork, s.LifespanTicks)
		}
		if s.IdleTicks > s.LifespanTicks {
			t.Errorf("station %d idled %d of %d lifespan", s.Station, s.IdleTicks, s.LifespanTicks)
		}
	}
}

// --- single-shot shipping: two stations racing on one bag --------------------

// shipKillOwner offers one two-period contract whose second period is killed
// at its last instant, then unusable 1-tick contracts.
type shipKillOwner struct{ calls int }

func (o *shipKillOwner) Sample(rng *rand.Rand) station.Contract {
	o.calls++
	if o.calls == 1 {
		return station.Contract{U: 100, P: 1}
	}
	return station.Contract{U: 1, P: 0}
}

func (o *shipKillOwner) Interrupter(rng *rand.Rand, c station.Contract) sim.Interrupter {
	return killAt{at: 100}
}

func (o *shipKillOwner) Name() string { return "shipkill" }

// shipperSource instruments station 0: its second nonempty ship (the
// to-be-killed period's) closes shipped and records the in-flight IDs; the
// kill's Return then stalls until the rival has probed the bag.
type shipperSource struct {
	src      sim.TaskSource
	ships    int
	inflight []int
	shipped  chan struct{}
	probed   <-chan struct{}
	returned chan struct{}
}

func (s *shipperSource) Take(capacity quant.Tick) []task.Task {
	return s.TakeInto(nil, capacity)
}

func (s *shipperSource) TakeInto(dst []task.Task, capacity quant.Tick) []task.Task {
	base := len(dst)
	dst = s.src.TakeInto(dst, capacity)
	if len(dst) > base {
		s.ships++
		if s.ships == 2 {
			for _, tk := range dst[base:] {
				s.inflight = append(s.inflight, tk.ID)
			}
			close(s.shipped)
		}
	}
	return dst
}

func (s *shipperSource) Return(tasks []task.Task) {
	if len(tasks) > 0 {
		select {
		case <-s.probed:
		case <-time.After(2 * time.Second):
		}
	}
	s.src.Return(tasks)
	if len(tasks) > 0 {
		close(s.returned)
	}
}

// rivalSource instruments station 1: once station 0 has shipped its killed
// period, the rival's next take records what the bag would still hand out —
// in-flight tasks must not be among it.
type rivalSource struct {
	src       sim.TaskSource
	shipped   <-chan struct{}
	probed    chan struct{}
	returned  <-chan struct{}
	probeOnce sync.Once
	probeIDs  []int
}

func (r *rivalSource) Take(capacity quant.Tick) []task.Task {
	return r.TakeInto(nil, capacity)
}

func (r *rivalSource) TakeInto(dst []task.Task, capacity quant.Tick) []task.Task {
	base := len(dst)
	dst = r.src.TakeInto(dst, capacity)
	select {
	case <-r.shipped:
		r.probeOnce.Do(func() {
			for _, tk := range dst[base:] {
				r.probeIDs = append(r.probeIDs, tk.ID)
			}
			close(r.probed)
		})
	default:
	}
	if len(dst) == base {
		// Dry take after the probe: wait for the shipper's stalled Return to
		// land and retry, so the rescue is a deterministic interleaving
		// rather than a race against the opportunity budget.
		select {
		case <-r.returned:
			dst = r.src.TakeInto(dst, capacity)
		case <-time.After(2 * time.Second):
		}
	}
	return dst
}

func (r *rivalSource) Return(tasks []task.Task) { r.src.Return(tasks) }

type racingPool struct {
	inner   TaskPool
	shipper *shipperSource
	rival   *rivalSource
}

func (p *racingPool) Station(i int) sim.TaskSource {
	if i == 0 {
		p.shipper.src = p.inner.Station(i)
		return p.shipper
	}
	p.rival.src = p.inner.Station(i)
	return p.rival
}

func (p *racingPool) Remaining() int            { return p.inner.Remaining() }
func (p *racingPool) RemainingWork() quant.Tick { return p.inner.RemainingWork() }
func (p *racingPool) Steals() int               { return p.inner.Steals() }
func (p *racingPool) Exhaustible() bool         { return true }

// rivalOwner waits for station 0 to ship its killed period, then offers
// benign contracts until the job is done.
type rivalOwner struct {
	gate   <-chan struct{}
	waited bool
}

func (o *rivalOwner) Sample(rng *rand.Rand) station.Contract {
	if !o.waited {
		select {
		case <-o.gate:
		case <-time.After(2 * time.Second):
		}
		o.waited = true
	}
	return station.Contract{U: 5000, P: 0}
}

func (o *rivalOwner) Interrupter(rng *rand.Rand, c station.Contract) sim.Interrupter {
	return adversary.None{}
}

func (o *rivalOwner) Name() string { return "rival" }

// Single-shot shipping regression: a period's tasks leave the bag when the
// period starts, so a rival station racing on the same bag can neither drain
// a period's in-flight tasks out from under it nor observe them while the
// period runs; the kill then returns exactly the shipped set and the rival
// rescues it. Before the restructure the killed period only took its tasks
// at kill-processing time, so "in-flight tasks returned" depended on scan
// timing rather than on what the period held.
func TestRacingStationsCannotDrainInFlightTasks(t *testing.T) {
	shipped := make(chan struct{})
	probed := make(chan struct{})
	returned := make(chan struct{})
	shipper := &shipperSource{shipped: shipped, probed: probed, returned: returned}
	rival := &rivalSource{shipped: shipped, probed: probed, returned: returned}
	pool := &racingPool{inner: NewSharedBag(task.Fixed(6, 20)), shipper: shipper, rival: rival}

	stations := []station.Workstation{
		{ID: 0, Owner: &shipKillOwner{}, Setup: 10},
		{ID: 1, Owner: &rivalOwner{gate: shipped}, Setup: 10},
	}
	f := Farm{Stations: stations, OpportunitiesPerStation: 300, Workers: 2}
	factory := func(ws station.Workstation, c station.Contract) (model.EpisodeScheduler, error) {
		if ws.ID == 0 && c.U == 100 {
			// Two periods of 50 (capacity 40 each: two 20-tick tasks per
			// period); killAt{100} kills the second at its last instant.
			return sched.NonAdaptiveFromPeriods(model.TickSchedule{50, 50}, c.P, 10)
		}
		return sched.SinglePeriod{}, nil
	}
	res, err := f.RunPool(context.Background(), pool, factory, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shipper.inflight) != 2 {
		t.Fatalf("killed period shipped %v, want 2 tasks", shipper.inflight)
	}
	inflight := map[int]bool{}
	for _, id := range shipper.inflight {
		inflight[id] = true
	}
	for _, id := range rival.probeIDs {
		if inflight[id] {
			t.Errorf("rival drained in-flight task %d while its period was running", id)
		}
	}
	if res.TasksLeft != 0 {
		t.Fatalf("killed-period tasks stranded: %d left", res.TasksLeft)
	}
	if res.TasksCompleted != 6 {
		t.Errorf("completed %d of 6 tasks", res.TasksCompleted)
	}
	if got := res.Stations[0].TasksCompleted; got != 2 {
		t.Errorf("station 0 should bank only its first period's 2 tasks, got %d", got)
	}
	if got := res.Stations[1].TasksCompleted; got != 4 {
		t.Errorf("station 1 should rescue the killed pair plus the leftovers (4), got %d", got)
	}
	if res.Stations[0].KilledTicks != 50 {
		t.Errorf("station 0 killed ticks = %d, want 50", res.Stations[0].KilledTicks)
	}
}
