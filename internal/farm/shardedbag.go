package farm

import (
	"sync"
	"sync/atomic"

	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/task"
)

// DefaultShards is the shard count Farm uses when Shards is 0 (clamped to
// the fleet size). 64 matches internal/mc.Shards: plenty of lock striping
// for any machine the simulations run on, while keeping the steal scan and
// the per-queue memory trivial even at fleet sizes in the thousands.
const DefaultShards = 64

// ShardedBag is a lock-striped task source for fleets too large to funnel
// through one mutex: the job's tasks are dealt round-robin across per-shard
// local queues, each station is bound to a home shard, and a station whose
// home runs dry steals from the other shards. Killed-period tasks go back to
// the front of the *thief's own* queue — they were in flight on that station
// and stay next in line there — so kills never rebuild pressure on the
// victim's lock.
//
// Steal-target selection is hinted: a dry station first retries the shard it
// last stole from (steals cluster on the few queues still holding work as a
// job drains — the localized victim-selection observation of
// Suksompong–Leiserson–Schardl), then the richest-shard index maintained
// opportunistically from the size mirrors, and only then falls back to the
// deterministic cyclic scan (home+1, home+2, … mod shards). At fleet scale
// the hints turn the idle-phase Take from O(shards) mirror loads into O(1);
// BenchmarkFarmSteal* measures the gap at 1k–8k shards.
//
// If the scan comes up empty while the global remaining counter says tasks
// exist *and* a Return completed during the scan (tracked by a return
// epoch), Take retries the whole cycle once — home shard included, since a
// co-homed station's kill lands tasks in the scanner's own queue — under
// the stripe locks, so a racing Return can delay a task but never strand
// one. Without an epoch change the miss is a genuine capacity miss
// (mirrors are exact at quiescence) and no locked rescan is paid.
//
// Scalability comes from two effects the BenchmarkFarmBag* pair measures:
// stations contend on len(shards) mutexes instead of one, and each Take
// scans a shard-sized pending list instead of the whole job (Bag.Take is
// O(pending), so sharding also wins single-threaded).
//
// Like SharedBag, a ShardedBag makes task *conservation* deterministic, not
// task *assignment*: which station ends up running a task still depends on
// scheduling interleaving. Farm.RunDeterministic gets assignment determinism
// by confining each queue to one sequential station group between barriers
// instead of locking.
type ShardedBag struct {
	shards    []bagShard
	remaining atomic.Int64
	work      atomic.Int64
	steals    atomic.Int64
	// richest is the index of the shard whose size mirror was largest at its
	// last update — a best-effort steal hint, verified against the mirror
	// (and then the stripe lock) before use, so staleness costs a probe, not
	// correctness.
	richest atomic.Int64
	// returns counts completed Return calls. A Take that found nothing
	// retries the cycle under the locks only when this epoch moved during
	// its scan: mirrors are exact at quiescence, so a phantom-empty read can
	// only come from a Return racing the scan — gating on the epoch keeps
	// capacity misses (tasks present but none fit) from paying an
	// O(shards) locked rescan on every Take.
	returns atomic.Int64
	// linearScan disables the steal-target hints, forcing the original
	// cyclic scan — the BenchmarkFarmSteal* baseline.
	linearScan bool
}

// bagShard pads each mutex+queue pair to its own cache line so neighbouring
// shards don't false-share under contention.
type bagShard struct {
	mu   sync.Mutex
	bag  *task.Bag
	size atomic.Int64 // mirror of bag.Remaining(), readable without the lock
	_    [40]byte
}

// NewShardedBag deals a task set round-robin across the given number of
// shards (clamped to ≥ 1).
func NewShardedBag(tasks []task.Task, shards int) *ShardedBag {
	if shards < 1 {
		shards = 1
	}
	b := &ShardedBag{shards: make([]bagShard, shards)}
	for s, hand := range task.Deal(tasks, shards) {
		b.shards[s].bag = task.NewBag(hand)
		b.shards[s].size.Store(int64(len(hand)))
	}
	b.remaining.Store(int64(len(tasks)))
	b.work.Store(int64(task.Durations(tasks)))
	return b
}

// Station binds station i to its home shard (i mod shards) and returns the
// station's task-source view.
func (b *ShardedBag) Station(i int) sim.TaskSource {
	return &stationView{b: b, home: i % len(b.shards), lastVictim: -1}
}

// Shards reports the stripe count.
func (b *ShardedBag) Shards() int { return len(b.shards) }

// Remaining reports the tasks still unscheduled, across all shards.
func (b *ShardedBag) Remaining() int { return int(b.remaining.Load()) }

// RemainingWork reports the total duration still unscheduled.
func (b *ShardedBag) RemainingWork() quant.Tick { return b.work.Load() }

// Steals reports how many Takes were served by a non-home shard.
func (b *ShardedBag) Steals() int { return int(b.steals.Load()) }

// Exhaustible implements TaskPool: the sharded bag is the job.
func (b *ShardedBag) Exhaustible() bool { return true }

// takeFrom drains shard s under its stripe lock, appending into dst, and
// settles the global counters outside it. took reports whether anything was
// taken.
func (b *ShardedBag) takeFrom(s int, dst []task.Task, capacity quant.Tick) (out []task.Task, took bool) {
	sh := &b.shards[s]
	base := len(dst)
	sh.mu.Lock()
	dst = sh.bag.TakeInto(dst, capacity)
	took = len(dst) > base
	if took {
		sh.size.Store(int64(sh.bag.Remaining()))
	}
	sh.mu.Unlock()
	if took {
		b.remaining.Add(-int64(len(dst) - base))
		b.work.Add(-task.Durations(dst[base:]))
	}
	return dst, took
}

// noteRichest promotes shard s to the steal hint when its mirror outgrows
// the current candidate's. Lock-free and approximate on purpose: a lost CAS
// or a candidate that later drains just downgrades the hint to a miss.
func (b *ShardedBag) noteRichest(s int, size int64) {
	r := int(b.richest.Load())
	if r == s {
		return
	}
	if size > b.shards[r].size.Load() {
		b.richest.CompareAndSwap(int64(r), int64(s))
	}
}

// stationView is one station's handle on the sharded bag; it satisfies
// sim.TaskSource. Each view belongs to a single station goroutine, so the
// last-victim cache needs no synchronization.
type stationView struct {
	b          *ShardedBag
	home       int
	lastVictim int // last shard a steal succeeded on; -1 before the first
}

// Take drains the home shard first, then steals: hinted targets, the cyclic
// mirror-guided scan, and — when a Return raced the scan while the global
// counter says tasks remain — one forced retry of the whole cycle (home
// included) under the locks.
func (v *stationView) Take(capacity quant.Tick) []task.Task {
	got := v.takeInto(nil, capacity, v.b.returns.Load())
	if len(got) == 0 {
		return nil
	}
	return got
}

// TakeInto implements sim.TaskSource: Take appending into the caller's
// buffer.
func (v *stationView) TakeInto(dst []task.Task, capacity quant.Tick) []task.Task {
	return v.takeInto(dst, capacity, v.b.returns.Load())
}

// take is Take with the caller-observed return epoch — split out so tests
// can replay the exact interleaving of a Return landing mid-scan.
func (v *stationView) take(capacity quant.Tick, epoch int64) []task.Task {
	got := v.takeInto(nil, capacity, epoch)
	if len(got) == 0 {
		return nil
	}
	return got
}

// takeInto is the shared take path with an explicit return epoch.
func (v *stationView) takeInto(dst []task.Task, capacity quant.Tick, epoch int64) []task.Task {
	if out, took := v.b.takeFrom(v.home, dst, capacity); took {
		return out
	}
	if !v.b.linearScan {
		if out, took := v.stealHinted(dst, capacity); took {
			return out
		}
	}
	if out, took := v.stealScan(dst, capacity, false); took {
		return out
	}
	if v.b.remaining.Load() > 0 && v.b.returns.Load() != epoch {
		// Tasks remain and a Return completed while we scanned: a mirror
		// (or our own earlier home probe) may have read stale-empty. Retry
		// once ignoring the mirrors, so the race can delay a task but
		// never turn a live bag phantom-empty. When the epoch is unchanged
		// the miss is a capacity miss (mirrors are exact at quiescence)
		// and a locked rescan could not help.
		return v.retryUnderLocks(dst, capacity)
	}
	return dst
}

// retryUnderLocks is the forced pass behind the epoch gate: the whole cycle
// under the stripe locks, ignoring the mirrors — home shard first, since a
// co-homed station's kill lands its tasks in the scanner's own queue.
func (v *stationView) retryUnderLocks(dst []task.Task, capacity quant.Tick) []task.Task {
	if out, took := v.b.takeFrom(v.home, dst, capacity); took {
		return out
	}
	out, _ := v.stealScan(dst, capacity, true)
	return out
}

// stealHinted probes the last successful victim, then the richest-shard
// index — the O(1) fast path of a dry station at fleet scale.
func (v *stationView) stealHinted(dst []task.Task, capacity quant.Tick) ([]task.Task, bool) {
	for _, s := range [2]int{v.lastVictim, int(v.b.richest.Load())} {
		if s < 0 || s == v.home || v.b.shards[s].size.Load() == 0 {
			continue
		}
		if out, took := v.b.takeFrom(s, dst, capacity); took {
			v.b.steals.Add(1)
			v.lastVictim = s
			return out, true
		}
	}
	return dst, false
}

// stealScan walks the other shards in deterministic cyclic order. Shards
// whose size mirror reads empty are skipped without touching their lock
// unless force is set.
func (v *stationView) stealScan(dst []task.Task, capacity quant.Tick, force bool) ([]task.Task, bool) {
	n := len(v.b.shards)
	for d := 1; d < n; d++ {
		s := v.home + d
		if s >= n {
			s -= n
		}
		if !force && v.b.shards[s].size.Load() == 0 {
			continue
		}
		if out, took := v.b.takeFrom(s, dst, capacity); took {
			v.b.steals.Add(1)
			v.lastVictim = s
			return out, true
		}
	}
	return dst, false
}

// Return puts killed in-flight tasks at the front of the thief's own queue.
func (v *stationView) Return(tasks []task.Task) {
	if len(tasks) == 0 {
		return
	}
	sh := &v.b.shards[v.home]
	sh.mu.Lock()
	sh.bag.Return(tasks)
	size := int64(sh.bag.Remaining())
	sh.size.Store(size)
	sh.mu.Unlock()
	// Epoch before the counter: a Take that observes the new remaining is
	// then guaranteed to observe the epoch bump too, so its retry gate
	// cannot miss this Return.
	v.b.returns.Add(1)
	v.b.remaining.Add(int64(len(tasks)))
	v.b.work.Add(task.Durations(tasks))
	v.b.noteRichest(v.home, size)
}
