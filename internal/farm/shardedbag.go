package farm

import (
	"math"
	"sync"
	"sync/atomic"

	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/task"
)

// DefaultShards is the shard count Farm uses when Shards is 0 (clamped to
// the fleet size). 64 matches internal/mc.Shards: plenty of lock striping
// for any machine the simulations run on, while keeping the steal scan and
// the per-queue memory trivial even at fleet sizes in the thousands.
const DefaultShards = 64

// ShardedBag is a lock-striped task source for fleets too large to funnel
// through one mutex: the job's tasks are dealt round-robin across per-shard
// local queues, each station is bound to a home shard, and a station whose
// home runs dry steals from the other shards. Killed-period tasks go back to
// the front of the *thief's own* queue — they were in flight on that station
// and stay next in line there — so kills never rebuild pressure on the
// victim's lock.
//
// Steal-target selection is hinted and, under a Topology, cluster-local: a
// dry station first retries the shard it last stole from (steals cluster on
// the few queues still holding work as a job drains — the localized
// victim-selection observation of Suksompong–Leiserson–Schardl), then the
// richest shard *of its own cluster* (the richest index is maintained per
// cluster from the size mirrors), and only then falls back to the
// deterministic cyclic scan of its cluster's shards. At fleet scale the hints
// turn the idle-phase Take from O(shards) mirror loads into O(1), and the
// per-cluster split means a thousand-station dry storm scans its own cluster,
// not the whole fleet; BenchmarkFarmSteal* measures the hint gap at 1k–8k
// shards.
//
// Only when the thief's whole cluster is collectively dry does it reach
// across clusters (per-cluster available counts let it skip dry clusters
// without touching their mirrors). A cross-cluster steal on a zero-latency
// topology delivers like a local one; with CrossLatency > 0 the stolen tasks
// instead *depart*: they leave the victim's queue into the in-flight ledger
// (task.Flight) bound for the thief's home shard, unavailable to both sides
// until the fleet's steal clock — advanced by Advance as stations settle
// opportunities — reaches their maturity. The thief's Take returns empty,
// and that idleness is exactly the latency price of the
// Gast–Khatiri–Trystram model. Each view keeps at most one request in
// flight, so a dry station cannot drain a remote cluster into the ledger
// while waiting.
//
// If the scan comes up empty while the global remaining counter says tasks
// exist *and* a Return or parcel arrival completed during the scan (tracked
// by a return epoch), Take retries the whole cycle once — home shard
// included, since a co-homed station's kill lands tasks in the scanner's own
// queue — under the stripe locks, so a racing Return can delay a task but
// never strand one. Without an epoch change the miss is a genuine capacity
// miss (mirrors are exact at quiescence) and no locked rescan is paid.
//
// Scalability comes from two effects the BenchmarkFarmBag* pair measures:
// stations contend on len(shards) mutexes instead of one, and each Take
// scans a shard-sized pending list instead of the whole job (Bag.Take is
// O(pending), so sharding also wins single-threaded).
//
// Like SharedBag, a ShardedBag makes task *conservation* deterministic, not
// task *assignment*: which station ends up running a task still depends on
// scheduling interleaving. Farm.RunDeterministic gets assignment determinism
// by confining each queue to one sequential station group between barriers
// instead of locking.
type ShardedBag struct {
	shards    []bagShard
	remaining atomic.Int64
	work      atomic.Int64
	steals    atomic.Int64
	// richest[c] is the index of the shard in cluster c whose size mirror was
	// largest at its last update — a best-effort steal hint, verified against
	// the mirror (and then the stripe lock) before use, so staleness costs a
	// probe, not correctness. A flat bag has one cluster and one hint.
	richest []atomic.Int64
	// returns counts completed Return calls and parcel deliveries. A Take
	// that found nothing retries the cycle under the locks only when this
	// epoch moved during its scan: mirrors are exact at quiescence, so a
	// phantom-empty read can only come from a Return racing the scan —
	// gating on the epoch keeps capacity misses (tasks present but none fit)
	// from paying an O(shards) locked rescan on every Take.
	returns atomic.Int64
	// linearScan disables the steal-target hints, forcing the original
	// cyclic scan — the BenchmarkFarmSteal* baseline.
	linearScan bool

	// Topology state. A flat bag has clusters == 1, perCluster == len(shards)
	// and latency == 0; every cluster field below then sits on its zero-cost
	// path (clusterTasks stays nil so the hot take path pays one nil check).
	clusters   int
	perCluster int
	// latency is the in-flight time of a cross-cluster steal in steal-clock
	// units (station-ticks — see Advance); 0 means cross steals deliver
	// immediately.
	latency int64
	// clusterTasks[c] counts the tasks currently *available* in cluster c's
	// queues (in-flight tasks belong to no cluster), letting a cross scan
	// skip dry clusters without touching their shard mirrors. nil when flat.
	clusterTasks []atomic.Int64
	// clock is the fleet's virtual steal clock: Σ contract lifespans settled
	// so far, advanced by Advance. nextReady mirrors the flight ledger's
	// earliest maturity (MaxInt64 when nothing is in flight) so the
	// per-opportunity Advance can skip the ledger lock entirely.
	clock     atomic.Int64
	nextReady atomic.Int64
	flightMu  sync.Mutex
	flight    task.Flight
	inflight  atomic.Int64
}

// bagShard pads each mutex+queue pair to its own cache line so neighbouring
// shards don't false-share under contention.
type bagShard struct {
	mu   sync.Mutex
	bag  *task.Bag
	size atomic.Int64 // mirror of bag.Remaining(), readable without the lock
	_    [40]byte
}

// NewShardedBag deals a task set round-robin across the given number of
// shards (clamped to ≥ 1) — a flat, single-cluster bag.
func NewShardedBag(tasks []task.Task, shards int) *ShardedBag {
	return NewShardedBagTopology(tasks, shards, 1, 0)
}

// NewShardedBagTopology is NewShardedBag with the shards grouped into
// clusters of equal contiguous blocks and cross-cluster steals priced at
// latency steal-clock units in flight (see Advance for the clock's unit;
// Farm scales a Topology's fleet-tick CrossLatency by the station count).
// clusters must divide shards — validate with Topology.Validate; a
// non-positive cluster count means flat. clusters == 1 with any latency is
// flat: there is nothing to cross.
func NewShardedBagTopology(tasks []task.Task, shards, clusters int, latency int64) *ShardedBag {
	if shards < 1 {
		shards = 1
	}
	if clusters < 1 {
		clusters = 1
	}
	if clusters > shards {
		clusters = shards
	}
	b := &ShardedBag{
		shards:     make([]bagShard, shards),
		richest:    make([]atomic.Int64, clusters),
		clusters:   clusters,
		perCluster: shards / clusters,
	}
	if clusters > 1 {
		b.latency = latency
		b.clusterTasks = make([]atomic.Int64, clusters)
	}
	for c := range b.richest {
		b.richest[c].Store(int64(c * b.perCluster))
	}
	for s, hand := range task.Deal(tasks, shards) {
		b.shards[s].bag = task.NewBag(hand)
		b.shards[s].size.Store(int64(len(hand)))
		if b.clusterTasks != nil {
			b.clusterTasks[s/b.perCluster].Add(int64(len(hand)))
		}
	}
	b.remaining.Store(int64(len(tasks)))
	b.work.Store(int64(task.Durations(tasks)))
	b.nextReady.Store(math.MaxInt64)
	return b
}

// Station binds station i to its home shard (i mod shards) and returns the
// station's task-source view.
func (b *ShardedBag) Station(i int) sim.TaskSource {
	return &stationView{b: b, home: i % len(b.shards), lastVictim: -1, remoteVictim: -1}
}

// Shards reports the stripe count.
func (b *ShardedBag) Shards() int { return len(b.shards) }

// Clusters reports the cluster count (1 when flat).
func (b *ShardedBag) Clusters() int { return b.clusters }

// clusterOf maps a shard index to its cluster.
func (b *ShardedBag) clusterOf(s int) int { return s / b.perCluster }

// Remaining reports the tasks still unscheduled, across all shards — tasks
// in cross-cluster flight included: they have left a queue but not reached
// one, and still need a station.
func (b *ShardedBag) Remaining() int { return int(b.remaining.Load()) }

// RemainingWork reports the total duration still unscheduled (in-flight
// tasks included).
func (b *ShardedBag) RemainingWork() quant.Tick { return b.work.Load() }

// Steals reports how many Takes were served by a non-home shard, plus
// cross-cluster departures.
func (b *ShardedBag) Steals() int { return int(b.steals.Load()) }

// InFlight reports the tasks currently crossing between clusters.
func (b *ShardedBag) InFlight() int { return int(b.inflight.Load()) }

// Exhaustible implements TaskPool: the sharded bag is the job.
func (b *ShardedBag) Exhaustible() bool { return true }

// Advance moves the fleet's steal clock forward by d station-ticks — the
// lifespan of an opportunity a station just settled — and lands any matured
// cross-cluster parcels in their destination shards. The clock's unit is
// station-ticks played fleet-wide: n stations play concurrently, so one tick
// of fleet (wall) time is ≈ n clock units, and Farm departs parcels with
// CrossLatency × n. On a flat or zero-latency bag Advance is a no-op; with
// nothing maturing it is one atomic add and one load.
func (b *ShardedBag) Advance(d quant.Tick) {
	if b.latency <= 0 || d <= 0 {
		return
	}
	now := b.clock.Add(int64(d))
	if now < b.nextReady.Load() {
		return
	}
	b.flightMu.Lock()
	b.flight.AdvanceTo(now)
	b.flight.Arrive(b.deliver)
	if next, ok := b.flight.NextReady(); ok {
		b.nextReady.Store(next)
	} else {
		b.nextReady.Store(math.MaxInt64)
	}
	b.flightMu.Unlock()
}

// deliver lands one matured parcel at the back of its destination shard —
// the same position round-barrier migrations take under RunDeterministic.
// Called with flightMu held; takes the shard stripe lock.
func (b *ShardedBag) deliver(dest int, tasks []task.Task) {
	sh := &b.shards[dest]
	sh.mu.Lock()
	sh.bag.Append(tasks)
	size := int64(sh.bag.Remaining())
	sh.size.Store(size)
	sh.mu.Unlock()
	// Epoch after the mirror, like Return: a scanning Take that missed this
	// shard is guaranteed to observe the epoch bump and retry.
	b.returns.Add(1)
	b.inflight.Add(-int64(len(tasks)))
	if b.clusterTasks != nil {
		b.clusterTasks[b.clusterOf(dest)].Add(int64(len(tasks)))
	}
	b.noteRichest(dest, size)
}

// takeFrom drains shard s under its stripe lock, appending into dst, and
// settles the global counters outside it. took reports whether anything was
// taken.
func (b *ShardedBag) takeFrom(s int, dst []task.Task, capacity quant.Tick) (out []task.Task, took bool) {
	sh := &b.shards[s]
	base := len(dst)
	sh.mu.Lock()
	dst = sh.bag.TakeInto(dst, capacity)
	took = len(dst) > base
	if took {
		sh.size.Store(int64(sh.bag.Remaining()))
	}
	sh.mu.Unlock()
	if took {
		n := int64(len(dst) - base)
		b.remaining.Add(-n)
		b.work.Add(-task.Durations(dst[base:]))
		if b.clusterTasks != nil {
			b.clusterTasks[b.clusterOf(s)].Add(-n)
		}
	}
	return dst, took
}

// noteRichest promotes shard s to its cluster's steal hint when its mirror
// outgrows the current candidate's. Lock-free and approximate on purpose: a
// lost CAS or a candidate that later drains just downgrades the hint to a
// miss.
func (b *ShardedBag) noteRichest(s int, size int64) {
	c := b.clusterOf(s)
	r := int(b.richest[c].Load())
	if r == s {
		return
	}
	if size > b.shards[r].size.Load() {
		b.richest[c].CompareAndSwap(int64(r), int64(s))
	}
}

// stationView is one station's handle on the sharded bag; it satisfies
// sim.TaskSource. Each view belongs to a single station goroutine, so the
// victim caches need no synchronization.
type stationView struct {
	b          *ShardedBag
	home       int
	lastVictim int // last in-cluster shard a steal succeeded on; -1 before the first
	// remoteVictim is the last foreign shard a cross-cluster steal succeeded
	// on; -1 before the first. pendingUntil is the steal-clock maturity of
	// this view's outstanding cross-cluster request — each view keeps at
	// most one in flight.
	remoteVictim int
	pendingUntil int64
}

// Take drains the home shard first, then steals: hinted targets, the cyclic
// mirror-guided scan of the home cluster, the cross-cluster path when the
// cluster is collectively dry, and — when a Return raced the scan while the
// global counter says tasks remain — one forced retry of the whole cycle
// (home included) under the locks.
func (v *stationView) Take(capacity quant.Tick) []task.Task {
	got := v.takeInto(nil, capacity, v.b.returns.Load())
	if len(got) == 0 {
		return nil
	}
	return got
}

// TakeInto implements sim.TaskSource: Take appending into the caller's
// buffer.
func (v *stationView) TakeInto(dst []task.Task, capacity quant.Tick) []task.Task {
	return v.takeInto(dst, capacity, v.b.returns.Load())
}

// take is Take with the caller-observed return epoch — split out so tests
// can replay the exact interleaving of a Return landing mid-scan.
func (v *stationView) take(capacity quant.Tick, epoch int64) []task.Task {
	got := v.takeInto(nil, capacity, epoch)
	if len(got) == 0 {
		return nil
	}
	return got
}

// takeInto is the shared take path with an explicit return epoch.
func (v *stationView) takeInto(dst []task.Task, capacity quant.Tick, epoch int64) []task.Task {
	if out, took := v.b.takeFrom(v.home, dst, capacity); took {
		return out
	}
	if !v.b.linearScan {
		if out, took := v.stealHinted(dst, capacity); took {
			return out
		}
	}
	if out, took := v.stealScan(dst, capacity, false); took {
		return out
	}
	if v.b.clusters > 1 {
		// The whole home cluster is dry: reach across, paying the latency.
		// done without tasks means a parcel departed — the thief idles this
		// period, which is the price.
		if out, done := v.crossTake(dst, capacity, false); done {
			return out
		}
	}
	if v.b.remaining.Load() > 0 && v.b.returns.Load() != epoch {
		// Tasks remain and a Return completed while we scanned: a mirror
		// (or our own earlier home probe) may have read stale-empty. Retry
		// once ignoring the mirrors, so the race can delay a task but
		// never turn a live bag phantom-empty. When the epoch is unchanged
		// the miss is a capacity miss (mirrors are exact at quiescence)
		// and a locked rescan could not help.
		return v.retryUnderLocks(dst, capacity)
	}
	return dst
}

// retryUnderLocks is the forced pass behind the epoch gate: the whole cycle
// under the stripe locks, ignoring the mirrors — home shard first, since a
// co-homed station's kill lands its tasks in the scanner's own queue, then
// the home cluster, then the cross path (which still prices the crossing).
func (v *stationView) retryUnderLocks(dst []task.Task, capacity quant.Tick) []task.Task {
	if out, took := v.b.takeFrom(v.home, dst, capacity); took {
		return out
	}
	if out, took := v.stealScan(dst, capacity, true); took {
		return out
	}
	if v.b.clusters > 1 {
		if out, done := v.crossTake(dst, capacity, true); done {
			return out
		}
	}
	return dst
}

// stealHinted probes the last successful victim, then the home cluster's
// richest shard — the O(1) fast path of a dry station at fleet scale. Both
// hints live inside the home cluster.
func (v *stationView) stealHinted(dst []task.Task, capacity quant.Tick) ([]task.Task, bool) {
	for _, s := range [2]int{v.lastVictim, int(v.b.richest[v.b.clusterOf(v.home)].Load())} {
		if s < 0 || s == v.home || v.b.shards[s].size.Load() == 0 {
			continue
		}
		if out, took := v.b.takeFrom(s, dst, capacity); took {
			v.b.steals.Add(1)
			v.lastVictim = s
			return out, true
		}
	}
	return dst, false
}

// stealScan walks the home cluster's other shards in deterministic cyclic
// order (the full stripe set when flat). Shards whose size mirror reads
// empty are skipped without touching their lock unless force is set.
func (v *stationView) stealScan(dst []task.Task, capacity quant.Tick, force bool) ([]task.Task, bool) {
	n := v.b.perCluster
	base := v.b.clusterOf(v.home) * n
	for d := 1; d < n; d++ {
		s := v.home - base + d
		if s >= n {
			s -= n
		}
		s += base
		if !force && v.b.shards[s].size.Load() == 0 {
			continue
		}
		if out, took := v.b.takeFrom(s, dst, capacity); took {
			v.b.steals.Add(1)
			v.lastVictim = s
			return out, true
		}
	}
	return dst, false
}

// crossTake is the cross-cluster steal path, reached only when the home
// cluster is collectively dry. It probes the remembered remote victim, then
// walks foreign clusters in cyclic order — skipping clusters whose available
// count reads zero (unless force), probing each cluster's richest shard
// before its shards in index order. done reports that the take is resolved:
// either tasks were delivered (zero-latency crossing) or a parcel departed
// and the thief idles while it flies.
func (v *stationView) crossTake(dst []task.Task, capacity quant.Tick, force bool) ([]task.Task, bool) {
	b := v.b
	if b.latency > 0 && b.clock.Load() < v.pendingUntil {
		return dst, false // one outstanding cross request per view
	}
	if s := v.remoteVictim; s >= 0 && b.shards[s].size.Load() > 0 {
		if out, done := v.crossFetch(s, dst, capacity); done {
			return out, true
		}
	}
	own := b.clusterOf(v.home)
	for dc := 1; dc < b.clusters; dc++ {
		c := own + dc
		if c >= b.clusters {
			c -= b.clusters
		}
		if !force && b.clusterTasks[c].Load() == 0 {
			continue
		}
		base := c * b.perCluster
		if r := int(b.richest[c].Load()); r != v.remoteVictim && (force || b.shards[r].size.Load() > 0) {
			if out, done := v.crossFetch(r, dst, capacity); done {
				return out, true
			}
		}
		for s := base; s < base+b.perCluster; s++ {
			if !force && b.shards[s].size.Load() == 0 {
				continue
			}
			if out, done := v.crossFetch(s, dst, capacity); done {
				return out, true
			}
		}
	}
	return dst, false
}

// crossFetch steals from foreign shard s. At zero latency it delivers into
// dst like a local steal; otherwise the stolen tasks depart into the flight
// ledger bound for the thief's home shard and the caller gets nothing —
// Remaining and RemainingWork deliberately do not move, because in-flight
// tasks are still unscheduled work the job must finish.
func (v *stationView) crossFetch(s int, dst []task.Task, capacity quant.Tick) ([]task.Task, bool) {
	b := v.b
	if b.latency <= 0 {
		out, took := b.takeFrom(s, dst, capacity)
		if took {
			b.steals.Add(1)
			v.remoteVictim = s
		}
		return out, took
	}
	sh := &b.shards[s]
	sh.mu.Lock()
	stolen := sh.bag.TakeInto(nil, capacity)
	if len(stolen) > 0 {
		sh.size.Store(int64(sh.bag.Remaining()))
	}
	sh.mu.Unlock()
	if len(stolen) == 0 {
		return dst, false
	}
	b.clusterTasks[b.clusterOf(s)].Add(-int64(len(stolen)))
	b.steals.Add(1)
	b.inflight.Add(int64(len(stolen)))
	v.remoteVictim = s
	now := b.clock.Load()
	b.flightMu.Lock()
	b.flight.AdvanceTo(now)
	b.flight.Depart(stolen, v.home, b.latency)
	if next, ok := b.flight.NextReady(); ok && next < b.nextReady.Load() {
		b.nextReady.Store(next)
	}
	b.flightMu.Unlock()
	v.pendingUntil = now + b.latency
	return dst, true
}

// Return puts killed in-flight tasks at the front of the thief's own queue.
func (v *stationView) Return(tasks []task.Task) {
	if len(tasks) == 0 {
		return
	}
	sh := &v.b.shards[v.home]
	sh.mu.Lock()
	sh.bag.Return(tasks)
	size := int64(sh.bag.Remaining())
	sh.size.Store(size)
	sh.mu.Unlock()
	// Epoch before the counter: a Take that observes the new remaining is
	// then guaranteed to observe the epoch bump too, so its retry gate
	// cannot miss this Return.
	v.b.returns.Add(1)
	v.b.remaining.Add(int64(len(tasks)))
	v.b.work.Add(task.Durations(tasks))
	if v.b.clusterTasks != nil {
		v.b.clusterTasks[v.b.clusterOf(v.home)].Add(int64(len(tasks)))
	}
	v.b.noteRichest(v.home, size)
}
