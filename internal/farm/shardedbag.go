package farm

import (
	"sync"
	"sync/atomic"

	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/task"
)

// DefaultShards is the shard count Farm uses when Shards is 0 (clamped to
// the fleet size). 64 matches internal/mc.Shards: plenty of lock striping
// for any machine the simulations run on, while keeping the steal scan and
// the per-queue memory trivial even at fleet sizes in the thousands.
const DefaultShards = 64

// ShardedBag is a lock-striped task source for fleets too large to funnel
// through one mutex: the job's tasks are dealt round-robin across per-shard
// local queues, each station is bound to a home shard, and a station whose
// home runs dry steals from the other shards in deterministic cyclic order
// (home+1, home+2, … mod shards). Killed-period tasks go back to the front
// of the *thief's own* queue — they were in flight on that station and stay
// next in line there — so kills never rebuild pressure on the victim's lock.
//
// Scalability comes from two effects the BenchmarkFarmBag* pair measures:
// stations contend on len(shards) mutexes instead of one, and each Take
// scans a shard-sized pending list instead of the whole job (Bag.Take is
// O(pending), so sharding also wins single-threaded).
//
// Like SharedBag, a ShardedBag makes task *conservation* deterministic, not
// task *assignment*: which station ends up running a task still depends on
// scheduling interleaving. Farm.RunDeterministic gets assignment determinism
// by confining each queue to one sequential station group between barriers
// instead of locking.
type ShardedBag struct {
	shards    []bagShard
	remaining atomic.Int64
	work      atomic.Int64
	steals    atomic.Int64
}

// bagShard pads each mutex+queue pair to its own cache line so neighbouring
// shards don't false-share under contention.
type bagShard struct {
	mu   sync.Mutex
	bag  *task.Bag
	size atomic.Int64 // mirror of bag.Remaining(), readable without the lock
	_    [40]byte
}

// NewShardedBag deals a task set round-robin across the given number of
// shards (clamped to ≥ 1).
func NewShardedBag(tasks []task.Task, shards int) *ShardedBag {
	if shards < 1 {
		shards = 1
	}
	b := &ShardedBag{shards: make([]bagShard, shards)}
	for s, hand := range task.Deal(tasks, shards) {
		b.shards[s].bag = task.NewBag(hand)
		b.shards[s].size.Store(int64(len(hand)))
	}
	b.remaining.Store(int64(len(tasks)))
	b.work.Store(int64(task.Durations(tasks)))
	return b
}

// Station binds station i to its home shard (i mod shards) and returns the
// station's task-source view.
func (b *ShardedBag) Station(i int) sim.TaskSource {
	return &stationView{b: b, home: i % len(b.shards)}
}

// Shards reports the stripe count.
func (b *ShardedBag) Shards() int { return len(b.shards) }

// Remaining reports the tasks still unscheduled, across all shards.
func (b *ShardedBag) Remaining() int { return int(b.remaining.Load()) }

// RemainingWork reports the total duration still unscheduled.
func (b *ShardedBag) RemainingWork() quant.Tick { return b.work.Load() }

// Steals reports how many Takes were served by a non-home shard.
func (b *ShardedBag) Steals() int { return int(b.steals.Load()) }

// takeFrom drains shard s under its stripe lock and settles the global
// counters outside it.
func (b *ShardedBag) takeFrom(s int, capacity quant.Tick) []task.Task {
	sh := &b.shards[s]
	sh.mu.Lock()
	got := sh.bag.Take(capacity)
	if got != nil {
		sh.size.Store(int64(sh.bag.Remaining()))
	}
	sh.mu.Unlock()
	if got != nil {
		b.remaining.Add(-int64(len(got)))
		b.work.Add(-task.Durations(got))
	}
	return got
}

// stationView is one station's handle on the sharded bag; it satisfies
// sim.TaskSource.
type stationView struct {
	b    *ShardedBag
	home int
}

// Take drains the home shard first and steals from the other shards in
// deterministic cyclic order when the home yields nothing. Shards whose size
// mirror reads empty are skipped without touching their lock; a transiently
// stale mirror only costs a retry on the station's next period, never a lost
// task.
func (v *stationView) Take(capacity quant.Tick) []task.Task {
	if got := v.b.takeFrom(v.home, capacity); got != nil {
		return got
	}
	n := len(v.b.shards)
	for d := 1; d < n; d++ {
		s := v.home + d
		if s >= n {
			s -= n
		}
		if v.b.shards[s].size.Load() == 0 {
			continue
		}
		if got := v.b.takeFrom(s, capacity); got != nil {
			v.b.steals.Add(1)
			return got
		}
	}
	return nil
}

// Return puts killed in-flight tasks at the front of the thief's own queue.
func (v *stationView) Return(tasks []task.Task) {
	if len(tasks) == 0 {
		return
	}
	sh := &v.b.shards[v.home]
	sh.mu.Lock()
	sh.bag.Return(tasks)
	sh.size.Store(int64(sh.bag.Remaining()))
	sh.mu.Unlock()
	v.b.remaining.Add(int64(len(tasks)))
	v.b.work.Add(task.Durations(tasks))
}
