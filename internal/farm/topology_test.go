package farm

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cyclesteal/internal/quant"
	"cyclesteal/internal/station"
	"cyclesteal/internal/task"
)

func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name   string
		topo   Topology
		shards int
		want   string // substring of the error; "" = valid
	}{
		{"zero value", Topology{}, 64, ""},
		{"explicit flat", Topology{Clusters: 1}, 64, ""},
		{"even split", Topology{Clusters: 4, CrossLatency: 8}, 64, ""},
		{"clusters equal shards", Topology{Clusters: 8}, 8, ""},
		{"negative clusters", Topology{Clusters: -1}, 64, "Clusters must be ≥ 0"},
		{"negative latency", Topology{Clusters: 2, CrossLatency: -5}, 64, "CrossLatency must be ≥ 0"},
		{"more clusters than shards", Topology{Clusters: 9}, 8, "leaves some empty"},
		{"uneven split", Topology{Clusters: 5}, 64, "valid cluster counts: 1, 2, 4, 8, 16, 32, 64"},
		{"latency without clusters", Topology{CrossLatency: 4}, 64, "needs ≥ 2 clusters"},
		{"latency on one cluster", Topology{Clusters: 1, CrossLatency: 4}, 64, "needs ≥ 2 clusters"},
	}
	for _, c := range cases {
		err := c.topo.Validate(c.shards)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestResolveShards(t *testing.T) {
	cases := []struct{ shards, stations, want int }{
		{0, 1000, DefaultShards}, // auto
		{0, 10, 10},              // auto clamps to fleet
		{8, 4, 4},                // explicit clamps to fleet
		{8, 100, 8},              // explicit
		{1, 100, 1},              // shared baseline
		{-3, 100, 1},             // floor
	}
	for _, c := range cases {
		if got := ResolveShards(c.shards, c.stations); got != c.want {
			t.Errorf("ResolveShards(%d, %d) = %d, want %d", c.shards, c.stations, got, c.want)
		}
	}
}

// A cross-cluster steal with latency departs into the flight ledger: the
// thief gets nothing, both sides lose access, and the tasks land at the
// thief's home only once the steal clock reaches maturity.
func TestShardedBagCrossLatencyDelaysDelivery(t *testing.T) {
	b := NewShardedBagTopology(nil, 4, 2, 100)
	b.Station(2).Return(task.Fixed(6, 5)) // all tasks in shard 2 = cluster 1
	v := b.Station(0).(*stationView)

	if got := v.Take(30); got != nil {
		t.Fatalf("priced cross steal delivered immediately: %v", got)
	}
	if b.InFlight() != 6 || b.Steals() != 1 {
		t.Fatalf("in flight %d / steals %d, want 6/1", b.InFlight(), b.Steals())
	}
	if b.Remaining() != 6 || b.RemainingWork() != 30 {
		t.Fatalf("in-flight tasks left Remaining: %d/%d, want 6/30", b.Remaining(), b.RemainingWork())
	}

	b.Advance(99) // not matured yet
	if got := v.Take(30); got != nil {
		t.Fatalf("take before maturity got %v", got)
	}
	if b.Steals() != 1 {
		t.Fatalf("a pending view departed a second parcel: steals %d", b.Steals())
	}

	b.Advance(1) // clock 100: the parcel lands at the thief's home shard
	if b.InFlight() != 0 {
		t.Fatalf("in flight %d after maturity, want 0", b.InFlight())
	}
	got := v.Take(30)
	if len(got) != 6 {
		t.Fatalf("take after delivery got %d tasks, want 6", len(got))
	}
	if b.Remaining() != 0 {
		t.Fatalf("remaining %d after drain", b.Remaining())
	}
}

// Intra-cluster steals stay free under a priced topology.
func TestShardedBagIntraClusterStealStaysFree(t *testing.T) {
	b := NewShardedBagTopology(nil, 4, 2, 100)
	b.Station(1).Return(task.Fixed(3, 5)) // shard 1: same cluster as station 0
	got := b.Station(0).Take(30)
	if len(got) != 3 {
		t.Fatalf("intra-cluster steal got %d tasks, want 3", len(got))
	}
	if b.InFlight() != 0 {
		t.Fatalf("free steal put tasks in flight: %d", b.InFlight())
	}
	if b.Steals() != 1 {
		t.Fatalf("steals %d, want 1", b.Steals())
	}
}

// Zero-latency clusters change victim preference, not delivery: a cross
// steal hands the tasks straight to the thief.
func TestShardedBagZeroLatencyCrossDelivers(t *testing.T) {
	b := NewShardedBagTopology(nil, 4, 2, 0)
	b.Station(3).Return(task.Fixed(4, 5))
	got := b.Station(0).Take(30)
	if len(got) != 4 {
		t.Fatalf("zero-latency cross steal got %d tasks, want 4", len(got))
	}
	if b.InFlight() != 0 || b.Steals() != 1 {
		t.Fatalf("in flight %d / steals %d, want 0/1", b.InFlight(), b.Steals())
	}
}

// Concurrent stations draining a priced topology bag conserve every task:
// nothing is lost between queues and the flight ledger at any interleaving.
func TestShardedBagTopologyConcurrentDrainConserves(t *testing.T) {
	const n = 480
	b := NewShardedBagTopology(nil, 4, 2, 50)
	b.Station(2).Return(task.Fixed(n, 3)) // all work in cluster 1
	var mu sync.Mutex
	taken := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		v := b.Station(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				got := v.Take(9)
				if len(got) == 0 {
					if b.Remaining() == 0 {
						return
					}
					b.Advance(10) // idle period: fleet time still passes
					continue
				}
				mu.Lock()
				taken += len(got)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if taken != n || b.Remaining() != 0 || b.InFlight() != 0 {
		t.Errorf("drained %d, remaining %d, in flight %d; want %d/0/0",
			taken, b.Remaining(), b.InFlight(), n)
	}
}

// The zero-value and explicit single-cluster topologies are the flat engine,
// bit for bit.
func TestTopologyZeroValuePinnedToFlat(t *testing.T) {
	job := Job{Tasks: task.Uniform(1200, 5, 60, 3)}
	base := testFarm(24, station.Office{MeanIdle: 2500, MaxP: 2})
	base.Shards = 8
	want, err := base.RunDeterministic(context.Background(), job, equalizedFactory, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []Topology{{}, {Clusters: 1}} {
		f := base
		f.Topology = topo
		got, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 99, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Topology %+v diverged from the flat engine", topo)
		}
	}
}

// RunDeterministic with an active topology is bit-identical at any worker
// count — the engine's core contract extended to the priced steal path.
func TestTopologyRunDeterministicWorkerInvariance(t *testing.T) {
	job := Job{Tasks: task.Uniform(800, 1, 4, 3)}
	for _, topo := range []Topology{
		{Clusters: 2, CrossLatency: 0},
		{Clusters: 4, CrossLatency: 6},
	} {
		f := testFarm(16, station.Overnight{Window: 8})
		for i := range f.Stations {
			f.Stations[i].Setup = 1
		}
		f.Shards = 8
		f.OpportunitiesPerStation = 30
		f.Topology = topo
		want, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 7, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 7, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("topology %+v: workers 1 vs 8 diverged", topo)
		}
		if got.TasksCompleted+got.TasksLeft != len(job.Tasks) {
			t.Errorf("topology %+v: %d + %d ≠ %d", topo, got.TasksCompleted, got.TasksLeft, len(job.Tasks))
		}
		if got.InFlight > got.TasksLeft {
			t.Errorf("topology %+v: InFlight %d > TasksLeft %d", topo, got.InFlight, got.TasksLeft)
		}
	}
}

// Live Run with a topology where no station ever goes dry (stations ==
// shards, oversupplied homes): no steals happen, so per-station results are
// independent and the whole Result is bit-identical at any worker count.
func TestTopologyLiveRunNoStealBitIdentical(t *testing.T) {
	job := Job{Tasks: task.Fixed(50000, 5)}
	run := func(workers int) Result {
		f := testFarm(8, station.Overnight{Window: 1000})
		f.Shards = 8
		f.Workers = workers
		f.Topology = Topology{Clusters: 4, CrossLatency: 5}
		res, err := f.Run(context.Background(), job, equalizedFactory, 11)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	got := run(8)
	if want.Steals != 0 {
		t.Fatalf("oversupplied homes still stole %d times", want.Steals)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("no-steal topology Run diverged between workers 1 and 8")
	}
}

// Live Run with priced cross-cluster steals: the accounting invariants hold
// at every worker count, the job still completes with ample lifespan, and
// nothing stays stranded in flight.
func TestTopologyLiveRunConservesAndCompletes(t *testing.T) {
	job := Job{Tasks: task.Uniform(600, 5, 40, 2)}
	for _, workers := range []int{1, 8} {
		f := testFarm(8, station.Overnight{Window: 20000})
		f.Shards = 4
		f.Workers = workers
		f.OpportunitiesPerStation = 20
		f.Topology = Topology{Clusters: 2, CrossLatency: 2}
		res, err := f.Run(context.Background(), job, equalizedFactory, 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.TasksCompleted+res.TasksLeft != len(job.Tasks) {
			t.Errorf("workers=%d: %d + %d ≠ %d", workers, res.TasksCompleted, res.TasksLeft, len(job.Tasks))
		}
		if res.TasksLeft != 0 || res.InFlight != 0 {
			t.Errorf("workers=%d: %d left / %d in flight with ample lifespan", workers, res.TasksLeft, res.InFlight)
		}
	}
}

// Both engines reject an invalid topology up front.
func TestTopologyEngineValidation(t *testing.T) {
	f := testFarm(16, station.Overnight{Window: 100})
	f.Shards = 8
	f.Topology = Topology{Clusters: 5}
	job := Job{Tasks: task.Fixed(10, 5)}
	if _, err := f.Run(context.Background(), job, equalizedFactory, 1); err == nil || !strings.Contains(err.Error(), "clusters") {
		t.Errorf("Run accepted 5 clusters over 8 shards: %v", err)
	}
	if _, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 1, 1); err == nil || !strings.Contains(err.Error(), "clusters") {
		t.Errorf("RunDeterministic accepted 5 clusters over 8 shards: %v", err)
	}
}

// The qualitative 1805.00857 effect at farm level: with a cluster-aligned
// supply/demand skew, pricing the crossing can only slow the fleet down —
// completed work at CrossLatency 32 is no higher than at 0, and the priced
// run actually exercises the flight ledger.
func TestTopologyCrossLatencyCostsThroughput(t *testing.T) {
	// Cluster 0 (groups 0,1 ⇒ stations i%4 ∈ {0,1}) is strong, cluster 1
	// weak: the strong half drains its own queues, then must steal across.
	run := func(latency quant.Tick) Result {
		stations := make([]station.Workstation, 16)
		for i := range stations {
			owner := station.OwnerModel(station.Overnight{Window: 8})
			if i%4 >= 2 {
				owner = station.Overnight{Window: 3}
			}
			stations[i] = station.Workstation{ID: i, Owner: owner, Setup: 1}
		}
		f := Farm{
			Stations:                stations,
			OpportunitiesPerStation: 40,
			Shards:                  4,
			Topology:                Topology{Clusters: 2, CrossLatency: latency},
		}
		res, err := f.RunDeterministic(context.Background(), Job{Tasks: task.Fixed(400, 2)}, equalizedFactory, 21, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := run(0)
	priced := run(32)
	if free.Steals == 0 || priced.Steals == 0 {
		t.Fatalf("skewed fleet never stole (free %d, priced %d); the scenario is broken", free.Steals, priced.Steals)
	}
	if priced.TaskWork > free.TaskWork {
		t.Errorf("latency 32 completed more work (%d) than latency 0 (%d)", priced.TaskWork, free.TaskWork)
	}
	if priced.TasksCompleted+priced.TasksLeft != 400 {
		t.Errorf("priced run leaks tasks: %d + %d ≠ 400", priced.TasksCompleted, priced.TasksLeft)
	}
}
