package farm

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cyclesteal/internal/mc"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/station"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/task"
)

func equalizedFactory(ws station.Workstation, c station.Contract) (model.EpisodeScheduler, error) {
	return sched.NewAdaptiveEqualized(ws.Setup)
}

func testFarm(n int, owner station.OwnerModel) Farm {
	stations := make([]station.Workstation, n)
	for i := range stations {
		stations[i] = station.Workstation{ID: i, Owner: owner, Setup: 10}
	}
	return Farm{Stations: stations, OpportunitiesPerStation: 10}
}

func TestSharedBagBasics(t *testing.T) {
	s := NewSharedBag(task.Fixed(10, 5))
	if s.Remaining() != 10 || s.RemainingWork() != 50 {
		t.Fatalf("remaining %d/%d", s.Remaining(), s.RemainingWork())
	}
	got := s.Take(12)
	if len(got) != 2 {
		t.Fatalf("Take(12) = %v", got)
	}
	s.Return(got)
	if s.Remaining() != 10 {
		t.Errorf("after return: %d", s.Remaining())
	}
}

func TestSharedBagConcurrentDrainConserves(t *testing.T) {
	const n = 500
	s := NewSharedBag(task.Fixed(n, 3))
	var mu sync.Mutex
	taken := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				got := s.Take(9) // up to 3 tasks
				if len(got) == 0 {
					return
				}
				mu.Lock()
				taken += len(got)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if taken != n || s.Remaining() != 0 {
		t.Errorf("drained %d, remaining %d; want %d/0", taken, s.Remaining(), n)
	}
}

func TestFarmCompletesSmallJob(t *testing.T) {
	f := testFarm(6, station.Overnight{Window: 20000})
	job := Job{Tasks: task.Uniform(200, 5, 50, 1)}
	res, err := f.Run(context.Background(), job, equalizedFactory, 42)
	if err != nil {
		t.Fatal(err)
	}
	// 6 stations × 10 × 20000 ticks of lifespan dwarf the job: it must finish.
	if res.TasksLeft != 0 {
		t.Errorf("%d tasks left of %d", res.TasksLeft, len(job.Tasks))
	}
	if res.TasksCompleted != len(job.Tasks) {
		t.Errorf("completed %d, want %d", res.TasksCompleted, len(job.Tasks))
	}
	if got := res.CompletionFraction(job); got != 1 {
		t.Errorf("completion fraction %g", got)
	}
	if res.TaskWork != job.TotalWork() {
		t.Errorf("task work %d ≠ job total %d", res.TaskWork, job.TotalWork())
	}
}

// Accounting invariant: completed + left == job size, and per-station reports
// sum to the aggregate, under every worker count.
func TestFarmConservationAcrossWorkerCounts(t *testing.T) {
	job := Job{Tasks: task.Uniform(3000, 5, 80, 2)}
	for _, workers := range []int{1, 2, 8} {
		f := testFarm(8, station.Laptop{MeanIdle: 3000})
		f.Workers = workers
		res, err := f.Run(context.Background(), job, equalizedFactory, 7)
		if err != nil {
			t.Fatal(err)
		}
		if res.TasksCompleted+res.TasksLeft != len(job.Tasks) {
			t.Errorf("workers=%d: %d + %d ≠ %d", workers, res.TasksCompleted, res.TasksLeft, len(job.Tasks))
		}
		var sumTasks int
		var sumWork quant.Tick
		for _, s := range res.Stations {
			sumTasks += s.TasksCompleted
			sumWork += s.TaskWork
		}
		if sumTasks != res.TasksCompleted || sumWork != res.TaskWork {
			t.Errorf("workers=%d: station totals %d/%d vs aggregate %d/%d",
				workers, sumTasks, sumWork, res.TasksCompleted, res.TaskWork)
		}
		// Task work never exceeds fluid capacity.
		if res.TaskWork > res.FluidWork {
			t.Errorf("workers=%d: task work %d > fluid %d", workers, res.TaskWork, res.FluidWork)
		}
	}
}

func TestFarmEmptyFleet(t *testing.T) {
	if _, err := (Farm{}).Run(context.Background(), Job{}, equalizedFactory, 1); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestFarmFactoryErrorPropagates(t *testing.T) {
	f := testFarm(3, station.Laptop{MeanIdle: 2000})
	_, err := f.Run(context.Background(), Job{Tasks: task.Fixed(100, 5)}, func(ws station.Workstation, c station.Contract) (model.EpisodeScheduler, error) {
		return nil, errBoom
	}, 1)
	if err == nil {
		t.Error("factory error swallowed")
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }

func TestFarmStopsBorrowingWhenJobDone(t *testing.T) {
	// A tiny job against a huge fleet: most opportunities should never start.
	f := testFarm(4, station.Overnight{Window: 50000})
	f.OpportunitiesPerStation = 50
	job := Job{Tasks: task.Fixed(5, 10)}
	res, err := f.Run(context.Background(), job, equalizedFactory, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksLeft != 0 {
		t.Fatalf("tiny job unfinished: %d left", res.TasksLeft)
	}
	var opportunities int
	for _, s := range res.Stations {
		opportunities += s.Opportunities
	}
	if opportunities >= 4*50 {
		t.Errorf("farm kept borrowing after the job finished: %d opportunities", opportunities)
	}
}

func TestImbalanceAndTopContributors(t *testing.T) {
	r := Result{Stations: []StationReport{
		{Station: 0, TaskWork: 100},
		{Station: 1, TaskWork: 300},
		{Station: 2, TaskWork: 200},
	}}
	if got := r.Imbalance(); got != 1.5 {
		t.Errorf("imbalance = %g, want 1.5 (300 / mean 200)", got)
	}
	top := r.TopContributors()
	if len(top) != 3 || top[0] != 1 || top[1] != 2 || top[2] != 0 {
		t.Errorf("top contributors = %v", top)
	}
	if (Result{}).Imbalance() != 1 {
		t.Error("empty imbalance should be 1")
	}
	zero := Result{Stations: []StationReport{{Station: 0}}}
	if zero.Imbalance() != 1 {
		t.Error("all-zero imbalance should be 1")
	}
}

func TestCompletionFractionEmptyJob(t *testing.T) {
	if (Result{}).CompletionFraction(Job{}) != 1 {
		t.Error("empty job should read complete")
	}
}

func TestFarmMaliciousOwnersStillFinish(t *testing.T) {
	base := station.Overnight{Window: 30000}
	f := testFarm(5, station.Malicious{Base: base, Setup: 10})
	job := Job{Tasks: task.Uniform(500, 5, 40, 9)}
	res, err := f.Run(context.Background(), job, equalizedFactory, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksLeft != 0 {
		t.Errorf("malicious owners prevented completion: %d left (interrupts %d)", res.TasksLeft, res.Interrupts)
	}
	if res.Interrupts == 0 {
		t.Error("malicious fleet never interrupted")
	}
}

func TestReplicateDeterministicAcrossWorkers(t *testing.T) {
	f := testFarm(5, station.Office{MeanIdle: 500, MaxP: 2})
	job := Job{Tasks: task.Exponential(400, 20, 3)}
	run := func(workers int) []stats.Summary {
		sums, err := f.Replicate(context.Background(), job, equalizedFactory, mc.Config{Trials: 6, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}
	a, b := run(1), run(8)
	if len(a) != NumMetrics || len(b) != NumMetrics {
		t.Fatalf("metric counts %d/%d, want %d", len(a), len(b), NumMetrics)
	}
	for m := range a {
		if a[m].Mean != b[m].Mean || a[m].Std != b[m].Std || a[m].Min != b[m].Min || a[m].Max != b[m].Max {
			t.Errorf("metric %d differs across worker counts: %+v vs %+v", m, a[m], b[m])
		}
	}
}

func TestReplicateMetricSanity(t *testing.T) {
	f := testFarm(4, station.Office{MeanIdle: 400, MaxP: 2})
	job := Job{Tasks: task.Exponential(300, 20, 7)}
	sums, err := f.Replicate(context.Background(), job, equalizedFactory, mc.Config{Trials: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	frac := sums[MetricCompletionFrac]
	if frac.Min < 0 || frac.Max > 1 {
		t.Errorf("completion fraction outside [0,1]: %+v", frac)
	}
	if sums[MetricImbalance].Min < 1 {
		t.Errorf("imbalance below 1: %+v", sums[MetricImbalance])
	}
	if sums[MetricTasksCompleted].Mean <= 0 {
		t.Errorf("no tasks completed on average: %+v", sums[MetricTasksCompleted])
	}
	if sums[MetricTasksCompleted].N != 5 {
		t.Errorf("trial count %d, want 5", sums[MetricTasksCompleted].N)
	}
}

func TestReplicateRejectsBadConfig(t *testing.T) {
	f := testFarm(2, station.Office{MeanIdle: 100, MaxP: 1})
	job := Job{Tasks: task.Fixed(10, 5)}
	if _, err := f.Replicate(context.Background(), job, equalizedFactory, mc.Config{Trials: 0, Seed: 1}); err == nil {
		t.Error("trials=0 accepted")
	}
}

// --- sharded bag ---------------------------------------------------------------

func TestShardedBagDealAndCounters(t *testing.T) {
	b := NewShardedBag(task.Fixed(10, 5), 4)
	if b.Shards() != 4 || b.Remaining() != 10 || b.RemainingWork() != 50 {
		t.Fatalf("shards=%d remaining=%d work=%d", b.Shards(), b.Remaining(), b.RemainingWork())
	}
	src := b.Station(1)
	got := src.Take(12) // two tasks from home shard 1 (IDs 1, 5)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 5 {
		t.Fatalf("home take: %v", got)
	}
	if b.Remaining() != 8 || b.RemainingWork() != 40 || b.Steals() != 0 {
		t.Errorf("counters after home take: %d/%d/%d", b.Remaining(), b.RemainingWork(), b.Steals())
	}
	src.Return(got)
	if b.Remaining() != 10 || b.RemainingWork() != 50 {
		t.Errorf("counters after return: %d/%d", b.Remaining(), b.RemainingWork())
	}
}

func TestShardedBagStealOrderAndHomeReturn(t *testing.T) {
	// 3 shards; drain shard 0, then station 0 must steal from shard 1 first.
	b := NewShardedBag(task.Fixed(9, 5), 3)
	s0 := b.Station(0)
	if got := s0.Take(100); len(got) != 3 {
		t.Fatalf("draining home: %v", got)
	}
	stolen := s0.Take(5)
	if len(stolen) != 1 || stolen[0].ID%3 != 1 {
		t.Fatalf("first steal should hit shard 1, got task %v", stolen)
	}
	if b.Steals() != 1 {
		t.Errorf("steals = %d", b.Steals())
	}
	// A kill returns the stolen task to the thief's own queue, not the victim's.
	s0.Return(stolen)
	back := s0.Take(5)
	if len(back) != 1 || back[0].ID != stolen[0].ID {
		t.Fatalf("killed task not requeued at thief's home: %v", back)
	}
	if b.Steals() != 1 {
		t.Errorf("home re-take counted as a steal: %d", b.Steals())
	}
}

func TestShardedBagConcurrentDrainConserves(t *testing.T) {
	const n = 4000
	b := NewShardedBag(task.Fixed(n, 3), 16)
	var taken int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := b.Station(w)
			for {
				got := src.Take(9)
				if len(got) == 0 {
					return
				}
				atomic.AddInt64(&taken, int64(len(got)))
			}
		}(w)
	}
	wg.Wait()
	if taken != n || b.Remaining() != 0 || b.RemainingWork() != 0 {
		t.Errorf("drained %d, remaining %d/%d; want %d/0/0", taken, b.Remaining(), b.RemainingWork(), n)
	}
	if b.Steals() == 0 {
		t.Error("draining 16 shards from 8 stations must have stolen")
	}
}

// --- live Run on the sharded pool ----------------------------------------------

func TestFarmRunShardedCompletesSmallJob(t *testing.T) {
	f := testFarm(6, station.Overnight{Window: 20000}) // Shards 0 = auto-sharded
	job := Job{Tasks: task.Uniform(200, 5, 50, 1)}
	res, err := f.Run(context.Background(), job, equalizedFactory, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksLeft != 0 || res.TasksCompleted != len(job.Tasks) {
		t.Errorf("sharded run left %d of %d", res.TasksLeft, len(job.Tasks))
	}
}

func TestFarmShardsSelection(t *testing.T) {
	f := testFarm(6, station.Overnight{Window: 1000})
	if got := f.shardCount(); got != 6 {
		t.Errorf("auto shards on 6 stations = %d, want 6", got)
	}
	f.Shards = 1
	if _, ok := f.newPool(Job{}).(*SharedBag); !ok {
		t.Error("Shards=1 should select the SharedBag baseline")
	}
	f.Shards = 4
	pool, ok := f.newPool(Job{}).(*ShardedBag)
	if !ok || pool.Shards() != 4 {
		t.Errorf("Shards=4 pool: %T", pool)
	}
	f.Stations = f.Stations[:2]
	f.Shards = 100
	if got := f.shardCount(); got != 2 {
		t.Errorf("shards clamp to fleet size: %d", got)
	}
}

// Bugfix regression: every failing station must surface, not just the first.
func TestFarmRunJoinsAllErrors(t *testing.T) {
	f := testFarm(4, station.Laptop{MeanIdle: 2000})
	f.Workers = 2
	// A job far larger than the fleet can finish, so no station skips its
	// opportunities (and its factory call) just because the bag drained.
	_, err := f.Run(context.Background(), Job{Tasks: task.Fixed(100000, 50)}, func(ws station.Workstation, c station.Contract) (model.EpisodeScheduler, error) {
		if ws.ID%2 == 1 {
			return nil, errBoom
		}
		return sched.NewAdaptiveEqualized(ws.Setup)
	}, 1)
	if err == nil {
		t.Fatal("factory errors swallowed")
	}
	msg := err.Error()
	for _, want := range []string{"station 1", "station 3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error missing %q: %v", want, msg)
		}
	}
}

// --- deterministic engine ------------------------------------------------------

func resultsEqual(a, b Result) bool {
	if a.TasksCompleted != b.TasksCompleted || a.TaskWork != b.TaskWork ||
		a.TasksLeft != b.TasksLeft || a.FluidWork != b.FluidWork ||
		a.Interrupts != b.Interrupts || a.Steals != b.Steals || len(a.Stations) != len(b.Stations) {
		return false
	}
	for i := range a.Stations {
		if a.Stations[i] != b.Stations[i] {
			return false
		}
	}
	return true
}

func TestRunDeterministicBitIdenticalAcrossWorkers(t *testing.T) {
	f := testFarm(30, station.Office{MeanIdle: 800, MaxP: 2})
	f.OpportunitiesPerStation = 6
	job := Job{Tasks: task.Exponential(2000, 15, 3)}
	base, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		got, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 99, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(base, got) {
			t.Errorf("workers=%d: result diverged from serial", workers)
		}
	}
}

func TestRunDeterministicConserves(t *testing.T) {
	f := testFarm(12, station.Laptop{MeanIdle: 3000})
	f.OpportunitiesPerStation = 8
	job := Job{Tasks: task.Uniform(3000, 5, 80, 2)}
	res, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted+res.TasksLeft != len(job.Tasks) {
		t.Errorf("%d + %d ≠ %d", res.TasksCompleted, res.TasksLeft, len(job.Tasks))
	}
	if res.TaskWork > res.FluidWork {
		t.Errorf("task work %d > fluid %d", res.TaskWork, res.FluidWork)
	}
}

func TestRunDeterministicStealsRescueIdleGroupTasks(t *testing.T) {
	// Station 1's owner offers U=1 contracts: it can never run a period, so
	// its group's tasks are only reachable via round-barrier steals.
	stations := []station.Workstation{
		{ID: 0, Owner: station.Overnight{Window: 100000}, Setup: 10},
		{ID: 1, Owner: station.Overnight{Window: 1}, Setup: 10},
	}
	f := Farm{Stations: stations, OpportunitiesPerStation: 10, Shards: 2}
	job := Job{Tasks: task.Fixed(5, 10)}
	res, err := f.RunDeterministic(context.Background(), job, equalizedFactory, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksLeft != 0 {
		t.Fatalf("idle group stranded %d tasks", res.TasksLeft)
	}
	if res.Steals == 0 {
		t.Error("completion required steals but none were counted")
	}
	if res.Stations[1].TasksCompleted != 0 {
		t.Errorf("the U=1 station cannot complete tasks, reported %d", res.Stations[1].TasksCompleted)
	}
}

// Acceptance: a 1000-station fleet replicates bit-identically at workers=1
// and workers=8 — the two-level pool never leaks scheduling into summaries.
func TestReplicateThousandStationsDeterministicAcrossWorkers(t *testing.T) {
	stations := make([]station.Workstation, 1000)
	for i := range stations {
		switch i % 3 {
		case 0:
			stations[i] = station.Workstation{ID: i, Owner: station.Office{MeanIdle: 400, MaxP: 2}, Setup: 10}
		case 1:
			stations[i] = station.Workstation{ID: i, Owner: station.Laptop{MeanIdle: 200}, Setup: 10}
		default:
			stations[i] = station.Workstation{ID: i, Owner: station.Overnight{Window: 500}, Setup: 10}
		}
	}
	f := Farm{Stations: stations, OpportunitiesPerStation: 3}
	job := Job{Tasks: task.Exponential(8000, 15, 5)}
	run := func(workers int) []stats.Summary {
		sums, err := f.Replicate(context.Background(), job, equalizedFactory, mc.Config{Trials: 2, Seed: 31, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}
	a, b := run(1), run(8)
	for m := range a {
		if a[m] != b[m] {
			t.Errorf("metric %d differs across worker budgets:\n  w1: %+v\n  w8: %+v", m, a[m], b[m])
		}
	}
	if a[MetricTasksCompleted].Mean <= 0 {
		t.Error("fleet completed nothing")
	}
}

// Episode memoization must be invisible in results: RunDeterministic is
// bit-identical with the cache on vs off, at any worker count, for both a
// keyed adaptive scheduler and the (deliberately unkeyed, memo-passthrough)
// non-adaptive family.
func TestRunDeterministicMemoOnOffBitIdentical(t *testing.T) {
	nonadaptiveFactory := func(ws station.Workstation, c station.Contract) (model.EpisodeScheduler, error) {
		return sched.NewNonAdaptive(c.U, c.P, ws.Setup)
	}
	factories := map[string]station.SchedulerFactory{
		"equalized":   equalizedFactory,
		"nonadaptive": nonadaptiveFactory,
	}
	for name, factory := range factories {
		f := testFarm(24, station.Office{MeanIdle: 700, MaxP: 2})
		f.OpportunitiesPerStation = 6
		job := Job{Tasks: task.Exponential(1500, 15, 5)}
		base, err := f.RunDeterministic(context.Background(), job, factory, 42, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, memoOff := range []bool{false, true} {
			for _, workers := range []int{1, 8} {
				g := f
				g.DisableEpisodeMemo = memoOff
				got, err := g.RunDeterministic(context.Background(), job, factory, 42, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !resultsEqual(base, got) {
					t.Errorf("%s: memoOff=%v workers=%d diverged from memo-on serial", name, memoOff, workers)
				}
			}
		}
	}
}

// The live engine's aggregate invariants (task conservation) must also hold
// identically with the memo on or off; per-station assignment is free to
// differ (it is scheduling-dependent either way).
func TestRunMemoOnOffConserves(t *testing.T) {
	for _, memoOff := range []bool{false, true} {
		f := testFarm(16, station.Laptop{MeanIdle: 2000})
		f.DisableEpisodeMemo = memoOff
		job := Job{Tasks: task.Uniform(2000, 5, 60, 9)}
		res, err := f.Run(context.Background(), job, equalizedFactory, 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.TasksCompleted+res.TasksLeft != len(job.Tasks) {
			t.Errorf("memoOff=%v: %d + %d ≠ %d", memoOff, res.TasksCompleted, res.TasksLeft, len(job.Tasks))
		}
	}
}

// TestReplicateShardsBitIdentical pins the distribution contract at the farm
// layer: running the study's mc shards in disjoint subsets (any grouping, any
// order) and merging the partial accumulators reproduces Replicate — and
// ReplicateStations — bit for bit.
func TestReplicateShardsBitIdentical(t *testing.T) {
	f := testFarm(5, station.Office{MeanIdle: 500, MaxP: 2})
	f.Stations[2].Owner = station.Laptop{MeanIdle: 300}
	job := Job{Tasks: task.Exponential(400, 20, 3)}
	cfg := mc.Config{Trials: 90, Seed: 9}

	want, err := f.Replicate(context.Background(), job, equalizedFactory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantMetrics, wantLifespans, err := f.ReplicateStations(context.Background(), job, equalizedFactory, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, parts := range []int{1, 4} {
		for _, stationCols := range []bool{false, true} {
			var shards []mc.ShardAccums
			// Run the subsets in reverse to prove location/order independence.
			for p := parts - 1; p >= 0; p-- {
				var ids []int
				for s := p; s < mc.Shards; s += parts {
					ids = append(ids, s)
				}
				part, err := f.ReplicateShards(context.Background(), job, equalizedFactory, cfg, stationCols, ids)
				if err != nil {
					t.Fatal(err)
				}
				shards = append(shards, part...)
			}
			sums, err := mc.MergeShards(f.ReplicateColumns(stationCols), shards)
			if err != nil {
				t.Fatal(err)
			}
			if !stationCols {
				for m := range want {
					if sums[m] != want[m] {
						t.Errorf("parts=%d metric %d diverged from Replicate:\n got %+v\nwant %+v", parts, m, sums[m], want[m])
					}
				}
				continue
			}
			for m := range wantMetrics {
				if sums[m] != wantMetrics[m] {
					t.Errorf("parts=%d metric %d diverged from ReplicateStations:\n got %+v\nwant %+v", parts, m, sums[m], wantMetrics[m])
				}
			}
			for s := range wantLifespans {
				if sums[NumMetrics+s] != wantLifespans[s] {
					t.Errorf("parts=%d station %d lifespan diverged:\n got %+v\nwant %+v", parts, s, sums[NumMetrics+s], wantLifespans[s])
				}
			}
		}
	}
}
