package expect

import (
	"math"
	"math/rand"
	"testing"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/game"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/stats"
)

func TestSolveExpectedPValidation(t *testing.T) {
	if _, err := SolveExpectedP(-1, 100, 10, 0.01); err == nil {
		t.Error("P<0 accepted")
	}
	if _, err := SolveExpectedP(1, 100, 0, 0.01); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := SolveExpectedP(1, 100, 10, 1.0); err == nil {
		t.Error("q=1 accepted")
	}
	if _, err := SolveExpectedP(1, 100, 10, -0.1); err == nil {
		t.Error("q<0 accepted")
	}
	if _, err := SolveExpectedP(1<<14, 1<<14, 10, 0.01); err == nil {
		t.Error("oversized table accepted")
	}
}

func TestPSolverZeroRisk(t *testing.T) {
	s, err := SolveExpectedP(3, 500, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p <= 3; p++ {
		for _, L := range []quant.Tick{0, 5, 100, 500} {
			if got, want := s.Value(p, L), float64(quant.PosSub(L, 10)); got != want {
				t.Errorf("q=0: E(%d,%d) = %g, want %g", p, L, got, want)
			}
		}
	}
	if got := s.FirstPeriod(2, 400); got != 400 {
		t.Errorf("q=0 first period = %d, want the whole residual", got)
	}
}

func TestPSolverP0IsDeterministic(t *testing.T) {
	s, err := SolveExpectedP(2, 300, 10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for L := quant.Tick(0); L <= 300; L++ {
		if got, want := s.Value(0, L), float64(quant.PosSub(L, 10)); got != want {
			t.Fatalf("E(0,%d) = %g, want %g", L, got, want)
		}
	}
}

func TestPSolverMonotone(t *testing.T) {
	s, err := SolveExpectedP(3, 1000, 10, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p <= 3; p++ {
		for L := quant.Tick(1); L <= 1000; L++ {
			if s.Value(p, L) < s.Value(p, L-1)-1e-9 {
				t.Fatalf("E(%d,·) decreased at %d", p, L)
			}
		}
	}
	// More outstanding returns = more risk: E decreasing in p.
	for p := 1; p <= 3; p++ {
		for L := quant.Tick(0); L <= 1000; L += 9 {
			if s.Value(p, L) > s.Value(p-1, L)+1e-9 {
				t.Fatalf("E(%d,%d) = %g > E(%d,%d) = %g", p, L, s.Value(p, L), p-1, L, s.Value(p-1, L))
			}
		}
	}
}

// Cross-module: expectation over random placements dominates the minimum
// over adversarial placements, state by state.
func TestExpectedDominatesGuaranteed(t *testing.T) {
	U, c := quant.Tick(2000), quant.Tick(10)
	es, err := SolveExpectedP(2, U, c, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := game.Solve(2, U, c)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p <= 2; p++ {
		for L := quant.Tick(0); L <= U; L += 13 {
			if es.Value(p, L) < float64(gs.Value(p, L))-1e-6 {
				t.Fatalf("E(%d,%d) = %g below guaranteed optimum %d", p, L, es.Value(p, L), gs.Value(p, L))
			}
		}
	}
}

func TestPSolverEpisodeSums(t *testing.T) {
	s, err := SolveExpectedP(2, 3000, 10, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	for _, L := range []quant.Tick{1, 50, 777, 3000} {
		ep := s.Episode(2, L)
		if ep.Total() != L {
			t.Errorf("L=%d: episode totals %d", L, ep.Total())
		}
	}
	if s.Episode(1, 0) != nil {
		t.Error("L=0 should be nil")
	}
}

// The DP value is validated against Monte-Carlo: simulate the extracted
// policy under the exact process it optimizes for (memoryless returns,
// budget p) and check the sample mean brackets the predicted expectation.
func TestPSolverMatchesMonteCarlo(t *testing.T) {
	U, c := quant.Tick(1500), quant.Tick(10)
	q := 0.004
	P := 2
	s, err := SolveExpectedP(P, U, c, q)
	if err != nil {
		t.Fatal(err)
	}
	policy := s.Scheduler()
	rng := rand.New(rand.NewSource(17))
	var works []float64
	const trials = 1500
	for i := 0; i < trials; i++ {
		// Geometric inter-arrival with per-tick probability q is an
		// exponential of mean 1/q up to discretization.
		adv := &adversary.Poisson{Rng: rng, Mean: 1 / q}
		res, err := sim.Run(policy, adv, sim.Opportunity{U: U, P: P, C: c}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		works = append(works, float64(res.Work))
	}
	sum := stats.Summarize(works)
	want := s.Value(P, U)
	// Allow the CI plus a small discretization bias (geometric vs rounded
	// exponential arrivals).
	slack := 4*sum.SE + 0.01*want
	if math.Abs(sum.Mean-want) > slack {
		t.Errorf("Monte-Carlo mean %g vs DP expectation %g (slack %g)", sum.Mean, want, slack)
	}
}

func TestPSolverValuePanics(t *testing.T) {
	s, err := SolveExpectedP(1, 100, 10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	s.Value(2, 50)
}

func TestPSchedulerClamps(t *testing.T) {
	s, err := SolveExpectedP(1, 500, 10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ep := s.Scheduler().Episode(5, 9999)
	if ep.Total() != 500 {
		t.Errorf("clamped episode totals %d", ep.Total())
	}
}

// Risk shortens periods: the expected-optimal first period shrinks as q
// grows, and with interrupts outstanding it is shorter than the residual.
func TestPSolverPeriodShrinksWithRisk(t *testing.T) {
	U, c := quant.Tick(2000), quant.Tick(10)
	var prev quant.Tick = math.MaxInt64
	for _, q := range []float64{0.001, 0.005, 0.02} {
		s, err := SolveExpectedP(1, U, c, q)
		if err != nil {
			t.Fatal(err)
		}
		t1 := s.FirstPeriod(1, U)
		if t1 >= prev {
			t.Errorf("q=%g: first period %d did not shrink (prev %d)", q, t1, prev)
		}
		if t1 >= U {
			t.Errorf("q=%g: no hedging at all", q)
		}
		prev = t1
	}
}
