// Package expect implements the *expected-output* submodel — the subject of
// the companion paper (Rosenberg, IPPS 1998, "…I: On Maximizing Expected
// Output" [9]) and of [3] — as an extension to this reproduction, so the
// guaranteed-output schedules can be contrasted with schedules tuned for a
// benign stochastic owner (experiment E8).
//
// Model: the owner returns after an exponentially distributed absence
// (memoryless with mean 1/λ ticks); the first return inside the opportunity
// kills the period in progress and, in the draconian single-interrupt
// reading used here, ends the opportunity. A schedule t_1, …, t_m therefore
// earns period k's work t_k ⊖ c exactly when the owner stays away through
// T_k, so
//
//	E[W(S)] = Σ_k  e^{−λ·T_k} · (t_k ⊖ c).
//
// This is *not* from the paper being reproduced; it is flagged as an
// extension in DESIGN.md and used only for the guaranteed-vs-expected
// comparison.
package expect

import (
	"fmt"
	"math"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
)

// ExpectedWork returns E[W(S)] for a fixed schedule under the exponential
// owner with rate lambda (per tick).
func ExpectedWork(s model.TickSchedule, c quant.Tick, lambda float64) float64 {
	var sum float64
	var T quant.Tick
	for _, t := range s {
		T += t
		sum += math.Exp(-lambda*float64(T)) * float64(quant.PosSub(t, c))
	}
	return sum
}

// OptimalFixedPeriod returns the period length t* maximizing the steady-state
// expected yield rate of an infinite fixed-period schedule,
// f(t) = e^{−λt}(t−c), by ternary search. For λc ≪ 1, t* ≈ c + √(c/λ)·…;
// the numeric optimum is exact for the model above.
func OptimalFixedPeriod(c quant.Tick, lambda float64) quant.Tick {
	if lambda <= 0 {
		return math.MaxInt64 // no interrupts: one giant period
	}
	yield := func(t float64) float64 {
		if t <= float64(c) {
			return 0
		}
		// Per-period discounted gain normalized by expected period "slot":
		// the first-order optimality of the infinite product Π e^{−λt}
		// reduces to maximizing e^{−λt}(t−c) per unit time ≈ (t−c)e^{−λt}/t.
		return (t - float64(c)) * math.Exp(-lambda*t) / t
	}
	lo, hi := float64(c), float64(c)+20/lambda+10*float64(c)
	for i := 0; i < 200; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if yield(m1) < yield(m2) {
			lo = m1
		} else {
			hi = m2
		}
	}
	t := quant.Tick(math.Round((lo + hi) / 2))
	if t <= c {
		t = c + 1
	}
	return t
}

// Solver computes the exact optimal expected work E*(L) for every residual
// lifespan L ≤ U by dynamic programming on the tick grid:
//
//	E*(L) = max_{1 ≤ t ≤ L}  e^{−λt} · ( (t ⊖ c) + E*(L−t) )
//
// (conditioning on the owner staying away through the first period; if the
// owner returns during it, nothing more is earned in this submodel).
type Solver struct {
	c      quant.Tick
	u      quant.Tick
	lambda float64
	e      []float64
	first  []quant.Tick
}

// SolveExpected builds the expected-output DP up to lifespan U.
func SolveExpected(U, c quant.Tick, lambda float64) (*Solver, error) {
	if U < 0 || c < 1 || lambda < 0 {
		return nil, fmt.Errorf("expect: bad parameters U=%d c=%d lambda=%g", U, c, lambda)
	}
	if U > 1<<22 {
		return nil, fmt.Errorf("expect: lifespan %d too large for the quadratic DP; coarsen the quantum", U)
	}
	s := &Solver{c: c, u: U, lambda: lambda, e: make([]float64, U+1), first: make([]quant.Tick, U+1)}
	// The maximand is unimodal-ish but we keep the exact scan: the search
	// window below prunes with the discount's exponential decay — beyond
	// t ≈ c + 30/λ, e^{−λt} has lost every bit of a float64's precision.
	window := U
	if lambda > 0 {
		w := quant.Tick(30/lambda) + 3*c + 2
		if w < window {
			window = w
		}
	}
	for L := quant.Tick(1); L <= U; L++ {
		var best float64
		bestT := L
		tmax := L
		if tmax > window {
			tmax = window
		}
		for t := quant.Tick(1); t <= tmax; t++ {
			v := math.Exp(-lambda*float64(t)) * (float64(quant.PosSub(t, c)) + s.e[L-t])
			if v > best {
				best = v
				bestT = t
			}
		}
		// The single exhausting period is always a candidate even beyond the
		// pruning window.
		if v := math.Exp(-lambda*float64(L)) * float64(quant.PosSub(L, c)); v > best {
			best = v
			bestT = L
		}
		s.e[L] = best
		s.first[L] = bestT
	}
	return s, nil
}

// Value returns E*(L).
func (s *Solver) Value(L quant.Tick) float64 {
	if L < 0 || L > s.u {
		panic(fmt.Sprintf("expect: Value(%d) outside solved range [0,%d]", L, s.u))
	}
	return s.e[L]
}

// Schedule extracts the optimal expected-output schedule for lifespan L.
func (s *Solver) Schedule(L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	var out model.TickSchedule
	for L > 0 {
		t := s.first[L]
		if t < 1 {
			t = L
		}
		out = append(out, t)
		L -= t
	}
	return out
}

// Scheduler adapts the solver to the adaptive EpisodeScheduler interface so
// the expected-optimal policy can be run in the simulator and measured under
// the malicious adversary (it fares poorly — that is E8's point).
func (s *Solver) Scheduler() model.EpisodeScheduler {
	return expectedScheduler{s}
}

type expectedScheduler struct{ s *Solver }

func (e expectedScheduler) Episode(p int, L quant.Tick) model.TickSchedule {
	if L > e.s.u {
		L = e.s.u
	}
	return e.s.Schedule(L)
}

func (e expectedScheduler) Name() string { return "expected-optimal" }
