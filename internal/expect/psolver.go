package expect

import (
	"fmt"
	"math"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
)

// PSolver solves the *multi-interrupt* expected-output model: the exact
// stochastic mirror of the guaranteed-output game. The owner returns with
// memoryless per-tick probability q while at most p returns remain; a return
// kills the period in progress (draconian), consumes no lifespan, and the
// opportunity continues adaptively with one fewer return outstanding:
//
//	E(0, L) = L ⊖ c
//	E(p, L) = max_t [ (1−q)^t·((t ⊖ c) + E(p, L−t))
//	                  + Σ_{j=1..t} q(1−q)^{j−1}·E(p−1, L−j) ]
//
// Replacing nature (the Σ term, an expectation over placements) with an
// adversary (a minimum over placements) recovers exactly the recursion of
// internal/game — so E(p, L) ≥ W(p)[L] for every state, which the tests
// assert across modules. This is the reproduction's stand-in for the
// companion paper's expected-output submodel [9], extended to p interrupts.
type PSolver struct {
	c quant.Tick
	u quant.Tick
	p int
	q float64
	e [][]float64
}

// SolveExpectedP builds the expected-output tables for up to P owner returns
// with per-tick return probability q ∈ [0, 1).
func SolveExpectedP(P int, U, c quant.Tick, q float64) (*PSolver, error) {
	if P < 0 || U < 0 || c < 1 || q < 0 || q >= 1 {
		return nil, fmt.Errorf("expect: bad parameters P=%d U=%d c=%d q=%g", P, U, c, q)
	}
	if entries := (int64(P) + 1) * (int64(U) + 1); entries > 1<<26 {
		return nil, fmt.Errorf("expect: table would need %d entries; coarsen the quantum", entries)
	}
	s := &PSolver{c: c, u: U, p: P, q: q, e: make([][]float64, P+1)}
	for i := range s.e {
		s.e[i] = make([]float64, U+1)
	}
	for L := quant.Tick(0); L <= U; L++ {
		s.e[0][L] = float64(quant.PosSub(L, c))
	}
	if q == 0 {
		// No risk: every level is the single long period.
		for p := 1; p <= P; p++ {
			copy(s.e[p], s.e[0])
		}
		return s, nil
	}
	// Beyond ~40 half-lives the survival factor is numerically dead; the
	// residual tail of the interrupted-sum is equally negligible.
	window := quant.Tick(math.Ceil(40/q)) + 2*c
	for p := 1; p <= P; p++ {
		for L := quant.Tick(1); L <= U; L++ {
			tmax := L
			if tmax > window {
				tmax = window
			}
			best := 0.0
			surv := 1.0   // (1−q)^t as t grows
			intSum := 0.0 // Σ_{j≤t} q(1−q)^{j−1} E(p−1, L−j)
			for t := quant.Tick(1); t <= tmax; t++ {
				intSum += s.q * surv * s.e[p-1][L-t] // j = t term uses (1−q)^{t−1}
				surv *= 1 - s.q
				v := surv*(float64(quant.PosSub(t, s.c))+s.e[p][L-t]) + intSum
				if v > best {
					best = v
				}
			}
			s.e[p][L] = best
		}
	}
	return s, nil
}

// Value returns E(p, L).
func (s *PSolver) Value(p int, L quant.Tick) float64 {
	if p < 0 || p > s.p || L < 0 || L > s.u {
		panic(fmt.Sprintf("expect: Value(%d, %d) outside solved range p≤%d L≤%d", p, L, s.p, s.u))
	}
	return s.e[p][L]
}

// FirstPeriod returns the maximizing first period at (p, L), recomputed on
// demand (the tables store only values).
func (s *PSolver) FirstPeriod(p int, L quant.Tick) quant.Tick {
	if p <= 0 || L < 1 {
		return L
	}
	if p > s.p {
		p = s.p
	}
	if s.q == 0 {
		return L
	}
	window := quant.Tick(math.Ceil(40/s.q)) + 2*s.c
	tmax := L
	if tmax > window {
		tmax = window
	}
	best, bestT := -1.0, L
	surv := 1.0
	intSum := 0.0
	for t := quant.Tick(1); t <= tmax; t++ {
		intSum += s.q * surv * s.e[p-1][L-t]
		surv *= 1 - s.q
		v := surv*(float64(quant.PosSub(t, s.c))+s.e[p][L-t]) + intSum
		if v > best {
			best, bestT = v, t
		}
	}
	return bestT
}

// Episode extracts the expected-optimal episode at (p, L) by following
// FirstPeriod greedily (valid because completing a period yields the same
// state the extraction assumes).
func (s *PSolver) Episode(p int, L quant.Tick) model.TickSchedule {
	if L < 1 {
		return nil
	}
	var out model.TickSchedule
	for L > 0 {
		t := s.FirstPeriod(p, L)
		if t < 1 {
			t = L
		}
		out = append(out, t)
		L -= t
	}
	return out
}

// Scheduler adapts the solver to the adaptive scheduling interface.
func (s *PSolver) Scheduler() model.EpisodeScheduler {
	return pScheduler{s}
}

type pScheduler struct{ s *PSolver }

func (p pScheduler) Episode(q int, L quant.Tick) model.TickSchedule {
	if L > p.s.u {
		L = p.s.u
	}
	if q > p.s.p {
		q = p.s.p
	}
	return p.s.Episode(q, L)
}

func (p pScheduler) Name() string { return "expected-optimal-p" }
