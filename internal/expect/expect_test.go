package expect

import (
	"math"
	"math/rand"
	"testing"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/game"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
)

func TestExpectedWorkHandCase(t *testing.T) {
	// One period of 100, c=10, λ=0.01: e^{−1}·90.
	got := ExpectedWork(model.TickSchedule{100}, 10, 0.01)
	want := math.Exp(-1) * 90
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedWork = %g, want %g", got, want)
	}
	// Two periods discount by their completion times.
	got = ExpectedWork(model.TickSchedule{100, 50}, 10, 0.01)
	want = math.Exp(-1)*90 + math.Exp(-1.5)*40
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedWork = %g, want %g", got, want)
	}
}

func TestExpectedWorkZeroLambda(t *testing.T) {
	s := model.TickSchedule{100, 50}
	if got := ExpectedWork(s, 10, 0); got != 130 {
		t.Errorf("λ=0 expected work = %g, want uninterrupted 130", got)
	}
}

func TestOptimalFixedPeriodBehaviour(t *testing.T) {
	c := quant.Tick(10)
	// More interrupt pressure ⇒ shorter periods.
	tLow := OptimalFixedPeriod(c, 0.0001)
	tHigh := OptimalFixedPeriod(c, 0.01)
	if tHigh >= tLow {
		t.Errorf("period should shrink with λ: λ=1e-4 → %d, λ=1e-2 → %d", tLow, tHigh)
	}
	if tHigh <= c {
		t.Errorf("optimal period %d must exceed c", tHigh)
	}
	if OptimalFixedPeriod(c, 0) != math.MaxInt64 {
		t.Error("λ=0 should yield the unbounded period")
	}
}

func TestSolveExpectedValidation(t *testing.T) {
	if _, err := SolveExpected(-1, 10, 0.01); err == nil {
		t.Error("U<0 accepted")
	}
	if _, err := SolveExpected(100, 0, 0.01); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := SolveExpected(100, 10, -1); err == nil {
		t.Error("λ<0 accepted")
	}
	if _, err := SolveExpected(1<<23, 10, 0.01); err == nil {
		t.Error("oversized DP accepted")
	}
}

func TestSolverValuePanicsOutOfRange(t *testing.T) {
	s, err := SolveExpected(100, 10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	s.Value(101)
}

// The DP must dominate every fixed schedule we can hand it.
func TestSolverDominatesFixedSchedules(t *testing.T) {
	U, c := quant.Tick(3000), quant.Tick(10)
	lambda := 0.002
	s, err := SolveExpected(U, c, lambda)
	if err != nil {
		t.Fatal(err)
	}
	opt := s.Value(U)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		var schedule model.TickSchedule
		rem := U
		for rem > 0 {
			t := quant.Tick(1 + rng.Int63n(400))
			if t > rem {
				t = rem
			}
			schedule = append(schedule, t)
			rem -= t
		}
		if got := ExpectedWork(schedule, c, lambda); got > opt+1e-9 {
			t.Fatalf("trial %d: fixed schedule beats DP: %g > %g", trial, got, opt)
		}
	}
	// And the DP's own schedule achieves its value.
	extracted := s.Schedule(U)
	if got := ExpectedWork(extracted, c, lambda); math.Abs(got-opt) > 1e-9 {
		t.Errorf("extracted schedule yields %g, DP says %g", got, opt)
	}
}

func TestSolverMonotoneInL(t *testing.T) {
	s, err := SolveExpected(2000, 10, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	for L := quant.Tick(1); L <= 2000; L++ {
		if s.Value(L) < s.Value(L-1)-1e-12 {
			t.Fatalf("E*(%d) < E*(%d)", L, L-1)
		}
	}
}

func TestScheduleSumsToL(t *testing.T) {
	s, err := SolveExpected(5000, 10, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	for _, L := range []quant.Tick{1, 10, 999, 5000} {
		sch := s.Schedule(L)
		if sch.Total() != L {
			t.Errorf("L=%d: schedule totals %d", L, sch.Total())
		}
	}
	if s.Schedule(0) != nil {
		t.Error("Schedule(0) should be nil")
	}
}

// The guaranteed-vs-expected tension (E8): the expected-optimal schedule uses
// long periods and gets slaughtered by the malicious adversary, while the
// guaranteed-optimal schedule sacrifices expected yield for its floor.
func TestExpectedOptimalIsFragileAgainstMalice(t *testing.T) {
	U, c := quant.Tick(5000), quant.Tick(10)
	lambda := 0.0005 // gentle owner: mean return 2000 ticks
	es, err := SolveExpected(U, c, lambda)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := game.Solve(1, U, c)
	if err != nil {
		t.Fatal(err)
	}
	expectedSched := es.Scheduler()
	guaranteedSched := gs.Scheduler()

	// Guaranteed floor of each schedule with one malicious interrupt.
	expFloor, err := game.Evaluate(expectedSched, 1, U, c)
	if err != nil {
		t.Fatal(err)
	}
	guarFloor, err := game.Evaluate(guaranteedSched, 1, U, c)
	if err != nil {
		t.Fatal(err)
	}
	if expFloor >= guarFloor {
		t.Errorf("expected-optimal floor %d should be below guaranteed-optimal floor %d", expFloor, guarFloor)
	}

	// Monte-Carlo mean against the benign Poisson owner (one interrupt max).
	mean := func(s model.EpisodeScheduler) float64 {
		rng := rand.New(rand.NewSource(21))
		var sum float64
		const trials = 300
		for i := 0; i < trials; i++ {
			adv := &adversary.Poisson{Rng: rng, Mean: 1 / lambda}
			res, err := sim.Run(s, adv, sim.Opportunity{U: U, P: 1, C: c}, sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.Work)
		}
		return sum / trials
	}
	// Note: in the simulator the opportunity continues after the single
	// interrupt (residual rescheduled), so both schedules earn more than the
	// single-episode submodel predicts; the ordering is what matters.
	if mean(expectedSched) <= 0 {
		t.Error("expected-optimal schedule earned nothing under the benign owner")
	}
	_ = guarFloor
}

func TestSchedulerAdapterClampsL(t *testing.T) {
	s, err := SolveExpected(1000, 10, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	ep := s.Scheduler().Episode(1, 5000)
	if ep.Total() != 1000 {
		t.Errorf("clamped episode totals %d, want 1000", ep.Total())
	}
	if model.NameOf(s.Scheduler()) == "" {
		t.Error("empty name")
	}
}
