package experiments

import (
	"fmt"

	"cyclesteal/internal/game"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/tab"
)

// Prop41Grid is experiment E6: it sweeps the exact value tables and counts
// violations of each clause of Prop. 4.1 (there must be none), reporting the
// zero-work boundary it finds next to the paper's (p+1)c and the discrete
// (p+1)c + p.
func Prop41Grid(cfg Config, maxP int, U quant.Tick) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	solver, err := game.Solve(maxP, U, c)
	if err != nil {
		return nil, err
	}
	t := tab.New(
		fmt.Sprintf("E6: Prop. 4.1 on the exact value tables (c = %d ticks, L ≤ %d)", c, U),
		"p", "(a) ↑ in U violations", "(b) ↓ in p violations", "(c) first L with W>0", "paper (p+1)c", "discrete (p+1)c+p", "(d) W(0)[L]=L⊖c violations",
	)
	for p := 0; p <= maxP; p++ {
		var monoU, monoP, zeroViol int
		firstPositive := quant.Tick(-1)
		for L := quant.Tick(1); L <= U; L++ {
			if solver.Value(p, L) < solver.Value(p, L-1) {
				monoU++
			}
			if p > 0 && solver.Value(p, L) > solver.Value(p-1, L) {
				monoP++
			}
			if firstPositive < 0 && solver.Value(p, L) > 0 {
				firstPositive = L
			}
		}
		if p == 0 {
			for L := quant.Tick(0); L <= U; L++ {
				if solver.Value(0, L) != quant.PosSub(L, c) {
					zeroViol++
				}
			}
		}
		dViol := "n/a"
		if p == 0 {
			dViol = fmt.Sprintf("%d", zeroViol)
		}
		t.Row(p, monoU, monoP, firstPositive, quant.Tick(p+1)*c, quant.Tick(p+1)*c+quant.Tick(p), dViol)
	}
	t.Note("the first positive lifespan equals the discrete threshold + 1: Prop 4.1(c) with the +p tick shift of the integer grid")
	return t, nil
}

// OptimalStructure is experiment E7: Theorem 4.2 and Observation (a) made
// visible. For each p it extracts the DP-optimal episode and reports its
// terminal-period lengths (Thm 4.2 predicts (c, 2c], observed ≈ 3c/2), its
// interior ramp steps, and — on a reduced lifespan — that the exhaustive
// every-tick adversary gains nothing over the last-instant adversary
// (Observation (a)).
func OptimalStructure(cfg Config, U quant.Tick) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	const maxP = 4
	solver, err := game.Solve(maxP, U, c)
	if err != nil {
		return nil, err
	}
	t := tab.New(
		fmt.Sprintf("E7: structure of DP-optimal episodes (c = %d ticks, U/c = %s)", c, tab.FormatFloat(inC(U, c))),
		"p", "m", "t_1/c", "t_2/c", "t_{m-1}/c", "lump t_m/c", "structural terminal in (c,2c]", "productive (Thm 4.1)",
	)
	for p := 1; p <= maxP; p++ {
		ep := solver.OptimalEpisode(p, U)
		m := len(ep)
		// The last period is the zero-value remainder lump (≤ (p+1)c + p);
		// Theorem 4.2's (c, 2c] normal form governs the period before it.
		structuralOK := m >= 2 && ep[m-2] > c && ep[m-2] <= 2*c
		productive := true
		for i := 0; i < m-1; i++ {
			if ep[i] <= c {
				productive = false
			}
		}
		t.Row(p, m,
			inC(first(ep), c),
			inC(second(ep), c),
			inC(last(ep, 1), c),
			inC(last(ep, 0), c),
			structuralOK, productive,
		)
	}

	// Observation (a): against a scheduler whose continuation values are
	// monotone in the residual — the DP-optimal player is exactly that — the
	// every-tick adversary gains nothing over last-instant placements.
	smallU := 60 * c
	smallSolver, err := game.Solve(2, smallU, c)
	if err != nil {
		return nil, err
	}
	op1, err := sched.NewOptimalP1(c)
	if err != nil {
		return nil, err
	}
	for _, p := range []int{1, 2} {
		for _, s := range []struct {
			name string
			sch  interface {
				Episode(int, quant.Tick) model.TickSchedule
			}
		}{
			{"dp-optimal", smallSolver.Scheduler()},
			{"closed-form §5.2", op1},
		} {
			boundary, err := game.Evaluate(model.EpisodeFunc(s.sch.Episode), p, smallU, c)
			if err != nil {
				return nil, err
			}
			exhaustive, err := game.EvaluateExhaustive(model.EpisodeFunc(s.sch.Episode), p, smallU, c)
			if err != nil {
				return nil, err
			}
			t.Note("Obs (a) check (%s, p=%d, U=%d): last-instant adversary %d vs every-tick adversary %d (equal: %v)",
				s.name, p, smallU, boundary, exhaustive, boundary == exhaustive)
		}
	}
	t.Note("the final lump is the zero-value remainder ≤ (p+1)c+p (lumping maximizes the abstention branch; its worst case is 0 regardless)")
	t.Note("Thm 4.2: optimal structural terminal periods sit in (c, 2c] — observed ≈ 3c/2, matching Table 2's t_m = t_{m−1} = 3c/2")
	return t, nil
}

func second(s []quant.Tick) quant.Tick {
	if len(s) < 2 {
		return 0
	}
	return s[1]
}
