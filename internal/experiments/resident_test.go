package experiments

import (
	"strconv"
	"testing"
)

// E15's qualitative claims: a well-chosen checkpoint interval beats the
// draconian baseline at every churn rate, and churn costs completion
// monotonically along every row.
func TestResidentServiceShape(t *testing.T) {
	intervals := []float64{2, 10}
	churns := []float64{0, 0.08}
	tb, err := ResidentService(smallCfg(), 8, 8, 80, intervals, churns, []float64{0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3+len(intervals) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), 3+len(intervals))
	}
	for _, row := range tb.Rows {
		if len(row) != 1+len(churns) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), 1+len(churns))
		}
	}
	cell := func(r, c int) float64 {
		v, err := strconv.ParseFloat(tb.Rows[r][c], 64)
		if err != nil {
			t.Fatalf("bad cell %q in row %v", tb.Rows[r][c], tb.Rows[r])
		}
		return v
	}
	for r := range tb.Rows {
		for c := 1; c <= len(churns); c++ {
			if v := cell(r, c); v <= 0 || v > 100 {
				t.Errorf("row %s churn col %d: completion %.3f%% outside (0, 100]", tb.Rows[r][0], c, v)
			}
		}
		// Churn rates increase along the row; completion must not rise.
		if cell(r, 2) > cell(r, 1) {
			t.Errorf("row %s: completion rose under churn: %.3f%% -> %.3f%%", tb.Rows[r][0], cell(r, 1), cell(r, 2))
		}
	}
	// The sweet-spot interval (row 2, "every 10") beats draconian (row 0)
	// in every churn column — the headline claim of the study.
	for c := 1; c <= len(churns); c++ {
		if cell(2, c) <= cell(0, c) {
			t.Errorf("churn col %d: checkpointing at the sweet spot (%.3f%%) does not beat draconian (%.3f%%)", c, cell(2, c), cell(0, c))
		}
	}
}

// The table is bit-identical across worker counts: every cell runs the
// deterministic service engine, and seeds depend only on (row, trial).
func TestResidentServiceDeterministic(t *testing.T) {
	run := func(workers int) string {
		cfg := smallCfg()
		cfg.Workers = workers
		tb, err := ResidentService(cfg, 8, 6, 40, []float64{10}, []float64{0, 0.08}, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Render()
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("E15 table depends on worker count:\n--- serial ---\n%s\n--- workers=8 ---\n%s", a, b)
	}
}

func TestResidentServiceValidation(t *testing.T) {
	if _, err := ResidentService(smallCfg(), 8, 8, 80, []float64{2}, []float64{0}, nil, 0); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := ResidentService(smallCfg(), 1, 8, 80, []float64{2}, []float64{0}, nil, 1); err == nil {
		t.Error("stations=1 accepted")
	}
	if _, err := ResidentService(smallCfg(), 8, 8, 80, []float64{0}, []float64{0}, nil, 1); err == nil {
		t.Error("zero checkpoint interval accepted (off row is built in)")
	}
	if _, err := ResidentService(smallCfg(), 8, 8, 80, []float64{2}, nil, nil, 1); err == nil {
		t.Error("empty churn list accepted")
	}
	if _, err := ResidentService(smallCfg(), 8, 8, 80, []float64{2}, []float64{1}, nil, 1); err == nil {
		t.Error("churn rate 1 accepted")
	}
	if _, err := ResidentService(smallCfg(), 8, 8, 80, []float64{2}, []float64{0}, []float64{-1}, 1); err == nil {
		t.Error("negative save cost accepted")
	}
}
