package experiments

import (
	"context"
	"fmt"

	"cyclesteal/fleet"
	"cyclesteal/internal/tab"
	"cyclesteal/trace"
)

// OwnerWorlds is experiment E13: the paper's schedules run against every
// kind of owner the open facade can express, holding the contract shape
// fixed so the columns differ only in *when* the owner interrupts. Every
// fleet here is built through the public cyclesteal/fleet and
// cyclesteal/trace packages alone — the experiment doubles as a proof that
// the owner redesign left nothing behind the curtain.
//
// One row per scheduling policy; one column per owner world:
//
//   - "benign" never interrupts — the ceiling: everything but setup banks.
//   - "poisson" interrupts at exponential gaps (the synthetic temperament) —
//     the expected-case world the §3 guidelines were tuned for.
//   - "trace" replays the interrupt history recorded from the poisson world
//     under the equalized policy — "what would this schedule have banked
//     against the interruptions that actually happened", the NOW-usage-log
//     reading of the model.
//   - "greedy" is the equalization-aware adversary, interrupting where the
//     current period hurts most.
//   - "minimax" is the exact best-response adversary from the §4 game value
//     tables — the guaranteed-output floor. No column can beat benign, and
//     no adversary can push a schedule below its minimax cell.
//
// All worlds share the Fixed base contract (same lifespan and allowance at
// every opportunity), so offered lifespan is identical across cells and
// utilization is comparable column to column.
func OwnerWorlds(cfg Config, stations, opportunitiesPer int) (*tab.Table, error) {
	cfg = cfg.normalize()
	if stations < 1 || opportunitiesPer < 1 {
		return nil, fmt.Errorf("experiments: E13 needs stations ≥ 1 and opportunities ≥ 1, got %d, %d", stations, opportunitiesPer)
	}
	// Setup: 1 puts caller units in multiples of the setup cost c;
	// TicksPerSetup: cfg.C keeps the grid at the repo-wide resolution.
	base := fleet.Fixed{Lifespan: 40, Interrupts: 2}

	run := func(o fleet.Owner, pol fleet.Policy) (fleet.Result, error) {
		f, err := fleet.New(fleet.Config{
			Stations:      stations,
			Setup:         1,
			TicksPerSetup: int(cfg.C),
			Opportunities: opportunitiesPer,
			Owners:        []fleet.Owner{o},
			Policy:        pol,
			Seed:          cfg.Seed,
			Workers:       cfg.Workers,
		})
		if err != nil {
			return fleet.Result{}, err
		}
		return f.Run(context.Background(), fleet.Job{})
	}

	// Record the poisson world once, under the default equalized policy;
	// every row's "trace" cell replays this same interrupt history.
	rec := trace.NewRecorder()
	recFleet, err := fleet.New(fleet.Config{
		Stations:      stations,
		Setup:         1,
		TicksPerSetup: int(cfg.C),
		Opportunities: opportunitiesPer,
		Owners:        []fleet.Owner{fleet.Poisson{Base: base}},
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
		Record:        rec,
	})
	if err != nil {
		return nil, err
	}
	if _, err := recFleet.Run(context.Background(), fleet.Job{}); err != nil {
		return nil, err
	}
	tr := rec.Trace()

	t := tab.New(
		fmt.Sprintf("E13: owner worlds — utilization %% by policy × owner (%d stations, %d opportunities each, U = 40c, p = 2, c = %d ticks)",
			stations, opportunitiesPer, cfg.C),
		"policy", "benign %", "poisson %", "trace %", "greedy %", "minimax %",
	)
	for _, name := range []string{"equalized", "guideline", "nonadaptive", "single"} {
		pol, err := fleet.PolicyByName(name)
		if err != nil {
			return nil, err
		}
		worlds := []fleet.Owner{
			base, // Fixed alone never interrupts
			fleet.Poisson{Base: base},
			fleet.Replay{Trace: tr},
			fleet.Malicious{Base: base},
			fleet.Minimax{Base: base},
		}
		cells := make([]any, 0, len(worlds)+1)
		cells = append(cells, name)
		for _, o := range worlds {
			res, err := run(o, pol)
			if err != nil {
				return nil, err
			}
			cells = append(cells, 100*res.Utilization())
		}
		t.Row(cells...)
	}
	t.Note("offered lifespan is identical in every cell (Fixed base contract), so utilization %% compares directly")
	t.Note("trace = replay of the poisson world's interrupts recorded under the equalized policy (%d opportunities, %d interrupts)",
		len(tr.Opportunities), countInterrupts(tr))
	t.Note("minimax = exact best-response adversary from the game value tables — the guaranteed-output floor of each policy")
	return t, nil
}

// countInterrupts totals the interrupt offsets across a trace.
func countInterrupts(tr *trace.Trace) int {
	n := 0
	for i := range tr.Opportunities {
		n += len(tr.Opportunities[i].Interrupts)
	}
	return n
}
