package experiments

import (
	"context"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/mc"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/stats"
)

func TestGuaranteedVsExpectedRejectsBadTrials(t *testing.T) {
	if _, err := GuaranteedVsExpected(smallCfg(), 100*20, 2, 0); err == nil {
		t.Error("trials=0 accepted; the old code silently clamped to 100")
	}
	if _, err := GuaranteedVsExpected(smallCfg(), 100*20, 2, -5); err == nil {
		t.Error("negative trials accepted")
	}
	if _, err := FarmStudy(smallCfg(), 4, 3, 100, 0); err == nil {
		t.Error("E11 trials=0 accepted")
	}
}

// TestGuaranteedVsExpectedDeterministicAcrossWorkers is the table-level form
// of the mc seed-stream contract: the rendered E8 table must be bit-identical
// at every worker count for a fixed seed.
func TestGuaranteedVsExpectedDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallCfg()
	render := func(workers int) string {
		c := Config{C: cfg.C, Seed: cfg.Seed, Workers: workers}
		tb, err := GuaranteedVsExpected(c, 150*cfg.C, 2, 40)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Render()
	}
	base := render(1)
	for _, w := range []int{2, 8, 0} {
		if got := render(w); got != base {
			t.Errorf("workers=%d: E8 table differs from the serial run\n--- serial ---\n%s\n--- workers=%d ---\n%s", w, base, w, got)
		}
	}
}

// TestE8RegressionAgainstSerialLoop pins the refactor: the engine-backed E8
// means must agree with the pre-refactor serial trial loop (one shared rng
// across trials) within overlapping 95% confidence bounds — the loops walk
// different random streams, so only the distributions, not the draws, can
// be compared.
func TestE8RegressionAgainstSerialLoop(t *testing.T) {
	cfg := smallCfg()
	c := cfg.C
	U := 150 * c
	p := 2
	trials := 120
	lambda := 3.0 / float64(U)

	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		t.Fatal(err)
	}

	// The old implementation, verbatim in miniature: one rng shared by every
	// trial, values collected into a slice.
	oldLoop := func(seed int64) stats.Summary {
		rng := rand.New(rand.NewSource(seed))
		works := make([]float64, 0, trials)
		for i := 0; i < trials; i++ {
			adv := &adversary.Poisson{Rng: rng, Mean: 1 / lambda}
			res, err := sim.Run(eq, adv, sim.Opportunity{U: U, P: p, C: c}, sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			works = append(works, float64(res.Work))
		}
		return stats.Summarize(works)
	}

	oldSum := oldLoop(cfg.Seed)
	newSum, err := monteCarlo(eq, U, p, c, trials, func(rng *rand.Rand) sim.Interrupter {
		return &adversary.Poisson{Rng: rng, Mean: 1 / lambda}
	}, cfg.Seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if newSum.N != oldSum.N {
		t.Fatalf("trial counts differ: %d vs %d", newSum.N, oldSum.N)
	}
	if diff := math.Abs(newSum.Mean - oldSum.Mean); diff > 1.96*(newSum.SE+oldSum.SE) {
		t.Errorf("E8 mean moved outside CI bounds after the refactor: old %v ± %v, new %v ± %v",
			oldSum.Mean, 1.96*oldSum.SE, newSum.Mean, 1.96*newSum.SE)
	}
}

// TestE8FloorInvariant re-checks the paper's core inequality on the
// refactored path: no observed Monte-Carlo run may fall below the minimax
// floor of its scheduler.
func TestE8FloorInvariant(t *testing.T) {
	cfg := smallCfg()
	tb, err := GuaranteedVsExpected(cfg, 200*cfg.C, 2, 80)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		g, err1 := strconv.ParseFloat(row[1], 64)
		minObs, err2 := strconv.ParseFloat(row[6], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad cells in row %v", row)
		}
		if minObs < g-1e-9 {
			t.Errorf("%s: min observed %g below guaranteed floor %g", row[0], minObs, g)
		}
	}
}

func TestFarmStudyDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallCfg()
	render := func(workers int) string {
		c := Config{C: cfg.C, Seed: cfg.Seed, Workers: workers}
		tb, err := FarmStudy(c, 4, 3, 2000, 4)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Render()
	}
	if a, b := render(1), render(8); a != b {
		t.Errorf("E11 table depends on worker count:\n--- serial ---\n%s\n--- workers=8 ---\n%s", a, b)
	}
}

func TestAblationReplication(t *testing.T) {
	cfg := smallCfg()
	tb, err := AblationReplication(cfg, 100*cfg.C, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[4] != "true" {
			t.Errorf("workers=%s: summary not identical to serial", row[0])
		}
	}
}

func TestFleetScaleDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallCfg()
	render := func(workers int) string {
		c := Config{C: cfg.C, Seed: cfg.Seed, Workers: workers}
		tb, err := FleetScale(c, []int{5, 40}, 3, 20, 2)
		if err != nil {
			t.Fatal(err)
		}
		// The wall-clock column is the one column allowed to vary; blank it.
		for _, row := range tb.Rows {
			row[len(row)-1] = "-"
		}
		return tb.Render()
	}
	if a, b := render(1), render(8); a != b {
		t.Errorf("E12 table depends on worker count:\n--- serial ---\n%s\n--- workers=8 ---\n%s", a, b)
	}
}

func TestFleetScaleRejectsBadShapes(t *testing.T) {
	if _, err := FleetScale(smallCfg(), []int{4}, 3, 10, 0); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := FleetScale(smallCfg(), nil, 3, 10, 2); err == nil {
		t.Error("empty fleet list accepted")
	}
	if _, err := FleetScale(smallCfg(), []int{0}, 3, 10, 2); err == nil {
		t.Error("zero-station fleet accepted")
	}
}

// TestConfigTrialsOverride pins the cstealtables -trials plumbing: a Config
// with Trials set must change the registry experiments' replication counts.
func TestConfigTrialsOverride(t *testing.T) {
	cfg := Config{C: 20, Seed: 1, Trials: 7}
	if got := cfg.trialsOr(300); got != 7 {
		t.Fatalf("trialsOr ignored the override: %d", got)
	}
	if got := (Config{}).trialsOr(300); got != 300 {
		t.Fatalf("default trials: %d", got)
	}
	e, err := Lookup("fleetscale")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fleetscale" {
		t.Fatalf("registry lookup: %+v", e)
	}
}

// TestParallelSpeedupFloor is E9d promoted from reporting to asserting: on a
// multi-core runner (env-gated so single-core local runs skip it) the
// replication engine must beat its own serial wall-clock by the factor in
// CYCLESTEAL_MIN_SPEEDUP on the E9d study shape.
func TestParallelSpeedupFloor(t *testing.T) {
	spec := os.Getenv("CYCLESTEAL_MIN_SPEEDUP")
	if spec == "" {
		t.Skip("set CYCLESTEAL_MIN_SPEEDUP=<factor> (multi-core CI) to assert the E9d speedup floor")
	}
	min, err := strconv.ParseFloat(spec, 64)
	if err != nil || min <= 0 {
		t.Fatalf("bad CYCLESTEAL_MIN_SPEEDUP %q: %v", spec, err)
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-core machine cannot exhibit a parallel speedup")
	}

	cfg := DefaultConfig()
	c := cfg.C
	U := 300 * c
	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(U) / 3
	study := func(workers int) time.Duration {
		start := time.Now()
		if _, err := monteCarlo(eq, U, 2, c, 2000, func(rng *rand.Rand) sim.Interrupter {
			return &adversary.Poisson{Rng: rng, Mean: mean}
		}, cfg.Seed, workers); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Best of three per variant: CI runners are noisy, and the contract is
	// about capability, not a single draw.
	best := func(workers int) time.Duration {
		b := study(workers)
		for i := 0; i < 2; i++ {
			if d := study(workers); d < b {
				b = d
			}
		}
		return b
	}
	serial, parallel := best(1), best(0)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, parallel %v: speedup %.2f× on %d cores (floor %.2f×)",
		serial, parallel, speedup, runtime.GOMAXPROCS(0), min)
	if speedup < min {
		t.Errorf("parallel speedup %.2f× below the asserted floor %.2f×", speedup, min)
	}
}

// TestMonteCarloTrialAllocationFree pins satellite claim of the per-worker
// state hook: with the scratch warm, the opportunity itself allocates
// nothing — a replicated E8 trial pays only for its rng and interrupter.
func TestMonteCarloTrialAllocationFree(t *testing.T) {
	cfg := smallCfg()
	c := cfg.C
	U := 150 * c
	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		t.Fatal(err)
	}
	scr := newTrialScratch().(*trialScratch)
	var adv sim.Interrupter = adversary.Periodic{U: U, Every: U / 5}
	trial := func() {
		res, err := sim.Run(scr.memo.Bind(eq), adv, sim.Opportunity{U: U, P: 2, C: c}, sim.Config{Buffers: &scr.bufs})
		if err != nil {
			t.Fatal(err)
		}
		if res.Work == 0 {
			t.Fatal("trial banked nothing")
		}
	}
	trial() // warm the episode memo and buffers
	trial()
	if allocs := testing.AllocsPerRun(200, trial); allocs != 0 {
		t.Errorf("warm E8-style trial allocates %.1f times per run, want 0", allocs)
	}
}

// e8BenchShape is the replication the BenchmarkMCE8* pair replays: the E9d
// study shape on one worker, so allocs/op is deterministic and CI can gate
// it exactly.
func e8BenchShape(b *testing.B, scratch bool) {
	b.Helper()
	cfg := DefaultConfig()
	c := cfg.C
	U := 150 * c
	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		b.Fatal(err)
	}
	mean := float64(U) / 3
	mk := func(rng *rand.Rand) sim.Interrupter {
		return &adversary.Poisson{Rng: rng, Mean: mean}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum stats.Summary
		var err error
		if scratch {
			sum, err = monteCarlo(eq, U, 2, c, 1000, mk, cfg.Seed, 1)
		} else {
			sum, err = mc.Run(context.Background(), mc.Config{Trials: 1000, Seed: cfg.Seed, Workers: 1},
				func(rng *rand.Rand) (float64, error) {
					res, err := sim.Run(eq, mk(rng), sim.Opportunity{U: U, P: 2, C: c}, sim.Config{})
					if err != nil {
						return 0, err
					}
					return float64(res.Work), nil
				})
		}
		if err != nil {
			b.Fatal(err)
		}
		if sum.N != 1000 {
			b.Fatal("short study")
		}
	}
}

// BenchmarkMCE8TrialScratch replicates E8 through the per-worker scratch
// hook (the shipped path): episodes come from the warm memo, periods ship
// through reused buffers.
func BenchmarkMCE8TrialScratch(b *testing.B) { e8BenchShape(b, true) }

// BenchmarkMCE8TrialCold is the same study without the hook — every trial
// rebuilds episodes and shipping buffers. The allocs/op gap is the value of
// mc's per-worker state.
func BenchmarkMCE8TrialCold(b *testing.B) { e8BenchShape(b, false) }
