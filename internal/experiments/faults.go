package experiments

import (
	"context"
	"fmt"

	"cyclesteal/fleet"
	"cyclesteal/internal/tab"
)

// FaultStudy is experiment E16: the faulted-farm study behind the fault
// injection extension. A two-cluster fleet with the E14 supply skew (a
// strong half that drains its own shards and must steal across the priced
// cluster boundary) works a shared job while a fault plan crashes stations:
// a crash destroys the station's in-flight work — and, when it orphans a
// whole steal group, the group's queued tasks — unlike churn's graceful
// drain-back. Cross-cluster parcels are lossy at half the crash rate, so
// the steal-retry policy matters: a thief that retries a timed-out crossing
// recovers throughput a degrade-immediately thief gives up.
//
// Rows sweep the recovery machinery — draconian vs checkpointed contracts
// (split save/restart costs) × the steal-retry cap — and columns sweep the
// crash rate. Three claims to read off the grid: completion falls
// monotonically in the crash rate along every row, the crash-free column
// pins the fault-free baseline bit-identically (an inactive plan costs
// nothing), and checkpointing buys back more of the loss the faultier the
// fleet gets.
//
// Every cell runs RunDeterministic per trial (Replicate rejects fault
// plans: a plan names one faulted run, not a distribution), with seeds
// shared across columns so a row compares identical interrupt histories
// under increasing fault pressure; the table is bit-identical at any
// cfg.Workers.
func FaultStudy(cfg Config, stations int, crashRates []float64, retries []int, trials int) (*tab.Table, error) {
	cfg = cfg.normalize()
	if trials < 1 {
		return nil, fmt.Errorf("experiments: E16 needs trials ≥ 1, got %d", trials)
	}
	if stations < 4 || stations%4 != 0 {
		return nil, fmt.Errorf("experiments: E16 needs stations a positive multiple of 4 (two clusters over four shards), got %d", stations)
	}
	if len(crashRates) == 0 || len(retries) == 0 {
		return nil, fmt.Errorf("experiments: E16 needs at least one crash rate and one retry cap")
	}

	cols := []string{"contract", "retries"}
	for _, q := range crashRates {
		cols = append(cols, fmt.Sprintf("crash %g%%", 100*q))
	}
	t := tab.New(
		fmt.Sprintf("E16: faulted farm — completion %% vs station crash rate × steal retries × checkpoint cost (2 clusters, %d stations, %d tasks × 2 units, %d trials)",
			stations, stations*12, trials),
		cols...,
	)

	cell := func(row, retry int, checkpoint, saveCost, restartCost, rate float64) (float64, error) {
		if rate < 0 || rate >= 1 {
			return 0, fmt.Errorf("experiments: E16 crash rate %g must be in [0, 1)", rate)
		}
		if retry < 0 {
			return 0, fmt.Errorf("experiments: E16 retry cap %d must be ≥ 0", retry)
		}
		var sum float64
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + int64(row)<<32 + int64(trial)<<16
			f, err := fleet.New(fleet.Config{
				Stations:      stations,
				Setup:         1,
				TicksPerSetup: int(cfg.C),
				// The E14 skew, cluster-aligned: stations i%4 ∈ {0,1} strong.
				Owners: []fleet.Owner{
					fleet.Fixed{Lifespan: 8}, fleet.Fixed{Lifespan: 8},
					fleet.Fixed{Lifespan: 3}, fleet.Fixed{Lifespan: 3},
				},
				Policy:                fleet.Policy{Name: "single"},
				Opportunities:         20,
				Shards:                4,
				Clusters:              2,
				StealLatency:          4,
				Checkpoint:            checkpoint,
				CheckpointSaveCost:    saveCost,
				CheckpointRestartCost: restartCost,
				Seed:                  seed,
				Workers:               cfg.Workers,
				Faults: fleet.FaultPlan{
					Seed:         seed + 1,
					CrashProb:    rate,
					LossProb:     rate / 2,
					StealRetries: retry,
				},
			})
			if err != nil {
				return 0, err
			}
			res, err := f.RunDeterministic(context.Background(), fleet.Job{Tasks: fleet.FixedTasks(stations*12, 2)})
			if err != nil {
				return 0, err
			}
			sum += res.CompletionFraction()
		}
		return 100 * sum / float64(trials), nil
	}

	row := 0
	addRow := func(label string, retry int, checkpoint, saveCost, restartCost float64) error {
		vals := []any{label, retry}
		for _, q := range crashRates {
			v, err := cell(row, retry, checkpoint, saveCost, restartCost, q)
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
		row++
		t.Row(vals...)
		return nil
	}
	for _, retry := range retries {
		if err := addRow("draconian", retry, 0, 0, 0); err != nil {
			return nil, err
		}
	}
	for _, retry := range retries {
		if err := addRow("ckpt 4 (s=0.5, r=1)", retry, 4, 0.5, 1); err != nil {
			return nil, err
		}
	}

	t.Note("crash q %% means each live station crashes with probability q per round (lost work, not a drain-back) and a cross-cluster parcel is lost in transit with probability q/2")
	t.Note("retries caps the exponential-backoff resends of a lost crossing before the thief degrades to intra-cluster stealing; the crash-free column is bit-identical to a fleet with no fault plan")
	t.Note("ckpt rows checkpoint every 4 units with a 0.5-unit save and a 1-unit restart after each kill — the split-cost Young/Daly contract of the fault extension")
	return t, nil
}
