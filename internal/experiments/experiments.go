// Package experiments regenerates every evaluation artifact of the paper —
// Table 1, Table 2, and the quantitative claims of §3.1, §5.1–5.2 and
// Prop. 4.1 — plus the ablations DESIGN.md commits to. Each driver returns a
// tab.Table; cmd/cstealtables prints them and bench_test.go wraps them as
// benchmarks. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"

	"cyclesteal/internal/quant"
	"cyclesteal/internal/tab"
)

// Config carries the grid parameters shared by all experiments. Times are in
// ticks; C is both the setup cost and the grid resolution (c ticks per setup
// cost — the natural unit of the model, in which every result is a function
// of U/c and p).
type Config struct {
	C    quant.Tick // setup cost in ticks (default 100)
	Seed int64      // base seed for Monte-Carlo experiments (per-trial streams derive from it; see internal/mc)
	// Workers bounds the Monte-Carlo worker pool (0 = GOMAXPROCS). By the
	// internal/mc seed-stream contract it affects wall-clock time only,
	// never a table value.
	Workers int
	// Trials overrides every replicated experiment's default trial count
	// when > 0 (cstealtables -trials). By mc prefix stability, raising it
	// widens each study without rebasing the trials already summarized.
	Trials int
	// Fleets overrides the fleet-size list of the fleet-sweep experiments —
	// E12 and E14 — when non-empty (cstealtables -fleets). One row (E12) or
	// row group (E14) per entry, in the given order.
	Fleets []int
}

// DefaultConfig returns the configuration used throughout EXPERIMENTS.md.
func DefaultConfig() Config { return Config{C: 100, Seed: 1} }

func (c Config) normalize() Config {
	if c.C < 1 {
		c.C = 100
	}
	return c
}

// trialsOr returns the experiment's default trial count unless the user
// overrode it (Config.Trials > 0).
func (c Config) trialsOr(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	return def
}

// fleetsOr returns the experiment's default fleet-size list unless the user
// overrode it (Config.Fleets non-empty).
func (c Config) fleetsOr(def []int) []int {
	if len(c.Fleets) > 0 {
		return c.Fleets
	}
	return def
}

// Experiment pairs an identifier with its driver, for the CLI registry.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*tab.Table, error)
}

// All returns every experiment in DESIGN.md order, with default shapes.
func All() []Experiment {
	return []Experiment{
		{"table1", "E1: Table 1 — consequences of the adversary's options", func(c Config) (*tab.Table, error) {
			return Table1(c, 2000*c.normalize().C, 2)
		}},
		{"table2", "E2: Table 2 — parameter values for p = 1", func(c Config) (*tab.Table, error) {
			return Table2(c, []quant.Tick{100, 1000, 10000, 30000})
		}},
		{"nonadaptive", "E3: §3.1 — non-adaptive guideline analysis", func(c Config) (*tab.Table, error) {
			return NonAdaptiveAnalysis(c, []int{1, 2, 4, 8}, []quant.Tick{100, 1000, 10000, 100000})
		}},
		{"equalization", "E4: Thm 5.1 — adaptive deficits and the K_p recursion", func(c Config) (*tab.Table, error) {
			return EqualizationStudy(c, 6, []quant.Tick{1000, 10000})
		}},
		{"optgap", "E5: §5.2 — optimality gaps at p = 1", func(c Config) (*tab.Table, error) {
			return OptimalityGap(c, []quant.Tick{100, 1000, 10000, 30000})
		}},
		{"prop41", "E6: Prop 4.1 — value-table properties", func(c Config) (*tab.Table, error) {
			return Prop41Grid(c, 4, 500*c.normalize().C)
		}},
		{"structure", "E7: Thm 4.2 / Obs (a) — optimal schedule structure", func(c Config) (*tab.Table, error) {
			return OptimalStructure(c, 1000*c.normalize().C)
		}},
		{"guarexp", "E8: guaranteed vs expected output", func(c Config) (*tab.Table, error) {
			return GuaranteedVsExpected(c, 500*c.normalize().C, 2, c.trialsOr(300))
		}},
		{"ablation-quantum", "E9a: ablation — grid resolution", func(c Config) (*tab.Table, error) {
			return AblationQuantum(c, []quant.Tick{10, 30, 100, 300}, 1000)
		}},
		{"ablation-guideline", "E9b: ablation — §3.2 design choices", func(c Config) (*tab.Table, error) {
			return AblationGuideline(c, []int{1, 2, 3}, 2000*c.normalize().C)
		}},
		{"ablation-solver", "E9c: ablation — fast vs reference solver", func(c Config) (*tab.Table, error) {
			return AblationSolver(c, []quant.Tick{200, 400, 800})
		}},
		{"ablation-mc", "E9d: ablation — replication engine determinism and scaling", func(c Config) (*tab.Table, error) {
			return AblationReplication(c, 300*c.normalize().C, c.trialsOr(2000))
		}},
		{"tasks", "E10: task granularity — fluid vs packed work", func(c Config) (*tab.Table, error) {
			cc := c.normalize().C
			return TaskGranularity(c, 1000*cc, []quant.Tick{1, cc / 10, cc, 10 * cc, 30 * cc})
		}},
		{"farm", "E11: one shared job across the NOW (extension)", func(c Config) (*tab.Table, error) {
			// Job sized to slightly exceed the fleet's effective capacity so
			// completion fraction differentiates the policies.
			return FarmStudy(c, 12, 30, 50000, c.trialsOr(5))
		}},
		{"fleetscale", "E12: fleet-scale farm — completion, imbalance and engine wall-clock vs fleet size (extension)", func(c Config) (*tab.Table, error) {
			return FleetScale(c, c.fleetsOr([]int{10, 50, 250, 1000, 5000}), 6, 400, c.trialsOr(3))
		}},
		{"owners", "E13: owner worlds — synthetic vs trace-replay vs adversarial owners, public facade only (extension)", func(c Config) (*tab.Table, error) {
			return OwnerWorlds(c, 6, 8)
		}},
		{"topology", "E14: two-tier topology — completion vs cross-cluster steal latency (arXiv:1805.00857 extension)", func(c Config) (*tab.Table, error) {
			return TopologyStudy(c, c.fleetsOr([]int{100, 1000, 5000}), []quant.Tick{0, 2, 8, 32}, 20, 12, c.trialsOr(3))
		}},
		{"resident", "E15: resident service — completion vs checkpoint interval × station churn (extension)", func(c Config) (*tab.Table, error) {
			return ResidentService(c, 24, 10, 170, []float64{2, 10, 20}, []float64{0, 0.02, 0.08}, []float64{0.25, 4}, c.trialsOr(3))
		}},
		{"faults", "E16: faulted farm — guaranteed output vs station crash rate × steal retries × checkpoint cost (extension)", func(c Config) (*tab.Table, error) {
			return FaultStudy(c, 24, []float64{0, 0.01, 0.05}, []int{1, 4}, c.trialsOr(3))
		}},
		{"distrib", "E17: distributed replication — one study merged from wire-protocol workers, bit-identity asserted (extension)", func(c Config) (*tab.Table, error) {
			return DistribStudy(c, 8, 4, c.trialsOr(64), []int{1, 4, 16})
		}},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// ticksPerC renders a tick quantity in units of the setup cost c, the
// natural unit for cross-resolution comparison.
func inC(x quant.Tick, c quant.Tick) float64 { return float64(x) / float64(c) }

// inCf is inC for quantities that are already float averages (Monte-Carlo
// means of tick metrics).
func inCf(x float64, c quant.Tick) float64 { return x / float64(c) }
