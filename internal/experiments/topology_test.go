package experiments

import (
	"strconv"
	"testing"

	"cyclesteal/internal/quant"
)

// E14's qualitative claim (arXiv:1805.00857): at a fixed fleet, completion
// degrades monotonically as the cross-cluster steal latency grows, and the
// endpoint gap is strict — pricing the crossing at 32 ticks must cost real
// completion against the free-crossing baseline.
func TestTopologyStudyShape(t *testing.T) {
	latencies := []quant.Tick{0, 2, 8, 32}
	tb, err := TopologyStudy(smallCfg(), []int{16, 32}, latencies, 20, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2*len(latencies) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), 2*len(latencies))
	}
	cell := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("bad cell %q in row %v", row[col], row)
		}
		return v
	}
	for g := 0; g < 2; g++ {
		rows := tb.Rows[g*len(latencies) : (g+1)*len(latencies)]
		fleet := rows[0][0]
		prev := cell(rows[0], 3) // completion % at latency 0
		free := prev
		for _, row := range rows[1:] {
			c := cell(row, 3)
			// Monotone non-increasing, with a hair of slack for replication
			// noise between adjacent latencies.
			if c > prev+0.5 {
				t.Errorf("fleet %s: completion rose from %.3f%% to %.3f%% at latency %s", fleet, prev, c, row[1])
			}
			prev = c
		}
		if last := cell(rows[len(rows)-1], 3); last >= free {
			t.Errorf("fleet %s: latency 32 completion %.3f%% not strictly below latency 0's %.3f%%", fleet, last, free)
		}
		if steals := cell(rows[len(rows)-1], 6); steals == 0 {
			t.Errorf("fleet %s: priced run never stole; the skew scenario is broken", fleet)
		}
	}
}

func TestTopologyStudyDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallCfg()
	render := func(workers int) string {
		c := Config{C: cfg.C, Seed: cfg.Seed, Workers: workers}
		tb, err := TopologyStudy(c, []int{16}, []quant.Tick{0, 8}, 15, 10, 2)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Render()
	}
	if a, b := render(1), render(8); a != b {
		t.Errorf("E14 table depends on worker count:\n--- serial ---\n%s\n--- workers=8 ---\n%s", a, b)
	}
}

func TestTopologyStudyRejectsBadShapes(t *testing.T) {
	lat := []quant.Tick{0, 8}
	if _, err := TopologyStudy(smallCfg(), []int{16}, lat, 10, 10, 0); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := TopologyStudy(smallCfg(), nil, lat, 10, 10, 2); err == nil {
		t.Error("empty fleet list accepted")
	}
	if _, err := TopologyStudy(smallCfg(), []int{16}, nil, 10, 10, 2); err == nil {
		t.Error("empty latency list accepted")
	}
	if _, err := TopologyStudy(smallCfg(), []int{6}, lat, 10, 10, 2); err == nil {
		t.Error("fleet size 6 (not a multiple of 4) accepted")
	}
	if _, err := TopologyStudy(smallCfg(), []int{16}, []quant.Tick{-1}, 10, 10, 2); err == nil {
		t.Error("negative latency accepted")
	}
}
