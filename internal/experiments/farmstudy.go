package experiments

import (
	"fmt"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/model"
	"cyclesteal/internal/now"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/tab"
	"cyclesteal/internal/task"
)

// FarmStudy is experiment E11 (an extension beyond the paper's single-
// workstation analysis): one shared data-parallel job farmed across a NOW,
// comparing period-sizing policies by job completion, lifespan destroyed by
// kills, and load balance. It closes the loop on the paper's title — the
// per-opportunity guarantees of §3–5 compose into fleet-level throughput.
func FarmStudy(cfg Config, stations, opportunitiesPer int, jobTasks int) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C

	fleet := make([]now.Workstation, stations)
	for i := range fleet {
		switch i % 3 {
		case 0:
			fleet[i] = now.Workstation{ID: i, Owner: now.Office{MeanIdle: 250 * c, MaxP: 2}, Setup: c}
		case 1:
			fleet[i] = now.Workstation{ID: i, Owner: now.Laptop{MeanIdle: 100 * c}, Setup: c}
		default:
			fleet[i] = now.Workstation{ID: i, Owner: now.Overnight{Window: 400 * c}, Setup: c}
		}
	}
	job := farm.Job{Tasks: task.Exponential(jobTasks, float64(2*c), cfg.Seed)}

	policies := []struct {
		name    string
		factory now.SchedulerFactory
	}{
		{"single-period", func(ws now.Workstation, ct now.Contract) (model.EpisodeScheduler, error) {
			return sched.SinglePeriod{}, nil
		}},
		{"fixed-chunk 25c", func(ws now.Workstation, ct now.Contract) (model.EpisodeScheduler, error) {
			return sched.FixedChunk{T: 25 * ws.Setup}, nil
		}},
		{"non-adaptive §3.1", func(ws now.Workstation, ct now.Contract) (model.EpisodeScheduler, error) {
			return sched.NewNonAdaptive(ct.U, ct.P, ws.Setup)
		}},
		{"adaptive equalized", func(ws now.Workstation, ct now.Contract) (model.EpisodeScheduler, error) {
			return sched.NewAdaptiveEqualized(ws.Setup)
		}},
	}

	t := tab.New(
		fmt.Sprintf("E11: shared job across a NOW (%d stations, %d tasks ≈ %s·c of work, c = %d ticks)",
			stations, jobTasks, tab.FormatFloat(inC(job.TotalWork(), c)), c),
		"policy", "tasks done", "completion %", "killed/c", "interrupts", "imbalance",
	)
	for _, p := range policies {
		f := farm.Farm{Stations: fleet, OpportunitiesPerStation: opportunitiesPer}
		res, err := f.Run(job, p.factory, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var killed quant.Tick
		for _, s := range res.Stations {
			killed += s.KilledTicks
		}
		t.Row(p.name,
			res.TasksCompleted,
			100*res.CompletionFraction(job),
			inC(killed, c),
			res.Interrupts,
			res.Imbalance(),
		)
	}
	t.Note("killed/c = borrowed lifespan destroyed by draconian interrupts, in setup-cost units")
	t.Note("against stochastic owners the period-sized policies tie within ~1%% while the single period forfeits whole visits;")
	t.Note("the adaptive schedule's distinguishing edge is its worst-case floor (E4/E5), bought at no expected-throughput cost (E8)")
	return t, nil
}
