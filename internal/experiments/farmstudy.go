package experiments

import (
	"context"
	"fmt"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/mc"
	"cyclesteal/internal/model"
	"cyclesteal/internal/now"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/tab"
	"cyclesteal/internal/task"
)

// FarmStudy is experiment E11 (an extension beyond the paper's single-
// workstation analysis): one shared data-parallel job farmed across a NOW,
// comparing period-sizing policies by job completion, lifespan destroyed by
// kills, and load balance. It closes the loop on the paper's title — the
// per-opportunity guarantees of §3–5 compose into fleet-level throughput.
//
// Each policy is replicated trials times on the internal/mc engine (one
// whole farmed job per trial, over independent owner randomness), so the
// reported numbers are means with confidence intervals rather than one
// draw, and are bit-identical for a fixed cfg.Seed at any cfg.Workers.
func FarmStudy(cfg Config, stations, opportunitiesPer int, jobTasks int, trials int) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	if trials < 1 {
		return nil, fmt.Errorf("experiments: E11 needs trials ≥ 1, got %d", trials)
	}

	fleet := now.MixedFleet(stations, c)
	job := farm.Job{Tasks: task.Exponential(jobTasks, float64(2*c), cfg.Seed)}

	policies := []struct {
		name    string
		factory now.SchedulerFactory
	}{
		{"single-period", func(ws now.Workstation, ct now.Contract) (model.EpisodeScheduler, error) {
			return sched.SinglePeriod{}, nil
		}},
		{"fixed-chunk 25c", func(ws now.Workstation, ct now.Contract) (model.EpisodeScheduler, error) {
			return sched.FixedChunk{T: 25 * ws.Setup}, nil
		}},
		{"non-adaptive §3.1", func(ws now.Workstation, ct now.Contract) (model.EpisodeScheduler, error) {
			return sched.NewNonAdaptive(ct.U, ct.P, ws.Setup)
		}},
		{"adaptive equalized", func(ws now.Workstation, ct now.Contract) (model.EpisodeScheduler, error) {
			return sched.NewAdaptiveEqualized(ws.Setup)
		}},
	}

	t := tab.New(
		fmt.Sprintf("E11: shared job across a NOW (%d stations, %d tasks ≈ %s·c of work, c = %d ticks, %d trials)",
			stations, jobTasks, tab.FormatFloat(inC(job.TotalWork(), c)), c, trials),
		"policy", "tasks done", "completion %", "±95%", "killed/c", "interrupts", "imbalance",
	)
	for i, p := range policies {
		f := farm.Farm{Stations: fleet, OpportunitiesPerStation: opportunitiesPer}
		// Disjoint seed-stream ranges per policy. The stride is independent
		// of the trial count so widening trials extends each policy's
		// existing stream instead of rebasing it (mc prefix stability).
		sums, err := f.Replicate(context.Background(), job, p.factory, mc.Config{
			Trials:  trials,
			Seed:    cfg.Seed + int64(i)<<32,
			Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		completion := sums[farm.MetricCompletionFrac]
		t.Row(p.name,
			sums[farm.MetricTasksCompleted].Mean,
			100*completion.Mean,
			100*stats.TCritical95(completion.N-1)*completion.SE,
			inCf(sums[farm.MetricKilledTicks].Mean, c),
			sums[farm.MetricInterrupts].Mean,
			sums[farm.MetricImbalance].Mean,
		)
	}
	t.Note("killed/c = borrowed lifespan destroyed by draconian interrupts, in setup-cost units; all cells are means over %d replications", trials)
	t.Note("against stochastic owners the period-sized policies tie within ~1%% while the single period forfeits whole visits;")
	t.Note("the adaptive schedule's distinguishing edge is its worst-case floor (E4/E5), bought at no expected-throughput cost (E8)")
	return t, nil
}
