package experiments

import (
	"fmt"
	"math/rand"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/expect"
	"cyclesteal/internal/game"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/tab"
)

// GuaranteedVsExpected is experiment E8: the two submodels side by side. Each
// scheduler is scored on (a) its guaranteed output against the minimax
// adversary and (b) its Monte-Carlo mean against benign stochastic owners.
// The guaranteed-output schedules give up a little expected yield to buy a
// dramatically better floor; the expected-optimal schedule (companion
// submodel, internal/expect) and the single long period are fragile.
func GuaranteedVsExpected(cfg Config, U quant.Tick, p int, trials int) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	if trials < 1 {
		trials = 100
	}
	lambda := 3.0 / float64(U) // mean owner return ≈ U/3

	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		return nil, err
	}
	ag, err := sched.NewAdaptiveGuideline(c)
	if err != nil {
		return nil, err
	}
	na, err := sched.NewNonAdaptive(U, p, c)
	if err != nil {
		return nil, err
	}
	es, err := expect.SolveExpected(U, c, lambda)
	if err != nil {
		return nil, err
	}
	schedulers := []model.EpisodeScheduler{
		eq, ag, na, es.Scheduler(), sched.SinglePeriod{}, sched.EqualSplit{M: 10},
	}

	t := tab.New(
		fmt.Sprintf("E8: guaranteed vs expected output (U/c = %s, p = %d, λ = 3/U, %d trials, c = %d ticks; units of c)",
			tab.FormatFloat(inC(U, c)), p, trials, c),
		"scheduler", "guaranteed", "mean vs poisson", "±95%", "mean vs random", "±95%", "min observed",
	)
	for _, s := range schedulers {
		guaranteed, err := game.Evaluate(s, p, U, c)
		if err != nil {
			return nil, err
		}
		poisson, err := monteCarlo(s, U, p, c, trials, func(rng *rand.Rand) sim.Interrupter {
			return &adversary.Poisson{Rng: rng, Mean: 1 / lambda}
		}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		random, err := monteCarlo(s, U, p, c, trials, func(rng *rand.Rand) sim.Interrupter {
			return &adversary.Random{Rng: rng, Prob: 0.7}
		}, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		minObs := poisson.Min
		if random.Min < minObs {
			minObs = random.Min
		}
		t.Row(model.NameOf(s),
			inC(guaranteed, c),
			poisson.Mean/float64(c), 1.96*poisson.SE/float64(c),
			random.Mean/float64(c), 1.96*random.SE/float64(c),
			minObs/float64(c),
		)
	}
	t.Note("guaranteed = exact minimax floor; means are Monte-Carlo over stochastic owners (draconian kills, opportunity continues after each interrupt)")
	t.Note("expected-optimal comes from the companion expected-output submodel (extension; see internal/expect)")
	return t, nil
}

func monteCarlo(s model.EpisodeScheduler, U quant.Tick, p int, c quant.Tick, trials int,
	mk func(*rand.Rand) sim.Interrupter, seed int64) (stats.Summary, error) {
	rng := rand.New(rand.NewSource(seed))
	works := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		adv := mk(rng)
		res, err := sim.Run(s, adv, sim.Opportunity{U: U, P: p, C: c}, sim.Config{})
		if err != nil {
			return stats.Summary{}, err
		}
		works = append(works, float64(res.Work))
	}
	return stats.Summarize(works), nil
}
