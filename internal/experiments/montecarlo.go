package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/expect"
	"cyclesteal/internal/game"
	"cyclesteal/internal/mc"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/tab"
)

// GuaranteedVsExpected is experiment E8: the two submodels side by side. Each
// scheduler is scored on (a) its guaranteed output against the minimax
// adversary and (b) its Monte-Carlo mean against benign stochastic owners.
// The guaranteed-output schedules give up a little expected yield to buy a
// dramatically better floor; the expected-optimal schedule (companion
// submodel, internal/expect) and the single long period are fragile.
//
// The Monte-Carlo columns run on the internal/mc replication engine: trial i
// of the Poisson study draws from seed stream cfg.Seed+i and the uniform-
// random study from the disjoint range starting at cfg.Seed+2³², so the
// table is a pure function of (cfg, U, p, trials) at any cfg.Workers, and
// widening trials extends both studies instead of rebasing them. All
// schedulers share the same adversary streams (common random numbers), which
// tightens the between-scheduler comparison.
func GuaranteedVsExpected(cfg Config, U quant.Tick, p int, trials int) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	if trials < 1 {
		return nil, fmt.Errorf("experiments: E8 needs trials ≥ 1, got %d", trials)
	}
	lambda := 3.0 / float64(U) // mean owner return ≈ U/3

	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		return nil, err
	}
	ag, err := sched.NewAdaptiveGuideline(c)
	if err != nil {
		return nil, err
	}
	na, err := sched.NewNonAdaptive(U, p, c)
	if err != nil {
		return nil, err
	}
	es, err := expect.SolveExpected(U, c, lambda)
	if err != nil {
		return nil, err
	}
	schedulers := []model.EpisodeScheduler{
		eq, ag, na, es.Scheduler(), sched.SinglePeriod{}, sched.EqualSplit{M: 10},
	}

	t := tab.New(
		fmt.Sprintf("E8: guaranteed vs expected output (U/c = %s, p = %d, λ = 3/U, %d trials, c = %d ticks; units of c)",
			tab.FormatFloat(inC(U, c)), p, trials, c),
		"scheduler", "guaranteed", "mean vs poisson", "±95%", "mean vs random", "±95%", "min observed",
	)
	for _, s := range schedulers {
		guaranteed, err := game.Evaluate(s, p, U, c)
		if err != nil {
			return nil, err
		}
		poisson, err := monteCarlo(s, U, p, c, trials, func(rng *rand.Rand) sim.Interrupter {
			return &adversary.Poisson{Rng: rng, Mean: 1 / lambda}
		}, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		random, err := monteCarlo(s, U, p, c, trials, func(rng *rand.Rand) sim.Interrupter {
			return &adversary.Random{Rng: rng, Prob: 0.7}
		}, cfg.Seed+1<<32, cfg.Workers)
		if err != nil {
			return nil, err
		}
		minObs := poisson.Min
		if random.Min < minObs {
			minObs = random.Min
		}
		tcrit := stats.TCritical95(trials - 1)
		t.Row(model.NameOf(s),
			inC(guaranteed, c),
			poisson.Mean/float64(c), tcrit*poisson.SE/float64(c),
			random.Mean/float64(c), tcrit*random.SE/float64(c),
			minObs/float64(c),
		)
	}
	t.Note("guaranteed = exact minimax floor; means are Monte-Carlo over stochastic owners (draconian kills, opportunity continues after each interrupt)")
	t.Note("expected-optimal comes from the companion expected-output submodel (extension; see internal/expect)")
	t.Note("Monte-Carlo trials run on internal/mc: deterministic per-trial seed streams, bit-identical at any worker count")
	return t, nil
}

// trialScratch is the per-worker reusable state an E8-style replication
// threads through its trials: the simulator's episode/task buffers plus an
// episode memo bound to the study's scheduler. With it warm, the opportunity
// itself allocates nothing (see TestMonteCarloTrialAllocationFree and
// BenchmarkMCE8Trial*) — each trial pays only for its rng and interrupter.
type trialScratch struct {
	bufs sim.Buffers
	memo *sched.Memo
}

// newTrialScratch is the mc.NewState hook monteCarlo installs.
func newTrialScratch() any {
	return &trialScratch{memo: sched.NewMemo(0)}
}

// monteCarlo replicates one (scheduler, owner) pairing on the mc engine:
// each trial builds a fresh interrupter from its private seed stream and
// plays one opportunity against its worker's warm scratch. The scratch is
// pure scratch — memoized episodes are exactly what the scheduler would
// emit, and the buffers only change where allocations happen — so the
// summaries are bit-identical with or without it.
func monteCarlo(s model.EpisodeScheduler, U quant.Tick, p int, c quant.Tick, trials int,
	mk func(*rand.Rand) sim.Interrupter, seed int64, workers int) (stats.Summary, error) {
	return mc.RunState(context.Background(), mc.Config{Trials: trials, Seed: seed, Workers: workers}, newTrialScratch,
		func(rng *rand.Rand, state any) (float64, error) {
			scr := state.(*trialScratch)
			res, err := sim.Run(scr.memo.Bind(s), mk(rng), sim.Opportunity{U: U, P: p, C: c}, sim.Config{Buffers: &scr.bufs})
			if err != nil {
				return 0, err
			}
			return float64(res.Work), nil
		})
}
