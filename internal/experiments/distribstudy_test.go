package experiments

import (
	"strconv"
	"testing"
)

func TestDistribStudyShape(t *testing.T) {
	tb, err := DistribStudy(smallCfg(), 5, 3, 40, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per worker count)", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if len(row) != 6 {
			t.Fatalf("row %v has %d cells, want 6", row, len(row))
		}
		if row[5] != "yes" {
			t.Errorf("row %v: bit-identical cell %q, want yes", row, row[5])
		}
		comp, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("row %v: bad completion cell %q", row, row[1])
		}
		if comp < 0 || comp > 100 {
			t.Errorf("row %v: completion %g%% out of range", row, comp)
		}
		// Location independence in the table itself: every worker count
		// prints the same numbers (the driver already DeepEqual-asserts
		// the full Replication; this pins the rendered cells too).
		for j := 1; j < 5; j++ {
			if row[j] != tb.Rows[0][j] {
				t.Errorf("row %d cell %d = %q differs from row 0's %q", i, j, row[j], tb.Rows[0][j])
			}
		}
	}
}

func TestDistribStudyDeterministic(t *testing.T) {
	a, err := DistribStudy(smallCfg(), 4, 2, 24, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistribStudy(smallCfg(), 4, 2, 24, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Error("E17 not deterministic across runs")
	}
}

func TestDistribStudyValidation(t *testing.T) {
	if _, err := DistribStudy(smallCfg(), 0, 1, 10, []int{1}); err == nil {
		t.Error("stations = 0 accepted")
	}
	if _, err := DistribStudy(smallCfg(), 4, 1, 0, []int{1}); err == nil {
		t.Error("trials = 0 accepted")
	}
	if _, err := DistribStudy(smallCfg(), 4, 1, 10, nil); err == nil {
		t.Error("empty worker counts accepted")
	}
	if _, err := DistribStudy(smallCfg(), 4, 1, 10, []int{0}); err == nil {
		t.Error("worker count 0 accepted")
	}
}
