package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"cyclesteal/internal/quant"
)

// smallCfg keeps experiment tests fast: 20 ticks per c.
func smallCfg() Config { return Config{C: 20, Seed: 1} }

func TestLookup(t *testing.T) {
	if _, err := Lookup("table1"); err != nil {
		t.Errorf("table1 missing: %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestTable1EqualizationAndValue(t *testing.T) {
	cfg := smallCfg()
	tb, err := Table1(cfg, 500*cfg.C, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatalf("too few rows: %d", len(tb.Rows))
	}
	// The notes must confirm min == game value.
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "equal: true") {
			found = true
		}
		if strings.Contains(n, "equal: false") {
			t.Fatalf("Table 1 minimum does not match the game value: %s", n)
		}
	}
	if !found {
		t.Error("no equality note emitted")
	}
	// Production column (last) is ≈ constant across interrupt rows
	// (equalization): spread within a few c of each other.
	var lo, hi float64
	first := true
	for _, row := range tb.Rows {
		if row[0] == "no interrupt" {
			continue
		}
		v, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("bad production cell %q", row[len(row)-1])
		}
		if first {
			lo, hi = v, v
			first = false
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 3 { // units of c
		t.Errorf("production column spreads %g c across interrupt options; equalization should keep it ≈ constant", hi-lo)
	}
}

func TestTable1RejectsP0(t *testing.T) {
	if _, err := Table1(smallCfg(), 1000, 0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestTable2Shape(t *testing.T) {
	tb, err := Table2(smallCfg(), []quant.Tick{100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	// 7 parameters per ratio.
	if len(tb.Rows) != 2*7 {
		t.Fatalf("rows = %d, want 14", len(tb.Rows))
	}
	// The deficit-coefficient rows must sit near 1 for the measured DP
	// optimum at the larger ratio.
	var coeffRow []string
	for _, row := range tb.Rows {
		if row[0] == "1000" && row[1] == "(U−W)/√(2cU)" {
			coeffRow = row
		}
	}
	if coeffRow == nil {
		t.Fatal("no deficit-coefficient row for ratio 1000")
	}
	v, err := strconv.ParseFloat(coeffRow[3], 64)
	if err != nil {
		t.Fatalf("bad coefficient cell %q", coeffRow[3])
	}
	if v < 0.9 || v > 1.2 {
		t.Errorf("measured p=1 deficit coefficient %g, want ≈ 1", v)
	}
}

func TestNonAdaptiveAnalysisAdjudicates(t *testing.T) {
	tb, err := NonAdaptiveAnalysis(smallCfg(), []int{1, 2}, []quant.Tick{1000, 10000, 100000})
	if err != nil {
		t.Fatal(err)
	}
	// The deficit must follow the √U law: exponent ≈ 0.5 in the fit notes.
	slopes := 0
	for _, n := range tb.Notes {
		var p int
		var slope, r2 float64
		if _, err := fmt.Sscanf(n, "p=%d: deficit scaling exponent %f (r²=%f)", &p, &slope, &r2); err == nil {
			slopes++
			if slope < 0.47 || slope > 0.53 {
				t.Errorf("p=%d: deficit exponent %g, want ≈ 0.5", p, slope)
			}
			if r2 < 0.999 {
				t.Errorf("p=%d: poor fit r²=%g", p, r2)
			}
		}
	}
	if slopes != 2 {
		t.Errorf("expected 2 scaling notes, found %d", slopes)
	}
	// In every row, the 2√(pcU) reading must fit better than √(2pcU).
	for _, row := range tb.Rows {
		err2, e1 := strconv.ParseFloat(row[6], 64)
		errRt, e2 := strconv.ParseFloat(row[7], 64)
		if e1 != nil || e2 != nil {
			t.Fatalf("bad error cells %v", row)
		}
		if err2 >= errRt {
			t.Errorf("row %v: recomputed form (err %g%%) should beat printed form (err %g%%)", row, err2, errRt)
		}
		if err2 > 5 {
			t.Errorf("row %v: recomputed form off by %g%% (> 5%%)", row, err2)
		}
	}
}

func TestEqualizationStudyTracksKp(t *testing.T) {
	tb, err := EqualizationStudy(smallCfg(), 4, []quant.Tick{10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		kp, _ := strconv.ParseFloat(row[2], 64)
		opt, _ := strconv.ParseFloat(row[4], 64)
		eq, _ := strconv.ParseFloat(row[5], 64)
		if opt > kp+0.15 || opt < kp-0.15 {
			t.Errorf("p=%s: DP coefficient %g strays from K_p %g", row[0], opt, kp)
		}
		if eq < opt-1e-9 {
			t.Errorf("p=%s: equalized coefficient %g below optimal %g (impossible)", row[0], eq, opt)
		}
		if eq > opt+0.2 {
			t.Errorf("p=%s: equalized coefficient %g far above optimal %g", row[0], eq, opt)
		}
	}
}

func TestOptimalityGapOrdering(t *testing.T) {
	tb, err := OptimalityGap(smallCfg(), []quant.Tick{1000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		wOpt, _ := strconv.ParseFloat(row[1], 64)
		gapCf, _ := strconv.ParseFloat(row[3], 64)
		gapEq, _ := strconv.ParseFloat(row[5], 64)
		gapNa, _ := strconv.ParseFloat(row[9], 64)
		single, _ := strconv.ParseFloat(row[10], 64)
		if gapCf < 0 || gapEq < 0 || gapNa < 0 {
			t.Errorf("row %v: negative gap — a schedule beat the optimum", row)
		}
		if single != 0 {
			t.Errorf("single period guaranteed %g, want 0", single)
		}
		// Non-adaptive must lose more than the adaptive closed form.
		if gapNa <= gapCf {
			t.Errorf("row %v: non-adaptive gap %g should exceed closed-form gap %g", row, gapNa, gapCf)
		}
		if wOpt <= 0 {
			t.Errorf("row %v: nonpositive optimum", row)
		}
	}
}

func TestProp41GridClean(t *testing.T) {
	cfg := smallCfg()
	tb, err := Prop41Grid(cfg, 3, 200*cfg.C)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[1] != "0" || row[2] != "0" {
			t.Errorf("row %v: monotonicity violations reported", row)
		}
		if row[0] == "0" && row[6] != "0" {
			t.Errorf("row %v: W(0) violations reported", row)
		}
	}
}

func TestOptimalStructure(t *testing.T) {
	cfg := smallCfg()
	tb, err := OptimalStructure(cfg, 500*cfg.C)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[6] != "true" {
			t.Errorf("row %v: terminal period outside (c, 2c]", row)
		}
		if row[7] != "true" {
			t.Errorf("row %v: non-productive optimal episode", row)
		}
	}
	for _, n := range tb.Notes {
		if strings.Contains(n, "equal: false") {
			t.Errorf("Obs (a) violated: %s", n)
		}
	}
}

func TestGuaranteedVsExpected(t *testing.T) {
	cfg := smallCfg()
	tb, err := GuaranteedVsExpected(cfg, 300*cfg.C, 2, 60)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range tb.Rows {
		rows[row[0]] = row
	}
	eq, ok := rows["adaptive-equalized"]
	if !ok {
		t.Fatal("equalized row missing")
	}
	sp, ok := rows["single-period"]
	if !ok {
		t.Fatal("single-period row missing")
	}
	eqG, _ := strconv.ParseFloat(eq[1], 64)
	spG, _ := strconv.ParseFloat(sp[1], 64)
	if eqG <= spG {
		t.Errorf("equalized guaranteed %g should beat single period %g", eqG, spG)
	}
	// Every scheduler's Monte-Carlo mean must be ≥ its guaranteed floor.
	for name, row := range rows {
		g, _ := strconv.ParseFloat(row[1], 64)
		mp, _ := strconv.ParseFloat(row[2], 64)
		if mp < g-1e-9 {
			t.Errorf("%s: Monte-Carlo mean %g below guaranteed floor %g", name, mp, g)
		}
	}
}

func TestAblationQuantumStable(t *testing.T) {
	tb, err := AblationQuantum(smallCfg(), []quant.Tick{10, 40}, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Coefficients for the same p across resolutions stay within a band.
	byP := map[string][]float64{}
	for _, row := range tb.Rows {
		v, _ := strconv.ParseFloat(row[3], 64)
		byP[row[2]] = append(byP[row[2]], v)
	}
	for p, vs := range byP {
		for i := 1; i < len(vs); i++ {
			if d := vs[i] - vs[0]; d > 0.2 || d < -0.2 {
				t.Errorf("p=%s: coefficient drifts across resolutions: %v", p, vs)
			}
		}
	}
}

func TestAblationGuideline(t *testing.T) {
	cfg := smallCfg()
	tb, err := AblationGuideline(cfg, []int{1, 2}, 1000*cfg.C)
	if err != nil {
		t.Fatal(err)
	}
	// At p = 2 the α²c slope must beat the printed 4^{1−p}c slope.
	var printed, alpha float64
	for _, row := range tb.Rows {
		if row[0] != "2" {
			continue
		}
		v, _ := strconv.ParseFloat(row[2], 64)
		switch row[1] {
		case "printed δ=4^{1−p}c":
			printed = v
		case "slope α_p²·c":
			alpha = v
		}
	}
	if printed == 0 || alpha == 0 {
		t.Fatal("missing ablation rows")
	}
	if alpha >= printed {
		t.Errorf("α²c slope coefficient %g should beat printed slope %g at p=2", alpha, printed)
	}
}

func TestAblationSolverEqual(t *testing.T) {
	tb, err := AblationSolver(smallCfg(), []quant.Tick{150, 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[3] != "true" {
			t.Errorf("row %v: solvers disagree", row)
		}
	}
}

func TestTaskGranularityLossGrows(t *testing.T) {
	cfg := smallCfg()
	tb, err := TaskGranularity(cfg, 500*cfg.C, []quant.Tick{1, cfg.C, 10 * cfg.C})
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for _, row := range tb.Rows {
		fluid, _ := strconv.ParseFloat(row[1], 64)
		taskW, _ := strconv.ParseFloat(row[2], 64)
		loss, _ := strconv.ParseFloat(row[4], 64)
		if taskW > fluid+1e-9 {
			t.Errorf("row %v: task work exceeds fluid work", row)
		}
		losses = append(losses, loss)
	}
	if losses[0] > 2 {
		t.Errorf("tiny tasks should pack with ≈no loss, got %g%%", losses[0])
	}
	if losses[len(losses)-1] <= losses[0] {
		t.Errorf("loss should grow with task size: %v", losses)
	}
}

func TestAllExperimentsRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs every registered experiment")
	}
	cfg := Config{C: 10, Seed: 1}
	for _, e := range All() {
		tb, err := e.Run(cfg)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if tb == nil || len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		if tb.Render() == "" {
			t.Errorf("%s: empty render", e.ID)
		}
	}
}

func TestFarmStudy(t *testing.T) {
	cfg := smallCfg()
	// Job sized beyond the fleet's capacity so completion differentiates.
	tb, err := FarmStudy(cfg, 6, 5, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	var single, adaptive float64
	for _, row := range tb.Rows {
		comp, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad completion cell %q", row[2])
		}
		if comp < 0 || comp > 100 {
			t.Errorf("row %v: completion %g%% out of range", row, comp)
		}
		switch row[0] {
		case "single-period":
			single = comp
		case "adaptive equalized":
			adaptive = comp
		}
	}
	if adaptive <= single {
		t.Errorf("adaptive completion %g%% should beat single-period %g%%", adaptive, single)
	}
}

func TestOwnerWorldsShape(t *testing.T) {
	tb, err := OwnerWorlds(smallCfg(), 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (one per policy)", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 6 {
			t.Fatalf("row %v has %d cells, want 6", row, len(row))
		}
		cells := make([]float64, 5)
		for i := range cells {
			v, err := strconv.ParseFloat(row[i+1], 64)
			if err != nil {
				t.Fatalf("policy %s: bad cell %q", row[0], row[i+1])
			}
			if v < 0 || v > 100 {
				t.Errorf("policy %s: utilization %g%% out of [0, 100]", row[0], v)
			}
			cells[i] = v
		}
		benign, greedy, minimax := cells[0], cells[3], cells[4]
		// minimax is the guaranteed floor: no other world reaches below it,
		// and the greedy heuristic cannot beat the exact best response.
		if minimax > greedy+1e-9 {
			t.Errorf("policy %s: minimax %g%% above greedy %g%%", row[0], minimax, greedy)
		}
		if minimax > benign+1e-9 {
			t.Errorf("policy %s: minimax %g%% above benign %g%%", row[0], minimax, benign)
		}
	}
	// The trace was recorded under the equalized policy, so replaying it
	// under equalized reproduces the poisson world bit for bit.
	eq := tb.Rows[0]
	if eq[0] != "equalized" {
		t.Fatalf("first row is %q, want equalized", eq[0])
	}
	if eq[3] != eq[2] { // trace cell vs poisson cell
		t.Errorf("equalized: trace %% %q differs from poisson %% %q", eq[3], eq[2])
	}
}
