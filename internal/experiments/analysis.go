package experiments

import (
	"fmt"
	"math"

	"cyclesteal/internal/game"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/tab"
	"cyclesteal/internal/theory"
)

// NonAdaptiveAnalysis is experiment E3: the §3.1 claim. For each (p, U/c) it
// measures the exact worst case of the non-adaptive guideline schedule
// (adversary optimized by the kill-set DP) and prints it against the three
// closed forms: the exact (m−p)(t−c), the recomputed leading form
// U − 2√(pcU) + pc, and the ambiguous printed form U − √(2pcU) + pc. The
// relative-error columns adjudicate the OCR ambiguity.
func NonAdaptiveAnalysis(cfg Config, ps []int, ratios []quant.Tick) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	t := tab.New(
		fmt.Sprintf("E3: guaranteed output of S_na^(p)[U] (c = %d ticks; work in units of c)", c),
		"p", "U/c", "measured worst case", "exact (m−p)(t−c)", "U−2√(pcU)+pc", "U−√(2pcU)+pc", "err₂√ %", "err√2 %",
	)
	for _, p := range ps {
		var us, deficits []float64
		for _, ratio := range ratios {
			U := ratio * c
			na, err := sched.NewNonAdaptive(U, p, c)
			if err != nil {
				return nil, err
			}
			measured, err := game.EvaluateNonAdaptive(na.Periods(), p, c)
			if err != nil {
				return nil, err
			}
			uf, cf := float64(U), float64(c)
			exact := theory.NonAdaptiveWorkExact(uf, p, cf)
			lead := theory.NonAdaptiveWorkLeading(uf, p, cf)
			printed := theory.NonAdaptiveWorkAsPrinted(uf, p, cf)
			m := float64(measured)
			t.Row(p, ratio,
				m/cf, exact/cf, lead/cf, printed/cf,
				relErrPct(m, lead), relErrPct(m, printed),
			)
			// Deficit beyond the pc recovery term, for the scaling-law fit.
			if d := uf - m + float64(p)*cf; d > 0 {
				us = append(us, uf)
				deficits = append(deficits, d)
			}
		}
		if slope, r2 := stats.LogLogSlope(us, deficits); len(us) >= 3 {
			t.Note("p=%d: deficit scaling exponent %.3f (r²=%.4f) — the √U law", p, slope, r2)
		}
	}
	t.Note("measured = exact min over all ≤p-interrupt kill sets with the §2.2 long-period rule")
	t.Note("the measured curve matches U−2√(pcU)+pc; the scanned √(2pcU) reading overshoots (see DESIGN.md §4 item 5)")
	return t, nil
}

// EqualizationStudy is experiment E4: Theorem 5.1 and its resolution. For
// each p it prints the deficit coefficient (U−W)/√(2cU) of the exact optimum,
// the equalization schedule, the printed guideline and the non-adaptive
// guideline, next to the derived K_p and the paper's printed (2−2^{1−p}).
func EqualizationStudy(cfg Config, maxP int, ratios []quant.Tick) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	t := tab.New(
		fmt.Sprintf("E4: adaptive deficit coefficients (U−W)/√(2cU), c = %d ticks", c),
		"p", "U/c", "K_p (derived)", "printed (2−2^{1−p})", "DP optimum", "equalized", "printed guideline", "non-adaptive", "2√p/√2",
	)
	for _, ratio := range ratios {
		U := ratio * c
		solver, err := game.Solve(maxP, U, c)
		if err != nil {
			return nil, err
		}
		eq, err := sched.NewAdaptiveEqualized(c)
		if err != nil {
			return nil, err
		}
		ag, err := sched.NewAdaptiveGuideline(c)
		if err != nil {
			return nil, err
		}
		root := math.Sqrt(2 * float64(c) * float64(U))
		coeff := func(w quant.Tick) float64 { return (float64(U) - float64(w)) / root }
		for p := 1; p <= maxP; p++ {
			wEq, err := game.Evaluate(eq, p, U, c)
			if err != nil {
				return nil, err
			}
			wAg, err := game.Evaluate(ag, p, U, c)
			if err != nil {
				return nil, err
			}
			na, err := sched.NewNonAdaptive(U, p, c)
			if err != nil {
				return nil, err
			}
			wNa, err := game.EvaluateNonAdaptive(na.Periods(), p, c)
			if err != nil {
				return nil, err
			}
			t.Row(p, ratio,
				theory.OptimalDeficitCoefficient(p),
				theory.AdaptiveDeficitCoefficient(p),
				coeff(solver.Value(p, U)),
				coeff(wEq),
				coeff(wAg),
				coeff(wNa),
				theory.DeficitNonAdaptive(p)/math.Sqrt2,
			)
		}
	}
	t.Note("K_p: α_p²+K_{p−1}α_p=1, K_p=K_{p−1}+α_p (Thm 4.3 equalization); K_1=1 matches the paper's proven p=1 case")
	t.Note("the DP optimum tracks K_p, not the printed (2−2^{1−p}); all printed constants agree with K_p exactly at p=1")
	return t, nil
}

// OptimalityGap is experiment E5: the §5.2 comparison at p = 1, extended with
// every scheduler in the system. Gaps are measured from the exact optimum.
func OptimalityGap(cfg Config, ratios []quant.Tick) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	t := tab.New(
		fmt.Sprintf("E5: guaranteed output at p = 1 (units of c; gap = W_opt − W, c = %d ticks)", c),
		"U/c", "W_opt (DP)", "closed-form §5.2", "gap", "equalized", "gap", "guideline §3.2", "gap", "non-adaptive §3.1", "gap", "single period", "fixed chunk √(cU)",
	)
	for _, ratio := range ratios {
		U := ratio * c
		solver, err := game.Solve(1, U, c)
		if err != nil {
			return nil, err
		}
		vOpt := solver.Value(1, U)

		op1, err := sched.NewOptimalP1(c)
		if err != nil {
			return nil, err
		}
		eq, err := sched.NewAdaptiveEqualized(c)
		if err != nil {
			return nil, err
		}
		ag, err := sched.NewAdaptiveGuideline(c)
		if err != nil {
			return nil, err
		}
		na, err := sched.NewNonAdaptive(U, 1, c)
		if err != nil {
			return nil, err
		}
		chunk := sched.FixedChunk{T: quant.Tick(math.Sqrt(float64(c) * float64(U)))}

		wCf, err := game.Evaluate(op1, 1, U, c)
		if err != nil {
			return nil, err
		}
		wEq, err := game.Evaluate(eq, 1, U, c)
		if err != nil {
			return nil, err
		}
		wAg, err := game.Evaluate(ag, 1, U, c)
		if err != nil {
			return nil, err
		}
		wNa, err := game.Evaluate(na, 1, U, c)
		if err != nil {
			return nil, err
		}
		wSp, err := game.Evaluate(sched.SinglePeriod{}, 1, U, c)
		if err != nil {
			return nil, err
		}
		wFc, err := game.Evaluate(chunk, 1, U, c)
		if err != nil {
			return nil, err
		}
		t.Row(ratio,
			inC(vOpt, c),
			inC(wCf, c), inC(vOpt-wCf, c),
			inC(wEq, c), inC(vOpt-wEq, c),
			inC(wAg, c), inC(vOpt-wAg, c),
			inC(wNa, c), inC(vOpt-wNa, c),
			inC(wSp, c),
			inC(wFc, c),
		)
	}
	t.Note("§5.2's claim: the adaptive schedules are within low-order additive terms of optimal; the non-adaptive deficit is ≈√2 larger")
	t.Note("single period: 0 guaranteed (killed at the last instant); fixed √(cU) chunks: the Atallah-style baseline")
	return t, nil
}

func relErrPct(measured, predicted float64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * math.Abs(predicted-measured) / math.Abs(measured)
}
