package experiments

import (
	"strconv"
	"testing"
)

// E16's qualitative claims: crashes cost completion monotonically along
// every row, and an inactive fault plan (the crash-free column) is free —
// the retry cap cannot matter when no parcel is ever lost.
func TestFaultStudyShape(t *testing.T) {
	rates := []float64{0, 0.02, 0.08}
	tb, err := FaultStudy(smallCfg(), 8, rates, []int{1, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	cell := func(r, c int) float64 {
		v, err := strconv.ParseFloat(tb.Rows[r][c], 64)
		if err != nil {
			t.Fatalf("bad cell %q in row %v", tb.Rows[r][c], tb.Rows[r])
		}
		return v
	}
	for r := range tb.Rows {
		for c := 2; c < 2+len(rates); c++ {
			if v := cell(r, c); v <= 0 || v > 100 {
				t.Errorf("row %v col %d: completion %.3f%% outside (0, 100]", tb.Rows[r], c, v)
			}
			// Crash rates increase along the row; completion must not rise.
			if c > 2 && cell(r, c) > cell(r, c-1) {
				t.Errorf("row %v: completion rose with the crash rate: %.3f%% -> %.3f%%", tb.Rows[r], cell(r, c-1), cell(r, c))
			}
		}
	}
}

// An inactive plan really is free: the crash-free cell of a row equals the
// same fleet run with no Faults field at all, trial for trial. This is the
// zero-fault acceptance pin at the experiment level.
func TestFaultStudyZeroRatePinsBaseline(t *testing.T) {
	// Rows 0 and 1 differ only in the retry cap; at crash rate 0 nothing is
	// ever lost, so the cap is dead configuration and the cells must match
	// bit-identically — but their seeds differ by row. Instead run a
	// one-rate, one-retry table twice with different retry caps: identical
	// row seeds, identical outcomes.
	one := func(retry int) string {
		tb, err := FaultStudy(smallCfg(), 8, []float64{0}, []int{retry}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows[0][2]
	}
	if a, b := one(1), one(7); a != b {
		t.Errorf("retry cap changed a crash-free run: %s vs %s", a, b)
	}
}

// The table is bit-identical across worker counts: every cell runs the
// deterministic round engine, and seeds depend only on (row, trial).
func TestFaultStudyDeterministic(t *testing.T) {
	run := func(workers int) string {
		cfg := smallCfg()
		cfg.Workers = workers
		tb, err := FaultStudy(cfg, 8, []float64{0, 0.05}, []int{2}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Render()
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("E16 table depends on worker count:\n--- serial ---\n%s\n--- workers=8 ---\n%s", a, b)
	}
}

func TestFaultStudyValidation(t *testing.T) {
	if _, err := FaultStudy(smallCfg(), 8, []float64{0}, []int{1}, 0); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := FaultStudy(smallCfg(), 6, []float64{0}, []int{1}, 1); err == nil {
		t.Error("stations=6 accepted (not a multiple of 4)")
	}
	if _, err := FaultStudy(smallCfg(), 8, nil, []int{1}, 1); err == nil {
		t.Error("empty crash-rate list accepted")
	}
	if _, err := FaultStudy(smallCfg(), 8, []float64{0}, nil, 1); err == nil {
		t.Error("empty retry list accepted")
	}
	if _, err := FaultStudy(smallCfg(), 8, []float64{1}, []int{1}, 1); err == nil {
		t.Error("crash rate 1 accepted")
	}
	if _, err := FaultStudy(smallCfg(), 8, []float64{0}, []int{-1}, 1); err == nil {
		t.Error("negative retry cap accepted")
	}
}
