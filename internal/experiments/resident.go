package experiments

import (
	"context"
	"fmt"

	"cyclesteal/fleet"
	"cyclesteal/internal/tab"
)

// ResidentService is experiment E15: the resident-service study behind the
// checkpoint/churn extension. A standing fleet of kill-heavy owners —
// Poisson returns over fixed single-period contracts, so every kill lands
// mid-period and, under the paper's draconian contract, erases the whole
// period's tasks — works a shared job for a bounded number of rounds while
// stations churn in and out: each round every station leaves with
// probability churn and one candidate joins with the same probability, and
// a leaving station's queued tasks migrate back to the pool. Rows sweep the
// checkpoint policy — draconian "off", fixed save intervals, and the
// adaptive Young-rule interval (arXiv:0711.3949) — and each cell reports
// the mean completion fraction reached within the round budget.
//
// Two claims to read off the grid. Down a column, the checkpoint interval
// traces the classic U-curve: an interval near the setup cost drowns in
// save overhead and loses to draconian, the sweet spot buys back the work
// kills destroy, and very wide intervals give the gain back one lost tail
// at a time — with the adaptive row landing near the sweet spot at every
// churn rate without tuning. Across a row, churn costs completion
// (departures park warm queues back in the pool and joins arrive cold),
// shifting the whole curve down without moving its shape.
//
// The saveCosts list extends the adaptive row into a Young/Daly cost sweep:
// one extra adaptive row per save cost s, with the per-contract interval
// following √(2·s·U/(p+1)) instead of assuming a save costs a full setup.
// Cheaper saves pull the rule toward shorter intervals — more of the kill
// loss bought back for less overhead — so completion should not fall as s
// shrinks.
//
// Every cell runs the deterministic service engine (trial t of a cell uses
// the same seeds at any cfg.Workers), so the table is bit-identical across
// worker counts.
func ResidentService(cfg Config, stations, maxRounds, tasksPerStation int, intervals, churns, saveCosts []float64, trials int) (*tab.Table, error) {
	cfg = cfg.normalize()
	if trials < 1 {
		return nil, fmt.Errorf("experiments: E15 needs trials ≥ 1, got %d", trials)
	}
	if stations < 2 || maxRounds < 1 || tasksPerStation < 1 {
		return nil, fmt.Errorf("experiments: E15 needs stations ≥ 2, rounds ≥ 1 and tasks ≥ 1, got %d, %d, %d", stations, maxRounds, tasksPerStation)
	}
	if len(churns) == 0 {
		return nil, fmt.Errorf("experiments: E15 needs at least one churn rate")
	}

	cols := []string{"checkpoint"}
	for _, r := range churns {
		cols = append(cols, fmt.Sprintf("churn %g%%", 100*r))
	}
	t := tab.New(
		fmt.Sprintf("E15: resident service — completion %% vs checkpoint interval × station churn (%d stations, %d tasks × 5 units, %d rounds, poisson-killed single-period contracts, %d trials)",
			stations, stations*tasksPerStation, maxRounds, trials),
		cols...,
	)

	// Cell mean: the same job drained on a fresh service per trial, seeds
	// disjoint per (row, trial) and shared across the churn columns so a row
	// compares the identical interrupt histories under different churn.
	cell := func(row int, interval float64, adaptive bool, saveCost, churn float64) (float64, error) {
		if interval < 0 {
			return 0, fmt.Errorf("experiments: E15 checkpoint interval %g must be ≥ 0", interval)
		}
		if churn < 0 || churn >= 1 {
			return 0, fmt.Errorf("experiments: E15 churn rate %g must be in [0, 1)", churn)
		}
		var sum float64
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + int64(row)<<32 + int64(trial)<<16
			s, err := fleet.NewService(fleet.ServiceConfig{
				Fleet: fleet.Config{
					Stations:           stations,
					Setup:              1,
					TicksPerSetup:      int(cfg.C),
					Owners:             []fleet.Owner{fleet.Poisson{Base: fleet.Fixed{Lifespan: 60, Interrupts: 1}}},
					Policy:             fleet.Policy{Name: "single"},
					Checkpoint:         interval,
					CheckpointAdaptive: adaptive,
					CheckpointSaveCost: saveCost,
					Seed:               seed,
					Workers:            cfg.Workers,
				},
				MaxRounds: maxRounds,
				Churn: fleet.ChurnConfig{
					LeaveProb:   churn,
					JoinProb:    churn,
					MinStations: stations / 2,
					Seed:        seed + 1,
				},
			})
			if err != nil {
				return 0, err
			}
			if _, err := s.Submit("e15", fleet.Job{Tasks: fleet.FixedTasks(stations*tasksPerStation, 5)}); err != nil {
				return 0, err
			}
			res, err := s.Drain(context.Background())
			if err != nil {
				return 0, err
			}
			sum += res.Fleet.CompletionFraction()
		}
		return 100 * sum / float64(trials), nil
	}

	addRow := func(row int, label string, interval float64, adaptive bool, saveCost float64) error {
		vals := make([]any, 0, 1+len(churns))
		vals = append(vals, label)
		for _, r := range churns {
			v, err := cell(row, interval, adaptive, saveCost, r)
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
		t.Row(vals...)
		return nil
	}

	if err := addRow(0, "off", 0, false, 0); err != nil {
		return nil, err
	}
	for i, iv := range intervals {
		if iv <= 0 {
			return nil, fmt.Errorf("experiments: E15 checkpoint interval %g must be > 0 (the off row is built in)", iv)
		}
		if err := addRow(1+i, fmt.Sprintf("every %g", iv), iv, false, 0); err != nil {
			return nil, err
		}
	}
	if err := addRow(1+len(intervals), "adaptive", 0, true, 0); err != nil {
		return nil, err
	}
	for i, s := range saveCosts {
		if s <= 0 {
			return nil, fmt.Errorf("experiments: E15 save cost %g must be > 0 (the default-cost adaptive row is built in)", s)
		}
		if err := addRow(2+len(intervals)+i, fmt.Sprintf("adaptive s=%g", s), 0, true, s); err != nil {
			return nil, err
		}
	}

	t.Note("cells are mean completion %% within the round budget; churn r %% means each station leaves and one joins with probability r per round (floor at half the fleet)")
	t.Note("off is the paper's draconian contract (a kill erases the whole single-period schedule); adaptive picks the Young-rule interval √(2·s·U/(p+1)) per contract (arXiv:0711.3949), s defaulting to the setup cost")
	t.Note("adaptive s=X rows price a checkpoint save at X time units instead of a full setup — the Young/Daly cost sweep of the fault extension")
	return t, nil
}
