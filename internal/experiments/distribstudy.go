package experiments

import (
	"context"
	"fmt"
	"reflect"

	"cyclesteal/distrib"
	"cyclesteal/fleet"
	"cyclesteal/internal/tab"
)

// DistribStudy is experiment E17: the replication engine's location
// independence, demonstrated end to end. One replication study — a mixed
// fleet (Poisson-tempered fixed contracts and Office owners) farming a
// shared job — runs once in-process via fleet.Replicate and then again at
// each worker count through a distrib.Coordinator, whose workers speak
// the full versioned JSONL wire conversation (spec out, shard states
// back) even in-process. Every row's merged Replication must equal the
// in-process one bit for bit; any divergence fails the experiment loudly
// rather than printing a near-miss.
//
// The table is therefore deliberately boring: the columns do not move as
// workers are added. That flatness is the result — the study's numbers
// are a pure function of its spec, not of where or in how many pieces it
// was computed, which is what lets cstealsweep -distribute fan the same
// studies across OS processes.
func DistribStudy(cfg Config, stations, opportunitiesPer, trials int, workerCounts []int) (*tab.Table, error) {
	cfg = cfg.normalize()
	if stations < 1 || opportunitiesPer < 1 || trials < 1 {
		return nil, fmt.Errorf("experiments: E17 needs stations, opportunities and trials ≥ 1, got %d, %d, %d", stations, opportunitiesPer, trials)
	}
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("experiments: E17 needs at least one worker count")
	}
	// Setup: 1 puts caller units in multiples of the setup cost c;
	// TicksPerSetup: cfg.C keeps the grid at the repo-wide resolution.
	fc := fleet.Config{
		Stations:      stations,
		Setup:         1,
		TicksPerSetup: int(cfg.C),
		Opportunities: opportunitiesPer,
		Owners: []fleet.Owner{
			fleet.Poisson{Base: fleet.Fixed{Lifespan: 40, Interrupts: 2}, Mean: 13},
			fleet.Office{MeanIdle: 30},
		},
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
	}
	job := fleet.Job{Tasks: fleet.FixedTasks(stations*8, 2.5)}

	f, err := fleet.New(fc)
	if err != nil {
		return nil, err
	}
	want, err := f.Replicate(context.Background(), job, trials)
	if err != nil {
		return nil, err
	}
	spec, err := distrib.NewSpec(fc, job, trials)
	if err != nil {
		return nil, err
	}

	t := tab.New(
		fmt.Sprintf("E17: distributed replication — one study, %d trials, merged from wire-protocol workers (%d stations, %d opportunities each, c = %d ticks)",
			trials, stations, opportunitiesPer, cfg.C),
		"workers", "completion %", "work (c units)", "imbalance", "steals", "bit-identical",
	)
	for _, w := range workerCounts {
		if w < 1 {
			return nil, fmt.Errorf("experiments: E17 worker counts must be ≥ 1, got %d", w)
		}
		coord, err := distrib.NewCoordinator(spec, distrib.Options{Workers: w})
		if err != nil {
			return nil, err
		}
		rep, err := coord.Run(context.Background())
		if err != nil {
			return nil, fmt.Errorf("experiments: E17 %d-worker run: %w", w, err)
		}
		if !reflect.DeepEqual(rep, want) {
			return nil, fmt.Errorf("experiments: E17: the %d-worker distributed study diverged from the in-process Replicate — the location-independence contract is broken", w)
		}
		t.Row(w, 100*rep.Completion.Mean, rep.Work.Mean, rep.Imbalance.Mean, rep.Steals.Mean, "yes")
	}
	t.Note("every worker speaks the versioned JSONL wire conversation — study spec out, per-shard accumulator states back — and the coordinator merges through fleet.Study.Merge")
	t.Note("rows are identical by construction: the experiment errors out instead of printing a divergent row, so 'yes' here is an executed assertion, not a claim")
	t.Note("the same coordinator drives OS processes in cstealsweep -distribute; only the Starter changes")
	return t, nil
}
