package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/game"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/tab"
	"cyclesteal/internal/task"
	"cyclesteal/internal/theory"
)

// AblationQuantum is E9a: grid-resolution sensitivity. Holding U/c fixed and
// varying how many ticks represent one setup cost, the deficit coefficient of
// the exact optimum must be stable — evidence that the tick discretization
// does not distort the continuum game the paper analyzes.
func AblationQuantum(cfg Config, cs []quant.Tick, ratio quant.Tick) (*tab.Table, error) {
	t := tab.New(
		fmt.Sprintf("E9a: grid-resolution ablation (U/c = %d fixed)", ratio),
		"ticks per c", "U ticks", "p", "(U−W_opt)/√(2cU)", "K_p",
	)
	for _, c := range cs {
		if c < 1 {
			return nil, fmt.Errorf("experiments: bad resolution %d", c)
		}
		U := ratio * c
		solver, err := game.Solve(2, U, c)
		if err != nil {
			return nil, err
		}
		root := math.Sqrt(2 * float64(c) * float64(U))
		for p := 1; p <= 2; p++ {
			coeff := (float64(U) - float64(solver.Value(p, U))) / root
			t.Row(c, U, p, coeff, theory.OptimalDeficitCoefficient(p))
		}
	}
	t.Note("coefficients are stable across resolutions: the integer grid reproduces the continuum game")
	return t, nil
}

// AblationGuideline is E9b: the §3.2 design choices, varied one at a time.
// Slope: the printed δ = 4^{1−p}c vs the equalization-derived α_p²c vs a flat
// c. Tail length: none vs the printed ⌈2p/3⌉ vs an extra-long 2p. Residue
// policy: spread vs dumped on the first period.
func AblationGuideline(cfg Config, ps []int, U quant.Tick) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	variants := []sched.GuidelineVariant{
		{C: c, Variant: "printed δ=4^{1−p}c"},
		{C: c, Variant: "slope α_p²·c", Cfg: sched.GuidelineConfig{
			RampStep: func(p int, cf float64) float64 {
				a := theory.EqualizedAlpha(p)
				return a * a * cf
			},
		}},
		{C: c, Variant: "slope c", Cfg: sched.GuidelineConfig{
			RampStep: func(p int, cf float64) float64 { return cf },
		}},
		{C: c, Variant: "no tail", Cfg: sched.GuidelineConfig{
			TailCount: func(p int) int { return 0 },
		}},
		{C: c, Variant: "tail 2p", Cfg: sched.GuidelineConfig{
			TailCount: func(p int) int { return 2 * p },
		}},
		{C: c, Variant: "residue dumped", Cfg: sched.GuidelineConfig{DumpResidue: true}},
	}
	t := tab.New(
		fmt.Sprintf("E9b: §3.2 design-choice ablation (U/c = %s, c = %d ticks; deficit coefficients (U−W)/√(2cU))",
			tab.FormatFloat(inC(U, c)), c),
		"p", "variant", "coefficient", "W/c", "K_p (target)",
	)
	root := math.Sqrt(2 * float64(c) * float64(U))
	for _, p := range ps {
		for _, v := range variants {
			w, err := game.Evaluate(v, p, U, c)
			if err != nil {
				return nil, err
			}
			t.Row(p, v.Variant, (float64(U)-float64(w))/root, inC(w, c), theory.OptimalDeficitCoefficient(p))
		}
	}
	t.Note("slope α_p²·c is the equalization-derived step; it dominates the printed 4^{1−p}c for p ≥ 2 (they coincide at p = 1)")
	t.Note("dumping the rounding residue on one period measurably fattens the adversary's best kill")
	return t, nil
}

// AblationSolver is E9c: the fast crossing-point solver against the
// brute-force reference — identical values, asymptotically separated running
// times. (bench_test.go carries the precise timing benchmarks; the table
// reports one-shot wall times and equality.)
func AblationSolver(cfg Config, Us []quant.Tick) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := quant.Tick(10) // small c keeps the reference solver feasible
	t := tab.New(
		"E9c: fast (O(pU log U)) vs reference (O(pU²)) solver",
		"U ticks", "fast ms", "reference ms", "tables equal",
	)
	for _, U := range Us {
		start := time.Now()
		fast, err := game.Solve(2, U, c)
		if err != nil {
			return nil, err
		}
		fastMs := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		ref, err := game.SolveReference(2, U, c)
		if err != nil {
			return nil, err
		}
		refMs := float64(time.Since(start).Microseconds()) / 1000

		equal := true
		for p := 0; p <= 2 && equal; p++ {
			for L := quant.Tick(0); L <= U; L++ {
				if fast.Value(p, L) != ref.Value(p, L) {
					equal = false
					break
				}
			}
		}
		t.Row(U, fastMs, refMs, equal)
	}
	t.Note("the fast solver exploits that complete(t) is nondecreasing (V is 1-Lipschitz) and interrupt(t) nonincreasing: binary-search the crossing")
	return t, nil
}

// AblationReplication is E9d: the replication engine's contract, measured.
// The same Monte-Carlo study (equalized schedule vs a Poisson owner) runs at
// several worker counts; the summary must be bit-identical every time —
// internal/mc's fixed shard partition at work — while wall-clock time is
// free to improve with cores. This is the determinism evidence E8 and E11
// lean on when they quote means from a parallel engine.
func AblationReplication(cfg Config, U quant.Tick, trials int) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	if trials < 1 {
		return nil, fmt.Errorf("experiments: E9d needs trials ≥ 1, got %d", trials)
	}
	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		return nil, err
	}
	p := 2
	mean := float64(U) / 3
	study := func(workers int) (stats.Summary, error) {
		return monteCarlo(eq, U, p, c, trials, func(rng *rand.Rand) sim.Interrupter {
			return &adversary.Poisson{Rng: rng, Mean: mean}
		}, cfg.Seed, workers)
	}
	start := time.Now()
	base, err := study(1)
	if err != nil {
		return nil, err
	}
	baseMs := float64(time.Since(start).Microseconds()) / 1000
	t := tab.New(
		fmt.Sprintf("E9d: replication-engine ablation (U/c = %s, p = %d, λ = 3/U, %d trials, c = %d ticks)",
			tab.FormatFloat(inC(U, c)), p, trials, c),
		"workers", "mean W/c", "±95%", "min W/c", "identical to serial", "wall ms",
	)
	tcrit := stats.TCritical95(trials - 1)
	t.Row(1, base.Mean/float64(c), tcrit*base.SE/float64(c), base.Min/float64(c), true, baseMs)
	for _, workers := range []int{2, 4, 8} {
		start := time.Now()
		s, err := study(workers)
		if err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		identical := s.N == base.N && s.Mean == base.Mean && s.Std == base.Std &&
			s.Min == base.Min && s.Max == base.Max && s.Median == base.Median
		if !identical {
			return nil, fmt.Errorf("experiments: mc determinism violated at %d workers: %+v vs %+v", workers, s, base)
		}
		t.Row(workers, s.Mean/float64(c), tcrit*s.SE/float64(c), s.Min/float64(c), identical, ms)
	}
	t.Note("identical = every summary field bit-equal to the 1-worker run (the internal/mc seed-stream contract)")
	t.Note("wall times depend on available cores; determinism does not")
	return t, nil
}

// TaskGranularity is E10: the data-parallel reality check. The fluid model
// banks t ⊖ c per period; a real bag of indivisible tasks banks only whole
// tasks. The experiment packs bags of varying task size into the equalization
// schedule and reports the packing loss against the malicious adversary's
// replay — quantifying when the fluid analysis is trustworthy (tasks ≪ c) and
// when it is not (tasks ≈ period length).
func TaskGranularity(cfg Config, U quant.Tick, sizes []quant.Tick) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	p := 1
	eq, err := sched.NewAdaptiveEqualized(c)
	if err != nil {
		return nil, err
	}
	guaranteed, br, err := game.EvaluateWithStrategy(eq, p, U, c)
	if err != nil {
		return nil, err
	}
	t := tab.New(
		fmt.Sprintf("E10: task granularity under the worst-case adversary (U/c = %s, p = %d, c = %d ticks)",
			tab.FormatFloat(inC(U, c)), p, c),
		"task size/c", "fluid work/c", "task work/c", "tasks done", "packing loss %",
	)
	for _, size := range sizes {
		if size < 1 {
			size = 1
		}
		n := int(U/size) + 1
		bag := task.NewBag(task.Fixed(n, size))
		res, err := simulateWithBag(eq, br, U, p, c, bag)
		if err != nil {
			return nil, err
		}
		loss := 0.0
		if res.Work > 0 {
			loss = 100 * float64(res.Work-res.TaskWork) / float64(res.Work)
		}
		t.Row(
			float64(size)/float64(c),
			inC(res.Work, c),
			inC(res.TaskWork, c),
			res.TasksCompleted,
			loss,
		)
	}
	t.Note("fluid work equals the guaranteed minimax value %s·c (best-response replay)", tab.FormatFloat(inC(guaranteed, c)))
	t.Note("packing loss stays negligible while tasks ≪ c and grows once task size is commensurate with period lengths ≈ √(2cU)")
	return t, nil
}
