package experiments

import (
	"context"
	"fmt"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/mc"
	"cyclesteal/internal/model"
	"cyclesteal/internal/now"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/station"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/tab"
	"cyclesteal/internal/task"
)

// Topology is experiment E14: the two-tier NOW-of-NOWs study behind the
// latency-priced steal model (Gast–Khatiri–Trystram, arXiv:1805.00857).
// Each fleet splits into two clusters with a cluster-aligned supply/demand
// skew — the strong half (Overnight windows of 8 ticks) drains its own
// shards and must then steal from the weak half (windows of 3 ticks) across
// the cluster boundary. The sweep prices that crossing at latency ∈
// latencies ticks and asks one question per fleet size: how much completion
// does the fleet lose to tasks caught in flight?
//
// The grid is deliberately tick-scale (setup 1 tick, lifespans 3–8 ticks,
// tasks 2 ticks) so the latency sweep spans sub-lifespan to multi-lifespan
// crossings — the regime where the 1805.00857 bound bites. The engine
// charges a cross-cluster steal latency·stations station-ticks of flight
// time, so latency/lifespan — not fleet size — sets the rounds a parcel
// spends in flight, and the qualitative effect is scale-invariant: at every
// fleet size, completion degrades monotonically in the crossing price.
//
// Each (fleet, latency) cell replicates on Farm.Replicate's two-level
// deterministic engine with a disjoint seed-stream range, so every number in
// the table is bit-identical at any cfg.Workers.
func TopologyStudy(cfg Config, fleets []int, latencies []quant.Tick, opportunitiesPer, tasksPerStation, trials int) (*tab.Table, error) {
	cfg = cfg.normalize()
	if trials < 1 {
		return nil, fmt.Errorf("experiments: E14 needs trials ≥ 1, got %d", trials)
	}
	if len(fleets) == 0 || len(latencies) == 0 {
		return nil, fmt.Errorf("experiments: E14 needs at least one fleet size and one latency")
	}
	factory := func(ws now.Workstation, ct now.Contract) (model.EpisodeScheduler, error) {
		return sched.NewAdaptiveEqualized(ws.Setup)
	}

	t := tab.New(
		fmt.Sprintf("E14: two-tier topology — completion vs cross-cluster steal latency (2 clusters, %d tasks/station × 2 ticks, %d opportunities/station, %d trials)",
			tasksPerStation, opportunitiesPer, trials),
		"stations", "latency", "tasks done", "completion %", "±95%", "overhead %", "steals", "in flight",
	)
	row := 0
	for _, n := range fleets {
		if n < 4 || n%4 != 0 {
			return nil, fmt.Errorf("experiments: E14 fleet size %d must be a positive multiple of 4 (two clusters over four shards)", n)
		}
		base := -1.0 // latency-0 completion fraction, the overhead baseline
		for _, lat := range latencies {
			if lat < 0 {
				return nil, fmt.Errorf("experiments: E14 latency %d must be ≥ 0", lat)
			}
			// Cluster 0 (stations i%4 ∈ {0,1}) is strong, cluster 1 weak.
			stations := make([]station.Workstation, n)
			for i := range stations {
				owner := station.OwnerModel(station.Overnight{Window: 8})
				if i%4 >= 2 {
					owner = station.Overnight{Window: 3}
				}
				stations[i] = station.Workstation{ID: i, Owner: owner, Setup: 1}
			}
			f := farm.Farm{
				Stations:                stations,
				OpportunitiesPerStation: opportunitiesPer,
				Shards:                  4,
				Topology:                farm.Topology{Clusters: 2, CrossLatency: lat},
			}
			job := farm.Job{Tasks: task.Fixed(n*tasksPerStation, 2)}
			// Disjoint seed-stream ranges per cell (mc prefix stability).
			sums, err := f.Replicate(context.Background(), job, factory, mc.Config{
				Trials:  trials,
				Seed:    cfg.Seed + int64(row)<<32,
				Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			row++
			completion := sums[farm.MetricCompletionFrac]
			if base < 0 {
				base = completion.Mean
			}
			overhead := 0.0
			if base > 0 {
				overhead = 100 * (base - completion.Mean) / base
			}
			t.Row(n, int(lat),
				sums[farm.MetricTasksCompleted].Mean,
				100*completion.Mean,
				100*stats.TCritical95(completion.N-1)*completion.SE,
				overhead,
				sums[farm.MetricSteals].Mean,
				sums[farm.MetricTasksInFlight].Mean,
			)
		}
	}
	t.Note("latency is the cross-cluster steal price in ticks; intra-cluster steals stay free — latency 0 rows are the flat-cost baseline of each fleet")
	t.Note("overhead %% = completion lost relative to the same fleet's first (lowest-latency) row; in flight = mean tasks still crossing at trial end")
	t.Note("the engine scales the price by fleet size (latency·stations station-ticks per parcel), so latency/lifespan sets flight rounds and the effect is comparable across rows")
	return t, nil
}
