package experiments

import (
	"context"
	"fmt"
	"time"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/mc"
	"cyclesteal/internal/model"
	"cyclesteal/internal/now"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/tab"
	"cyclesteal/internal/task"
)

// FleetScale is experiment E12: the fleet-scaling study behind the paper's
// network-of-workstations framing. One shared data-parallel job — sized
// proportionally to the fleet — is farmed across mixed owner profiles at
// fleet sizes from tens to thousands of stations, under the adaptive
// equalized policy. Three questions per fleet size:
//
//   - Does job completion hold up as the fleet (and job) grow? It should:
//     the workload and the capacity scale together, so drift would indicate
//     a coordination artifact (bag contention, steal starvation).
//   - How does load balance behave? Imbalance rises with fleet size because
//     the owner mix's tails get more extreme draws, and the p99 of
//     kill-destroyed lifespan (per trial, from the bounded-error quantile
//     sketch) tracks the tail risk operators would page on.
//   - What does a trial cost in engine wall-clock? The per-trial ms column
//     is the engine-scaling view: it grows ~linearly in stations on a fixed
//     worker budget, and shrinks with cores via the two-level pool.
//
// Each fleet size replicates on Farm.Replicate's two-level deterministic
// engine, so every number in the table (wall-clock excepted) is bit-identical
// at any cfg.Workers.
func FleetScale(cfg Config, fleets []int, opportunitiesPer, tasksPerStation, trials int) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	if trials < 1 {
		return nil, fmt.Errorf("experiments: E12 needs trials ≥ 1, got %d", trials)
	}
	if len(fleets) == 0 {
		return nil, fmt.Errorf("experiments: E12 needs at least one fleet size")
	}
	factory := func(ws now.Workstation, ct now.Contract) (model.EpisodeScheduler, error) {
		return sched.NewAdaptiveEqualized(ws.Setup)
	}

	t := tab.New(
		fmt.Sprintf("E12: fleet-scale farm (mixed owners, %d tasks/station uniform in [c/2, 4c], %d opportunities/station, %d trials, c = %d ticks)",
			tasksPerStation, opportunitiesPer, trials, c),
		"stations", "tasks done", "completion %", "±95%", "imbalance", "p99 killed/c", "steals", "ms/trial",
	)
	for i, n := range fleets {
		if n < 1 {
			return nil, fmt.Errorf("experiments: E12 fleet size %d", n)
		}
		// Uniform durations bounded away from zero keep Bag.Take's first-fit
		// hunt short (its min-duration cutoff) on queues tens of thousands
		// deep; heterogeneity comes from the 8× duration spread.
		fleet := now.MixedFleet(n, c)
		job := farm.Job{Tasks: task.Uniform(n*tasksPerStation, c/2, 4*c, cfg.Seed+int64(n))}
		f := farm.Farm{Stations: fleet, OpportunitiesPerStation: opportunitiesPer}
		start := time.Now()
		// Disjoint seed-stream ranges per fleet size (mc prefix stability).
		sums, err := f.Replicate(context.Background(), job, factory, mc.Config{
			Trials:  trials,
			Seed:    cfg.Seed + int64(i)<<32,
			Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000 / float64(trials)
		completion := sums[farm.MetricCompletionFrac]
		t.Row(n,
			sums[farm.MetricTasksCompleted].Mean,
			100*completion.Mean,
			100*stats.TCritical95(completion.N-1)*completion.SE,
			sums[farm.MetricImbalance].Mean,
			inCf(sums[farm.MetricKilledTicks].P99, c),
			sums[farm.MetricSteals].Mean,
			ms,
		)
	}
	t.Note("job scales with the fleet (%d tasks/station), so completion %% is comparable across rows", tasksPerStation)
	t.Note("p99 killed/c = 99th percentile over trials of lifespan destroyed by kills, from the bounded-error quantile sketch (internal/stats.Sketch)")
	t.Note("steals = mean cross-queue migrations per trial in the sharded bag; ms/trial = engine wall-clock, the only column allowed to vary with -workers")
	return t, nil
}
