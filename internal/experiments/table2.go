package experiments

import (
	"fmt"
	"math"

	"cyclesteal/internal/game"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/tab"
	"cyclesteal/internal/theory"
)

// Table2 reproduces the paper's Table 2 — "parameter values for the case
// p = 1" — across a sweep of U/c ratios. For each parameter it prints the
// paper's approximate value for S_opt^(1) and S_a^(1) next to the measured
// value from (a) the exact DP optimum, (b) the closed-form §5.2 schedule, and
// (c) the reconstructed §3.2 guideline.
func Table2(cfg Config, ratios []quant.Tick) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	t := tab.New(
		fmt.Sprintf("Table 2 (measured): parameters for p = 1, c = %d ticks", c),
		"U/c", "parameter", "paper S_opt", "measured DP-opt", "closed-form S_opt", "paper S_a", "measured S_a",
	)
	for _, ratio := range ratios {
		U := ratio * c
		solver, err := game.Solve(1, U, c)
		if err != nil {
			return nil, err
		}
		uf, cf := float64(U), float64(c)

		dpEp := solver.OptimalEpisode(1, U)
		op1, err := sched.NewOptimalP1(c)
		if err != nil {
			return nil, err
		}
		cfEp := op1.Episode(1, U)
		gdEp := (&sched.AdaptiveGuideline{C: c}).Episode(1, U)

		// m(1)[U].
		mPaperOpt := theory.OptimalP1M(uf, cf)
		mPaperA := theory.GuidelineM(uf, 1, cf)
		t.Row(ratio, "m(1)[U]", mPaperOpt, len(dpEp), len(cfEp), mPaperA, len(gdEp))

		// ε ∈ (0, 1].
		mAdj := theory.OptimalP1MAdjusted(uf, cf)
		t.Row(ratio, "ε", theory.OptimalP1Epsilon(uf, cf, mAdj), "n/a", theory.OptimalP1Epsilon(uf, cf, mAdj), "n/a", "n/a")

		// First period t_1 ≈ √(2cU) − c (k = 1), in units of c.
		t.Row(ratio, "t_1/c",
			theory.OptimalP1PeriodApprox(uf, cf, 1)/cf,
			inC(first(dpEp), c),
			inC(first(cfEp), c),
			theory.GuidelineP1PeriodApprox(uf, cf, 1)/cf,
			inC(first(gdEp), c),
		)

		// Terminal periods ≈ 3c/2.
		t.Row(ratio, "t_m/c", 1.5, inC(last(dpEp, 0), c), inC(last(cfEp, 0), c), 1.5, inC(last(gdEp, 0), c))
		t.Row(ratio, "t_{m-1}/c", 1.5, inC(last(dpEp, 1), c), inC(last(cfEp, 1), c), 1.5, inC(last(gdEp, 1), c))

		// W^(1)[U], in units of c.
		wPaperOpt := theory.OptimalP1Work(uf, cf) / cf
		wPaperA := theory.GuidelineP1Work(uf, cf) / cf
		vOpt := inC(solver.Value(1, U), c)
		wCf, err := game.Evaluate(op1, 1, U, c)
		if err != nil {
			return nil, err
		}
		wGd, err := game.Evaluate(&sched.AdaptiveGuideline{C: c}, 1, U, c)
		if err != nil {
			return nil, err
		}
		t.Row(ratio, "W(1)[U]/c", wPaperOpt, vOpt, inC(wCf, c), wPaperA, inC(wGd, c))

		// Deficit coefficient (U−W)/√(2cU): the paper's is exactly 1.
		root := math.Sqrt(2 * cf * uf)
		t.Row(ratio, "(U−W)/√(2cU)",
			(uf-theory.OptimalP1Work(uf, cf))/root,
			(uf-float64(solver.Value(1, U)))/root,
			(uf-float64(wCf))/root,
			(uf-theory.GuidelineP1Work(uf, cf))/root,
			(uf-float64(wGd))/root,
		)
	}
	t.Note("paper columns: Table 2 approximations m ≈ √(2U/c)−..., t_k ≈ √(2cU)−kc, W ≈ U−√(2cU)−c/2")
	t.Note("measured columns: exact DP optimum, §5.2 closed form, reconstructed §3.2 guideline, on the %d-ticks-per-c grid", cfg.C)
	return t, nil
}

func first(s []quant.Tick) quant.Tick {
	if len(s) == 0 {
		return 0
	}
	return s[0]
}

func last(s []quant.Tick, back int) quant.Tick {
	if len(s) <= back {
		return 0
	}
	return s[len(s)-1-back]
}
