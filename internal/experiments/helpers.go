package experiments

import (
	"cyclesteal/internal/game"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/task"
)

// simulateWithBag replays a recorded best-response adversary through the
// simulator with a task bag attached.
func simulateWithBag(s model.EpisodeScheduler, br *game.BestResponse, U quant.Tick, p int, c quant.Tick, bag *task.Bag) (sim.Result, error) {
	return sim.Run(s, br, sim.Opportunity{U: U, P: p, C: c}, sim.Config{Bag: bag})
}
