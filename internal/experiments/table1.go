package experiments

import (
	"fmt"

	"cyclesteal/internal/game"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/tab"
)

// Table1 reproduces the paper's Table 1 — "the consequences of the
// adversary's options" — numerically, for a concrete fully-productive
// episode-schedule (the DP-optimal one for the given U and p):
//
//	option          episode output      residual   opportunity production
//	no interrupt    U − mc              0          U − mc
//	period 1        0                   U − T_1    W^{(p−1)}[U − T_1]
//	period k        T_{k−1} − (k−1)c    U − T_k    T_{k−1} − (k−1)c + W^{(p−1)}[U − T_k]
//	period m        T_{m−1} − (m−1)c    0          T_{m−1} − (m−1)c
//
// The table verifies each symbolic entry against the simulator/evaluator and
// demonstrates Theorem 4.3's equalization: the production column is (nearly)
// constant, and its minimum equals the exact game value W(p)[U].
func Table1(cfg Config, U quant.Tick, p int) (*tab.Table, error) {
	cfg = cfg.normalize()
	c := cfg.C
	if p < 1 {
		return nil, fmt.Errorf("experiments: Table1 needs p ≥ 1, got %d", p)
	}
	solver, err := game.Solve(p, U, c)
	if err != nil {
		return nil, err
	}
	episode := solver.OptimalEpisode(p, U)
	m := len(episode)
	prefix := episode.PrefixSums()

	t := tab.New(
		fmt.Sprintf("Table 1 (instantiated): adversary options against S_opt^(%d)[U], U/c = %s, c = %d ticks",
			p, tab.FormatFloat(inC(U, c)), c),
		"option", "interrupt time t", "episode work-output", "residual lifespan", "opportunity production",
	)

	// No-interrupt row: the whole episode completes.
	full := episode.UninterruptedWork(c)
	t.Row("no interrupt", "n/a", inC(full, c), 0.0, inC(full, c))

	worst := full
	rows := sampleIndices(m, 12)
	for _, k := range rows { // k is 1-based period index
		Tk := prefix[k]
		episodeOut := episode.WorkBeforePeriod(k, c)
		residual := U - Tk
		production := episodeOut + solver.Value(p-1, residual)
		if production < worst {
			worst = production
		}
		t.Row(
			fmt.Sprintf("interrupt period %d", k),
			fmt.Sprintf("[T_%d, T_%d) → T_%d", k-1, k, k),
			inC(episodeOut, c),
			inC(residual, c),
			inC(production, c),
		)
	}
	// The minimum over ALL options (not only the sampled rows).
	for k := 1; k <= m; k++ {
		production := episode.WorkBeforePeriod(k, c) + solver.Value(p-1, U-prefix[k])
		if production < worst {
			worst = production
		}
	}

	value := solver.Value(p, U)
	t.Note("all quantities in units of c; m = %d periods", m)
	t.Note("min over all options = %s·c; exact game value W(%d)[U] = %s·c (equal: %v)",
		tab.FormatFloat(inC(worst, c)), p, tab.FormatFloat(inC(value, c)), worst == value)
	t.Note("equalization (Thm 4.3): production column is constant up to low-order terms")
	return t, nil
}

// sampleIndices picks ≤ max representative 1-based indices out of m,
// always including 1, 2 and m.
func sampleIndices(m, max int) []int {
	if m <= max {
		out := make([]int, m)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	out := []int{1, 2}
	step := (m - 3) / (max - 3)
	if step < 1 {
		step = 1
	}
	for k := 2 + step; k < m; k += step {
		out = append(out, k)
	}
	return append(out, m)
}
