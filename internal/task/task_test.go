package task

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cyclesteal/internal/quant"
)

func TestNewBagAndRemaining(t *testing.T) {
	b := NewBag(Fixed(5, 10))
	if b.Remaining() != 5 {
		t.Errorf("Remaining = %d, want 5", b.Remaining())
	}
	if b.RemainingWork() != 50 {
		t.Errorf("RemainingWork = %d, want 50", b.RemainingWork())
	}
}

func TestTakeRespectsCapacity(t *testing.T) {
	b := NewBag(Fixed(10, 7))
	got := b.Take(20) // fits 2 tasks of 7 (14), third would exceed
	if len(got) != 2 || Durations(got) != 14 {
		t.Errorf("Take(20) = %v (total %d), want 2 tasks totalling 14", got, Durations(got))
	}
	if b.Remaining() != 8 {
		t.Errorf("Remaining = %d, want 8", b.Remaining())
	}
}

func TestTakeFirstFitSkipsOversized(t *testing.T) {
	b := NewBag([]Task{{ID: 0, Duration: 50}, {ID: 1, Duration: 5}, {ID: 2, Duration: 5}})
	got := b.Take(12)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Errorf("Take(12) = %v, want tasks 1 and 2", got)
	}
	if b.Remaining() != 1 || b.RemainingWork() != 50 {
		t.Errorf("big task should remain, got %d tasks / %d work", b.Remaining(), b.RemainingWork())
	}
}

func TestTakeEdgeCases(t *testing.T) {
	b := NewBag(Fixed(3, 10))
	if got := b.Take(0); got != nil {
		t.Errorf("Take(0) = %v, want nil", got)
	}
	if got := b.Take(5); got != nil {
		t.Errorf("Take(5) with all tasks of 10 = %v, want nil", got)
	}
	empty := NewBag(nil)
	if got := empty.Take(100); got != nil {
		t.Errorf("Take from empty bag = %v, want nil", got)
	}
}

func TestReturnPutsTasksAtFront(t *testing.T) {
	b := NewBag([]Task{{ID: 0, Duration: 5}, {ID: 1, Duration: 5}})
	taken := b.Take(5)
	if len(taken) != 1 || taken[0].ID != 0 {
		t.Fatalf("Take = %v", taken)
	}
	b.Return(taken)
	again := b.Take(5)
	if len(again) != 1 || again[0].ID != 0 {
		t.Errorf("returned task should be next in line, got %v", again)
	}
	b.Return(nil) // no-op
	if b.Remaining() != 1 {
		t.Errorf("Remaining = %d, want 1", b.Remaining())
	}
}

func TestTakeReturnConservesWork(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tasks := Uniform(30, 1, 40, seed)
		b := NewBag(tasks)
		totalBefore := b.RemainingWork()
		var inFlight []Task
		for i := 0; i < 10; i++ {
			cap := quant.Tick(1 + rng.Int63n(100))
			got := b.Take(cap)
			if Durations(got) > cap {
				return false
			}
			if rng.Intn(2) == 0 {
				b.Return(got) // killed period
			} else {
				inFlight = append(inFlight, got...) // completed
			}
		}
		return b.RemainingWork()+Durations(inFlight) == totalBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFixedGenerator(t *testing.T) {
	tasks := Fixed(4, 25)
	if len(tasks) != 4 {
		t.Fatalf("len = %d", len(tasks))
	}
	for _, tk := range tasks {
		if tk.Duration != 25 {
			t.Errorf("duration %d, want 25", tk.Duration)
		}
	}
	if err := Validate(tasks); err != nil {
		t.Error(err)
	}
	if Fixed(1, 0)[0].Duration != 1 {
		t.Error("Fixed should clamp duration to ≥ 1")
	}
}

func TestUniformGenerator(t *testing.T) {
	tasks := Uniform(200, 5, 15, 42)
	if err := Validate(tasks); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tasks {
		if tk.Duration < 5 || tk.Duration > 15 {
			t.Errorf("duration %d outside [5,15]", tk.Duration)
		}
	}
	// Deterministic for a fixed seed.
	again := Uniform(200, 5, 15, 42)
	for i := range tasks {
		if tasks[i] != again[i] {
			t.Fatal("Uniform not deterministic for fixed seed")
		}
	}
	// Degenerate bounds.
	for _, tk := range Uniform(5, 9, 3, 1) {
		if tk.Duration != 9 {
			t.Errorf("hi<lo should clamp to lo, got %d", tk.Duration)
		}
	}
	if Uniform(1, 0, 0, 1)[0].Duration != 1 {
		t.Error("lo<1 should clamp to 1")
	}
}

func TestBimodalGenerator(t *testing.T) {
	tasks := Bimodal(500, 5, 100, 0.2, 7)
	if err := Validate(tasks); err != nil {
		t.Fatal(err)
	}
	large := 0
	for _, tk := range tasks {
		switch tk.Duration {
		case 5:
		case 100:
			large++
		default:
			t.Fatalf("unexpected duration %d", tk.Duration)
		}
	}
	if large < 50 || large > 150 {
		t.Errorf("large fraction %d/500, want ≈ 100", large)
	}
	if Bimodal(1, 0, 0, 0, 1)[0].Duration != 1 {
		t.Error("degenerate bounds should clamp")
	}
}

func TestExponentialGenerator(t *testing.T) {
	tasks := Exponential(1000, 20, 3)
	if err := Validate(tasks); err != nil {
		t.Fatal(err)
	}
	var sum quant.Tick
	for _, tk := range tasks {
		sum += tk.Duration
	}
	mean := float64(sum) / 1000
	if mean < 15 || mean > 25 {
		t.Errorf("sample mean %g, want ≈ 20", mean)
	}
	if Exponential(1, 0, 1)[0].Duration < 1 {
		t.Error("durations must be ≥ 1")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]Task{{ID: 1, Duration: 0}}); err == nil {
		t.Error("zero duration accepted")
	}
	if err := Validate([]Task{{ID: 1, Duration: 5}, {ID: 1, Duration: 5}}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := Validate(nil); err != nil {
		t.Errorf("empty set rejected: %v", err)
	}
}

func TestNewBagAssignsNextID(t *testing.T) {
	b := NewBag([]Task{{ID: 7, Duration: 3}})
	if b.nextID != 8 {
		t.Errorf("nextID = %d, want 8", b.nextID)
	}
}

func TestDurations(t *testing.T) {
	if Durations(nil) != 0 {
		t.Error("Durations(nil) != 0")
	}
	if Durations([]Task{{Duration: 3}, {Duration: 4}}) != 7 {
		t.Error("Durations sum wrong")
	}
}

func TestDealRoundRobin(t *testing.T) {
	tasks := Fixed(10, 5)
	hands := Deal(tasks, 3)
	if len(hands) != 3 {
		t.Fatalf("hands = %d", len(hands))
	}
	sizes := []int{len(hands[0]), len(hands[1]), len(hands[2])}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Errorf("hand sizes %v, want [4 3 3]", sizes)
	}
	for h, hand := range hands {
		for j, task := range hand {
			if task.ID != h+3*j {
				t.Errorf("hand %d[%d] = task %d, want %d", h, j, task.ID, h+3*j)
			}
		}
	}
	if got := Deal(nil, 0); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("degenerate deal: %v", got)
	}
}

func TestBagStealAndAppend(t *testing.T) {
	b := NewBag(Fixed(6, 2)) // IDs 0..5
	stolen := b.Steal(2)
	if len(stolen) != 2 || stolen[0].ID != 4 || stolen[1].ID != 5 {
		t.Fatalf("steal from the back: %v", stolen)
	}
	if b.Remaining() != 4 {
		t.Fatalf("remaining %d", b.Remaining())
	}
	// Over-asking drains what's there; asking nothing steals nothing.
	if got := b.Steal(100); len(got) != 4 {
		t.Errorf("over-steal: %v", got)
	}
	if got := b.Steal(1); got != nil {
		t.Errorf("steal from empty: %v", got)
	}
	b.Append(stolen)
	if b.Remaining() != 2 || b.RemainingWork() != 4 {
		t.Errorf("append: %d tasks, %d work", b.Remaining(), b.RemainingWork())
	}
	// Returned (killed) tasks still jump the queue ahead of appended ones.
	b.Return([]Task{{ID: 99, Duration: 1}})
	front := b.Take(1)
	if len(front) != 1 || front[0].ID != 99 {
		t.Errorf("killed task not at the front: %v", front)
	}
}

// TakeInto must agree with Take exactly (same tasks, same bag mutation) —
// it is the same scan, minus the per-call slice.
func TestTakeIntoMatchesTake(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		tasks := Uniform(1+rng.Intn(40), 1, 30, int64(trial))
		a := NewBag(tasks)
		b := NewBag(tasks)
		buf := make([]Task, 0, 8)
		for step := 0; step < 30; step++ {
			cap := quant.Tick(rng.Int63n(60))
			want := a.Take(cap)
			buf = b.TakeInto(buf[:0], cap)
			if len(want) != len(buf) {
				t.Fatalf("trial %d step %d: Take got %d tasks, TakeInto %d", trial, step, len(want), len(buf))
			}
			for i := range want {
				if want[i] != buf[i] {
					t.Fatalf("trial %d step %d: task %d = %+v vs %+v", trial, step, i, buf[i], want[i])
				}
			}
			if a.Remaining() != b.Remaining() {
				t.Fatalf("trial %d step %d: remaining %d vs %d", trial, step, a.Remaining(), b.Remaining())
			}
			if rng.Intn(3) == 0 && len(want) > 0 {
				a.Return(want)
				b.Return(buf)
				if a.Remaining() != b.Remaining() {
					t.Fatalf("trial %d step %d: remaining after return %d vs %d", trial, step, a.Remaining(), b.Remaining())
				}
			}
		}
	}
}

func TestTakeIntoPreservesPrefixAndReusesBuffer(t *testing.T) {
	b := NewBag(Fixed(10, 5))
	buf := make([]Task, 0, 16)
	buf = append(buf, Task{ID: 99, Duration: 1})
	buf = b.TakeInto(buf, 10) // two tasks of 5
	if len(buf) != 3 || buf[0].ID != 99 {
		t.Fatalf("prefix clobbered or wrong count: %v", buf)
	}
	// Nothing fits: the buffer comes back unchanged.
	before := len(buf)
	buf = b.TakeInto(buf, 1)
	if len(buf) != before {
		t.Errorf("no-fit TakeInto changed the buffer: %v", buf)
	}
	// A warm buffer with capacity must not allocate.
	warm := make([]Task, 0, 64)
	bag := NewBag(Fixed(1000, 5))
	allocs := testing.AllocsPerRun(20, func() {
		warm = bag.TakeInto(warm[:0], 25)
	})
	if allocs != 0 {
		t.Errorf("warm TakeInto allocates %.1f per call", allocs)
	}
}

// benchBagTake measures the kill/reschedule cycle (take a period's worth,
// return it) that dominates the simulator's contended path.
func benchBagTake(b *testing.B, into bool) {
	tasks := Uniform(5000, 5, 50, 1)
	bag := NewBag(tasks)
	var buf []Task
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if into {
			buf = bag.TakeInto(buf[:0], 200)
			bag.Return(buf)
		} else {
			got := bag.Take(200)
			bag.Return(got)
		}
	}
}

// BenchmarkBagTake is the allocating baseline: one fresh slice per period.
func BenchmarkBagTake(b *testing.B) { benchBagTake(b, false) }

// BenchmarkBagTakeInto is the buffer-reusing fast path the simulator rides.
func BenchmarkBagTakeInto(b *testing.B) { benchBagTake(b, true) }

func TestCompletedPrefix(t *testing.T) {
	tasks := []Task{{ID: 0, Duration: 15}, {ID: 1, Duration: 20}, {ID: 2, Duration: 30}}
	cases := []struct {
		done quant.Tick
		want int
	}{
		{0, 0}, {14, 0}, {15, 1}, {34, 1}, {35, 2}, {64, 2}, {65, 3}, {1000, 3},
	}
	for _, tc := range cases {
		if got := CompletedPrefix(tasks, tc.done); got != tc.want {
			t.Errorf("CompletedPrefix(done=%d) = %d, want %d", tc.done, got, tc.want)
		}
	}
	if got := CompletedPrefix(nil, 100); got != 0 {
		t.Errorf("CompletedPrefix(nil) = %d, want 0", got)
	}
}
