package task

// Flight is the in-flight ledger of a latency-priced steal: parcels of tasks
// travelling between queues, each maturing when the ledger's clock reaches
// its ready time. While a parcel is in flight its tasks are unavailable to
// both the thief that requested them and the victim they left — the
// Gast–Khatiri–Trystram cost model, where steal latency (not steal count) is
// the parameter that governs makespan at scale.
//
// The clock is a plain monotone counter whose unit the caller chooses; the
// farm engines advance it by played contract lifespans (station-ticks), so a
// latency of L fleet-ticks on an n-station fleet departs with
// latency = L·n clock units. Advancing and delivering are separate steps so
// an engine can place arrivals at the point its determinism contract allows
// (the live engine after any settled opportunity, the round engine only at
// round barriers).
//
// Flight assumes a uniform latency: parcels mature in departure order, and
// Arrive pops matured parcels from the front only. A heterogeneous
// per-cluster-pair latency matrix would need an ordering structure here —
// that generalization is a recorded follow-up, not supported yet.
//
// Flight is not safe for concurrent use; the live sharded bag guards its
// ledger with a mutex and mirrors NextReady into an atomic so the hot path
// can skip the lock entirely.
type Flight struct {
	clock   int64
	parcels []parcel
	head    int
	tasks   int // tasks currently in flight, across parcels
	lost    int // tasks destroyed in transit, cumulative
}

// parcel is one departed steal: tasks bound for a destination queue.
type parcel struct {
	tasks   []Task
	dest    int
	readyAt int64
}

// Clock reports the ledger's current time.
func (f *Flight) Clock() int64 { return f.clock }

// AdvanceTo moves the clock forward to t; moving backwards is a no-op (the
// clock is monotone, so stale advances from racing observers are harmless).
func (f *Flight) AdvanceTo(t int64) {
	if t > f.clock {
		f.clock = t
	}
}

// Advance moves the clock forward by d ≥ 0 and returns the new time.
func (f *Flight) Advance(d int64) int64 {
	if d > 0 {
		f.clock += d
	}
	return f.clock
}

// Depart puts a parcel in flight: tasks bound for queue dest, maturing
// latency clock units from now. The ledger takes ownership of the slice.
// A non-positive latency matures immediately (the next Arrive delivers it).
func (f *Flight) Depart(tasks []Task, dest int, latency int64) {
	if len(tasks) == 0 {
		return
	}
	if latency < 0 {
		latency = 0
	}
	f.parcels = append(f.parcels, parcel{tasks: tasks, dest: dest, readyAt: f.clock + latency})
	f.tasks += len(tasks)
}

// NextReady reports the earliest maturity time among in-flight parcels, and
// whether any parcel is in flight at all.
func (f *Flight) NextReady() (int64, bool) {
	if f.head >= len(f.parcels) {
		return 0, false
	}
	return f.parcels[f.head].readyAt, true
}

// Arrive delivers every matured parcel (readyAt ≤ clock) to the caller in
// departure order and returns the number of tasks delivered. The delivered
// slices are owned by the caller from then on.
func (f *Flight) Arrive(deliver func(dest int, tasks []Task)) int {
	delivered := 0
	for f.head < len(f.parcels) && f.parcels[f.head].readyAt <= f.clock {
		p := f.parcels[f.head]
		f.parcels[f.head] = parcel{} // release the slice reference
		f.head++
		f.tasks -= len(p.tasks)
		delivered += len(p.tasks)
		deliver(p.dest, p.tasks)
	}
	if f.head == len(f.parcels) {
		// Everything landed: reuse the backing array for the next wave.
		f.parcels = f.parcels[:0]
		f.head = 0
	}
	return delivered
}

// InFlight reports the number of tasks currently in flight.
func (f *Flight) InFlight() int { return f.tasks }

// Parcels reports the number of parcels currently in flight.
func (f *Flight) Parcels() int { return len(f.parcels) - f.head }

// Lose records tasks destroyed in transit — a parcel a fault plan dropped in
// the network, or one that matured into a group with nobody left alive to
// receive it. The tasks never re-enter any queue; they only move the ledger's
// loss counter, the number the engines surface as TasksLost.
func (f *Flight) Lose(tasks []Task) {
	f.lost += len(tasks)
}

// Lost reports the cumulative number of tasks destroyed in transit.
func (f *Flight) Lost() int { return f.lost }
