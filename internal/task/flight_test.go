package task

import "testing"

func TestFlightDepartArriveOrder(t *testing.T) {
	var f Flight
	f.Depart(Fixed(2, 3), 4, 10)
	f.Advance(5)
	f.Depart(Fixed(1, 3), 7, 10) // matures at 15
	if f.InFlight() != 3 || f.Parcels() != 2 {
		t.Fatalf("in flight %d tasks / %d parcels, want 3/2", f.InFlight(), f.Parcels())
	}
	if next, ok := f.NextReady(); !ok || next != 10 {
		t.Fatalf("NextReady = %d,%v want 10,true", next, ok)
	}
	// Nothing matured yet.
	if n := f.Arrive(func(int, []Task) { t.Error("delivered early") }); n != 0 {
		t.Fatalf("delivered %d before maturity", n)
	}
	f.Advance(5) // clock 10: first parcel only
	var dests []int
	deliver := func(dest int, tasks []Task) { dests = append(dests, dest) }
	if n := f.Arrive(deliver); n != 2 {
		t.Fatalf("delivered %d at clock 10, want 2", n)
	}
	if next, ok := f.NextReady(); !ok || next != 15 {
		t.Fatalf("NextReady = %d,%v want 15,true", next, ok)
	}
	f.AdvanceTo(15)
	f.AdvanceTo(3) // monotone: no-op
	if f.Clock() != 15 {
		t.Fatalf("clock %d after backwards AdvanceTo, want 15", f.Clock())
	}
	if n := f.Arrive(deliver); n != 1 {
		t.Fatalf("delivered %d at clock 15, want 1", n)
	}
	if len(dests) != 2 || dests[0] != 4 || dests[1] != 7 {
		t.Fatalf("delivery order %v, want [4 7]", dests)
	}
	if f.InFlight() != 0 || f.Parcels() != 0 {
		t.Fatalf("ledger not empty: %d tasks / %d parcels", f.InFlight(), f.Parcels())
	}
	if _, ok := f.NextReady(); ok {
		t.Fatal("NextReady true on an empty ledger")
	}
}

func TestFlightEdgeCases(t *testing.T) {
	var f Flight
	f.Depart(nil, 0, 5) // empty parcel: dropped
	if f.Parcels() != 0 {
		t.Fatalf("empty Depart created a parcel")
	}
	f.Depart(Fixed(1, 1), 2, -3) // negative latency clamps to immediate
	if n := f.Arrive(func(dest int, tasks []Task) {
		if dest != 2 || len(tasks) != 1 {
			t.Errorf("delivered %d tasks to %d", len(tasks), dest)
		}
	}); n != 1 {
		t.Fatalf("immediate parcel not delivered: %d", n)
	}
	f.Advance(-7) // negative advance is a no-op
	if f.Clock() != 0 {
		t.Fatalf("clock %d after negative Advance, want 0", f.Clock())
	}
}

func TestFlightLoseCountsDestroyedTasks(t *testing.T) {
	var f Flight
	if f.Lost() != 0 {
		t.Fatalf("fresh ledger lost %d", f.Lost())
	}
	f.Lose(Fixed(2, 3))
	f.Lose(nil)
	f.Lose(Fixed(1, 5))
	if f.Lost() != 3 {
		t.Errorf("Lost = %d, want 3", f.Lost())
	}
	// Loss accounting is independent of the in-flight ledger proper.
	if f.InFlight() != 0 || f.Parcels() != 0 {
		t.Errorf("lost tasks leaked into flight: %d tasks / %d parcels", f.InFlight(), f.Parcels())
	}
}
