// Package task models the data-parallel workload the paper's schedules carry:
// a bag of indivisible tasks whose running times are known perfectly and
// include the marginal cost of shipping their inputs and outputs (§2.1).
//
// The fluid model banks t ⊖ c work units per completed period; a real
// data-parallel job banks whole tasks only. The Packer fills each period's
// capacity with tasks and the simulator accounts the difference — the
// quantization loss — which experiment E10 measures against task granularity.
package task

import (
	"fmt"
	"math/rand"

	"cyclesteal/internal/quant"
)

// Task is one indivisible unit of data-parallel work. Duration includes the
// marginal input/output transfer time, per the paper's accounting.
type Task struct {
	ID       int
	Duration quant.Tick
}

// Bag is an ordered multiset of pending tasks. Take removes a prefix-greedy
// fitting set; Return puts killed tasks back at the front (they were in
// flight and remain next in line). Bag is not safe for concurrent use; the
// cluster driver gives each workstation its own bag or shards one.
//
// Internally the pending list is buf[head:]: Take consumes by advancing
// head, which leaves headroom that Return refills in place. The
// kill-and-reschedule cycle of the simulator (Take a period's tasks, Return
// them on interrupt) therefore costs O(tasks moved), not O(queue) — the
// difference between linear and quadratic total work on fleet-scale queues
// holding tens of thousands of tasks.
type Bag struct {
	buf    []Task
	head   int
	nextID int
	// minDur is a lower bound on the smallest pending duration (0 when the
	// bag has never held a task). Removals can only raise the true minimum,
	// so the bound stays valid without rescanning; it lets Take reject
	// nothing-fits periods without touching the pending list.
	minDur quant.Tick
}

// NewBag builds a bag from explicit tasks.
func NewBag(tasks []Task) *Bag {
	b := &Bag{buf: make([]Task, len(tasks))}
	copy(b.buf, tasks)
	for _, t := range tasks {
		if t.ID >= b.nextID {
			b.nextID = t.ID + 1
		}
		if b.minDur == 0 || t.Duration < b.minDur {
			b.minDur = t.Duration
		}
	}
	return b
}

// pending is the live queue view.
func (b *Bag) pending() []Task { return b.buf[b.head:] }

// noteAdded folds newly added tasks into the min-duration bound.
func (b *Bag) noteAdded(tasks []Task) {
	for _, t := range tasks {
		if b.minDur == 0 || t.Duration < b.minDur {
			b.minDur = t.Duration
		}
	}
}

// Remaining reports how many tasks are still pending.
func (b *Bag) Remaining() int { return len(b.buf) - b.head }

// RemainingWork reports the total duration of pending tasks.
func (b *Bag) RemainingWork() quant.Tick {
	var sum quant.Tick
	for _, t := range b.pending() {
		sum += t.Duration
	}
	return sum
}

// Take removes and returns a set of tasks that fits within capacity, scanning
// the bag in order and skipping tasks that do not fit (first-fit). The
// returned tasks' durations sum to at most capacity. Nothing fitting returns
// nil. Callers that can reuse a buffer should prefer TakeInto — Take pays a
// fresh slice per call.
func (b *Bag) Take(capacity quant.Tick) []Task {
	got := b.TakeInto(nil, capacity)
	if len(got) == 0 {
		return nil
	}
	return got
}

// TakeInto is Take appending into the caller's buffer: taken tasks land in
// dst and the extended slice is returned, with dst returned unchanged when
// nothing fits. One warm buffer makes the simulator's per-period task
// shipping allocation-free — the intermediate slice Take materializes per
// call is the single largest allocation source on the farm hot path.
//
// The scan stops as soon as the residual capacity can fit nothing more
// (durations are ≥ 1), so the common period — a handful of tasks off the
// front of a deep queue — costs O(taken + skipped), not O(pending): consumed
// prefixes slice off without copying and skipped tasks compact in place.
// That bound is what keeps fleet-scale jobs (millions of pending tasks)
// linear instead of quadratic in the task count.
func (b *Bag) TakeInto(dst []Task, capacity quant.Tick) []Task {
	pending := b.pending()
	if capacity < 1 || capacity < b.minDur || len(pending) == 0 {
		return dst
	}
	base := len(dst)
	w := 0 // skipped tasks compact to pending[:w] as the scan advances
	i := 0
	for ; i < len(pending); i++ {
		t := pending[i]
		if t.Duration <= capacity {
			dst = append(dst, t)
			capacity -= t.Duration
			if capacity < 1 || capacity < b.minDur {
				// Nothing pending can be smaller than minDur: the period is
				// as full as first-fit can make it, stop hunting.
				i++
				break
			}
		} else {
			// Skipped: compact in place (w ≤ i always, so nothing unread is
			// clobbered). No side buffer, no allocation.
			pending[w] = t
			w++
		}
	}
	if len(dst) == base {
		return dst
	}
	if w > 0 {
		// Slide the skipped run back in front of the unscanned tail
		// (overlap-safe: copy is memmove).
		copy(pending[i-w:i], pending[:w])
	}
	b.head += i - w
	return dst
}

// Return puts tasks back at the front of the bag, preserving their order —
// used when an interrupt kills the period that was running them. When the
// tasks fit in the headroom an earlier Take vacated (the overwhelmingly
// common case: a kill returns what was just taken), they are copied back in
// place with no allocation.
func (b *Bag) Return(tasks []Task) {
	if len(tasks) == 0 {
		return
	}
	if n := len(tasks); b.head >= n {
		b.head -= n
		copy(b.buf[b.head:], tasks)
	} else {
		pending := b.pending()
		b.buf = append(append(make([]Task, 0, len(tasks)+len(pending)), tasks...), pending...)
		b.head = 0
	}
	b.noteAdded(tasks)
}

// Append adds tasks at the back of the bag — the landing spot for work
// migrated in from another queue (front is reserved for killed in-flight
// tasks, which stay next in line).
func (b *Bag) Append(tasks []Task) {
	b.buf = append(b.buf, tasks...)
	b.noteAdded(tasks)
}

// Steal removes and returns up to n tasks from the back of the bag, in bag
// order — deque semantics: the owner drains the front, a thief takes the
// back, so the two interleave minimally.
func (b *Bag) Steal(n int) []Task {
	pending := b.pending()
	if n < 1 || len(pending) == 0 {
		return nil
	}
	if n > len(pending) {
		n = len(pending)
	}
	cut := len(pending) - n
	stolen := append([]Task(nil), pending[cut:]...)
	b.buf = b.buf[:b.head+cut]
	return stolen
}

// Deal splits a task set into n hands by round-robin on task index — the
// deterministic partition the sharded farm bag starts from. Task i lands in
// hand i mod n, so the split is a pure function of (tasks, n): independent
// of worker scheduling, and every hand sees a representative duration mix
// even when the set is sorted.
func Deal(tasks []Task, n int) [][]Task {
	if n < 1 {
		n = 1
	}
	hands := make([][]Task, n)
	per := len(tasks)/n + 1
	for h := range hands {
		hands[h] = make([]Task, 0, per)
	}
	for i, t := range tasks {
		hands[i%n] = append(hands[i%n], t)
	}
	return hands
}

// CompletedPrefix returns the length of the longest prefix of tasks that
// runs to completion within the first done ticks of a period's useful work.
// Tasks execute sequentially in shipping order, so the tasks an intra-period
// checkpoint at work-offset done has saved are exactly this prefix — the
// simulator banks them and returns only the suffix to the bag on a kill.
func CompletedPrefix(tasks []Task, done quant.Tick) int {
	n := 0
	for _, t := range tasks {
		if t.Duration > done {
			break
		}
		done -= t.Duration
		n++
	}
	return n
}

// Durations sums the durations of a task set.
func Durations(tasks []Task) quant.Tick {
	var sum quant.Tick
	for _, t := range tasks {
		sum += t.Duration
	}
	return sum
}

// --- generators ---------------------------------------------------------------

// Fixed returns n tasks of identical duration d — the workload shape of the
// coscheduling auction baseline [1].
func Fixed(n int, d quant.Tick) []Task {
	if d < 1 {
		d = 1
	}
	out := make([]Task, n)
	for i := range out {
		out[i] = Task{ID: i, Duration: d}
	}
	return out
}

// Uniform returns n tasks with durations uniform in [lo, hi].
func Uniform(n int, lo, hi quant.Tick, seed int64) []Task {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Task, n)
	for i := range out {
		out[i] = Task{ID: i, Duration: lo + quant.Tick(rng.Int63n(int64(hi-lo+1)))}
	}
	return out
}

// Bimodal returns n tasks that are `small` with probability 1−fracLarge and
// `large` otherwise — render-farm style workloads (cheap frames, expensive
// hero frames).
func Bimodal(n int, small, large quant.Tick, fracLarge float64, seed int64) []Task {
	if small < 1 {
		small = 1
	}
	if large < small {
		large = small
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Task, n)
	for i := range out {
		d := small
		if rng.Float64() < fracLarge {
			d = large
		}
		out[i] = Task{ID: i, Duration: d}
	}
	return out
}

// Exponential returns n tasks with (clamped) exponentially distributed
// durations of the given mean — heavy-ish tails without unbounded outliers.
func Exponential(n int, mean float64, seed int64) []Task {
	if mean < 1 {
		mean = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Task, n)
	for i := range out {
		d := quant.Tick(rng.ExpFloat64() * mean)
		if d < 1 {
			d = 1
		}
		out[i] = Task{ID: i, Duration: d}
	}
	return out
}

// Validate checks a task set for legal durations and distinct IDs.
func Validate(tasks []Task) error {
	seen := make(map[int]bool, len(tasks))
	for i, t := range tasks {
		if t.Duration < 1 {
			return fmt.Errorf("task: task %d (index %d) has illegal duration %d", t.ID, i, t.Duration)
		}
		if seen[t.ID] {
			return fmt.Errorf("task: duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}
