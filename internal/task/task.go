// Package task models the data-parallel workload the paper's schedules carry:
// a bag of indivisible tasks whose running times are known perfectly and
// include the marginal cost of shipping their inputs and outputs (§2.1).
//
// The fluid model banks t ⊖ c work units per completed period; a real
// data-parallel job banks whole tasks only. The Packer fills each period's
// capacity with tasks and the simulator accounts the difference — the
// quantization loss — which experiment E10 measures against task granularity.
package task

import (
	"fmt"
	"math/rand"

	"cyclesteal/internal/quant"
)

// Task is one indivisible unit of data-parallel work. Duration includes the
// marginal input/output transfer time, per the paper's accounting.
type Task struct {
	ID       int
	Duration quant.Tick
}

// Bag is an ordered multiset of pending tasks. Take removes a prefix-greedy
// fitting set; Return puts killed tasks back at the front (they were in
// flight and remain next in line). Bag is not safe for concurrent use; the
// cluster driver gives each workstation its own bag or shards one.
type Bag struct {
	pending []Task
	nextID  int
}

// NewBag builds a bag from explicit tasks.
func NewBag(tasks []Task) *Bag {
	b := &Bag{pending: make([]Task, len(tasks))}
	copy(b.pending, tasks)
	for _, t := range tasks {
		if t.ID >= b.nextID {
			b.nextID = t.ID + 1
		}
	}
	return b
}

// Remaining reports how many tasks are still pending.
func (b *Bag) Remaining() int { return len(b.pending) }

// RemainingWork reports the total duration of pending tasks.
func (b *Bag) RemainingWork() quant.Tick {
	var sum quant.Tick
	for _, t := range b.pending {
		sum += t.Duration
	}
	return sum
}

// Take removes and returns a set of tasks that fits within capacity, scanning
// the bag in order and skipping tasks that do not fit (first-fit). The
// returned tasks' durations sum to at most capacity.
func (b *Bag) Take(capacity quant.Tick) []Task {
	if capacity < 1 || len(b.pending) == 0 {
		return nil
	}
	var taken []Task
	var kept []Task
	for _, t := range b.pending {
		if t.Duration <= capacity {
			taken = append(taken, t)
			capacity -= t.Duration
		} else {
			kept = append(kept, t)
		}
	}
	if taken == nil {
		return nil
	}
	b.pending = append(kept[:0:0], kept...)
	return taken
}

// Return puts tasks back at the front of the bag, preserving their order —
// used when an interrupt kills the period that was running them.
func (b *Bag) Return(tasks []Task) {
	if len(tasks) == 0 {
		return
	}
	b.pending = append(append(make([]Task, 0, len(tasks)+len(b.pending)), tasks...), b.pending...)
}

// Durations sums the durations of a task set.
func Durations(tasks []Task) quant.Tick {
	var sum quant.Tick
	for _, t := range tasks {
		sum += t.Duration
	}
	return sum
}

// --- generators ---------------------------------------------------------------

// Fixed returns n tasks of identical duration d — the workload shape of the
// coscheduling auction baseline [1].
func Fixed(n int, d quant.Tick) []Task {
	if d < 1 {
		d = 1
	}
	out := make([]Task, n)
	for i := range out {
		out[i] = Task{ID: i, Duration: d}
	}
	return out
}

// Uniform returns n tasks with durations uniform in [lo, hi].
func Uniform(n int, lo, hi quant.Tick, seed int64) []Task {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Task, n)
	for i := range out {
		out[i] = Task{ID: i, Duration: lo + quant.Tick(rng.Int63n(int64(hi-lo+1)))}
	}
	return out
}

// Bimodal returns n tasks that are `small` with probability 1−fracLarge and
// `large` otherwise — render-farm style workloads (cheap frames, expensive
// hero frames).
func Bimodal(n int, small, large quant.Tick, fracLarge float64, seed int64) []Task {
	if small < 1 {
		small = 1
	}
	if large < small {
		large = small
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Task, n)
	for i := range out {
		d := small
		if rng.Float64() < fracLarge {
			d = large
		}
		out[i] = Task{ID: i, Duration: d}
	}
	return out
}

// Exponential returns n tasks with (clamped) exponentially distributed
// durations of the given mean — heavy-ish tails without unbounded outliers.
func Exponential(n int, mean float64, seed int64) []Task {
	if mean < 1 {
		mean = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Task, n)
	for i := range out {
		d := quant.Tick(rng.ExpFloat64() * mean)
		if d < 1 {
			d = 1
		}
		out[i] = Task{ID: i, Duration: d}
	}
	return out
}

// Validate checks a task set for legal durations and distinct IDs.
func Validate(tasks []Task) error {
	seen := make(map[int]bool, len(tasks))
	for i, t := range tasks {
		if t.Duration < 1 {
			return fmt.Errorf("task: task %d (index %d) has illegal duration %d", t.ID, i, t.Duration)
		}
		if seen[t.ID] {
			return fmt.Errorf("task: duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}
