// Package theory implements every closed form and bound stated in the paper
// as callable predictions, so that experiments can print paper-vs-measured
// rows and tests can assert the measured system tracks the analysis.
//
// All functions work in continuous time units (the paper's domain). The
// symbols follow the paper: U usable lifespan, p interrupt bound, c setup
// cost, m(p)[U] schedule length, W work production.
package theory

import "math"

// ZeroWorkThreshold returns (p+1)c: Prop. 4.1(c) shows no schedule can
// guarantee positive work when U ≤ (p+1)c, because the adversary can kill
// every productive period.
func ZeroWorkThreshold(p int, c float64) float64 {
	return float64(p+1) * c
}

// W0 is Prop. 4.1(d): with no interrupts left the unique optimal schedule is
// the single period of length U, guaranteeing U − c (never negative).
func W0(U, c float64) float64 {
	if U <= c {
		return 0
	}
	return U - c
}

// --- §3.1: the non-adaptive guideline -------------------------------------

// NonAdaptiveM returns the §3.1 schedule length m(p)[U] = ⌊√(pU/c)⌋,
// clamped to at least 1.
func NonAdaptiveM(U float64, p int, c float64) int {
	if p <= 0 {
		return 1
	}
	m := int(math.Floor(math.Sqrt(float64(p) * U / c)))
	if m < 1 {
		return 1
	}
	return m
}

// NonAdaptivePeriod returns the §3.1 common period length √(cU/p).
func NonAdaptivePeriod(U float64, p int, c float64) float64 {
	if p <= 0 {
		return U
	}
	return math.Sqrt(c * U / float64(p))
}

// NonAdaptiveWorkExact returns the exact guaranteed output of the §3.1
// guideline schedule realized as m equal periods of U/m: the adversary kills
// the last p periods at their last instants (the paper's §3.1 analysis), so
// W = (m−p)·(U/m − c), clamped at 0.
func NonAdaptiveWorkExact(U float64, p int, c float64) float64 {
	m := NonAdaptiveM(U, p, c)
	if m <= p {
		return 0
	}
	per := U / float64(m)
	if per <= c {
		return 0
	}
	return float64(m-p) * (per - c)
}

// NonAdaptiveWorkLeading returns the leading-order form of the §3.1 analysis
// as recomputed from the adversary argument: U − 2√(pcU) + pc. The scanned
// paper prints a formula ambiguous between 2√(pcU) and √(2pcU); experiment E3
// discriminates (the measured curve matches 2√(pcU)).
func NonAdaptiveWorkLeading(U float64, p int, c float64) float64 {
	if p <= 0 {
		return W0(U, c)
	}
	w := U - 2*math.Sqrt(float64(p)*c*U) + float64(p)*c
	if w < 0 {
		return 0
	}
	return w
}

// NonAdaptiveWorkAsPrinted returns the alternative reading of the scanned
// §3.1 formula, U − √(2pcU) + pc, kept so E3 can print both candidates next
// to the measured worst case.
func NonAdaptiveWorkAsPrinted(U float64, p int, c float64) float64 {
	if p <= 0 {
		return W0(U, c)
	}
	w := U - math.Sqrt(2*float64(p)*c*U) + float64(p)*c
	if w < 0 {
		return 0
	}
	return w
}

// --- §3.2 / §5.1: the adaptive guideline -----------------------------------

// AdaptiveDeficitCoefficient returns (2 − 2^{1−p}), the coefficient of
// √(2cU) in Theorem 5.1's deficit term for the adaptive guideline Σ_a^(p).
// It grows from 1 at p = 1 toward 2 as p → ∞.
func AdaptiveDeficitCoefficient(p int) float64 {
	if p <= 0 {
		return 0
	}
	return 2 - math.Pow(2, float64(1-p))
}

// AdaptiveWorkLowerBound returns the leading terms of Theorem 5.1:
// U − (2 − 2^{1−p})·√(2cU). The theorem's full statement subtracts a further
// O(U^{1/4} + pc); callers supply their own constant for that slack (see
// AdaptiveSlack).
func AdaptiveWorkLowerBound(U float64, p int, c float64) float64 {
	if p <= 0 {
		return W0(U, c)
	}
	w := U - AdaptiveDeficitCoefficient(p)*math.Sqrt(2*c*U)
	if w < 0 {
		return 0
	}
	return w
}

// AdaptiveSlack returns K·(U^{1/4}·√c + p·c), the shape of Theorem 5.1's
// low-order additive slack with an explicit constant K. The √c factor makes
// the term scale-invariant (the paper states O(U^{1/4} + pc) with c treated
// as a constant; measuring times in units of c gives U^{1/4} ↦ (U/c)^{1/4}·c^{1/4}…
// we adopt the dimensionally consistent form c^{3/4}·U^{1/4}).
func AdaptiveSlack(U float64, p int, c float64, K float64) float64 {
	return K * (math.Pow(c, 0.75)*math.Pow(U, 0.25) + float64(p)*c)
}

// GuidelineTailCount returns ℓ_p = ⌈2p/3⌉, the number of terminal (3/2)c
// periods in the adaptive guideline episode-schedule S_a^(p)[U].
func GuidelineTailCount(p int) int {
	if p <= 0 {
		return 0
	}
	return (2*p + 2) / 3
}

// GuidelineRampStep returns δ = 4^{1−p}·c, the arithmetic step between
// consecutive ramp periods of S_a^(p)[U].
func GuidelineRampStep(p int, c float64) float64 {
	return math.Pow(4, float64(1-p)) * c
}

// GuidelineM returns the §3.2 schedule length m(p)[U] = ⌊2^{p−1/2}·√(U/c)⌋ +
// p·2^{2p−1}. At p = 1 this is ⌊√(2U/c)⌋ + 2, the value Table 2 reports.
func GuidelineM(U float64, p int, c float64) int {
	if p <= 0 {
		return 1
	}
	lead := math.Floor(math.Pow(2, float64(p)-0.5) * math.Sqrt(U/c))
	return int(lead) + p*(1<<(2*p-1))
}

// --- §5.2 / Table 2: optimal schedules for p = 1 ---------------------------

// OptimalP1M returns eq. (5.1): m^(1)[U] = ⌈√(2U/c − 7/4) − 1/2⌉, the period
// count of the optimal 1-interrupt episode-schedule, clamped to at least 2
// (the derivation assumes the two terminal (1+ε)c periods exist).
func OptimalP1M(U, c float64) int {
	arg := 2*U/c - 7.0/4.0
	if arg < 0 {
		return 2
	}
	m := int(math.Ceil(math.Sqrt(arg) - 0.5))
	if m < 2 {
		return 2
	}
	return m
}

// OptimalP1Epsilon returns ε = (U−c)/(mc) − (m−1)/2, the fractional excess
// that makes the optimal p = 1 period lengths sum exactly to U. For m chosen
// by eq. (5.1), ε lands in (0, 1].
func OptimalP1Epsilon(U, c float64, m int) float64 {
	return (U-c)/(float64(m)*c) - float64(m-1)/2
}

// OptimalP1MAdjusted returns eq. (5.1)'s m nudged by at most a step so that
// ε ∈ (0, 1]; integrality of m occasionally pushes the raw formula's ε just
// outside the half-open interval.
func OptimalP1MAdjusted(U, c float64) int {
	m := OptimalP1M(U, c)
	for m > 2 && OptimalP1Epsilon(U, c, m) <= 0 {
		m--
	}
	for OptimalP1Epsilon(U, c, m) > 1 {
		m++
	}
	return m
}

// OptimalP1Periods returns the full period list of S_opt^(1)[U] per §5.2:
// t_m = t_{m−1} = (1+ε)c and t_k = t_{k+1} + c = (m−k+ε)c for k ≤ m−2.
func OptimalP1Periods(U, c float64) []float64 {
	m := OptimalP1MAdjusted(U, c)
	eps := OptimalP1Epsilon(U, c, m)
	out := make([]float64, m)
	for k := 1; k <= m-2; k++ {
		out[k-1] = (float64(m-k) + eps) * c
	}
	out[m-2] = (1 + eps) * c
	out[m-1] = (1 + eps) * c
	return out
}

// OptimalP1PeriodApprox returns Table 2's approximate period length for
// S_opt^(1): t_k ≈ √(2cU) − kc (for 1 ≤ k ≤ m−2).
func OptimalP1PeriodApprox(U, c float64, k int) float64 {
	return math.Sqrt(2*c*U) - float64(k)*c
}

// GuidelineP1PeriodApprox returns Table 2's approximate period length for
// S_a^(1): t_k ≈ √(2cU) − (k − 7/2)c (for 1 ≤ k ≤ m−2).
func GuidelineP1PeriodApprox(U, c float64, k int) float64 {
	return math.Sqrt(2*c*U) - (float64(k)-3.5)*c
}

// OptimalP1Work returns Table 2's W^(1)[U] ≈ U − √(2cU) − c/2, the optimal
// guaranteed output with one potential interrupt.
func OptimalP1Work(U, c float64) float64 {
	w := U - math.Sqrt(2*c*U) - c/2
	if w < 0 {
		return 0
	}
	return w
}

// GuidelineP1Work returns Table 2's row for S_a^(1):
// W ≈ U − √(2cU) − O(U^{1/4} + c); the leading terms coincide with optimal.
func GuidelineP1Work(U, c float64) float64 {
	w := U - math.Sqrt(2*c*U)
	if w < 0 {
		return 0
	}
	return w
}

// --- the equalization recursion ---------------------------------------------
//
// Theorem 4.3 says the optimal episode-schedule equalizes the damage of every
// adversary option. Writing the optimal guaranteed output as
// W(p)[U] ≈ U − K_p·√(2cU) and solving the equalization condition with the
// self-similar ansatz t_k = α_p·√(2c·R_k) (R_k the residual after period k —
// exact for p = 1, where t_k = √(2c·R_k) reproduces §5.2's ladder
// t_k ≈ √(2cU) − kc) yields
//
//	α_p² + K_{p−1}·α_p − 1 = 0,   K_p = K_{p−1} + α_p,   K_0 = 0.
//
// Equivalently K_p = 1/α_p: the adversary is exactly indifferent between
// abstaining (deficit m·c = √(2cU)/α_p) and interrupting anywhere (deficit
// K_p√(2cU)). K_1 = 1 matches the paper's proven p = 1 case; K_2 is the
// golden ratio 1.618…; K_p ~ √(2p) as p → ∞. The exact game solver
// (internal/game) confirms these coefficients to three digits, while the
// scanned paper's printed coefficient (2−2^{1−p}) and printed schedule length
// 2^{p−1/2}√(U/c) are mutually inconsistent for p ≥ 2 and agree with K_p only
// at p = 1 (see DESIGN.md §4 and EXPERIMENTS.md E4).

// EqualizedAlpha returns α_p, the self-similar period coefficient of the
// equalization schedule: the first period of an episode with residual R and p
// interrupts outstanding is α_p·√(2cR).
func EqualizedAlpha(p int) float64 {
	if p <= 0 {
		return 0
	}
	K := OptimalDeficitCoefficient(p - 1)
	return (math.Sqrt(K*K+4) - K) / 2
}

// OptimalDeficitCoefficient returns K_p, the measured-and-derived coefficient
// of √(2cU) in the optimal guaranteed-output deficit U − W(p)[U].
func OptimalDeficitCoefficient(p int) float64 {
	K := 0.0
	for i := 1; i <= p; i++ {
		alpha := (math.Sqrt(K*K+4) - K) / 2
		K += alpha
	}
	return K
}

// OptimalWorkPrediction returns the leading-order prediction of the exact
// optimum, U − K_p·√(2cU), clamped at zero.
func OptimalWorkPrediction(U float64, p int, c float64) float64 {
	if p <= 0 {
		return W0(U, c)
	}
	w := U - OptimalDeficitCoefficient(p)*math.Sqrt(2*c*U)
	if w < 0 {
		return 0
	}
	return w
}

// EqualizedM returns the leading-order episode length of the equalization
// schedule, K_p·√(2U/c) — which reproduces Table 2's m ≈ √(2U/c) at p = 1.
func EqualizedM(U float64, p int, c float64) int {
	if p <= 0 {
		return 1
	}
	return int(math.Round(OptimalDeficitCoefficient(p) * math.Sqrt(2*U/c)))
}

// --- comparisons ------------------------------------------------------------

// DeficitNonAdaptive returns the leading deficit coefficient of the §3.1
// guideline in units of √(cU): 2√p (so deficit ≈ 2√(pcU)).
func DeficitNonAdaptive(p int) float64 {
	return 2 * math.Sqrt(float64(p))
}

// DeficitAdaptive returns the leading deficit coefficient of the §3.2
// guideline in units of √(cU): (2−2^{1−p})·√2.
func DeficitAdaptive(p int) float64 {
	return AdaptiveDeficitCoefficient(p) * math.Sqrt2
}

// DeficitRatio returns the asymptotic ratio of non-adaptive to adaptive
// deficit under the paper's printed coefficients,
// 2√p / ((2−2^{1−p})√2): √2 at p = 1, 4/3 at p = 2, …; the factor by
// which adaptivity shrinks the work lost to the adversary.
func DeficitRatio(p int) float64 {
	if p <= 0 {
		return 1
	}
	return DeficitNonAdaptive(p) / DeficitAdaptive(p)
}

// DeficitRatioMeasured returns the same ratio against the equalization
// coefficients K_p that the exact solver confirms: 2√p / (K_p·√2). It equals
// √2 at p = 1 (agreeing with the paper's one proven case) and decays
// monotonically toward 1 as p → ∞ (K_p ~ √(2p), so both deficits approach
// 2√(pcU)): adaptivity buys the most — 41% less deficit — when interrupts
// are few, which is exactly the regime the draconian-laptop story motivates.
// Contrast the printed Theorem 5.1 coefficient, under which this ratio would
// grow unboundedly like √p — a further symptom that the printed constant is
// a scan artifact.
func DeficitRatioMeasured(p int) float64 {
	if p <= 0 {
		return 1
	}
	return DeficitNonAdaptive(p) / (OptimalDeficitCoefficient(p) * math.Sqrt2)
}
