package theory

import (
	"math"
	"testing"

	"cyclesteal/internal/quant"
)

// The equalization recursion's self-duality: K_p = 1/α_p exactly, because
// the adversary must be indifferent between abstaining (deficit √(2cU)/α_p)
// and interrupting (deficit K_p·√(2cU)).
func TestAlphaKpDuality(t *testing.T) {
	for p := 1; p <= 20; p++ {
		alpha := EqualizedAlpha(p)
		kp := OptimalDeficitCoefficient(p)
		if !quant.ApproxEqual(alpha*kp, 1, 1e-12) {
			t.Errorf("p=%d: α_p·K_p = %.15f, want 1", p, alpha*kp)
		}
	}
}

func TestRecursionDefiningEquation(t *testing.T) {
	// α_p² + K_{p−1}·α_p − 1 = 0.
	for p := 1; p <= 20; p++ {
		alpha := EqualizedAlpha(p)
		kPrev := OptimalDeficitCoefficient(p - 1)
		if got := alpha*alpha + kPrev*alpha - 1; math.Abs(got) > 1e-12 {
			t.Errorf("p=%d: defining equation residual %g", p, got)
		}
	}
}

func TestKnownCoefficients(t *testing.T) {
	// K_1 = 1 (the paper's proven case); K_2 = golden ratio.
	if got := OptimalDeficitCoefficient(1); !quant.ApproxEqual(got, 1, 1e-12) {
		t.Errorf("K_1 = %.15f", got)
	}
	phi := (1 + math.Sqrt(5)) / 2
	if got := OptimalDeficitCoefficient(2); !quant.ApproxEqual(got, phi, 1e-12) {
		t.Errorf("K_2 = %.15f, want golden ratio %.15f", got, phi)
	}
	if got := OptimalDeficitCoefficient(0); got != 0 {
		t.Errorf("K_0 = %g", got)
	}
	if got := EqualizedAlpha(0); got != 0 {
		t.Errorf("α_0 = %g", got)
	}
	if got := EqualizedAlpha(1); !quant.ApproxEqual(got, 1, 1e-12) {
		t.Errorf("α_1 = %g, want 1", got)
	}
}

func TestKpMonotoneAlphaShrinks(t *testing.T) {
	for p := 2; p <= 30; p++ {
		if OptimalDeficitCoefficient(p) <= OptimalDeficitCoefficient(p-1) {
			t.Errorf("K_%d not increasing", p)
		}
		if EqualizedAlpha(p) >= EqualizedAlpha(p-1) {
			t.Errorf("α_%d not decreasing", p)
		}
	}
}

// K_p² ≈ 2p − O(log p): the √(2p) asymptote that makes the adaptive/
// non-adaptive deficit ratio converge back to √2.
func TestKpAsymptote(t *testing.T) {
	for _, p := range []int{10, 50, 200} {
		kp := OptimalDeficitCoefficient(p)
		ratio := kp * kp / (2 * float64(p))
		if ratio < 0.75 || ratio > 1.0 {
			t.Errorf("p=%d: K_p²/(2p) = %g, want → 1⁻", p, ratio)
		}
	}
	// The measured deficit ratio is √2 at p = 1 and decays toward 1: both
	// deficits approach 2√(pcU), so adaptivity's edge concentrates at small p.
	if r1 := DeficitRatioMeasured(1); math.Abs(r1-math.Sqrt2) > 1e-12 {
		t.Errorf("deficit ratio at p=1 = %g, want √2", r1)
	}
	if r200 := DeficitRatioMeasured(200); math.Abs(r200-1) > 0.01 {
		t.Errorf("deficit ratio at p=200 = %g, want → 1", r200)
	}
	prev := math.Inf(1)
	for _, p := range []int{1, 2, 5, 20, 100} {
		r := DeficitRatioMeasured(p)
		if r <= 1 || r > math.Sqrt2+1e-9 {
			t.Errorf("p=%d: measured deficit ratio %g outside (1, √2]", p, r)
		}
		if r >= prev {
			t.Errorf("p=%d: ratio %g not decreasing", p, r)
		}
		prev = r
	}
}

func TestOptimalWorkPredictionShape(t *testing.T) {
	// Decreasing in p, increasing in U, clamped at 0.
	U, c := 10000.0, 1.0
	prev := math.Inf(1)
	for p := 0; p <= 8; p++ {
		w := OptimalWorkPrediction(U, p, c)
		if w > prev {
			t.Errorf("prediction increased at p=%d", p)
		}
		prev = w
	}
	if OptimalWorkPrediction(1, 5, 1) != 0 {
		t.Error("tiny-U prediction should clamp to 0")
	}
	if OptimalWorkPrediction(100, 0, 1) != 99 {
		t.Error("p=0 prediction should be U−c")
	}
}

func TestEqualizedM(t *testing.T) {
	// p=1: m = √(2U/c) — Table 2's schedule length.
	if got, want := EqualizedM(5000, 1, 1), int(math.Round(math.Sqrt(10000))); got != want {
		t.Errorf("m(1) = %d, want %d", got, want)
	}
	if EqualizedM(5000, 0, 1) != 1 {
		t.Error("p=0 m should be 1")
	}
	// Grows with p like K_p.
	if EqualizedM(5000, 4, 1) <= EqualizedM(5000, 1, 1) {
		t.Error("m should grow with p")
	}
}
