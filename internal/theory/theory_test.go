package theory

import (
	"math"
	"testing"

	"cyclesteal/internal/quant"
)

func TestZeroWorkThreshold(t *testing.T) {
	if got := ZeroWorkThreshold(3, 2); got != 8 {
		t.Errorf("ZeroWorkThreshold(3, 2) = %g, want 8", got)
	}
}

func TestW0(t *testing.T) {
	if got := W0(100, 1); got != 99 {
		t.Errorf("W0(100,1) = %g, want 99", got)
	}
	if got := W0(0.5, 1); got != 0 {
		t.Errorf("W0(0.5,1) = %g, want 0", got)
	}
}

func TestNonAdaptiveM(t *testing.T) {
	// m = ⌊√(pU/c)⌋
	if got := NonAdaptiveM(10000, 1, 1); got != 100 {
		t.Errorf("m = %d, want 100", got)
	}
	if got := NonAdaptiveM(10000, 4, 1); got != 200 {
		t.Errorf("m = %d, want 200", got)
	}
	if got := NonAdaptiveM(10000, 0, 1); got != 1 {
		t.Errorf("p=0: m = %d, want 1", got)
	}
	if got := NonAdaptiveM(0.5, 1, 10); got != 1 {
		t.Errorf("tiny U: m = %d, want 1 (clamped)", got)
	}
}

func TestNonAdaptivePeriod(t *testing.T) {
	// t = √(cU/p)
	if got := NonAdaptivePeriod(10000, 1, 1); got != 100 {
		t.Errorf("period = %g, want 100", got)
	}
	if got := NonAdaptivePeriod(10000, 4, 1); got != 50 {
		t.Errorf("period = %g, want 50", got)
	}
	if got := NonAdaptivePeriod(123, 0, 1); got != 123 {
		t.Errorf("p=0: period = %g, want U", got)
	}
}

func TestNonAdaptiveWorkExactMatchesHandComputation(t *testing.T) {
	// U=10000, p=1, c=1: m=100, per=100, W = 99·99 = 9801.
	if got := NonAdaptiveWorkExact(10000, 1, 1); got != 9801 {
		t.Errorf("W = %g, want 9801", got)
	}
	// Degenerate: m ≤ p ⇒ 0.
	if got := NonAdaptiveWorkExact(4, 3, 1); got != 0 {
		t.Errorf("degenerate W = %g, want 0", got)
	}
}

func TestNonAdaptiveWorkLeadingForms(t *testing.T) {
	U, c := 1e6, 1.0
	p := 1
	lead := NonAdaptiveWorkLeading(U, p, c)
	wantLead := U - 2*math.Sqrt(U) + 1
	if !quant.ApproxEqual(lead, wantLead, 1e-6) {
		t.Errorf("leading form = %g, want %g", lead, wantLead)
	}
	printed := NonAdaptiveWorkAsPrinted(U, p, c)
	wantPrinted := U - math.Sqrt(2*U) + 1
	if !quant.ApproxEqual(printed, wantPrinted, 1e-6) {
		t.Errorf("printed form = %g, want %g", printed, wantPrinted)
	}
	// The exact guideline value must track the recomputed (2√(pcU)) form, not
	// the √(2pcU) reading: at U/c = 10^6 they differ by ≈ 0.59√U.
	exact := NonAdaptiveWorkExact(U, p, c)
	if math.Abs(exact-lead) > 50 { // O(1)-ish at this scale
		t.Errorf("exact %g strays from leading form %g", exact, lead)
	}
	if math.Abs(exact-printed) < 400 {
		t.Errorf("exact %g unexpectedly matches the ambiguous printed form %g", exact, printed)
	}
	// p = 0 falls back to W0 in both.
	if NonAdaptiveWorkLeading(100, 0, 1) != 99 || NonAdaptiveWorkAsPrinted(100, 0, 1) != 99 {
		t.Error("p=0 forms should equal W0")
	}
}

func TestNonAdaptiveWorkClampedAtZero(t *testing.T) {
	if got := NonAdaptiveWorkLeading(4, 4, 1); got < 0 {
		t.Errorf("leading form went negative: %g", got)
	}
	if got := NonAdaptiveWorkAsPrinted(2, 8, 1); got < 0 {
		t.Errorf("printed form went negative: %g", got)
	}
}

func TestAdaptiveDeficitCoefficient(t *testing.T) {
	cases := []struct {
		p    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {3, 1.75}, {10, 2 - math.Pow(2, -9)},
	}
	for _, c := range cases {
		if got := AdaptiveDeficitCoefficient(c.p); !quant.ApproxEqual(got, c.want, 1e-12) {
			t.Errorf("coeff(p=%d) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestAdaptiveWorkLowerBound(t *testing.T) {
	U, c := 1e6, 1.0
	// p=1: U − √(2cU)
	want := U - math.Sqrt(2*U)
	if got := AdaptiveWorkLowerBound(U, 1, c); !quant.ApproxEqual(got, want, 1e-6) {
		t.Errorf("bound(p=1) = %g, want %g", got, want)
	}
	if got := AdaptiveWorkLowerBound(U, 0, c); got != U-c {
		t.Errorf("bound(p=0) = %g, want %g", got, U-c)
	}
	if got := AdaptiveWorkLowerBound(1, 5, 1); got != 0 {
		t.Errorf("tiny-U bound should clamp to 0, got %g", got)
	}
}

func TestAdaptiveSlackShape(t *testing.T) {
	if got := AdaptiveSlack(10000, 2, 1, 1); !quant.ApproxEqual(got, 12, 1e-9) {
		// c=1: U^{1/4} = 10, pc = 2.
		t.Errorf("slack = %g, want 12", got)
	}
	if got := AdaptiveSlack(10000, 2, 1, 3); !quant.ApproxEqual(got, 36, 1e-9) {
		t.Errorf("slack K-scaling failed: %g", got)
	}
}

func TestGuidelineTailCount(t *testing.T) {
	// ℓ_p = ⌈2p/3⌉
	cases := []struct{ p, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 4}, {6, 4}, {9, 6},
	}
	for _, c := range cases {
		if got := GuidelineTailCount(c.p); got != c.want {
			t.Errorf("ℓ_%d = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestGuidelineRampStep(t *testing.T) {
	if got := GuidelineRampStep(1, 2); got != 2 {
		t.Errorf("δ(p=1) = %g, want 2", got)
	}
	if got := GuidelineRampStep(3, 2); got != 0.125 {
		t.Errorf("δ(p=3) = %g, want 0.125", got)
	}
}

func TestGuidelineM(t *testing.T) {
	// Table 2: at p = 1, m = ⌊√(2U/c)⌋ + 2.
	U, c := 5000.0, 1.0
	want := int(math.Floor(math.Sqrt(2*U/c))) + 2
	if got := GuidelineM(U, 1, c); got != want {
		t.Errorf("m(1)[%g] = %d, want %d", U, got, want)
	}
	if got := GuidelineM(U, 0, c); got != 1 {
		t.Errorf("m(0) = %d, want 1", got)
	}
	// p = 2: ⌊2^{3/2}√(U/c)⌋ + 2·2^3.
	want2 := int(math.Floor(2*math.Sqrt2*math.Sqrt(U/c))) + 16
	if got := GuidelineM(U, 2, c); got != want2 {
		t.Errorf("m(2)[%g] = %d, want %d", U, got, want2)
	}
}

func TestOptimalP1M(t *testing.T) {
	// Eq (5.1): m = ⌈√(2U/c − 7/4) − 1/2⌉.
	U, c := 5000.0, 1.0
	want := int(math.Ceil(math.Sqrt(2*U/c-1.75) - 0.5))
	if got := OptimalP1M(U, c); got != want {
		t.Errorf("m = %d, want %d", got, want)
	}
	if got := OptimalP1M(0.1, 1); got != 2 {
		t.Errorf("tiny-U m = %d, want clamp to 2", got)
	}
}

func TestOptimalP1EpsilonInRange(t *testing.T) {
	c := 1.0
	for _, U := range []float64{10, 50, 100, 1000, 12345, 1e6} {
		m := OptimalP1MAdjusted(U, c)
		eps := OptimalP1Epsilon(U, c, m)
		if eps <= 0 || eps > 1 {
			t.Errorf("U=%g: ε = %g outside (0,1] at m=%d", U, eps, m)
		}
	}
}

func TestOptimalP1PeriodsSumToU(t *testing.T) {
	c := 2.0
	for _, U := range []float64{20, 100, 777, 5000} {
		periods := OptimalP1Periods(U, c)
		var sum float64
		for _, p := range periods {
			sum += p
		}
		if !quant.ApproxEqual(sum, U, 1e-6) {
			t.Errorf("U=%g: periods sum to %g", U, sum)
		}
		// Structure: t_m = t_{m−1}, and t_k = t_{k+1} + c for k ≤ m−2.
		m := len(periods)
		if m < 2 {
			t.Fatalf("U=%g: m = %d < 2", U, m)
		}
		if !quant.ApproxEqual(periods[m-1], periods[m-2], 1e-9) {
			t.Errorf("U=%g: terminal periods differ: %g vs %g", U, periods[m-2], periods[m-1])
		}
		for k := 0; k < m-2; k++ {
			if !quant.ApproxEqual(periods[k], periods[k+1]+c, 1e-9) {
				t.Errorf("U=%g: t_%d − t_%d = %g, want c = %g", U, k+1, k+2, periods[k]-periods[k+1], c)
			}
		}
	}
}

func TestOptimalP1TerminalPeriodsInThmRange(t *testing.T) {
	// Theorem 4.2: terminal period lengths lie in (c, 2c].
	c := 3.0
	for _, U := range []float64{30, 300, 3000} {
		periods := OptimalP1Periods(U, c)
		last := periods[len(periods)-1]
		if last <= c || last > 2*c {
			t.Errorf("U=%g: terminal period %g outside (c, 2c] = (%g, %g]", U, last, c, 2*c)
		}
	}
}

func TestOptimalP1WorkApprox(t *testing.T) {
	U, c := 1e6, 1.0
	want := U - math.Sqrt(2*U) - 0.5
	if got := OptimalP1Work(U, c); !quant.ApproxEqual(got, want, 1e-9) {
		t.Errorf("W(1)[U] = %g, want %g", got, want)
	}
	if got := OptimalP1Work(1, 1); got != 0 {
		t.Errorf("tiny-U W should clamp to 0, got %g", got)
	}
}

func TestGuidelineP1Work(t *testing.T) {
	U, c := 10000.0, 1.0
	if got, want := GuidelineP1Work(U, c), U-math.Sqrt(2*U); !quant.ApproxEqual(got, want, 1e-9) {
		t.Errorf("guideline W = %g, want %g", got, want)
	}
}

func TestPeriodApproxFormulas(t *testing.T) {
	U, c := 5000.0, 1.0
	root := math.Sqrt(2 * c * U)
	if got := OptimalP1PeriodApprox(U, c, 3); !quant.ApproxEqual(got, root-3, 1e-9) {
		t.Errorf("opt t_3 = %g, want %g", got, root-3)
	}
	if got := GuidelineP1PeriodApprox(U, c, 3); !quant.ApproxEqual(got, root+0.5, 1e-9) {
		t.Errorf("guideline t_3 = %g, want %g", got, root+0.5)
	}
}

func TestDeficitRatio(t *testing.T) {
	// p=1: √2. p=2: 2√2/(1.5√2) = 4/3.
	if got := DeficitRatio(1); !quant.ApproxEqual(got, math.Sqrt2, 1e-12) {
		t.Errorf("ratio(1) = %g, want √2", got)
	}
	if got := DeficitRatio(2); !quant.ApproxEqual(got, 4.0/3, 1e-12) {
		t.Errorf("ratio(2) = %g, want 4/3", got)
	}
	if got := DeficitRatio(0); got != 1 {
		t.Errorf("ratio(0) = %g, want 1", got)
	}
	// Ratio decreases toward √p·…: it must stay > 1 for all p (adaptivity wins).
	for p := 1; p <= 12; p++ {
		if DeficitRatio(p) <= 1 {
			t.Errorf("ratio(%d) = %g ≤ 1", p, DeficitRatio(p))
		}
	}
}

func TestDeficitCoefficients(t *testing.T) {
	if got := DeficitNonAdaptive(4); !quant.ApproxEqual(got, 4, 1e-12) {
		t.Errorf("non-adaptive deficit coeff(4) = %g, want 4", got)
	}
	if got := DeficitAdaptive(1); !quant.ApproxEqual(got, math.Sqrt2, 1e-12) {
		t.Errorf("adaptive deficit coeff(1) = %g, want √2", got)
	}
}
