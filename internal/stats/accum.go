package stats

import "math"

// Accumulator is a single-pass, mergeable statistics accumulator: Welford's
// online algorithm for mean and variance, exact min/max, and an optional
// bounded-error quantile sketch (see Sketch). Partial accumulators built
// over disjoint sample streams combine with Merge (Chan et al.'s parallel
// variance formula), so a replication engine can keep memory proportional to
// its worker count instead of its trial count.
//
// Merging is exact for N, Min and Max; mean and variance are exact up to
// floating-point association order, so a *fixed* partition of the sample into
// accumulators plus a *fixed* merge order yields bit-identical results run
// over run (the property internal/mc builds its determinism contract on).
// Quantiles are stronger still: the sketch merge is a level-wise union, so
// they do not depend on the merge order at all.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
	sk       *Sketch
}

// NewAccumulator returns an empty accumulator with a quantile sketch of the
// given per-level buffer capacity; capacity ≤ 0 disables quantile tracking.
func NewAccumulator(sketchCap int) *Accumulator {
	a := &Accumulator{}
	if sketchCap > 0 {
		a.sk = NewSketch(sketchCap)
	}
	return a
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if a.sk != nil {
		a.sk.Add(x)
	}
}

// Merge folds another accumulator into this one. The other accumulator is
// left untouched. Merging b into a then c differs from merging c then b only
// by floating-point association; callers wanting reproducibility must fix
// the merge order.
func (a *Accumulator) Merge(b *Accumulator) {
	if b == nil || b.n == 0 {
		return
	}
	if a.n == 0 {
		a.n, a.mean, a.m2, a.min, a.max = b.n, b.mean, b.m2, b.min, b.max
		if a.sk != nil {
			a.sk.Merge(b.sk)
		}
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	na, nb := float64(a.n), float64(b.n)
	d := b.mean - a.mean
	n := na + nb
	a.mean += d * nb / n
	a.m2 += b.m2 + d*d*na*nb/n
	a.n += b.n
	if a.sk != nil {
		a.sk.Merge(b.sk)
	}
}

// N returns the number of observations folded in so far.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the sample variance (n−1 denominator; 0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Quantile estimates the q-quantile from the sketch; it returns 0 when no
// sketch is attached or no observations have been added. The estimate's rank
// error is bounded by the sketch's RankErrorBound (see Sketch), and for a
// merged accumulator it is independent of the order the partials were merged
// in.
func (a *Accumulator) Quantile(q float64) float64 {
	if a.sk == nil {
		return 0
	}
	return a.sk.Quantile(q)
}

// SketchErrorBound returns the guaranteed maximum rank error of the attached
// quantile sketch, in observations (0 when no sketch is attached).
func (a *Accumulator) SketchErrorBound() int64 {
	if a.sk == nil {
		return 0
	}
	return a.sk.RankErrorBound()
}

// Summary freezes the accumulator into the Summary the experiment tables
// consume. Median, P90 and P99 come from the sketch (rank error bounded by
// RankErrorBound; see Sketch) and are 0 when quantile tracking is disabled.
// The confidence interval uses the t-distribution critical value for small
// n, converging to the familiar 1.96 normal approximation as n grows.
func (a *Accumulator) Summary() Summary {
	if a.n == 0 {
		return Summary{}
	}
	s := Summary{
		N:    a.n,
		Mean: a.mean,
		Min:  a.min,
		Max:  a.max,
	}
	if a.n > 1 {
		s.Std = math.Sqrt(a.Variance())
		s.SE = s.Std / math.Sqrt(float64(a.n))
	}
	half := TCritical95(a.n-1) * s.SE
	s.CI95Lo = a.mean - half
	s.CI95Hi = a.mean + half
	if a.sk != nil {
		tails := a.sk.Quantiles(0.5, 0.9, 0.99)
		s.Median, s.P90, s.P99 = tails[0], tails[1], tails[2]
	}
	return s
}

// TCritical95 returns the two-sided 95% critical value of Student's t with
// the given degrees of freedom: exact per-df values through 30, then the
// conservative step values at the standard table breakpoints (40, 60, 120),
// then the normal 1.96 (within 1% of the true value everywhere past
// df = 30). df ≤ 0 returns the normal value, matching Summarize's behaviour
// for degenerate samples.
func TCritical95(df int) float64 {
	var table = [...]float64{
		// df = 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return 1.96
	case df <= len(table):
		return table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.96
	}
}

// The strided quantile reservoir that used to live here was replaced by the
// bounded-error Sketch (see sketch.go): the reservoir's pooled-on-merge
// estimates carried no accuracy guarantee, while the sketch's rank error is
// bounded and merge-order independent.
