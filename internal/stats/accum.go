package stats

import (
	"math"
	"sort"
)

// Accumulator is a single-pass, mergeable statistics accumulator: Welford's
// online algorithm for mean and variance, exact min/max, and an optional
// fixed-size quantile reservoir. Partial accumulators built over disjoint
// sample streams combine with Merge (Chan et al.'s parallel variance
// formula), so a replication engine can keep memory proportional to its
// worker count instead of its trial count.
//
// Merging is exact for N, Min and Max; mean and variance are exact up to
// floating-point association order, so a *fixed* partition of the sample into
// accumulators plus a *fixed* merge order yields bit-identical results run
// over run (the property internal/mc builds its determinism contract on).
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
	res      *Reservoir
}

// NewAccumulator returns an empty accumulator with a quantile reservoir of
// the given capacity; capacity ≤ 0 disables quantile tracking.
func NewAccumulator(reservoirCap int) *Accumulator {
	a := &Accumulator{}
	if reservoirCap > 0 {
		a.res = NewReservoir(reservoirCap)
	}
	return a
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if a.res != nil {
		a.res.Add(x)
	}
}

// Merge folds another accumulator into this one. The other accumulator is
// left untouched. Merging b into a then c differs from merging c then b only
// by floating-point association; callers wanting reproducibility must fix
// the merge order.
func (a *Accumulator) Merge(b *Accumulator) {
	if b == nil || b.n == 0 {
		return
	}
	if a.n == 0 {
		a.n, a.mean, a.m2, a.min, a.max = b.n, b.mean, b.m2, b.min, b.max
		if a.res != nil {
			a.res.Merge(b.res)
		}
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	na, nb := float64(a.n), float64(b.n)
	d := b.mean - a.mean
	n := na + nb
	a.mean += d * nb / n
	a.m2 += b.m2 + d*d*na*nb/n
	a.n += b.n
	if a.res != nil {
		a.res.Merge(b.res)
	}
}

// N returns the number of observations folded in so far.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the sample variance (n−1 denominator; 0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Quantile estimates the q-quantile from the reservoir; it returns 0 when no
// reservoir is attached or no observations have been added. Estimates from a
// merged accumulator pool the partial reservoirs with weights, so they are
// deterministic for a fixed partition but only approximate once the
// reservoirs have down-sampled.
func (a *Accumulator) Quantile(q float64) float64 {
	if a.res == nil {
		return 0
	}
	return a.res.Quantile(q)
}

// Summary freezes the accumulator into the Summary the experiment tables
// consume. Median comes from the reservoir (approximate once down-sampling
// has begun; see Reservoir) and is 0 when quantile tracking is disabled. The
// confidence interval uses the t-distribution critical value for small n,
// converging to the familiar 1.96 normal approximation as n grows.
func (a *Accumulator) Summary() Summary {
	if a.n == 0 {
		return Summary{}
	}
	s := Summary{
		N:    a.n,
		Mean: a.mean,
		Min:  a.min,
		Max:  a.max,
	}
	if a.n > 1 {
		s.Std = math.Sqrt(a.Variance())
		s.SE = s.Std / math.Sqrt(float64(a.n))
	}
	half := TCritical95(a.n-1) * s.SE
	s.CI95Lo = a.mean - half
	s.CI95Hi = a.mean + half
	if a.res != nil {
		s.Median = a.res.Quantile(0.5)
	}
	return s
}

// TCritical95 returns the two-sided 95% critical value of Student's t with
// the given degrees of freedom: exact per-df values through 30, then the
// conservative step values at the standard table breakpoints (40, 60, 120),
// then the normal 1.96 (within 1% of the true value everywhere past
// df = 30). df ≤ 0 returns the normal value, matching Summarize's behaviour
// for degenerate samples.
func TCritical95(df int) float64 {
	var table = [...]float64{
		// df = 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return 1.96
	case df <= len(table):
		return table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.96
	}
}

// Reservoir is a deterministic fixed-capacity sample for quantile estimates.
// Unlike the classic randomized reservoir it keeps a strided systematic
// sample: every stride-th offered value is retained, and when the buffer
// fills, every other retained value is dropped and the stride doubles. The
// retained set is therefore a pure function of the input sequence — no rng —
// which is what lets internal/mc promise bit-identical summaries for a fixed
// seed at any worker count.
type Reservoir struct {
	capacity int
	stride   int
	seen     int
	vals     []float64
	weights  []float64 // observations each retained value stands for
}

// NewReservoir returns a reservoir retaining at most capacity values
// (capacity is clamped to ≥ 2 so compaction can make progress).
func NewReservoir(capacity int) *Reservoir {
	if capacity < 2 {
		capacity = 2
	}
	return &Reservoir{capacity: capacity, stride: 1}
}

// Add offers one value.
func (r *Reservoir) Add(x float64) {
	if r.seen%r.stride == 0 {
		if len(r.vals) == r.capacity {
			// Compact: keep even positions, double the stride.
			kept := r.vals[:0]
			kw := r.weights[:0]
			for i := 0; i < len(r.vals); i += 2 {
				kept = append(kept, r.vals[i])
				kw = append(kw, r.weights[i]*2)
			}
			r.vals = kept
			r.weights = kw
			r.stride *= 2
			if r.seen%r.stride != 0 {
				r.seen++
				return
			}
		}
		r.vals = append(r.vals, x)
		r.weights = append(r.weights, float64(r.stride))
	}
	r.seen++
}

// Merge pools another reservoir's retained values (with their weights) into
// this one. The pooled set may temporarily exceed capacity; a merged
// reservoir is meant for reading quantiles, not further Adds.
func (r *Reservoir) Merge(o *Reservoir) {
	if o == nil {
		return
	}
	r.vals = append(r.vals, o.vals...)
	r.weights = append(r.weights, o.weights...)
	r.seen += o.seen
}

// Quantile returns the weighted q-quantile of the retained sample (q clamped
// to [0, 1]); 0 for an empty reservoir.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.vals) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := make([]int, len(r.vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.vals[idx[a]] < r.vals[idx[b]] })
	var total float64
	for _, w := range r.weights {
		total += w
	}
	target := q * total
	var cum float64
	for _, i := range idx {
		cum += r.weights[i]
		if cum >= target {
			return r.vals[i]
		}
	}
	return r.vals[idx[len(idx)-1]]
}

// Len reports how many values the reservoir currently retains.
func (r *Reservoir) Len() int { return len(r.vals) }
