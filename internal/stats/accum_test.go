package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestAccumulatorMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	a := NewAccumulator(0)
	for _, x := range xs {
		a.Add(x)
	}
	ref := Summarize(xs)
	got := a.Summary()
	if got.N != ref.N || got.Min != ref.Min || got.Max != ref.Max {
		t.Fatalf("n/min/max mismatch: got %+v want %+v", got, ref)
	}
	if math.Abs(got.Mean-ref.Mean) > 1e-12 {
		t.Errorf("mean: got %v want %v", got.Mean, ref.Mean)
	}
	if math.Abs(got.Std-ref.Std) > 1e-10 {
		t.Errorf("std: got %v want %v", got.Std, ref.Std)
	}
	if math.Abs(got.SE-ref.SE) > 1e-12 {
		t.Errorf("se: got %v want %v", got.SE, ref.SE)
	}
}

func TestAccumulatorMergeMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 777)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	whole := NewAccumulator(0)
	for _, x := range xs {
		whole.Add(x)
	}
	// Split into uneven parts, merge in order.
	parts := []int{0, 100, 101, 500, 777}
	merged := NewAccumulator(0)
	for i := 0; i+1 < len(parts); i++ {
		p := NewAccumulator(0)
		for _, x := range xs[parts[i]:parts[i+1]] {
			p.Add(x)
		}
		merged.Merge(p)
	}
	w, m := whole.Summary(), merged.Summary()
	if m.N != w.N || m.Min != w.Min || m.Max != w.Max {
		t.Fatalf("n/min/max mismatch after merge: got %+v want %+v", m, w)
	}
	if math.Abs(m.Mean-w.Mean) > 1e-12 {
		t.Errorf("merged mean %v vs whole %v", m.Mean, w.Mean)
	}
	if math.Abs(m.Std-w.Std) > 1e-10 {
		t.Errorf("merged std %v vs whole %v", m.Std, w.Std)
	}
}

func TestAccumulatorMergeEmptyCases(t *testing.T) {
	a := NewAccumulator(8)
	a.Merge(nil)
	a.Merge(NewAccumulator(8))
	if a.N() != 0 {
		t.Fatalf("empty merges should stay empty, n=%d", a.N())
	}
	b := NewAccumulator(8)
	b.Add(3)
	b.Add(5)
	a.Merge(b)
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
}

func TestTCritical95(t *testing.T) {
	if got := TCritical95(1); got != 12.706 {
		t.Errorf("df=1: %v", got)
	}
	if got := TCritical95(1000); got != 1.96 {
		t.Errorf("df=1000: %v", got)
	}
	if got := TCritical95(0); got != 1.96 {
		t.Errorf("df=0: %v", got)
	}
	// Monotone nonincreasing in df.
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		v := TCritical95(df)
		if v > prev {
			t.Fatalf("t table not monotone at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
}

func TestAccumulatorSummaryMedian(t *testing.T) {
	a := NewAccumulator(128)
	for i := 1; i <= 101; i++ {
		a.Add(float64(i))
	}
	s := a.Summary()
	if s.Median != 51 {
		t.Errorf("median: got %v want 51", s.Median)
	}
	if s.P90 != 91 || s.P99 != 100 {
		t.Errorf("tails: P90=%v P99=%v, want 91/100", s.P90, s.P99)
	}
}

// Merged accumulators report sketch-backed quantiles whose error stays
// within the pooled bound, regardless of how the sample was partitioned.
func TestAccumulatorMergedQuantilesBounded(t *testing.T) {
	n := 64000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	merged := NewAccumulator(64)
	for s := 0; s < 64; s++ { // the mc shard partition: trial i → shard i mod 64
		part := NewAccumulator(64)
		for i := s; i < n; i += 64 {
			part.Add(xs[i])
		}
		merged.Merge(part)
	}
	bound := float64(merged.SketchErrorBound())
	if bound <= 0 || bound > 0.1*float64(n) {
		t.Fatalf("pooled error bound %v out of range", bound)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := merged.Quantile(q)
		want := q * float64(n)
		slack := bound + 1024 // + max item weight
		if math.Abs(got-want) > slack {
			t.Errorf("q=%.2f: got %v want ≈%v (slack %v)", q, got, want, slack)
		}
	}
}

func TestSummarizeTails(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.P90 != 180 || s.P99 != 198 {
		t.Errorf("P90=%v P99=%v, want 180/198", s.P90, s.P99)
	}
}
